// model_fuzzer — hostile bytes as a persisted model file.
//
// The header-sniffing AnyModel loader under VerifyMode::kStrict: malformed
// text must throw DataError (ParseError for declared-size violations —
// *before* any allocation sized by the header), and whatever parses must
// survive the full analysis:: static verifier. A std::logic_error
// (HDD_ASSERT) or sanitizer report here means a parser invariant broke.
#include "fuzz/harness.h"

#include <sstream>
#include <string>

#include "common/error.h"
#include "core/model_io.h"

namespace hdd::fuzz {

int fuzz_model(const std::uint8_t* data, std::size_t size) {
  // A real model file the daemon would load tops out well under the store's
  // 1 MiB generation-record cap; larger inputs only slow the fuzzer down.
  constexpr std::size_t kMaxInput = 1u << 20;
  if (size > kMaxInput) size = kMaxInput;
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  core::LoadOptions opt;
  opt.verify = core::VerifyMode::kStrict;
  try {
    (void)core::load_model(is, opt);
  } catch (const DataError&) {
    // Malformed or verifier-rejected input: the expected outcome.
  } catch (const ConfigError&) {
    // Structurally impossible parameters: also a structured rejection.
  }
  return 0;
}

}  // namespace hdd::fuzz

#ifdef HDD_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return hdd::fuzz::fuzz_model(data, size);
}
#endif
