// Standalone replay driver for fuzz binaries built without libFuzzer
// (gcc, or clang without the fuzzer runtime): each argv path is read and
// run once through LLVMFuzzerTestOneInput. This is the long-run interface
// tools/fuzz.sh falls back to for corpus replay; coverage-guided mutation
// needs the real libFuzzer build.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    if (path.rfind("-", 0) == 0) continue;  // ignore libFuzzer-style flags
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::cerr << "cannot read " << path << '\n';
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string bytes = buf.str();
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++ran;
  }
  std::cout << "replayed " << ran << " input(s), no crashes\n";
  return 0;
}
