// store_op_fuzzer — byte-driven op sequences against a real TelemetryStore,
// cross-checked per step against an in-memory reference map (the CalicoDB
// db_fuzzer idiom: the fuzzer explores interleavings of the public API, a
// trivial model says what the store must answer).
//
// Ops: register drive / append / append_batch / flush / compact / clean
// reopen / crash-point reopen (FaultEnv CrashPoint at a byte-chosen op,
// then recovery). After every mutating op the store must agree exactly
// with the reference; after a crash it must hold a per-drive prefix of
// what was appended, every sample byte-identical to what we wrote, and
// then becomes the new reference (lost-tail semantics of kill -9).
#include "fuzz/harness.h"

#include <unistd.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "store/telemetry_store.h"

namespace hdd::fuzz {

namespace {

struct ByteReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t i = 0;

  bool done() const { return i >= n; }
  std::uint8_t u8() { return done() ? 0 : p[i++]; }
};

struct RefDrive {
  std::string serial;
  std::vector<smart::Sample> samples;  // append order, hours strictly up
  std::int64_t next_hour = 0;
};

smart::Sample make_sample(std::int64_t hour, std::uint8_t salt) {
  smart::Sample s;
  s.hour = hour;
  for (std::size_t f = 0; f < s.attrs.size(); ++f) {
    s.attrs[f] = static_cast<float>((salt + 31u * f) % 253u + 1u);
  }
  return s;
}

bool same_sample(const smart::Sample& a, const smart::Sample& b) {
  return a.hour == b.hour && a.attrs == b.attrs;
}

// Exact agreement: every reference drive is registered, and read_drive
// returns exactly the reference samples in order.
void check_exact(const store::TelemetryStore& store,
                 const std::vector<RefDrive>& ref) {
  if (store.drive_count() != ref.size()) __builtin_trap();
  for (std::uint32_t id = 0; id < ref.size(); ++id) {
    if (store.drive(id).serial != ref[id].serial) __builtin_trap();
    const auto got = store.read_drive(id);
    if (got.size() != ref[id].samples.size()) __builtin_trap();
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (!same_sample(got[k], ref[id].samples[k])) __builtin_trap();
    }
  }
}

// Post-crash agreement: registrations and samples may have lost a tail,
// but whatever survived must be a per-drive prefix of the reference,
// byte-identical sample by sample.
void check_prefix(const store::TelemetryStore& store,
                  const std::vector<RefDrive>& ref) {
  if (store.drive_count() > ref.size()) __builtin_trap();
  for (std::uint32_t id = 0; id < store.drive_count(); ++id) {
    if (store.drive(id).serial != ref[id].serial) __builtin_trap();
    const auto got = store.read_drive(id);
    if (got.size() > ref[id].samples.size()) __builtin_trap();
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (!same_sample(got[k], ref[id].samples[k])) __builtin_trap();
    }
  }
}

const std::string& scratch_dir() {
  static const std::string dir =
      "/tmp/hdd_store_op_fuzz." + std::to_string(getpid());
  return dir;
}

void wipe_dir(io::Env& env, const std::string& dir) {
  std::vector<std::string> names;
  (void)env.create_dirs(dir);
  if (env.list_dir(dir, names).ok()) {
    for (const std::string& name : names) {
      (void)env.remove_file(dir + "/" + name);
    }
  }
}

}  // namespace

int fuzz_store_op(const std::uint8_t* data, std::size_t size) {
  ByteReader in{data, size};
  io::Env& posix = io::Env::posix();
  const std::string& dir = scratch_dir();
  wipe_dir(posix, dir);

  store::StoreOptions opt;
  // Tiny rotation threshold so op sequences cross segment boundaries.
  opt.segment_bytes = 1024 + 128u * in.u8();
  std::unique_ptr<store::TelemetryStore> store;
  try {
    store = std::make_unique<store::TelemetryStore>(dir, opt);
  } catch (const DataError&) {
    return 0;  // scratch dir unusable; nothing to test
  }

  std::vector<RefDrive> ref;
  constexpr std::size_t kMaxDrives = 8;
  constexpr int kMaxOps = 96;

  for (int step = 0; step < kMaxOps && !in.done(); ++step) {
    const std::uint8_t op = in.u8();
    const std::uint8_t arg = in.u8();
    switch (op % 8) {
      case 0: {  // register (idempotent for a known serial)
        const std::size_t slot = arg % kMaxDrives;
        const std::string serial = "drv-" + std::to_string(slot);
        const std::uint32_t id = store->register_drive(serial);
        if (id >= ref.size()) {
          if (id != ref.size()) __builtin_trap();
          ref.push_back({serial, {}, 0});
        } else if (ref[id].serial != serial) {
          __builtin_trap();
        }
        break;
      }
      case 1:    // append one sample
      case 2: {  // append a small batch
        if (ref.empty()) break;
        const auto id = static_cast<std::uint32_t>(arg % ref.size());
        const std::size_t count = op % 8 == 1 ? 1 : 1 + (in.u8() % 12);
        std::vector<smart::Sample> batch;
        batch.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          RefDrive& d = ref[id];
          d.next_hour += 1 + (arg % 5);
          batch.push_back(make_sample(d.next_hour, in.u8()));
        }
        if (op % 8 == 1) {
          store->append(id, batch[0]);
        } else {
          store->append_batch(id, batch.data(), batch.size());
        }
        auto& samples = ref[id].samples;
        samples.insert(samples.end(), batch.begin(), batch.end());
        break;
      }
      case 3:
        store->flush();
        break;
      case 4: {  // compact at a byte-chosen horizon
        const std::int64_t min_hour = static_cast<std::int64_t>(arg) * 2;
        (void)store->compact(min_hour);
        for (RefDrive& d : ref) {
          std::erase_if(d.samples, [min_hour](const smart::Sample& s) {
            return s.hour < min_hour;
          });
        }
        break;
      }
      case 5: {  // clean reopen: close flushes, recovery must lose nothing
        store.reset();
        store = std::make_unique<store::TelemetryStore>(dir, opt);
        break;
      }
      case 6: {  // crash-point reopen: kill the store mid-op, recover
        io::FaultPlan plan;
        plan.seed = arg;
        plan.crash_at_op = 1 + (in.u8() % 24);
        plan.torn_crash = (arg & 1) != 0;
        store.reset();
        auto fault = std::make_unique<io::FaultEnv>(posix, plan);
        store::StoreOptions fopt = opt;
        fopt.env = fault.get();
        try {
          store = std::make_unique<store::TelemetryStore>(dir, fopt);
          // Drive appends until the crash point fires (or the budget runs
          // out — a plan deeper than the remaining ops just never crashes).
          for (int k = 0; k < 32 && !ref.empty(); ++k) {
            const auto id = static_cast<std::uint32_t>(k % ref.size());
            RefDrive& d = ref[id];
            d.next_hour += 1;
            const auto s = make_sample(d.next_hour, arg);
            store->append(id, s);
            d.samples.push_back(s);
          }
          store->flush();
        } catch (const io::CrashPoint&) {
          // Simulated kill -9 mid-op.
        } catch (const DataError&) {
          // A fault surfaced as an I/O failure before the crash point.
        }
        store.reset();  // teardown after a crash must be safe
        fault.reset();
        store = std::make_unique<store::TelemetryStore>(dir, opt);
        check_prefix(*store, ref);
        // Adopt what durably survived: the lost tail stays lost.
        std::vector<RefDrive> survived;
        for (std::uint32_t id = 0; id < store->drive_count(); ++id) {
          RefDrive d;
          d.serial = store->drive(id).serial;
          d.samples = store->read_drive(id);
          d.next_hour = ref[id].next_hour;  // keep hours monotonic
          survived.push_back(std::move(d));
        }
        ref = std::move(survived);
        break;
      }
      case 7: {  // read-path probes on the live store
        (void)store->sample_count();
        (void)store->last_hour();
        if (!ref.empty()) {
          const auto id = static_cast<std::uint32_t>(arg % ref.size());
          (void)store->find_drive(ref[id].serial);
          (void)store->read_drive(id, arg, arg + 64);
        }
        break;
      }
    }
    check_exact(*store, ref);
  }
  return 0;
}

}  // namespace hdd::fuzz

#ifdef HDD_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return hdd::fuzz::fuzz_store_op(data, size);
}
#endif
