// Seed-corpus generator for tests/fuzz/corpus/ (DESIGN.md §13).
//
// Run once with the corpus root as argv[1]; the seeds are checked in, so
// every clone replays the same inputs through fuzz_regression_test and
// tools/fuzz.sh --regress. Seeds are built with the real encoders and
// trainers — a corpus of structurally valid artifacts plus targeted
// near-valid mutants (bad CRC, hostile length, truncated tail) reaches far
// deeper than random bytes would.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ann/mlp.h"
#include "core/model_io.h"
#include "data/matrix.h"
#include "forest/random_forest.h"
#include "serve/wire.h"
#include "smart/drive.h"
#include "store/telemetry_store.h"
#include "tree/tree.h"

namespace fs = std::filesystem;
using namespace hdd;

namespace {

void put(const fs::path& dir, const std::string& name,
         const std::string& bytes) {
  std::ofstream os(dir / name, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    std::cerr << "write failed: " << (dir / name) << '\n';
    std::exit(1);
  }
}

smart::Sample sample_at(std::int64_t hour, float base) {
  smart::Sample s;
  s.hour = hour;
  for (std::size_t f = 0; f < s.attrs.size(); ++f) {
    s.attrs[f] = base + static_cast<float>(f);
  }
  return s;
}

// A tiny separable training matrix: class by the first feature's sign
// region, 12 SMART-like columns.
data::DataMatrix tiny_matrix() {
  data::DataMatrix m(smart::kNumAttributes);
  std::vector<float> row(smart::kNumAttributes, 0.0f);
  for (int i = 0; i < 64; ++i) {
    const bool failed = i % 2 == 0;
    for (int f = 0; f < smart::kNumAttributes; ++f) {
      row[static_cast<std::size_t>(f)] =
          static_cast<float>((i * 7 + f * 3) % 40) + (failed ? 60.0f : 0.0f);
    }
    m.add_row(row, failed ? -1.0f : 1.0f);
  }
  return m;
}

void frame_seeds(const fs::path& dir) {
  // Leading byte picks the harness's feed-chunk size; 0x07 => 8-byte reads.
  const std::string chunk(1, '\x07');

  serve::IngestBatch batch;
  batch.serials = {"drv-a", "drv-a", "drv-b"};
  batch.samples = {sample_at(10, 1.0f), sample_at(11, 2.0f),
                   sample_at(10, 3.0f)};
  put(dir, "ingest",
      chunk + serve::frame_payload(serve::encode_ingest_request(batch)));
  put(dir, "ingest_traced",
      chunk + serve::frame_payload(
                  serve::encode_ingest_request(batch, 0x1122334455667788u)));
  put(dir, "query",
      chunk + serve::frame_payload(serve::encode_query_request("drv-a")));
  put(dir, "stats_then_shutdown",
      chunk + serve::frame_payload(serve::encode_stats_request()) +
          serve::frame_payload(serve::encode_shutdown_request(42)));

  std::string bad_crc =
      serve::frame_payload(serve::encode_query_request("drv-a"));
  bad_crc[5] = static_cast<char>(bad_crc[5] ^ 0x40);
  put(dir, "bad_crc", chunk + bad_crc);

  std::string truncated =
      serve::frame_payload(serve::encode_stats_request());
  truncated.resize(truncated.size() - 3);
  put(dir, "truncated", chunk + truncated);

  // Hostile declared length: 0xffffffff | crc | nothing.
  put(dir, "hostile_length",
      chunk + std::string("\xff\xff\xff\xff\x00\x00\x00\x00", 8));

  // Valid frame followed by a hostile header — the feed()-time walk case.
  put(dir, "valid_then_hostile",
      chunk + serve::frame_payload(serve::encode_stats_request()) +
          std::string("\x00\x00\x00\xff\x00\x00\x00\x00", 8));

  // Raw responses exercise the decoder-only path.
  serve::StatsResponse stats;
  stats.drives = 3;
  stats.samples = 99;
  stats.generation = 2;
  put(dir, "stats_response", chunk + serve::encode_stats_response(stats));
}

void segment_seeds(const fs::path& dir, const fs::path& scratch) {
  fs::create_directories(scratch);
  store::StoreOptions opt;
  opt.segment_bytes = 512;  // force at least one rotation
  {
    store::TelemetryStore st(scratch.string(), opt);
    const auto a = st.register_drive("seed-drv-a");
    const auto b = st.register_drive("seed-drv-b");
    for (int h = 1; h <= 24; ++h) {
      st.append(a, sample_at(h, 5.0f));
      if (h % 2 == 0) st.append(b, sample_at(h, 9.0f));
    }
    st.flush();
  }
  std::vector<std::string> segs;
  for (const auto& e : fs::directory_iterator(scratch)) {
    std::ifstream is(e.path(), std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    segs.push_back(buf.str());
  }
  if (segs.empty()) {
    std::cerr << "no segment files produced\n";
    std::exit(1);
  }
  int n = 0;
  for (const std::string& seg : segs) {
    put(dir, "segment_" + std::to_string(n++), seg);
  }
  std::string torn = segs[0];
  torn.resize(torn.size() - torn.size() / 3);  // torn tail mid-frame
  put(dir, "torn_tail", torn);
  std::string flipped = segs[0];
  flipped[flipped.size() / 2] ^= 0x10;  // CRC drop mid-segment
  put(dir, "crc_flip", flipped);
  std::string bad_header = segs[0];
  bad_header[0] ^= 0x01;  // unrecognizable magic: header skip path
  put(dir, "bad_magic", bad_header);
  fs::remove_all(scratch);
}

void model_seeds(const fs::path& dir) {
  const data::DataMatrix m = tiny_matrix();

  tree::DecisionTree ct;
  tree::TreeParams tp;
  tp.min_split = 4;
  tp.min_bucket = 2;
  ct.fit(m, tree::Task::kClassification, tp);
  std::ostringstream ct_os;
  core::save_tree(ct, ct_os);
  put(dir, "tree_ct", ct_os.str());

  tree::DecisionTree rt;
  rt.fit(m, tree::Task::kRegression, tp);
  std::ostringstream rt_os;
  core::save_tree(rt, rt_os);
  put(dir, "tree_rt", rt_os.str());

  forest::RandomForest rf;
  forest::ForestConfig fc;
  fc.n_trees = 3;
  fc.tree_params = tp;
  rf.fit(m, tree::Task::kClassification, fc);
  std::ostringstream rf_os;
  rf.save(rf_os);
  put(dir, "forest", rf_os.str());

  ann::MlpModel mlp;
  ann::MlpConfig mc;
  mc.hidden = 4;
  mc.epochs = 20;
  mlp.fit(m, mc);
  std::ostringstream mlp_os;
  mlp.save(mlp_os);
  put(dir, "mlp", mlp_os.str());

  // Hostile declared sizes: the ParseError pre-allocation gates.
  put(dir, "tree_hostile_nodes",
      "hddpred-tree v1\ntask classification\nfeatures 12\n"
      "nodes 4000000000\n");
  put(dir, "forest_hostile_trees",
      "hddpred-forest v1\ntask classification\nfeatures 12\n"
      "trees 4000000000\n");
  put(dir, "mlp_hostile_width", "hddpred-mlp v1\ninputs 123456789\n");
  put(dir, "unknown_header", "hddpred-quantum v7\nqubits 8\n");

  std::string bad_tail = ct_os.str();
  bad_tail.resize(bad_tail.size() / 2);  // truncated mid-node-table
  put(dir, "tree_truncated", bad_tail);
}

void store_op_seeds(const fs::path& dir) {
  // Byte stream: segment-size byte, then (op, arg[, extras]) pairs.
  // Ops mod 8: 0=register 1=append 2=batch 3=flush 4=compact 5=reopen
  // 6=crash-reopen 7=read-probes.
  const auto bytes = [](std::initializer_list<int> v) {
    std::string s;
    for (int b : v) s.push_back(static_cast<char>(b));
    return s;
  };
  put(dir, "basic",
      bytes({4, 0, 0, 0, 1, 1, 0, 7, 2, 0, 3, 5, 3, 0, 7, 1}));
  put(dir, "rotate_compact",
      bytes({0, 0, 0, 0, 1, 2, 0, 11, 1, 2, 1, 11, 2, 2, 0, 11, 3,
             4, 8, 7, 0, 5, 0, 7, 0}));
  put(dir, "crash_recover",
      bytes({2, 0, 0, 0, 1, 2, 0, 9, 4, 3, 0, 6, 5, 7, 7, 0, 1, 0, 5,
             5, 0, 7, 3}));
  put(dir, "many_drives",
      bytes({8, 0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 2, 3,
             6, 2, 6, 13, 11, 7, 5, 3, 0}));
}

void cli_seeds(const fs::path& dir) {
  put(dir, "help_like", "stats\n");
  put(dir, "predict",
      "predict --model model.txt --telemetry data.csv --vote 3");
  put(dir, "train", "train --preset ct --out model.txt --seed 7");
  put(dir, "serve", "serve --port 0 --store /tmp/s --threads 2");
  put(dir, "globals", "--log-format json --log-level warn lint --model m");
  put(dir, "adversary",
      "adversary --data f.csv --model m --epsilons 0.01,0.1 --format json");
  put(dir, "unknown_command", "frobnicate --hard");
  put(dir, "unknown_flag", "train --preset ct --does-not-exist 1");
  put(dir, "missing_value", "train --preset");
  put(dir, "not_a_number", "serve --port banana");
  put(dir, "empty", "");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_seeds <corpus-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  for (const char* name :
       {"frame", "segment", "model", "store_op", "cli"}) {
    fs::create_directories(root / name);
  }
  frame_seeds(root / "frame");
  segment_seeds(root / "segment",
                fs::temp_directory_path() / "hdd_make_seeds_store");
  model_seeds(root / "model");
  store_op_seeds(root / "store_op");
  cli_seeds(root / "cli");
  std::cout << "seed corpus written under " << root << '\n';
  return 0;
}
