// segment_fuzzer — hostile bytes as an on-disk telemetry segment.
//
// Layer 1 drives the store::format decoders directly (segment header,
// manual frame walk, record decode). Layer 2 writes the same bytes to a
// scratch directory as seg-1.log and opens a real TelemetryStore over it:
// the recovery taxonomy (torn tail, CRC drop, header skip, bad reference)
// must classify anything without throwing for corrupt *data* — only
// environment failures may surface as DataError.
#include "fuzz/harness.h"

#include <unistd.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "io/env.h"
#include "store/format.h"
#include "store/telemetry_store.h"

namespace hdd::fuzz {

namespace {

// One scratch directory per process, reused across inputs (the segment
// file is rewritten each run; recovery may truncate or delete it).
const std::string& scratch_dir() {
  static const std::string dir = [] {
    std::string d = "/tmp/hdd_segment_fuzz." + std::to_string(getpid());
    (void)io::Env::posix().create_dirs(d);
    return d;
  }();
  return dir;
}

void walk_frames(std::string_view bytes) {
  (void)store::decode_segment_header(bytes);
  std::size_t pos = store::kSegmentHeaderBytes;
  auto read_u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + i]))
           << (8 * i);
    }
    return v;
  };
  while (pos < bytes.size()) {
    const std::size_t remaining = bytes.size() - pos;
    if (remaining < store::kFrameHeaderBytes) break;
    const std::uint32_t len = read_u32(pos);
    const std::uint32_t crc = read_u32(pos + 4);
    if (len == 0 || len > store::kMaxPayloadBytes ||
        len > remaining - store::kFrameHeaderBytes) {
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + store::kFrameHeaderBytes, len);
    if (store::crc32(payload.data(), payload.size()) == crc) {
      (void)store::decode_record(payload);
    }
    pos += store::kFrameHeaderBytes + len;
  }
}

}  // namespace

int fuzz_segment(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  if (bytes.size() >= store::kSegmentHeaderBytes) walk_frames(bytes);

  // Full recovery over the same bytes. Leftovers from the previous input
  // (compacted outputs, rotated segments) are cleared first so each run
  // recovers exactly one hostile segment.
  io::Env& env = io::Env::posix();
  const std::string& dir = scratch_dir();
  std::vector<std::string> names;
  if (!env.list_dir(dir, names).ok()) return 0;
  for (const std::string& name : names) {
    (void)env.remove_file(dir + "/" + name);
  }
  if (!env.write_file(dir + "/seg-1.log", bytes, /*sync=*/false).ok()) {
    return 0;
  }
  try {
    store::TelemetryStore store(dir);
    // Exercise the index the scan built: every recovered record must be
    // readable back without throwing.
    for (std::uint32_t id = 0; id < store.drive_count(); ++id) {
      (void)store.drive(id);
      (void)store.read_drive(id);
    }
    (void)store.sample_count();
    (void)store.last_hour();
    (void)store.latest_generation();
  } catch (const DataError&) {
    // Environment-level failure (unreadable dir, I/O): legal rejection.
  }
  return 0;
}

}  // namespace hdd::fuzz

#ifdef HDD_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return hdd::fuzz::fuzz_segment(data, size);
}
#endif
