// frame_fuzzer — hostile bytes against the serve wire layer.
//
// Two surfaces in one harness, because they guard each other: the
// incremental FrameParser (which must bound memory *before* trusting a
// length prefix) and the op/status payload decoders (which must return
// nullopt, never throw, on any byte salad — including the optional
// trailing trace-id u64 that only an exactly-8-bytes surplus may claim).
#include "fuzz/harness.h"

#include <string>
#include <string_view>

#include "serve/wire.h"
#include "store/format.h"

namespace hdd::fuzz {

int fuzz_frame(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Incremental path: the first byte picks the feed pattern so the fuzzer
  // controls where TCP read() boundaries land relative to frame headers.
  if (!bytes.empty()) {
    serve::FrameParser parser;
    const std::size_t chunk = 1 + (bytes[0] & 0x3f);
    std::string payload;
    for (std::size_t at = 1; at < bytes.size(); at += chunk) {
      parser.feed(bytes.substr(at, chunk));
      // Drain after every feed, like the server's read loop.
      for (;;) {
        const auto r = parser.next(payload);
        if (r != serve::FrameParser::Result::kFrame) break;
        (void)serve::decode_request(payload);
      }
    }
    // The feed()-time cap: the parser may never hold more than one max
    // frame plus one feed chunk, no matter what the length prefixes said.
    if (parser.buffered() > store::kFrameHeaderBytes +
                                serve::kMaxWirePayloadBytes + chunk) {
      __builtin_trap();
    }
  }

  // Direct path: the raw bytes as one unframed payload through every
  // decoder. All of them return optionals; none may throw or crash.
  (void)serve::decode_request(bytes);
  (void)serve::decode_status(bytes);
  (void)serve::decode_ingest_response(bytes);
  (void)serve::decode_query_response(bytes);
  (void)serve::decode_stats_response(bytes);
  (void)serve::decode_error_message(bytes);
  return 0;
}

}  // namespace hdd::fuzz

#ifdef HDD_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return hdd::fuzz::fuzz_frame(data, size);
}
#endif
