// Fuzz harness entry points (DESIGN.md §13).
//
// Each harness body lives in its own translation unit and is compiled
// twice:
//  * into the always-built hdd_fuzz_harnesses library, which the
//    fuzz_regression_test links to replay the checked-in corpus
//    (tests/fuzz/corpus/<harness>/) under plain ctest in every build
//    configuration — no clang required;
//  * into a fuzz binary when -DHDD_FUZZ=ON: a real libFuzzer target under
//    clang (-fsanitize=fuzzer defines HDD_FUZZ_TARGET and each file's
//    LLVMFuzzerTestOneInput wrapper), or a standalone corpus-replay main
//    (standalone_main.cpp) under gcc.
//
// Contract: a harness must return 0 and NEVER crash, hang, or leak on
// arbitrary bytes. Structured rejection (DataError/ParseError, nullopt,
// Result::kCorrupt, exit code 2) is the expected outcome for garbage;
// anything else — HDD_ASSERT (std::logic_error), a sanitizer report, an
// uncaught exception, unbounded allocation — is a finding. Found defects
// get fixed in-tree and their inputs checked in as regression seeds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hdd::fuzz {

// bytes -> serve::FrameParser (chunked feeding, first byte picks the chunk
// pattern) -> wire request/response decoders, incl. the trailing trace-id
// path; the raw bytes are also decoded directly as unframed payloads.
int fuzz_frame(const std::uint8_t* data, std::size_t size);

// bytes -> store::format decoders (segment header, frame walk, records),
// then the bytes become a segment file and a TelemetryStore recovers the
// directory — the full scan_segment recovery taxonomy on hostile input.
int fuzz_segment(const std::uint8_t* data, std::size_t size);

// bytes -> core::load_model (header-sniffing AnyModel loader) with
// VerifyMode::kStrict, so the analysis verifier runs over whatever loads.
int fuzz_model(const std::uint8_t* data, std::size_t size);

// bytes -> an op sequence (register/append/batch/flush/rotate/compact/
// reopen/crash-point) driven against a real TelemetryStore and
// cross-checked per step against an in-memory reference map.
int fuzz_store_op(const std::uint8_t* data, std::size_t size);

// bytes -> argv tokens -> cli::Registry::check() parse-only mode over the
// real hddpredict command table.
int fuzz_cli(const std::uint8_t* data, std::size_t size);

}  // namespace hdd::fuzz
