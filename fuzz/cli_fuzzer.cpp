// cli_fuzzer — hostile argv against the real hddpredict command table.
//
// Bytes split on whitespace/NUL into tokens, then through
// cli::Registry::check(): the parse-only path (global-flag extraction,
// command lookup, typed ArgSpec validation) with no handler execution and
// no process-wide side effects. Outcomes must be exactly 0 (clean parse)
// or 2 (usage error) — any throw or crash is a finding.
#include "fuzz/harness.h"

#include <string>
#include <vector>

#include "hddpredict_commands.h"

namespace hdd::fuzz {

int fuzz_cli(const std::uint8_t* data, std::size_t size) {
  static const cli::Registry& registry = *new cli::Registry(
      tools::build_registry());  // leaked: lives for the whole fuzz run

  constexpr std::size_t kMaxTokens = 64;
  constexpr std::size_t kMaxTokenBytes = 256;
  std::vector<std::string> argv_tail;
  std::string token;
  auto flush_token = [&] {
    if (!token.empty() && argv_tail.size() < kMaxTokens) {
      argv_tail.push_back(token);
    }
    token.clear();
  };
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\0') {
      flush_token();
    } else if (token.size() < kMaxTokenBytes) {
      token.push_back(c);
    }
  }
  flush_token();

  const int rc = registry.check(argv_tail);
  if (rc != 0 && rc != 2) __builtin_trap();
  return 0;
}

}  // namespace hdd::fuzz

#ifdef HDD_FUZZ_TARGET
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return hdd::fuzz::fuzz_cli(data, size);
}
#endif
