file(REMOVE_RECURSE
  "CMakeFiles/hddpredict.dir/hddpredict.cpp.o"
  "CMakeFiles/hddpredict.dir/hddpredict.cpp.o.d"
  "hddpredict"
  "hddpredict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hddpredict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
