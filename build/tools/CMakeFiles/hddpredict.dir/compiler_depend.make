# Empty compiler generated dependencies file for hddpredict.
# This may be replaced when dependencies are built.
