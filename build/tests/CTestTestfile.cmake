# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/smart_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/reliability_test[1]_include.cmake")
include("/root/repo/build/tests/ann_test[1]_include.cmake")
include("/root/repo/build/tests/forest_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/svm_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_cv_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
