file(REMOVE_RECURSE
  "CMakeFiles/smart_test.dir/smart_test.cpp.o"
  "CMakeFiles/smart_test.dir/smart_test.cpp.o.d"
  "smart_test"
  "smart_test.pdb"
  "smart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
