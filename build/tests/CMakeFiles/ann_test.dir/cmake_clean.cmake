file(REMOVE_RECURSE
  "CMakeFiles/ann_test.dir/ann_test.cpp.o"
  "CMakeFiles/ann_test.dir/ann_test.cpp.o.d"
  "ann_test"
  "ann_test.pdb"
  "ann_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
