# Empty dependencies file for tuning_cv_test.
# This may be replaced when dependencies are built.
