file(REMOVE_RECURSE
  "CMakeFiles/tuning_cv_test.dir/tuning_cv_test.cpp.o"
  "CMakeFiles/tuning_cv_test.dir/tuning_cv_test.cpp.o.d"
  "tuning_cv_test"
  "tuning_cv_test.pdb"
  "tuning_cv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
