file(REMOVE_RECURSE
  "CMakeFiles/operating_point.dir/operating_point.cpp.o"
  "CMakeFiles/operating_point.dir/operating_point.cpp.o.d"
  "operating_point"
  "operating_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operating_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
