# Empty compiler generated dependencies file for operating_point.
# This may be replaced when dependencies are built.
