file(REMOVE_RECURSE
  "CMakeFiles/real_data_bridge.dir/real_data_bridge.cpp.o"
  "CMakeFiles/real_data_bridge.dir/real_data_bridge.cpp.o.d"
  "real_data_bridge"
  "real_data_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_data_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
