# Empty compiler generated dependencies file for real_data_bridge.
# This may be replaced when dependencies are built.
