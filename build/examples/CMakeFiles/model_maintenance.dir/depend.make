# Empty dependencies file for model_maintenance.
# This may be replaced when dependencies are built.
