file(REMOVE_RECURSE
  "CMakeFiles/model_maintenance.dir/model_maintenance.cpp.o"
  "CMakeFiles/model_maintenance.dir/model_maintenance.cpp.o.d"
  "model_maintenance"
  "model_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
