
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/raid_planning.cpp" "examples/CMakeFiles/raid_planning.dir/raid_planning.cpp.o" "gcc" "examples/CMakeFiles/raid_planning.dir/raid_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hdd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hdd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hdd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/hdd_update.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/hdd_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/hdd_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/forest/CMakeFiles/hdd_forest.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/hdd_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hdd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/hdd_smart.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
