file(REMOVE_RECURSE
  "CMakeFiles/raid_planning.dir/raid_planning.cpp.o"
  "CMakeFiles/raid_planning.dir/raid_planning.cpp.o.d"
  "raid_planning"
  "raid_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
