# Empty compiler generated dependencies file for raid_planning.
# This may be replaced when dependencies are built.
