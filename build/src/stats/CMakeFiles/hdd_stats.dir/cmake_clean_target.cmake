file(REMOVE_RECURSE
  "libhdd_stats.a"
)
