# Empty compiler generated dependencies file for hdd_stats.
# This may be replaced when dependencies are built.
