file(REMOVE_RECURSE
  "CMakeFiles/hdd_stats.dir/feature_select.cpp.o"
  "CMakeFiles/hdd_stats.dir/feature_select.cpp.o.d"
  "CMakeFiles/hdd_stats.dir/nonparametric.cpp.o"
  "CMakeFiles/hdd_stats.dir/nonparametric.cpp.o.d"
  "libhdd_stats.a"
  "libhdd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
