
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/feature_select.cpp" "src/stats/CMakeFiles/hdd_stats.dir/feature_select.cpp.o" "gcc" "src/stats/CMakeFiles/hdd_stats.dir/feature_select.cpp.o.d"
  "/root/repo/src/stats/nonparametric.cpp" "src/stats/CMakeFiles/hdd_stats.dir/nonparametric.cpp.o" "gcc" "src/stats/CMakeFiles/hdd_stats.dir/nonparametric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/hdd_smart.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hdd_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
