
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/markov.cpp" "src/reliability/CMakeFiles/hdd_reliability.dir/markov.cpp.o" "gcc" "src/reliability/CMakeFiles/hdd_reliability.dir/markov.cpp.o.d"
  "/root/repo/src/reliability/raid.cpp" "src/reliability/CMakeFiles/hdd_reliability.dir/raid.cpp.o" "gcc" "src/reliability/CMakeFiles/hdd_reliability.dir/raid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
