# Empty compiler generated dependencies file for hdd_reliability.
# This may be replaced when dependencies are built.
