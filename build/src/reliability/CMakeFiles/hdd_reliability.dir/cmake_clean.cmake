file(REMOVE_RECURSE
  "CMakeFiles/hdd_reliability.dir/markov.cpp.o"
  "CMakeFiles/hdd_reliability.dir/markov.cpp.o.d"
  "CMakeFiles/hdd_reliability.dir/raid.cpp.o"
  "CMakeFiles/hdd_reliability.dir/raid.cpp.o.d"
  "libhdd_reliability.a"
  "libhdd_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
