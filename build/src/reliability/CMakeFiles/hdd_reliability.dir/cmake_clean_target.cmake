file(REMOVE_RECURSE
  "libhdd_reliability.a"
)
