file(REMOVE_RECURSE
  "libhdd_eval.a"
)
