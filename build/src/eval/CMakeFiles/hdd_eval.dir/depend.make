# Empty dependencies file for hdd_eval.
# This may be replaced when dependencies are built.
