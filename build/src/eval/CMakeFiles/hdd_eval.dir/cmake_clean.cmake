file(REMOVE_RECURSE
  "CMakeFiles/hdd_eval.dir/detection.cpp.o"
  "CMakeFiles/hdd_eval.dir/detection.cpp.o.d"
  "CMakeFiles/hdd_eval.dir/tuning.cpp.o"
  "CMakeFiles/hdd_eval.dir/tuning.cpp.o.d"
  "libhdd_eval.a"
  "libhdd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
