# Empty compiler generated dependencies file for hdd_smart.
# This may be replaced when dependencies are built.
