
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smart/attributes.cpp" "src/smart/CMakeFiles/hdd_smart.dir/attributes.cpp.o" "gcc" "src/smart/CMakeFiles/hdd_smart.dir/attributes.cpp.o.d"
  "/root/repo/src/smart/drive.cpp" "src/smart/CMakeFiles/hdd_smart.dir/drive.cpp.o" "gcc" "src/smart/CMakeFiles/hdd_smart.dir/drive.cpp.o.d"
  "/root/repo/src/smart/features.cpp" "src/smart/CMakeFiles/hdd_smart.dir/features.cpp.o" "gcc" "src/smart/CMakeFiles/hdd_smart.dir/features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
