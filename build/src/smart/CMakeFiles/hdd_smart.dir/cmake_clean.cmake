file(REMOVE_RECURSE
  "CMakeFiles/hdd_smart.dir/attributes.cpp.o"
  "CMakeFiles/hdd_smart.dir/attributes.cpp.o.d"
  "CMakeFiles/hdd_smart.dir/drive.cpp.o"
  "CMakeFiles/hdd_smart.dir/drive.cpp.o.d"
  "CMakeFiles/hdd_smart.dir/features.cpp.o"
  "CMakeFiles/hdd_smart.dir/features.cpp.o.d"
  "libhdd_smart.a"
  "libhdd_smart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_smart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
