file(REMOVE_RECURSE
  "libhdd_smart.a"
)
