file(REMOVE_RECURSE
  "libhdd_baselines.a"
)
