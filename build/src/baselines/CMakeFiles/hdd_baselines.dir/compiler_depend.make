# Empty compiler generated dependencies file for hdd_baselines.
# This may be replaced when dependencies are built.
