file(REMOVE_RECURSE
  "CMakeFiles/hdd_baselines.dir/hmm.cpp.o"
  "CMakeFiles/hdd_baselines.dir/hmm.cpp.o.d"
  "CMakeFiles/hdd_baselines.dir/mahalanobis.cpp.o"
  "CMakeFiles/hdd_baselines.dir/mahalanobis.cpp.o.d"
  "CMakeFiles/hdd_baselines.dir/naive_bayes.cpp.o"
  "CMakeFiles/hdd_baselines.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/hdd_baselines.dir/ranksum_detector.cpp.o"
  "CMakeFiles/hdd_baselines.dir/ranksum_detector.cpp.o.d"
  "CMakeFiles/hdd_baselines.dir/svm.cpp.o"
  "CMakeFiles/hdd_baselines.dir/svm.cpp.o.d"
  "CMakeFiles/hdd_baselines.dir/threshold.cpp.o"
  "CMakeFiles/hdd_baselines.dir/threshold.cpp.o.d"
  "libhdd_baselines.a"
  "libhdd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
