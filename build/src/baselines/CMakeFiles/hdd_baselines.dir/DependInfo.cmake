
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hmm.cpp" "src/baselines/CMakeFiles/hdd_baselines.dir/hmm.cpp.o" "gcc" "src/baselines/CMakeFiles/hdd_baselines.dir/hmm.cpp.o.d"
  "/root/repo/src/baselines/mahalanobis.cpp" "src/baselines/CMakeFiles/hdd_baselines.dir/mahalanobis.cpp.o" "gcc" "src/baselines/CMakeFiles/hdd_baselines.dir/mahalanobis.cpp.o.d"
  "/root/repo/src/baselines/naive_bayes.cpp" "src/baselines/CMakeFiles/hdd_baselines.dir/naive_bayes.cpp.o" "gcc" "src/baselines/CMakeFiles/hdd_baselines.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/baselines/ranksum_detector.cpp" "src/baselines/CMakeFiles/hdd_baselines.dir/ranksum_detector.cpp.o" "gcc" "src/baselines/CMakeFiles/hdd_baselines.dir/ranksum_detector.cpp.o.d"
  "/root/repo/src/baselines/svm.cpp" "src/baselines/CMakeFiles/hdd_baselines.dir/svm.cpp.o" "gcc" "src/baselines/CMakeFiles/hdd_baselines.dir/svm.cpp.o.d"
  "/root/repo/src/baselines/threshold.cpp" "src/baselines/CMakeFiles/hdd_baselines.dir/threshold.cpp.o" "gcc" "src/baselines/CMakeFiles/hdd_baselines.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/hdd_smart.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hdd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hdd_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
