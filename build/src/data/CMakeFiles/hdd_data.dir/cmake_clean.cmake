file(REMOVE_RECURSE
  "CMakeFiles/hdd_data.dir/cross_validation.cpp.o"
  "CMakeFiles/hdd_data.dir/cross_validation.cpp.o.d"
  "CMakeFiles/hdd_data.dir/csv_io.cpp.o"
  "CMakeFiles/hdd_data.dir/csv_io.cpp.o.d"
  "CMakeFiles/hdd_data.dir/dataset.cpp.o"
  "CMakeFiles/hdd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hdd_data.dir/matrix.cpp.o"
  "CMakeFiles/hdd_data.dir/matrix.cpp.o.d"
  "CMakeFiles/hdd_data.dir/split.cpp.o"
  "CMakeFiles/hdd_data.dir/split.cpp.o.d"
  "CMakeFiles/hdd_data.dir/training.cpp.o"
  "CMakeFiles/hdd_data.dir/training.cpp.o.d"
  "libhdd_data.a"
  "libhdd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
