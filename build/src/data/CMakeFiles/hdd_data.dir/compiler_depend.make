# Empty compiler generated dependencies file for hdd_data.
# This may be replaced when dependencies are built.
