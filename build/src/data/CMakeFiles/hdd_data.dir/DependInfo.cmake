
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cross_validation.cpp" "src/data/CMakeFiles/hdd_data.dir/cross_validation.cpp.o" "gcc" "src/data/CMakeFiles/hdd_data.dir/cross_validation.cpp.o.d"
  "/root/repo/src/data/csv_io.cpp" "src/data/CMakeFiles/hdd_data.dir/csv_io.cpp.o" "gcc" "src/data/CMakeFiles/hdd_data.dir/csv_io.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/hdd_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/hdd_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/matrix.cpp" "src/data/CMakeFiles/hdd_data.dir/matrix.cpp.o" "gcc" "src/data/CMakeFiles/hdd_data.dir/matrix.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/hdd_data.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/hdd_data.dir/split.cpp.o.d"
  "/root/repo/src/data/training.cpp" "src/data/CMakeFiles/hdd_data.dir/training.cpp.o" "gcc" "src/data/CMakeFiles/hdd_data.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/hdd_smart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
