file(REMOVE_RECURSE
  "libhdd_data.a"
)
