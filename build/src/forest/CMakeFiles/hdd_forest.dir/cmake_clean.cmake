file(REMOVE_RECURSE
  "CMakeFiles/hdd_forest.dir/adaboost.cpp.o"
  "CMakeFiles/hdd_forest.dir/adaboost.cpp.o.d"
  "CMakeFiles/hdd_forest.dir/random_forest.cpp.o"
  "CMakeFiles/hdd_forest.dir/random_forest.cpp.o.d"
  "libhdd_forest.a"
  "libhdd_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
