file(REMOVE_RECURSE
  "libhdd_forest.a"
)
