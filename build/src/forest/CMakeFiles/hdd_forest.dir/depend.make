# Empty dependencies file for hdd_forest.
# This may be replaced when dependencies are built.
