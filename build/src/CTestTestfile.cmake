# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("smart")
subdirs("sim")
subdirs("stats")
subdirs("baselines")
subdirs("data")
subdirs("tree")
subdirs("ann")
subdirs("forest")
subdirs("eval")
subdirs("update")
subdirs("reliability")
subdirs("core")
