file(REMOVE_RECURSE
  "CMakeFiles/hdd_ann.dir/mlp.cpp.o"
  "CMakeFiles/hdd_ann.dir/mlp.cpp.o.d"
  "libhdd_ann.a"
  "libhdd_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
