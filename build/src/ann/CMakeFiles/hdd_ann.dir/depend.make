# Empty dependencies file for hdd_ann.
# This may be replaced when dependencies are built.
