file(REMOVE_RECURSE
  "libhdd_ann.a"
)
