file(REMOVE_RECURSE
  "libhdd_common.a"
)
