file(REMOVE_RECURSE
  "CMakeFiles/hdd_common.dir/csv.cpp.o"
  "CMakeFiles/hdd_common.dir/csv.cpp.o.d"
  "CMakeFiles/hdd_common.dir/log.cpp.o"
  "CMakeFiles/hdd_common.dir/log.cpp.o.d"
  "CMakeFiles/hdd_common.dir/math_util.cpp.o"
  "CMakeFiles/hdd_common.dir/math_util.cpp.o.d"
  "CMakeFiles/hdd_common.dir/rng.cpp.o"
  "CMakeFiles/hdd_common.dir/rng.cpp.o.d"
  "CMakeFiles/hdd_common.dir/table.cpp.o"
  "CMakeFiles/hdd_common.dir/table.cpp.o.d"
  "CMakeFiles/hdd_common.dir/thread_pool.cpp.o"
  "CMakeFiles/hdd_common.dir/thread_pool.cpp.o.d"
  "libhdd_common.a"
  "libhdd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
