# Empty compiler generated dependencies file for hdd_common.
# This may be replaced when dependencies are built.
