file(REMOVE_RECURSE
  "libhdd_sim.a"
)
