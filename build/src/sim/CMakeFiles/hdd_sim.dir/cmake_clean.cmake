file(REMOVE_RECURSE
  "CMakeFiles/hdd_sim.dir/generator.cpp.o"
  "CMakeFiles/hdd_sim.dir/generator.cpp.o.d"
  "CMakeFiles/hdd_sim.dir/profile.cpp.o"
  "CMakeFiles/hdd_sim.dir/profile.cpp.o.d"
  "libhdd_sim.a"
  "libhdd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
