# Empty dependencies file for hdd_sim.
# This may be replaced when dependencies are built.
