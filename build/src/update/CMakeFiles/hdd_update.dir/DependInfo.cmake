
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/update/strategies.cpp" "src/update/CMakeFiles/hdd_update.dir/strategies.cpp.o" "gcc" "src/update/CMakeFiles/hdd_update.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hdd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hdd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hdd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hdd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/hdd_smart.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
