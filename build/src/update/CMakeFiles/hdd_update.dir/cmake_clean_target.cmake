file(REMOVE_RECURSE
  "libhdd_update.a"
)
