file(REMOVE_RECURSE
  "CMakeFiles/hdd_update.dir/strategies.cpp.o"
  "CMakeFiles/hdd_update.dir/strategies.cpp.o.d"
  "libhdd_update.a"
  "libhdd_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
