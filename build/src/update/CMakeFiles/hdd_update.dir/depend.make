# Empty dependencies file for hdd_update.
# This may be replaced when dependencies are built.
