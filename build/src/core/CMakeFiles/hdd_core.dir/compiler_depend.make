# Empty compiler generated dependencies file for hdd_core.
# This may be replaced when dependencies are built.
