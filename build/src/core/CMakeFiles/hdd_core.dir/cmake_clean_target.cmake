file(REMOVE_RECURSE
  "libhdd_core.a"
)
