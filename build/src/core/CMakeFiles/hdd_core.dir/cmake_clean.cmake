file(REMOVE_RECURSE
  "CMakeFiles/hdd_core.dir/health.cpp.o"
  "CMakeFiles/hdd_core.dir/health.cpp.o.d"
  "CMakeFiles/hdd_core.dir/model_io.cpp.o"
  "CMakeFiles/hdd_core.dir/model_io.cpp.o.d"
  "CMakeFiles/hdd_core.dir/predictor.cpp.o"
  "CMakeFiles/hdd_core.dir/predictor.cpp.o.d"
  "libhdd_core.a"
  "libhdd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
