# Empty compiler generated dependencies file for hdd_tree.
# This may be replaced when dependencies are built.
