file(REMOVE_RECURSE
  "libhdd_tree.a"
)
