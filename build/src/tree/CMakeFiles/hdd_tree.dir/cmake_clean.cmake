file(REMOVE_RECURSE
  "CMakeFiles/hdd_tree.dir/tree.cpp.o"
  "CMakeFiles/hdd_tree.dir/tree.cpp.o.d"
  "CMakeFiles/hdd_tree.dir/tree_io.cpp.o"
  "CMakeFiles/hdd_tree.dir/tree_io.cpp.o.d"
  "libhdd_tree.a"
  "libhdd_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdd_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
