# Empty compiler generated dependencies file for table4_time_window.
# This may be replaced when dependencies are built.
