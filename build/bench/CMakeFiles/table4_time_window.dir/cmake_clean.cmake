file(REMOVE_RECURSE
  "CMakeFiles/table4_time_window.dir/table4_time_window.cpp.o"
  "CMakeFiles/table4_time_window.dir/table4_time_window.cpp.o.d"
  "table4_time_window"
  "table4_time_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_time_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
