# Empty dependencies file for table5_small_datasets.
# This may be replaced when dependencies are built.
