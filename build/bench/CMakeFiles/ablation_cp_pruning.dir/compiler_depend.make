# Empty compiler generated dependencies file for ablation_cp_pruning.
# This may be replaced when dependencies are built.
