file(REMOVE_RECURSE
  "CMakeFiles/ablation_cp_pruning.dir/ablation_cp_pruning.cpp.o"
  "CMakeFiles/ablation_cp_pruning.dir/ablation_cp_pruning.cpp.o.d"
  "ablation_cp_pruning"
  "ablation_cp_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cp_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
