file(REMOVE_RECURSE
  "CMakeFiles/table6_mttdl.dir/table6_mttdl.cpp.o"
  "CMakeFiles/table6_mttdl.dir/table6_mttdl.cpp.o.d"
  "table6_mttdl"
  "table6_mttdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_mttdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
