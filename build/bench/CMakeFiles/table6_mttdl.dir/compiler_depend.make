# Empty compiler generated dependencies file for table6_mttdl.
# This may be replaced when dependencies are built.
