file(REMOVE_RECURSE
  "CMakeFiles/fig5_family_q.dir/fig5_family_q.cpp.o"
  "CMakeFiles/fig5_family_q.dir/fig5_family_q.cpp.o.d"
  "fig5_family_q"
  "fig5_family_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_family_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
