# Empty compiler generated dependencies file for fig5_family_q.
# This may be replaced when dependencies are built.
