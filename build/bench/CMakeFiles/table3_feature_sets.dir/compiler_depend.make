# Empty compiler generated dependencies file for table3_feature_sets.
# This may be replaced when dependencies are built.
