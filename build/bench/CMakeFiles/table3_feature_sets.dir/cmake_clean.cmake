file(REMOVE_RECURSE
  "CMakeFiles/table3_feature_sets.dir/table3_feature_sets.cpp.o"
  "CMakeFiles/table3_feature_sets.dir/table3_feature_sets.cpp.o.d"
  "table3_feature_sets"
  "table3_feature_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_feature_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
