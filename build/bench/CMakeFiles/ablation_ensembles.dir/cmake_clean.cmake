file(REMOVE_RECURSE
  "CMakeFiles/ablation_ensembles.dir/ablation_ensembles.cpp.o"
  "CMakeFiles/ablation_ensembles.dir/ablation_ensembles.cpp.o.d"
  "ablation_ensembles"
  "ablation_ensembles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ensembles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
