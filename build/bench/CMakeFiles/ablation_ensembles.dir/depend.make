# Empty dependencies file for ablation_ensembles.
# This may be replaced when dependencies are built.
