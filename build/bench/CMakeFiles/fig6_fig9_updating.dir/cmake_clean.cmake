file(REMOVE_RECURSE
  "CMakeFiles/fig6_fig9_updating.dir/fig6_fig9_updating.cpp.o"
  "CMakeFiles/fig6_fig9_updating.dir/fig6_fig9_updating.cpp.o.d"
  "fig6_fig9_updating"
  "fig6_fig9_updating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fig9_updating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
