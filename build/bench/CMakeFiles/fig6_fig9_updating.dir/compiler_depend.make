# Empty compiler generated dependencies file for fig6_fig9_updating.
# This may be replaced when dependencies are built.
