file(REMOVE_RECURSE
  "CMakeFiles/fig10_health_degree.dir/fig10_health_degree.cpp.o"
  "CMakeFiles/fig10_health_degree.dir/fig10_health_degree.cpp.o.d"
  "fig10_health_degree"
  "fig10_health_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_health_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
