file(REMOVE_RECURSE
  "CMakeFiles/fig12_raid_mttdl.dir/fig12_raid_mttdl.cpp.o"
  "CMakeFiles/fig12_raid_mttdl.dir/fig12_raid_mttdl.cpp.o.d"
  "fig12_raid_mttdl"
  "fig12_raid_mttdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_raid_mttdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
