# Empty dependencies file for fig12_raid_mttdl.
# This may be replaced when dependencies are built.
