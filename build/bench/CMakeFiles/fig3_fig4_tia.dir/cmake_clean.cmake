file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig4_tia.dir/fig3_fig4_tia.cpp.o"
  "CMakeFiles/fig3_fig4_tia.dir/fig3_fig4_tia.cpp.o.d"
  "fig3_fig4_tia"
  "fig3_fig4_tia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig4_tia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
