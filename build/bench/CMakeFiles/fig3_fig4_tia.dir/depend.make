# Empty dependencies file for fig3_fig4_tia.
# This may be replaced when dependencies are built.
