file(REMOVE_RECURSE
  "CMakeFiles/fig2_voting_roc.dir/fig2_voting_roc.cpp.o"
  "CMakeFiles/fig2_voting_roc.dir/fig2_voting_roc.cpp.o.d"
  "fig2_voting_roc"
  "fig2_voting_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_voting_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
