# Empty dependencies file for fig2_voting_roc.
# This may be replaced when dependencies are built.
