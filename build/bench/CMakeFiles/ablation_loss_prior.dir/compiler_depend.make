# Empty compiler generated dependencies file for ablation_loss_prior.
# This may be replaced when dependencies are built.
