file(REMOVE_RECURSE
  "CMakeFiles/ablation_loss_prior.dir/ablation_loss_prior.cpp.o"
  "CMakeFiles/ablation_loss_prior.dir/ablation_loss_prior.cpp.o.d"
  "ablation_loss_prior"
  "ablation_loss_prior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loss_prior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
