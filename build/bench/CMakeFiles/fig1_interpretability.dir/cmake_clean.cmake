file(REMOVE_RECURSE
  "CMakeFiles/fig1_interpretability.dir/fig1_interpretability.cpp.o"
  "CMakeFiles/fig1_interpretability.dir/fig1_interpretability.cpp.o.d"
  "fig1_interpretability"
  "fig1_interpretability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_interpretability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
