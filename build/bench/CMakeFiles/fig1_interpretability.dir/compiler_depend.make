# Empty compiler generated dependencies file for fig1_interpretability.
# This may be replaced when dependencies are built.
