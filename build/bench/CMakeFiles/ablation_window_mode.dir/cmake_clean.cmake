file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_mode.dir/ablation_window_mode.cpp.o"
  "CMakeFiles/ablation_window_mode.dir/ablation_window_mode.cpp.o.d"
  "ablation_window_mode"
  "ablation_window_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
