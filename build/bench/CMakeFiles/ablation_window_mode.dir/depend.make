# Empty dependencies file for ablation_window_mode.
# This may be replaced when dependencies are built.
