# Empty compiler generated dependencies file for ablation_window_mode.
# This may be replaced when dependencies are built.
