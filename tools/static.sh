#!/usr/bin/env bash
# Static concurrency-contract gate (DESIGN.md §11).
#
# Three layers, strongest available first:
#   1. Suppression audit (always runs, no toolchain needed): the only file
#      allowed to mention NO_THREAD_SAFETY_ANALYSIS is the macro header
#      itself — annotations must be fixed, not silenced.
#   2. Clang thread-safety build: a full configure+build with
#      -DHDD_THREAD_SAFETY=ON (-Wthread-safety -Werror=thread-safety), so
#      any guarded field touched without its capability fails the gate.
#   3. clang-tidy concurrency pass: the repo profile (.clang-tidy) with
#      concurrency-* and WarningsAsErrors over every source file.
#
# Layers 2-3 skip gracefully when LLVM is not installed (the audit still
# gates), mirroring tools/lint.sh, so CI images without clang still pass.
# The last line is machine-parsable:
#   static.sh: SUMMARY audit=ok build=<ok|skipped|fail> tidy=<ok|skipped|fail>
#
# Usage: tools/static.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

BUILD_RESULT=skipped
TIDY_RESULT=skipped

fail() {
  echo "static.sh: $1"
  echo "static.sh: SUMMARY audit=${2} build=${BUILD_RESULT} tidy=${TIDY_RESULT}"
  exit 1
}

# --- 1. Suppression audit ---------------------------------------------------
ALLOWED="src/common/thread_annotations.h"
VIOLATIONS=$(grep -rln "NO_THREAD_SAFETY_ANALYSIS" src tools tests bench examples \
  --include='*.h' --include='*.cpp' 2>/dev/null | grep -vx "${ALLOWED}" || true)
if [[ -n "${VIOLATIONS}" ]]; then
  echo "${VIOLATIONS}" | sed 's/^/static.sh: suppression outside the macro header: /'
  fail "NO_THREAD_SAFETY_ANALYSIS may only appear in ${ALLOWED}" fail
fi
echo "static.sh: suppression audit clean (only ${ALLOWED})"

# --- 2. Clang thread-safety build -------------------------------------------
CLANGXX="${CLANGXX:-clang++}"
if command -v "${CLANGXX}" >/dev/null 2>&1; then
  echo "static.sh: building with ${CLANGXX} -Wthread-safety -Werror=thread-safety"
  BUILD_RESULT=fail
  cmake -S . -B build-static \
    -DCMAKE_CXX_COMPILER="${CLANGXX}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHDD_THREAD_SAFETY=ON >/dev/null
  if ! cmake --build build-static -j "${JOBS}" >/dev/null; then
    fail "thread-safety analysis failed (see build-static output)" ok
  fi
  BUILD_RESULT=ok
  echo "static.sh: thread-safety build clean"
else
  echo "static.sh: ${CLANGXX} not found; skipping the thread-safety build (install LLVM to enable)"
fi

# --- 3. clang-tidy concurrency pass -----------------------------------------
TIDY="${CLANG_TIDY:-clang-tidy}"
if command -v "${TIDY}" >/dev/null 2>&1; then
  if [[ ! -f build/compile_commands.json ]]; then
    cmake -B build -S . >/dev/null  # CMAKE_EXPORT_COMPILE_COMMANDS is on by default
  fi
  mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
  echo "static.sh: running ${TIDY} over ${#FILES[@]} files (${JOBS} jobs)"
  TIDY_RESULT=fail
  if ! printf '%s\n' "${FILES[@]}" |
      xargs -P "${JOBS}" -n 1 "${TIDY}" -p build --quiet; then
    fail "clang-tidy reported findings" ok
  fi
  TIDY_RESULT=ok
  echo "static.sh: clang-tidy clean"
else
  echo "static.sh: ${TIDY} not found; skipping clang-tidy (install LLVM to enable)"
fi

echo "static.sh: SUMMARY audit=ok build=${BUILD_RESULT} tidy=${TIDY_RESULT}"
