// hddpredict — command-line front end for the library.
//
// Everything lives in the command table (hddpredict_commands.cpp); this
// translation unit only dispatches so the same registry can be linked into
// the cli fuzzer and tests.
#include "hddpredict_commands.h"

int main(int argc, char** argv) {
  const hdd::cli::Registry registry = hdd::tools::build_registry();
  return registry.dispatch(argc, argv);
}
