// hddpredict — command-line front end for the library.
//
//   hddpredict generate  --out fleet.csv [--scale S] [--seed N]
//                        [--family W|Q|both] [--weeks A:B] [--interval H]
//   hddpredict features  --data fleet.csv [--levels N] [--rates N]
//   hddpredict train     --data fleet.csv --model out.model
//                        [--preset ct|rt|ann] [--window H] [--cp X]
//   hddpredict evaluate  --data fleet.csv --model m.tree [--voters N]
//   hddpredict predict   --data fleet.csv --model m.tree [--top K]
//   hddpredict lint      --model m.model [--format text|json]
//                        [--features auto|stat13|basic12|expert19|none]
//   hddpredict reliability [--drives N] [--fdr K] [--tia H] [--raid 5|6]
//   hddpredict ingest    --store DIR --data fleet.csv [--segment-bytes N]
//   hddpredict compact   --store DIR --min-hour H
//   hddpredict replay    --store DIR --model m.tree [--voters N]
//
// Global flags (valid with every command, parsed before the per-command
// flags): --metrics-out FILE dumps a snapshot of the process metrics
// registry (src/obs) at exit, "-" for stdout; --metrics-format text|json
// picks Prometheus text exposition (default) or JSON; --log-level
// debug|info|warn|error overrides the stderr log threshold (also settable
// via HDD_LOG_LEVEL). Without --metrics-out the registry is disabled, so
// instrumentation costs one relaxed atomic load per event.
//
// The CSV schema is documented in src/data/csv_io.h; `generate` fabricates
// a synthetic fleet in that schema so every subcommand can be exercised
// without real telemetry. `ingest`/`compact`/`replay` drive the durable
// telemetry store (src/store): CSV telemetry in, retention out, and a
// crash-resumed fleet scoring pass over the accumulated log.
//
// `lint` runs the static model verifier (src/analysis) over any persisted
// model (tree, forest or MLP — discriminated by the file header) so CI
// can gate model artifacts before deployment.
//
// Exit codes: 0 success, 1 runtime failure (I/O, bad data), 2 bad
// invocation (unknown command, unknown or malformed flag), 3 lint
// findings (warnings or errors). All usage and error text goes to stderr;
// stdout carries results only.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "core/fleet.h"
#include "core/health.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "data/csv_io.h"
#include "data/split.h"
#include "eval/tuning.h"
#include "reliability/raid.h"
#include "sim/generator.h"
#include "stats/feature_select.h"
#include "store/telemetry_store.h"

namespace {

using namespace hdd;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: hddpredict <command> [options]\n"
      "  generate  --out F [--scale S] [--seed N] [--family W|Q|both]\n"
      "            [--weeks A:B] [--interval H]\n"
      "  features  --data F [--levels N] [--rates N]\n"
      "  train     --data F --model F [--preset ct|rt|ann] [--window H]\n"
      "            [--cp X]\n"
      "  evaluate  --data F --model F [--voters N]\n"
      "  tune      --data F --model F [--budget FAR]\n"
      "  predict   --data F --model F [--top K]\n"
      "  lint      --model F [--format text|json]\n"
      "            [--features auto|stat13|basic12|expert19|none]\n"
      "  reliability [--drives N] [--fdr K] [--tia H] [--raid 5|6]\n"
      "  ingest    --store DIR --data F [--segment-bytes N]\n"
      "  compact   --store DIR --min-hour H\n"
      "  replay    --store DIR --model F [--voters N]\n"
      "global flags (any command):\n"
      "  --metrics-out FILE|-    dump the metrics registry at exit\n"
      "  --metrics-format text|json\n"
      "  --log-level debug|info|warn|error\n";
  std::exit(2);
}

// Simple flag map: --key value pairs. Flags outside `allowed` are a usage
// error (exit 2), so a typo can't silently fall back to a default.
std::map<std::string, std::string> parse_flags(
    const std::vector<std::string>& args,
    std::initializer_list<const char*> allowed) {
  std::map<std::string, std::string> flags;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& key = args[i];
    if (key.rfind("--", 0) != 0) usage("bad option: " + key);
    const std::string name = key.substr(2);
    const bool known = std::any_of(
        allowed.begin(), allowed.end(),
        [&name](const char* a) { return name == a; });
    if (!known) usage("unknown option " + key + " for this command");
    if (i + 1 >= args.size()) usage("missing value for " + key);
    flags[name] = args[++i];
  }
  return flags;
}

std::string need(const std::map<std::string, std::string>& flags,
                 const std::string& key) {
  const auto it = flags.find(key);
  if (it == flags.end()) usage("missing required --" + key);
  return it->second;
}

std::string get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  const std::string out = need(flags, "out");
  const double scale = std::stod(get(flags, "scale", "0.05"));
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(get(flags, "seed", "42")));
  const int interval = std::stoi(get(flags, "interval", "1"));
  const std::string family = get(flags, "family", "both");
  const std::string weeks = get(flags, "weeks", "0:1");

  const auto colon = weeks.find(':');
  if (colon == std::string::npos) usage("--weeks needs the form A:B");
  const int from = std::stoi(weeks.substr(0, colon));
  const int to = std::stoi(weeks.substr(colon + 1));

  auto config = sim::paper_fleet_config(scale, seed, interval);
  if (family == "W") config.families.resize(1);
  else if (family == "Q") config.families.erase(config.families.begin());
  else if (family != "both") usage("--family must be W, Q or both");

  const auto fleet = sim::generate_fleet_window(config, from, to);
  data::save_csv_file(fleet, out);
  std::cout << "wrote " << fleet.count_good() << " good + "
            << fleet.count_failed() << " failed drives ("
            << fleet.count_samples(false) + fleet.count_samples(true)
            << " samples) to " << out << '\n';
  return 0;
}

int cmd_features(const std::map<std::string, std::string>& flags) {
  const auto fleet = data::load_csv_file(need(flags, "data"));
  stats::FeatureSelectionConfig cfg;
  cfg.n_levels = std::stoi(get(flags, "levels", "10"));
  cfg.n_rates = std::stoi(get(flags, "rates", "3"));

  const auto scores = stats::score_candidates(fleet, cfg);
  Table t({"rank", "feature", "rank-sum |z|", "trend |z|", "z-score",
           "combined"});
  for (std::size_t i = 0; i < std::min<std::size_t>(scores.size(), 20); ++i) {
    t.row()
        .cell(static_cast<long long>(i + 1))
        .cell(scores[i].spec.name())
        .cell(scores[i].rank_sum_z, 1)
        .cell(scores[i].trend_z, 2)
        .cell(scores[i].zscore, 2)
        .cell(scores[i].combined(), 1);
  }
  t.print(std::cout);

  const auto selected = stats::select_features(fleet, cfg);
  std::cout << "\nselected " << selected.size() << " features:";
  for (const auto& spec : selected.specs) std::cout << ' ' << spec.name();
  std::cout << '\n';
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const auto fleet = data::load_csv_file(need(flags, "data"));
  const std::string model_path = need(flags, "model");

  // Resolved through the preset registry; unknown names throw with the
  // registered names listed.
  core::PredictorConfig cfg = core::preset(get(flags, "preset", "ct"));
  cfg.training.failed_window_hours = std::stoi(
      get(flags, "window", std::to_string(cfg.training.failed_window_hours)));
  cfg.tree_params.cp =
      std::stod(get(flags, "cp", std::to_string(cfg.tree_params.cp)));

  const auto split = data::split_dataset(fleet, {});
  core::FailurePredictor predictor(cfg);
  predictor.fit(fleet, split);
  core::save_scorer_file(predictor.scorer(), model_path);

  const auto r = predictor.evaluate(fleet, split);
  std::cout << "trained " << predictor.describe() << "\nholdout: FDR "
            << format_double(100 * r.fdr(), 2) << "%, FAR "
            << format_double(100 * r.far(), 3) << "%, TIA "
            << format_double(r.mean_tia(), 0) << " h\nmodel written to "
            << model_path << '\n';
  return 0;
}

int cmd_evaluate(const std::map<std::string, std::string>& flags) {
  const auto fleet = data::load_csv_file(need(flags, "data"));
  const auto tree = core::load_tree_file(need(flags, "model"));
  const int voters = std::stoi(get(flags, "voters", "11"));

  const auto split = data::split_dataset(fleet, {});
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");
  eval::VoteConfig vote;
  vote.voters = voters;
  const auto r = eval::evaluate(
      fleet, split, features,
      [&tree](std::span<const float> x) { return tree.predict(x); }, vote);

  Table t({"metric", "value"});
  t.row().cell("good test drives").cell(static_cast<long long>(r.n_good));
  t.row().cell("failed test drives").cell(static_cast<long long>(r.n_failed));
  t.row().cell("FDR (%)").cell(100 * r.fdr(), 2);
  t.row().cell("FAR (%)").cell(100 * r.far(), 3);
  t.row().cell("mean TIA (h)").cell(r.mean_tia(), 1);
  t.print(std::cout);
  return 0;
}

int cmd_tune(const std::map<std::string, std::string>& flags) {
  const auto fleet = data::load_csv_file(need(flags, "data"));
  const auto tree = core::load_tree_file(need(flags, "model"));
  const double budget = std::stod(get(flags, "budget", "0.001"));
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");

  const auto split = data::split_dataset(fleet, {});
  const auto scores = eval::score_dataset(
      fleet, split, features,
      [&tree](std::span<const float> x) { return tree.predict(x); });
  const int candidates[] = {1, 3, 5, 7, 9, 11, 15, 17, 21, 27};
  const auto best = eval::tune_voters(scores, candidates, budget);
  if (!best) {
    std::cerr << "error: no voter count meets FAR <= "
              << format_double(100 * budget, 3) << "%\n";
    return 1;
  }
  Table t({"metric", "value"});
  t.row().cell("chosen voters N").cell(
      static_cast<long long>(best->vote.voters));
  t.row().cell("FDR (%)").cell(100 * best->result.fdr(), 2);
  t.row().cell("FAR (%)").cell(100 * best->result.far(), 3);
  t.row().cell("mean TIA (h)").cell(best->result.mean_tia(), 1);
  t.print(std::cout);
  return 0;
}

int cmd_predict(const std::map<std::string, std::string>& flags) {
  const auto fleet = data::load_csv_file(need(flags, "data"));
  const auto tree = core::load_tree_file(need(flags, "model"));
  const auto top = static_cast<std::size_t>(
      std::stoul(get(flags, "top", "15")));
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");

  // Score every drive's latest sample; surface the worst.
  core::WarningQueue queue;
  for (const auto& d : fleet.drives) {
    if (d.empty()) continue;
    const auto row =
        smart::extract_features(d, d.samples.size() - 1, features);
    queue.push({d.serial, tree.predict(*row), d.last_hour()});
  }
  Table t({"drive", "margin", "as of hour"});
  for (std::size_t i = 0; i < top && !queue.empty(); ++i) {
    const auto w = queue.pop();
    t.row()
        .cell(w.serial)
        .cell(w.health, 3)
        .cell(static_cast<long long>(w.hour));
  }
  std::cout << "drives most at risk (negative margin = predicted failing):\n";
  t.print(std::cout);
  return 0;
}

int cmd_lint(const std::map<std::string, std::string>& flags) {
  const obs::ScopedTimer timer(&obs::Registry::global().histogram(
      "hdd_lint_wall_ns", "lint subcommand wall time (ns)."));
  const std::string model_path = need(flags, "model");
  const std::string format = get(flags, "format", "text");
  if (format != "text" && format != "json") {
    usage("--format must be text or json");
  }
  const std::string features = get(flags, "features", "auto");
  const auto feature_set =
      [](const std::string& name) -> std::optional<smart::FeatureSet> {
    if (name == "stat13") return smart::stat13_features();
    if (name == "basic12") return smart::basic12_features();
    if (name == "expert19") return smart::expert19_features();
    return std::nullopt;
  };
  // Flag validation before any I/O: a typo is a usage error (exit 2)
  // even when the model file is also missing.
  if (features != "auto" && features != "none" && !feature_set(features)) {
    usage("--features must be auto, stat13, basic12, expert19 or none");
  }

  // Lint wants every diagnostic, so load with verification off and run
  // the verifier explicitly against the resolved feature domains.
  core::LoadOptions load;
  load.verify = core::VerifyMode::kOff;
  const auto model = core::load_model_file(model_path, load);
  const int width = core::model_num_features(model);

  analysis::VerifyOptions vo;
  std::string domain_set = "none";
  if (features == "auto") {
    // Pick the layout whose width matches the model; fall back to
    // unbounded domains when no known layout fits.
    for (const char* name : {"stat13", "basic12", "expert19"}) {
      const auto fs = feature_set(name);
      if (static_cast<int>(fs->size()) == width) {
        vo.domains = analysis::FeatureDomains::for_feature_set(*fs);
        domain_set = name;
        break;
      }
    }
  } else if (features != "none") {
    const auto fs = feature_set(features);
    HDD_REQUIRE(static_cast<int>(fs->size()) == width,
                "--features " + features + " has " +
                    std::to_string(fs->size()) +
                    " features but the model expects " +
                    std::to_string(width));
    vo.domains = analysis::FeatureDomains::for_feature_set(*fs);
    domain_set = features;
  }

  const auto report = core::verify_model(model, vo, model_path);
  if (format == "json") {
    analysis::print_json(report, std::cout);
  } else {
    analysis::print_text(report, std::cout);
    std::cout << "lint: " << model_path << ": "
              << core::model_kind_name(model) << " model, " << width
              << " features (domains: " << domain_set << "): "
              << report.count(analysis::Severity::kError) << " error(s), "
              << report.count(analysis::Severity::kWarning)
              << " warning(s), " << report.count(analysis::Severity::kNote)
              << " note(s)\n";
  }
  return report.has_findings() ? 3 : 0;
}

int cmd_reliability(const std::map<std::string, std::string>& flags) {
  reliability::RaidPredictionParams p;
  p.n_drives = std::stoi(get(flags, "drives", "500"));
  p.fdr = std::stod(get(flags, "fdr", "0.9549"));
  p.tia_hours = std::stod(get(flags, "tia", "355"));
  p.tolerated_failures = std::stoi(get(flags, "raid", "6")) == 5 ? 1 : 2;

  const double with = reliability::mttdl_raid_with_prediction(p);
  auto without = p;
  without.fdr = 0.0;
  const double base = reliability::mttdl_raid_with_prediction(without);

  Table t({"configuration", "MTTDL (years)"});
  t.row().cell("without prediction").cell(base / reliability::kHoursPerYear, 2);
  t.row().cell("with prediction").cell(with / reliability::kHoursPerYear, 2);
  t.row().cell("improvement (x)").cell(with / base, 1);
  t.print(std::cout);
  return 0;
}

int cmd_ingest(const std::map<std::string, std::string>& flags) {
  const std::string dir = need(flags, "store");
  const auto fleet = data::load_csv_file(need(flags, "data"));
  store::StoreOptions opt;
  opt.segment_bytes = std::stoull(
      get(flags, "segment-bytes", std::to_string(opt.segment_bytes)));
  store::TelemetryStore store(dir, opt);

  // Raw vendor telemetry gets the full domain check: a NaN or a value off
  // the 1-253 scale is quarantined (counted, not stored) instead of
  // poisoning every downstream feature that touches it.
  obs::Counter& quarantine_counter = obs::Registry::global().counter(
      "hdd_fleet_quarantined_samples_total",
      "Samples quarantined at ingest (non-finite or out-of-domain values).");
  std::size_t appended = 0;
  std::size_t skipped = 0;
  std::size_t quarantined = 0;
  for (const auto& d : fleet.drives) {
    const std::uint32_t id = store.register_drive(d.serial);
    for (const auto& s : d.samples) {
      const auto fault = smart::classify_sample(s, /*domain_check=*/true);
      if (fault != smart::SampleFault::kNone) {
        ++quarantined;
        quarantine_counter.inc();
        continue;
      }
      // Re-running an ingest is a no-op for hours already on disk.
      if (store.drive(id).last_hour >= s.hour) {
        ++skipped;
        continue;
      }
      store.append(id, s);
      ++appended;
    }
  }
  store.flush();
  std::cout << "ingested " << appended << " samples (" << skipped
            << " already present, " << quarantined << " quarantined) for "
            << fleet.drives.size() << " drives into " << dir << " ("
            << store.segment_count() << " segments)\n";
  return 0;
}

int cmd_compact(const std::map<std::string, std::string>& flags) {
  const std::string dir = need(flags, "store");
  const auto min_hour =
      static_cast<std::int64_t>(std::stoll(need(flags, "min-hour")));
  store::TelemetryStore store(dir);
  const std::size_t before = store.sample_count();
  const auto r = store.compact(min_hour);
  std::cout << "compacted " << dir << ": kept " << r.kept << ", dropped "
            << r.dropped << " of " << before << " samples; "
            << store.segment_count() << " segment(s) remain\n";
  return 0;
}

int cmd_replay(const std::map<std::string, std::string>& flags) {
  const std::string dir = need(flags, "store");
  auto tree = core::load_tree_file(need(flags, "model"));
  const int voters = std::stoi(get(flags, "voters", "11"));
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");

  store::TelemetryStore store(dir);
  const auto& rec = store.recovery();
  if (rec.tail_truncated || rec.records_dropped > 0 ||
      rec.segments_skipped > 0) {
    std::cout << "recovery: " << rec.records_recovered
              << " records recovered, " << rec.records_dropped
              << " dropped, " << rec.torn_bytes_truncated
              << " torn bytes truncated\n";
  }

  const auto scorer = core::make_tree_scorer(std::move(tree));
  core::FleetScorerConfig fc;
  fc.features = features;
  fc.vote.voters = voters;
  core::FleetScorer fleet(*scorer, fc);
  const auto r = fleet.resume_from(store);
  std::cout << "replayed " << r.samples_replayed << " samples for "
            << r.drives << " drives through hour " << r.last_hour;
  if (r.partial_dropped > 0) {
    std::cout << " (dropped a torn interval of " << r.partial_dropped
              << " samples)";
  }
  std::cout << '\n';

  const auto alarmed = fleet.alarmed_drives();
  if (alarmed.empty()) {
    std::cout << "no alarms\n";
    return 0;
  }
  Table t({"drive", "alarm hour"});
  for (const std::size_t i : alarmed) {
    t.row()
        .cell(fleet.serial(i))
        .cell(static_cast<long long>(fleet.state(i).alarm_hour()));
  }
  std::cout << alarmed.size() << " drive(s) in alarm:\n";
  t.print(std::cout);
  return 0;
}

int dispatch(const std::string& command, const std::vector<std::string>& rest);

// Pulls the global flags out of `rest` (any position), applying --log-level
// immediately. Returns the --metrics-out path ("" = no dump) and format.
std::pair<std::string, obs::Format> extract_global_flags(
    std::vector<std::string>& rest) {
  std::string metrics_out;
  obs::Format metrics_format = obs::Format::kPrometheus;
  for (std::size_t i = 0; i < rest.size();) {
    const std::string key = rest[i];
    if (key != "--metrics-out" && key != "--metrics-format" &&
        key != "--log-level") {
      ++i;
      continue;
    }
    if (i + 1 >= rest.size()) usage("missing value for " + key);
    const std::string value = rest[i + 1];
    if (key == "--metrics-out") {
      metrics_out = value;
    } else if (key == "--metrics-format") {
      const auto f = obs::parse_format(value);
      if (!f) usage("--metrics-format must be text or json");
      metrics_format = *f;
    } else {
      const auto level = parse_log_level(value);
      if (!level) usage("--log-level must be debug, info, warn or error");
      set_log_level(*level);
    }
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
               rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
  }
  return {metrics_out, metrics_format};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  const auto [metrics_out, metrics_format] = extract_global_flags(rest);
  // With no dump requested the registry stays off: every instrument still
  // registers, but each record is a single relaxed load.
  if (metrics_out.empty()) obs::Registry::global().set_enabled(false);

  int rc = 0;
  try {
    rc = dispatch(command, rest);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    rc = 1;
  }
  if (!metrics_out.empty()) {
    const bool ok = obs::write_snapshot(obs::Registry::global().snapshot(),
                                        metrics_out, metrics_format);
    if (!ok && rc == 0) rc = 1;
  }
  return rc;
}

namespace {

int dispatch(const std::string& command, const std::vector<std::string>& rest) {
  {
    const auto parse = [&](std::initializer_list<const char*> allowed) {
      return parse_flags(rest, allowed);
    };
    if (command == "generate") {
      return cmd_generate(
          parse({"out", "scale", "seed", "family", "weeks", "interval"}));
    }
    if (command == "features") {
      return cmd_features(parse({"data", "levels", "rates"}));
    }
    if (command == "train") {
      return cmd_train(parse({"data", "model", "preset", "window", "cp"}));
    }
    if (command == "evaluate") {
      return cmd_evaluate(parse({"data", "model", "voters"}));
    }
    if (command == "tune") {
      return cmd_tune(parse({"data", "model", "budget"}));
    }
    if (command == "predict") {
      return cmd_predict(parse({"data", "model", "top"}));
    }
    if (command == "lint") {
      return cmd_lint(parse({"model", "format", "features"}));
    }
    if (command == "reliability") {
      return cmd_reliability(parse({"drives", "fdr", "tia", "raid"}));
    }
    if (command == "ingest") {
      return cmd_ingest(parse({"store", "data", "segment-bytes"}));
    }
    if (command == "compact") {
      return cmd_compact(parse({"store", "min-hour"}));
    }
    if (command == "replay") {
      return cmd_replay(parse({"store", "model", "voters"}));
    }
    usage("unknown command: " + command);
  }
}

}  // namespace
