#!/usr/bin/env bash
# Source lint: clang-tidy over src/ and tools/ with the repo's .clang-tidy
# profile. Needs a compile_commands.json; configures the plain build
# directory to produce one if it is missing. Exits 0 with a notice when
# clang-tidy is not installed, so CI images without LLVM still pass.
#
# Usage: tools/lint.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "lint.sh: ${TIDY} not found; skipping clang-tidy (install LLVM to enable)"
  exit 0
fi

if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
echo "lint.sh: running ${TIDY} over ${#FILES[@]} files (${JOBS} jobs)"

STATUS=0
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 1 "${TIDY}" -p build --quiet || STATUS=$?

if [[ "${STATUS}" != 0 ]]; then
  echo "lint.sh: clang-tidy reported findings"
  exit 1
fi
echo "lint.sh: clean"
