// The hddpredict command table, exposed as a library so the binary, the
// cli fuzzer (fuzz/cli_fuzzer.cpp, through Registry::check's parse-only
// mode) and tests all share the one real registry — a fuzzed flag table
// that diverged from the shipped one would pin nothing.
#pragma once

#include "cli/command.h"

namespace hdd::tools {

// Declares every subcommand (generate/train/.../serve/client/adversary)
// with its typed ArgSpec table and handler.
cli::Registry build_registry();

}  // namespace hdd::tools
