#!/usr/bin/env bash
# Fuzzing driver for the fuzz/ harnesses (DESIGN.md §13): the frame,
# segment, model, store-op and cli entry points, each a libFuzzer target
# when clang is the compiler and a standalone corpus-replay binary under
# gcc (fuzz/standalone_main.cpp).
#
# Modes:
#   tools/fuzz.sh --regress [jobs]
#       Corpus regression: build the fuzz binaries under ASan+UBSan and
#       replay every checked-in seed (tests/fuzz/corpus/<harness>/)
#       through them. Works with any compiler — libFuzzer binaries treat
#       file arguments as single-shot inputs, and the gcc standalone
#       binaries do the same. This is the mode check.sh runs.
#   tools/fuzz.sh [--seconds N] [jobs]
#       Long-run coverage-guided fuzzing (default 60 s per harness) over
#       a scratch corpus seeded from the checked-in one. Requires clang;
#       without it the script degrades to the corpus regression and says
#       so. Coverage-increasing inputs accumulate in
#       build-fuzz/corpus/<harness>/ — minimize and check in the keepers
#       as seeds; crash artifacts land in build-fuzz/crashes/.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=run
SECONDS_PER=60
JOBS=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --regress) MODE=regress; shift ;;
    --seconds) SECONDS_PER="$2"; shift 2 ;;
    *) JOBS="$1"; shift ;;
  esac
done
JOBS="${JOBS:-$(nproc)}"

BUILD=build-fuzz
HARNESSES=(frame segment model store_op cli)
HAVE_CLANG=0
if command -v clang++ > /dev/null && command -v clang > /dev/null; then
  HAVE_CLANG=1
fi

echo "=== configure ${BUILD} (HDD_FUZZ=ON, ASan+UBSan$(
    [[ ${HAVE_CLANG} == 1 ]] && echo ", clang/libFuzzer" \
                             || echo ", gcc standalone")) ==="
CONFIG=(-DHDD_FUZZ=ON -DHDD_SANITIZE=address+undefined)
if [[ "${HAVE_CLANG}" == 1 ]]; then
  CONFIG+=(-DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++)
fi
cmake -B "${BUILD}" -S . "${CONFIG[@]}"
TARGETS=()
for h in "${HARNESSES[@]}"; do TARGETS+=("${h}_fuzzer"); done
echo "=== build ${BUILD} (${TARGETS[*]}) ==="
cmake --build "${BUILD}" -j "${JOBS}" --target "${TARGETS[@]}"

regress() {
  local failed=0
  for h in "${HARNESSES[@]}"; do
    local seeds=(tests/fuzz/corpus/"${h}"/*)
    if [[ ! -e "${seeds[0]}" ]]; then
      echo "fuzz regress FAILED: no seeds in tests/fuzz/corpus/${h}" >&2
      return 1
    fi
    echo "=== replay ${#seeds[@]} seed(s): ${h}_fuzzer ==="
    if ! "${BUILD}/fuzz/${h}_fuzzer" "${seeds[@]}" > /dev/null; then
      echo "fuzz regress FAILED: ${h}_fuzzer crashed on a seed" >&2
      failed=1
    fi
  done
  return "${failed}"
}

if [[ "${MODE}" == "regress" ]]; then
  regress
  echo "=== fuzz corpus regression passed ==="
  exit 0
fi

if [[ "${HAVE_CLANG}" != 1 ]]; then
  echo "fuzz.sh: clang not found — libFuzzer unavailable; running the" \
       "corpus regression instead" >&2
  regress
  echo "=== fuzz corpus regression passed (install clang to fuzz) ==="
  exit 0
fi

mkdir -p "${BUILD}/crashes"
for h in "${HARNESSES[@]}"; do
  mkdir -p "${BUILD}/corpus/${h}"
  echo "=== fuzz ${h}_fuzzer (${SECONDS_PER}s) ==="
  "${BUILD}/fuzz/${h}_fuzzer" \
      -max_total_time="${SECONDS_PER}" \
      -artifact_prefix="${BUILD}/crashes/${h}-" \
      -print_final_stats=1 \
      "${BUILD}/corpus/${h}" "tests/fuzz/corpus/${h}"
done
echo "=== fuzzing done; new inputs in ${BUILD}/corpus/," \
     "crashes (if any) in ${BUILD}/crashes/ ==="
