#!/usr/bin/env bash
# Tier-1 verification: full build + ctest across sanitizer configurations —
# plain, AddressSanitizer (-DHDD_SANITIZE=address) and UndefinedBehavior-
# Sanitizer (-DHDD_SANITIZE=undefined, recovery disabled so any UB fails
# the run). Separate build directories so the configurations never share
# object files. Every configuration additionally re-runs the `analysis`,
# `obs` and `fault` test labels on their own, so a static-verifier,
# metrics or fault-injection regression is called out by name even when
# the full suite is noisy (the `fault` label is the randomized
# kill-and-resume property harness — hundreds of seeded fault schedules,
# also exercised under ASan).
# The plain configuration also smoke-tests `--metrics-out -` end to end,
# boots a real `hddpredict serve` daemon for an ingest/query/metrics
# round trip and again for a tracing round trip (`hddpredict trace`
# fetching /debug/trace, span chain asserted from the JSON), and a
# ThreadSanitizer build runs the `obs` and `serve` labels (sharded
# counters, the span rings and the multi-threaded daemon all claim
# TSan-clean).
# The full (non-fast) run additionally stretches the serve soak test to
# ~30 s of fault-injected mixed operations (HDD_SOAK_MS=30000) and
# replays the checked-in fuzz corpus through the five fuzz entry points
# under ASan+UBSan (tools/fuzz.sh --regress).
# Before any build, tools/static.sh gates the concurrency contracts
# (thread-safety-annotation suppression audit; clang -Wthread-safety and
# clang-tidy concurrency-* when LLVM is installed). Sanitizer configs
# compile with HDD_LOCK_ORDER_CHECKS, so the runtime lock-rank checker
# (src/common/lock_order.h) is live throughout the ASan/UBSan/TSan legs.
#
# Usage: tools/check.sh [--fast] [jobs]
#   --fast   static gate + plain configuration only (skips the sanitizers)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi
JOBS="${1:-$(nproc)}"

run_config() {
  local build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  echo "=== ctest ${build_dir} (label: analysis) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L analysis
  echo "=== ctest ${build_dir} (label: obs) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L obs
  echo "=== ctest ${build_dir} (label: fault) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L fault
  echo "=== ctest ${build_dir} (label: serve) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L serve
  echo "=== ctest ${build_dir} (label: pipeline) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L pipeline
  echo "=== ctest ${build_dir} (label: concurrency) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L concurrency
  echo "=== ctest ${build_dir} (label: fuzz) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L fuzz
}

# Bounded serve soak: the multi-client ingest/query/stats loop against a
# fault-injecting store (tests/serve_soak_test.cpp) stretched to ~30 s of
# mixed operations, with the byte-identical-resume and fd-leak assertions
# it always carries. The default ctest pass runs the same test at ~2 s;
# this leg is the longer shake-out.
soak_smoke() {
  local build_dir="$1"
  echo "=== serve soak (label: soak, HDD_SOAK_MS=30000) ==="
  HDD_SOAK_MS=30000 ctest --test-dir "${build_dir}" \
      --output-on-failure -L soak
}

# End-to-end smoke of the metrics pipeline: generate -> train -> ingest ->
# replay --metrics-out -, then assert the three headline instrument names
# made it into the Prometheus dump.
obs_smoke() {
  local build_dir="$1"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local bin="${build_dir}/tools/hddpredict"
  echo "=== obs smoke (${bin}) ==="
  "${bin}" generate --out "${tmp}/fleet.csv" --scale 0.02 --family W \
      --seed 11 --interval 2 > /dev/null
  "${bin}" train --data "${tmp}/fleet.csv" --model "${tmp}/m.tree" \
      > /dev/null
  "${bin}" ingest --store "${tmp}/store" --data "${tmp}/fleet.csv" \
      > /dev/null
  "${bin}" replay --store "${tmp}/store" --model "${tmp}/m.tree" \
      --voters 5 --metrics-out - > "${tmp}/metrics.txt"
  local name
  for name in hdd_fleet_samples_scored_total \
              hdd_fleet_batch_latency_ns \
              hdd_store_recovery_outcomes_total; do
    if ! grep -q "${name}" "${tmp}/metrics.txt"; then
      echo "obs smoke FAILED: ${name} missing from metrics dump" >&2
      return 1
    fi
  done
  echo "=== obs smoke passed ==="
}

# End-to-end smoke of the daemon: boot `serve` on an ephemeral port, push
# a fleet through the wire client, query a drive, scrape /metrics over
# HTTP, then shut down via the wire op and assert a clean exit.
serve_smoke() {
  local build_dir="$1"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local bin="${build_dir}/tools/hddpredict"
  echo "=== serve smoke (${bin}) ==="
  "${bin}" generate --out "${tmp}/fleet.csv" --scale 0.02 --family W \
      --seed 11 --interval 2 > /dev/null
  "${bin}" train --data "${tmp}/fleet.csv" --model "${tmp}/m.tree" \
      > /dev/null
  "${bin}" serve --store "${tmp}/store" --model "${tmp}/m.tree" \
      --port 0 --port-file "${tmp}/port" > "${tmp}/serve.log" &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    [[ -s "${tmp}/port" ]] && { port="$(cat "${tmp}/port")"; break; }
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "serve smoke FAILED: daemon never wrote its port file" >&2
    kill "${serve_pid}" 2> /dev/null || true
    return 1
  fi
  "${bin}" client --addr "127.0.0.1:${port}" --op ingest \
      --data "${tmp}/fleet.csv" | grep -q "ingested" || {
    echo "serve smoke FAILED: wire ingest" >&2; return 1; }
  "${bin}" client --addr "127.0.0.1:${port}" --op stats \
      | grep -q "drives" || {
    echo "serve smoke FAILED: stats" >&2; return 1; }
  "${bin}" client --addr "127.0.0.1:${port}" --op metrics \
      | grep -q "hdd_serve_ingest_samples_total" || {
    echo "serve smoke FAILED: /metrics scrape" >&2; return 1; }
  "${bin}" client --addr "127.0.0.1:${port}" --op shutdown > /dev/null
  if ! wait "${serve_pid}"; then
    echo "serve smoke FAILED: daemon exited non-zero" >&2
    cat "${tmp}/serve.log" >&2
    return 1
  fi
  grep -q "served" "${tmp}/serve.log" || {
    echo "serve smoke FAILED: no shutdown summary" >&2; return 1; }
  echo "=== serve smoke passed ==="
}

# End-to-end smoke of the continuous-update pipeline: ingest a fleet into
# a store, run one forced autoretrain cycle against it, and assert the
# promoted generation shows up both in the CLI summary and as the
# hdd_pipeline_generation gauge in the metrics dump.
pipeline_smoke() {
  local build_dir="$1"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local bin="${build_dir}/tools/hddpredict"
  echo "=== pipeline smoke (${bin}) ==="
  "${bin}" generate --out "${tmp}/fleet.csv" --scale 0.02 --family W \
      --seed 11 --interval 2 > /dev/null
  "${bin}" train --data "${tmp}/fleet.csv" --model "${tmp}/m.tree" \
      > /dev/null
  "${bin}" ingest --store "${tmp}/store" --data "${tmp}/fleet.csv" \
      > /dev/null
  "${bin}" autoretrain --store "${tmp}/store" --model "${tmp}/m.tree" \
      --failed-data "${tmp}/fleet.csv" --cycles 1 \
      --metrics-out "${tmp}/metrics.txt" > "${tmp}/out.txt"
  grep -q "generation 0 -> 1" "${tmp}/out.txt" || {
    echo "pipeline smoke FAILED: no generation bump in CLI summary" >&2
    cat "${tmp}/out.txt" >&2
    return 1
  }
  grep -q "^hdd_pipeline_generation 1" "${tmp}/metrics.txt" || {
    echo "pipeline smoke FAILED: hdd_pipeline_generation gauge not 1" >&2
    return 1
  }
  echo "=== pipeline smoke passed ==="
}

# End-to-end smoke of request tracing: boot `serve` (tracing defaults on),
# push a fleet through the wire client so a traced request crosses the
# daemon, fetch the flight recorder with `hddpredict trace`, and assert
# the JSON parses and holds the ingest -> journal span chain.
trace_smoke() {
  local build_dir="$1"
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local bin="${build_dir}/tools/hddpredict"
  echo "=== trace smoke (${bin}) ==="
  "${bin}" generate --out "${tmp}/fleet.csv" --scale 0.02 --family W \
      --seed 11 --interval 2 > /dev/null
  "${bin}" train --data "${tmp}/fleet.csv" --model "${tmp}/m.tree" \
      > /dev/null
  "${bin}" serve --store "${tmp}/store" --model "${tmp}/m.tree" \
      --fsync always --port 0 --port-file "${tmp}/port" \
      > "${tmp}/serve.log" &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    [[ -s "${tmp}/port" ]] && { port="$(cat "${tmp}/port")"; break; }
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "trace smoke FAILED: daemon never wrote its port file" >&2
    kill "${serve_pid}" 2> /dev/null || true
    return 1
  fi
  "${bin}" client --addr "127.0.0.1:${port}" --op ingest \
      --data "${tmp}/fleet.csv" > /dev/null || {
    echo "trace smoke FAILED: wire ingest" >&2; return 1; }
  "${bin}" trace --addr "127.0.0.1:${port}" --ms 60000 \
      --out "${tmp}/trace.json" > /dev/null || {
    echo "trace smoke FAILED: hddpredict trace" >&2; return 1; }
  "${bin}" client --addr "127.0.0.1:${port}" --op shutdown > /dev/null
  wait "${serve_pid}" || {
    echo "trace smoke FAILED: daemon exited non-zero" >&2
    cat "${tmp}/serve.log" >&2
    return 1
  }
  if command -v python3 > /dev/null; then
    python3 - "${tmp}/trace.json" << 'EOF' || return 1
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
names = {e["name"] for e in trace["traceEvents"]}
need = {"serve.request", "wire.parse", "shard.queue_wait", "shard.ingest",
        "fleet.ingest", "store.append", "store.fsync", "wire.respond"}
missing = need - names
if missing:
    sys.exit("trace smoke FAILED: spans missing from /debug/trace: "
             + ", ".join(sorted(missing)))
EOF
  else
    local name
    for name in serve.request shard.ingest store.fsync wire.respond; do
      grep -q "\"${name}\"" "${tmp}/trace.json" || {
        echo "trace smoke FAILED: span ${name} missing" >&2; return 1; }
    done
  fi
  echo "=== trace smoke passed ==="
}

# Concurrency-contract gate (suppression audit + clang thread-safety build
# + clang-tidy; skips the LLVM layers gracefully when clang is absent).
echo "=== static gate (tools/static.sh) ==="
tools/static.sh "${JOBS}"

run_config build
obs_smoke build
serve_smoke build
pipeline_smoke build
trace_smoke build
if [[ "${FAST}" == "1" ]]; then
  echo "=== fast check passed (static gate + plain) ==="
  exit 0
fi
soak_smoke build
run_config build-asan -DHDD_SANITIZE=address
run_config build-ubsan -DHDD_SANITIZE=undefined

# Fuzz corpus regression under ASan+UBSan: every checked-in seed replayed
# through the five fuzz entry points (tools/fuzz.sh builds build-fuzz with
# clang/libFuzzer when available, gcc standalone-replay binaries
# otherwise).
tools/fuzz.sh --regress "${JOBS}"

# ThreadSanitizer over the concurrency surfaces: the sharded-atomic
# counters, the multi-threaded serve daemon and the hot-swap/shadow path
# of the update pipeline all claim TSan-clean, so hold them to that.
echo "=== configure build-tsan (-DHDD_SANITIZE=thread) ==="
cmake -B build-tsan -S . -DHDD_SANITIZE=thread
echo "=== build build-tsan (obs_test trace_test serve_test pipeline_test retrain_loop_test lock_order_test) ==="
cmake --build build-tsan -j "${JOBS}" \
    --target obs_test trace_test serve_test pipeline_test \
        retrain_loop_test lock_order_test
echo "=== ctest build-tsan (labels: obs serve pipeline concurrency) ==="
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -L 'obs|serve|pipeline|concurrency'

echo "=== all checks passed (static gate + plain + soak + asan + ubsan + fuzz regress + tsan-obs/serve/pipeline/concurrency) ==="
