#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, twice — once plain, once under
# AddressSanitizer (-DHDD_SANITIZE=address). Separate build directories so
# the two configurations never share object files.
#
# Usage: tools/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_config build
run_config build-asan -DHDD_SANITIZE=address

echo "=== all checks passed (plain + asan) ==="
