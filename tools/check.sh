#!/usr/bin/env bash
# Tier-1 verification: full build + ctest across sanitizer configurations —
# plain, AddressSanitizer (-DHDD_SANITIZE=address) and UndefinedBehavior-
# Sanitizer (-DHDD_SANITIZE=undefined, recovery disabled so any UB fails
# the run). Separate build directories so the configurations never share
# object files. Every configuration additionally re-runs the `analysis`
# test label on its own, so a static-verifier regression is called out by
# name even when the full suite is noisy.
#
# Usage: tools/check.sh [--fast] [jobs]
#   --fast   plain configuration only (skips the sanitizer builds)
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi
JOBS="${1:-$(nproc)}"

run_config() {
  local build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  echo "=== ctest ${build_dir} (label: analysis) ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
      -L analysis
}

run_config build
if [[ "${FAST}" == "1" ]]; then
  echo "=== fast check passed (plain only) ==="
  exit 0
fi
run_config build-asan -DHDD_SANITIZE=address
run_config build-ubsan -DHDD_SANITIZE=undefined

echo "=== all checks passed (plain + asan + ubsan) ==="
