// hddpredict command handlers + the registry table (hddpredict_commands.h).
//
// Commands are declared once in a cli::Registry table (src/cli): name,
// summary, typed ArgSpecs. The registry owns flag validation, usage text
// and the global flags; each cmd_* handler only reads validated values and
// does the work. Run `hddpredict` with no arguments for the full usage.
// The thin main() lives in hddpredict.cpp; this translation unit is a
// library so the cli fuzzer and tests can exercise the real table.
//
// Global flags (valid with every command, parsed before the per-command
// flags): --metrics-out FILE dumps a snapshot of the process metrics
// registry (src/obs) at exit, "-" for stdout; --metrics-format text|json
// picks Prometheus text exposition (default) or JSON; --log-level
// debug|info|warn|error overrides the stderr log threshold (also settable
// via HDD_LOG_LEVEL). Without --metrics-out the registry is disabled, so
// instrumentation costs one relaxed atomic load per event (`serve`
// re-enables it: the daemon exposes the registry over GET /metrics).
//
// The CSV schema is documented in src/data/csv_io.h; `generate` fabricates
// a synthetic fleet in that schema so every subcommand can be exercised
// without real telemetry. `ingest`/`compact`/`replay` drive the durable
// telemetry store (src/store): CSV telemetry in, retention out, and a
// crash-resumed fleet scoring pass over the accumulated log. `serve` keeps
// that stack resident behind a TCP endpoint (src/serve); `client` talks to
// it.
//
// `lint` runs the static model verifier (src/analysis) over any persisted
// model (tree, forest or MLP — discriminated by the file header) so CI
// can gate model artifacts before deployment.
//
// Exit codes: 0 success, 1 runtime failure (I/O, bad data), 2 bad
// invocation (unknown command, unknown or malformed flag), 3 lint
// findings (warnings or errors). All usage and error text goes to stderr;
// stdout carries results only.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hddpredict_commands.h"

#include "analysis/verifier.h"
#include "cli/command.h"
#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "core/fleet.h"
#include "core/health.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "core/runtime.h"
#include "data/csv_io.h"
#include "data/split.h"
#include "eval/adversarial.h"
#include "eval/tuning.h"
#include "io/shutdown.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "reliability/raid.h"
#include "serve/client.h"
#include "serve/retrain_loop.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "sim/generator.h"
#include "stats/feature_select.h"
#include "store/telemetry_store.h"

namespace {

using namespace hdd;
using cli::ArgSpec;
using cli::Args;

ArgSpec required(ArgSpec spec) {
  spec.required = true;
  return spec;
}

int cmd_generate(const Args& args) {
  const std::string out = args.get("out");
  const double scale = args.get_double("scale");
  const auto seed = args.get_uint64("seed");
  const int interval = args.get_int("interval");
  const std::string family = args.get("family");
  const std::string weeks = args.get("weeks");

  const auto colon = weeks.find(':');
  if (colon == std::string::npos) {
    throw cli::UsageError("--weeks needs the form A:B");
  }
  const int from = std::stoi(weeks.substr(0, colon));
  const int to = std::stoi(weeks.substr(colon + 1));

  auto config = sim::paper_fleet_config(scale, seed, interval);
  if (family == "W") config.families.resize(1);
  else if (family == "Q") config.families.erase(config.families.begin());

  const auto fleet = sim::generate_fleet_window(config, from, to);
  data::save_csv_file(fleet, out);
  std::cout << "wrote " << fleet.count_good() << " good + "
            << fleet.count_failed() << " failed drives ("
            << fleet.count_samples(false) + fleet.count_samples(true)
            << " samples) to " << out << '\n';
  return 0;
}

int cmd_features(const Args& args) {
  const auto fleet = data::load_csv_file(args.get("data"));
  stats::FeatureSelectionConfig cfg;
  cfg.n_levels = args.get_int("levels");
  cfg.n_rates = args.get_int("rates");

  const auto scores = stats::score_candidates(fleet, cfg);
  Table t({"rank", "feature", "rank-sum |z|", "trend |z|", "z-score",
           "combined"});
  for (std::size_t i = 0; i < std::min<std::size_t>(scores.size(), 20); ++i) {
    t.row()
        .cell(static_cast<long long>(i + 1))
        .cell(scores[i].spec.name())
        .cell(scores[i].rank_sum_z, 1)
        .cell(scores[i].trend_z, 2)
        .cell(scores[i].zscore, 2)
        .cell(scores[i].combined(), 1);
  }
  t.print(std::cout);

  const auto selected = stats::select_features(fleet, cfg);
  std::cout << "\nselected " << selected.size() << " features:";
  for (const auto& spec : selected.specs) std::cout << ' ' << spec.name();
  std::cout << '\n';
  return 0;
}

int cmd_train(const Args& args) {
  const auto fleet = data::load_csv_file(args.get("data"));
  const std::string model_path = args.get("model");

  // Resolved through the preset registry; unknown names throw with the
  // registered names listed.
  core::PredictorConfig cfg = core::preset(args.get("preset"));
  if (args.has("window")) {
    cfg.training.failed_window_hours = args.get_int("window");
  }
  if (args.has("cp")) cfg.tree_params.cp = args.get_double("cp");

  const auto split = data::split_dataset(fleet, {});
  core::FailurePredictor predictor(cfg);
  predictor.fit(fleet, split);
  core::save_scorer_file(predictor.scorer(), model_path);

  const auto r = predictor.evaluate(fleet, split);
  std::cout << "trained " << predictor.describe() << "\nholdout: FDR "
            << format_double(100 * r.fdr(), 2) << "%, FAR "
            << format_double(100 * r.far(), 3) << "%, TIA "
            << format_double(r.mean_tia(), 0) << " h\nmodel written to "
            << model_path << '\n';
  return 0;
}

int cmd_evaluate(const Args& args) {
  const auto fleet = data::load_csv_file(args.get("data"));
  const auto tree = core::load_tree_file(args.get("model"));
  const int voters = args.get_int("voters");

  const auto split = data::split_dataset(fleet, {});
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");
  eval::VoteConfig vote;
  vote.voters = voters;
  const auto r = eval::evaluate(
      fleet, split, features,
      [&tree](std::span<const float> x) { return tree.predict(x); }, vote);

  Table t({"metric", "value"});
  t.row().cell("good test drives").cell(static_cast<long long>(r.n_good));
  t.row().cell("failed test drives").cell(static_cast<long long>(r.n_failed));
  t.row().cell("FDR (%)").cell(100 * r.fdr(), 2);
  t.row().cell("FAR (%)").cell(100 * r.far(), 3);
  t.row().cell("mean TIA (h)").cell(r.mean_tia(), 1);
  t.print(std::cout);
  return 0;
}

int cmd_tune(const Args& args) {
  const auto fleet = data::load_csv_file(args.get("data"));
  const auto tree = core::load_tree_file(args.get("model"));
  const double budget = args.get_double("budget");
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");

  const auto split = data::split_dataset(fleet, {});
  const auto scores = eval::score_dataset(
      fleet, split, features,
      [&tree](std::span<const float> x) { return tree.predict(x); });
  const int candidates[] = {1, 3, 5, 7, 9, 11, 15, 17, 21, 27};
  const auto best = eval::tune_voters(scores, candidates, budget);
  if (!best) {
    std::cerr << "error: no voter count meets FAR <= "
              << format_double(100 * budget, 3) << "%\n";
    return 1;
  }
  Table t({"metric", "value"});
  t.row().cell("chosen voters N").cell(
      static_cast<long long>(best->vote.voters));
  t.row().cell("FDR (%)").cell(100 * best->result.fdr(), 2);
  t.row().cell("FAR (%)").cell(100 * best->result.far(), 3);
  t.row().cell("mean TIA (h)").cell(best->result.mean_tia(), 1);
  t.print(std::cout);
  return 0;
}

int cmd_predict(const Args& args) {
  const auto fleet = data::load_csv_file(args.get("data"));
  const auto tree = core::load_tree_file(args.get("model"));
  const auto top = static_cast<std::size_t>(args.get_int("top"));
  const auto features = smart::stat13_features();
  HDD_REQUIRE(tree.num_features() == features.size(),
              "model feature count does not match the stat13 layout");

  // Score every drive's latest sample; surface the worst.
  core::WarningQueue queue;
  for (const auto& d : fleet.drives) {
    if (d.empty()) continue;
    const auto row =
        smart::extract_features(d, d.samples.size() - 1, features);
    queue.push({d.serial, tree.predict(*row), d.last_hour()});
  }
  Table t({"drive", "margin", "as of hour"});
  for (std::size_t i = 0; i < top && !queue.empty(); ++i) {
    const auto w = queue.pop();
    t.row()
        .cell(w.serial)
        .cell(w.health, 3)
        .cell(static_cast<long long>(w.hour));
  }
  std::cout << "drives most at risk (negative margin = predicted failing):\n";
  t.print(std::cout);
  return 0;
}

std::optional<smart::FeatureSet> named_feature_set(const std::string& name) {
  if (name == "stat13") return smart::stat13_features();
  if (name == "basic12") return smart::basic12_features();
  if (name == "expert19") return smart::expert19_features();
  return std::nullopt;
}

int cmd_lint(const Args& args) {
  const obs::ScopedTimer timer(&obs::Registry::global().histogram(
      "hdd_lint_wall_ns", "lint subcommand wall time (ns)."));
  const std::string model_path = args.get("model");
  const std::string format = args.get("format");
  const std::string features = args.get("features");

  // Lint wants every diagnostic, so load with verification off and run
  // the verifier explicitly against the resolved feature domains.
  core::LoadOptions load;
  load.verify = core::VerifyMode::kOff;
  const auto model = core::load_model_file(model_path, load);
  const int width = core::model_num_features(model);

  analysis::VerifyOptions vo;
  std::string domain_set = "none";
  if (features == "auto") {
    // Pick the layout whose width matches the model; fall back to
    // unbounded domains when no known layout fits.
    for (const char* name : {"stat13", "basic12", "expert19"}) {
      const auto fs = named_feature_set(name);
      if (static_cast<int>(fs->size()) == width) {
        vo.domains = analysis::FeatureDomains::for_feature_set(*fs);
        domain_set = name;
        break;
      }
    }
  } else if (features != "none") {
    const auto fs = named_feature_set(features);
    HDD_REQUIRE(static_cast<int>(fs->size()) == width,
                "--features " + features + " has " +
                    std::to_string(fs->size()) +
                    " features but the model expects " +
                    std::to_string(width));
    vo.domains = analysis::FeatureDomains::for_feature_set(*fs);
    domain_set = features;
  }

  const auto report = core::verify_model(model, vo, model_path);
  if (format == "json") {
    analysis::print_json(report, std::cout);
  } else {
    analysis::print_text(report, std::cout);
    std::cout << "lint: " << model_path << ": "
              << core::model_kind_name(model) << " model, " << width
              << " features (domains: " << domain_set << "): "
              << report.count(analysis::Severity::kError) << " error(s), "
              << report.count(analysis::Severity::kWarning)
              << " warning(s), " << report.count(analysis::Severity::kNote)
              << " note(s)\n";
  }
  return report.has_findings() ? 3 : 0;
}

int cmd_adversary(const Args& args) {
  const obs::ScopedTimer timer(&obs::Registry::global().histogram(
      "hdd_adversary_wall_ns", "adversary subcommand wall time (ns)."));
  const std::string model_path = args.get("model");
  const auto fleet = data::load_csv_file(args.get("data"));
  auto model = core::load_model_file(model_path);
  const std::string kind = core::model_kind_name(model);
  const int width = core::model_num_features(model);

  // Budgets are fractions of each feature's declared domain, so the
  // attack needs the feature layout, not just the model width.
  std::optional<smart::FeatureSet> fs;
  const std::string features = args.get("features");
  if (features == "auto") {
    for (const char* name : {"stat13", "basic12", "expert19"}) {
      auto candidate = named_feature_set(name);
      if (static_cast<int>(candidate->size()) == width) {
        fs = std::move(candidate);
        break;
      }
    }
    HDD_REQUIRE(fs.has_value(),
                "no known feature layout has " + std::to_string(width) +
                    " features; pass --features explicitly");
  } else {
    fs = named_feature_set(features);
    HDD_REQUIRE(static_cast<int>(fs->size()) == width,
                "--features " + features + " has " +
                    std::to_string(fs->size()) +
                    " features but the model expects " +
                    std::to_string(width));
  }

  eval::AdversarialConfig cfg;
  cfg.vote.voters = args.get_int("voters");
  cfg.vote.average_mode = args.get("vote") == "average";
  cfg.passes = args.get_int("passes");
  cfg.fdr_drop_warn = args.get_double("fdr-drop-warn");
  cfg.far_rise_warn = args.get_double("far-rise-warn");
  cfg.epsilons.clear();
  const std::string spec = args.get("epsilons");
  for (std::size_t pos = 0; pos < spec.size();) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string tok = spec.substr(pos, next - pos);
    if (!tok.empty()) {
      try {
        cfg.epsilons.push_back(std::stod(tok));
      } catch (const std::exception&) {
        throw cli::UsageError("--epsilons: not a number: " + tok);
      }
    }
    pos = next + 1;
  }
  if (cfg.epsilons.empty()) {
    throw cli::UsageError("--epsilons needs a comma-separated list");
  }

  const auto split = data::split_dataset(fleet, {});
  const auto scorer = core::make_model_scorer(std::move(model));
  const auto result = eval::adversarial_evaluate(
      fleet, split, *fs,
      [&scorer](std::span<const float> x) { return scorer->predict(x); },
      cfg);
  const auto report = eval::robustness_findings(result, cfg, model_path);

  if (args.get("format") == "json") {
    std::cout << "{\"robustness\":";
    eval::print_json(result, std::cout);
    std::cout << ",\"findings\":";
    analysis::print_json(report, std::cout);
    std::cout << "}\n";
  } else {
    eval::print_text(result, std::cout);
    analysis::print_text(report, std::cout);
    std::cout << "adversary: " << model_path << ": " << kind << " model, "
              << width << " features (layout: " << fs->name << "): "
              << report.count(analysis::Severity::kWarning)
              << " robustness warning(s)\n";
  }
  return report.has_findings() ? 3 : 0;
}

int cmd_reliability(const Args& args) {
  reliability::RaidPredictionParams p;
  p.n_drives = args.get_int("drives");
  p.fdr = args.get_double("fdr");
  p.tia_hours = args.get_double("tia");
  p.tolerated_failures = args.get_int("raid") == 5 ? 1 : 2;

  const double with = reliability::mttdl_raid_with_prediction(p);
  auto without = p;
  without.fdr = 0.0;
  const double base = reliability::mttdl_raid_with_prediction(without);

  Table t({"configuration", "MTTDL (years)"});
  t.row().cell("without prediction").cell(base / reliability::kHoursPerYear, 2);
  t.row().cell("with prediction").cell(with / reliability::kHoursPerYear, 2);
  t.row().cell("improvement (x)").cell(with / base, 1);
  t.print(std::cout);
  return 0;
}

int cmd_ingest(const Args& args) {
  const std::string dir = args.get("store");
  const auto fleet = data::load_csv_file(args.get("data"));
  store::StoreOptions opt;
  if (args.has("segment-bytes")) {
    opt.segment_bytes = args.get_uint64("segment-bytes");
  }
  store::TelemetryStore store(dir, opt);
  io::install_shutdown_handlers();

  // Raw vendor telemetry gets the full domain check: a NaN or a value off
  // the 1-253 scale is quarantined (counted, not stored) instead of
  // poisoning every downstream feature that touches it.
  obs::Counter& quarantine_counter = obs::Registry::global().counter(
      "hdd_fleet_quarantined_samples_total",
      "Samples quarantined at ingest (non-finite or out-of-domain values).");
  std::size_t appended = 0;
  std::size_t skipped = 0;
  std::size_t quarantined = 0;
  for (const auto& d : fleet.drives) {
    // SIGINT/SIGTERM: stop between drives, seal what landed, exit 0 —
    // re-running the same ingest skips the hours already on disk.
    if (io::shutdown_requested()) break;
    const std::uint32_t id = store.register_drive(d.serial);
    for (const auto& s : d.samples) {
      const auto fault = smart::classify_sample(s, /*domain_check=*/true);
      if (fault != smart::SampleFault::kNone) {
        ++quarantined;
        quarantine_counter.inc();
        continue;
      }
      // Re-running an ingest is a no-op for hours already on disk.
      if (store.drive(id).last_hour >= s.hour) {
        ++skipped;
        continue;
      }
      store.append(id, s);
      ++appended;
    }
  }
  store.flush();
  std::cout << "ingested " << appended << " samples (" << skipped
            << " already present, " << quarantined << " quarantined) for "
            << fleet.drives.size() << " drives into " << dir << " ("
            << store.segment_count() << " segments)\n";
  return 0;
}

int cmd_compact(const Args& args) {
  const std::string dir = args.get("store");
  const auto min_hour = static_cast<std::int64_t>(args.get_int("min-hour"));
  store::TelemetryStore store(dir);
  const std::size_t before = store.sample_count();
  const auto r = store.compact(min_hour);
  std::cout << "compacted " << dir << ": kept " << r.kept << ", dropped "
            << r.dropped << " of " << before << " samples; "
            << store.segment_count() << " segment(s) remain\n";
  return 0;
}

int cmd_replay(const Args& args) {
  io::install_shutdown_handlers();
  core::FleetRuntimeConfig rc;
  rc.model_path = args.get("model");
  rc.store_dir = args.get("store");
  rc.vote.voters = args.get_int("voters");
  core::FleetRuntime runtime(rc);

  const auto& rec = runtime.store().recovery();
  if (rec.tail_truncated || rec.records_dropped > 0 ||
      rec.segments_skipped > 0) {
    std::cout << "recovery: " << rec.records_recovered
              << " records recovered, " << rec.records_dropped
              << " dropped, " << rec.torn_bytes_truncated
              << " torn bytes truncated\n";
  }

  const auto r = runtime.resume();
  std::cout << "replayed " << r.samples_replayed << " samples for "
            << r.drives << " drives through hour " << r.last_hour;
  if (r.partial_dropped > 0) {
    std::cout << " (dropped a torn interval of " << r.partial_dropped
              << " samples)";
  }
  std::cout << '\n';

  const core::FleetScorer& fleet = runtime.fleet();
  const auto alarmed = fleet.alarmed_drives();
  if (alarmed.empty()) {
    std::cout << "no alarms\n";
    return 0;
  }
  Table t({"drive", "alarm hour"});
  for (const std::size_t i : alarmed) {
    t.row()
        .cell(fleet.serial(i))
        .cell(static_cast<long long>(fleet.state(i).alarm_hour()));
  }
  std::cout << alarmed.size() << " drive(s) in alarm:\n";
  t.print(std::cout);
  return 0;
}

core::QuarantinePolicy parse_quarantine(const std::string& name) {
  if (name == "off") return core::QuarantinePolicy::kOff;
  if (name == "domain") return core::QuarantinePolicy::kFullDomain;
  return core::QuarantinePolicy::kNonFinite;
}

pipeline::Strategy parse_strategy(const std::string& name) {
  if (name == "fixed") return pipeline::Strategy::kFixed;
  if (name == "replacing") return pipeline::Strategy::kReplacing;
  return pipeline::Strategy::kAccumulation;
}

// Shared by `autoretrain` and `serve --retrain-every`: scheduler, trainer
// preset and guardrail rails from the common flag set.
pipeline::PipelineConfig pipeline_config_from(const Args& args) {
  pipeline::PipelineConfig pc;
  pc.trainer = core::preset(args.get("preset"));
  pc.trainer.vote.voters = args.get_int("voters");
  pc.scheduler.strategy = parse_strategy(args.get("strategy"));
  pc.scheduler.replace_cycle_weeks = args.get_int("replace-weeks");
  pc.guardrail.max_far = args.get_double("max-far");
  pc.guardrail.min_fdr = args.get_double("min-fdr");
  return pc;
}

// The labeled failure records every retrain shares (the store's own drives
// are the good population).
std::vector<smart::DriveRecord> load_failed_pool(const std::string& path) {
  auto fleet = data::load_csv_file(path);
  std::vector<smart::DriveRecord> failed;
  for (auto& d : fleet.drives) {
    if (d.failed && !d.empty()) failed.push_back(std::move(d));
  }
  HDD_REQUIRE(!failed.empty(),
              "--failed-data " + path + " holds no failed drives");
  return failed;
}

int cmd_autoretrain(const Args& args) {
  // Offline single-store pipeline: the journal is the good population;
  // every cycle is forced (an operator said "retrain now"), but the lint
  // and FAR/FDR gates still decide whether anything is promoted.
  core::FleetRuntimeConfig rc;
  rc.model_path = args.get("model");
  rc.store_dir = args.get("store");
  rc.vote.voters = args.get_int("voters");
  rc.hot_swappable = true;
  core::FleetRuntime runtime(rc);
  const std::uint64_t start_gen = runtime.model_generation();

  pipeline::PipelineConfig pc = pipeline_config_from(args);
  pc.scheduler.retrain_every_hours = args.get_int("every-hours");
  pc.scheduler.retrain_every_samples = args.get_uint64("every-samples");
  pipeline::UpdatePipeline pipe(*runtime.swappable(), runtime.store(),
                                load_failed_pool(args.get("failed-data")),
                                pc);

  const int cycles = args.get_int("cycles");
  Table t({"cycle", "outcome", "generation", "val FAR (%)", "val FDR (%)",
           "detail"});
  for (int c = 0; c < cycles; ++c) {
    const auto r = pipe.run_cycle(/*force=*/true);
    t.row()
        .cell(static_cast<long long>(c + 1))
        .cell(pipeline::outcome_name(r.outcome))
        .cell(static_cast<long long>(r.generation))
        .cell(100 * r.val_far, 3)
        .cell(100 * r.val_fdr, 2)
        .cell(r.reason);
  }
  t.print(std::cout);
  std::cout << "generation " << start_gen << " -> "
            << runtime.model_generation() << " (journaled in "
            << args.get("store") << ")\n";
  if (args.has("out")) {
    core::save_scorer_file(*runtime.swappable()->current(), args.get("out"));
    std::cout << "live model written to " << args.get("out") << '\n';
  }
  runtime.seal();
  return 0;
}

int cmd_serve(const Args& args) {
  // The daemon is the metrics consumer (GET /metrics), so the registry
  // runs hot even without --metrics-out.
  obs::Registry::global().set_enabled(true);

  // Flight recorder: on by default. The rings double as the /debug/trace
  // source and the crash dump, so the daemon keeps them hot unless the
  // operator opts out.
  if (args.get("trace") == "on") {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.set_flight_dir(args.get("store"));
    const std::uint64_t slow_ms = args.get_uint64("trace-slow-ms");
    tracer.set_slow_threshold_ns(slow_ms * 1'000'000ull);
    tracer.set_enabled(true);
    obs::install_flight_signal_handlers();
  }

  serve::ShardEngineConfig ec;
  ec.dir = args.get("store");
  ec.shards = static_cast<std::size_t>(args.get_int("shards"));
  ec.runtime.model_path = args.get("model");
  ec.runtime.vote.voters = args.get_int("voters");
  ec.runtime.quarantine = parse_quarantine(args.get("quarantine"));
  if (args.has("segment-bytes")) {
    ec.runtime.store.segment_bytes = args.get_uint64("segment-bytes");
  }
  ec.runtime.store.fsync_appends = args.get("fsync") == "always";

  // Continuous update: any retrain trigger makes the shards hot-swappable
  // and starts the background RetrainLoop after the server is up.
  const std::int64_t retrain_every = args.get_int("retrain-every");
  const std::uint64_t retrain_samples = args.get_uint64("retrain-samples");
  const bool retraining = retrain_every > 0 || retrain_samples > 0;
  if (retraining && !args.has("failed-data")) {
    throw cli::UsageError("--retrain-every/--retrain-samples need "
                          "--failed-data (the labeled failure pool)");
  }
  // Always swappable: a restart without retrain flags must still restore
  // and reconcile whatever generation a previous daemon promoted.
  ec.runtime.hot_swappable = true;

  serve::ShardEngine engine(ec);
  const std::size_t replayed = engine.resume();

  serve::ServeOptions so;
  so.host = args.get("host");
  so.port = args.get_int("port");
  if (args.has("port-file")) so.port_file = args.get("port-file");
  so.max_conns = static_cast<std::size_t>(args.get_int("max-conns"));
  so.idle_timeout_ms = args.get_int("idle-timeout-ms");

  serve::Server server(engine, so);
  std::unique_ptr<serve::RetrainLoop> loop;
  if (retraining) {
    serve::RetrainLoopConfig lc;
    lc.pipeline = pipeline_config_from(args);
    lc.pipeline.scheduler.retrain_every_hours = retrain_every;
    lc.pipeline.scheduler.retrain_every_samples = retrain_samples;
    lc.pipeline.min_shadow_samples = args.get_uint64("min-shadow-samples");
    lc.failed_pool = load_failed_pool(args.get("failed-data"));
    loop = std::make_unique<serve::RetrainLoop>(engine, server, std::move(lc));
  }
  server.start();
  if (loop != nullptr) loop->start();
  std::cout << "serving " << ec.dir << " on " << so.host << ":"
            << server.port() << " (" << engine.shard_count()
            << " shard(s), " << replayed << " samples resumed"
            << (retraining ? ", retrain loop on" : "") << ")\n"
            << std::flush;
  server.wait();
  if (loop != nullptr) loop->stop();

  const auto stats = engine.stats();
  std::cout << "served " << stats.drives << " drive(s), " << stats.samples
            << " samples on disk, " << stats.alarms << " alarm(s)"
            << ", model generation " << engine.max_generation()
            << (stats.degraded ? " [degraded]" : "") << '\n';
  return 0;
}

int cmd_client(const Args& args) {
  const std::string addr = args.get("addr");
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos) {
    throw cli::UsageError("--addr needs the form HOST:PORT");
  }
  const std::string host = addr.substr(0, colon);
  const int port = std::stoi(addr.substr(colon + 1));
  const std::string op = args.get("op");
  // Validate the flag combination before any socket is touched: a bad
  // invocation must exit 2 even when no daemon is listening.
  if (op == "ingest" && !args.has("data")) {
    throw cli::UsageError("--op ingest needs --data");
  }

  if (op == "metrics") {
    std::cout << serve::Client::http_get(host, port, "/metrics");
    return 0;
  }

  serve::Client client;
  client.connect(host, port);
  if (op == "ingest") {
    const auto fleet = data::load_csv_file(args.get("data"));
    serve::IngestResponse total;
    serve::IngestBatch batch;
    constexpr std::size_t kChunk = 8192;  // stays well under the frame cap
    const auto send_chunk = [&] {
      const auto r = client.ingest(batch);
      total.accepted += r.accepted;
      total.stale += r.stale;
      total.quarantined += r.quarantined;
      total.journal_failed += r.journal_failed;
      total.degraded = total.degraded || r.degraded;
      batch.serials.clear();
      batch.samples.clear();
    };
    for (const auto& d : fleet.drives) {
      for (const auto& s : d.samples) {
        batch.serials.push_back(d.serial);
        batch.samples.push_back(s);
        if (batch.samples.size() >= kChunk) send_chunk();
      }
    }
    if (!batch.samples.empty()) send_chunk();
    std::cout << "ingested " << total.accepted << " samples (" << total.stale
              << " stale, " << total.quarantined << " quarantined)"
              << (total.degraded ? " [degraded]" : "") << '\n';
    return total.journal_failed > 0 ? 1 : 0;
  }
  if (op == "query") {
    if (!args.has("serial")) {
      throw cli::UsageError("--op query needs --serial");
    }
    const std::string serial = args.get("serial");
    const auto r = client.query(serial);
    if (!r.known) {
      std::cout << serial << ": unknown\n";
    } else if (r.alarmed) {
      std::cout << serial << ": ALARM at hour " << r.alarm_hour << " ("
                << r.samples_seen << " samples, last hour " << r.last_hour
                << ")\n";
    } else {
      std::cout << serial << ": ok (" << r.samples_seen
                << " samples, last hour " << r.last_hour << ")\n";
    }
    return 0;
  }
  if (op == "stats") {
    const auto r = client.stats();
    std::cout << "drives " << r.drives << ", samples " << r.samples
              << ", alarms " << r.alarms << ", generation " << r.generation
              << ", last retrain "
              << pipeline::outcome_name(
                     static_cast<pipeline::Outcome>(r.last_outcome));
    if (r.shadow_samples > 0) {
      std::cout << ", shadow " << r.shadow_divergence << "/"
                << r.shadow_samples << " divergent";
    }
    std::cout << (r.degraded ? " [degraded]" : "") << '\n';
    return 0;
  }
  // op == "shutdown" (choice-validated)
  client.shutdown_server();
  std::cout << "shutdown requested\n";
  return 0;
}

int cmd_trace(const Args& args) {
  const std::string addr = args.get("addr");
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos) {
    throw cli::UsageError("--addr needs the form HOST:PORT");
  }
  const std::string host = addr.substr(0, colon);
  const int port = std::stoi(addr.substr(colon + 1));
  const std::string json = serve::Client::http_get(
      host, port, "/debug/trace?ms=" + std::to_string(args.get_uint64("ms")));
  const std::string out = args.get("out");
  if (out == "-") {
    std::cout << json;
    if (json.empty() || json.back() != '\n') std::cout << '\n';
    return 0;
  }
  std::ofstream os(out, std::ios::binary | std::ios::trunc);
  os << json;
  os.flush();
  if (!os) throw DataError("cannot write trace to " + out);
  std::cout << "trace written to " << out
            << " (load in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

}  // namespace

namespace hdd::tools {

cli::Registry build_registry() {
  cli::Registry reg("hddpredict");
  reg.add({"generate", "fabricate a synthetic fleet CSV",
           {ArgSpec::str("out", "F", /*required=*/true),
            ArgSpec::real("scale", "S", "0.05"),
            ArgSpec::uint64("seed", "N", "42"),
            ArgSpec::choice("family", {"W", "Q", "both"}, "both"),
            ArgSpec::str("weeks", "A:B", false, "0:1"),
            ArgSpec::integer("interval", "H", "1")},
           cmd_generate});
  reg.add({"features", "rank and select SMART features",
           {ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::integer("levels", "N", "10"),
            ArgSpec::integer("rates", "N", "3")},
           cmd_features});
  reg.add({"train", "fit a failure predictor",
           {ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::choice("preset", {"ct", "rt", "ann", "forest"}, "ct"),
            ArgSpec::integer("window", "H", ""),
            ArgSpec::real("cp", "X", "")},
           cmd_train});
  reg.add({"evaluate", "holdout FDR/FAR/TIA for a model",
           {ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::integer("voters", "N", "11")},
           cmd_evaluate});
  reg.add({"tune", "pick the voter count for a FAR budget",
           {ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::real("budget", "FAR", "0.001")},
           cmd_tune});
  reg.add({"predict", "rank drives most at risk",
           {ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::integer("top", "K", "15")},
           cmd_predict});
  reg.add({"lint", "static-verify a persisted model",
           {ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::choice("format", {"text", "json"}, "text"),
            ArgSpec::choice("features",
                            {"auto", "stat13", "basic12", "expert19", "none"},
                            "auto")},
           cmd_lint});
  reg.add({"adversary", "measure robustness to bounded SMART perturbations",
           {ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::integer("voters", "N", "11"),
            ArgSpec::choice("vote", {"binary", "average"}, "binary"),
            ArgSpec::integer("passes", "N", "2"),
            ArgSpec::str("epsilons", "E,E,..", false, "0.01,0.02,0.05"),
            ArgSpec::real("fdr-drop-warn", "X", "0.10"),
            ArgSpec::real("far-rise-warn", "X", "0.05"),
            ArgSpec::choice("format", {"text", "json"}, "text"),
            ArgSpec::choice("features",
                            {"auto", "stat13", "basic12", "expert19"},
                            "auto")},
           cmd_adversary});
  reg.add({"reliability", "RAID MTTDL with/without prediction",
           {ArgSpec::integer("drives", "N", "500"),
            ArgSpec::real("fdr", "K", "0.9549"),
            ArgSpec::real("tia", "H", "355"),
            ArgSpec::integer("raid", "5|6", "6")},
           cmd_reliability});
  reg.add({"ingest", "append CSV telemetry to a store",
           {ArgSpec::str("store", "DIR", /*required=*/true),
            ArgSpec::str("data", "F", /*required=*/true),
            ArgSpec::uint64("segment-bytes", "N", "")},
           cmd_ingest});
  reg.add({"compact", "drop store samples before a cutoff",
           {ArgSpec::str("store", "DIR", /*required=*/true),
            required(ArgSpec::integer("min-hour", "H", ""))},
           cmd_compact});
  reg.add({"replay", "resume fleet scoring from a store",
           {ArgSpec::str("store", "DIR", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::integer("voters", "N", "11")},
           cmd_replay});
  reg.add({"autoretrain", "run forced retrain cycles against a store",
           {ArgSpec::str("store", "DIR", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::str("failed-data", "F", /*required=*/true),
            ArgSpec::choice("preset", {"ct", "rt", "ann", "forest"}, "ct"),
            ArgSpec::choice("strategy",
                            {"fixed", "accumulation", "replacing"},
                            "accumulation"),
            ArgSpec::integer("replace-weeks", "C", "1"),
            ArgSpec::integer("every-hours", "H", "168"),
            ArgSpec::uint64("every-samples", "N", "0"),
            ArgSpec::real("max-far", "X", "1.0"),
            ArgSpec::real("min-fdr", "X", "0.0"),
            ArgSpec::integer("voters", "N", "11"),
            ArgSpec::integer("cycles", "N", "1"),
            ArgSpec::str("out", "F")},
           cmd_autoretrain});
  reg.add({"serve", "run the fleet-scoring daemon",
           {ArgSpec::str("store", "DIR", /*required=*/true),
            ArgSpec::str("model", "F", /*required=*/true),
            ArgSpec::integer("voters", "N", "11"),
            ArgSpec::integer("shards", "K", "1"),
            ArgSpec::str("host", "H", false, "127.0.0.1"),
            ArgSpec::integer("port", "P", "0"),
            ArgSpec::str("port-file", "F"),
            ArgSpec::uint64("segment-bytes", "N", ""),
            ArgSpec::choice("quarantine", {"off", "nonfinite", "domain"},
                            "nonfinite"),
            ArgSpec::choice("fsync", {"batch", "always"}, "batch"),
            ArgSpec::integer("max-conns", "N", "0"),
            ArgSpec::integer("idle-timeout-ms", "MS", "0"),
            ArgSpec::integer("retrain-every", "H", "0"),
            ArgSpec::uint64("retrain-samples", "N", "0"),
            ArgSpec::str("failed-data", "F"),
            ArgSpec::choice("preset", {"ct", "rt", "ann", "forest"}, "ct"),
            ArgSpec::choice("strategy",
                            {"fixed", "accumulation", "replacing"},
                            "accumulation"),
            ArgSpec::integer("replace-weeks", "C", "1"),
            ArgSpec::real("max-far", "X", "1.0"),
            ArgSpec::real("min-fdr", "X", "0.0"),
            ArgSpec::uint64("min-shadow-samples", "N", "0"),
            ArgSpec::choice("trace", {"on", "off"}, "on"),
            ArgSpec::uint64("trace-slow-ms", "MS", "50")},
           cmd_serve});
  reg.add({"client", "talk to a running serve daemon",
           {ArgSpec::str("addr", "HOST:PORT", /*required=*/true),
            required(ArgSpec::choice("op",
                                     {"ingest", "query", "stats", "metrics",
                                      "shutdown"},
                                     "")),
            ArgSpec::str("data", "F"), ArgSpec::str("serial", "S")},
           cmd_client});
  reg.add({"trace", "fetch a Chrome trace from a serve daemon",
           {ArgSpec::str("addr", "HOST:PORT", /*required=*/true),
            ArgSpec::uint64("ms", "N", "10000"),
            ArgSpec::str("out", "F|-", false, "-")},
           cmd_trace});
  return reg;
}

}  // namespace hdd::tools
