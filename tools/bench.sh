#!/usr/bin/env bash
# Machine-readable micro-benchmark runner: builds and runs the micro_*
# google-benchmark binaries (micro_perf: fleet scoring, micro_lint: static
# verifier, micro_obs: metrics instrumentation, micro_io: the Env seam,
# micro_serve: the daemon ingest path, micro_pipeline: hot-swap publish
# and shadow-scoring overhead) and merges their JSON output into
# one flat BENCH_obs.json — an array of {name, value, unit} objects,
# `value` being real (wall) time per iteration; benchmarks that report a
# throughput get a second <name>/items_per_second row. CI diffs this file
# against the committed copy to catch hot-path regressions; the obs
# entries are the acceptance record for the overhead bounds in DESIGN.md
# §7, the io entries for the <=3% Env-indirection budget in DESIGN.md §8
# (BM_EnvAppend vs BM_DirectAppend), and the serve entries for the >= 1M
# sustained samples/s ingest bar in DESIGN.md §9
# (BM_ServeLoopbackIngest), and the pipeline entries for the <= 10%
# shadow-scoring overhead bound in DESIGN.md §10 (BM_FleetObserveShadow
# vs BM_FleetObserve).
#
# The file also carries adversarial-robustness rows (adversary/<preset>/
# eps<ε>/{evade_fdr,alarm_far}): `hddpredict adversary` run on a seeded
# synthetic fleet, so a model change that makes detection evadable (or
# healthy drives alarm-prone) under small SMART perturbations shows up in
# the same CI diff as a hot-path regression. Values are ratios, not
# times; the fleet and training are deterministic, so the rows are too.
#
# Usage: tools/bench.sh [--out FILE] [--build-dir DIR] [--filter REGEX]
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="BENCH_obs.json"
BUILD_DIR="build"
FILTER=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out) OUT="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --filter) FILTER="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

cmake -B "${BUILD_DIR}" -S . > /dev/null
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    --target micro_perf micro_lint micro_obs micro_io micro_serve \
    micro_pipeline hddpredict

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

# Adversarial robustness rows: train the ct and forest presets on one
# seeded fleet and record evade-FDR / alarm-FAR per epsilon.
HDD="${BUILD_DIR}/tools/hddpredict"
echo "=== adversary (ct, forest) ===" >&2
"${HDD}" generate --out "${TMP}/fleet.csv" --scale 0.04 --family W \
    --seed 11 --interval 2 > /dev/null
for preset in ct forest; do
  "${HDD}" train --data "${TMP}/fleet.csv" --model "${TMP}/${preset}.model" \
      --preset "${preset}" > /dev/null
  "${HDD}" adversary --data "${TMP}/fleet.csv" \
      --model "${TMP}/${preset}.model" --format json \
      > "${TMP}/adv_${preset}.json" || [[ $? == 3 ]]
done

# micro_perf sweeps large fleets; keep the suite's wall time bounded by
# running one representative size per benchmark family.
run_bench() {
  local bin="$1" json="$2" extra_filter="$3"
  local args=(--benchmark_format=json --benchmark_out="${json}"
              --benchmark_out_format=json)
  local f="${FILTER:-${extra_filter}}"
  if [[ -n "${f}" ]]; then
    args+=("--benchmark_filter=${f}")
  fi
  echo "=== ${bin} ===" >&2
  "${BUILD_DIR}/bench/${bin}" "${args[@]}" > /dev/null
}

run_bench micro_perf "${TMP}/perf.json" 'BM_Fleet|BM_StoreAppend'
run_bench micro_lint "${TMP}/lint.json" 'BM_VerifyTree/20000|BM_VerifyForest/64'
run_bench micro_obs  "${TMP}/obs.json"  ''
run_bench micro_io   "${TMP}/io.json"   ''
run_bench micro_serve "${TMP}/serve.json" ''
run_bench micro_pipeline "${TMP}/pipeline.json" ''

python3 - "${OUT}" "${TMP}" "${TMP}/perf.json" "${TMP}/lint.json" \
    "${TMP}/obs.json" "${TMP}/io.json" "${TMP}/serve.json" \
    "${TMP}/pipeline.json" <<'PY'
import json
import sys

out_path, tmp_dir, *inputs = sys.argv[1:]
rows = []
for path in inputs:
    with open(path) as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rows.append({
            "name": b["name"],
            "value": round(b["real_time"], 4),
            "unit": b["time_unit"],
        })
        if "items_per_second" in b:
            rows.append({
                "name": b["name"] + "/items_per_second",
                "value": round(b["items_per_second"], 1),
                "unit": "items/s",
            })
for preset in ("ct", "forest"):
    with open(f"{tmp_dir}/adv_{preset}.json") as f:
        adv = json.load(f)["robustness"]
    rows.append({
        "name": f"adversary/{preset}/baseline_fdr",
        "value": round(adv["baseline"]["fdr"], 4),
        "unit": "ratio",
    })
    rows.append({
        "name": f"adversary/{preset}/baseline_far",
        "value": round(adv["baseline"]["far"], 4),
        "unit": "ratio",
    })
    for p in adv["points"]:
        eps = p["epsilon"]
        rows.append({
            "name": f"adversary/{preset}/eps{eps}/evade_fdr",
            "value": round(p["evade_fdr"], 4),
            "unit": "ratio",
        })
        rows.append({
            "name": f"adversary/{preset}/eps{eps}/alarm_far",
            "value": round(p["alarm_far"], 4),
            "unit": "ratio",
        })
with open(out_path, "w") as f:
    json.dump(rows, f, indent=2)
    f.write("\n")
print(f"wrote {len(rows)} benchmark entries to {out_path}")
PY
