// Tests for src/baselines/svm.{h,cpp}: the linear SVM baseline of Murray
// et al. [6], plus a fuzz test for the CSV loader's robustness (the other
// ingestion path an SVM deployment would use).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baselines/svm.h"
#include "common/error.h"
#include "common/rng.h"
#include "data/csv_io.h"
#include "sim/generator.h"

namespace hdd::baselines {
namespace {

data::DataMatrix make_matrix(const std::vector<std::vector<float>>& xs,
                             const std::vector<float>& ys,
                             const std::vector<float>& ws = {}) {
  data::DataMatrix m(static_cast<int>(xs[0].size()));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    m.add_row(xs[i], ys[i], ws.empty() ? 1.0f : ws[i]);
  }
  return m;
}

TEST(SvmConfig, Validation) {
  SvmConfig c;
  c.lambda = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = SvmConfig{};
  c.epochs = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(SvmConfig{}.validate());
}

TEST(LinearSvm, RejectsEmptyMatrix) {
  data::DataMatrix m(2);
  LinearSvm svm;
  EXPECT_THROW(svm.fit(m), ConfigError);
}

TEST(LinearSvm, SeparatesLinearlySeparableData) {
  Rng rng(1);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 600; ++i) {
    const float a = static_cast<float>(rng.uniform(0, 100));
    const float b = static_cast<float>(rng.uniform(0, 100));
    xs.push_back({a, b});
    ys.push_back(a + 2 * b > 150.0f ? 1.0f : -1.0f);
  }
  LinearSvm svm;
  svm.fit(make_matrix(xs, ys));
  int correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    correct += svm.predict_label(xs[i]) == (ys[i] > 0 ? 1 : -1);
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(xs.size()),
            0.95);
}

TEST(LinearSvm, MarginIsBoundedAndMonotoneInDecision) {
  Rng rng(2);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 200; ++i) {
    const float a = static_cast<float>(rng.uniform());
    xs.push_back({a});
    ys.push_back(a > 0.5f ? 1.0f : -1.0f);
  }
  LinearSvm svm;
  svm.fit(make_matrix(xs, ys));
  double prev_margin = -2.0;
  for (float v = 0.0f; v <= 1.0f; v += 0.05f) {
    const std::vector<float> x{v};
    const double margin = svm.predict(x);
    EXPECT_GE(margin, -1.0);
    EXPECT_LE(margin, 1.0);
    EXPECT_GE(margin + 1e-9, prev_margin);  // linear in v here
    prev_margin = margin;
  }
}

TEST(LinearSvm, WeightsShiftTheBoundary) {
  Rng rng(3);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys, heavy_good;
  for (int i = 0; i < 800; ++i) {
    const bool failed = i % 2 == 0;
    xs.push_back({static_cast<float>(failed ? rng.normal(1.2, 1.0)
                                            : rng.normal(0.0, 1.0))});
    ys.push_back(failed ? -1.0f : 1.0f);
    heavy_good.push_back(failed ? 1.0f : 12.0f);
  }
  LinearSvm plain, weighted;
  plain.fit(make_matrix(xs, ys));
  weighted.fit(make_matrix(xs, ys, heavy_good));
  int plain_failed = 0, weighted_failed = 0;
  for (double v = 0.0; v <= 1.2; v += 0.05) {
    const std::vector<float> x{static_cast<float>(v)};
    plain_failed += plain.predict_label(x) < 0;
    weighted_failed += weighted.predict_label(x) < 0;
  }
  EXPECT_LT(weighted_failed, plain_failed);
}

TEST(LinearSvm, HandlesConstantFeature) {
  Rng rng(4);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 200; ++i) {
    const float a = static_cast<float>(rng.uniform());
    xs.push_back({3.0f, a});
    ys.push_back(a > 0.5f ? 1.0f : -1.0f);
  }
  LinearSvm svm;
  svm.fit(make_matrix(xs, ys));
  for (const auto& x : xs) {
    EXPECT_FALSE(std::isnan(svm.predict(x)));
  }
}

TEST(LinearSvm, DeterministicGivenSeed) {
  Rng rng(5);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back({static_cast<float>(rng.uniform()),
                  static_cast<float>(rng.uniform())});
    ys.push_back(xs.back()[0] > 0.4f ? 1.0f : -1.0f);
  }
  LinearSvm a, b;
  a.fit(make_matrix(xs, ys));
  b.fit(make_matrix(xs, ys));
  for (const auto& x : xs) EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

// --- CSV loader fuzz: random mutations must fail cleanly, never crash ------

TEST(CsvFuzz, MutatedInputFailsCleanlyOrLoads) {
  auto config = sim::paper_fleet_config(0.002, 8);
  config.families.resize(1);
  const auto fleet = sim::generate_fleet_window(config, 0, 1);
  std::ostringstream os;
  data::save_csv(fleet, os);
  const std::string original = os.str();

  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = original;
    // Apply 1-4 random byte mutations.
    const auto n_mut = 1 + rng.uniform_int(4);
    for (std::size_t k = 0; k < n_mut; ++k) {
      const auto pos = rng.uniform_int(text.size());
      switch (rng.uniform_int(3)) {
        case 0:
          text[pos] = static_cast<char>('!' + rng.uniform_int(90));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, static_cast<char>('!' + rng.uniform_int(90)));
          break;
      }
    }
    std::istringstream is(text);
    // Must either load (mutation hit a value harmlessly) or throw a typed
    // error — never crash or hang.
    try {
      const auto ds = data::load_csv(is);
      (void)ds;
    } catch (const DataError&) {
    } catch (const ConfigError&) {
    }
  }
}

}  // namespace
}  // namespace hdd::baselines
