// Tests for src/tree: CART growing, splitting criteria, weighting, loss,
// stopping rules, CP pruning, prediction, importances, and serialization
// round trips. Includes parameterized property sweeps on random data.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "tree/tree.h"

namespace hdd::tree {
namespace {

// Builds a matrix from parallel arrays.
data::DataMatrix make_matrix(const std::vector<std::vector<float>>& xs,
                             const std::vector<float>& ys,
                             const std::vector<float>& ws = {}) {
  data::DataMatrix m(static_cast<int>(xs[0].size()));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    m.add_row(xs[i], ys[i], ws.empty() ? 1.0f : ws[i]);
  }
  return m;
}

TreeParams loose_params() {
  TreeParams p;
  p.min_split = 2;
  p.min_bucket = 1;
  p.cp = 0.0;
  return p;
}

TEST(TreeParams, ValidateRejectsBadValues) {
  TreeParams p;
  p.min_split = 1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = TreeParams{};
  p.min_bucket = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = TreeParams{};
  p.min_bucket = 50;  // > min_split
  EXPECT_THROW(p.validate(), ConfigError);
  p = TreeParams{};
  p.cp = -0.1;
  EXPECT_THROW(p.validate(), ConfigError);
  p = TreeParams{};
  p.max_depth = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_NO_THROW(TreeParams{}.validate());
}

TEST(ClassificationTree, RejectsEmptyMatrix) {
  data::DataMatrix m(2);
  DecisionTree t;
  EXPECT_THROW(t.fit(m, Task::kClassification, TreeParams{}), ConfigError);
}

TEST(ClassificationTree, PureNodeBecomesLeaf) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}}, {1, 1, 1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.predict_label(std::vector<float>{5.0f}), 1);
}

TEST(ClassificationTree, LearnsSingleThreshold) {
  // Perfectly separable at x = 2.5.
  const auto m = make_matrix({{0}, {1}, {2}, {3}, {4}, {5}},
                             {-1, -1, -1, 1, 1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.predict_label(std::vector<float>{0.0f}), -1);
  EXPECT_EQ(t.predict_label(std::vector<float>{2.4f}), -1);
  EXPECT_EQ(t.predict_label(std::vector<float>{2.6f}), 1);
  EXPECT_EQ(t.predict_label(std::vector<float>{9.0f}), 1);
}

TEST(ClassificationTree, ThresholdBetweenDistinctValues) {
  const auto m = make_matrix({{1}, {1}, {4}, {4}}, {-1, -1, 1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  ASSERT_EQ(t.node_count(), 3u);
  const auto& root = t.nodes()[0];
  EXPECT_GT(root.threshold, 1.0f);
  EXPECT_LE(root.threshold, 4.0f);
}

TEST(ClassificationTree, LearnsConjunctionWithDepthTwo) {
  // failed iff (a > 0.5 AND b > 0.5): needs two levels of splits.
  const auto m = make_matrix(
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}},
      {1, 1, 1, -1, 1, 1, 1, -1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_EQ(t.predict_label(std::vector<float>{0, 0}), 1);
  EXPECT_EQ(t.predict_label(std::vector<float>{0, 1}), 1);
  EXPECT_EQ(t.predict_label(std::vector<float>{1, 0}), 1);
  EXPECT_EQ(t.predict_label(std::vector<float>{1, 1}), -1);
  EXPECT_GE(t.depth(), 3);
}

TEST(ClassificationTree, PureXorIsUnsplittableByGreedyGain) {
  // Documented CART limitation: every single split of a balanced XOR has
  // zero information gain, so the greedy grower (like rpart) stays a stump.
  const auto m = make_matrix(
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 0}, {0, 1}, {1, 0}, {1, 1}},
      {1, -1, -1, 1, 1, -1, -1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(ClassificationTree, MarginReflectsClassProbabilities) {
  // A node with 3 good / 1 failed has margin (3-1)/4 = 0.5.
  const auto m = make_matrix({{0}, {0}, {0}, {0}}, {1, 1, 1, -1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_EQ(t.node_count(), 1u);  // constant feature: no split possible
  EXPECT_DOUBLE_EQ(t.predict(std::vector<float>{0.0f}), 0.5);
}

TEST(ClassificationTree, WeightsFlipMajority) {
  // One heavy failed sample outweighs three good ones.
  const auto m = make_matrix({{0}, {0}, {0}, {0}}, {1, 1, 1, -1},
                             {1, 1, 1, 10});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_EQ(t.predict_label(std::vector<float>{0.0f}), -1);
}

TEST(ClassificationTree, LossWeightMakesSplitConservative) {
  // Overlapping classes: raising good-class weight moves the decision
  // toward predicting "good" in the ambiguous region.
  Rng rng(3);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 500; ++i) {
    const bool failed = i % 2 == 0;
    const double x = failed ? rng.normal(3.0, 1.5) : rng.normal(0.0, 1.5);
    xs.push_back({static_cast<float>(x)});
    ys.push_back(failed ? -1.0f : 1.0f);
  }
  TreeParams p;
  p.min_split = 20;
  p.min_bucket = 7;
  p.cp = 0.001;

  auto unweighted = make_matrix(xs, ys);
  DecisionTree plain;
  plain.fit(unweighted, Task::kClassification, p);

  auto weighted = make_matrix(xs, ys);
  weighted.scale_class_weight(false, 10.0);
  DecisionTree conservative;
  conservative.fit(weighted, Task::kClassification, p);

  // Count ambiguous points labeled failed by each model.
  int plain_failed = 0, conservative_failed = 0;
  for (double x = 0.0; x <= 3.0; x += 0.1) {
    const std::vector<float> row{static_cast<float>(x)};
    plain_failed += plain.predict_label(row) < 0;
    conservative_failed += conservative.predict_label(row) < 0;
  }
  EXPECT_LT(conservative_failed, plain_failed);
}

TEST(ClassificationTree, MinBucketRespected) {
  // 10 samples, min_bucket 4: a 1/9 split is forbidden even if pure.
  const auto m = make_matrix(
      {{0}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}, {1}},
      {-1, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  TreeParams p = loose_params();
  p.min_bucket = 4;
  p.min_split = 8;
  DecisionTree t;
  t.fit(m, Task::kClassification, p);
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(ClassificationTree, MinSplitStopsSmallNodes) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}}, {-1, -1, 1, 1});
  TreeParams p = loose_params();
  p.min_split = 10;  // larger than the node
  DecisionTree t;
  t.fit(m, Task::kClassification, p);
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(ClassificationTree, MaxDepthLimitsTree) {
  Rng rng(11);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back({static_cast<float>(rng.uniform()),
                  static_cast<float>(rng.uniform())});
    ys.push_back(rng.chance(0.5) ? 1.0f : -1.0f);  // pure noise
  }
  TreeParams p = loose_params();
  p.max_depth = 3;
  DecisionTree t;
  t.fit(make_matrix(xs, ys), Task::kClassification, p);
  EXPECT_LE(t.depth(), 3);
}

TEST(ClassificationTree, CpPrunesWeakSplits) {
  // Noise labels: any split has tiny gain, so a nonzero cp collapses the
  // tree while cp = 0 keeps it bushy.
  Rng rng(13);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 600; ++i) {
    xs.push_back({static_cast<float>(rng.uniform())});
    ys.push_back(rng.chance(0.5) ? 1.0f : -1.0f);
  }
  const auto m = make_matrix(xs, ys);

  TreeParams grow = loose_params();
  DecisionTree bushy;
  bushy.fit(m, Task::kClassification, grow);

  TreeParams pruned_params = loose_params();
  pruned_params.cp = 0.05;
  DecisionTree pruned;
  pruned.fit(m, Task::kClassification, pruned_params);

  EXPECT_GT(bushy.node_count(), pruned.node_count());
  EXPECT_EQ(pruned.node_count(), 1u);
}

TEST(ClassificationTree, PrunedTreeIsCompact) {
  Rng rng(17);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.uniform());
    xs.push_back({x});
    // Strong signal + noise tail.
    ys.push_back(x > 0.5f ? 1.0f : (rng.chance(0.9) ? -1.0f : 1.0f));
  }
  TreeParams p = loose_params();
  p.cp = 0.01;
  DecisionTree t;
  t.fit(make_matrix(xs, ys), Task::kClassification, p);
  // All stored nodes must be reachable (compact array, preorder).
  std::vector<bool> reachable(t.node_count(), false);
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const auto idx = stack.back();
    stack.pop_back();
    reachable[static_cast<std::size_t>(idx)] = true;
    const auto& n = t.nodes()[static_cast<std::size_t>(idx)];
    if (!n.is_leaf()) {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  for (bool r : reachable) EXPECT_TRUE(r);
  EXPECT_EQ(t.leaf_count(), (t.node_count() + 1) / 2);  // binary tree
}

TEST(RegressionTree, FitsStepFunction) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}, {4}, {5}},
                             {10, 10, 10, 20, 20, 20});
  DecisionTree t;
  t.fit(m, Task::kRegression, loose_params());
  EXPECT_NEAR(t.predict(std::vector<float>{0.0f}), 10.0, 1e-9);
  EXPECT_NEAR(t.predict(std::vector<float>{5.0f}), 20.0, 1e-9);
}

TEST(RegressionTree, LeafValueIsWeightedMean) {
  const auto m = make_matrix({{0}, {0}}, {10, 20}, {3, 1});
  DecisionTree t;
  t.fit(m, Task::kRegression, loose_params());
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_NEAR(t.predict(std::vector<float>{0.0f}), 12.5, 1e-9);
}

TEST(RegressionTree, ApproximatesLinearRamp) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back({static_cast<float>(i)});
    ys.push_back(static_cast<float>(i) / 200.0f);
  }
  TreeParams p;
  p.min_split = 10;
  p.min_bucket = 5;
  p.cp = 0.0;
  DecisionTree t;
  t.fit(make_matrix(xs, ys), Task::kRegression, p);
  double max_err = 0.0;
  for (int i = 0; i < 200; ++i) {
    max_err = std::max(max_err,
                       std::fabs(t.predict(std::vector<float>{
                                     static_cast<float>(i)}) -
                                 i / 200.0));
  }
  EXPECT_LT(max_err, 0.1);
}

TEST(RegressionTree, CpIsScaleFree) {
  // The same data at two target scales must produce the same structure.
  Rng rng(7);
  std::vector<std::vector<float>> xs;
  std::vector<float> small, big;
  for (int i = 0; i < 300; ++i) {
    const float x = static_cast<float>(rng.uniform());
    xs.push_back({x});
    const float y = (x > 0.5f ? 1.0f : 0.0f) +
                    static_cast<float>(rng.normal(0.0, 0.05));
    small.push_back(y);
    big.push_back(y * 1000.0f);
  }
  TreeParams p;
  p.min_split = 10;
  p.min_bucket = 5;
  p.cp = 0.01;
  DecisionTree a, b;
  a.fit(make_matrix(xs, small), Task::kRegression, p);
  b.fit(make_matrix(xs, big), Task::kRegression, p);
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(FeatureImportance, ConcentratesOnInformativeFeature) {
  Rng rng(23);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 500; ++i) {
    const float informative = static_cast<float>(rng.uniform());
    const float noise = static_cast<float>(rng.uniform());
    xs.push_back({noise, informative});
    ys.push_back(informative > 0.5f ? 1.0f : -1.0f);
  }
  DecisionTree t;
  t.fit(make_matrix(xs, ys), Task::kClassification, loose_params());
  const auto imp = t.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[1], 0.9);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(FeatureImportance, StumpHasZeroImportance) {
  const auto m = make_matrix({{0}, {0}}, {1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  const auto imp = t.feature_importance();
  EXPECT_DOUBLE_EQ(imp[0], 0.0);
}

TEST(TreeDump, ContainsSplitsAndDistributions) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}}, {-1, -1, 1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  const std::string text = t.to_text();
  EXPECT_NE(text.find("split: f0 <"), std::string::npos);
  EXPECT_NE(text.find("p_failed"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(TreeDump, UsesFeatureNames) {
  const auto fs = smart::stat13_features();
  data::DataMatrix m(fs.size());
  std::vector<float> row(static_cast<std::size_t>(fs.size()), 0.0f);
  for (int i = 0; i < 10; ++i) {
    row[4] = static_cast<float>(i);  // POH
    m.add_row(row, i < 5 ? -1.0f : 1.0f, 1.0f);
  }
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  EXPECT_NE(t.to_text(&fs).find("POH"), std::string::npos);
}

TEST(FromNodes, RoundTripsPrediction) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}}, {-1, -1, 1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  auto copy = DecisionTree::from_nodes(t.nodes(), t.task(), t.num_features());
  for (float x : {0.0f, 1.5f, 2.5f, 9.0f}) {
    EXPECT_DOUBLE_EQ(copy.predict(std::vector<float>{x}),
                     t.predict(std::vector<float>{x}));
  }
}

TEST(FromNodes, RejectsBadIndices) {
  std::vector<Node> nodes(1);
  nodes[0].left = 5;  // out of range
  nodes[0].right = 1;
  nodes[0].feature = 0;
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 1),
               ConfigError);
  nodes[0].left = -1;  // still inconsistent: a leaf with a right child
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 1),
               ConfigError);
  nodes[0].right = -1;  // a proper single-leaf tree
  EXPECT_NO_THROW(
      DecisionTree::from_nodes(nodes, Task::kClassification, 1));
}

// Nodes are stored in preorder (children strictly after their parent), so a
// self-reference or a backward edge — either of which would hang predict()
// in a cycle — must be rejected, not just out-of-range indices.
TEST(FromNodes, RejectsSelfReferentialAndBackwardChildren) {
  std::vector<Node> nodes(3);
  nodes[0].left = 0;  // self-reference
  nodes[0].right = 2;
  nodes[0].feature = 0;
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 1),
               ConfigError);
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].left = 0;  // backward edge: a cycle through the root
  nodes[1].right = 2;
  nodes[1].feature = 0;
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 1),
               ConfigError);
}

TEST(FromNodes, RejectsNonFiniteThreshold) {
  std::vector<Node> nodes(3);
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].feature = 0;
  nodes[0].threshold = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 1),
               ConfigError);
  nodes[0].threshold = std::numeric_limits<float>::infinity();
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 1),
               ConfigError);
  nodes[0].threshold = 0.5f;
  EXPECT_NO_THROW(
      DecisionTree::from_nodes(nodes, Task::kClassification, 1));
}

// The same validation guards the persistence path: a tampered model file
// surfaces as DataError instead of loading a malformed tree.
TEST(FromNodes, LoadRejectsTamperedTree) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}}, {-1, -1, 1, 1});
  DecisionTree t;
  t.fit(m, Task::kClassification, loose_params());
  std::ostringstream os;
  t.save(os);
  std::string text = os.str();
  // Point the root's left child at itself (first node line starts after the
  // four header lines; the root is never index 0's child in a valid tree).
  std::istringstream check(text);
  std::string tampered;
  std::string line;
  int line_no = 0;
  while (std::getline(check, line)) {
    if (line_no == 4 && !line.empty() && t.node_count() > 1) {
      // root node line: "left right feature ..." -> make left self-refer
      const auto space = line.find(' ');
      line = "0" + line.substr(space);
    }
    tampered += line + "\n";
    ++line_no;
  }
  std::istringstream is(tampered);
  if (t.node_count() > 1) {
    EXPECT_THROW(DecisionTree::load(is), DataError);
  }
}

TEST(FromNodes, RejectsBadFeature) {
  std::vector<Node> nodes(3);
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].feature = 7;  // only 2 features
  EXPECT_THROW(DecisionTree::from_nodes(nodes, Task::kClassification, 2),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Property sweeps.

struct SeparableCase {
  std::uint64_t seed;
  int n_features;
  int n_rows;
};

class SeparableSweep : public ::testing::TestWithParam<SeparableCase> {};

TEST_P(SeparableSweep, HighTrainingAccuracyOnSeparableData) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const int informative = static_cast<int>(
      rng.uniform_int(static_cast<std::uint64_t>(param.n_features)));
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < param.n_rows; ++i) {
    std::vector<float> row(static_cast<std::size_t>(param.n_features));
    for (auto& v : row) v = static_cast<float>(rng.uniform());
    ys.push_back(row[static_cast<std::size_t>(informative)] > 0.5f ? 1.0f
                                                                   : -1.0f);
    xs.push_back(std::move(row));
  }
  TreeParams p;
  p.min_split = 4;
  p.min_bucket = 2;
  p.cp = 0.0005;
  DecisionTree t;
  t.fit(make_matrix(xs, ys), Task::kClassification, p);
  int correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    correct += t.predict_label(xs[i]) == (ys[i] > 0 ? 1 : -1);
  }
  EXPECT_GE(static_cast<double>(correct) / param.n_rows, 0.98)
      << "seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomSeparable, SeparableSweep,
    ::testing::Values(SeparableCase{1, 2, 100}, SeparableCase{2, 5, 300},
                      SeparableCase{3, 8, 500}, SeparableCase{4, 13, 800},
                      SeparableCase{5, 3, 1000}, SeparableCase{6, 13, 200}));

class DepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweep, DeeperTreesFitNoWorse) {
  // Training risk is monotone non-increasing in allowed depth.
  Rng rng(101);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 400; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    xs.push_back({a, b});
    ys.push_back((a > 0.5f) != (b > 0.5f) ? 1.0f : -1.0f);  // XOR-ish
  }
  const auto m = make_matrix(xs, ys);
  auto accuracy_at = [&](int depth) {
    TreeParams p = loose_params();
    p.max_depth = depth;
    DecisionTree t;
    t.fit(m, Task::kClassification, p);
    int correct = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      correct += t.predict_label(xs[i]) == (ys[i] > 0 ? 1 : -1);
    }
    return static_cast<double>(correct) / static_cast<double>(xs.size());
  };
  const int depth = GetParam();
  EXPECT_LE(accuracy_at(depth), accuracy_at(depth + 1) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 2, 3, 4));

class CpSweep : public ::testing::TestWithParam<double> {};

TEST_P(CpSweep, LargerCpNeverGrowsTheTree) {
  Rng rng(55);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.uniform());
    xs.push_back({x});
    ys.push_back(rng.chance(0.3 + 0.4 * x) ? 1.0f : -1.0f);
  }
  const auto m = make_matrix(xs, ys);
  const double cp = GetParam();
  auto nodes_at = [&](double c) {
    TreeParams p = loose_params();
    p.cp = c;
    DecisionTree t;
    t.fit(m, Task::kClassification, p);
    return t.node_count();
  };
  EXPECT_GE(nodes_at(cp), nodes_at(cp * 4.0));
}

INSTANTIATE_TEST_SUITE_P(Cps, CpSweep,
                         ::testing::Values(0.0005, 0.001, 0.005, 0.02));

}  // namespace
}  // namespace hdd::tree
