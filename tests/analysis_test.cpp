// Static model verifier tests: hand-crafted degenerate models must be
// flagged with the right diagnostic codes, and every shipped preset must
// lint clean against the stat13 SMART domains.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "ann/mlp.h"
#include "common/error.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "data/split.h"
#include "forest/adaboost.h"
#include "forest/random_forest.h"
#include "sim/generator.h"
#include "smart/features.h"
#include "tree/tree.h"

namespace hdd {
namespace {

using analysis::FeatureDomains;
using analysis::Interval;
using analysis::Report;
using analysis::Severity;
using analysis::VerifyOptions;

std::size_t count_code(const Report& r, const std::string& code) {
  std::size_t n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

tree::Node split_node(int left, int right, int feature, float thr) {
  tree::Node n;
  n.left = left;
  n.right = right;
  n.feature = feature;
  n.threshold = thr;
  n.weight = 1.0;
  n.count = 10;
  return n;
}

tree::Node leaf_node(double value) {
  tree::Node n;
  n.value = value;
  n.weight = 1.0;
  n.count = 5;
  return n;
}

TEST(Interval, EmptinessSemantics) {
  EXPECT_FALSE(Interval::all().empty());
  EXPECT_FALSE(Interval::closed(1.0, 1.0).empty());
  EXPECT_TRUE(Interval::closed(2.0, 1.0).empty());
  // [1, 1) is empty: the point itself is excluded by the open bound.
  EXPECT_TRUE((Interval{1.0, 1.0, true}).empty());
  EXPECT_FALSE((Interval{1.0, 2.0, true}).empty());
}

TEST(Domains, Stat13DomainsAreSaneAndNonEmpty) {
  const auto d = FeatureDomains::for_feature_set(smart::stat13_features());
  ASSERT_EQ(d.bounds.size(), 13u);
  for (const auto& iv : d.bounds) EXPECT_FALSE(iv.empty());
  // At least one feature is a bounded normalized level on the vendor
  // scale; nothing starts out impossible.
  bool any_bounded = false;
  for (const auto& iv : d.bounds) {
    if (std::isfinite(iv.lo) && std::isfinite(iv.hi)) any_bounded = true;
  }
  EXPECT_TRUE(any_bounded);
}

TEST(VerifyTree, CleanStumpHasNoDiagnostics) {
  // f0 < 50 -> -1, else +1: everything reachable, values in range,
  // both output signs possible.
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 50.0f), leaf_node(-1.0), leaf_node(1.0)},
      tree::Task::kClassification, 1);
  const auto r = analysis::verify_tree(t, {});
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_FALSE(r.has_findings());
}

TEST(VerifyTree, DeadSplitFromAncestorConstraint) {
  // Root sends x < 10 left; the left child then splits at 20, which is
  // always true there: dead split, and its right leaf is unreachable.
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 4, 0, 10.0f), split_node(2, 3, 0, 20.0f),
       leaf_node(0.5), leaf_node(-0.5), leaf_node(-1.0)},
      tree::Task::kClassification, 1);
  const auto r = analysis::verify_tree(t, {});
  EXPECT_EQ(count_code(r, "dead-split"), 1u);
  EXPECT_EQ(count_code(r, "unreachable-leaf"), 1u);
  EXPECT_TRUE(r.has_errors());
}

TEST(VerifyTree, DeadSplitAgainstAttributeDomain) {
  // Threshold 300 above the declared [1, 253] vendor scale: dead without
  // any ancestor constraint. The same tree is clean when unbounded.
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 300.0f), leaf_node(-1.0), leaf_node(1.0)},
      tree::Task::kClassification, 1);
  VerifyOptions opt;
  opt.domains.bounds = {Interval::closed(1.0, 253.0)};
  const auto flagged = analysis::verify_tree(t, opt);
  EXPECT_EQ(count_code(flagged, "dead-split"), 1u);
  EXPECT_EQ(count_code(flagged, "unreachable-leaf"), 1u);

  const auto clean = analysis::verify_tree(t, {});
  EXPECT_FALSE(clean.has_findings());
}

TEST(VerifyTree, RegressionLeafOutsideHealthRange) {
  // Eq. 5/6 health degrees live in [-1, 1]; a leaf at 1.5 is impossible.
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 50.0f), leaf_node(-0.25), leaf_node(1.5)},
      tree::Task::kRegression, 1);
  const auto r = analysis::verify_tree(t, {});
  EXPECT_EQ(count_code(r, "leaf-value-out-of-range"), 1u);
  EXPECT_TRUE(r.has_errors());
}

TEST(VerifyTree, NonFiniteLeafValue) {
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 50.0f), leaf_node(-1.0),
       leaf_node(std::numeric_limits<double>::quiet_NaN())},
      tree::Task::kClassification, 1);
  const auto r = analysis::verify_tree(t, {});
  EXPECT_EQ(count_code(r, "leaf-value-non-finite"), 1u);
  EXPECT_TRUE(r.has_errors());
}

TEST(VerifyTree, ConstantSignModelIsAWarning) {
  // Both leaves >= 0: the tree can never vote "failing".
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 50.0f), leaf_node(0.25), leaf_node(1.0)},
      tree::Task::kClassification, 1);
  const auto r = analysis::verify_tree(t, {});
  EXPECT_EQ(count_code(r, "constant-sign-model"), 1u);
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(r.has_findings());
}

// Forests are assembled from text (their only construction path besides
// fit), which doubles as coverage for linting a deserialized ensemble.
forest::RandomForest forest_from_text(const std::string& body) {
  std::istringstream is(body);
  return forest::RandomForest::load(is);
}

std::string stump_text() {
  return "hddpred-tree v1\ntask classification\nfeatures 1\nnodes 3\n"
         "1 2 0 50 0 1 10 0\n"
         "-1 -1 -1 0 1 0.5 5 0\n"
         "-1 -1 -1 0 -1 0.5 5 0\n";
}

std::string leaf_only_text(const std::string& value) {
  return "hddpred-tree v1\ntask classification\nfeatures 1\nnodes 1\n"
         "-1 -1 -1 0 " + value + " 1 5 0\n";
}

TEST(VerifyForest, ConstantMemberCannotFlipTheVote) {
  // tree[0] swings [-1, 1]; tree[1] and tree[2] are constants whose vote
  // can never change the mean's sign.
  const auto f = forest_from_text(
      "hddpred-forest v1\nfeatures 1\ntrees 3\n"
      "subspace 0\n" + stump_text() +
      "subspace 0\n" + leaf_only_text("0.9") +
      "subspace 0\n" + leaf_only_text("-0.95"));
  const auto r = analysis::verify_forest(f, {});
  EXPECT_EQ(count_code(r, "inert-member"), 2u);
  bool tree1_flagged = false;
  for (const auto& d : r.diagnostics) {
    if (d.code == "inert-member" && d.location == "tree[1]") {
      tree1_flagged = true;
    }
  }
  EXPECT_TRUE(tree1_flagged);
}

TEST(VerifyForest, OneSidedEnsembleReportsOnceNotPerMember) {
  const auto f = forest_from_text(
      "hddpred-forest v1\nfeatures 1\ntrees 2\n"
      "subspace 0\n" + leaf_only_text("0.5") +
      "subspace 0\n" + leaf_only_text("0.9"));
  const auto r = analysis::verify_forest(f, {});
  EXPECT_EQ(count_code(r, "constant-sign-model"), 1u);
  EXPECT_EQ(count_code(r, "inert-member"), 0u);
}

TEST(VerifyAdaBoost, DominantAlphaAndInertLearner) {
  const auto stump = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 50.0f), leaf_node(-1.0), leaf_node(1.0)},
      tree::Task::kClassification, 1);
  const auto one_sided = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 60.0f), leaf_node(0.2), leaf_node(0.8)},
      tree::Task::kClassification, 1);
  std::vector<forest::AdaBoost::Member> members;
  members.push_back({stump, 5.0});      // outweighs everything else
  members.push_back({one_sided, 1.0});  // always votes "good"
  members.push_back({stump, 0.0});      // contributes nothing
  const auto b = forest::AdaBoost::from_members(std::move(members));
  const auto r = analysis::verify_adaboost(b, {});
  EXPECT_EQ(count_code(r, "dominant-member"), 1u);
  EXPECT_EQ(count_code(r, "inert-member"), 1u);
  EXPECT_EQ(count_code(r, "nonpositive-alpha"), 1u);
}

ann::MlpModel mlp_1x1(double w1, double b1, double w2, double b2,
                      double offset = 0.0, double scale = 1.0) {
  return ann::MlpModel::from_weights(1, 1, {w1}, {b1}, {w2}, b2, {offset},
                                     {scale});
}

TEST(VerifyMlp, NonFiniteWeightIsAnError) {
  const auto m = mlp_1x1(std::numeric_limits<double>::quiet_NaN(), 0.0,
                         1.0, 0.0);
  const auto r = analysis::verify_mlp(m, {});
  EXPECT_EQ(count_code(r, "non-finite-weight"), 1u);
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.diagnostics.front().location, "w1[h=0][f=0]");
}

TEST(VerifyMlp, NegativeScaleIsAnError) {
  const auto r = analysis::verify_mlp(
      mlp_1x1(1.0, 0.0, 1.0, 0.0, 0.0, -0.5), {});
  EXPECT_EQ(count_code(r, "invalid-scale"), 1u);
}

TEST(VerifyMlp, ZeroScaleIsANoteOnly) {
  // f0 is constant under the scaler (suspicious but harmless: note
  // severity), f1 still drives the output across both signs, so notes
  // alone must leave the model clean (lint exits 0).
  const auto m = ann::MlpModel::from_weights(
      2, 1, {1.0, 1.0}, {0.0}, {4.0}, -2.5, {0.0, 0.0}, {0.0, 1.0});
  const auto r = analysis::verify_mlp(m, {});
  EXPECT_EQ(count_code(r, "constant-input"), 1u);
  EXPECT_EQ(r.count(Severity::kNote), 1u);
  EXPECT_FALSE(r.has_findings());
}

TEST(VerifyMlp, SaturatedHiddenUnit) {
  // Pre-activation pinned at 100 across the whole domain: the sigmoid is
  // constant and the unit is dead weight.
  VerifyOptions opt;
  opt.domains.bounds = {Interval::closed(0.0, 1.0)};
  const auto r = analysis::verify_mlp(mlp_1x1(0.0, 100.0, 1.0, 0.1), opt);
  EXPECT_EQ(count_code(r, "saturated-unit"), 1u);
}

TEST(VerifyMlp, ConstantOutputSign) {
  // w2 = 0 leaves the output margin at 2*sigmoid(b2) - 1 > 0 everywhere.
  const auto r = analysis::verify_mlp(mlp_1x1(1.0, 0.0, 0.0, 4.0), {});
  EXPECT_EQ(count_code(r, "constant-sign-model"), 1u);
}

// Every shipped preset must produce a model the verifier accepts against
// the declared stat13 SMART domains — the simulator keeps attribute
// values inside Table II's ranges, so any finding here is a verifier
// false positive or a training regression.
TEST(VerifyPresets, TrainedPresetModelsLintClean) {
  const auto config = sim::paper_fleet_config(0.05, 12);
  const auto fleet = sim::generate_fleet_window(config, 0, 1);
  const auto split = data::split_dataset(fleet, {});
  VerifyOptions opt;
  opt.domains = FeatureDomains::for_feature_set(smart::stat13_features());

  for (const std::string name : {"ct", "rt", "ann"}) {
    core::FailurePredictor predictor(core::preset(name));
    predictor.fit(fleet, split);

    const std::string path = "/tmp/hddpred_analysis_" + name + ".model";
    core::save_scorer_file(predictor.scorer(), path);
    core::LoadOptions load;
    load.verify = core::VerifyMode::kOff;
    const auto model = core::load_model_file(path, load);
    const auto r = core::verify_model(model, opt, path);
    EXPECT_FALSE(r.has_findings())
        << "preset " << name << " flagged: "
        << (r.diagnostics.empty() ? "" : r.diagnostics.front().message);
    std::remove(path.c_str());
  }
}

TEST(VerifyReport, TextAndJsonRendering) {
  Report r;
  r.diagnostics.push_back({Severity::kError, "m.tree", "node 3",
                           "dead-split", "always \"left\""});
  std::ostringstream text;
  analysis::print_text(r, text);
  EXPECT_NE(text.str().find("error [dead-split] m.tree: node 3"),
            std::string::npos);

  std::ostringstream json;
  analysis::print_json(r, json);
  EXPECT_NE(json.str().find("\"code\": \"dead-split\""), std::string::npos);
  EXPECT_NE(json.str().find("always \\\"left\\\""), std::string::npos);

  Report empty;
  std::ostringstream empty_json;
  analysis::print_json(empty, empty_json);
  EXPECT_EQ(empty_json.str(), "[]\n");
}

TEST(VerifyOptionsChecks, DomainCountMustMatchModel) {
  const auto t = tree::DecisionTree::from_nodes(
      {split_node(1, 2, 0, 50.0f), leaf_node(-1.0), leaf_node(1.0)},
      tree::Task::kClassification, 2);
  VerifyOptions opt;
  opt.domains.bounds = {Interval::all()};  // 1 domain, 2 features
  EXPECT_THROW(analysis::verify_tree(t, opt), ConfigError);
}

}  // namespace
}  // namespace hdd
