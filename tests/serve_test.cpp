// Serve subsystem tests (ctest label: serve; TSan-clean by requirement).
//
// Covers the wire codec (round-trips, malformed/truncated/corrupt-frame
// rejection, incremental framing), the ShardEngine (ingest/query/stats,
// idempotent re-send, crash-resume with byte-identical alarms, shard-count
// layout guard) and the Server end to end over localhost: batched ingest,
// per-drive query, /metrics scrape, wire shutdown, and a concurrent-ingest
// kill -> restart -> resume property test under injected crash points.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "core/scorer.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/shutdown.h"
#include "json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "serve/wire.h"

namespace hdd::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kDrives = 6;
constexpr std::int64_t kHours = 48;

// Same deterministic telemetry construction as the fault-injection tests:
// every value is a pure function of (drive, hour).
float hval(std::uint32_t d, std::int64_t h, std::uint32_t salt) {
  std::uint32_t x = d * 2654435761u +
                    static_cast<std::uint32_t>(h) * 40503u + salt * 97u;
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 16;
  return static_cast<float>(x & 0xFFFF) / 32768.0f - 1.0f;  // [-1, 1)
}

smart::Sample sample_for(std::uint32_t d, std::int64_t h) {
  smart::Sample s;
  s.hour = h;
  const float bias = 0.9f * (static_cast<float>(d % 3) - 1.0f);
  s.set(smart::Attr::kRawReadErrorRate, hval(d, h, 1) + bias);
  s.set(smart::Attr::kTemperatureCelsius, 10.0f * hval(d, h, 2));
  return s;
}

smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

class MixScorer final : public core::SampleScorer {
 public:
  double predict(std::span<const float> x) const override {
    return static_cast<double>(x[0]) + 0.03 * static_cast<double>(x[1]);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = predict(xs.subspan(2 * r, 2));
    }
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "mix"; }
};

std::string serial_of(std::uint32_t d) {
  return "drive-" + std::to_string(d);
}

ShardEngineConfig engine_config(const fs::path& dir, std::size_t shards,
                                const core::SampleScorer* scorer,
                                obs::Registry* reg) {
  ShardEngineConfig ec;
  ec.dir = dir.string();
  ec.shards = shards;
  ec.runtime.scorer = scorer;
  ec.runtime.features = two_features();
  ec.runtime.vote.voters = 5;
  ec.runtime.block_rows = 4;
  ec.runtime.metrics = reg;
  ec.runtime.store.metrics = reg;
  return ec;
}

// The full per-drive telemetry as one batch per drive, hour-ascending.
IngestBatch batch_for_drive(std::uint32_t d, std::int64_t from_hour,
                            std::int64_t to_hour) {
  IngestBatch b;
  for (std::int64_t h = from_hour; h < to_hour; ++h) {
    b.serials.push_back(serial_of(d));
    b.samples.push_back(sample_for(d, h));
  }
  return b;
}

struct Outcome {
  bool known = false;
  bool alarmed = false;
  std::int64_t alarm_hour = -1;
  bool operator==(const Outcome&) const = default;
};

std::vector<Outcome> outcomes(const ShardEngine& engine) {
  std::vector<Outcome> out(kDrives);
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const auto q = engine.query(serial_of(d));
    out[d] = {q.known, q.alarmed, q.alarm_hour};
  }
  return out;
}

// Feed every drive's full history into the engine, routed by shard.
void ingest_all(ShardEngine& engine, std::int64_t from = 0,
                std::int64_t to = kHours) {
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const auto b = batch_for_drive(d, from, to);
    engine.ingest(engine.shard_of(serial_of(d)), b);
  }
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(Wire, IngestRequestRoundTrip) {
  IngestBatch b = batch_for_drive(3, 0, 5);
  b.serials.push_back("another");
  b.samples.push_back(sample_for(1, 7));
  const auto req = decode_request(encode_ingest_request(b));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->op, Op::kIngest);
  ASSERT_EQ(req->ingest.serials, b.serials);
  ASSERT_EQ(req->ingest.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < b.samples.size(); ++i) {
    EXPECT_EQ(req->ingest.samples[i].hour, b.samples[i].hour);
    EXPECT_EQ(req->ingest.samples[i].attrs, b.samples[i].attrs);
  }
}

TEST(Wire, ControlRequestsRoundTrip) {
  const auto q = decode_request(encode_query_request("serial-x"));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->op, Op::kQuery);
  EXPECT_EQ(q->serial, "serial-x");

  const auto s = decode_request(encode_stats_request());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->op, Op::kStats);

  const auto d = decode_request(encode_shutdown_request());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, Op::kShutdown);
}

TEST(Wire, ResponsesRoundTrip) {
  IngestResponse ir;
  ir.accepted = 41;
  ir.stale = 3;
  ir.quarantined = 2;
  ir.journal_failed = 1;
  ir.degraded = true;
  const std::string ip = encode_ingest_response(ir);
  EXPECT_EQ(decode_status(ip), Status::kOk);
  const auto ir2 = decode_ingest_response(ip);
  ASSERT_TRUE(ir2.has_value());
  EXPECT_EQ(ir2->accepted, 41u);
  EXPECT_EQ(ir2->stale, 3u);
  EXPECT_EQ(ir2->quarantined, 2u);
  EXPECT_EQ(ir2->journal_failed, 1u);
  EXPECT_TRUE(ir2->degraded);

  QueryResponse qr;
  qr.known = true;
  qr.alarmed = true;
  qr.alarm_hour = 17;
  qr.samples_seen = 99;
  qr.last_hour = 47;
  const auto qr2 = decode_query_response(encode_query_response(qr));
  ASSERT_TRUE(qr2.has_value());
  EXPECT_TRUE(qr2->known);
  EXPECT_TRUE(qr2->alarmed);
  EXPECT_EQ(qr2->alarm_hour, 17);
  EXPECT_EQ(qr2->samples_seen, 99u);
  EXPECT_EQ(qr2->last_hour, 47);

  StatsResponse sr;
  sr.drives = 6;
  sr.samples = 288;
  sr.alarms = 2;
  sr.degraded = false;
  const auto sr2 = decode_stats_response(encode_stats_response(sr));
  ASSERT_TRUE(sr2.has_value());
  EXPECT_EQ(sr2->drives, 6u);
  EXPECT_EQ(sr2->samples, 288u);
  EXPECT_EQ(sr2->alarms, 2u);

  const std::string ep = encode_error_response(Status::kBadRequest, "nope");
  EXPECT_EQ(decode_status(ep), Status::kBadRequest);
  EXPECT_EQ(decode_error_message(ep), "nope");
}

TEST(Wire, RejectsMalformedRequests) {
  // Empty payload, unknown op, truncated ingest body.
  EXPECT_FALSE(decode_request("").has_value());
  EXPECT_FALSE(decode_request(std::string(1, '\x09')).has_value());
  std::string ingest = encode_ingest_request(batch_for_drive(0, 0, 3));
  EXPECT_FALSE(decode_request(ingest.substr(0, ingest.size() - 7))
                   .has_value());
  // Trailing junk after a well-formed body.
  EXPECT_FALSE(decode_request(ingest + "x").has_value());
  // A count field that promises more entries than the payload can hold.
  std::string lying = ingest;
  lying[1] = '\xff';
  lying[2] = '\xff';
  lying[3] = '\xff';
  lying[4] = '\x7f';
  EXPECT_FALSE(decode_request(lying).has_value());
}

TEST(Wire, TraceIdRoundTripsOnEveryOp) {
  constexpr std::uint64_t kId = 0xabcdef1234567890ull;
  const auto i =
      decode_request(encode_ingest_request(batch_for_drive(1, 0, 3), kId));
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->trace_id, kId);
  const auto q = decode_request(encode_query_request("serial-x", kId));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->trace_id, kId);
  EXPECT_EQ(q->serial, "serial-x");
  const auto s = decode_request(encode_stats_request(kId));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->trace_id, kId);
  const auto d = decode_request(encode_shutdown_request(kId));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->trace_id, kId);
}

TEST(Wire, TraceIdFieldIsBackwardCompatible) {
  // Untraced frames are byte-identical to the pre-trace wire format, so
  // old servers keep accepting them.
  EXPECT_EQ(encode_query_request("abc", 0), encode_query_request("abc"));
  EXPECT_EQ(encode_stats_request(0).size() + 8,
            encode_stats_request(77).size());
  // Old-client frames (no trailing field) decode with trace_id 0.
  const auto req = decode_request(encode_query_request("abc"));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->trace_id, 0u);
  // Only exactly 8 trailing bytes are a trace id; anything else is still
  // a protocol error.
  const std::string stats = encode_stats_request();
  EXPECT_FALSE(decode_request(stats + "1234567").has_value());
  EXPECT_FALSE(decode_request(stats + "123456789").has_value());
}

TEST(Wire, FrameParserReassemblesByteAtATime) {
  const std::string payload = encode_query_request("abc");
  const std::string framed = frame_payload(payload);
  FrameParser parser;
  std::string got;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    parser.feed(std::string_view(&framed[i], 1));
    EXPECT_EQ(parser.next(got), FrameParser::Result::kNeedMore);
  }
  parser.feed(std::string_view(&framed[framed.size() - 1], 1));
  ASSERT_EQ(parser.next(got), FrameParser::Result::kFrame);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(parser.next(got), FrameParser::Result::kNeedMore);
}

TEST(Wire, FrameParserRejectsCorruptFrames) {
  std::string framed = frame_payload(encode_stats_request());
  framed[framed.size() - 1] ^= 0x01;  // flip a payload bit -> CRC mismatch
  FrameParser parser;
  parser.feed(framed);
  std::string got;
  EXPECT_EQ(parser.next(got), FrameParser::Result::kCorrupt);
  // Corruption is sticky: resynchronizing mid-stream is not attempted.
  parser.feed(frame_payload(encode_stats_request()));
  EXPECT_EQ(parser.next(got), FrameParser::Result::kCorrupt);

  // An absurd length field is corrupt immediately, not a 4 GiB wait.
  FrameParser parser2;
  parser2.feed(std::string("\xff\xff\xff\xff\0\0\0\0", 8));
  EXPECT_EQ(parser2.next(got), FrameParser::Result::kCorrupt);
}

TEST(Wire, FrameParserRefusesToBufferPastHostileLength) {
  // The hostile length prefix is caught at feed() time: once the 8 header
  // bytes announce an over-cap payload, the parser drops its buffer and
  // stops accepting bytes instead of accumulating toward 4 GiB.
  FrameParser parser;
  std::string header;
  for (unsigned char c : {0xff, 0xff, 0xff, 0xff}) header.push_back(char(c));
  header.append(4, '\0');
  parser.feed(header);
  EXPECT_EQ(parser.buffered(), 0u);
  parser.feed(std::string(1 << 16, 'x'));
  EXPECT_EQ(parser.buffered(), 0u);
  std::string got;
  EXPECT_EQ(parser.next(got), FrameParser::Result::kCorrupt);

  // A zero length is the same protocol error.
  FrameParser parser2;
  parser2.feed(std::string(8, '\0'));
  EXPECT_EQ(parser2.buffered(), 0u);
  EXPECT_EQ(parser2.next(got), FrameParser::Result::kCorrupt);

  // The boundary walk follows chained lengths: a hostile header *behind* a
  // valid undrained frame is also caught at feed() time.
  FrameParser parser3;
  parser3.feed(frame_payload(encode_stats_request()));
  parser3.feed(header);
  EXPECT_EQ(parser3.buffered(), 0u);
  EXPECT_EQ(parser3.next(got), FrameParser::Result::kCorrupt);
}

// ---------------------------------------------------------------------------
// ShardEngine

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kError);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_dir_ = fs::temp_directory_path() /
                (std::string("hdd_serve_") + info->name());
    fs::remove_all(base_dir_);
    fs::create_directories(base_dir_);
    io::reset_shutdown_for_tests();
  }
  void TearDown() override {
    io::reset_shutdown_for_tests();
    fs::remove_all(base_dir_);
  }

  fs::path base_dir_;
  MixScorer scorer_;
};

TEST_F(ServeTest, EngineIngestQueryStats) {
  ShardEngine engine(engine_config(base_dir_ / "s", 2, &scorer_, nullptr));
  ingest_all(engine);

  const auto known = engine.query(serial_of(0));
  EXPECT_TRUE(known.known);
  EXPECT_EQ(known.last_hour, kHours - 1);
  // Drive 2 has the +0.9 bias (healthy margins): it never alarms, so its
  // vote state sees every hour (an alarmed drive freezes its counter).
  const auto healthy = engine.query(serial_of(2));
  EXPECT_TRUE(healthy.known);
  EXPECT_FALSE(healthy.alarmed);
  EXPECT_EQ(healthy.samples_seen, static_cast<std::uint64_t>(kHours));
  EXPECT_FALSE(engine.query("never-seen").known);

  const auto stats = engine.stats();
  EXPECT_EQ(stats.drives, kDrives);
  EXPECT_EQ(stats.samples, static_cast<std::uint64_t>(kDrives) * kHours);
  EXPECT_GT(stats.alarms, 0u);  // the biased drives trip the voters
  EXPECT_FALSE(stats.degraded);
}

TEST_F(ServeTest, EngineResendIsIdempotent) {
  ShardEngine engine(engine_config(base_dir_ / "s", 2, &scorer_, nullptr));
  ingest_all(engine);
  const auto before = outcomes(engine);
  const auto b = batch_for_drive(0, 0, kHours);
  const auto r = engine.ingest(engine.shard_of(serial_of(0)), b);
  EXPECT_EQ(r.accepted, 0u);
  EXPECT_EQ(r.stale, static_cast<std::uint64_t>(kHours));
  EXPECT_EQ(outcomes(engine), before);
  EXPECT_EQ(engine.stats().samples,
            static_cast<std::uint64_t>(kDrives) * kHours);
}

TEST_F(ServeTest, EngineRestartResumesByteIdenticalAlarms) {
  std::vector<Outcome> live;
  {
    ShardEngine engine(engine_config(base_dir_ / "s", 3, &scorer_, nullptr));
    ingest_all(engine);
    live = outcomes(engine);
    engine.seal();
  }
  ShardEngine resumed(engine_config(base_dir_ / "s", 3, &scorer_, nullptr));
  EXPECT_EQ(resumed.resume(), static_cast<std::size_t>(kDrives) * kHours);
  EXPECT_EQ(outcomes(resumed), live);
}

TEST_F(ServeTest, EngineRefusesShardCountMismatch) {
  {
    ShardEngine engine(engine_config(base_dir_ / "s", 3, &scorer_, nullptr));
    ingest_all(engine);
  }
  EXPECT_THROW(
      ShardEngine(engine_config(base_dir_ / "s", 2, &scorer_, nullptr)),
      ConfigError);
}

// ---------------------------------------------------------------------------
// Server end to end over localhost

TEST_F(ServeTest, ServerEndToEnd) {
  obs::Registry reg;
  ShardEngine engine(engine_config(base_dir_ / "s", 2, &scorer_, &reg));
  ServeOptions so;
  so.metrics = &reg;
  Server server(engine, so);
  server.start();
  ASSERT_GT(server.port(), 0);

  Client client;
  client.connect("127.0.0.1", server.port());
  IngestResponse total;
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const auto r = client.ingest(batch_for_drive(d, 0, kHours));
    total.accepted += r.accepted;
    EXPECT_FALSE(r.degraded);
  }
  EXPECT_EQ(total.accepted, static_cast<std::uint64_t>(kDrives) * kHours);

  // A mixed batch is partitioned across shards and merged back.
  IngestBatch none;
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    none.serials.push_back(serial_of(d));
    none.samples.push_back(sample_for(d, 0));  // all stale by now
  }
  const auto again = client.ingest(none);
  EXPECT_EQ(again.accepted, 0u);
  EXPECT_EQ(again.stale, static_cast<std::uint64_t>(kDrives));

  const auto q = client.query(serial_of(0));
  EXPECT_TRUE(q.known);
  EXPECT_EQ(q.last_hour, kHours - 1);
  EXPECT_FALSE(client.query("missing").known);

  const auto st = client.stats();
  EXPECT_EQ(st.drives, kDrives);
  EXPECT_EQ(st.samples, static_cast<std::uint64_t>(kDrives) * kHours);
  EXPECT_GT(st.alarms, 0u);

  // The Prometheus scrape shares the port with the wire protocol.
  const std::string metrics =
      Client::http_get("127.0.0.1", server.port(), "/metrics");
  EXPECT_NE(metrics.find("hdd_serve_ingest_samples_total"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE hdd_serve_requests_total counter"),
            std::string::npos);
  EXPECT_EQ(Client::http_get("127.0.0.1", server.port(), "/healthz"), "ok\n");
  EXPECT_THROW(Client::http_get("127.0.0.1", server.port(), "/nope"),
               DataError);

  server.stop();

  // The daemon sealed on stop; a fresh engine resumes the same state.
  ShardEngine resumed(engine_config(base_dir_ / "s", 2, &scorer_, nullptr));
  resumed.resume();
  EXPECT_EQ(resumed.stats().samples,
            static_cast<std::uint64_t>(kDrives) * kHours);
  EXPECT_EQ(resumed.stats().alarms, st.alarms);
}

TEST_F(ServeTest, ServerRejectsMalformedFrame) {
  ShardEngine engine(engine_config(base_dir_ / "s", 1, &scorer_, nullptr));
  obs::Registry reg;
  ServeOptions so;
  so.metrics = &reg;
  Server server(engine, so);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  // A valid frame whose payload is not a request: error response + close.
  const std::string reply = client.roundtrip(frame_payload("\x7fgarbage"));
  EXPECT_EQ(decode_status(reply), Status::kBadRequest);
  server.stop();
}

TEST_F(ServeTest, ServerMaxConnsRejectsWithCleanErrorFrame) {
  ShardEngine engine(engine_config(base_dir_ / "s", 1, &scorer_, nullptr));
  obs::Registry reg;
  ServeOptions so;
  so.metrics = &reg;
  so.max_conns = 1;
  Server server(engine, so);
  server.start();

  Client first;
  first.connect("127.0.0.1", server.port());
  // Prove the slot is actually held by a served connection.
  EXPECT_EQ(first.ingest(batch_for_drive(0, 0, 4)).accepted, 4u);

  // The second connection is answered with an error frame, then closed —
  // not silently dropped.
  Client second;
  second.connect("127.0.0.1", server.port());
  const std::string reply =
      second.roundtrip(frame_payload(encode_stats_request()));
  EXPECT_EQ(decode_status(reply), Status::kError);
  EXPECT_EQ(reg.counter("hdd_serve_connections_rejected_total", "").value(),
            1u);

  // The served connection keeps working throughout.
  EXPECT_EQ(first.ingest(batch_for_drive(0, 4, 8)).accepted, 4u);
  server.stop();
}

TEST_F(ServeTest, ServerIdleTimeoutClosesStaleConnections) {
  ShardEngine engine(engine_config(base_dir_ / "s", 1, &scorer_, nullptr));
  obs::Registry reg;
  ServeOptions so;
  so.metrics = &reg;
  so.idle_timeout_ms = 50;
  Server server(engine, so);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  EXPECT_EQ(client.ingest(batch_for_drive(0, 0, 4)).accepted, 4u);
  // Go idle past the timeout: the server reaps the connection (counted),
  // and the next request on it fails instead of hanging.
  const auto& reaped =
      reg.counter("hdd_serve_connections_rejected_total", "");
  for (int i = 0; i < 100 && reaped.value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(reaped.value(), 1u);
  EXPECT_THROW((void)client.roundtrip(frame_payload(encode_stats_request())),
               DataError);

  // A fresh connection still gets served.
  Client again;
  again.connect("127.0.0.1", server.port());
  EXPECT_EQ(again.stats().samples, 4u);
  server.stop();
}

TEST_F(ServeTest, ServerShutdownOpStopsTheDaemon) {
  ShardEngine engine(engine_config(base_dir_ / "s", 1, &scorer_, nullptr));
  obs::Registry reg;
  ServeOptions so;
  so.metrics = &reg;
  Server server(engine, so);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  client.ingest(batch_for_drive(0, 0, 4));
  client.shutdown_server();
  server.wait();  // returns because the wire op latched the shutdown flag
  EXPECT_TRUE(io::shutdown_requested());
}

// Concurrent ingest into a live server, killed by an injected crash point,
// restarted, resumed, topped up: the final alarm state must be
// byte-identical to an uninterrupted run. Journal-before-score makes this
// exact — a sample is scored only once journaled, so resume + idempotent
// re-send always converges on the fault-free outcome.
TEST_F(ServeTest, ConcurrentIngestKillRestartResume) {
  // Fault-free reference.
  std::vector<Outcome> expected;
  {
    ShardEngine ref(engine_config(base_dir_ / "ref", 2, &scorer_, nullptr));
    ingest_all(ref);
    expected = outcomes(ref);
  }

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const fs::path dir = base_dir_ / ("s" + std::to_string(seed));
    io::FaultPlan plan;
    plan.seed = seed;
    plan.crash_at_op = 40 * seed;  // progressively later kills
    io::FaultEnv fenv(io::Env::posix(), plan);
    try {
      auto ec = engine_config(dir, 2, &scorer_, nullptr);
      ec.runtime.store.env = &fenv;
      ShardEngine engine(ec);
      Server server(engine, {});
      server.start();

      // Two clients ingest disjoint drive sets concurrently, in chunks, so
      // the crash lands mid-stream under real cross-connection load.
      auto client_run = [&](std::uint32_t d0) {
        try {
          Client client;
          client.connect("127.0.0.1", server.port());
          for (std::int64_t h = 0; h < kHours; h += 8) {
            for (std::uint32_t d = d0; d < kDrives; d += 2) {
              client.ingest(batch_for_drive(d, h, h + 8));
            }
          }
        } catch (const std::exception&) {
          // Crashed shard / closed connection: the "process" died.
        }
      };
      std::thread c1(client_run, 0);
      std::thread c2(client_run, 1);
      c1.join();
      c2.join();
      server.stop();
    } catch (const io::CrashPoint&) {
      // Early crash points fire while the engine is still opening its
      // stores, before the server exists: the whole "process" is gone.
    }
    io::reset_shutdown_for_tests();

    // Restart on healthy hardware: recover, resume, re-send everything.
    auto ec = engine_config(dir, 2, &scorer_, nullptr);
    ShardEngine engine(ec);
    engine.resume();
    ingest_all(engine);  // journaled hours are stale-skipped
    EXPECT_EQ(outcomes(engine), expected) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Request tracing: /debug/trace, /debug/vars and the wire-propagated ids

// Tracing is process-global; scope it to one test so the rest of this
// binary keeps exercising the untraced (default) paths.
struct TracingOn {
  TracingOn() { obs::Tracer::global().set_enabled(true); }
  ~TracingOn() { obs::Tracer::global().set_enabled(false); }
};

TEST_F(ServeTest, DebugTraceServesConnectedSpanTreeForWireIngest) {
  const TracingOn tracing;
  auto ec = engine_config(base_dir_ / "s", 2, &scorer_, nullptr);
  ec.runtime.store.fsync_appends = true;  // journal fsyncs inside requests
  ShardEngine engine(ec);
  Server server(engine, {});
  server.start();
  {
    Client client;
    client.connect("127.0.0.1", server.port());
    const auto r = client.ingest(batch_for_drive(0, 0, kHours));
    EXPECT_EQ(r.accepted, static_cast<std::uint64_t>(kHours));
    EXPECT_TRUE(client.query(serial_of(0)).known);
  }

  // The HTTP endpoint returns well-formed Chrome trace_event JSON that
  // names the whole request path.
  const std::string json =
      Client::http_get("127.0.0.1", server.port(), "/debug/trace?ms=60000");
  EXPECT_TRUE(testjson::json_valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* name :
       {"serve.request", "serve.accept", "wire.parse", "shard.queue_wait",
        "shard.ingest", "fleet.ingest", "store.append", "store.fsync",
        "wire.respond", "shard.query", "client.ingest"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""),
              std::string::npos)
        << name << " missing from /debug/trace";
  }
  server.stop();

  // The span tree is connected: a journal fsync recorded on a shard
  // worker walks parent links back to the serve.request root, and the
  // client-side span shares the trace id that rode the wire frame.
  const auto spans = obs::Tracer::global().snapshot(60000);
  std::unordered_map<std::uint64_t, const obs::SpanView*> by_id;
  for (const obs::SpanView& s : spans) by_id[s.span_id] = &s;
  // Walks parent links to the trace root; every hop must resolve and
  // stay inside the same trace.
  const auto root_of = [&](const obs::SpanView& leaf, int& hops) {
    const obs::SpanView* node = &leaf;
    hops = 0;
    while (node->parent_id != 0 && hops < 16) {
      const auto it = by_id.find(node->parent_id);
      if (it == by_id.end() || it->second->trace_id != leaf.trace_id) {
        return static_cast<const obs::SpanView*>(nullptr);
      }
      node = it->second;
      ++hops;
    }
    return node;
  };
  // At least one journal fsync recorded on a shard worker must chain all
  // the way up to a serve.request root (a fsync from store open/recovery
  // roots elsewhere, so search rather than take the first).
  const obs::SpanView* fsync = nullptr;
  int best_hops = 0;
  for (const obs::SpanView& s : spans) {
    if (s.name == nullptr || std::string_view(s.name) != "store.fsync" ||
        s.parent_id == 0) {
      continue;
    }
    int hops = 0;
    const obs::SpanView* root = root_of(s, hops);
    if (root != nullptr && root->name != nullptr &&
        std::string_view(root->name) == "serve.request" &&
        hops > best_hops) {
      fsync = &s;
      best_hops = hops;
    }
  }
  ASSERT_NE(fsync, nullptr)
      << "no store.fsync span chains to a serve.request root";
  // The batch-tail fsync nests under the whole dispatch chain:
  // fsync -> store.append -> fleet.ingest -> shard.ingest -> request.
  EXPECT_GE(best_hops, 3);
  bool client_span_in_same_trace = false;
  for (const obs::SpanView& s : spans) {
    if (s.name != nullptr && std::string_view(s.name) == "client.ingest" &&
        s.trace_id == fsync->trace_id) {
      client_span_in_same_trace = true;
    }
  }
  EXPECT_TRUE(client_span_in_same_trace);
}

TEST_F(ServeTest, DebugVarsReportsBuildAndRuntimeState) {
  ShardEngine engine(engine_config(base_dir_ / "s", 2, &scorer_, nullptr));
  Server server(engine, {});
  server.start();
  const std::string vars =
      Client::http_get("127.0.0.1", server.port(), "/debug/vars");
  EXPECT_TRUE(testjson::json_valid(vars)) << vars;
  EXPECT_NE(vars.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(vars.find("\"model_generation\":0"), std::string::npos);
  EXPECT_NE(vars.find("\"uptime_ms\""), std::string::npos);
  EXPECT_NE(vars.find("\"tracing\":0"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace hdd::serve
