// Tests for src/forest: random forest (bagging + subspaces) and AdaBoost —
// the paper's future-work / prior-work ensemble extensions.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

#include "forest/adaboost.h"
#include "forest/random_forest.h"

namespace hdd::forest {
namespace {

data::DataMatrix make_matrix(const std::vector<std::vector<float>>& xs,
                             const std::vector<float>& ys) {
  data::DataMatrix m(static_cast<int>(xs[0].size()));
  for (std::size_t i = 0; i < xs.size(); ++i) m.add_row(xs[i], ys[i], 1.0f);
  return m;
}

// Noisy two-feature task: informative feature 0, pure-noise feature 1.
void make_noisy_task(std::uint64_t seed, int n,
                     std::vector<std::vector<float>>& xs,
                     std::vector<float>& ys, double flip = 0.15) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    bool failed = a > 0.6f;
    if (rng.chance(flip)) failed = !failed;
    xs.push_back({a, b});
    ys.push_back(failed ? -1.0f : 1.0f);
  }
}

double accuracy(const std::function<int(std::span<const float>)>& predict,
                const std::vector<std::vector<float>>& xs,
                const std::vector<float>& ys) {
  int correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    correct += predict(xs[i]) == (ys[i] > 0 ? 1 : -1);
  }
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

TEST(ForestConfig, Validation) {
  ForestConfig c;
  c.n_trees = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = ForestConfig{};
  c.feature_fraction = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = ForestConfig{};
  c.sample_fraction = 1.5;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(ForestConfig{}.validate());
}

TEST(RandomForest, RejectsEmptyMatrix) {
  data::DataMatrix m(2);
  RandomForest f;
  EXPECT_THROW(f.fit(m, tree::Task::kClassification, ForestConfig{}),
               ConfigError);
}

TEST(RandomForest, TrainsRequestedNumberOfTrees) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  make_noisy_task(1, 300, xs, ys);
  ForestConfig cfg;
  cfg.n_trees = 7;
  RandomForest f;
  f.fit(make_matrix(xs, ys), tree::Task::kClassification, cfg);
  EXPECT_EQ(f.tree_count(), 7u);
  EXPECT_TRUE(f.trained());
}

TEST(RandomForest, GoodAccuracyOnNoisyTask) {
  std::vector<std::vector<float>> xs, test_xs;
  std::vector<float> ys, test_ys;
  make_noisy_task(2, 800, xs, ys);
  make_noisy_task(3, 400, test_xs, test_ys, 0.0);  // clean test labels
  ForestConfig cfg;
  cfg.n_trees = 30;
  RandomForest f;
  f.fit(make_matrix(xs, ys), tree::Task::kClassification, cfg);
  EXPECT_GE(accuracy([&](std::span<const float> x) {
              return f.predict_label(x);
            }, test_xs, test_ys),
            0.9);
}

TEST(RandomForest, OutputIsMeanOfTreeMargins) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  make_noisy_task(4, 300, xs, ys);
  ForestConfig cfg;
  cfg.n_trees = 15;
  RandomForest f;
  f.fit(make_matrix(xs, ys), tree::Task::kClassification, cfg);
  for (const auto& x : xs) {
    const double out = f.predict(x);
    EXPECT_GE(out, -1.0);
    EXPECT_LE(out, 1.0);
  }
}

TEST(RandomForest, DeterministicGivenSeed) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  make_noisy_task(5, 200, xs, ys);
  ForestConfig cfg;
  cfg.n_trees = 5;
  RandomForest a, b;
  a.fit(make_matrix(xs, ys), tree::Task::kClassification, cfg);
  b.fit(make_matrix(xs, ys), tree::Task::kClassification, cfg);
  for (const auto& x : xs) EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForest, ImportanceMapsBackToFullSpace) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  make_noisy_task(6, 600, xs, ys, 0.05);
  ForestConfig cfg;
  cfg.n_trees = 20;
  cfg.feature_fraction = 0.5;  // each tree sees one of the two features
  cfg.tree_params.cp = 0.02;   // suppress noise splits
  RandomForest f;
  f.fit(make_matrix(xs, ys), tree::Task::kClassification, cfg);
  const auto imp = f.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1]);  // informative feature dominates
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(RandomForest, RegressionModeAveragesValues) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const float x = static_cast<float>(rng.uniform());
    xs.push_back({x});
    ys.push_back(x > 0.5f ? 2.0f : 1.0f);
  }
  ForestConfig cfg;
  cfg.n_trees = 10;
  cfg.feature_fraction = 1.0;
  RandomForest f;
  f.fit(make_matrix(xs, ys), tree::Task::kRegression, cfg);
  EXPECT_NEAR(f.predict(std::vector<float>{0.1f}), 1.0, 0.15);
  EXPECT_NEAR(f.predict(std::vector<float>{0.9f}), 2.0, 0.15);
}

TEST(AdaBoostConfig, Validation) {
  AdaBoostConfig c;
  c.n_rounds = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(AdaBoostConfig{}.validate());
  EXPECT_EQ(AdaBoostConfig{}.weak_params.max_depth, 3);
}

TEST(AdaBoost, LearnsSeparableData) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  make_noisy_task(8, 500, xs, ys, 0.0);
  AdaBoost boost;
  boost.fit(make_matrix(xs, ys), AdaBoostConfig{});
  EXPECT_TRUE(boost.trained());
  EXPECT_GE(accuracy([&](std::span<const float> x) {
              return boost.predict_label(x);
            }, xs, ys),
            0.98);
}

TEST(AdaBoost, BoostingImprovesOverSingleStump) {
  // Diagonal boundary: one depth-2 stump underfits, boosting gets closer.
  Rng rng(9);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 800; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    xs.push_back({a, b});
    ys.push_back(a + b > 1.0f ? 1.0f : -1.0f);
  }
  const auto m = make_matrix(xs, ys);

  AdaBoostConfig weak_cfg;
  weak_cfg.n_rounds = 1;
  weak_cfg.weak_params.max_depth = 2;
  AdaBoost stump;
  stump.fit(m, weak_cfg);

  AdaBoostConfig strong_cfg;
  strong_cfg.n_rounds = 40;
  strong_cfg.weak_params.max_depth = 2;
  AdaBoost boosted;
  boosted.fit(m, strong_cfg);

  const double acc_stump = accuracy(
      [&](std::span<const float> x) { return stump.predict_label(x); }, xs,
      ys);
  const double acc_boost = accuracy(
      [&](std::span<const float> x) { return boosted.predict_label(x); },
      xs, ys);
  EXPECT_GT(acc_boost, acc_stump + 0.03);
}

TEST(AdaBoost, StopsEarlyOnPerfectWeakLearner) {
  const auto m = make_matrix({{0}, {1}, {2}, {3}}, {-1, -1, 1, 1});
  AdaBoostConfig cfg;
  cfg.n_rounds = 50;
  cfg.weak_params.min_split = 2;
  cfg.weak_params.min_bucket = 1;
  AdaBoost boost;
  boost.fit(m, cfg);
  EXPECT_EQ(boost.round_count(), 1u);  // first tree is perfect
}

TEST(AdaBoost, MarginIsNormalized) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  make_noisy_task(10, 300, xs, ys);
  AdaBoost boost;
  boost.fit(make_matrix(xs, ys), AdaBoostConfig{});
  for (const auto& x : xs) {
    const double out = boost.predict(x);
    EXPECT_GE(out, -1.0);
    EXPECT_LE(out, 1.0);
  }
}

}  // namespace
}  // namespace hdd::forest
