// Tests for src/common: RNG determinism and distributions, hashing, math
// helpers, tables, CSV, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "common/csv.h"
#include "common/log.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace hdd {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Mix64, SpreadsSmallInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsUnbiasedish) {
  Rng rng(7);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 500);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(CounterRng, PureFunctionOfKey) {
  CounterRng a(5), b(5);
  EXPECT_EQ(a.bits(1, 2, 3), b.bits(1, 2, 3));
  EXPECT_DOUBLE_EQ(a.uniform(9, 8, 7), b.uniform(9, 8, 7));
  EXPECT_DOUBLE_EQ(a.normal(4, 4, 4), b.normal(4, 4, 4));
}

TEST(CounterRng, DifferentKeysDecorrelated) {
  CounterRng rng(5);
  double corr_sum = 0.0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    corr_sum += (rng.uniform(i, 0) - 0.5) * (rng.uniform(i, 1) - 0.5);
  }
  EXPECT_NEAR(corr_sum / 1000.0, 0.0, 0.01);
}

TEST(CounterRng, ChildStreamsIndependent) {
  CounterRng root(99);
  const auto a = root.child(1);
  const auto b = root.child(2);
  EXPECT_NE(a.seed(), b.seed());
  EXPECT_NE(a.bits(0), b.bits(0));
}

TEST(CounterRng, NormalMoments) {
  CounterRng rng(123);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(static_cast<std::uint64_t>(i), 0);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(MathUtil, MeanVarStddev) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(MathUtil, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(MathUtil, Percentile) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(MathUtil, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), ConfigError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, 101), ConfigError);
}

TEST(MathUtil, Correlation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> zs{8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, zs), -1.0, 1e-12);
  const std::vector<double> c{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(xs, c), 0.0);
}

TEST(MathUtil, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(MathUtil, BinaryEntropy) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_NEAR(binary_entropy(0.5), 1.0, 1e-12);
  EXPECT_GT(binary_entropy(0.5), binary_entropy(0.1));
}

TEST(MathUtil, LinspaceLogspace) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
  EXPECT_DOUBLE_EQ(xs[4], 1.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
  const auto ys = logspace(1.0, 100.0, 3);
  EXPECT_NEAR(ys[1], 10.0, 1e-9);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell(22.25, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsWrongCellCount) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ConfigError);
}

TEST(FormatDouble, HandlesSpecials) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(std::nan(""), 2), "nan");
  EXPECT_EQ(format_double(INFINITY, 2), "inf");
}

TEST(Csv, EscapesAndParsesRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
  EXPECT_EQ(rows[0][3], "multi\nline");
}

TEST(Csv, ParsesCrlf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForStressWithThrowingTasks) {
  // Repeatedly fail a parallel_for from several workers at once. The pool
  // must drain every in-flight task before parallel_for's locals go out of
  // scope (no use-after-scope on the shared cursor) and must stay usable
  // for the next round.
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    bool threw = false;
    try {
      pool.parallel_for(0, 64, [round](std::size_t i) {
        if (i % 5 == static_cast<std::size_t>(round % 5)) {
          throw std::runtime_error("task failure");
        }
      });
    } catch (const std::runtime_error& e) {
      threw = true;
      EXPECT_STREQ(e.what(), "task failure");
    }
    EXPECT_TRUE(threw) << "round " << round;

    std::atomic<int> completed{0};
    pool.parallel_for(0, 128, [&](std::size_t) { completed++; });
    EXPECT_EQ(completed.load(), 128) << "round " << round;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(Log, LevelThresholdFilters) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped silently; above-threshold ones
  // are emitted — both must be safe to call from any thread.
  log_debug() << "dropped";
  log_error() << "emitted";
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(original);
}

TEST(Error, AssertThrowsLogicError) {
  EXPECT_THROW(HDD_ASSERT(1 == 2), std::logic_error);
  EXPECT_NO_THROW(HDD_ASSERT(1 == 1));
}

}  // namespace
}  // namespace hdd
