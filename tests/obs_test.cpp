// Tests for src/obs: the documented histogram bucket contract, exact
// aggregation under concurrency, Prometheus/JSON exposition (including the
// label-escaping round trip), registry identity rules, and the
// instrumentation wired into ThreadPool, FleetScorer and TelemetryStore.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "core/fleet.h"
#include "core/scorer.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "store/telemetry_store.h"

namespace hdd::obs {
namespace {

namespace fs = std::filesystem;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// --- Histogram bucket contract ----------------------------------------------

TEST(HistogramBuckets, LowEdgeValuesLandInBucketZero) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-kInf), 0);
  EXPECT_EQ(Histogram::bucket_of(kNan), 0);
  EXPECT_EQ(Histogram::bucket_of(0.5), 0);
  EXPECT_EQ(Histogram::bucket_of(1.0), 0);
}

TEST(HistogramBuckets, ExactPowersOfTwoLandInTheirOwnBucket) {
  // The documented rule: bucket b holds (2^(b-1), 2^b], so 2^k is the
  // inclusive top of bucket k.
  for (int k = 1; k <= 46; ++k) {
    EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, k)), k) << "k=" << k;
  }
}

TEST(HistogramBuckets, ValuesJustPastAPowerSpillToTheNextBucket) {
  EXPECT_EQ(Histogram::bucket_of(1.001), 1);
  EXPECT_EQ(Histogram::bucket_of(2.001), 2);
  EXPECT_EQ(Histogram::bucket_of(1024.5), 11);
  EXPECT_EQ(Histogram::bucket_of(3.0), 2);
  EXPECT_EQ(Histogram::bucket_of(1000.0), 10);  // <= 1024
}

TEST(HistogramBuckets, OverflowAndInfinityLandInTheLastBucket) {
  const int last = Histogram::kBuckets - 1;
  EXPECT_EQ(Histogram::bucket_of(kInf), last);
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 46) * 1.5), last);
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 60)), last);
  // The top finite bound itself still fits in bucket 46.
  EXPECT_EQ(Histogram::bucket_of(std::ldexp(1.0, 46)), 46);
}

TEST(HistogramBuckets, BoundsMatchBucketOf) {
  for (int b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_le(b)), b);
  }
  EXPECT_EQ(Histogram::bucket_le(Histogram::kBuckets - 1), kInf);
}

TEST(Histogram, SumSkipsNonFiniteObservationsButCountsThem) {
  Registry reg;
  Histogram& h = reg.histogram("h_ns", "test");
  h.record(4.0);
  h.record(kInf);
  h.record(kNan);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // NaN
}

// --- Exact aggregation under concurrency ------------------------------------

TEST(Concurrency, CounterIncrementsFromManyThreadsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("c_total", "test");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Concurrency, HistogramRecordsAndGaugeDeltasNeverLoseUpdates) {
  Registry reg;
  Histogram& h = reg.histogram("h_ns", "test");
  Gauge& g = reg.gauge("g", "test");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &g] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(i % 128));
        g.add(1.0);
        g.sub(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// --- Registry identity and validation ---------------------------------------

TEST(Registry, SameNameAndLabelsReturnTheSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x_total", "test", {{"k", "v"}});
  Counter& b = reg.counter("x_total", "test", {{"k", "v"}});
  Counter& other = reg.counter("x_total", "test", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, ReRegisteringADifferentTypeThrows) {
  Registry reg;
  reg.counter("x_total", "test");
  EXPECT_THROW(reg.gauge("x_total", "test"), ConfigError);
  EXPECT_THROW(reg.histogram("x_total", "test"), ConfigError);
}

TEST(Registry, InvalidNamesAreRejected) {
  Registry reg;
  EXPECT_THROW(reg.counter("9starts_with_digit", "test"), ConfigError);
  EXPECT_THROW(reg.counter("has space", "test"), ConfigError);
  EXPECT_THROW(reg.counter("", "test"), ConfigError);
  EXPECT_THROW(reg.counter("ok_total", "test", {{"bad-key", "v"}}),
               ConfigError);
  EXPECT_NO_THROW(reg.counter("ok:total_2", "test", {{"good_key", "any ä"}}));
}

TEST(Registry, DisabledRegistryDropsEveryObservation) {
  Registry reg(/*enabled=*/false);
  Counter& c = reg.counter("c_total", "test");
  Gauge& g = reg.gauge("g", "test");
  Histogram& h = reg.histogram("h_ns", "test");
  c.inc(100);
  g.set(5.0);
  g.add(2.0);
  h.record(8.0);
  {
    const ScopedTimer timer(&h);
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  reg.set_enabled(true);
  c.inc();
  {
    const ScopedTimer timer(&h);
  }
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Registry, ScopedTimerToleratesNullHistogram) {
  const ScopedTimer timer(nullptr);  // must not crash
}

// --- Exposition --------------------------------------------------------------

std::string render_text(const Registry& reg) {
  std::ostringstream os;
  render_prometheus(reg.snapshot(), os);
  return os.str();
}

TEST(Exposition, LabelEscapingRoundTrips) {
  const std::string raw = "a\\b\"c\nd";
  EXPECT_EQ(escape_label_value(raw), "a\\\\b\\\"c\\nd");

  Registry reg;
  reg.counter("esc_total", "test", {{"path", raw}}).inc(3);
  const std::string text = render_text(reg);
  const std::string line = "esc_total{path=\"a\\\\b\\\"c\\nd\"} 3\n";
  ASSERT_NE(text.find(line), std::string::npos) << text;

  // Round trip: applying the documented unescape rules to the rendered
  // value recovers the original label byte-for-byte.
  const std::size_t open = text.find("path=\"") + 6;
  const std::size_t close = text.find("\"}", open);
  const std::string escaped = text.substr(open, close - open);
  std::string back;
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\' && i + 1 < escaped.size()) {
      const char n = escaped[++i];
      back += n == 'n' ? '\n' : n;
    } else {
      back += escaped[i];
    }
  }
  EXPECT_EQ(back, raw);
}

TEST(Exposition, PrometheusRendersHelpTypeAndCumulativeBuckets) {
  Registry reg;
  reg.counter("req_total", "Requests.").inc(7);
  Histogram& h = reg.histogram("lat_ns", "Latency.");
  h.record(3.0);   // bucket 2 (le=4)
  h.record(4.0);   // bucket 2
  h.record(9.0);   // bucket 4 (le=16)
  const std::string text = render_text(reg);
  EXPECT_NE(text.find("# HELP req_total Requests.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ns histogram\n"), std::string::npos);
  // Cumulative: le="4" has 2, le="8" still 2, le="16" all 3, +Inf 3.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"8\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"16\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 16\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos);
}

TEST(Exposition, JsonIsOneObjectPerLineWithStableKeys) {
  Registry reg;
  reg.counter("a_total", "A \"quoted\" help.").inc(2);
  reg.gauge("b", "B.").set(1.5);
  std::ostringstream os;
  render_json(reg.snapshot(), os);
  const std::string text = os.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"name\": \"a_total\""), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"value\": 2"), std::string::npos);
  EXPECT_NE(text.find("A \\\"quoted\\\" help."), std::string::npos);
  EXPECT_NE(text.find("\"value\": 1.5"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Exposition, WriteSnapshotReportsFailure) {
  Registry reg;
  reg.counter("c_total", "test");
  EXPECT_FALSE(write_snapshot(reg.snapshot(),
                              "/nonexistent-dir/metrics.txt",
                              Format::kPrometheus));
  const auto path =
      (fs::temp_directory_path() / "hdd_obs_test_snapshot.txt").string();
  EXPECT_TRUE(write_snapshot(reg.snapshot(), path, Format::kPrometheus));
  fs::remove(path);
}

TEST(Exposition, ParseFormatAcceptsAliases) {
  EXPECT_EQ(parse_format("text"), Format::kPrometheus);
  EXPECT_EQ(parse_format("prometheus"), Format::kPrometheus);
  EXPECT_EQ(parse_format("json"), Format::kJson);
  EXPECT_FALSE(parse_format("yaml").has_value());
}

// --- Wired subsystems --------------------------------------------------------

TEST(Instrumentation, ThreadPoolReportsTasksAndQueueDepth) {
  Registry reg;
  {
    ThreadPool pool(2, &reg);
    std::vector<std::future<void>> fs;
    for (int i = 0; i < 16; ++i) fs.push_back(pool.submit([] {}));
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(reg.counter("hdd_pool_tasks_total", "").value(), 16u);
  EXPECT_DOUBLE_EQ(reg.gauge("hdd_pool_queue_depth", "").value(), 0.0);
  EXPECT_EQ(reg.histogram("hdd_pool_task_latency_ns", "").count(), 16u);
}

// Fixed-score model: every sample votes "failing".
class FailingScorer final : public core::SampleScorer {
 public:
  double predict(std::span<const float>) const override { return -1.0; }
  void predict_batch(std::span<const float>,
                     std::span<double> out) const override {
    for (auto& o : out) o = -1.0;
  }
  int num_features() const override { return 1; }
  std::string summary() const override { return "failing"; }
};

TEST(Instrumentation, FleetScorerCountsSamplesAlarmsAndTransitions) {
  Registry reg;
  const FailingScorer scorer;
  core::FleetScorerConfig cfg;
  cfg.features = {"t1", {{smart::Attr::kRawReadErrorRate, 0}}};
  cfg.vote.voters = 3;
  cfg.metrics = &reg;
  core::FleetScorer fleet(scorer, cfg);
  fleet.add_drive("d0");
  fleet.add_drive("d1");
  const std::vector<float> row(2, 0.0f);
  for (int h = 0; h < 3; ++h) {
    fleet.observe_interval(row, h);
  }
  EXPECT_EQ(fleet.alarm_count(), 2u);
  EXPECT_EQ(reg.counter("hdd_fleet_samples_scored_total", "").value(), 6u);
  EXPECT_EQ(reg.counter("hdd_fleet_alarms_total", "").value(), 2u);
  // Every output is failing: no healthy<->failing flips.
  EXPECT_EQ(reg.counter("hdd_fleet_vote_transitions_total", "").value(), 0u);
  EXPECT_EQ(reg.histogram("hdd_fleet_batch_latency_ns", "").count(), 3u);
}

TEST(Instrumentation, StoreCountsAppendsBytesAndFsyncs) {
  Registry reg;
  const auto dir =
      (fs::temp_directory_path() / "hdd_obs_test_store").string();
  fs::remove_all(dir);
  store::StoreOptions opt;
  opt.metrics = &reg;
  {
    store::TelemetryStore store(dir, opt);
    const std::uint32_t id = store.register_drive("drv");
    smart::Sample s;
    s.hour = 1;
    store.append(id, s);
    s.hour = 2;
    store.append(id, s);
    store.flush();
  }
  // 3 records framed: 1 registration + 2 samples.
  EXPECT_EQ(reg.counter("hdd_store_appends_total", "").value(), 3u);
  EXPECT_GT(reg.counter("hdd_store_bytes_written_total", "").value(), 0u);
  EXPECT_EQ(reg.counter("hdd_store_fsyncs_total", "").value(), 1u);
  const std::string rec = "hdd_store_recovery_outcomes_total";
  EXPECT_EQ(reg.counter(rec, "", {{"outcome", "torn_tail"}}).value(), 0u);

  // Tear the tail: reopening must count exactly one torn-tail truncation.
  std::string seg;
  for (const auto& e : fs::directory_iterator(dir)) seg = e.path().string();
  fs::resize_file(seg, fs::file_size(seg) - 3);
  Registry reg2;
  store::StoreOptions opt2;
  opt2.metrics = &reg2;
  store::TelemetryStore reopened(dir, opt2);
  EXPECT_EQ(reopened.sample_count(), 1u);
  EXPECT_EQ(reg2.counter(rec, "", {{"outcome", "torn_tail"}}).value(), 1u);
  EXPECT_EQ(reg2.counter(rec, "", {{"outcome", "crc_drop"}}).value(), 0u);
  EXPECT_EQ(reg2.counter(rec, "", {{"outcome", "header_skip"}}).value(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hdd::obs
