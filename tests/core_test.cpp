// Tests for src/core: the FailurePredictor facade (all model types), paper
// preset configurations, the health-degree model (Eq. 5/6), the warning
// queue, and tree persistence.
#include <gtest/gtest.h>

#include "common/error.h"

#include <sstream>

#include "core/health.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "data/split.h"
#include "sim/generator.h"

namespace hdd::core {
namespace {

// A tiny family-W fleet shared by the suite (kept small for speed).
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = sim::paper_fleet_config(0.05, 12);
    config.families.resize(1);
    fleet_ = new data::DriveDataset(sim::generate_fleet_window(config, 0, 1));
    split_ = new data::DatasetSplit(data::split_dataset(*fleet_, {}));
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete split_;
    fleet_ = nullptr;
    split_ = nullptr;
  }
  static data::DriveDataset* fleet_;
  static data::DatasetSplit* split_;
};

data::DriveDataset* CoreFixture::fleet_ = nullptr;
data::DatasetSplit* CoreFixture::split_ = nullptr;

TEST(PaperConfigs, MatchPublishedSettings) {
  const auto ct = paper_ct_config();
  EXPECT_EQ(ct.model, ModelType::kClassificationTree);
  EXPECT_EQ(ct.training.features.name, "stat13");
  EXPECT_EQ(ct.training.failed_window_hours, 168);
  EXPECT_DOUBLE_EQ(ct.training.failed_prior, 0.20);
  EXPECT_DOUBLE_EQ(ct.training.loss_false_alarm, 10.0);
  EXPECT_EQ(ct.tree_params.min_split, 20);
  EXPECT_EQ(ct.tree_params.min_bucket, 7);
  EXPECT_DOUBLE_EQ(ct.tree_params.cp, 0.001);
  EXPECT_EQ(ct.vote.voters, 11);

  const auto ann = paper_ann_config();
  EXPECT_EQ(ann.model, ModelType::kBpAnn);
  EXPECT_EQ(ann.training.failed_window_hours, 12);
  EXPECT_EQ(ann.ann.hidden, 13);  // 13-13-1 topology
  EXPECT_DOUBLE_EQ(ann.ann.learning_rate, 0.1);
  EXPECT_EQ(ann.ann.epochs, 400);

  const auto rt = paper_rt_classifier_config();
  EXPECT_EQ(rt.model, ModelType::kRegressionTree);
  EXPECT_TRUE(rt.vote.average_mode);
}

TEST(PredictorCtor, RejectsEmptyFeatures) {
  PredictorConfig cfg;
  cfg.training.features.specs.clear();
  EXPECT_THROW(FailurePredictor{cfg}, ConfigError);
}

TEST(ModelTypeNames, AllDistinct) {
  EXPECT_STREQ(model_type_name(ModelType::kClassificationTree), "CT");
  EXPECT_STREQ(model_type_name(ModelType::kRegressionTree), "RT");
  EXPECT_STREQ(model_type_name(ModelType::kBpAnn), "BP ANN");
  EXPECT_STREQ(model_type_name(ModelType::kRandomForest), "RandomForest");
  EXPECT_STREQ(model_type_name(ModelType::kAdaBoost), "AdaBoost");
}

TEST(ModelTypeNames, OutOfRangeValueThrows) {
  EXPECT_THROW(model_type_name(static_cast<ModelType>(99)), ConfigError);
  EXPECT_THROW(model_type_name(static_cast<ModelType>(-1)), ConfigError);
}

// --- Preset registry --------------------------------------------------------

TEST(Presets, RegistryCoversThePaperConfigs) {
  const auto all = presets();
  ASSERT_EQ(all.size(), 4u);
  for (const auto& p : all) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    // Every registered preset builds a config that passes validation.
    p.make().validate();
  }

  EXPECT_EQ(preset("ct").model, ModelType::kClassificationTree);
  EXPECT_EQ(preset("ann").model, ModelType::kBpAnn);
  EXPECT_EQ(preset("rt").model, ModelType::kRegressionTree);
  EXPECT_TRUE(preset("rt").vote.average_mode);
  EXPECT_EQ(preset("forest").model, ModelType::kRandomForest);
  EXPECT_EQ(preset("forest").forest.n_trees, 40);
  // The registry resolves to the same settings as the underlying functions.
  EXPECT_EQ(preset("ct").tree_params.min_split,
            paper_ct_config().tree_params.min_split);
  EXPECT_EQ(preset("ann").ann.epochs, paper_ann_config().ann.epochs);
}

TEST(Presets, UnknownNameThrowsListingKnownNames) {
  try {
    preset("banana");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("banana"), std::string::npos);
    EXPECT_NE(msg.find("ct"), std::string::npos);
    EXPECT_NE(msg.find("ann"), std::string::npos);
  }
}

// --- PredictorConfig::validate ----------------------------------------------

TEST(PredictorConfigValidate, RejectsBadVotingAndTrainingParameters) {
  {
    auto cfg = paper_ct_config();
    cfg.vote.voters = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    EXPECT_THROW(FailurePredictor{cfg}, ConfigError);  // ctor validates
  }
  {
    auto cfg = paper_ct_config();
    cfg.training.failed_window_hours = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
  }
  {
    auto cfg = paper_ct_config();
    cfg.training.failed_prior = 1.0;
    EXPECT_THROW(cfg.validate(), ConfigError);
  }
  {
    auto cfg = paper_ct_config();
    cfg.training.good_samples_per_drive = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
  }
  {
    auto cfg = paper_ct_config();
    cfg.training.loss_false_alarm = 0.0;
    EXPECT_THROW(cfg.validate(), ConfigError);
  }
  {
    auto cfg = paper_ct_config();
    cfg.model = static_cast<ModelType>(42);
    EXPECT_THROW(cfg.validate(), ConfigError);
  }
}

TEST(PredictorConfigValidate, ChecksOnlyTheSelectedModelsParameters) {
  auto cfg = paper_ct_config();
  cfg.ann.hidden = 0;  // broken, but the ANN is not selected
  cfg.validate();
  cfg.model = ModelType::kBpAnn;
  EXPECT_THROW(cfg.validate(), ConfigError);

  cfg = paper_ct_config();
  cfg.forest.n_trees = 0;
  cfg.validate();
  cfg.model = ModelType::kRandomForest;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST_F(CoreFixture, CtModelTrainsAndDetects) {
  FailurePredictor p(paper_ct_config());
  EXPECT_FALSE(p.trained());
  p.fit(*fleet_, *split_);
  EXPECT_TRUE(p.trained());
  ASSERT_NE(p.tree(), nullptr);
  EXPECT_GT(p.tree()->node_count(), 1u);

  const auto r = p.evaluate(*fleet_, *split_);
  EXPECT_GT(r.fdr(), 0.7);
  EXPECT_LT(r.far(), 0.05);
  EXPECT_GT(r.mean_tia(), 100.0);
}

TEST_F(CoreFixture, EveryModelTypeTrainsThroughTheFacade) {
  for (const auto type :
       {ModelType::kClassificationTree, ModelType::kRegressionTree,
        ModelType::kBpAnn, ModelType::kRandomForest, ModelType::kAdaBoost}) {
    auto cfg = paper_ct_config();
    cfg.model = type;
    cfg.ann.epochs = 30;        // keep the suite fast
    cfg.forest.n_trees = 8;
    cfg.adaboost.n_rounds = 5;
    FailurePredictor p(cfg);
    p.fit(*fleet_, *split_);
    EXPECT_TRUE(p.trained()) << model_type_name(type);
    const auto r = p.evaluate(*fleet_, *split_);
    EXPECT_GT(r.fdr(), 0.5) << model_type_name(type);
    // The facade exposes the tree only for tree-based models.
    if (type == ModelType::kClassificationTree ||
        type == ModelType::kRegressionTree) {
      EXPECT_NE(p.tree(), nullptr);
    } else {
      EXPECT_EQ(p.tree(), nullptr);
    }
    EXPECT_FALSE(p.describe().empty());
  }
}

TEST_F(CoreFixture, ScoreSampleAndDetectAgree) {
  FailurePredictor p(paper_ct_config());
  p.fit(*fleet_, *split_);
  // Find a failed test drive that the model alarms on.
  for (std::size_t di : split_->test_failed) {
    const auto& d = fleet_->drives[di];
    if (d.empty()) continue;
    const auto outcome = p.detect(d);
    if (!outcome.alarmed) continue;
    // At the alarm hour, a majority of the last N sample scores are bad.
    const auto idx = d.last_sample_at_or_before(outcome.alarm_hour);
    ASSERT_GE(idx, 0);
    int bad = 0, total = 0;
    for (std::int64_t i = idx;
         i >= 0 && total < p.config().vote.voters; --i, ++total) {
      bad += p.score_sample(d, static_cast<std::size_t>(i)) < 0.0;
    }
    EXPECT_GT(2 * bad, total);
    return;
  }
  GTEST_SKIP() << "no alarmed failed drive in this tiny fixture";
}

TEST_F(CoreFixture, UntrainedPredictorRefusesToPredict) {
  FailurePredictor p(paper_ct_config());
  EXPECT_THROW(p.sample_model(), ConfigError);
  EXPECT_THROW(p.detect(fleet_->drives[0]), ConfigError);
}

// --- Health-degree model ----------------------------------------------------

TEST_F(CoreFixture, HealthModelPersonalizedWindows) {
  HealthModelConfig cfg;
  cfg.personalized = true;
  HealthDegreeModel model(cfg);
  model.fit(*fleet_, *split_);
  EXPECT_TRUE(model.trained());
  // One window per failed training drive, each positive and <= record span.
  EXPECT_EQ(model.windows().size(), split_->train_failed.size());
  for (const auto& [serial, w] : model.windows()) {
    EXPECT_GT(w, 0);
    EXPECT_LE(w, 20 * 24 + 1);
  }
}

TEST_F(CoreFixture, HealthModelGlobalMode) {
  HealthModelConfig cfg;
  cfg.personalized = false;
  cfg.global_window_hours = 96;
  HealthDegreeModel model(cfg);
  model.fit(*fleet_, *split_);
  EXPECT_TRUE(model.trained());
  EXPECT_TRUE(model.windows().empty());
}

TEST_F(CoreFixture, HealthOutputsAreBoundedAndOrdered) {
  HealthDegreeModel model;
  model.fit(*fleet_, *split_);
  // Health degree lies in [-1, 1]; failed drives trend downward toward
  // failure (on average over the population).
  double early_sum = 0.0, late_sum = 0.0;
  int counted = 0;
  for (std::size_t di : split_->test_failed) {
    const auto& d = fleet_->drives[di];
    if (d.samples.size() < 40) continue;
    const double early = model.health(d, 0);
    const double late = model.health(d, d.samples.size() - 1);
    EXPECT_GE(early, -1.0);
    EXPECT_LE(early, 1.0);
    early_sum += early;
    late_sum += late;
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(late_sum / counted, early_sum / counted);
}

TEST_F(CoreFixture, HealthThresholdTradesOffDetection) {
  HealthDegreeModel model;
  model.fit(*fleet_, *split_);
  const auto strict = model.evaluate(*fleet_, *split_, -0.6);
  const auto loose = model.evaluate(*fleet_, *split_, 0.0);
  EXPECT_GE(loose.fdr(), strict.fdr());
  EXPECT_GE(loose.far(), strict.far());
}

TEST(HealthConfig, Validation) {
  HealthModelConfig cfg;
  cfg.global_window_hours = 0;
  EXPECT_THROW(HealthDegreeModel{cfg}, ConfigError);
  cfg = HealthModelConfig{};
  cfg.failed_samples_per_drive = 0;
  EXPECT_THROW(HealthDegreeModel{cfg}, ConfigError);
}

TEST(WarningQueue, OrdersByHealthWorstFirst) {
  WarningQueue q;
  EXPECT_TRUE(q.empty());
  q.push({"a", -0.2, 0});
  q.push({"b", -0.9, 1});
  q.push({"c", 0.5, 2});
  q.push({"d", -0.5, 3});
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop().serial, "b");
  EXPECT_EQ(q.pop().serial, "d");
  EXPECT_EQ(q.pop().serial, "a");
  EXPECT_EQ(q.pop().serial, "c");
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), ConfigError);
}

// --- Model persistence ------------------------------------------------------

TEST_F(CoreFixture, TreeSaveLoadRoundTrip) {
  FailurePredictor p(paper_ct_config());
  p.fit(*fleet_, *split_);
  std::ostringstream os;
  save_tree(*p.tree(), os);

  std::istringstream is(os.str());
  const auto loaded = load_tree(is);
  EXPECT_EQ(loaded.task(), tree::Task::kClassification);
  EXPECT_EQ(loaded.num_features(), p.tree()->num_features());
  EXPECT_EQ(loaded.node_count(), p.tree()->node_count());

  // Identical predictions on live telemetry.
  const auto& d = fleet_->drives[0];
  const auto& features = p.config().training.features;
  for (std::size_t i = 0; i < std::min<std::size_t>(d.samples.size(), 20);
       ++i) {
    const auto row = smart::extract_features(d, i, features);
    EXPECT_DOUBLE_EQ(loaded.predict(*row), p.tree()->predict(*row));
  }
}

TEST(ModelIo, RejectsMalformedInput) {
  {
    std::istringstream is("not a tree file\n");
    EXPECT_THROW(load_tree(is), DataError);
  }
  {
    std::istringstream is("hddpred-tree v1\ntask banana\n");
    EXPECT_THROW(load_tree(is), DataError);
  }
  {
    std::istringstream is(
        "hddpred-tree v1\ntask classification\nfeatures 2\nnodes 1\n");
    EXPECT_THROW(load_tree(is), DataError);  // truncated node list
  }
  {
    // Node referencing an out-of-range child.
    std::istringstream is(
        "hddpred-tree v1\ntask classification\nfeatures 2\nnodes 1\n"
        "5 6 0 0.5 0 1 1 0\n");
    EXPECT_THROW(load_tree(is), DataError);
  }
}

TEST(ModelIo, SaveRejectsUntrainedTree) {
  tree::DecisionTree t;
  std::ostringstream os;
  EXPECT_THROW(save_tree(t, os), ConfigError);
}

}  // namespace
}  // namespace hdd::core
