// Tests for src/stats: the Wilcoxon rank-sum test, reverse arrangements
// test, z-scores, and the statistical feature-selection pipeline of
// Section IV-B.
#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>

#include "common/rng.h"
#include "sim/generator.h"
#include "stats/feature_select.h"
#include "stats/nonparametric.h"

namespace hdd::stats {
namespace {

TEST(RankSum, RequiresNonEmptySamples) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(rank_sum_test({}, xs), ConfigError);
  EXPECT_THROW(rank_sum_test(xs, {}), ConfigError);
}

TEST(RankSum, IdenticalDistributionsGiveSmallZ) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal());
  }
  const auto r = rank_sum_test(xs, ys);
  EXPECT_LT(std::fabs(r.z), 3.0);
  EXPECT_GT(r.p_value, 0.001);
}

TEST(RankSum, ShiftedDistributionDetected) {
  Rng rng(6);
  std::vector<double> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(rng.normal(1.0, 1.0));  // shifted up
    ys.push_back(rng.normal(0.0, 1.0));
  }
  const auto r = rank_sum_test(xs, ys);
  EXPECT_GT(r.z, 5.0);  // xs ranks higher
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(RankSum, AntisymmetricInArguments) {
  Rng rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(rng.normal(0.5, 1.0));
    ys.push_back(rng.normal(0.0, 1.0));
  }
  const auto ab = rank_sum_test(xs, ys);
  const auto ba = rank_sum_test(ys, xs);
  EXPECT_NEAR(ab.z, -ba.z, 1e-9);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
}

TEST(RankSum, HandlesHeavyTies) {
  // Quantized data (like normalized SMART values) is almost all ties.
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i < 70 ? 100.0 : 99.0);
    ys.push_back(i < 30 ? 100.0 : 99.0);
  }
  const auto r = rank_sum_test(xs, ys);
  EXPECT_GT(r.z, 3.0);  // xs clearly higher despite ties
}

TEST(RankSum, AllValuesIdenticalIsNull) {
  const std::vector<double> xs(50, 7.0), ys(50, 7.0);
  const auto r = rank_sum_test(xs, ys);
  EXPECT_DOUBLE_EQ(r.z, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(RankSum, DetectsSmallSampleAgainstLargeReference) {
  // The feature-selection use case: a few hundred failed samples against
  // tens of thousands of good ones.
  Rng rng(8);
  std::vector<double> failed, good;
  for (int i = 0; i < 200; ++i) failed.push_back(rng.normal(-2.0, 1.0));
  for (int i = 0; i < 20000; ++i) good.push_back(rng.normal(0.0, 1.0));
  const auto r = rank_sum_test(failed, good);
  EXPECT_LT(r.z, -10.0);
}

TEST(ReverseArrangements, RequiresThreeObservations) {
  const std::vector<double> xs{1, 2};
  EXPECT_THROW(reverse_arrangements_test(xs), ConfigError);
}

TEST(ReverseArrangements, DecreasingSeriesHasPositiveZ) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(50.0 - i);
  const auto r = reverse_arrangements_test(xs);
  EXPECT_GT(r.z, 5.0);  // every pair is a reversal
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ReverseArrangements, IncreasingSeriesHasNegativeZ) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(static_cast<double>(i));
  const auto r = reverse_arrangements_test(xs);
  EXPECT_LT(r.z, -5.0);
}

TEST(ReverseArrangements, ExchangeableSeriesNearZero) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform());
  const auto r = reverse_arrangements_test(xs);
  EXPECT_LT(std::fabs(r.z), 3.0);
}

TEST(ReverseArrangements, MatchesHandCount) {
  // Series {3, 1, 2}: reversals are (3,1), (3,2) -> 2; mean = 1.5.
  const std::vector<double> xs{3, 1, 2};
  const auto r = reverse_arrangements_test(xs);
  const double var = 3.0 * 11.0 * 2.0 / 72.0;
  EXPECT_NEAR(r.z, (2.0 - 1.5) / std::sqrt(var), 1e-12);
}

TEST(ZScore, ZeroForSamplesAtTheReferenceMean) {
  const std::vector<double> ref{0, 1, 2, 3, 4};
  const std::vector<double> xs{2.0, 2.0};
  EXPECT_NEAR(mean_abs_zscore(xs, ref), 0.0, 1e-12);
}

TEST(ZScore, GrowsWithDeviation) {
  Rng rng(10);
  std::vector<double> ref;
  for (int i = 0; i < 1000; ++i) ref.push_back(rng.normal());
  const std::vector<double> near{0.5};
  const std::vector<double> far{5.0};
  EXPECT_LT(mean_abs_zscore(near, ref), mean_abs_zscore(far, ref));
}

TEST(ZScore, DegenerateReferenceGivesZero) {
  const std::vector<double> ref(10, 3.0);
  const std::vector<double> xs{5.0};
  EXPECT_DOUBLE_EQ(mean_abs_zscore(xs, ref), 0.0);
  EXPECT_DOUBLE_EQ(mean_abs_zscore({}, ref), 0.0);
}

// --- Feature selection on a synthetic fleet --------------------------------

class FeatureSelection : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = sim::paper_fleet_config(0.02, 33);
    config.families.resize(1);  // family W
    dataset_ = new data::DriveDataset(sim::generate_fleet_window(config, 0, 1));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::DriveDataset* dataset_;
};

data::DriveDataset* FeatureSelection::dataset_ = nullptr;

TEST_F(FeatureSelection, ScoresEveryCandidate) {
  FeatureSelectionConfig cfg;
  cfg.change_intervals = {6};
  const auto scores = score_candidates(*dataset_, cfg);
  // 12 levels + 12 six-hour rates.
  EXPECT_EQ(scores.size(), 24u);
  // Sorted best-first.
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1].combined(), scores[i].combined());
  }
}

TEST_F(FeatureSelection, InformativeAttributesRankAboveInertOnes) {
  FeatureSelectionConfig cfg;
  cfg.change_intervals = {6};
  const auto scores = score_candidates(*dataset_, cfg);
  auto rank_of = [&](smart::Attr a, int interval) {
    for (std::size_t i = 0; i < scores.size(); ++i) {
      if (scores[i].spec.attr == a &&
          scores[i].spec.change_interval_hours == interval) {
        return i;
      }
    }
    return scores.size();
  };
  // Temperature and Reported Uncorrectable Errors drive family-W failures;
  // Spin Up Time levels carry almost nothing for most drives.
  EXPECT_LT(rank_of(smart::Attr::kTemperatureCelsius, 0),
            rank_of(smart::Attr::kSpinUpTime, 0));
  EXPECT_LT(rank_of(smart::Attr::kReportedUncorrectable, 0),
            rank_of(smart::Attr::kSpinUpTime, 0));
}

TEST_F(FeatureSelection, SelectsRequestedCounts) {
  FeatureSelectionConfig cfg;
  cfg.n_levels = 10;
  cfg.n_rates = 3;
  const auto fs = select_features(*dataset_, cfg);
  int levels = 0, rates = 0;
  for (const auto& spec : fs.specs) {
    (spec.is_change_rate() ? rates : levels)++;
  }
  EXPECT_EQ(levels, 10);
  EXPECT_EQ(rates, 3);
}

TEST_F(FeatureSelection, RatesAreUniquePerAttribute) {
  FeatureSelectionConfig cfg;
  cfg.change_intervals = {3, 6, 12, 24};
  const auto fs = select_features(*dataset_, cfg);
  std::vector<smart::Attr> rate_attrs;
  for (const auto& spec : fs.specs) {
    if (!spec.is_change_rate()) continue;
    for (auto a : rate_attrs) EXPECT_NE(a, spec.attr);
    rate_attrs.push_back(spec.attr);
  }
}

TEST_F(FeatureSelection, OverlapsThePaperSelection) {
  // The pipeline should substantially agree with the paper's outcome
  // (stat13): at least 8 of our 13 picks appear in stat13.
  FeatureSelectionConfig cfg;
  const auto fs = select_features(*dataset_, cfg);
  const auto paper = smart::stat13_features();
  int overlap = 0;
  for (const auto& spec : fs.specs) {
    for (const auto& p : paper.specs) {
      if (spec.attr == p.attr &&
          spec.is_change_rate() == p.is_change_rate()) {
        ++overlap;
        break;
      }
    }
  }
  EXPECT_GE(overlap, 8) << "selected: " << fs.specs.size();
}

TEST(FeatureSelectionErrors, NeedsBothClasses) {
  data::DriveDataset ds;
  ds.family_names = {"W"};
  smart::DriveRecord good;
  good.serial = "g";
  smart::Sample s;
  s.hour = 0;
  good.samples.push_back(s);
  ds.drives.push_back(good);
  EXPECT_THROW(score_candidates(ds, {}), ConfigError);
}

}  // namespace
}  // namespace hdd::stats
