// Tests for src/sim: determinism of the counter-based generator, latent
// population structure, the deterioration ramp, drift, missing telemetry,
// and fleet materialization invariants.
#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>
#include <set>

#include "sim/generator.h"

namespace hdd::sim {
namespace {

using smart::Attr;

TraceGenerator make_w_gen(std::uint64_t seed = 42) {
  return TraceGenerator(family_w_profile(), seed, 0);
}

constexpr std::int64_t kHorizon = 8 * 7 * 24;

TEST(Profiles, BothFamiliesAreWellFormed) {
  for (const auto& p : {family_w_profile(), family_q_profile()}) {
    EXPECT_FALSE(p.signatures.empty());
    double total = 0.0;
    for (const auto& s : p.signatures) {
      EXPECT_GT(s.weight, 0.0);
      EXPECT_FALSE(s.effects.empty());
      total += s.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(p.window_max_hours, p.window_min_hours);
    EXPECT_GT(p.severity_max, p.severity_min);
    EXPECT_GE(p.sudden_death_frac, 0.0);
    EXPECT_LT(p.sudden_death_frac, 0.5);
  }
}

TEST(Latent, DeterministicAcrossCallsAndInstances) {
  const auto gen_a = make_w_gen();
  const auto gen_b = make_w_gen();
  for (std::uint64_t i : {0ull, 1ull, 57ull}) {
    const auto a = gen_a.make_latent(i, true, kHorizon);
    const auto b = gen_b.make_latent(i, true, kHorizon);
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.fail_hour, b.fail_hour);
    EXPECT_DOUBLE_EQ(a.age_hours, b.age_hours);
    EXPECT_DOUBLE_EQ(a.window_hours, b.window_hours);
    EXPECT_EQ(a.signature, b.signature);
  }
}

TEST(Latent, GoodAndFailedStreamsAreDistinct) {
  const auto gen = make_w_gen();
  const auto good = gen.make_latent(7, false, kHorizon);
  const auto failed = gen.make_latent(7, true, kHorizon);
  EXPECT_NE(good.key, failed.key);
  EXPECT_FALSE(good.failed);
  EXPECT_TRUE(failed.failed);
  EXPECT_EQ(good.fail_hour, -1);
  EXPECT_GE(failed.fail_hour, 24);
  EXPECT_LT(failed.fail_hour, kHorizon);
}

TEST(Latent, SeedChangesThePopulation) {
  const auto a = make_w_gen(1).make_latent(0, false, kHorizon);
  const auto b = make_w_gen(2).make_latent(0, false, kHorizon);
  EXPECT_NE(a.key, b.key);
}

TEST(Latent, FailedDrivesAreOlderOnAverage) {
  const auto gen = make_w_gen();
  double good_age = 0.0, failed_age = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    good_age += gen.make_latent(static_cast<std::uint64_t>(i), false,
                                kHorizon).age_hours;
    failed_age += gen.make_latent(static_cast<std::uint64_t>(i), true,
                                  kHorizon).age_hours;
  }
  EXPECT_GT(failed_age / n, good_age / n);
}

TEST(Latent, WindowsWithinConfiguredBounds) {
  const auto profile = family_w_profile();
  const auto gen = make_w_gen();
  for (int i = 0; i < 300; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), true,
                                   kHorizon);
    if (d.signature < 0) {
      EXPECT_DOUBLE_EQ(d.window_hours, 0.0);  // sudden death
      continue;
    }
    EXPECT_GE(d.window_hours, profile.window_min_hours);
    EXPECT_LE(d.window_hours, profile.window_max_hours);
    EXPECT_GE(d.severity, profile.severity_min);
    EXPECT_LE(d.severity, profile.severity_max);
    EXPECT_GE(d.signature, 0);
    EXPECT_LT(d.signature,
              static_cast<int>(profile.signatures.size()));
  }
}

TEST(Latent, SuddenDeathFractionApproximatelyHonored) {
  const auto gen = make_w_gen();
  int sudden = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    sudden += gen.make_latent(static_cast<std::uint64_t>(i), true,
                              kHorizon).signature < 0;
  }
  const double frac = static_cast<double>(sudden) / n;
  EXPECT_NEAR(frac, family_w_profile().sudden_death_frac, 0.02);
}

TEST(Latent, BorderlineSubpopulationExists) {
  const auto gen = make_w_gen();
  int borderline = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), false,
                                   kHorizon);
    borderline += d.rsc_raw_base >= 10.0;
  }
  // borderline_frac plus part of the benign 13% small-count band.
  EXPECT_GT(borderline, 0);
  EXPECT_LT(static_cast<double>(borderline) / n, 0.10);
}

TEST(Ramp, ZeroForGoodAndPreOnset) {
  const auto gen = make_w_gen();
  const auto good = gen.make_latent(0, false, kHorizon);
  EXPECT_DOUBLE_EQ(gen.ramp_at(good, 100), 0.0);

  // Find a failed drive with a window comfortably inside its record.
  for (int i = 0; i < 50; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), true,
                                   kHorizon);
    if (d.signature < 0) continue;
    const auto onset =
        d.fail_hour - static_cast<std::int64_t>(d.window_hours);
    if (onset <= 10) continue;
    EXPECT_DOUBLE_EQ(gen.ramp_at(d, onset - 5), 0.0);
    EXPECT_GT(gen.ramp_at(d, d.fail_hour), 0.99);
    // Monotone non-decreasing along the window.
    double prev = 0.0;
    for (std::int64_t t = onset; t <= d.fail_hour;
         t += std::max<std::int64_t>(1, (d.fail_hour - onset) / 20)) {
      const double s = gen.ramp_at(d, t);
      EXPECT_GE(s, prev - 1e-12);
      prev = s;
    }
    return;
  }
  FAIL() << "no suitable failed drive found";
}

TEST(Samples, DeterministicAtEveryHour) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(3, false, kHorizon);
  for (std::int64_t h : {0, 17, 1000}) {
    const auto a = gen.sample_at(d, h);
    const auto b = gen.sample_at(d, h);
    EXPECT_EQ(a.attrs, b.attrs);
  }
}

TEST(Samples, ValuesWithinClampRanges) {
  const auto gen = make_w_gen();
  const auto profile = family_w_profile();
  for (int i = 0; i < 20; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), i % 2 == 0,
                                   kHorizon);
    const std::int64_t end = d.failed ? d.fail_hour : kHorizon - 1;
    for (std::int64_t h = std::max<std::int64_t>(0, end - 100); h <= end;
         h += 7) {
      const auto s = gen.sample_at(d, h);
      for (int a = 0; a < smart::kNumAttributes; ++a) {
        const auto& b = profile.behavior[static_cast<std::size_t>(a)];
        EXPECT_GE(s.attrs[static_cast<std::size_t>(a)], b.lo);
        EXPECT_LE(s.attrs[static_cast<std::size_t>(a)], b.hi);
      }
    }
  }
}

TEST(Samples, ValuesAreIntegerQuantized) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(11, false, kHorizon);
  const auto s = gen.sample_at(d, 500);
  for (float v : s.attrs) {
    EXPECT_FLOAT_EQ(v, std::round(v));
  }
}

TEST(Samples, PowerOnHoursDecreasesWithAge) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(5, false, kHorizon);
  const float early = gen.sample_at(d, 0).value(Attr::kPowerOnHours);
  const float late = gen.sample_at(d, kHorizon - 1).value(Attr::kPowerOnHours);
  EXPECT_LE(late, early);
}

TEST(Samples, ReallocatedSectorsNeverShrinkForGoodDrives) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(13, false, kHorizon);
  float prev = -1.0f;
  for (std::int64_t h = 0; h < 400; h += 5) {
    const float v = gen.sample_at(d, h).value(Attr::kReallocatedSectorsRaw);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Samples, FailureSignatureMovesItsAttributes) {
  const auto gen = make_w_gen();
  const auto profile = family_w_profile();
  int checked = 0;
  for (int i = 0; i < 200 && checked < 20; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), true,
                                   kHorizon);
    if (d.signature < 0 || d.window_hours < 100.0) continue;
    const auto onset =
        d.fail_hour - static_cast<std::int64_t>(d.window_hours);
    if (onset < 0) continue;
    const auto& sig =
        profile.signatures[static_cast<std::size_t>(d.signature)];
    // Compare mean attribute value pre-onset vs at failure.
    for (const auto& e : sig.effects) {
      double pre = 0.0, post = 0.0;
      const int reps = 12;
      for (int r = 0; r < reps; ++r) {
        pre += gen.sample_at(d, std::max<std::int64_t>(0, onset - 40 + r))
                   .value(e.attr);
        post += gen.sample_at(d, d.fail_hour - r).value(e.attr);
      }
      if (e.delta < 0) {
        EXPECT_LT(post / reps, pre / reps + 1.0)
            << "attr " << smart::attribute_name(e.attr) << " drive " << i;
      }
    }
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

TEST(Samples, PopulationDriftShiftsTheMean) {
  const auto gen = make_w_gen();
  // Temperature drifts down (hotter) by ~0.9/week: over 7 weeks ~6 points.
  double week0 = 0.0, week7 = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), false,
                                   kHorizon);
    week0 += gen.sample_at(d, 10).value(Attr::kTemperatureCelsius);
    week7 += gen.sample_at(d, 10 + 7 * 168).value(Attr::kTemperatureCelsius);
  }
  EXPECT_LT(week7 / n, week0 / n - 3.0);
}

TEST(Missing, RateApproximatelyHonored) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(2, false, kHorizon);
  int missing = 0;
  const int n = 5000;
  for (int h = 0; h < n; ++h) missing += gen.is_missing(d, h);
  EXPECT_NEAR(static_cast<double>(missing) / n,
              family_w_profile().missing_prob, 0.01);
}

TEST(Materialize, RespectsIntervalAndFailureCut) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(9, true, kHorizon);
  const auto rec = gen.materialize(d, 0, kHorizon, 2);
  ASSERT_FALSE(rec.samples.empty());
  EXPECT_TRUE(rec.failed);
  EXPECT_LE(rec.samples.back().hour, d.fail_hour);
  for (std::size_t i = 1; i < rec.samples.size(); ++i) {
    EXPECT_GT(rec.samples[i].hour, rec.samples[i - 1].hour);
    EXPECT_EQ(rec.samples[i].hour % 2, 0);
  }
}

TEST(Materialize, WindowAlignsToGrid) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(9, false, kHorizon);
  const auto rec = gen.materialize(d, 5, 29, 4);
  for (const auto& s : rec.samples) {
    EXPECT_EQ(s.hour % 4, 0);
    EXPECT_GE(s.hour, 8);  // first grid point >= 5
    EXPECT_LE(s.hour, 29);
  }
}

TEST(Materialize, RejectsBadInterval) {
  const auto gen = make_w_gen();
  const auto d = gen.make_latent(0, false, kHorizon);
  EXPECT_THROW(gen.materialize(d, 0, 10, 0), ConfigError);
}

TEST(Samples, FamilyQRunsHotterThanW) {
  // Family "Q" is the hotter, noisier fleet (Figure 5's setup).
  const TraceGenerator w_gen(family_w_profile(), 42, 0);
  const TraceGenerator q_gen(family_q_profile(), 42, 1);
  double w_tc = 0.0, q_tc = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto wd = w_gen.make_latent(static_cast<std::uint64_t>(i), false,
                                      kHorizon);
    const auto qd = q_gen.make_latent(static_cast<std::uint64_t>(i), false,
                                      kHorizon);
    w_tc += w_gen.sample_at(wd, 50).value(Attr::kTemperatureCelsius);
    q_tc += q_gen.sample_at(qd, 50).value(Attr::kTemperatureCelsius);
  }
  // Normalized TC = 100 - Celsius: hotter means lower.
  EXPECT_LT(q_tc / n, w_tc / n - 2.0);
}

TEST(Samples, SpikeEpisodesAreRareButPresent) {
  // Over many drive-hours, some samples must deviate far below a drive's
  // typical Raw Read Error Rate (spikes), but only a small fraction.
  const auto gen = make_w_gen();
  int spiky = 0, total = 0;
  for (int i = 0; i < 40; ++i) {
    const auto d = gen.make_latent(static_cast<std::uint64_t>(i), false,
                                   kHorizon);
    const double base = d.base[smart::index_of(Attr::kRawReadErrorRate)];
    for (std::int64_t h = 0; h < 500; h += 1) {
      const float v = gen.sample_at(d, h).value(Attr::kRawReadErrorRate);
      if (v < base - 25.0) ++spiky;
      ++total;
    }
  }
  EXPECT_GT(spiky, 0);
  EXPECT_LT(static_cast<double>(spiky) / total, 0.05);
}

TEST(Fleet, PaperConfigScalesCounts) {
  const auto full = paper_fleet_config(1.0);
  ASSERT_EQ(full.families.size(), 2u);
  EXPECT_EQ(full.families[0].n_good, 22790u);
  EXPECT_EQ(full.families[0].n_failed, 434u);
  EXPECT_EQ(full.families[1].n_good, 2441u);
  EXPECT_EQ(full.families[1].n_failed, 127u);

  const auto small = paper_fleet_config(0.1);
  EXPECT_EQ(small.families[0].n_good, 2279u);
  EXPECT_EQ(small.families[1].n_failed, 13u);
}

TEST(Fleet, GenerateProducesExpectedStructure) {
  auto config = paper_fleet_config(0.005, 7, 4);
  const auto ds = generate_fleet_window(config, 0, 1);
  EXPECT_EQ(ds.family_names.size(), 2u);
  EXPECT_EQ(ds.count_good(0), config.families[0].n_good);
  EXPECT_EQ(ds.count_failed(0), config.families[0].n_failed);
  EXPECT_EQ(ds.count_good(1), config.families[1].n_good);
  EXPECT_EQ(ds.count_failed(1), config.families[1].n_failed);

  std::set<std::string> serials;
  for (const auto& d : ds.drives) {
    EXPECT_TRUE(serials.insert(d.serial).second) << "duplicate serial";
    if (!d.failed) {
      ASSERT_FALSE(d.samples.empty());
      EXPECT_LT(d.samples.back().hour, 168);
    } else {
      EXPECT_GE(d.fail_hour, 24);
    }
  }
}

TEST(Fleet, GenerationIsReproducible) {
  auto config = paper_fleet_config(0.002, 99, 6);
  const auto a = generate_fleet_window(config, 0, 1);
  const auto b = generate_fleet_window(config, 0, 1);
  ASSERT_EQ(a.drives.size(), b.drives.size());
  for (std::size_t i = 0; i < a.drives.size(); ++i) {
    ASSERT_EQ(a.drives[i].samples.size(), b.drives[i].samples.size());
    for (std::size_t s = 0; s < a.drives[i].samples.size(); ++s) {
      EXPECT_EQ(a.drives[i].samples[s].attrs, b.drives[i].samples[s].attrs);
    }
  }
}

TEST(Fleet, WeekWindowsTile) {
  // A drive's week-2 window regenerated alone matches the same hours from
  // a full-span materialization (random access property).
  auto config = paper_fleet_config(0.002, 5, 1);
  config.families.resize(1);
  const auto whole = generate_fleet_window(config, 0, 3);
  const auto week2 = generate_fleet_window(config, 1, 2);
  // Compare the first good drive.
  const auto& w = whole.drives[0];
  const auto& p = week2.drives[0];
  ASSERT_EQ(w.serial, p.serial);
  for (const auto& s : p.samples) {
    const auto idx = w.last_sample_at_or_before(s.hour);
    ASSERT_GE(idx, 0);
    ASSERT_EQ(w.samples[static_cast<std::size_t>(idx)].hour, s.hour);
    EXPECT_EQ(w.samples[static_cast<std::size_t>(idx)].attrs, s.attrs);
  }
}

TEST(Fleet, BadWeekRangeRejected) {
  auto config = paper_fleet_config(0.002);
  EXPECT_THROW(generate_fleet_window(config, 2, 1), ConfigError);
  EXPECT_THROW(generate_fleet_window(config, 0, 100), ConfigError);
}

}  // namespace
}  // namespace hdd::sim
