// Tests for src/store: on-disk format codec round trips, append/reopen,
// rotation, retention, and — the point of the subsystem — deterministic
// recovery from every corruption class: torn tail, flipped payload bit,
// empty segment, unreadable header, and crash-interrupted compaction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "io/env.h"
#include "store/format.h"
#include "store/telemetry_store.h"

namespace hdd::store {
namespace {

namespace fs = std::filesystem;

smart::Sample make_sample(std::int64_t hour, float base = 0.0f) {
  smart::Sample s;
  s.hour = hour;
  for (std::size_t a = 0; a < s.attrs.size(); ++a) {
    s.attrs[a] = base + static_cast<float>(a) + 0.25f * static_cast<float>(hour);
  }
  return s;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("hdd_store_test_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::vector<fs::path> segment_files() const {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().filename().string().rfind("seg-", 0) == 0) {
        out.push_back(e.path());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::string read_bytes(const fs::path& p) {
    std::ifstream is(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
  }

  static void write_bytes(const fs::path& p, const std::string& bytes) {
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

// --- Format codec ----------------------------------------------------------

TEST(Format, SegmentHeaderRoundTrip) {
  const auto bytes = encode_segment_header(42, kSegCompacted);
  ASSERT_EQ(bytes.size(), kSegmentHeaderBytes);
  const auto h = decode_segment_header(bytes);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->sequence, 42u);
  EXPECT_EQ(h->flags, kSegCompacted);
}

TEST(Format, SegmentHeaderRejectsCorruption) {
  auto bytes = encode_segment_header(7, 0);
  EXPECT_FALSE(decode_segment_header(bytes.substr(0, 10)).has_value());
  bytes[3] ^= 0x01;  // damage the magic
  EXPECT_FALSE(decode_segment_header(bytes).has_value());
  bytes[3] ^= 0x01;
  bytes[12] ^= 0x40;  // damage the sequence -> checksum mismatch
  EXPECT_FALSE(decode_segment_header(bytes).has_value());
}

TEST(Format, DriveRecordRoundTrip) {
  const auto payload = encode_drive_record(3, "WD-XYZ-001");
  const auto rec = decode_record(payload);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->type, RecordType::kDrive);
  EXPECT_EQ(rec->drive, 3u);
  EXPECT_EQ(rec->serial, "WD-XYZ-001");
}

TEST(Format, SampleRecordRoundTripsBitExact) {
  const auto s = make_sample(1234, 0.875f);
  const auto payload = encode_sample_record(9, s);
  const auto rec = decode_record(payload);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->type, RecordType::kSample);
  EXPECT_EQ(rec->drive, 9u);
  EXPECT_EQ(rec->sample.hour, 1234);
  for (std::size_t a = 0; a < s.attrs.size(); ++a) {
    EXPECT_EQ(rec->sample.attrs[a], s.attrs[a]);  // exact bits, not approx
  }
}

TEST(Format, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(decode_record("").has_value());
  EXPECT_FALSE(decode_record("\x07junk").has_value());  // unknown type
  const auto payload = encode_sample_record(1, make_sample(5));
  EXPECT_FALSE(decode_record(payload.substr(0, payload.size() - 3)));
}

TEST(Format, FrameCarriesPayloadCrc) {
  const auto payload = encode_drive_record(0, "S");
  const auto framed = frame_record(payload);
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + payload.size());
  const auto crc = crc32(payload.data(), payload.size());
  std::uint32_t stored = 0;
  std::memcpy(&stored, framed.data() + 4, 4);
  EXPECT_EQ(stored, crc);
}

// --- Basic store behaviour -------------------------------------------------

TEST_F(StoreTest, AppendReopenRoundTrip) {
  {
    TelemetryStore store(dir());
    const auto a = store.register_drive("drive-A");
    const auto b = store.register_drive("drive-B");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(store.register_drive("drive-A"), a);  // idempotent
    for (std::int64_t h = 0; h < 48; h += 2) {
      store.append(a, make_sample(h, 1.0f));
      store.append(b, make_sample(h, 2.0f));
    }
    store.flush();
    EXPECT_EQ(store.sample_count(), 48u);
    EXPECT_EQ(store.last_hour(), 46);
  }
  TelemetryStore store(dir());
  EXPECT_EQ(store.drive_count(), 2u);
  EXPECT_EQ(store.recovery().records_recovered, 50u);  // 2 reg + 48 samples
  EXPECT_EQ(store.recovery().records_dropped, 0u);
  EXPECT_FALSE(store.recovery().tail_truncated);
  EXPECT_EQ(store.find_drive("drive-B"), std::optional<std::uint32_t>(1u));
  EXPECT_FALSE(store.find_drive("drive-C").has_value());
  EXPECT_EQ(store.drive(0).serial, "drive-A");
  EXPECT_EQ(store.drive(0).n_samples, 24u);
  EXPECT_EQ(store.drive(0).first_hour, 0);
  EXPECT_EQ(store.drive(0).last_hour, 46);

  const auto window = store.read_drive(1, 10, 20);
  ASSERT_EQ(window.size(), 6u);  // hours 10..20 step 2
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].hour, 10 + 2 * static_cast<std::int64_t>(i));
    EXPECT_EQ(window[i].attrs[3], make_sample(window[i].hour, 2.0f).attrs[3]);
  }
}

TEST_F(StoreTest, RegisterDriveValidatesSerial) {
  TelemetryStore store(dir());
  EXPECT_THROW(store.register_drive(""), ConfigError);
  EXPECT_THROW(store.append(0, make_sample(0)), ConfigError);  // unknown id
}

TEST_F(StoreTest, RotationSpreadsSegmentsAndScanPreservesOrder) {
  StoreOptions opt;
  opt.segment_bytes = 512;  // force many rotations
  {
    TelemetryStore store(dir(), opt);
    const auto id = store.register_drive("D");
    for (std::int64_t h = 0; h < 100; ++h) store.append(id, make_sample(h));
    store.flush();
    EXPECT_GT(store.segment_count(), 3u);
  }
  TelemetryStore store(dir(), opt);
  EXPECT_EQ(store.sample_count(), 100u);
  std::vector<std::int64_t> hours;
  store.scan([&](std::uint32_t drive, const smart::Sample& s) {
    EXPECT_EQ(drive, 0u);
    hours.push_back(s.hour);
  });
  ASSERT_EQ(hours.size(), 100u);
  for (std::int64_t h = 0; h < 100; ++h) EXPECT_EQ(hours[h], h);
  // read_drive prunes by the per-drive segment index but returns the same.
  EXPECT_EQ(store.read_drive(0).size(), 100u);
  EXPECT_EQ(store.read_drive(0, 90).size(), 10u);
}

// --- Corruption recovery ---------------------------------------------------

TEST_F(StoreTest, TornTailIsTruncatedAndStoreStaysAppendable) {
  {
    TelemetryStore store(dir());
    const auto id = store.register_drive("D");
    for (std::int64_t h = 0; h < 10; ++h) store.append(id, make_sample(h));
    store.flush();
  }
  const auto segs = segment_files();
  ASSERT_EQ(segs.size(), 1u);
  const auto full = fs::file_size(segs[0]);
  // One sample frame is 8B header + 61B payload (type + drive + hour +
  // 12 attrs); cutting 7 bytes tears the final record mid-payload.
  const std::uintmax_t frame = kFrameHeaderBytes + 1 + 4 + 8 + 12 * 4;
  fs::resize_file(segs[0], full - 7);

  {
    TelemetryStore store(dir());
    EXPECT_TRUE(store.recovery().tail_truncated);
    EXPECT_EQ(store.recovery().torn_bytes_truncated, frame - 7);
    EXPECT_EQ(store.recovery().records_recovered, 10u);  // 1 reg + 9 samples
    EXPECT_EQ(store.recovery().records_dropped, 0u);
    EXPECT_EQ(store.drive(0).n_samples, 9u);
    EXPECT_EQ(store.drive(0).last_hour, 8);
    // The file shrank to the last complete record...
    EXPECT_EQ(fs::file_size(segment_files()[0]), full - frame);
    // ...and the store accepts the re-written sample plus new ones.
    store.append(0, make_sample(9));
    store.append(0, make_sample(10));
    store.flush();
  }
  TelemetryStore store(dir());
  EXPECT_EQ(store.drive(0).n_samples, 11u);
  EXPECT_EQ(store.drive(0).last_hour, 10);
  EXPECT_FALSE(store.recovery().tail_truncated);
  EXPECT_EQ(store.segment_count(), 1u);  // appends went to the same segment
}

// An Env whose Nth File::append tears: a byte-count prefix reaches the
// real file, then a transient error is reported — the shape of a batched
// write dying partway with whole frames already on disk.
class TearingEnv final : public io::EnvWrapper {
 public:
  TearingEnv(io::Env& target, int fail_on_append, std::size_t landed_bytes)
      : EnvWrapper(target),
        fail_on_append_(fail_on_append),
        landed_bytes_(landed_bytes) {}

  io::IoStatus new_append_file(const std::string& path, bool truncate,
                               std::unique_ptr<io::File>& out) override {
    std::unique_ptr<io::File> real;
    if (auto s = EnvWrapper::new_append_file(path, truncate, real); !s.ok()) {
      return s;
    }
    out = std::make_unique<TearingFile>(std::move(real), this);
    return io::IoStatus::success();
  }

 private:
  class TearingFile final : public io::File {
   public:
    TearingFile(std::unique_ptr<io::File> real, TearingEnv* env)
        : real_(std::move(real)), env_(env) {}
    io::IoStatus append(std::string_view data) override {
      if (++env_->appends_ == env_->fail_on_append_) {
        const auto landed = std::min(env_->landed_bytes_, data.size());
        (void)real_->append(data.substr(0, landed));
        (void)real_->flush();
        return io::IoStatus::transient_error("injected torn append");
      }
      return real_->append(data);
    }
    io::IoStatus flush() override { return real_->flush(); }
    io::IoStatus sync() override { return real_->sync(); }
    io::IoStatus close() override { return real_->close(); }
    void abandon() override { real_->abandon(); }

   private:
    std::unique_ptr<io::File> real_;
    TearingEnv* env_;
  };

  int appends_ = 0;
  const int fail_on_append_;
  const std::size_t landed_bytes_;
};

TEST_F(StoreTest, TornBatchPrefixIsNotReplayedWhenTheBatchIsResent) {
  // Append #1 is the segment header; #2 is the registration; #3 is the
  // batch, torn after exactly two complete frames have landed.
  TearingEnv env(io::Env::posix(), /*fail_on_append=*/3,
                 /*landed_bytes=*/2 * kSampleFrameBytes);
  StoreOptions opt;
  opt.env = &env;
  std::vector<smart::Sample> batch;
  for (std::int64_t h = 0; h < 6; ++h) batch.push_back(make_sample(h));
  {
    TelemetryStore store(dir(), opt);
    const auto id = store.register_drive("D");
    EXPECT_THROW(store.append_batch(id, batch.data(), batch.size()),
                 DataError);
    EXPECT_EQ(store.drive(id).n_samples, 0u);  // none of the batch indexed
    // The producer's contract after a journal failure: re-send the whole
    // batch. The two frames that landed before the tear must not turn
    // into duplicates, in this store or any recovered one.
    store.append_batch(id, batch.data(), batch.size());
    EXPECT_EQ(store.drive(id).n_samples, 6u);
    store.flush();
  }
  TelemetryStore reopened(dir());
  EXPECT_EQ(reopened.drive(0).n_samples, 6u);
  const auto got = reopened.read_drive(0);
  ASSERT_EQ(got.size(), 6u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].hour, static_cast<std::int64_t>(i));
  }
}

TEST_F(StoreTest, FlippedPayloadBitSkipsRecordAndStopsTheSegment) {
  {
    TelemetryStore store(dir());
    const auto id = store.register_drive("D");
    for (std::int64_t h = 0; h < 10; ++h) store.append(id, make_sample(h));
    store.flush();
  }
  const auto segs = segment_files();
  ASSERT_EQ(segs.size(), 1u);
  auto bytes = read_bytes(segs[0]);
  // Flip one bit inside the payload of a mid-file record: CRC must catch it,
  // the record is dropped, and scanning of this segment stops there (we
  // cannot trust framing after a corrupt region).
  const std::size_t flip = bytes.size() / 2;
  bytes[flip] = static_cast<char>(bytes[flip] ^ 0x10);
  write_bytes(segs[0], bytes);

  TelemetryStore store(dir());
  EXPECT_EQ(store.recovery().records_dropped, 1u);
  EXPECT_FALSE(store.recovery().tail_truncated);
  EXPECT_GT(store.recovery().records_recovered, 0u);
  EXPECT_LT(store.drive(0).n_samples, 10u);  // prefix only
  // The file itself is preserved (only the tail-torn case truncates).
  EXPECT_EQ(read_bytes(segment_files()[0]).size(), bytes.size());
  // New appends go to a fresh segment, never after a corrupt region.
  store.append(0, make_sample(99));
  store.flush();
  EXPECT_EQ(store.segment_count(), 2u);
  // The salvage plus the new sample survive another reopen.
  const auto n_after = store.drive(0).n_samples;
  TelemetryStore reopened(dir());
  EXPECT_EQ(reopened.drive(0).n_samples, n_after);
  EXPECT_EQ(reopened.drive(0).last_hour, 99);
}

TEST_F(StoreTest, CorruptionInOneSegmentLeavesLaterSegmentsReadable) {
  StoreOptions opt;
  opt.segment_bytes = 512;
  {
    TelemetryStore store(dir(), opt);
    const auto id = store.register_drive("D");
    for (std::int64_t h = 0; h < 60; ++h) store.append(id, make_sample(h));
    store.flush();
    ASSERT_GT(store.segment_count(), 2u);
  }
  const auto segs = segment_files();
  // Corrupt a record in the middle of the SECOND segment.
  auto bytes = read_bytes(segs[1]);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  write_bytes(segs[1], bytes);

  TelemetryStore store(dir(), opt);
  EXPECT_EQ(store.recovery().records_dropped, 1u);
  // Samples from segment 1, the prefix of segment 2, and ALL later segments
  // are present: the failure is contained to one segment's suffix.
  EXPECT_LT(store.drive(0).n_samples, 60u);
  EXPECT_EQ(store.drive(0).last_hour, 59);
  std::vector<std::int64_t> hours;
  store.scan([&](std::uint32_t, const smart::Sample& s) {
    hours.push_back(s.hour);
  });
  EXPECT_FALSE(hours.empty());
  EXPECT_TRUE(std::is_sorted(hours.begin(), hours.end()));
}

TEST_F(StoreTest, EmptySegmentFileIsDeletedOnOpen) {
  {
    TelemetryStore store(dir());
    const auto id = store.register_drive("D");
    store.append(id, make_sample(0));
    store.flush();
  }
  // A crash after fopen but before the header write leaves a 0-byte file.
  write_bytes(dir_ / "seg-00000099.log", "");
  TelemetryStore store(dir());
  EXPECT_EQ(store.drive(0).n_samples, 1u);
  EXPECT_FALSE(fs::exists(dir_ / "seg-00000099.log"));
}

TEST_F(StoreTest, UnreadableHeaderSkipsSegmentButKeepsTheRest) {
  StoreOptions opt;
  opt.segment_bytes = 512;
  {
    TelemetryStore store(dir(), opt);
    const auto id = store.register_drive("D");
    for (std::int64_t h = 0; h < 60; ++h) store.append(id, make_sample(h));
    store.flush();
    ASSERT_GT(store.segment_count(), 2u);
  }
  const auto segs = segment_files();
  auto bytes = read_bytes(segs[1]);
  bytes[0] = 'X';  // destroy the magic
  write_bytes(segs[1], bytes);

  TelemetryStore store(dir(), opt);
  EXPECT_EQ(store.recovery().segments_skipped, 1u);
  EXPECT_GT(store.recovery().records_recovered, 0u);
  EXPECT_EQ(store.drive(0).last_hour, 59);  // later segments still loaded
}

TEST_F(StoreTest, LeftoverTmpFilesAreRemoved) {
  {
    TelemetryStore store(dir());
    const auto id = store.register_drive("D");
    store.append(id, make_sample(0));
    store.flush();
  }
  write_bytes(dir_ / "seg-00000042.log.tmp", "half-written compaction");
  TelemetryStore store(dir());
  EXPECT_FALSE(fs::exists(dir_ / "seg-00000042.log.tmp"));
  EXPECT_EQ(store.drive(0).n_samples, 1u);
}

// --- Retention -------------------------------------------------------------

TEST_F(StoreTest, CompactionDropsOldSamplesAndSurvivesReopen) {
  StoreOptions opt;
  opt.segment_bytes = 512;
  {
    TelemetryStore store(dir(), opt);
    const auto a = store.register_drive("A");
    const auto b = store.register_drive("B");
    for (std::int64_t h = 0; h < 50; ++h) {
      store.append(a, make_sample(h, 1.0f));
      store.append(b, make_sample(h, 2.0f));
    }
    store.flush();
    const auto before_segments = store.segment_count();
    ASSERT_GT(before_segments, 2u);

    const auto r = store.compact(30);
    EXPECT_EQ(r.kept, 40u);     // hours 30..49 for both drives
    EXPECT_EQ(r.dropped, 60u);  // hours 0..29 for both drives
    EXPECT_EQ(store.segment_count(), 1u);
    EXPECT_EQ(store.sample_count(), 40u);
    EXPECT_EQ(store.drive(0).first_hour, 30);
    EXPECT_EQ(store.drive(1).serial, "B");  // ids stable across compaction

    // The store stays appendable after compaction.
    store.append(a, make_sample(50, 1.0f));
    store.flush();
  }
  TelemetryStore store(dir(), opt);
  EXPECT_EQ(store.drive_count(), 2u);
  EXPECT_EQ(store.sample_count(), 41u);
  EXPECT_EQ(store.drive(0).first_hour, 30);
  EXPECT_EQ(store.drive(0).last_hour, 50);
  const auto readback = store.read_drive(1);
  ASSERT_EQ(readback.size(), 20u);
  EXPECT_EQ(readback.front().hour, 30);
  EXPECT_EQ(readback.front().attrs[5], make_sample(30, 2.0f).attrs[5]);
}

TEST_F(StoreTest, CompactedSegmentSupersedesLeftoverOldSegments) {
  StoreOptions opt;
  opt.segment_bytes = 512;
  {
    TelemetryStore store(dir(), opt);
    const auto id = store.register_drive("D");
    for (std::int64_t h = 0; h < 50; ++h) store.append(id, make_sample(h));
    store.flush();
    store.compact(20);
  }
  // Simulate a crash between compaction-rename and old-segment unlink: put a
  // stale low-sequence segment back. Its sequence is below the compacted
  // segment's, so recovery must ignore and remove it.
  {
    TelemetryStore scratch(dir_.string() + "_stale");
    const auto id = scratch.register_drive("STALE");
    scratch.append(id, make_sample(999));
    scratch.flush();
  }
  fs::copy_file(fs::path(dir_.string() + "_stale") / "seg-00000001.log",
                dir_ / "seg-00000001.log");
  fs::remove_all(dir_.string() + "_stale");

  TelemetryStore store(dir(), opt);
  EXPECT_EQ(store.drive_count(), 1u);
  EXPECT_EQ(store.drive(0).serial, "D");       // not STALE
  EXPECT_EQ(store.sample_count(), 30u);        // hours 20..49
  EXPECT_FALSE(fs::exists(dir_ / "seg-00000001.log"));  // stale file removed
}

TEST_F(StoreTest, SnapshotToProducesIndependentStore) {
  const auto snap_dir = dir_.string() + "_snap";
  fs::remove_all(snap_dir);
  {
    TelemetryStore store(dir());
    const auto a = store.register_drive("A");
    for (std::int64_t h = 0; h < 20; ++h) store.append(a, make_sample(h));
    store.flush();
    const auto r = store.snapshot_to(snap_dir, 10);
    EXPECT_EQ(r.kept, 10u);
    EXPECT_EQ(r.dropped, 10u);
    EXPECT_EQ(store.sample_count(), 20u);  // source untouched
    EXPECT_THROW(store.snapshot_to(snap_dir), ConfigError);  // non-empty dest
  }
  TelemetryStore snap(snap_dir);
  EXPECT_EQ(snap.drive_count(), 1u);
  EXPECT_EQ(snap.sample_count(), 10u);
  EXPECT_EQ(snap.drive(0).first_hour, 10);
  fs::remove_all(snap_dir);
}

}  // namespace
}  // namespace hdd::store
