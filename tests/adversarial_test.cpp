// Tests for src/eval/adversarial: bounded perturbation attacks against
// the voting detector, domain clamping, the observed-span fallback for
// raw counters, and the lint findings the measurements turn into.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "eval/adversarial.h"
#include "json_lite.h"

namespace hdd::eval {
namespace {

// One drive whose single tracked attribute holds `value` for `n` hours.
smart::DriveRecord make_drive(std::string serial, smart::Attr attr,
                              float value, bool failed, int n = 8) {
  smart::DriveRecord d;
  d.serial = std::move(serial);
  d.failed = failed;
  d.fail_hour = failed ? n - 1 : -1;
  for (int i = 0; i < n; ++i) {
    smart::Sample s;
    s.hour = i;
    s.set(attr, value);
    d.samples.push_back(s);
  }
  return d;
}

struct Fixture {
  data::DriveDataset dataset;
  data::DatasetSplit split;
  smart::FeatureSet features;

  Fixture(smart::Attr attr, float good_value, float failed_value,
          int n_good = 3, int n_failed = 3)
      : features{"one", {{attr, 0}}} {
    for (int i = 0; i < n_good; ++i) {
      split.good_drives.push_back(dataset.drives.size());
      split.good_test_begin.push_back(0);
      dataset.drives.push_back(
          make_drive("G" + std::to_string(i), attr, good_value, false));
    }
    for (int i = 0; i < n_failed; ++i) {
      split.test_failed.push_back(dataset.drives.size());
      dataset.drives.push_back(
          make_drive("F" + std::to_string(i), attr, failed_value, true));
    }
  }
};

// Margin = (x - 100) / span of the normalized domain: healthy above 100,
// failing below. A 2% budget (5.04 units) can cross the boundary only
// from values within ~5 units of it.
double boundary_model(std::span<const float> x) {
  return (static_cast<double>(x[0]) - 100.0) / 252.0;
}

TEST(Adversarial, EvadeAttackFlipsOnlyMarginalFailedDrives) {
  // Failed drives sit 3 units below the boundary, good drives 50 above:
  // a 2% budget rescues every failed drive and reaches no good drive.
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/150.0f,
             /*failed=*/97.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.02};
  cfg.vote.voters = 3;
  const auto r =
      adversarial_evaluate(fx.dataset, fx.split, fx.features,
                           boundary_model, cfg);
  EXPECT_DOUBLE_EQ(r.baseline.fdr(), 1.0);
  EXPECT_DOUBLE_EQ(r.baseline.far(), 0.0);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].evade.fdr(), 0.0);
  EXPECT_DOUBLE_EQ(r.points[0].alarm.far(), 0.0);
  EXPECT_GT(r.points[0].evade_samples_moved, 0u);
  // The alarm attack ran but had nowhere to go within budget.
  EXPECT_DOUBLE_EQ(r.points[0].evade.far(), 0.0)
      << "evade attack must leave good drives at their baseline scores";
}

TEST(Adversarial, AlarmAttackRaisesFarOnMarginalGoodDrives) {
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/103.0f,
             /*failed=*/50.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.02};
  cfg.vote.voters = 3;
  const auto r =
      adversarial_evaluate(fx.dataset, fx.split, fx.features,
                           boundary_model, cfg);
  EXPECT_DOUBLE_EQ(r.baseline.far(), 0.0);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].alarm.far(), 1.0);
  EXPECT_DOUBLE_EQ(r.points[0].alarm.fdr(), r.baseline.fdr())
      << "alarm attack must leave failed drives at their baseline scores";
}

TEST(Adversarial, PerturbationsStayClampedInsideTheDeclaredDomain) {
  // Healthy margin shrinks as x falls, but the normalized domain floors
  // at 1, where the margin is still +0.5: even an unlimited (epsilon=1)
  // alarm attack must fail. If clamping broke, x could reach 2-252 and
  // the margin would go far negative.
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/2.0f, /*failed=*/2.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {1.0};
  cfg.vote.voters = 3;
  const auto r = adversarial_evaluate(
      fx.dataset, fx.split, fx.features,
      [](std::span<const float> x) {
        return static_cast<double>(x[0]) - 0.5;
      },
      cfg);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].alarm.far(), 0.0);
}

TEST(Adversarial, RawCountersFallBackToTheObservedSpan) {
  // kReallocatedSectorsRaw's declared domain is [0, inf): the budget must
  // come from the observed span instead. Values observed across the test
  // drives span [4, 54] = 50, so epsilon=0.1 moves up to 5 units — enough
  // to push the good drives (margin +1 at x=4) past x=5 into alarm. A
  // broken fallback would yield a zero (or non-finite) step and no moves.
  Fixture fx(smart::Attr::kReallocatedSectorsRaw, /*good=*/4.0f,
             /*failed=*/54.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.1};
  cfg.vote.voters = 3;
  const auto r = adversarial_evaluate(
      fx.dataset, fx.split, fx.features,
      [](std::span<const float> x) {
        return 5.0 - static_cast<double>(x[0]);
      },
      cfg);
  EXPECT_DOUBLE_EQ(r.baseline.far(), 0.0);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].alarm.far(), 1.0);
  EXPECT_GT(r.points[0].alarm_samples_moved, 0u);
}

TEST(Adversarial, FindingsFlagTheSmallestCrossingEpsilon) {
  // Failed drives 3 units below the boundary: a 1% budget (2.52) cannot
  // rescue them, a 2% budget (5.04) rescues all of them. The finding must
  // name epsilon=0.02, not 0.05.
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/150.0f,
             /*failed=*/97.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.01, 0.02, 0.05};
  cfg.vote.voters = 3;
  const auto r =
      adversarial_evaluate(fx.dataset, fx.split, fx.features,
                           boundary_model, cfg);
  const auto report = robustness_findings(r, cfg, "m.model");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const auto& d = report.diagnostics[0];
  EXPECT_EQ(d.severity, analysis::Severity::kWarning);
  EXPECT_EQ(d.code, "fragile-detection");
  EXPECT_EQ(d.model_path, "m.model");
  EXPECT_EQ(d.location, "epsilon=0.020");
}

TEST(Adversarial, NoFindingsWhenDegradationIsWithinTolerance) {
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/150.0f,
             /*failed=*/97.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.02};
  cfg.vote.voters = 3;
  cfg.fdr_drop_warn = 1.5;  // unreachable: FDR drops are at most 1.0
  cfg.far_rise_warn = 1.5;
  const auto r =
      adversarial_evaluate(fx.dataset, fx.split, fx.features,
                           boundary_model, cfg);
  const auto report = robustness_findings(r, cfg, "m.model");
  EXPECT_FALSE(report.has_findings());
}

TEST(Adversarial, FragileAlarmFindingUsesItsOwnCode) {
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/103.0f,
             /*failed=*/50.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.02};
  cfg.vote.voters = 3;
  const auto r =
      adversarial_evaluate(fx.dataset, fx.split, fx.features,
                           boundary_model, cfg);
  const auto report = robustness_findings(r, cfg, "m.model");
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, "fragile-alarm");
}

TEST(Adversarial, JsonOutputIsWellFormed) {
  Fixture fx(smart::Attr::kSeekErrorRate, /*good=*/150.0f,
             /*failed=*/97.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.01, 0.02};
  cfg.vote.voters = 3;
  const auto r =
      adversarial_evaluate(fx.dataset, fx.split, fx.features,
                           boundary_model, cfg);
  std::ostringstream os;
  print_json(r, os);
  const std::string json = os.str();
  EXPECT_TRUE(testjson::Checker(json).valid()) << json;
  EXPECT_NE(json.find("\"epsilon\":0.01"), std::string::npos);
  EXPECT_NE(json.find("\"evade_fdr\""), std::string::npos);
  EXPECT_NE(json.find("\"alarm_far\""), std::string::npos);
}

TEST(Adversarial, RejectsOutOfRangeEpsilon) {
  Fixture fx(smart::Attr::kSeekErrorRate, 150.0f, 97.0f);
  AdversarialConfig cfg;
  cfg.epsilons = {0.0};
  EXPECT_THROW(adversarial_evaluate(fx.dataset, fx.split, fx.features,
                                    boundary_model, cfg),
               ConfigError);
  cfg.epsilons = {1.5};
  EXPECT_THROW(adversarial_evaluate(fx.dataset, fx.split, fx.features,
                                    boundary_model, cfg),
               ConfigError);
}

}  // namespace
}  // namespace hdd::eval
