// Tests for the deployment utilities: operating-point tuning
// (eval/tuning.h) and drive-stratified cross-validation
// (data/cross_validation.h).
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "core/predictor.h"
#include "data/cross_validation.h"
#include "eval/tuning.h"
#include "sim/generator.h"

namespace hdd {
namespace {

// Scores with controllable burst behaviour: good drives occasionally emit
// failure-looking bursts of `burst_len` samples; failed drives are solidly
// negative for their last half.
std::vector<eval::DriveScores> synthetic_scores(std::uint64_t seed,
                                                int n_good, int n_failed,
                                                int burst_len) {
  Rng rng(seed);
  std::vector<eval::DriveScores> out;
  for (int g = 0; g < n_good; ++g) {
    eval::DriveScores s;
    for (int i = 0; i < 60; ++i) {
      s.outputs.push_back(1.0f);
      s.hours.push_back(i);
    }
    if (rng.chance(0.3)) {
      const auto start = rng.uniform_int(40);
      for (int i = 0; i < burst_len; ++i) {
        s.outputs[start + static_cast<std::size_t>(i)] = -1.0f;
      }
    }
    out.push_back(std::move(s));
  }
  for (int f = 0; f < n_failed; ++f) {
    eval::DriveScores s;
    s.failed = true;
    s.fail_hour = 59;
    for (int i = 0; i < 60; ++i) {
      s.outputs.push_back(i < 30 ? 1.0f : -1.0f);
      s.hours.push_back(i);
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(TuneVoters, PicksHighestFdrWithinBudget) {
  // Bursts of 5 defeat N<=9 but not N>=11; failed drives survive any N
  // (30 consecutive negatives).
  const auto scores = synthetic_scores(1, 400, 40, 5);
  const int candidates[] = {1, 3, 5, 7, 9, 11, 15};
  const auto best = eval::tune_voters(scores, candidates, 0.001);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(best->vote.voters, 11);
  EXPECT_DOUBLE_EQ(best->result.fdr(), 1.0);
  EXPECT_LE(best->result.far(), 0.001);
}

TEST(TuneVoters, PrefersFewerVotersOnTies) {
  const auto scores = synthetic_scores(2, 200, 20, 3);
  const int candidates[] = {15, 11, 7};  // unsorted on purpose
  const auto best = eval::tune_voters(scores, candidates, 0.001);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->vote.voters, 7);  // bursts of 3 already die at N=7
}

TEST(TuneVoters, ReturnsNulloptWhenBudgetUnreachable) {
  // Persistent bad good drives: no N helps.
  std::vector<eval::DriveScores> scores;
  eval::DriveScores bad;
  for (int i = 0; i < 50; ++i) {
    bad.outputs.push_back(-1.0f);
    bad.hours.push_back(i);
  }
  scores.push_back(bad);
  const int candidates[] = {1, 11, 27};
  EXPECT_FALSE(eval::tune_voters(scores, candidates, 0.0).has_value());
  EXPECT_THROW(eval::tune_voters(scores, {}, 0.1), ConfigError);
}

TEST(TuneThreshold, LoosestThresholdInsideBudgetWins) {
  Rng rng(3);
  std::vector<eval::DriveScores> scores;
  for (int d = 0; d < 500; ++d) {
    const bool failed = d % 10 == 0;
    eval::DriveScores s;
    s.failed = failed;
    s.fail_hour = 49;
    for (int i = 0; i < 50; ++i) {
      const double base = failed ? -0.4 : 0.6;
      s.outputs.push_back(
          static_cast<float>(base + rng.normal(0.0, 0.25)));
      s.hours.push_back(i);
    }
    scores.push_back(std::move(s));
  }
  const double thresholds[] = {-0.8, -0.6, -0.4, -0.2, 0.0, 0.2};
  const auto strict = eval::tune_threshold(scores, 11, thresholds, 0.0);
  const auto loose = eval::tune_threshold(scores, 11, thresholds, 0.05);
  ASSERT_TRUE(strict.has_value());
  ASSERT_TRUE(loose.has_value());
  EXPECT_LE(strict->vote.threshold, loose->vote.threshold);
  EXPECT_LE(strict->result.fdr(), loose->result.fdr());
  EXPECT_LE(strict->result.far(), 0.0);
  EXPECT_LE(loose->result.far(), 0.05);
}

TEST(TuneThreshold, ValidatesInputs) {
  const auto scores = synthetic_scores(4, 10, 2, 1);
  const double thresholds[] = {0.0};
  EXPECT_THROW(eval::tune_threshold(scores, 0, thresholds, 0.1),
               ConfigError);
  EXPECT_THROW(eval::tune_threshold(scores, 5, {}, 0.1), ConfigError);
}

// --- Cross-validation --------------------------------------------------------

class CvFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = sim::paper_fleet_config(0.02, 61);
    config.families.resize(1);
    fleet_ = new data::DriveDataset(sim::generate_fleet_window(config, 0, 1));
  }
  static void TearDownTestSuite() { delete fleet_; }
  static data::DriveDataset* fleet_;
};

data::DriveDataset* CvFixture::fleet_ = nullptr;

TEST_F(CvFixture, FoldsPartitionBothClasses) {
  data::CrossValidationConfig cfg;
  cfg.folds = 4;
  const auto folds = data::make_folds(*fleet_, cfg);
  ASSERT_EQ(folds.size(), 4u);

  // Every failed drive is tested exactly once across folds.
  std::set<std::size_t> tested_failed;
  for (const auto& fold : folds) {
    for (std::size_t di : fold.test_failed) {
      EXPECT_TRUE(tested_failed.insert(di).second);
    }
    // Disjoint train/test failed sets within a fold.
    for (std::size_t di : fold.train_failed) {
      EXPECT_EQ(std::count(fold.test_failed.begin(), fold.test_failed.end(),
                           di),
                0);
    }
  }
  EXPECT_EQ(tested_failed.size(), fleet_->count_failed());

  // Every good drive is tested exactly once (test_begin == 0).
  std::set<std::size_t> tested_good;
  for (const auto& fold : folds) {
    for (std::size_t k = 0; k < fold.good_drives.size(); ++k) {
      if (fold.good_test_begin[k] == 0) {
        EXPECT_TRUE(tested_good.insert(fold.good_drives[k]).second);
      } else {
        // Pure training drive: never scored.
        EXPECT_EQ(fold.good_test_begin[k],
                  fleet_->drives[fold.good_drives[k]].samples.size());
      }
    }
  }
  EXPECT_EQ(tested_good.size(), fleet_->count_good());
}

TEST_F(CvFixture, DeterministicGivenSeed) {
  data::CrossValidationConfig cfg;
  const auto a = data::make_folds(*fleet_, cfg);
  const auto b = data::make_folds(*fleet_, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_EQ(a[f].test_failed, b[f].test_failed);
    EXPECT_EQ(a[f].good_test_begin, b[f].good_test_begin);
  }
}

TEST_F(CvFixture, CrossValidateRunsTheCallbackPerFold) {
  data::CrossValidationConfig cfg;
  cfg.folds = 3;
  int calls = 0;
  const auto values = data::cross_validate(
      *fleet_, cfg, [&calls](const data::DatasetSplit&) {
        return static_cast<double>(++calls);
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(values, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_THROW(data::cross_validate(*fleet_, cfg, nullptr), ConfigError);
}

TEST_F(CvFixture, CtCrossValidatedFdrIsReasonable) {
  data::CrossValidationConfig cfg;
  cfg.folds = 3;
  const auto fdrs = data::cross_validate(
      *fleet_, cfg, [this](const data::DatasetSplit& split) {
        core::FailurePredictor p(core::paper_ct_config());
        p.fit(*fleet_, split);
        return p.evaluate(*fleet_, split).fdr();
      });
  ASSERT_EQ(fdrs.size(), 3u);
  double mean = 0.0;
  for (double v : fdrs) mean += v;
  mean /= 3.0;
  EXPECT_GT(mean, 0.6);
}

TEST(CvErrors, RejectsDegenerateInputs) {
  data::CrossValidationConfig cfg;
  cfg.folds = 1;
  data::DriveDataset empty;
  EXPECT_THROW(data::make_folds(empty, cfg), ConfigError);
  cfg.folds = 5;
  EXPECT_THROW(data::make_folds(empty, cfg), ConfigError);
}

}  // namespace
}  // namespace hdd
