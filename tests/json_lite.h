// Minimal strict JSON validator for tests. Not a parser library: it only
// answers "is this byte string one well-formed JSON value?", which is what
// the trace-endpoint and flight-recorder tests assert about their output.
// Kept deliberately tiny and recursive-descent so a JSON bug in the
// tracer cannot be masked by leniency here (trailing garbage, unquoted
// keys, bare NaN and unescaped control characters all fail).
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace hdd::testjson {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool eat(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(
                             text_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    return true;
  }

  bool number() {
    (void)eat('-');
    if (!digits()) return false;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool members(char close, bool keyed) {
    skip_ws();
    if (eat(close)) return true;
    for (;;) {
      skip_ws();
      if (keyed) {
        if (!string()) return false;
        skip_ws();
        if (!eat(':')) return false;
        skip_ws();
      }
      if (!value()) return false;
      skip_ws();
      if (eat(close)) return true;
      if (!eat(',')) return false;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': ++pos_; return members('}', /*keyed=*/true);
      case '[': ++pos_; return members(']', /*keyed=*/false);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline bool json_valid(std::string_view text) {
  return Checker(text).valid();
}

}  // namespace hdd::testjson
