// Tests for the runtime lock-rank checker (common/lock_order.h) and the
// annotated hdd::Mutex wrappers it rides on (common/mutex.h).
//
// The violation tests are death tests: a rank inversion aborts the process
// (with both acquisition stacks on stderr), so each one runs in a forked
// child and asserts on the diagnostic. The clean-path tests run the real
// serve/retrain-shaped nesting orders with the checker enabled and assert
// silence — that pins the rank table in lock_order.h to the lock nesting
// the system actually performs.
#include "common/lock_order.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace hdd {
namespace {

using lock_order::Rank;

// Flips the checker on for a scope and restores the previous state, so the
// suite behaves the same in plain builds (checker default-off) and
// sanitizer builds (default-on via HDD_LOCK_ORDER_CHECKS).
class CheckerOn {
 public:
  CheckerOn() : was_(lock_order::enabled()) { lock_order::set_enabled(true); }
  ~CheckerOn() { lock_order::set_enabled(was_); }

 private:
  bool was_;
};

TEST(LockOrderDeathTest, InversionAbortsWithBothStacks) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low{Rank::kServeStop, "low-rank"};
  Mutex high{Rank::kLog, "high-rank"};
  EXPECT_DEATH(
      {
        CheckerOn on;
        MutexLock a(&high);  // rank 80 first...
        MutexLock b(&low);   // ...then rank 10: inversion
      },
      "lock-rank violation");
}

TEST(LockOrderDeathTest, SameRankNestingAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a{Rank::kShardQueue, "shard-a"};
  Mutex b{Rank::kShardQueue, "shard-b"};
  EXPECT_DEATH(
      {
        CheckerOn on;
        MutexLock la(&a);
        MutexLock lb(&b);  // equal ranks never nest
      },
      "lock-rank violation");
}

TEST(LockOrderDeathTest, ReentrantAcquisitionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{Rank::kObsRegistry, "reentrant"};
  EXPECT_DEATH(
      {
        CheckerOn on;
        mu.lock();
        mu.lock();  // std::mutex would deadlock here; the checker aborts
      },
      "lock-rank violation");
}

TEST(LockOrderTest, AscendingAcquisitionIsSilent) {
  CheckerOn on;
  // The full hierarchy, outermost to leaf — the exact order stop()/worker/
  // logging paths nest in production.
  Mutex stop{Rank::kServeStop, "t-stop"};
  Mutex conns{Rank::kServeConns, "t-conns"};
  Mutex queue{Rank::kShardQueue, "t-queue"};
  Mutex log{Rank::kLog, "t-log"};
  {
    MutexLock l1(&stop);
    MutexLock l2(&conns);
    MutexLock l3(&queue);
    MutexLock l4(&log);
    EXPECT_EQ(lock_order::held_count(), 4);
  }
  EXPECT_EQ(lock_order::held_count(), 0);
}

TEST(LockOrderTest, ReacquiringAfterReleaseIsSilent) {
  CheckerOn on;
  Mutex a{Rank::kServeConns, "t-a"};
  Mutex b{Rank::kShardQueue, "t-b"};
  // Dropping back down then climbing again is fine; only *held* ranks
  // constrain the next acquisition.
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  { MutexLock la(&a); }
  { MutexLock lb(&b); }
  EXPECT_EQ(lock_order::held_count(), 0);
}

TEST(LockOrderTest, TryLockParticipates) {
  CheckerOn on;
  Mutex mu{Rank::kFaultLog, "t-try"};
  ASSERT_TRUE(mu.try_lock());
  EXPECT_EQ(lock_order::held_count(), 1);
  mu.unlock();
  EXPECT_EQ(lock_order::held_count(), 0);
}

TEST(LockOrderTest, DisabledCheckerIsInert) {
  const bool was = lock_order::enabled();
  lock_order::set_enabled(false);
  Mutex low{Rank::kServeStop, "off-low"};
  Mutex high{Rank::kLog, "off-high"};
  {
    // The same inversion that aborts when enabled: silently tolerated.
    MutexLock a(&high);
    MutexLock b(&low);
    EXPECT_EQ(lock_order::held_count(), 0);  // no bookkeeping when off
  }
  lock_order::set_enabled(was);
}

TEST(LockOrderTest, PerThreadStacksAreIndependent) {
  CheckerOn on;
  // Two threads holding the same ranks concurrently is not nesting: the
  // held-lock stack is thread-local.
  Mutex a{Rank::kServeConns, "mt-a"};
  Mutex b{Rank::kShardQueue, "mt-b"};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock la(&a);
        MutexLock lb(&b);
      }
      EXPECT_EQ(lock_order::held_count(), 0);
    });
  }
  for (auto& t : threads) t.join();
}

TEST(LockOrderTest, CondVarWaitKeepsBookkeepingExact) {
  CheckerOn on;
  Mutex mu{Rank::kShardQueue, "cv-mu"};
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.wait(mu);
    // Reacquired through Mutex::lock(): the checker still sees it held.
    EXPECT_EQ(lock_order::held_count(), 1);
  });
  {
    MutexLock lock(&mu);
    ready = true;
    cv.notify_one();
  }
  waiter.join();
  EXPECT_EQ(lock_order::held_count(), 0);
}

TEST(LockOrderTest, ThreadPoolRunsCleanUnderChecker) {
  CheckerOn on;
  // The pool's queue mutex + the log mutex nesting inside submitted work is
  // the common production shape; the checker must stay silent.
  ThreadPool pool(4);
  std::vector<std::future<void>> futs;
  Mutex log{Rank::kLog, "pool-log"};
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&] { MutexLock l(&log); }));
  }
  for (auto& f : futs) f.get();
}

TEST(LockOrderTest, RankNamesCoverTheTable) {
  EXPECT_STREQ(lock_order::rank_name(Rank::kServeStop), "serve-stop");
  EXPECT_STREQ(lock_order::rank_name(Rank::kRcuSpin), "rcu-spin");
  EXPECT_STREQ(lock_order::rank_name(Rank::kLog), "log");
}

}  // namespace
}  // namespace hdd
