// Serve-level continuous-update tests (ctest label: pipeline).
//
// Exercises the RetrainLoop promotion state machine against a live Server:
// a forced tick training from the daemon's own journals and hot-swapping a
// promoted generation fleet-wide, guardrail rejections leaving the
// incumbent untouched, the shadow-then-promote deferral, and
// ShardEngine::resume()'s generation reconciliation after a promotion that
// only reached a subset of shards (the crash-mid-promotion heal).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "core/predictor.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "serve/client.h"
#include "serve/retrain_loop.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "store/telemetry_store.h"

namespace hdd::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::int64_t kWeek = 168;
constexpr std::uint32_t kGoods = 12;
constexpr std::uint32_t kFaileds = 6;

float hval(std::uint32_t d, std::int64_t h, std::uint32_t salt) {
  std::uint32_t x = d * 2654435761u +
                    static_cast<std::uint32_t>(h) * 40503u + salt * 97u;
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 16;
  return static_cast<float>(x & 0xFFFF) / 32768.0f - 1.0f;  // [-1, 1)
}

smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

// Separable telemetry: goods at +0.8, failures at -0.8 (same construction
// as pipeline_test, so train_and_gate promotes under default rails).
smart::Sample sample_at(std::uint32_t d, std::int64_t h, float bias) {
  smart::Sample s;
  s.hour = h;
  s.set(smart::Attr::kRawReadErrorRate, bias + 0.15f * hval(d, h, 1));
  s.set(smart::Attr::kTemperatureCelsius, hval(d, h, 2));
  return s;
}

std::string good_serial(std::uint32_t d) {
  return "good-" + std::to_string(d);
}

std::vector<smart::DriveRecord> failure_pool() {
  std::vector<smart::DriveRecord> out;
  for (std::uint32_t d = 0; d < kFaileds; ++d) {
    smart::DriveRecord rec;
    rec.serial = "failed-" + std::to_string(d);
    rec.failed = true;
    rec.fail_hour = kWeek;  // training anchors failed rows at fail_hour
    for (std::int64_t h = 0; h < kWeek; ++h) {
      rec.samples.push_back(sample_at(100 + d, h, -0.8f));
    }
    out.push_back(std::move(rec));
  }
  return out;
}

pipeline::PipelineConfig pipeline_config(obs::Registry* reg) {
  pipeline::PipelineConfig pc;
  pc.trainer = core::paper_ct_config();
  pc.trainer.training.features = two_features();
  pc.trainer.training.good_samples_per_drive = 8;
  pc.trainer.vote.voters = 5;
  pc.metrics = reg;
  return pc;
}

class RetrainLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kError);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_dir_ = fs::temp_directory_path() /
                (std::string("hdd_retrain_") + info->name());
    fs::remove_all(base_dir_);
    fs::create_directories(base_dir_);

    std::vector<smart::DriveRecord> goods;
    for (std::uint32_t d = 0; d < kGoods; ++d) {
      smart::DriveRecord rec;
      rec.serial = good_serial(d);
      for (std::int64_t h = 0; h < kWeek; ++h) {
        rec.samples.push_back(sample_at(d, h, 0.8f));
      }
      goods.push_back(std::move(rec));
    }
    const auto gate = pipeline::train_and_gate(std::move(goods),
                                               failure_pool(), 1,
                                               pipeline_config(nullptr));
    ASSERT_EQ(gate.outcome, pipeline::Outcome::kPromoted) << gate.reason;
    seed_ = gate.candidate;
  }
  void TearDown() override { fs::remove_all(base_dir_); }

  ShardEngineConfig engine_config(std::size_t shards, obs::Registry* reg) {
    ShardEngineConfig ec;
    ec.dir = (base_dir_ / "s").string();
    ec.shards = shards;
    ec.runtime.scorer = seed_.get();
    ec.runtime.features = two_features();
    ec.runtime.vote.voters = 5;
    ec.runtime.block_rows = 4;
    ec.runtime.metrics = reg;
    ec.runtime.store.metrics = reg;
    ec.runtime.hot_swappable = true;
    return ec;
  }

  // Streams good-drive telemetry into the daemon over the wire.
  static void ingest_goods(Client& client, std::int64_t from,
                           std::int64_t to) {
    for (std::uint32_t d = 0; d < kGoods; ++d) {
      IngestBatch b;
      for (std::int64_t h = from; h < to; ++h) {
        b.serials.push_back(good_serial(d));
        b.samples.push_back(sample_at(d, h, 0.8f));
      }
      const auto r = client.ingest(b);
      ASSERT_EQ(r.accepted, static_cast<std::uint64_t>(to - from));
    }
  }

  fs::path base_dir_;
  std::shared_ptr<const core::SampleScorer> seed_;
};

TEST_F(RetrainLoopTest, ForcedTickPromotesFleetWide) {
  obs::Registry reg;
  ShardEngine engine(engine_config(2, &reg));
  ServeOptions so;
  so.metrics = &reg;
  Server server(engine, so);
  server.start();

  RetrainLoopConfig lc;
  lc.pipeline = pipeline_config(&reg);
  lc.failed_pool = failure_pool();
  RetrainLoop loop(engine, server, std::move(lc));

  Client client;
  client.connect("127.0.0.1", server.port());
  ingest_goods(client, 0, kWeek);

  const auto r = loop.tick(/*force=*/true);
  ASSERT_EQ(r.outcome, pipeline::Outcome::kPromoted) << r.reason;
  EXPECT_EQ(r.generation, 1u);
  EXPECT_EQ(engine.max_generation(), 1u);
  // Every shard journaled the generation record durably.
  for (std::size_t k = 0; k < engine.shard_count(); ++k) {
    ASSERT_TRUE(engine.shard(k).store().latest_generation().has_value());
    EXPECT_EQ(engine.shard(k).store().latest_generation()->generation, 1u);
  }
  // The wire stats report the new generation and the promotion outcome.
  const auto st = client.stats();
  EXPECT_EQ(st.generation, 1u);
  EXPECT_EQ(st.last_outcome,
            static_cast<std::uint8_t>(pipeline::Outcome::kPromoted));
  EXPECT_EQ(reg.gauge("hdd_pipeline_generation", "").value(), 1.0);
  EXPECT_EQ(reg.counter("hdd_pipeline_promotions_total", "").value(), 1u);

  // Ingest keeps working against the promoted generation.
  ingest_goods(client, kWeek, kWeek + 4);
  server.stop();
}

TEST_F(RetrainLoopTest, GuardrailRejectionLeavesIncumbent) {
  obs::Registry reg;
  ShardEngine engine(engine_config(1, &reg));
  ServeOptions so;
  so.metrics = &reg;
  Server server(engine, so);
  server.start();

  RetrainLoopConfig lc;
  lc.pipeline = pipeline_config(&reg);
  lc.pipeline.guardrail.min_fdr = 1.01;  // unsatisfiable rail
  lc.failed_pool = failure_pool();
  RetrainLoop loop(engine, server, std::move(lc));

  Client client;
  client.connect("127.0.0.1", server.port());
  ingest_goods(client, 0, kWeek);

  const auto r = loop.tick(/*force=*/true);
  EXPECT_EQ(r.outcome, pipeline::Outcome::kRejectedGuardrail);
  EXPECT_EQ(engine.max_generation(), 0u);
  EXPECT_FALSE(engine.shard(0).store().latest_generation().has_value());
  EXPECT_EQ(reg.counter("hdd_pipeline_rejections_total", "",
                        {{"reason", "guardrail"}})
                .value(),
            1u);
  const auto st = client.stats();
  EXPECT_EQ(st.generation, 0u);
  EXPECT_EQ(st.last_outcome,
            static_cast<std::uint8_t>(pipeline::Outcome::kRejectedGuardrail));
  server.stop();
}

TEST_F(RetrainLoopTest, ShadowsBeforePromoting) {
  obs::Registry reg;
  ShardEngine engine(engine_config(2, &reg));
  ServeOptions so;
  so.metrics = &reg;
  Server server(engine, so);
  server.start();

  RetrainLoopConfig lc;
  lc.pipeline = pipeline_config(&reg);
  lc.pipeline.min_shadow_samples = 50;
  lc.failed_pool = failure_pool();
  RetrainLoop loop(engine, server, std::move(lc));

  Client client;
  client.connect("127.0.0.1", server.port());
  ingest_goods(client, 0, kWeek);

  // Gates pass, but promotion is deferred until the candidate has
  // shadow-scored enough live traffic.
  const auto first = loop.tick(/*force=*/true);
  EXPECT_EQ(first.outcome, pipeline::Outcome::kSkipped);
  EXPECT_TRUE(loop.shadowing());
  EXPECT_EQ(engine.max_generation(), 0u);

  // Not enough shadow samples yet: the loop keeps waiting.
  const auto waiting = loop.tick(/*force=*/false);
  EXPECT_EQ(waiting.outcome, pipeline::Outcome::kSkipped);
  EXPECT_TRUE(loop.shadowing());

  // 12 drives x 10 hours = 120 live rows >= 50: the next tick promotes.
  ingest_goods(client, kWeek, kWeek + 10);
  const auto st_shadow = client.stats();
  EXPECT_GE(st_shadow.shadow_samples, 50u);
  const auto second = loop.tick(/*force=*/false);
  EXPECT_EQ(second.outcome, pipeline::Outcome::kPromoted) << second.reason;
  EXPECT_FALSE(loop.shadowing());
  EXPECT_EQ(engine.max_generation(), 1u);
  EXPECT_EQ(reg.counter("hdd_pipeline_promotions_total", "").value(), 1u);
  server.stop();
}

TEST_F(RetrainLoopTest, ResumeReconcilesPartialPromotion) {
  obs::Registry reg;
  std::string model_text;
  {
    std::ostringstream os;
    seed_->save(os);
    model_text = os.str();
  }
  {
    // Ingest directly into a 2-shard engine (no server), then simulate a
    // kill -9 between the two shards' generation appends: only shard 0's
    // journal records generation 1.
    ShardEngine engine(engine_config(2, &reg));
    for (std::uint32_t d = 0; d < kGoods; ++d) {
      IngestBatch b;
      for (std::int64_t h = 0; h < 24; ++h) {
        b.serials.push_back(good_serial(d));
        b.samples.push_back(sample_at(d, h, 0.8f));
      }
      engine.ingest(engine.shard_of(good_serial(d)), b);
    }
    engine.shard(0).store().append_generation(1, model_text);
    engine.seal();
  }
  // A fresh engine resumes: reconciliation re-journals the newest
  // generation into the lagging shard and swaps it in everywhere.
  ShardEngine engine(engine_config(2, nullptr));
  engine.resume();
  EXPECT_EQ(engine.max_generation(), 1u);
  for (std::size_t k = 0; k < engine.shard_count(); ++k) {
    EXPECT_EQ(engine.shard(k).model_generation(), 1u) << "shard " << k;
    ASSERT_TRUE(engine.shard(k).store().latest_generation().has_value())
        << "shard " << k;
    EXPECT_EQ(engine.shard(k).store().latest_generation()->generation, 1u);
    EXPECT_EQ(engine.shard(k).store().latest_generation()->model_text,
              model_text);
  }
}

}  // namespace
}  // namespace hdd::serve
