// The kill-and-resume property of journaled streaming (ISSUE acceptance
// criterion): a FleetScorer resumed from its TelemetryStore after an
// interrupt at ANY interval raises byte-identical alarms (drive, hour) to
// the uninterrupted run — including when the interrupt tore the final
// append mid-record.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/fleet.h"
#include "core/scorer.h"
#include "obs/metrics.h"
#include "store/format.h"
#include "store/telemetry_store.h"

namespace hdd::core {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kDrives = 6;
constexpr std::int64_t kHours = 48;

// Deterministic pseudo-random telemetry: every attribute value is a pure
// function of (drive, hour), so any two runs observe identical samples.
float hval(std::uint32_t d, std::int64_t h, std::uint32_t salt) {
  std::uint32_t x = d * 2654435761u +
                    static_cast<std::uint32_t>(h) * 40503u + salt * 97u;
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 16;
  return static_cast<float>(x & 0xFFFF) / 32768.0f - 1.0f;  // [-1, 1)
}

smart::Sample sample_for(std::uint32_t d, std::int64_t h) {
  smart::Sample s;
  s.hour = h;
  // Per-drive bias so some drives alarm early, some late, some never.
  const float bias = 0.9f * (static_cast<float>(d % 3) - 1.0f);
  s.set(smart::Attr::kRawReadErrorRate, hval(d, h, 1) + bias);
  s.set(smart::Attr::kTemperatureCelsius, 10.0f * hval(d, h, 2));
  return s;
}

std::vector<smart::Sample> interval_at(std::int64_t h) {
  std::vector<smart::Sample> out(kDrives);
  for (std::uint32_t d = 0; d < kDrives; ++d) out[d] = sample_for(d, h);
  return out;
}

// Two features — one level, one 6-hour change rate — so the bounded history
// window actually matters to the score.
smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

class MixScorer final : public SampleScorer {
 public:
  double predict(std::span<const float> x) const override {
    return static_cast<double>(x[0]) + 0.03 * static_cast<double>(x[1]);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = predict(xs.subspan(2 * r, 2));
    }
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "mix"; }
};

FleetScorerConfig test_config() {
  FleetScorerConfig cfg;
  cfg.features = two_features();
  cfg.vote.voters = 5;
  cfg.block_rows = 4;  // exercise multi-block paths with 6 drives
  return cfg;
}

struct Outcome {
  bool alarmed = false;
  std::int64_t alarm_hour = -1;
  bool operator==(const Outcome&) const = default;
};

std::vector<Outcome> outcomes(const FleetScorer& f) {
  std::vector<Outcome> out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    out[i] = {f.state(i).alarmed(), f.state(i).alarm_hour()};
  }
  return out;
}

// The ground truth: one uninterrupted streaming run over all kHours.
std::vector<Outcome> baseline_run(const SampleScorer& scorer) {
  FleetScorer f(scorer, test_config());
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    f.add_drive("drive-" + std::to_string(d));
  }
  for (std::int64_t h = 0; h < kHours; ++h) {
    const auto batch = interval_at(h);
    f.observe_samples(batch, h);
  }
  return outcomes(f);
}

class DurableFleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_dir_ = fs::temp_directory_path() /
                (std::string("hdd_durable_fleet_") + info->name());
    fs::remove_all(base_dir_);
    fs::create_directories(base_dir_);
  }
  void TearDown() override { fs::remove_all(base_dir_); }

  std::string store_dir(const std::string& tag) const {
    return (base_dir_ / tag).string();
  }

  fs::path base_dir_;
};

TEST_F(DurableFleetTest, ResumeAtAnyIntervalGivesIdenticalAlarms) {
  const MixScorer scorer;
  const auto expected = baseline_run(scorer);
  // The scenario is only meaningful if some — but not all — drives alarm.
  std::size_t n_alarmed = 0;
  for (const auto& o : expected) n_alarmed += o.alarmed ? 1 : 0;
  ASSERT_GT(n_alarmed, 0u);
  ASSERT_LT(n_alarmed, kDrives);

  for (const std::int64_t kill_after : {1, 3, 7, 12, 25, 37, 47, 48}) {
    const std::string dir = store_dir("kill" + std::to_string(kill_after));
    // Phase 1: journaled run, killed after `kill_after` intervals.
    {
      store::TelemetryStore store(dir);
      FleetScorer f(scorer, test_config());
      for (std::uint32_t d = 0; d < kDrives; ++d) {
        f.add_drive("drive-" + std::to_string(d));
      }
      f.attach_journal(&store);
      for (std::int64_t h = 0; h < kill_after; ++h) {
        const auto batch = interval_at(h);
        f.observe_samples(batch, h);
      }
    }  // scorer state is GONE; only the store survives the "crash"

    // Phase 2: fresh process — resume from the log and keep monitoring.
    store::TelemetryStore store(dir);
    FleetScorer f(scorer, test_config());
    const auto r = f.resume_from(store);
    EXPECT_EQ(r.drives, kDrives);
    EXPECT_EQ(r.partial_dropped, 0u);  // clean kill between intervals
    EXPECT_EQ(r.last_hour, kill_after - 1);
    f.attach_journal(&store);
    for (std::int64_t h = r.last_hour + 1; h < kHours; ++h) {
      const auto batch = interval_at(h);
      f.observe_samples(batch, h);
    }

    EXPECT_EQ(outcomes(f), expected)
        << "alarm divergence after kill at interval " << kill_after;
  }
}

TEST_F(DurableFleetTest, ResumeAfterTornAppendGivesIdenticalAlarms) {
  const MixScorer scorer;
  const auto expected = baseline_run(scorer);

  const std::int64_t kill_after = 20;
  const std::string dir = store_dir("torn");
  {
    store::TelemetryStore store(dir);
    FleetScorer f(scorer, test_config());
    for (std::uint32_t d = 0; d < kDrives; ++d) {
      f.add_drive("drive-" + std::to_string(d));
    }
    f.attach_journal(&store);
    for (std::int64_t h = 0; h < kill_after; ++h) {
      const auto batch = interval_at(h);
      f.observe_samples(batch, h);
    }
  }
  // The "crash" tears the final append mid-record: the last drive's sample
  // at hour 19 loses its trailing bytes.
  fs::path seg;
  for (const auto& e : fs::directory_iterator(dir)) seg = e.path();
  ASSERT_FALSE(seg.empty());
  fs::resize_file(seg, fs::file_size(seg) - 5);

  // A private metrics registry for the resumed process: the recovery
  // taxonomy must report exactly what was injected — one torn-tail
  // truncation, nothing else.
  obs::Registry reg;
  store::StoreOptions sopt;
  sopt.metrics = &reg;
  store::TelemetryStore store(dir, sopt);
  EXPECT_TRUE(store.recovery().tail_truncated);
  const char* rec = "hdd_store_recovery_outcomes_total";
  EXPECT_EQ(reg.counter(rec, "", {{"outcome", "torn_tail"}}).value(), 1u);
  EXPECT_EQ(reg.counter(rec, "", {{"outcome", "crc_drop"}}).value(), 0u);
  EXPECT_EQ(reg.counter(rec, "", {{"outcome", "header_skip"}}).value(), 0u);
  EXPECT_EQ(reg.counter(rec, "", {{"outcome", "record_dropped"}}).value(), 0u);
  auto cfg = test_config();
  cfg.metrics = &reg;
  FleetScorer f(scorer, cfg);
  const auto r = f.resume_from(store);
  EXPECT_EQ(reg.counter("hdd_fleet_journal_resume_total", "").value(), 1u);
  EXPECT_EQ(reg.counter("hdd_fleet_resume_samples_total", "").value(),
            r.samples_replayed);
  // The torn interval (hour 19) is dropped for every drive so the fleet
  // resumes aligned...
  EXPECT_EQ(r.partial_dropped, kDrives - 1);
  EXPECT_EQ(r.last_hour, kill_after - 2);
  f.attach_journal(&store);
  // ...and re-observing hour 19 completes it (appends are idempotent per
  // store hour, so drives that kept hour 19 on disk are not duplicated).
  for (std::int64_t h = r.last_hour + 1; h < kHours; ++h) {
    const auto batch = interval_at(h);
    f.observe_samples(batch, h);
  }
  EXPECT_EQ(outcomes(f), expected);

  // The re-observed interval left exactly one copy per drive on disk.
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    EXPECT_EQ(store.read_drive(d, 19, 19).size(), 1u);
  }
}

// resume_from with an empty registry adopts the store's fleet; with a
// mismatched registry it must refuse rather than misattribute telemetry.
TEST_F(DurableFleetTest, ResumeValidatesRegistry) {
  const MixScorer scorer;
  const std::string dir = store_dir("reg");
  store::TelemetryStore store(dir);
  store.register_drive("drive-0");
  store.append(0, sample_for(0, 0));
  store.flush();

  FleetScorer adopting(scorer, test_config());
  const auto r = adopting.resume_from(store);
  EXPECT_EQ(r.drives, 1u);
  EXPECT_EQ(adopting.serial(0), "drive-0");

  FleetScorer mismatched(scorer, test_config());
  mismatched.add_drive("other-drive");
  EXPECT_THROW(mismatched.resume_from(store), ConfigError);

  FleetScorer wrong_size(scorer, test_config());
  wrong_size.add_drive("drive-0");
  wrong_size.add_drive("drive-1");
  EXPECT_THROW(wrong_size.resume_from(store), ConfigError);
}

TEST_F(DurableFleetTest, ObserveSamplesValidatesInput) {
  const MixScorer scorer;
  FleetScorer f(scorer, test_config());
  f.add_drive("a");
  f.add_drive("b");
  std::vector<smart::Sample> wrong_count(1);
  EXPECT_THROW(f.observe_samples(wrong_count, 0), ConfigError);
  std::vector<smart::Sample> wrong_hour(2);
  wrong_hour[0].hour = 0;
  wrong_hour[1].hour = 3;  // not the interval hour
  EXPECT_THROW(f.observe_samples(wrong_hour, 0), ConfigError);
}

// Journal-less observe_samples equals journaled observe_samples: the
// durability layer must not perturb scoring.
TEST_F(DurableFleetTest, JournalDoesNotChangeDecisions) {
  const MixScorer scorer;
  const auto expected = baseline_run(scorer);  // no journal attached

  store::TelemetryStore store(store_dir("journal"));
  FleetScorer f(scorer, test_config());
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    f.add_drive("drive-" + std::to_string(d));
  }
  f.attach_journal(&store);
  for (std::int64_t h = 0; h < kHours; ++h) {
    const auto batch = interval_at(h);
    f.observe_samples(batch, h);
  }
  EXPECT_EQ(outcomes(f), expected);
  EXPECT_EQ(store.sample_count(), kDrives * static_cast<std::size_t>(kHours));
}

}  // namespace
}  // namespace hdd::core
