// Tests for src/eval: the voting detector (majority and average modes),
// record scoring, drive-level metrics, TIA histograms, and ROC sweeps.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

#include "eval/detection.h"

namespace hdd::eval {
namespace {

DriveScores make_scores(std::vector<float> outputs, bool failed = false,
                        std::int64_t fail_hour = -1) {
  DriveScores s;
  s.failed = failed;
  s.fail_hour = fail_hour;
  s.outputs = std::move(outputs);
  for (std::size_t i = 0; i < s.outputs.size(); ++i) {
    s.hours.push_back(static_cast<std::int64_t>(i));
  }
  return s;
}

TEST(VoteDrive, SingleVoterAlarmsOnFirstNegative) {
  const auto s = make_scores({1, 1, -1, 1});
  VoteConfig cfg;
  cfg.voters = 1;
  const auto o = vote_drive(s, cfg);
  EXPECT_TRUE(o.alarmed);
  EXPECT_EQ(o.alarm_hour, 2);
}

TEST(VoteDrive, MajorityRequired) {
  // N=3: needs more than 1.5 failed among last 3.
  VoteConfig cfg;
  cfg.voters = 3;
  EXPECT_FALSE(vote_drive(make_scores({-1, 1, 1, -1, 1, 1}), cfg).alarmed);
  const auto o = vote_drive(make_scores({1, -1, -1, 1}), cfg);
  EXPECT_TRUE(o.alarmed);
  EXPECT_EQ(o.alarm_hour, 2);  // window {1,-1,-1} at index 2
}

TEST(VoteDrive, EarlySamplesDoNotAlarmBeforeWindowFills) {
  // Two failed samples at the start never form a majority of 5 voters
  // until 5 samples exist — and by then the window is 2/5.
  VoteConfig cfg;
  cfg.voters = 5;
  EXPECT_FALSE(
      vote_drive(make_scores({-1, -1, 1, 1, 1, 1, 1}), cfg).alarmed);
}

TEST(VoteDrive, ShortRecordVotesOverWhatItHas) {
  VoteConfig cfg;
  cfg.voters = 11;
  // 3 samples, 2 failed: majority of 3 -> alarm at the last sample.
  const auto o = vote_drive(make_scores({-1, -1, 1}), cfg);
  EXPECT_TRUE(o.alarmed);
  EXPECT_EQ(o.alarm_hour, 2);
  EXPECT_FALSE(vote_drive(make_scores({-1, 1, 1}), cfg).alarmed);
}

TEST(VoteDrive, EmptyRecordNeverAlarms) {
  VoteConfig cfg;
  EXPECT_FALSE(vote_drive(make_scores({}), cfg).alarmed);
}

TEST(VoteDrive, RejectsZeroVoters) {
  VoteConfig cfg;
  cfg.voters = 0;
  EXPECT_THROW(vote_drive(make_scores({1}), cfg), ConfigError);
}

TEST(VoteDrive, AverageModeComparesMeanToThreshold) {
  VoteConfig cfg;
  cfg.voters = 2;
  cfg.average_mode = true;
  cfg.threshold = -0.25;
  // Means over windows of 2: (0.9+(-0.8))/2 = 0.05 > -0.25; then
  // ((-0.8)+(-0.9))/2 = -0.85 < -0.25 -> alarm at index 2.
  const auto o = vote_drive(make_scores({0.9f, -0.8f, -0.9f}), cfg);
  EXPECT_TRUE(o.alarmed);
  EXPECT_EQ(o.alarm_hour, 2);
}

TEST(VoteDrive, AverageModeThresholdBoundaryIsExclusive) {
  VoteConfig cfg;
  cfg.voters = 1;
  cfg.average_mode = true;
  cfg.threshold = 0.0;
  EXPECT_FALSE(vote_drive(make_scores({0.0f}), cfg).alarmed);
  EXPECT_TRUE(vote_drive(make_scores({-0.01f}), cfg).alarmed);
}

TEST(VoteDrive, LargerNSuppressesTransients) {
  // A 3-sample failed burst inside a long healthy record.
  std::vector<float> outputs(40, 1.0f);
  outputs[10] = outputs[11] = outputs[12] = -1.0f;
  VoteConfig small;
  small.voters = 3;
  VoteConfig large;
  large.voters = 11;
  EXPECT_TRUE(vote_drive(make_scores(outputs), small).alarmed);
  EXPECT_FALSE(vote_drive(make_scores(outputs), large).alarmed);
}

TEST(EvaluateVotes, ComputesPerDriveMetrics) {
  std::vector<DriveScores> scores;
  // Good drive, clean.
  scores.push_back(make_scores({1, 1, 1, 1}));
  // Good drive with a persistent failure look -> false alarm.
  scores.push_back(make_scores({-1, -1, -1, -1}));
  // Failed drive detected at hour 1 (fail at hour 3) -> TIA 2.
  scores.push_back(make_scores({-1, -1, -1, 1}, true, 3));
  // Failed drive missed.
  scores.push_back(make_scores({1, 1, 1, 1}, true, 3));
  VoteConfig cfg;
  cfg.voters = 1;
  const auto r = evaluate_votes(scores, cfg);
  EXPECT_EQ(r.n_good, 2u);
  EXPECT_EQ(r.n_failed, 2u);
  EXPECT_EQ(r.false_alarms, 1u);
  EXPECT_EQ(r.detections, 1u);
  EXPECT_DOUBLE_EQ(r.far(), 0.5);
  EXPECT_DOUBLE_EQ(r.fdr(), 0.5);
  ASSERT_EQ(r.tia_hours.size(), 1u);
  EXPECT_DOUBLE_EQ(r.tia_hours[0], 3.0);  // alarm at hour 0
  EXPECT_DOUBLE_EQ(r.mean_tia(), 3.0);
}

TEST(EvaluateVotes, EmptyInputsGiveZeroRates) {
  const auto r = evaluate_votes({}, {});
  EXPECT_DOUBLE_EQ(r.far(), 0.0);
  EXPECT_DOUBLE_EQ(r.fdr(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_tia(), 0.0);
}

TEST(TiaHistogram, BucketsMatchPaperBoundaries) {
  const std::vector<double> tia{0, 24, 25, 72, 73, 168, 169, 336, 337, 1000};
  const auto buckets = tia_histogram(tia);
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0], 2u);  // 0, 24
  EXPECT_EQ(buckets[1], 2u);  // 25, 72
  EXPECT_EQ(buckets[2], 2u);  // 73, 168
  EXPECT_EQ(buckets[3], 2u);  // 169, 336
  EXPECT_EQ(buckets[4], 2u);  // 337, 1000
}

TEST(ScoreRecord, AppliesModelToEverySampleFromBegin) {
  smart::DriveRecord d;
  d.failed = true;
  d.fail_hour = 9;
  for (int i = 0; i < 10; ++i) {
    smart::Sample s;
    s.hour = i;
    s.set(smart::Attr::kPowerOnHours, static_cast<float>(i));
    d.samples.push_back(s);
  }
  const smart::FeatureSet fs{"poh", {{smart::Attr::kPowerOnHours, 0}}};
  const auto scores = score_record(
      d, 4, fs, [](std::span<const float> x) { return x[0] < 7 ? 1 : -1; });
  EXPECT_TRUE(scores.failed);
  EXPECT_EQ(scores.fail_hour, 9);
  ASSERT_EQ(scores.outputs.size(), 6u);
  EXPECT_EQ(scores.hours.front(), 4);
  EXPECT_FLOAT_EQ(scores.outputs.front(), 1.0f);
  EXPECT_FLOAT_EQ(scores.outputs.back(), -1.0f);
}

TEST(ScoreRecord, BeginPastEndYieldsEmpty) {
  smart::DriveRecord d;
  smart::Sample s;
  s.hour = 0;
  d.samples.push_back(s);
  const smart::FeatureSet fs{"poh", {{smart::Attr::kPowerOnHours, 0}}};
  const auto scores =
      score_record(d, 5, fs, [](std::span<const float>) { return 1.0; });
  EXPECT_TRUE(scores.outputs.empty());
}

TEST(RocSweeps, VoterSweepIsMonotoneInFar) {
  // Good drives with occasional bursts: FAR must not increase with N.
  std::vector<DriveScores> scores;
  Rng rng(77);
  for (int d = 0; d < 300; ++d) {
    std::vector<float> outputs(60, 1.0f);
    if (rng.chance(0.3)) {
      const auto start = rng.uniform_int(50);
      const auto len = 1 + rng.uniform_int(8);
      for (std::size_t i = start; i < start + len && i < outputs.size(); ++i) {
        outputs[i] = -1.0f;
      }
    }
    scores.push_back(make_scores(std::move(outputs)));
  }
  const int voters[] = {1, 3, 5, 9, 15};
  const auto points = roc_over_voters(scores, voters);
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].x, points[i - 1].x + 1e-12);
  }
}

TEST(RocSweeps, ThresholdSweepIsMonotoneInBothAxes) {
  // Lowering the threshold can only reduce alarms.
  std::vector<DriveScores> scores;
  Rng rng(78);
  for (int d = 0; d < 200; ++d) {
    const bool failed = d % 4 == 0;
    std::vector<float> outputs;
    for (int i = 0; i < 50; ++i) {
      const double base = failed ? -0.3 : 0.5;
      outputs.push_back(static_cast<float>(base + rng.normal(0.0, 0.3)));
    }
    scores.push_back(make_scores(std::move(outputs), failed, 49));
  }
  const double thresholds[] = {-0.8, -0.4, 0.0, 0.4};
  const auto points = roc_over_thresholds(scores, 5, thresholds);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].x + 1e-12, points[i - 1].x);
    EXPECT_GE(points[i].y + 1e-12, points[i - 1].y);
  }
}

TEST(ScoreDataset, RequiresModel) {
  data::DriveDataset ds;
  data::DatasetSplit split;
  const smart::FeatureSet fs{"poh", {{smart::Attr::kPowerOnHours, 0}}};
  EXPECT_THROW(score_dataset(ds, split, fs, nullptr), ConfigError);
}

}  // namespace
}  // namespace hdd::eval
