// Tests for src/update: the long-term simulation — training schedules per
// strategy, retraining counts, week coverage, and basic metric sanity.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"

#include "core/predictor.h"
#include "store/telemetry_store.h"
#include "tree/tree.h"
#include "update/strategies.h"

namespace hdd::update {
namespace {

sim::FleetConfig tiny_fleet() {
  sim::FleetConfig cfg;
  cfg.seed = 21;
  cfg.sample_interval_hours = 4;  // keep the suite quick
  cfg.observation_weeks = 5;
  cfg.failed_record_days = 20;
  cfg.families.push_back({sim::family_w_profile(), 250, 40});
  return cfg;
}

LongTermConfig base_config() {
  LongTermConfig cfg;
  const auto paper = core::paper_ct_config();
  cfg.training = paper.training;
  cfg.vote = paper.vote;
  return cfg;
}

// Counts trainer invocations and returns a real CT model.
ModelTrainer counting_trainer(int& calls,
                              std::vector<std::size_t>* row_counts = nullptr) {
  return [&calls, row_counts](const data::DataMatrix& m) {
    ++calls;
    if (row_counts != nullptr) row_counts->push_back(m.rows());
    auto t = std::make_shared<tree::DecisionTree>();
    tree::TreeParams params;
    t->fit(m, tree::Task::kClassification, params);
    return eval::SampleModel(
        [t](std::span<const float> x) { return t->predict(x); });
  };
}

TEST(StrategyNames, AllDistinct) {
  EXPECT_STREQ(strategy_name(Strategy::kFixed), "fixed");
  EXPECT_STREQ(strategy_name(Strategy::kAccumulation), "accumulation");
  EXPECT_STREQ(strategy_name(Strategy::kReplacing), "replacing");
}

TEST(LongTerm, ValidatesInputs) {
  auto fleet = tiny_fleet();
  auto cfg = base_config();
  int calls = 0;
  fleet.families.push_back(fleet.families[0]);  // two families: invalid
  EXPECT_THROW(simulate_long_term(fleet, counting_trainer(calls), cfg),
               ConfigError);
  fleet = tiny_fleet();
  EXPECT_THROW(simulate_long_term(fleet, nullptr, cfg), ConfigError);
  cfg.strategy = Strategy::kReplacing;
  cfg.replace_cycle_weeks = 0;
  EXPECT_THROW(simulate_long_term(fleet, counting_trainer(calls), cfg),
               ConfigError);
}

TEST(LongTerm, CoversWeeksTwoThroughLast) {
  const auto fleet = tiny_fleet();
  auto cfg = base_config();
  int calls = 0;
  const auto weekly = simulate_long_term(fleet, counting_trainer(calls), cfg);
  ASSERT_EQ(weekly.size(), 4u);  // weeks 2..5
  for (std::size_t i = 0; i < weekly.size(); ++i) {
    EXPECT_EQ(weekly[i].week, static_cast<int>(i) + 2);
    EXPECT_GE(weekly[i].far, 0.0);
    EXPECT_LE(weekly[i].far, 1.0);
    EXPECT_GE(weekly[i].fdr, 0.0);
    EXPECT_LE(weekly[i].fdr, 1.0);
  }
}

TEST(LongTerm, FixedStrategyTrainsExactlyOnce) {
  const auto fleet = tiny_fleet();
  auto cfg = base_config();
  cfg.strategy = Strategy::kFixed;
  int calls = 0;
  simulate_long_term(fleet, counting_trainer(calls), cfg);
  EXPECT_EQ(calls, 1);
}

TEST(LongTerm, AccumulationRetrainsEveryWeekWithGrowingData) {
  const auto fleet = tiny_fleet();
  auto cfg = base_config();
  cfg.strategy = Strategy::kAccumulation;
  int calls = 0;
  std::vector<std::size_t> rows;
  simulate_long_term(fleet, counting_trainer(calls, &rows), cfg);
  EXPECT_EQ(calls, 4);  // one per test week
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i], rows[i - 1]);  // training set accumulates
  }
}

TEST(LongTerm, OneWeekReplacingRetrainsEveryWeekWithBoundedData) {
  const auto fleet = tiny_fleet();
  auto cfg = base_config();
  cfg.strategy = Strategy::kReplacing;
  cfg.replace_cycle_weeks = 1;
  int calls = 0;
  std::vector<std::size_t> rows;
  simulate_long_term(fleet, counting_trainer(calls, &rows), cfg);
  EXPECT_EQ(calls, 4);
  // Training windows stay one week wide: row counts stay flat-ish.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(rows[i]),
                static_cast<double>(rows[0]),
                0.2 * static_cast<double>(rows[0]));
  }
}

TEST(LongTerm, TwoWeekReplacingRetrainsEveryOtherWeek) {
  const auto fleet = tiny_fleet();
  auto cfg = base_config();
  cfg.strategy = Strategy::kReplacing;
  cfg.replace_cycle_weeks = 2;
  int calls = 0;
  simulate_long_term(fleet, counting_trainer(calls), cfg);
  // Test weeks 2..5: ranges are [0,1), [0,2), [0,2), [2,4) -> 3 trainings.
  EXPECT_EQ(calls, 3);
}

TEST(LongTerm, ModelAgingShowsUpForTheFixedStrategy) {
  // The headline phenomenon of Figures 6-9: the fixed model's FAR grows
  // over the weeks while 1-week replacing stays lower at the end.
  auto fleet = tiny_fleet();
  fleet.observation_weeks = 8;
  fleet.families[0].n_good = 400;

  auto cfg = base_config();
  cfg.strategy = Strategy::kFixed;
  int calls = 0;
  const auto fixed = simulate_long_term(fleet, counting_trainer(calls), cfg);

  cfg.strategy = Strategy::kReplacing;
  cfg.replace_cycle_weeks = 1;
  const auto replacing =
      simulate_long_term(fleet, counting_trainer(calls), cfg);

  EXPECT_GT(fixed.back().far, 3.0 * fixed.front().far + 0.001);
  EXPECT_LT(replacing.back().far, fixed.back().far);
}

// Retraining from store-read history must reproduce the generator-backed
// simulation exactly: the generator aligns samples to the global grid, and
// the store round-trips float attributes bit for bit.
TEST(LongTerm, StoreBackedTelemetryMatchesGenerator) {
  auto fleet = tiny_fleet();
  fleet.families[0].n_good = 60;  // keep the double simulation quick
  auto cfg = base_config();
  cfg.strategy = Strategy::kReplacing;
  cfg.replace_cycle_weeks = 2;

  const auto dir =
      std::filesystem::temp_directory_path() / "hdd_update_store_eqv";
  std::filesystem::remove_all(dir);
  {
    store::TelemetryStore store(dir.string());
    const std::size_t appended = ingest_good_telemetry(fleet, store);
    EXPECT_GT(appended, 0u);
    EXPECT_EQ(store.drive_count(), 60u);
    EXPECT_EQ(ingest_good_telemetry(fleet, store), 0u);  // idempotent

    int calls_gen = 0;
    int calls_store = 0;
    const auto baseline =
        simulate_long_term(fleet, counting_trainer(calls_gen), cfg);
    const auto stored =
        simulate_long_term(fleet, counting_trainer(calls_store), cfg,
                           StoreTelemetrySource(store));
    EXPECT_EQ(calls_store, calls_gen);
    ASSERT_EQ(stored.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(stored[i].week, baseline[i].week);
      EXPECT_EQ(stored[i].far, baseline[i].far);  // exact, not approximate
      EXPECT_EQ(stored[i].fdr, baseline[i].fdr);
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hdd::update
