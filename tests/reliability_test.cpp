// Tests for src/reliability: the CTMC mean-absorption-time solver against
// closed forms, the Eq. 7/8 formulas against the paper's Table VI numbers,
// and the Figure 11 RAID model (limits, monotonicity, truncation error).
#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>

#include "reliability/markov.h"
#include "reliability/raid.h"

namespace hdd::reliability {
namespace {

TEST(Markov, SingleExponentialStep) {
  MarkovChain c;
  const int a = c.add_state();
  const int f = c.add_state();
  c.set_absorbing(f);
  c.add_transition(a, f, 0.5);
  EXPECT_NEAR(c.mean_time_to_absorption(a), 2.0, 1e-12);
}

TEST(Markov, TwoSequentialSteps) {
  MarkovChain c;
  const int a = c.add_state();
  const int b = c.add_state();
  const int f = c.add_state();
  c.set_absorbing(f);
  c.add_transition(a, b, 1.0);
  c.add_transition(b, f, 2.0);
  EXPECT_NEAR(c.mean_time_to_absorption(a), 1.0 + 0.5, 1e-12);
}

TEST(Markov, BirthDeathWithRepair) {
  // Classic RAID-1-like chain: 0 ->(2l) 1 ->(l) F, 1 ->(mu) 0.
  // MTTDL = (3l + mu) / (2 l^2).
  const double l = 0.01, mu = 1.0;
  MarkovChain c;
  const int s0 = c.add_state();
  const int s1 = c.add_state();
  const int f = c.add_state();
  c.set_absorbing(f);
  c.add_transition(s0, s1, 2 * l);
  c.add_transition(s1, f, l);
  c.add_transition(s1, s0, mu);
  EXPECT_NEAR(c.mean_time_to_absorption(s0), (3 * l + mu) / (2 * l * l),
              1e-6);
}

TEST(Markov, StartingAbsorbedIsZero) {
  MarkovChain c;
  const int f = c.add_state();
  c.set_absorbing(f);
  EXPECT_DOUBLE_EQ(c.mean_time_to_absorption(f), 0.0);
}

TEST(Markov, UnreachableAbsorptionThrows) {
  MarkovChain c;
  const int a = c.add_state();
  const int b = c.add_state();
  const int f = c.add_state();
  c.set_absorbing(f);
  c.add_transition(a, b, 1.0);
  c.add_transition(b, a, 1.0);  // f unreachable
  EXPECT_THROW(c.mean_time_to_absorption(a), ConfigError);
}

TEST(Markov, RejectsBadTransitions) {
  MarkovChain c;
  const int a = c.add_state();
  const int b = c.add_state();
  EXPECT_THROW(c.add_transition(a, a, 1.0), ConfigError);
  EXPECT_THROW(c.add_transition(a, b, 0.0), ConfigError);
  EXPECT_THROW(c.add_transition(a, b, -1.0), ConfigError);
}

TEST(Markov, AddStatesBulk) {
  MarkovChain c;
  const int first = c.add_states(5);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(c.num_states(), 5);
  EXPECT_THROW(c.add_states(0), ConfigError);
}

TEST(Eq7, ReproducesPaperTableVI) {
  const double years = 24.0 * 365.0;
  // No prediction: MTTF itself = 158.67 years.
  EXPECT_NEAR(1.39e6 / years, 158.67, 0.05);
  // BP ANN: k = 0.9098, TIA = 343 h -> 1430.33 years.
  EXPECT_NEAR(
      mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.9098, 343) / years,
      1430.33, 2.0);
  // CT: k = 0.9549, TIA = 355 h -> 2398.92 years.
  EXPECT_NEAR(
      mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.9549, 355) / years,
      2398.92, 3.0);
  // RT: k = 0.9624, TIA = 351 h -> 2687.31 years.
  EXPECT_NEAR(
      mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.9624, 351) / years,
      2687.31, 3.0);
}

TEST(Eq7, ZeroFdrIsNoImprovement) {
  EXPECT_NEAR(mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.0, 355),
              1.39e6, 1e-6);
}

TEST(Eq7, ImprovementIsSuperlinearInK) {
  const double a = mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.90, 355);
  const double b = mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.95, 355);
  const double c = mttdl_single_drive_with_prediction(1.39e6, 8.0, 0.99, 355);
  EXPECT_GT(b - a, 0.0);
  EXPECT_GT(c - b, b - a);  // superlinear growth (paper Section VI)
}

TEST(Eq7, RejectsBadParameters) {
  EXPECT_THROW(mttdl_single_drive_with_prediction(-1, 8, 0.9, 355),
               ConfigError);
  EXPECT_THROW(mttdl_single_drive_with_prediction(1e6, 8, 1.5, 355),
               ConfigError);
}

TEST(Eq8, MatchesHandComputation) {
  const double mttf = 1.39e6, mttr = 8.0;
  const int n = 100;
  const double expected =
      mttf * mttf * mttf / (100.0 * 99.0 * 98.0 * mttr * mttr);
  EXPECT_NEAR(mttdl_raid6_no_prediction(mttf, mttr, n), expected, 1e-3);
  EXPECT_THROW(mttdl_raid6_no_prediction(mttf, mttr, 2), ConfigError);
}

TEST(Raid5Formula, MatchesHandComputation) {
  const double mttf = 1.0e6, mttr = 10.0;
  EXPECT_NEAR(mttdl_raid5_no_prediction(mttf, mttr, 10),
              mttf * mttf / (10.0 * 9.0 * mttr), 1e-6);
}

TEST(RaidCtmc, ZeroFdrMatchesClassicRaid6) {
  // With k = 0 the prediction dimension vanishes and the chain reduces to
  // the classic three-state model; Eq. 8 approximates it within ~1%.
  RaidPredictionParams p;
  p.n_drives = 20;
  p.tolerated_failures = 2;
  p.fdr = 0.0;
  const double ctmc = mttdl_raid_with_prediction(p);
  const double formula = mttdl_raid6_no_prediction(p.mttf_hours,
                                                   p.mttr_hours, 20);
  EXPECT_NEAR(ctmc / formula, 1.0, 0.02);
}

TEST(RaidCtmc, ZeroFdrMatchesClassicRaid5) {
  RaidPredictionParams p;
  p.n_drives = 12;
  p.tolerated_failures = 1;
  p.fdr = 0.0;
  const double ctmc = mttdl_raid_with_prediction(p);
  const double formula = mttdl_raid5_no_prediction(p.mttf_hours,
                                                   p.mttr_hours, 12);
  EXPECT_NEAR(ctmc / formula, 1.0, 0.02);
}

TEST(RaidCtmc, PredictionImprovesReliability) {
  RaidPredictionParams p;
  p.n_drives = 50;
  p.fdr = 0.0;
  const double without = mttdl_raid_with_prediction(p);
  p.fdr = 0.9549;
  const double with = mttdl_raid_with_prediction(p);
  EXPECT_GT(with, 100.0 * without);  // orders of magnitude (Figure 12)
}

TEST(RaidCtmc, MonotoneInFdr) {
  RaidPredictionParams p;
  p.n_drives = 30;
  double prev = 0.0;
  for (double k : {0.0, 0.5, 0.9, 0.95, 0.99}) {
    p.fdr = k;
    const double mttdl = mttdl_raid_with_prediction(p);
    EXPECT_GT(mttdl, prev);
    prev = mttdl;
  }
}

TEST(RaidCtmc, MonotoneDecreasingInFleetSize) {
  RaidPredictionParams p;
  p.fdr = 0.9549;
  double prev = 1e300;
  for (int n : {10, 50, 200, 1000}) {
    p.n_drives = n;
    const double mttdl = mttdl_raid_with_prediction(p);
    EXPECT_LT(mttdl, prev);
    prev = mttdl;
  }
}

TEST(RaidCtmc, LongerTiaHelps) {
  // More warning time means more predicted drives are migrated in time.
  RaidPredictionParams p;
  p.n_drives = 40;
  p.tia_hours = 24.0;
  const double short_tia = mttdl_raid_with_prediction(p);
  p.tia_hours = 355.0;
  const double long_tia = mttdl_raid_with_prediction(p);
  EXPECT_GT(long_tia, short_tia);
}

TEST(RaidCtmc, TruncationErrorIsNegligible) {
  // Small fleet solved exactly (cap = n-1) vs the default truncation.
  RaidPredictionParams exact;
  exact.n_drives = 12;
  exact.fdr = 0.9549;
  exact.max_predicted = 11;  // untruncated
  RaidPredictionParams truncated = exact;
  truncated.max_predicted = 3;
  EXPECT_NEAR(mttdl_raid_with_prediction(truncated) /
                  mttdl_raid_with_prediction(exact),
              1.0, 1e-3);
}

TEST(RaidCtmc, ValidatesParameters) {
  RaidPredictionParams p;
  p.tolerated_failures = 0;
  EXPECT_THROW(mttdl_raid_with_prediction(p), ConfigError);
  p = RaidPredictionParams{};
  p.n_drives = 2;  // not > tolerated
  EXPECT_THROW(mttdl_raid_with_prediction(p), ConfigError);
  p = RaidPredictionParams{};
  p.fdr = 2.0;
  EXPECT_THROW(mttdl_raid_with_prediction(p), ConfigError);
}

TEST(RaidCtmc, SataRaid6WithCtBeatsSasWithout) {
  // The paper's headline reliability claim (Figure 12).
  const double sas = mttdl_raid6_no_prediction(1.99e6, 8.0, 500);
  RaidPredictionParams p;
  p.n_drives = 500;
  p.mttf_hours = 1.39e6;
  p.fdr = 0.9549;
  p.tia_hours = 355.0;
  EXPECT_GT(mttdl_raid_with_prediction(p), sas * 100.0);
}

class FleetSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FleetSizeSweep, Raid5WithCtTracksRaid6WithoutPrediction) {
  // Figure 12: the SATA RAID-5 + CT curve stays within two orders of
  // magnitude of the unpredicted SATA RAID-6 curve across fleet sizes.
  const int n = GetParam();
  RaidPredictionParams p;
  p.n_drives = n;
  p.tolerated_failures = 1;
  p.fdr = 0.9549;
  p.tia_hours = 355.0;
  const double r5ct = mttdl_raid_with_prediction(p);
  const double r6 = mttdl_raid6_no_prediction(1.39e6, 8.0, n);
  EXPECT_GT(r5ct, r6 / 100.0);
  EXPECT_LT(r5ct, r6 * 100.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FleetSizeSweep,
                         ::testing::Values(100, 500, 1000, 2000, 2500));

}  // namespace
}  // namespace hdd::reliability
