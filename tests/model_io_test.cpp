// Persistence round-trip tests for every serializable model: tree (via the
// tree module and the core delegate), random forest, and MLP.
#include <gtest/gtest.h>

#include <sstream>

#include "ann/mlp.h"
#include "common/error.h"
#include "common/rng.h"
#include "forest/random_forest.h"
#include "tree/tree.h"

namespace hdd {
namespace {

data::DataMatrix random_matrix(std::uint64_t seed, int cols, int rows) {
  Rng rng(seed);
  data::DataMatrix m(cols);
  std::vector<float> row(static_cast<std::size_t>(cols));
  for (int i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(0, 100));
    m.add_row(row, row[0] > 50.0f ? -1.0f : 1.0f, 1.0f);
  }
  return m;
}

TEST(TreeIo, RoundTripsBothTasks) {
  for (const auto task : {tree::Task::kClassification,
                          tree::Task::kRegression}) {
    const auto m = random_matrix(1, 4, 400);
    tree::DecisionTree t;
    t.fit(m, task, tree::TreeParams{});
    std::ostringstream os;
    t.save(os);
    std::istringstream is(os.str());
    const auto back = tree::DecisionTree::load(is);
    EXPECT_EQ(back.task(), task);
    EXPECT_EQ(back.node_count(), t.node_count());
    Rng rng(2);
    std::vector<float> x(4);
    for (int i = 0; i < 100; ++i) {
      for (auto& v : x) v = static_cast<float>(rng.uniform(0, 100));
      EXPECT_DOUBLE_EQ(back.predict(x), t.predict(x));
    }
  }
}

TEST(TreeIo, SaveRequiresTraining) {
  tree::DecisionTree t;
  std::ostringstream os;
  EXPECT_THROW(t.save(os), ConfigError);
}

TEST(ForestIo, RoundTripsPredictions) {
  const auto m = random_matrix(3, 5, 600);
  forest::ForestConfig cfg;
  cfg.n_trees = 9;
  cfg.feature_fraction = 0.6;
  forest::RandomForest f;
  f.fit(m, tree::Task::kClassification, cfg);

  std::ostringstream os;
  f.save(os);
  std::istringstream is(os.str());
  const auto back = forest::RandomForest::load(is);
  EXPECT_EQ(back.tree_count(), f.tree_count());

  Rng rng(4);
  std::vector<float> x(5);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform(0, 100));
    EXPECT_DOUBLE_EQ(back.predict(x), f.predict(x));
  }
}

TEST(ForestIo, RejectsMalformedInput) {
  {
    std::istringstream is("nope\n");
    EXPECT_THROW(forest::RandomForest::load(is), DataError);
  }
  {
    std::istringstream is("hddpred-forest v1\nfeatures 2\ntrees 1\n");
    EXPECT_THROW(forest::RandomForest::load(is), DataError);  // truncated
  }
  {
    // Subspace index beyond the declared feature count.
    std::istringstream is(
        "hddpred-forest v1\nfeatures 2\ntrees 1\nsubspace 0 7\n");
    EXPECT_THROW(forest::RandomForest::load(is), DataError);
  }
}

TEST(MlpIo, RoundTripsPredictions) {
  const auto m = random_matrix(5, 3, 500);
  ann::MlpConfig cfg;
  cfg.hidden = 6;
  cfg.epochs = 40;
  ann::MlpModel model;
  model.fit(m, cfg);

  std::ostringstream os;
  model.save(os);
  std::istringstream is(os.str());
  const auto back = ann::MlpModel::load(is);
  EXPECT_EQ(back.num_features(), 3);
  EXPECT_EQ(back.hidden_units(), 6);

  Rng rng(6);
  std::vector<float> x(3);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform(0, 100));
    EXPECT_DOUBLE_EQ(back.predict(x), model.predict(x));
  }
}

TEST(MlpIo, RejectsMalformedInput) {
  {
    std::istringstream is("garbage\n");
    EXPECT_THROW(ann::MlpModel::load(is), DataError);
  }
  {
    std::istringstream is("hddpred-mlp v1\ninputs 0 hidden 3\n");
    EXPECT_THROW(ann::MlpModel::load(is), DataError);
  }
  {
    std::istringstream is("hddpred-mlp v1\ninputs 2 hidden 2\nmin 1 2\n");
    EXPECT_THROW(ann::MlpModel::load(is), DataError);  // truncated
  }
}

TEST(MlpIo, SaveRequiresTraining) {
  ann::MlpModel model;
  std::ostringstream os;
  EXPECT_THROW(model.save(os), ConfigError);
}

}  // namespace
}  // namespace hdd
