// Persistence round-trip tests for every serializable model: tree (via the
// tree module and the core delegate), random forest, and MLP — plus the
// verify-on-load modes and the header-sniffing AnyModel loader.
#include <gtest/gtest.h>

#include <sstream>
#include <variant>

#include "ann/mlp.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/model_io.h"
#include "forest/random_forest.h"
#include "tree/tree.h"

namespace hdd {
namespace {

data::DataMatrix random_matrix(std::uint64_t seed, int cols, int rows) {
  Rng rng(seed);
  data::DataMatrix m(cols);
  std::vector<float> row(static_cast<std::size_t>(cols));
  for (int i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(0, 100));
    m.add_row(row, row[0] > 50.0f ? -1.0f : 1.0f, 1.0f);
  }
  return m;
}

TEST(TreeIo, RoundTripsBothTasks) {
  for (const auto task : {tree::Task::kClassification,
                          tree::Task::kRegression}) {
    const auto m = random_matrix(1, 4, 400);
    tree::DecisionTree t;
    t.fit(m, task, tree::TreeParams{});
    std::ostringstream os;
    t.save(os);
    std::istringstream is(os.str());
    const auto back = tree::DecisionTree::load(is);
    EXPECT_EQ(back.task(), task);
    EXPECT_EQ(back.node_count(), t.node_count());
    Rng rng(2);
    std::vector<float> x(4);
    for (int i = 0; i < 100; ++i) {
      for (auto& v : x) v = static_cast<float>(rng.uniform(0, 100));
      EXPECT_DOUBLE_EQ(back.predict(x), t.predict(x));
    }
  }
}

TEST(TreeIo, SaveRequiresTraining) {
  tree::DecisionTree t;
  std::ostringstream os;
  EXPECT_THROW(t.save(os), ConfigError);
}

TEST(ForestIo, RoundTripsPredictions) {
  const auto m = random_matrix(3, 5, 600);
  forest::ForestConfig cfg;
  cfg.n_trees = 9;
  cfg.feature_fraction = 0.6;
  forest::RandomForest f;
  f.fit(m, tree::Task::kClassification, cfg);

  std::ostringstream os;
  f.save(os);
  std::istringstream is(os.str());
  const auto back = forest::RandomForest::load(is);
  EXPECT_EQ(back.tree_count(), f.tree_count());

  Rng rng(4);
  std::vector<float> x(5);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform(0, 100));
    EXPECT_DOUBLE_EQ(back.predict(x), f.predict(x));
  }
}

TEST(ForestIo, RejectsMalformedInput) {
  {
    std::istringstream is("nope\n");
    EXPECT_THROW(forest::RandomForest::load(is), DataError);
  }
  {
    std::istringstream is("hddpred-forest v1\nfeatures 2\ntrees 1\n");
    EXPECT_THROW(forest::RandomForest::load(is), DataError);  // truncated
  }
  {
    // Subspace index beyond the declared feature count.
    std::istringstream is(
        "hddpred-forest v1\nfeatures 2\ntrees 1\nsubspace 0 7\n");
    EXPECT_THROW(forest::RandomForest::load(is), DataError);
  }
}

TEST(MlpIo, RoundTripsPredictions) {
  const auto m = random_matrix(5, 3, 500);
  ann::MlpConfig cfg;
  cfg.hidden = 6;
  cfg.epochs = 40;
  ann::MlpModel model;
  model.fit(m, cfg);

  std::ostringstream os;
  model.save(os);
  std::istringstream is(os.str());
  const auto back = ann::MlpModel::load(is);
  EXPECT_EQ(back.num_features(), 3);
  EXPECT_EQ(back.hidden_units(), 6);

  Rng rng(6);
  std::vector<float> x(3);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.uniform(0, 100));
    EXPECT_DOUBLE_EQ(back.predict(x), model.predict(x));
  }
}

TEST(MlpIo, RejectsMalformedInput) {
  {
    std::istringstream is("garbage\n");
    EXPECT_THROW(ann::MlpModel::load(is), DataError);
  }
  {
    std::istringstream is("hddpred-mlp v1\ninputs 0 hidden 3\n");
    EXPECT_THROW(ann::MlpModel::load(is), DataError);
  }
  {
    std::istringstream is("hddpred-mlp v1\ninputs 2 hidden 2\nmin 1 2\n");
    EXPECT_THROW(ann::MlpModel::load(is), DataError);  // truncated
  }
}

// A hostile header may declare any size it likes; load() must reject it
// with ParseError *before* reserving storage for the declared count, so
// none of these (which announce gigabytes) can move the process RSS.
TEST(LoadLimits, HostileDeclaredSizesAreRejectedBeforeAllocation) {
  {
    std::istringstream is(
        "hddpred-tree v1\ntask classification\nfeatures 1\n"
        "nodes 4000000000\n");
    EXPECT_THROW(tree::DecisionTree::load(is), ParseError);
  }
  {
    std::istringstream is(
        "hddpred-tree v1\ntask classification\nfeatures 100000\nnodes 1\n");
    EXPECT_THROW(tree::DecisionTree::load(is), ParseError);
  }
  {
    std::istringstream is(
        "hddpred-forest v1\nfeatures 2\ntrees 4000000000\n");
    EXPECT_THROW(forest::RandomForest::load(is), ParseError);
  }
  {
    std::istringstream is("hddpred-forest v1\nfeatures 100000\ntrees 1\n");
    EXPECT_THROW(forest::RandomForest::load(is), ParseError);
  }
  {
    std::istringstream is("hddpred-mlp v1\ninputs 1000000 hidden 1\n");
    EXPECT_THROW(ann::MlpModel::load(is), ParseError);
  }
  {
    std::istringstream is("hddpred-mlp v1\ninputs 1 hidden 1000000\n");
    EXPECT_THROW(ann::MlpModel::load(is), ParseError);
  }
  {
    // Each width passes on its own; the w1 product (2^30 doubles) must not.
    std::istringstream is("hddpred-mlp v1\ninputs 32768 hidden 32768\n");
    EXPECT_THROW(ann::MlpModel::load(is), ParseError);
  }
}

TEST(LoadLimits, ParseErrorCarriesFieldAndSizes) {
  std::istringstream is(
      "hddpred-tree v1\ntask classification\nfeatures 1\nnodes 9999999\n");
  try {
    tree::DecisionTree::load(is);
    FAIL() << "load() accepted a hostile node count";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.field(), "tree nodes");
    EXPECT_EQ(e.requested(), 9999999u);
    EXPECT_EQ(e.limit(), tree::kMaxLoadNodes);
  }
  // ParseError is a DataError, so every existing catch site still works.
  std::istringstream again(
      "hddpred-tree v1\ntask classification\nfeatures 1\nnodes 9999999\n");
  EXPECT_THROW(tree::DecisionTree::load(again), DataError);
}

TEST(MlpIo, SaveRequiresTraining) {
  ann::MlpModel model;
  std::ostringstream os;
  EXPECT_THROW(model.save(os), ConfigError);
}

// A structurally valid tree the static verifier rejects: the nested split
// at 20 is dead under the root's x < 10 constraint, leaving node 3
// unreachable.
const char* kFlaggedTree =
    "hddpred-tree v1\ntask classification\nfeatures 1\nnodes 5\n"
    "1 4 0 10 0 1 10 0\n"
    "2 3 0 20 0 1 5 0\n"
    "-1 -1 -1 0 0.5 1 3 0\n"
    "-1 -1 -1 0 -0.5 1 2 0\n"
    "-1 -1 -1 0 -1 1 5 0\n";

TEST(VerifyOnLoad, StrictModeRejectsFlaggedTree) {
  std::istringstream is(kFlaggedTree);
  core::LoadOptions opt;
  opt.verify = core::VerifyMode::kStrict;
  EXPECT_THROW(core::load_tree(is, opt), DataError);
}

TEST(VerifyOnLoad, WarnModeStillLoadsFlaggedTree) {
  for (const auto mode : {core::VerifyMode::kWarn, core::VerifyMode::kOff}) {
    std::istringstream is(kFlaggedTree);
    core::LoadOptions opt;
    opt.verify = mode;
    const auto t = core::load_tree(is, opt);
    EXPECT_EQ(t.node_count(), 5u);
  }
}

TEST(VerifyOnLoad, StrictModeAcceptsCleanTree) {
  const auto m = random_matrix(9, 4, 400);
  tree::DecisionTree t;
  t.fit(m, tree::Task::kClassification, tree::TreeParams{});
  std::ostringstream os;
  t.save(os);
  std::istringstream is(os.str());
  core::LoadOptions opt;
  opt.verify = core::VerifyMode::kStrict;
  const auto back = core::load_tree(is, opt);
  EXPECT_EQ(back.node_count(), t.node_count());
}

TEST(AnyModelIo, SniffsEveryHeader) {
  const auto m = random_matrix(11, 3, 400);

  tree::DecisionTree t;
  t.fit(m, tree::Task::kClassification, tree::TreeParams{});
  std::ostringstream tos;
  t.save(tos);
  std::istringstream tis(tos.str());
  const auto any_tree = core::load_model(tis, {core::VerifyMode::kOff, {}});
  EXPECT_STREQ(core::model_kind_name(any_tree), "tree");
  EXPECT_TRUE(std::holds_alternative<tree::DecisionTree>(any_tree));
  EXPECT_EQ(core::model_num_features(any_tree), 3);

  forest::RandomForest f;
  forest::ForestConfig fc;
  fc.n_trees = 5;
  f.fit(m, tree::Task::kClassification, fc);
  std::ostringstream fos;
  f.save(fos);
  std::istringstream fis(fos.str());
  const auto any_forest = core::load_model(fis, {core::VerifyMode::kOff, {}});
  EXPECT_STREQ(core::model_kind_name(any_forest), "forest");
  EXPECT_EQ(core::model_num_features(any_forest), 3);

  ann::MlpModel mlp;
  ann::MlpConfig mc;
  mc.hidden = 4;
  mc.epochs = 5;
  mlp.fit(m, mc);
  std::ostringstream mos;
  mlp.save(mos);
  std::istringstream mis(mos.str());
  const auto any_mlp = core::load_model(mis, {core::VerifyMode::kOff, {}});
  EXPECT_STREQ(core::model_kind_name(any_mlp), "mlp");
  EXPECT_EQ(core::model_num_features(any_mlp), 3);
}

TEST(AnyModelIo, RejectsUnknownHeader) {
  std::istringstream is("hddpred-quantum v7\n");
  EXPECT_THROW(core::load_model(is), DataError);
}

TEST(AnyModelIo, NanMlpWeightLoadsAndFailsStrict) {
  // strtod-based parsing lets a poisoned model load so the verifier can
  // name the defect; strict mode then refuses it.
  const std::string text =
      "hddpred-mlp v1\ninputs 1 hidden 1\nmin 0\nscale 1\n"
      "w1 nan\nb1 0\nw2 1\nb2 0\n";
  {
    std::istringstream is(text);
    const auto any = core::load_model(is, {core::VerifyMode::kOff, {}});
    EXPECT_STREQ(core::model_kind_name(any), "mlp");
  }
  {
    std::istringstream is(text);
    core::LoadOptions opt;
    opt.verify = core::VerifyMode::kStrict;
    EXPECT_THROW(core::load_model(is, opt), DataError);
  }
}

}  // namespace
}  // namespace hdd
