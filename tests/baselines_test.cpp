// Tests for src/baselines: the related-work detectors — firmware
// thresholds, naive Bayes, Mahalanobis distance, and the rank-sum detector.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

#include "baselines/mahalanobis.h"
#include "baselines/naive_bayes.h"
#include "baselines/ranksum_detector.h"
#include "baselines/threshold.h"
#include "data/split.h"
#include "sim/generator.h"

namespace hdd::baselines {
namespace {

data::DataMatrix make_matrix(const std::vector<std::vector<float>>& xs,
                             const std::vector<float>& ys) {
  data::DataMatrix m(static_cast<int>(xs[0].size()));
  for (std::size_t i = 0; i < xs.size(); ++i) m.add_row(xs[i], ys[i], 1.0f);
  return m;
}

// Good blob at 100, failed blob at 60 on feature 0; feature 1 is noise.
data::DataMatrix blob_matrix(std::uint64_t seed, int n_good, int n_failed) {
  Rng rng(seed);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < n_good; ++i) {
    xs.push_back({static_cast<float>(rng.normal(100, 3)),
                  static_cast<float>(rng.normal(50, 10))});
    ys.push_back(1.0f);
  }
  for (int i = 0; i < n_failed; ++i) {
    xs.push_back({static_cast<float>(rng.normal(60, 5)),
                  static_cast<float>(rng.normal(50, 10))});
    ys.push_back(-1.0f);
  }
  return make_matrix(xs, ys);
}

TEST(ThresholdConfig, Validation) {
  ThresholdConfig c;
  c.quantile = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
  c.quantile = 0.6;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(ThresholdConfig{}.validate());
}

TEST(Threshold, LearnsFromGoodRowsOnly) {
  const auto m = blob_matrix(1, 2000, 100);
  ThresholdConfig cfg;
  cfg.quantile = 0.001;
  cfg.margin_iqr = 0.0;  // isolate the quantile logic
  cfg.margin_abs = 0.0;
  ThresholdDetector det;
  det.fit(m, cfg);
  ASSERT_TRUE(det.trained());
  // Threshold sits below the good blob but above the failed blob.
  EXPECT_LT(det.lower_thresholds()[0], 95.0f);
  EXPECT_GT(det.lower_thresholds()[0], 70.0f);
  // Classification follows.
  EXPECT_EQ(det.predict_label(std::vector<float>{100, 50}), 1);
  EXPECT_EQ(det.predict_label(std::vector<float>{60, 50}), -1);
}

TEST(Threshold, ConservativeQuantileMeansFewAlarms) {
  const auto m = blob_matrix(2, 3000, 50);
  ThresholdConfig tight;
  tight.quantile = 1e-4;
  tight.margin_iqr = tight.margin_abs = 0.0;
  ThresholdConfig loose;
  loose.quantile = 0.05;
  loose.margin_iqr = loose.margin_abs = 0.0;
  ThresholdDetector a, b;
  a.fit(m, tight);
  b.fit(m, loose);
  // The conservative detector's trip point is strictly lower.
  EXPECT_LT(a.lower_thresholds()[0], b.lower_thresholds()[0]);
}

TEST(Threshold, IncreasingFeaturesTripOnUpperTail) {
  Rng rng(3);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back({static_cast<float>(rng.normal(10, 2))});
    ys.push_back(1.0f);
  }
  ThresholdConfig cfg;
  cfg.margin_iqr = cfg.margin_abs = 0.0;
  cfg.increasing_features = {0};
  ThresholdDetector det;
  det.fit(make_matrix(xs, ys), cfg);
  EXPECT_EQ(det.predict_label(std::vector<float>{10}), 1);
  EXPECT_EQ(det.predict_label(std::vector<float>{100}), -1);  // counter blew up
  EXPECT_EQ(det.predict_label(std::vector<float>{0}), 1);     // low is fine
}

TEST(Threshold, SafetyMarginMakesFirmwareConservative) {
  // With the default margins, the trip point sits far below anything the
  // good population reports — the firmware regime of Section II.
  const auto m = blob_matrix(12, 2000, 0);
  ThresholdDetector det;
  det.fit(m, ThresholdConfig{});
  EXPECT_LT(det.lower_thresholds()[0], 60.0f);
  // A mildly degraded reading does not trip; a catastrophic one does.
  EXPECT_EQ(det.predict_label(std::vector<float>{80, 50}), 1);
  EXPECT_EQ(det.predict_label(std::vector<float>{20, 50}), -1);
}

TEST(Threshold, RejectsBadIncreasingIndex) {
  const auto m = blob_matrix(4, 100, 10);
  ThresholdConfig cfg;
  cfg.increasing_features = {5};
  ThresholdDetector det;
  EXPECT_THROW(det.fit(m, cfg), ConfigError);
}

TEST(NaiveBayes, SeparatesBlobs) {
  const auto m = blob_matrix(5, 1000, 1000);
  NaiveBayes nb;
  nb.fit(m);
  ASSERT_TRUE(nb.trained());
  EXPECT_GT(nb.predict(std::vector<float>{100, 50}), 0.5);
  EXPECT_LT(nb.predict(std::vector<float>{60, 50}), -0.5);
  // Margin bounded.
  EXPECT_LE(nb.predict(std::vector<float>{100, 50}), 1.0);
  EXPECT_GE(nb.predict(std::vector<float>{60, 50}), -1.0);
}

TEST(NaiveBayes, PriorsShiftTheBoundary) {
  // Same blobs, but failed samples are rare: the midpoint leans good.
  const auto balanced = blob_matrix(6, 1000, 1000);
  const auto skewed = blob_matrix(6, 1000, 20);
  NaiveBayes nb_bal, nb_skew;
  nb_bal.fit(balanced);
  nb_skew.fit(skewed);
  const std::vector<float> midpoint{80, 50};
  EXPECT_GT(nb_skew.predict(midpoint), nb_bal.predict(midpoint));
}

TEST(NaiveBayes, RequiresBothClasses) {
  Rng rng(7);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back({static_cast<float>(rng.uniform())});
    ys.push_back(1.0f);
  }
  NaiveBayes nb;
  EXPECT_THROW(nb.fit(make_matrix(xs, ys)), ConfigError);
}

TEST(NaiveBayes, VarianceFloorPreventsDegeneracy) {
  // A constant feature would give zero variance without the floor.
  const auto m = make_matrix({{5, 1}, {5, 2}, {5, 10}, {5, 11}},
                             {1, 1, -1, -1});
  NaiveBayes nb;
  nb.fit(m);
  EXPECT_EQ(nb.predict_label(std::vector<float>{5, 1.5f}), 1);
  EXPECT_EQ(nb.predict_label(std::vector<float>{5, 10.5f}), -1);
}

TEST(Mahalanobis, DistanceIsZeroAtTheMeanAndGrows) {
  const auto m = blob_matrix(8, 3000, 0);
  MahalanobisDetector det;
  det.fit(m);
  ASSERT_TRUE(det.trained());
  const double at_mean = det.distance2(std::vector<float>{100, 50});
  const double far_away = det.distance2(std::vector<float>{60, 50});
  EXPECT_LT(at_mean, 1.0);
  EXPECT_GT(far_away, 50.0);
}

TEST(Mahalanobis, AccountsForCorrelation) {
  // Strongly correlated features: a point off the correlation ridge is far
  // even when both marginals look typical.
  Rng rng(9);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 4000; ++i) {
    const double a = rng.normal(0, 10);
    const double b = a + rng.normal(0, 1);  // b ~ a
    xs.push_back({static_cast<float>(a), static_cast<float>(b)});
    ys.push_back(1.0f);
  }
  MahalanobisDetector det;
  det.fit(make_matrix(xs, ys));
  const double on_ridge = det.distance2(std::vector<float>{8, 8});
  const double off_ridge = det.distance2(std::vector<float>{8, -8});
  EXPECT_GT(off_ridge, 20.0 * on_ridge);
}

TEST(Mahalanobis, PredictMarginRespectsThreshold) {
  const auto m = blob_matrix(10, 3000, 50);
  MahalanobisDetector det;
  MahalanobisConfig cfg;
  cfg.quantile = 0.01;
  det.fit(m, cfg);
  EXPECT_GT(det.predict(std::vector<float>{100, 50}), 0.0);
  EXPECT_EQ(det.predict_label(std::vector<float>{60, 50}), -1);
}

TEST(Mahalanobis, NeedsEnoughGoodRows) {
  const auto m = make_matrix({{1, 2}, {3, 4}}, {1, 1});
  MahalanobisDetector det;
  EXPECT_THROW(det.fit(m), ConfigError);
}

TEST(RankSumConfig, Validation) {
  RankSumConfig c;
  c.window_samples = 2;
  EXPECT_THROW(c.validate(), ConfigError);
  c = RankSumConfig{};
  c.reference_size = 5;
  EXPECT_THROW(c.validate(), ConfigError);
  c = RankSumConfig{};
  c.z_critical = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(RankSumDetector, DetectsDeterioratingDriveNotHealthyOne) {
  // Reference population around 100 on one feature.
  Rng rng(11);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back({static_cast<float>(rng.normal(100, 4))});
    ys.push_back(1.0f);
  }
  // Matrix layout must match the feature set; use a single-level feature.
  const smart::FeatureSet fs{
      "one", {{smart::Attr::kSeekErrorRate, 0}}};
  RankSumConfig cfg;
  cfg.window_samples = 12;
  // Continuous (tie-free) values cap |z| at ~6 for a 12-sample window, so
  // the fleet-calibrated default critical value is out of reach here.
  cfg.z_critical = 5.0;
  RankSumDetector det;
  det.fit(make_matrix(xs, ys), fs, cfg);
  ASSERT_TRUE(det.trained());

  auto make_drive = [&](bool deteriorate) {
    smart::DriveRecord d;
    d.failed = deteriorate;
    Rng noise(deteriorate ? 21u : 22u);
    for (int h = 0; h < 120; ++h) {
      smart::Sample s;
      s.hour = h;
      double level = 100.0;
      if (deteriorate && h > 60) level -= (h - 60) * 0.8;  // ramp down
      s.set(smart::Attr::kSeekErrorRate,
            static_cast<float>(level + noise.normal(0, 4)));
      d.samples.push_back(s);
    }
    if (deteriorate) d.fail_hour = 119;
    return d;
  };

  const auto healthy = det.detect(make_drive(false));
  EXPECT_FALSE(healthy.alarmed);
  const auto failing = det.detect(make_drive(true));
  ASSERT_TRUE(failing.alarmed);
  EXPECT_GT(failing.alarm_hour, 60);  // after deterioration starts
}

TEST(RankSumDetector, EvaluateOnSyntheticFleet) {
  auto config = sim::paper_fleet_config(0.02, 5);
  config.families.resize(1);
  const auto fleet = sim::generate_fleet_window(config, 0, 1);
  const auto split = data::split_dataset(fleet, {});
  data::TrainingConfig tc;
  tc.features = smart::stat13_features();
  tc.failed_prior = 0.0;
  tc.loss_false_alarm = 1.0;
  const auto matrix = data::build_training_matrix(fleet, split, tc);

  RankSumDetector det;
  det.fit(matrix, tc.features, RankSumConfig{});
  const auto r = det.evaluate(fleet, split);
  EXPECT_GT(r.n_good, 0u);
  EXPECT_GT(r.n_failed, 0u);
  EXPECT_GT(r.fdr(), 0.3);  // the literature's mid-range detection
  EXPECT_LT(r.far(), 0.25);
}

}  // namespace
}  // namespace hdd::baselines
