// Span-tracing tests (ctest label: obs; TSan-clean by requirement).
//
// Covers the lock-free per-thread rings (wraparound retention, torn-slot
// discipline under 8 concurrent writers racing a snapshotting reader),
// span context propagation (nesting, WithTraceContext across threads,
// current_trace_id), the disabled path, the slow-span tail-sampling ring,
// Chrome trace_event JSON rendering (validated with a strict JSON
// checker) and the async-signal-safe flight-recorder dump. The global
// tracer state persists across tests in this binary, so every test tags
// its spans with a unique name literal and filters the snapshot by it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "json_lite.h"
#include "obs/trace.h"

namespace hdd::obs {
namespace {

namespace fs = std::filesystem;

// Spans from the merged snapshot carrying a given name literal.
std::vector<SpanView> named(const std::vector<SpanView>& all,
                            std::string_view name) {
  std::vector<SpanView> out;
  for (const SpanView& s : all) {
    if (s.name != nullptr && name == s.name) out.push_back(s);
  }
  return out;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::global().set_enabled(true); }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().set_slow_threshold_ns(0);  // slow log back off
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  Tracer::global().set_enabled(false);
  {
    const ScopedSpan span("trace_test_disabled");
    record_child_span("trace_test_disabled", trace_now_ticks(),
                      trace_now_ticks());
  }
  const auto spans =
      named(Tracer::global().snapshot(0), "trace_test_disabled");
  EXPECT_TRUE(spans.empty());
}

TEST_F(TraceTest, SpanCarriesIdsNameAndArg) {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  {
    const ScopedSpan span("trace_test_basic", "answer", 42);
    ASSERT_TRUE(span.active());
    trace_id = span.trace_id();
    span_id = span.span_id();
    EXPECT_NE(trace_id, 0u);
    EXPECT_NE(span_id, 0u);
    EXPECT_EQ(current_trace_id(), trace_id);
  }
  EXPECT_EQ(current_trace_id(), 0u);  // context restored

  const auto spans = named(Tracer::global().snapshot(0), "trace_test_basic");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, trace_id);
  EXPECT_EQ(spans[0].span_id, span_id);
  EXPECT_EQ(spans[0].parent_id, 0u);  // a root
  ASSERT_NE(spans[0].arg_name, nullptr);
  EXPECT_EQ(std::string_view(spans[0].arg_name), "answer");
  EXPECT_EQ(spans[0].arg, 42u);
}

TEST_F(TraceTest, NestedSpansShareTraceAndChainParents) {
  std::uint64_t outer_span = 0;
  std::uint64_t outer_trace = 0;
  {
    const ScopedSpan outer("trace_test_parent");
    outer_span = outer.span_id();
    outer_trace = outer.trace_id();
    const ScopedSpan inner("trace_test_child");
    EXPECT_EQ(inner.trace_id(), outer_trace);
    record_child_span("trace_test_interval", trace_now_ticks(),
                      trace_now_ticks(), "k", 7);
  }
  const auto all = Tracer::global().snapshot(0);
  const auto children = named(all, "trace_test_child");
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0].trace_id, outer_trace);
  EXPECT_EQ(children[0].parent_id, outer_span);
  // The explicit-interval child hangs off whatever span was current.
  const auto intervals = named(all, "trace_test_interval");
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].trace_id, outer_trace);
  EXPECT_NE(intervals[0].parent_id, 0u);
}

TEST_F(TraceTest, WithTraceContextCarriesTraceAcrossThreads) {
  std::uint64_t root_trace = 0;
  std::uint64_t root_span = 0;
  {
    const ScopedSpan root("trace_test_xroot");
    root_trace = root.trace_id();
    root_span = root.span_id();
    const TraceContext ctx = current_trace_context();
    std::thread worker([ctx] {
      EXPECT_EQ(current_trace_id(), 0u);  // fresh thread, no context
      const WithTraceContext adopt(ctx);
      const ScopedSpan span("trace_test_xworker");
      EXPECT_EQ(span.trace_id(), ctx.trace_id);
    });
    worker.join();
  }
  const auto spans =
      named(Tracer::global().snapshot(0), "trace_test_xworker");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, root_trace);
  EXPECT_EQ(spans[0].parent_id, root_span);
}

TEST_F(TraceTest, RingWrapKeepsNewestSpans) {
  constexpr std::uint64_t kSpans = trace_detail::kRingSlots + 904;
  for (std::uint64_t i = 0; i < kSpans; ++i) {
    const ScopedSpan span("trace_test_wrap", "i", i);
  }
  const auto spans = named(Tracer::global().snapshot(0), "trace_test_wrap");
  EXPECT_LE(spans.size(), trace_detail::kRingSlots);
  EXPECT_GT(spans.size(), trace_detail::kRingSlots / 2);  // mostly retained
  std::uint64_t min_arg = ~0ull;
  std::uint64_t max_arg = 0;
  for (const SpanView& s : spans) {
    min_arg = std::min(min_arg, s.arg);
    max_arg = std::max(max_arg, s.arg);
  }
  EXPECT_EQ(max_arg, kSpans - 1);  // the newest span survived the wrap
  EXPECT_GT(min_arg, 0u);         // the oldest did not
}

TEST_F(TraceTest, ConcurrentWritersAndSnapshotsAreClean) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const ScopedSpan outer("trace_test_mt", "i", i);
        const ScopedSpan inner("trace_test_mt_inner");
      }
    });
  }
  // Snapshot continuously while the writers race: the reader must never
  // see a torn slot as anything but an absent span.
  for (int round = 0; round < 50; ++round) {
    const auto spans = Tracer::global().snapshot(0);
    for (const SpanView& s : named(spans, "trace_test_mt")) {
      EXPECT_NE(s.span_id, 0u);
      EXPECT_LT(s.arg, kPerThread);
    }
  }
  for (std::thread& w : writers) w.join();

  const auto spans = named(Tracer::global().snapshot(0), "trace_test_mt");
  std::set<std::uint32_t> tids;
  for (const SpanView& s : spans) tids.insert(s.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  // kPerThread < kRingSlots / 2, so every outer+inner pair fit their ring.
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(TraceTest, SlowRingRetainsSlowSpansAcrossWrap) {
  Tracer::global().set_slow_threshold_ns(1'000'000);  // 1 ms
  // A synthetic monster span: far over any plausible 1 ms in ticks.
  const std::uint64_t t0 = trace_now_ticks();
  const std::uint64_t id = new_trace_id();
  record_span("trace_test_slow", id, id, 0, t0, t0 + (1ull << 40));
  // Lap the thread ring so the only surviving copy is the slow ring's.
  for (std::uint64_t i = 0; i < trace_detail::kRingSlots + 32; ++i) {
    const ScopedSpan filler("trace_test_slow_filler");
  }
  const auto spans = named(Tracer::global().snapshot(0), "trace_test_slow");
  ASSERT_FALSE(spans.empty());
  bool from_slow_ring = false;
  for (const SpanView& s : spans) from_slow_ring |= s.slow;
  EXPECT_TRUE(from_slow_ring);
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  {
    const ScopedSpan span("trace_test_json", "bytes", 123);
  }
  const std::string json = Tracer::global().render_chrome_json(0);
  EXPECT_TRUE(testjson::json_valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_test_json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":123"), std::string::npos);
}

TEST_F(TraceTest, WindowFilterDropsOldSpans) {
  {
    const ScopedSpan span("trace_test_window");
  }
  // A 1 ms window queried well after the span ended excludes it; the
  // full window includes it.
  EXPECT_FALSE(named(Tracer::global().snapshot(0), "trace_test_window")
                   .empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(named(Tracer::global().snapshot(1), "trace_test_window")
                  .empty());
}

TEST_F(TraceTest, FlightDumpWritesValidChromeJson) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("hdd_trace_flight_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    const ScopedSpan span("trace_test_flight", "n", 5);
  }
  Tracer::global().set_flight_dir(dir.string());
  dump_flight_recorder("unit-test");
  Tracer::global().set_flight_dir("");

  const fs::path file = dir / ("flight-" + std::to_string(::getpid()) +
                               ".json");
  ASSERT_TRUE(fs::exists(file));
  std::ifstream is(file);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string json = buf.str();
  EXPECT_TRUE(testjson::json_valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"flightReason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_test_flight\""), std::string::npos);
  fs::remove_all(dir);
}

TEST_F(TraceTest, FlightDumpWithoutDirIsANoOp) {
  Tracer::global().set_flight_dir("");
  dump_flight_recorder("nowhere");  // must not crash or write anywhere
}

}  // namespace
}  // namespace hdd::obs
