// Cross-cutting property tests: each checks an implementation against an
// independent reference — a brute-force re-implementation, an algebraic
// identity, or a Monte Carlo estimate.
#include <gtest/gtest.h>

#include <cmath>

#include "ann/mlp.h"
#include "common/rng.h"
#include "eval/detection.h"
#include "forest/adaboost.h"
#include "forest/random_forest.h"
#include "reliability/markov.h"
#include "reliability/raid.h"
#include "stats/nonparametric.h"
#include "tree/tree.h"

namespace hdd {
namespace {

// --- Voting detector vs a brute-force reference ----------------------------

// Reference implementation: for every time point, recount the window from
// scratch (the production code maintains a sliding window incrementally).
eval::DriveOutcome vote_reference(const eval::DriveScores& s,
                                  const eval::VoteConfig& cfg) {
  eval::DriveOutcome out;
  const std::size_t n = s.outputs.size();
  const auto want = static_cast<std::size_t>(cfg.voters);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t w = std::min(i + 1, want);
    if (w < want && i + 1 < n) continue;
    std::size_t bad = 0;
    double sum = 0.0;
    for (std::size_t j = i + 1 - w; j <= i; ++j) {
      if (s.outputs[j] < 0.0f) ++bad;
      sum += s.outputs[j];
    }
    const bool alarm = cfg.average_mode
                           ? sum / static_cast<double>(w) < cfg.threshold
                           : 2 * bad > w;
    if (alarm) {
      out.alarmed = true;
      out.alarm_hour = s.hours[i];
      return out;
    }
  }
  return out;
}

class VotingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VotingProperty, MatchesBruteForceOnRandomSequences) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    eval::DriveScores s;
    const auto len = rng.uniform_int(40);
    for (std::size_t i = 0; i < len; ++i) {
      s.outputs.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      s.hours.push_back(static_cast<std::int64_t>(i * 2));
    }
    eval::VoteConfig cfg;
    cfg.voters = 1 + static_cast<int>(rng.uniform_int(15));
    cfg.average_mode = rng.chance(0.5);
    cfg.threshold = rng.uniform(-0.5, 0.5);

    const auto fast = eval::vote_drive(s, cfg);
    const auto slow = vote_reference(s, cfg);
    ASSERT_EQ(fast.alarmed, slow.alarmed)
        << "trial " << trial << " len " << len << " N " << cfg.voters;
    if (fast.alarmed) {
      ASSERT_EQ(fast.alarm_hour, slow.alarm_hour) << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VotingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Tree: integer weights == replicated rows -------------------------------

TEST(TreeWeightProperty, IntegerWeightsEquivalentToReplication) {
  Rng rng(42);
  data::DataMatrix weighted(2), replicated(2);
  for (int i = 0; i < 300; ++i) {
    const std::vector<float> row{static_cast<float>(rng.uniform()),
                                 static_cast<float>(rng.uniform())};
    const float y = rng.chance(0.4 + 0.4 * row[0]) ? 1.0f : -1.0f;
    const int w = 1 + static_cast<int>(rng.uniform_int(3));
    weighted.add_row(row, y, static_cast<float>(w));
    for (int c = 0; c < w; ++c) replicated.add_row(row, y, 1.0f);
  }
  // min_bucket/min_split count raw rows, which differ between the two
  // encodings — disable them so only the weighted statistics matter.
  tree::TreeParams p;
  p.min_split = 2;
  p.min_bucket = 1;
  p.cp = 0.01;
  tree::DecisionTree a, b;
  a.fit(weighted, tree::Task::kClassification, p);
  b.fit(replicated, tree::Task::kClassification, p);
  for (int i = 0; i < 200; ++i) {
    const std::vector<float> x{static_cast<float>(rng.uniform()),
                               static_cast<float>(rng.uniform())};
    EXPECT_NEAR(a.predict(x), b.predict(x), 1e-9);
  }
}

TEST(TreeRegressionWeightProperty, IntegerWeightsEquivalentToReplication) {
  Rng rng(43);
  data::DataMatrix weighted(1), replicated(1);
  for (int i = 0; i < 200; ++i) {
    const std::vector<float> row{static_cast<float>(rng.uniform())};
    const float y = row[0] * 3.0f + static_cast<float>(rng.normal(0, 0.1));
    const int w = 1 + static_cast<int>(rng.uniform_int(3));
    weighted.add_row(row, y, static_cast<float>(w));
    for (int c = 0; c < w; ++c) replicated.add_row(row, y, 1.0f);
  }
  tree::TreeParams p;
  p.min_split = 2;
  p.min_bucket = 1;
  p.cp = 0.01;
  tree::DecisionTree a, b;
  a.fit(weighted, tree::Task::kRegression, p);
  b.fit(replicated, tree::Task::kRegression, p);
  for (int i = 0; i < 100; ++i) {
    const std::vector<float> x{static_cast<float>(rng.uniform())};
    EXPECT_NEAR(a.predict(x), b.predict(x), 1e-6);
  }
}

// --- Tree: prediction respects the stored split structure ------------------

TEST(TreeTraversalProperty, PredictMatchesManualDescent) {
  Rng rng(44);
  data::DataMatrix m(3);
  for (int i = 0; i < 500; ++i) {
    std::vector<float> row{static_cast<float>(rng.uniform()),
                           static_cast<float>(rng.uniform()),
                           static_cast<float>(rng.uniform())};
    m.add_row(row, rng.chance(row[1]) ? 1.0f : -1.0f, 1.0f);
  }
  tree::DecisionTree t;
  tree::TreeParams p;
  p.min_split = 10;
  p.min_bucket = 5;
  t.fit(m, tree::Task::kClassification, p);
  ASSERT_GT(t.node_count(), 1u);

  for (int i = 0; i < 200; ++i) {
    const std::vector<float> x{static_cast<float>(rng.uniform()),
                               static_cast<float>(rng.uniform()),
                               static_cast<float>(rng.uniform())};
    std::int32_t idx = 0;
    while (!t.nodes()[static_cast<std::size_t>(idx)].is_leaf()) {
      const auto& node = t.nodes()[static_cast<std::size_t>(idx)];
      idx = x[static_cast<std::size_t>(node.feature)] < node.threshold
                ? node.left
                : node.right;
    }
    EXPECT_DOUBLE_EQ(t.predict(x),
                     t.nodes()[static_cast<std::size_t>(idx)].value);
  }
}

// --- predict_batch is bit-identical to scalar predict ------------------------

// The FleetScorer/evaluate_batch fast paths lean on exact equality between
// the batched and row-at-a-time code paths (same accumulation order, same
// rounding). EXPECT_EQ on doubles below is deliberate: identical, not close.

data::DataMatrix random_rows(Rng& rng, std::size_t rows, std::size_t cols) {
  data::DataMatrix m(static_cast<int>(cols));
  std::vector<float> row(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    m.add_row(row, 0.0f, 1.0f);
  }
  return m;
}

template <typename Model>
void expect_batch_matches_scalar(const Model& model,
                                 const data::DataMatrix& queries,
                                 const char* what) {
  std::vector<double> batch(queries.rows());
  model.predict_batch(queries, batch);
  for (std::size_t r = 0; r < queries.rows(); ++r) {
    ASSERT_EQ(batch[r], model.predict(queries.row(r)))
        << what << " row " << r;
  }
  // The raw row-major span overload is the same code path.
  std::vector<double> raw(queries.rows());
  model.predict_batch(queries.features(), raw);
  for (std::size_t r = 0; r < queries.rows(); ++r) {
    ASSERT_EQ(raw[r], batch[r]) << what << " row " << r;
  }
}

TEST(BatchPredictProperty, BitIdenticalToScalarForEveryModelType) {
  Rng rng(47);
  const std::size_t cols = 5;

  data::DataMatrix cls_train(static_cast<int>(cols));
  data::DataMatrix reg_train(static_cast<int>(cols));
  std::vector<float> row(cols);
  for (int i = 0; i < 600; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const double margin = row[0] + 0.5 * row[1] + rng.normal(0.0, 0.3);
    cls_train.add_row(row, margin < 0.0 ? -1.0f : 1.0f, 1.0f);
    reg_train.add_row(row, static_cast<float>(margin), 1.0f);
  }
  // 257 rows: not a multiple of the trees' internal row block, so the tail
  // block is exercised too.
  const auto queries = random_rows(rng, 257, cols);

  tree::TreeParams params;
  params.min_split = 10;
  params.min_bucket = 5;

  tree::DecisionTree ct;
  ct.fit(cls_train, tree::Task::kClassification, params);
  ASSERT_GT(ct.node_count(), 1u);
  expect_batch_matches_scalar(ct, queries, "CT");

  tree::DecisionTree rt;
  rt.fit(reg_train, tree::Task::kRegression, params);
  ASSERT_GT(rt.node_count(), 1u);
  expect_batch_matches_scalar(rt, queries, "RT");

  forest::ForestConfig fc;
  fc.n_trees = 12;
  fc.tree_params = params;
  forest::RandomForest rf;
  rf.fit(cls_train, tree::Task::kClassification, fc);
  expect_batch_matches_scalar(rf, queries, "RandomForest");

  forest::AdaBoostConfig ac;
  ac.n_rounds = 8;
  forest::AdaBoost ab;
  ab.fit(cls_train, ac);
  expect_batch_matches_scalar(ab, queries, "AdaBoost");

  ann::MlpConfig mc;
  mc.hidden = 7;
  mc.epochs = 40;
  ann::MlpModel mlp;
  mlp.fit(cls_train, mc);
  expect_batch_matches_scalar(mlp, queries, "MLP");
}

TEST(BatchPredictProperty, EmptyBatchIsNoop) {
  Rng rng(48);
  const auto train = [&] {
    data::DataMatrix m(2);
    std::vector<float> row(2);
    for (int i = 0; i < 100; ++i) {
      for (auto& v : row) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      m.add_row(row, row[0] < 0 ? -1.0f : 1.0f, 1.0f);
    }
    return m;
  }();
  tree::DecisionTree t;
  t.fit(train, tree::Task::kClassification, {});
  t.predict_batch(std::span<const float>{}, std::span<double>{});
}

// --- Rank-sum test vs brute-force U statistic --------------------------------

TEST(RankSumProperty, MatchesBruteForceUStatistic) {
  Rng rng(45);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs, ys;
    const auto nx = 3 + rng.uniform_int(40);
    const auto ny = 3 + rng.uniform_int(40);
    for (std::size_t i = 0; i < nx; ++i) {
      xs.push_back(std::round(rng.uniform(0, 20)));  // force ties
    }
    for (std::size_t i = 0; i < ny; ++i) {
      ys.push_back(std::round(rng.uniform(0, 20)));
    }
    // Brute force: U = #pairs (x > y) + 0.5 #ties; W = U + nx(nx+1)/2.
    double u = 0.0;
    for (double x : xs) {
      for (double y : ys) {
        if (x > y) u += 1.0;
        else if (x == y) u += 0.5;
      }
    }
    const double w = u + static_cast<double>(nx * (nx + 1)) / 2.0;
    const double mean_w =
        static_cast<double>(nx) * static_cast<double>(nx + ny + 1) / 2.0;
    const auto result = stats::rank_sum_test(xs, ys);
    // The production z must have the same sign and reproduce W - E[W]
    // (variance handled by the tie-corrected formula).
    if (std::fabs(w - mean_w) > 1e-9) {
      EXPECT_GT(result.z * (w - mean_w), 0.0) << "trial " << trial;
    } else {
      EXPECT_NEAR(result.z, 0.0, 1e-9);
    }
  }
}

// --- CTMC solver vs Monte Carlo ---------------------------------------------

TEST(MarkovProperty, MeanAbsorptionMatchesMonteCarlo) {
  // A small 3-transient-state chain with competing rates.
  reliability::MarkovChain chain;
  const int a = chain.add_state();
  const int b = chain.add_state();
  const int c = chain.add_state();
  const int f = chain.add_state();
  chain.set_absorbing(f);
  chain.add_transition(a, b, 1.0);
  chain.add_transition(a, c, 0.5);
  chain.add_transition(b, a, 2.0);
  chain.add_transition(b, f, 0.3);
  chain.add_transition(c, f, 0.2);
  chain.add_transition(c, b, 1.0);
  const double exact = chain.mean_time_to_absorption(a);

  // Monte Carlo simulation of the same chain.
  struct Exit {
    int to;
    double rate;
  };
  const std::vector<std::vector<Exit>> exits{
      {{b, 1.0}, {c, 0.5}}, {{a, 2.0}, {f, 0.3}}, {{b, 1.0}, {f, 0.2}}};
  Rng rng(46);
  double total = 0.0;
  const int runs = 20000;
  for (int run = 0; run < runs; ++run) {
    int state = a;
    double t = 0.0;
    while (state != f) {
      double rate_sum = 0.0;
      for (const auto& e : exits[static_cast<std::size_t>(state)]) {
        rate_sum += e.rate;
      }
      t += rng.exponential(rate_sum);
      double pick = rng.uniform(0.0, rate_sum);
      for (const auto& e : exits[static_cast<std::size_t>(state)]) {
        pick -= e.rate;
        if (pick <= 0.0) {
          state = e.to;
          break;
        }
      }
    }
    total += t;
  }
  const double mc = total / runs;
  EXPECT_NEAR(mc / exact, 1.0, 0.05);
}

TEST(RaidCtmcProperty, SingleToleratedFailureMatchesClassicFormulaScan) {
  // k = 0 RAID-5 CTMC vs the closic closed form across a size sweep.
  for (int n : {4, 8, 16, 64, 256}) {
    reliability::RaidPredictionParams p;
    p.n_drives = n;
    p.tolerated_failures = 1;
    p.fdr = 0.0;
    const double ctmc = reliability::mttdl_raid_with_prediction(p);
    const double formula = reliability::mttdl_raid5_no_prediction(
        p.mttf_hours, p.mttr_hours, n);
    EXPECT_NEAR(ctmc / formula, 1.0, 0.05) << "n = " << n;
  }
}

}  // namespace
}  // namespace hdd
