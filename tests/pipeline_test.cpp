// Continuous model-update pipeline tests (ctest label: pipeline).
//
// Covers the retrain scheduler (strategy windows, due/mark triggers), the
// train-and-gate stage (no-data / lint / guardrail rejection, promotion),
// the store-backed UpdatePipeline (journal-first promotion, rejected
// candidates never touch the live scorer, generation restore on restart),
// shadow-scoring divergence counters, hot swap concurrent with live
// scoring (the TSan canary for the RCU slot), a 200-seed kill-during-
// promotion fault sweep, and two drift scenarios: a synthetic fleet whose
// population shifts regime across generations, and a simulator-backed
// cross-family transfer (W incumbent over a small Q datacenter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "core/fleet.h"
#include "core/predictor.h"
#include "core/runtime.h"
#include "core/scorer.h"
#include "core/swappable.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "pipeline/scheduler.h"
#include "sim/generator.h"
#include "sim/profile.h"
#include "store/telemetry_store.h"

namespace hdd::pipeline {
namespace {

namespace fs = std::filesystem;

// Deterministic jitter, a pure function of (drive, hour, salt) — same
// construction as the serve/fault suites.
float hval(std::uint32_t d, std::int64_t h, std::uint32_t salt) {
  std::uint32_t x = d * 2654435761u +
                    static_cast<std::uint32_t>(h) * 40503u + salt * 97u;
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 16;
  return static_cast<float>(x & 0xFFFF) / 32768.0f - 1.0f;  // [-1, 1)
}

smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

// Cleanly separable telemetry: good drives live around x0 = +bias, failed
// drives around x0 = -bias. A classification tree picks the x0 split and
// the validation slice scores FDR 1 / FAR 0, so the default rails pass.
smart::Sample sample_at(std::uint32_t d, std::int64_t h, float bias) {
  smart::Sample s;
  s.hour = h;
  s.set(smart::Attr::kRawReadErrorRate, bias + 0.15f * hval(d, h, 1));
  s.set(smart::Attr::kTemperatureCelsius, hval(d, h, 2));
  return s;
}

smart::DriveRecord make_drive(const std::string& serial, std::uint32_t d,
                              std::int64_t hours, float bias,
                              bool failed = false) {
  smart::DriveRecord rec;
  rec.serial = serial;
  for (std::int64_t h = 0; h < hours; ++h) {
    rec.samples.push_back(sample_at(d, h, bias));
  }
  if (failed) {
    // The training matrix anchors failed rows at fail_hour: fail right
    // after the record ends so the whole window is in range.
    rec.failed = true;
    rec.fail_hour = hours;
  }
  return rec;
}

constexpr std::int64_t kWeek = 168;
constexpr std::uint32_t kGoods = 12;
constexpr std::uint32_t kFaileds = 6;

std::vector<smart::DriveRecord> good_pool(std::int64_t hours = kWeek) {
  std::vector<smart::DriveRecord> out;
  for (std::uint32_t d = 0; d < kGoods; ++d) {
    out.push_back(make_drive("good-" + std::to_string(d), d, hours, 0.8f));
  }
  return out;
}

std::vector<smart::DriveRecord> failed_pool(std::int64_t hours = kWeek) {
  std::vector<smart::DriveRecord> out;
  for (std::uint32_t d = 0; d < kFaileds; ++d) {
    out.push_back(make_drive("failed-" + std::to_string(d), 100 + d, hours,
                             -0.8f, /*failed=*/true));
  }
  return out;
}

PipelineConfig test_config(obs::Registry* reg) {
  PipelineConfig pc;
  pc.trainer = core::paper_ct_config();
  pc.trainer.training.features = two_features();
  pc.trainer.training.good_samples_per_drive = 8;
  pc.trainer.vote.voters = 5;
  pc.metrics = reg;
  return pc;
}

// Fills a fresh store with the good pool's telemetry.
void ingest_goods(store::TelemetryStore& st, std::int64_t hours = kWeek) {
  for (std::uint32_t d = 0; d < kGoods; ++d) {
    const auto id = st.register_drive("good-" + std::to_string(d));
    for (std::int64_t h = 0; h < hours; ++h) {
      st.append(id, sample_at(d, h, 0.8f));
    }
  }
  st.flush();
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kError);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_dir_ = fs::temp_directory_path() /
                (std::string("hdd_pipeline_") + info->name());
    fs::remove_all(base_dir_);
    fs::create_directories(base_dir_);
  }
  void TearDown() override { fs::remove_all(base_dir_); }

  fs::path base_dir_;
};

// ---------------------------------------------------------------------------
// Scheduler: strategy windows and retrain triggers

TEST(TrainingRange, FixedAlwaysTrainsOnWeekOne) {
  EXPECT_EQ(training_range(Strategy::kFixed, 1, 2), std::make_pair(0, 1));
  EXPECT_EQ(training_range(Strategy::kFixed, 4, 9), std::make_pair(0, 1));
}

TEST(TrainingRange, AccumulationGrowsWithTestWeek) {
  EXPECT_EQ(training_range(Strategy::kAccumulation, 1, 2),
            std::make_pair(0, 1));
  EXPECT_EQ(training_range(Strategy::kAccumulation, 1, 9),
            std::make_pair(0, 8));
}

TEST(TrainingRange, ReplacingUsesLastCompletedCycle) {
  // c = 2: before a full cycle completes, everything observed so far.
  EXPECT_EQ(training_range(Strategy::kReplacing, 2, 2), std::make_pair(0, 1));
  const auto r = training_range(Strategy::kReplacing, 2, 7);
  EXPECT_EQ(r.second - r.first, 2);  // exactly one cycle wide
  EXPECT_LE(r.second, 6);            // never includes the test week
}

TEST(Scheduler, HourTriggerFiresOncePerInterval) {
  SchedulerConfig sc;
  sc.retrain_every_hours = kWeek;
  RetrainScheduler s(sc);
  EXPECT_FALSE(s.due(10, kWeek - 1));
  EXPECT_TRUE(s.due(10, kWeek));
  s.mark(10, kWeek);
  EXPECT_FALSE(s.due(20, kWeek + 1));
  EXPECT_TRUE(s.due(20, 2 * kWeek));
}

TEST(Scheduler, SampleTriggerFires) {
  SchedulerConfig sc;
  sc.retrain_every_hours = 0;
  sc.retrain_every_samples = 100;
  RetrainScheduler s(sc);
  EXPECT_FALSE(s.due(99, 5));
  EXPECT_TRUE(s.due(100, 5));
  s.mark(100, 5);
  EXPECT_FALSE(s.due(150, 50));
  EXPECT_TRUE(s.due(200, 50));
}

TEST(Scheduler, FixedStrategyNeverRetrainsAfterMark) {
  SchedulerConfig sc;
  sc.strategy = Strategy::kFixed;
  sc.retrain_every_hours = kWeek;
  RetrainScheduler s(sc);
  EXPECT_TRUE(s.due(10, kWeek));
  s.mark(10, kWeek);
  EXPECT_FALSE(s.due(1000, 100 * kWeek));
}

TEST(Scheduler, WindowHoursMatchesStrategy) {
  SchedulerConfig sc;
  sc.strategy = Strategy::kAccumulation;
  RetrainScheduler s(sc);
  // Telemetry watermark at hour 504 sits inside week 4, making week 4 the
  // test week: accumulation trains on weeks 1..3 = hours [0, 504).
  const auto w = s.window_hours(3 * kWeek);
  EXPECT_EQ(w.first, 0);
  EXPECT_EQ(w.second, 3 * kWeek);
}

// ---------------------------------------------------------------------------
// train_and_gate: every rejection path plus promotion

TEST(Gate, RejectsWhenWindowHoldsNoData) {
  const auto r =
      train_and_gate({}, failed_pool(), 1, test_config(nullptr));
  EXPECT_EQ(r.outcome, Outcome::kRejectedNoData);
  EXPECT_EQ(r.candidate, nullptr);
}

TEST(Gate, RejectsWhenFailedPoolEmpty) {
  const auto r = train_and_gate(good_pool(), {}, 1, test_config(nullptr));
  EXPECT_EQ(r.outcome, Outcome::kRejectedNoData);
  EXPECT_EQ(r.candidate, nullptr);
}

TEST(Gate, LintFindingBlocksPromotion) {
  auto pc = test_config(nullptr);
  // Shrink the admissible leaf range so the +1 good leaves are provably out
  // of range — a deterministic verifier finding.
  pc.verify.value_hi = 0.0;
  const auto r = train_and_gate(good_pool(), failed_pool(), 1, pc);
  EXPECT_EQ(r.outcome, Outcome::kRejectedLint);
  EXPECT_EQ(r.candidate, nullptr);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Gate, GuardrailBreachBlocksPromotion) {
  auto pc = test_config(nullptr);
  pc.guardrail.min_fdr = 1.01;  // unsatisfiable rail
  const auto r = train_and_gate(good_pool(), failed_pool(), 1, pc);
  EXPECT_EQ(r.outcome, Outcome::kRejectedGuardrail);
  EXPECT_EQ(r.candidate, nullptr);
  EXPECT_NE(r.reason.find("min_fdr"), std::string::npos);
}

TEST(Gate, PromotesSeparableCandidate) {
  const auto r =
      train_and_gate(good_pool(), failed_pool(), 1, test_config(nullptr));
  ASSERT_EQ(r.outcome, Outcome::kPromoted) << r.reason;
  ASSERT_NE(r.candidate, nullptr);
  EXPECT_EQ(r.candidate->num_features(), 2);
  EXPECT_GT(r.train_rows, 0u);
  // The pools are cleanly separable, so the held-back slice is perfect.
  EXPECT_EQ(r.val_fdr, 1.0);
  EXPECT_EQ(r.val_far, 0.0);
}

TEST(Gate, SameSeedSameCandidate) {
  const auto pc = test_config(nullptr);
  const auto a = train_and_gate(good_pool(), failed_pool(), 1, pc);
  const auto b = train_and_gate(good_pool(), failed_pool(), 1, pc);
  ASSERT_EQ(a.outcome, Outcome::kPromoted);
  ASSERT_EQ(b.outcome, Outcome::kPromoted);
  std::ostringstream sa, sb;
  a.candidate->save(sa);
  b.candidate->save(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

// ---------------------------------------------------------------------------
// UpdatePipeline over a real store

TEST_F(PipelineTest, PromotionIsJournalFirstAndBumpsGeneration) {
  obs::Registry reg;
  store::TelemetryStore st((base_dir_ / "s").string());
  ingest_goods(st);

  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  core::SwappableScorer slot(seed.candidate, 0);

  auto pc = test_config(&reg);
  UpdatePipeline pipe(slot, st, failed_pool(), pc);
  const auto r = pipe.run_cycle(/*force=*/true);
  ASSERT_EQ(r.outcome, Outcome::kPromoted) << r.reason;
  EXPECT_EQ(r.generation, 1u);
  EXPECT_EQ(slot.generation(), 1u);
  ASSERT_TRUE(st.latest_generation().has_value());
  EXPECT_EQ(st.latest_generation()->generation, 1u);
  // The journaled text is the promoted model, byte for byte.
  std::ostringstream os;
  slot.current()->save(os);
  EXPECT_EQ(st.latest_generation()->model_text, os.str());
  EXPECT_EQ(reg.counter("hdd_pipeline_promotions_total", "").value(), 1u);
  EXPECT_EQ(reg.gauge("hdd_pipeline_generation", "").value(), 1.0);
}

TEST_F(PipelineTest, RejectedCandidateNeverAltersScoring) {
  obs::Registry reg;
  store::TelemetryStore st((base_dir_ / "s").string());
  ingest_goods(st);

  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  core::SwappableScorer slot(seed.candidate, 0);
  const auto incumbent = slot.current();

  auto pc = test_config(&reg);
  pc.guardrail.min_fdr = 1.01;
  UpdatePipeline pipe(slot, st, failed_pool(), pc);
  const auto r = pipe.run_cycle(/*force=*/true);
  EXPECT_EQ(r.outcome, Outcome::kRejectedGuardrail);
  // No swap, no journal record, and the reason counter moved.
  EXPECT_EQ(slot.current(), incumbent);
  EXPECT_EQ(slot.generation(), 0u);
  EXPECT_FALSE(st.latest_generation().has_value());
  EXPECT_EQ(reg.counter("hdd_pipeline_rejections_total", "",
                        {{"reason", "guardrail"}})
                .value(),
            1u);
  EXPECT_EQ(reg.counter("hdd_pipeline_promotions_total", "").value(), 0u);
}

TEST_F(PipelineTest, SkipsWhenSchedulerNotDue) {
  obs::Registry reg;
  store::TelemetryStore st((base_dir_ / "s").string());
  ingest_goods(st);
  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  core::SwappableScorer slot(seed.candidate, 0);

  UpdatePipeline pipe(slot, st, failed_pool(), test_config(&reg));
  ASSERT_EQ(pipe.run_cycle(/*force=*/true).outcome, Outcome::kPromoted);
  // Same watermark, un-forced: nothing is due, nothing trains.
  const auto r = pipe.run_cycle(/*force=*/false);
  EXPECT_EQ(r.outcome, Outcome::kSkipped);
  EXPECT_EQ(slot.generation(), 1u);
  EXPECT_EQ(reg.counter("hdd_pipeline_retrain_cycles_total", "").value(), 1u);
}

TEST_F(PipelineTest, RuntimeRestoresJournaledGenerationOnRestart) {
  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  std::string promoted_text;
  {
    store::TelemetryStore st((base_dir_ / "s").string());
    ingest_goods(st);
    core::SwappableScorer slot(seed.candidate, 0);
    UpdatePipeline pipe(slot, st, failed_pool(), test_config(nullptr));
    ASSERT_EQ(pipe.run_cycle(/*force=*/true).outcome, Outcome::kPromoted);
    std::ostringstream os;
    slot.current()->save(os);
    promoted_text = os.str();
    st.flush();
  }
  // A restart — hot-swappable or not — must score with the promoted
  // generation, not the configured seed model.
  for (const bool swappable : {true, false}) {
    core::FleetRuntimeConfig rc;
    rc.scorer = seed.candidate.get();
    rc.store_dir = (base_dir_ / "s").string();
    rc.features = two_features();
    rc.vote.voters = 5;
    rc.hot_swappable = swappable;
    core::FleetRuntime rt(rc);
    EXPECT_EQ(rt.model_generation(), 1u) << "swappable=" << swappable;
    std::ostringstream os;
    rt.scorer().save(os);
    EXPECT_EQ(os.str(), promoted_text) << "swappable=" << swappable;
  }
}

// ---------------------------------------------------------------------------
// Shadow scoring

// Always votes the opposite sign of the separable goods: every shadow row
// diverges.
class ContrarianScorer final : public core::SampleScorer {
 public:
  double predict(std::span<const float> x) const override {
    return x[0] > 0.0f ? -1.0 : 1.0;
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = predict(xs.subspan(2 * r, 2));
    }
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "contrarian"; }
};

TEST_F(PipelineTest, ShadowCountersTrackDivergence) {
  obs::Registry reg;
  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);

  core::FleetScorerConfig fc;
  fc.features = two_features();
  fc.vote.voters = 5;
  fc.block_rows = 4;
  fc.metrics = &reg;
  core::FleetScorer fleet(*seed.candidate, fc);
  for (std::uint32_t d = 0; d < 4; ++d) {
    fleet.add_drive("good-" + std::to_string(d));
  }

  // No shadow installed: live scoring leaves the counters untouched.
  std::vector<smart::Sample> interval(4);
  for (std::uint32_t d = 0; d < 4; ++d) interval[d] = sample_at(d, 0, 0.8f);
  fleet.observe_samples(interval, 0);
  EXPECT_EQ(fleet.shadow_stats().samples, 0u);

  fleet.set_shadow(std::make_shared<ContrarianScorer>());
  for (std::int64_t h = 1; h <= 10; ++h) {
    for (std::uint32_t d = 0; d < 4; ++d) interval[d] = sample_at(d, h, 0.8f);
    fleet.observe_samples(interval, h);
  }
  const auto sh = fleet.shadow_stats();
  EXPECT_EQ(sh.samples, 40u);
  EXPECT_EQ(sh.divergence, 40u);  // the contrarian disagrees on every row
  EXPECT_GT(sh.vote_flips, 0u);
  EXPECT_EQ(reg.counter("hdd_pipeline_shadow_samples_total", "").value(),
            40u);
  EXPECT_EQ(reg.counter("hdd_pipeline_shadow_divergence_total", "").value(),
            40u);

  // Uninstalling stops shadow scoring; counters freeze.
  fleet.set_shadow(nullptr);
  for (std::uint32_t d = 0; d < 4; ++d) interval[d] = sample_at(d, 11, 0.8f);
  fleet.observe_samples(interval, 11);
  EXPECT_EQ(fleet.shadow_stats().samples, 40u);
}

TEST_F(PipelineTest, ShadowRejectsFeatureWidthMismatch) {
  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  core::FleetScorerConfig fc;
  fc.features = two_features();
  core::FleetScorer fleet(*seed.candidate, fc);
  class OneFeature final : public core::SampleScorer {
   public:
    double predict(std::span<const float>) const override { return 1.0; }
    void predict_batch(std::span<const float>,
                       std::span<double> out) const override {
      for (auto& o : out) o = 1.0;
    }
    int num_features() const override { return 1; }
    std::string summary() const override { return "one"; }
  };
  EXPECT_THROW(fleet.set_shadow(std::make_shared<OneFeature>()), ConfigError);
}

// ---------------------------------------------------------------------------
// Hot swap concurrent with live scoring (TSan canary)

TEST_F(PipelineTest, HotSwapConcurrentWithScoringAndIngest) {
  const auto seed = train_and_gate(good_pool(), failed_pool(), 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  core::SwappableScorer slot(seed.candidate, 0);
  const auto contrarian = std::make_shared<const ContrarianScorer>();

  core::FleetScorerConfig fc;
  fc.features = two_features();
  fc.vote.voters = 5;
  fc.block_rows = 4;
  core::FleetScorer fleet(slot, fc);
  constexpr std::uint32_t kFleet = 8;
  for (std::uint32_t d = 0; d < kFleet; ++d) {
    fleet.add_drive("d-" + std::to_string(d));
  }

  // One controller thread promotes generations and toggles the shadow while
  // the scoring thread streams intervals and per-drive backfills — the
  // exact concurrency the serve daemon runs under TSan.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread controller([&] {
    std::uint64_t gen = 0;
    while (!done.load(std::memory_order_acquire)) {
      ++gen;
      slot.swap(gen % 2 == 0 ? seed.candidate : contrarian, gen);
      fleet.set_shadow(gen % 3 == 0 ? contrarian : nullptr);
      swaps.store(gen, std::memory_order_release);
      std::this_thread::yield();
    }
  });

  // Alternate between the two live paths: even hours arrive as a full
  // fleet interval, odd hours as per-drive ingest batches. Hours stay
  // strictly ascending per drive, as the API requires. Any exception is
  // captured so the controller is always joined before the test reports.
  // Run at least kHours intervals, then keep streaming (on a single-core
  // host the scoring loop can finish before the controller is scheduled
  // even once) until a healthy number of swaps has raced against scoring.
  constexpr std::int64_t kHours = 200;
  constexpr std::int64_t kMaxHours = 200000;
  std::int64_t hours_run = 0;
  std::string error;
  try {
    std::vector<smart::Sample> interval(kFleet);
    for (std::int64_t h = 0;
         h < kHours ||
         (swaps.load(std::memory_order_acquire) < 25 && h < kMaxHours);
         ++h, ++hours_run) {
      if (h % 2 == 0) {
        for (std::uint32_t d = 0; d < kFleet; ++d) {
          interval[d] = sample_at(d, h, d % 2 == 0 ? 0.8f : -0.8f);
        }
        fleet.observe_samples(interval, h);
      } else {
        for (std::uint32_t d = 0; d < kFleet; ++d) {
          const std::vector<smart::Sample> one = {
              sample_at(d, h, d % 2 == 0 ? 0.8f : -0.8f)};
          fleet.ingest_drive(d, one);
        }
      }
    }
  } catch (const std::exception& e) {
    error = e.what();
  }
  done.store(true, std::memory_order_release);
  controller.join();
  ASSERT_TRUE(error.empty()) << "scoring path threw: " << error;

  // Liveness + sanity: every drive kept scoring across the swaps (an
  // alarmed drive freezes its counter, so only a lower bound holds), and
  // alarm state stayed coherent. TSan is the real assertion here.
  for (std::uint32_t d = 0; d < kFleet; ++d) {
    EXPECT_GT(fleet.state(d).samples_seen(), 0) << "drive " << d;
    if (fleet.state(d).alarmed()) {
      EXPECT_GE(fleet.state(d).alarm_hour(), 0) << "drive " << d;
      EXPECT_LT(fleet.state(d).alarm_hour(), hours_run) << "drive " << d;
    }
  }
  EXPECT_GT(slot.generation(), 0u);
}

// ---------------------------------------------------------------------------
// Kill -9 during promotion: 200 seeded crash points

TEST_F(PipelineTest, KillDuringPromotionResumesToJournaledGeneration) {
  // Reference: an unfaulted run's journaled model text (training is a pure
  // function of the store content + config seed).
  std::string ref_text;
  {
    store::TelemetryStore st((base_dir_ / "ref").string());
    ingest_goods(st);
    const auto gate = train_and_gate(good_pool(), failed_pool(), 1,
                                     test_config(nullptr));
    ASSERT_EQ(gate.outcome, Outcome::kPromoted);
    core::SwappableScorer slot(gate.candidate, 0);
    UpdatePipeline pipe(slot, st, failed_pool(), test_config(nullptr));
    ASSERT_EQ(pipe.run_cycle(/*force=*/true).outcome, Outcome::kPromoted);
    ASSERT_TRUE(st.latest_generation().has_value());
    ref_text = st.latest_generation()->model_text;
  }

  // Ops consumed by the setup (ingest) and by one full promotion cycle,
  // measured on a fault-free plan so the crash window can be pinned to the
  // promotion itself.
  std::uint64_t ops_before = 0, ops_total = 0;
  {
    const fs::path dir = base_dir_ / "cal";
    io::FaultEnv fenv(io::Env::posix(), io::FaultPlan{});
    store::StoreOptions so;
    so.env = &fenv;
    store::TelemetryStore st(dir.string(), so);
    ingest_goods(st);
    ops_before = fenv.ops();
    const auto gate = train_and_gate(good_pool(), failed_pool(), 1,
                                     test_config(nullptr));
    core::SwappableScorer slot(gate.candidate, 0);
    UpdatePipeline pipe(slot, st, failed_pool(), test_config(nullptr));
    ASSERT_EQ(pipe.run_cycle(/*force=*/true).outcome, Outcome::kPromoted);
    ops_total = fenv.ops();
  }
  ASSERT_GT(ops_total, ops_before);
  const std::uint64_t span = ops_total - ops_before;

  std::size_t n_seed_model = 0;
  std::size_t n_promoted = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const fs::path dir = base_dir_ / ("s" + std::to_string(seed));
    io::FaultPlan plan;
    plan.seed = seed;
    // Crash points sweep the promotion's own mutating ops (the generation
    // append is dropped or torn — the incumbent survives) and an equal
    // stretch beyond them (the kill lands after the record is durable —
    // the promotion survives). Both sides of the journal-first line.
    plan.crash_at_op = ops_before + 1 + (seed % (2 * span));
    plan.torn_crash = seed % 2 == 0;
    io::FaultEnv fenv(io::Env::posix(), plan);
    bool crashed = false;
    try {
      store::StoreOptions so;
      so.env = &fenv;
      store::TelemetryStore st(dir.string(), so);
      ingest_goods(st);
      const auto gate = train_and_gate(good_pool(), failed_pool(), 1,
                                       test_config(nullptr));
      core::SwappableScorer slot(gate.candidate, 0);
      UpdatePipeline pipe(slot, st, failed_pool(), test_config(nullptr));
      (void)pipe.run_cycle(/*force=*/true);
    } catch (const io::CrashPoint&) {
      crashed = true;  // the simulated kill -9
    }
    ASSERT_TRUE(crashed || fenv.crashed() || plan.crash_at_op > ops_total)
        << "seed " << seed;

    // A fresh process on healthy hardware: recovery must land on exactly
    // one of the two well-defined generations — the seed model (record not
    // yet durable) or generation 1 with the byte-identical promoted model.
    store::TelemetryStore st(dir.string());
    if (st.latest_generation().has_value()) {
      ++n_promoted;
      EXPECT_EQ(st.latest_generation()->generation, 1u) << "seed " << seed;
      EXPECT_EQ(st.latest_generation()->model_text, ref_text)
          << "seed " << seed;
      // The journaled text round-trips into a scorer.
      EXPECT_NE(load_generation_model(st.latest_generation()->model_text),
                nullptr);
    } else {
      ++n_seed_model;
    }
  }
  // The crash schedule must exercise both sides of the journal-first line.
  EXPECT_GT(n_seed_model, 10u);
  EXPECT_GT(n_promoted, 10u);
}

// ---------------------------------------------------------------------------
// Drifting fleet: successive generations track the new regime

TEST_F(PipelineTest, DriftingFleetAdaptsAcrossGenerations) {
  // Week 1 goods live at +0.8; weeks 2-3 the population drifts to -0.3
  // (still healthy, but on the old model's failure side). A replacing
  // strategy retrains on the newest window and the promoted generation
  // stops false-alarming on the drifted regime.
  store::TelemetryStore st((base_dir_ / "s").string());
  for (std::uint32_t d = 0; d < kGoods; ++d) {
    const auto id = st.register_drive("good-" + std::to_string(d));
    for (std::int64_t h = 0; h < 3 * kWeek; ++h) {
      const float bias = h < kWeek ? 0.8f : -0.3f;
      st.append(id, sample_at(d, h, bias));
    }
  }
  st.flush();

  // Failed drives sit at -0.8, below the drifted goods at -0.3; the seed
  // model's split (goods at +0.8 vs fails at -0.8) lands near 0, so the
  // drifted regime falls on its failure side.
  const auto fails = failed_pool();
  const auto seed = train_and_gate(good_pool(), fails, 1,
                                   test_config(nullptr));
  ASSERT_EQ(seed.outcome, Outcome::kPromoted);
  core::SwappableScorer slot(seed.candidate, 0);

  auto pc = test_config(nullptr);
  pc.scheduler.strategy = Strategy::kReplacing;
  pc.scheduler.replace_cycle_weeks = 1;
  UpdatePipeline pipe(slot, st, fails, pc);
  const auto r = pipe.run_cycle(/*force=*/true);
  ASSERT_EQ(r.outcome, Outcome::kPromoted) << r.reason;
  EXPECT_EQ(slot.generation(), 1u);

  // The retrained generation separates drifted goods from failures...
  std::vector<float> drifted = {-0.3f, 0.0f};
  std::vector<float> failing = {-0.8f, 0.0f};
  const auto gen1 = slot.current();
  EXPECT_GT(gen1->predict(drifted), 0.0) << "drifted good misclassified";
  EXPECT_LT(gen1->predict(failing), 0.0);
  // ...where the week-1 incumbent called the drifted regime a failure.
  EXPECT_LT(seed.candidate->predict(drifted), 0.0);
}

// Cross-family drift on the real simulator (paper Section V: families W
// and Q fail differently). A CT incumbent trained on a family-W fleet is
// deployed in front of a *down-sampled* family-Q datacenter — the small-
// population transfer scenario — whose live telemetry fills the store.
// One forced pipeline cycle must retrain from that store, clear the lint
// and guardrail gates against held-back Q drives, and promote; the
// promoted generation must catch at least as many held-out Q failures as
// the W incumbent, under the same voting rules the daemon applies.
TEST_F(PipelineTest, SimCrossFamilyDriftRetrainsFromLiveStore) {
  sim::FleetConfig wcfg;
  wcfg.seed = 33;
  wcfg.sample_interval_hours = 4;  // keep the suite quick
  wcfg.observation_weeks = 5;
  wcfg.failed_record_days = 20;
  wcfg.families.push_back({sim::family_w_profile(), 250, 40});
  const auto w = sim::generate_fleet(wcfg);

  sim::FleetConfig qcfg = wcfg;
  qcfg.seed = 34;
  qcfg.families = {{sim::family_q_profile(), 80, 24}};
  const auto q = sim::generate_fleet(qcfg);

  std::vector<smart::DriveRecord> w_goods, w_fails, q_goods, q_fails;
  for (const auto& d : w.drives) (d.failed ? w_fails : w_goods).push_back(d);
  for (const auto& d : q.drives) (d.failed ? q_fails : q_goods).push_back(d);

  // Half the Q failures feed the retrain pool (the operator's labeled
  // archive); the other half stay held out for the detection comparison.
  const std::size_t half = q_fails.size() / 2;
  const std::vector<smart::DriveRecord> q_pool(q_fails.begin(),
                                               q_fails.begin() + half);
  const std::vector<smart::DriveRecord> q_holdout(q_fails.begin() + half,
                                                  q_fails.end());

  PipelineConfig pc;
  pc.trainer = core::paper_ct_config();  // stat13 features, loss-matrix CT
  pc.scheduler.strategy = Strategy::kAccumulation;

  const auto seed = train_and_gate(w_goods, w_fails,
                                   wcfg.observation_weeks, pc);
  ASSERT_EQ(seed.outcome, Outcome::kPromoted) << seed.reason;
  core::SwappableScorer slot(seed.candidate, 0);

  // The Q datacenter's live telemetry: every good drive's record, as the
  // serve ingest path would have journaled it.
  store::TelemetryStore st((base_dir_ / "s").string());
  for (const auto& g : q_goods) {
    const auto id = st.register_drive(g.serial);
    for (const auto& s : g.samples) st.append(id, s);
  }
  st.flush();

  UpdatePipeline pipe(slot, st, q_pool, pc);
  const auto r = pipe.run_cycle(/*force=*/true);
  ASSERT_EQ(r.outcome, Outcome::kPromoted) << r.reason;
  EXPECT_EQ(slot.generation(), 1u);
  EXPECT_LE(r.val_far, 0.1);  // promoted candidate is quiet on Q goods

  // Detection under the daemon's voting rules: feed each held-out Q
  // failure's record through a fresh FleetScorer and count alarms.
  const auto detections = [&](const core::SampleScorer& model) {
    core::FleetScorerConfig fc;
    fc.features = pc.trainer.training.features;
    fc.vote = pc.trainer.vote;
    core::FleetScorer fleet(model, fc);
    for (std::size_t i = 0; i < q_holdout.size(); ++i) {
      fleet.add_drive(q_holdout[i].serial);
      fleet.ingest_drive(i, q_holdout[i].samples);
    }
    return fleet.alarm_count();
  };
  const auto gen1 = slot.current();
  const std::size_t w_hits = detections(*seed.candidate);
  const std::size_t q_hits = detections(*gen1);
  EXPECT_GE(q_hits, w_hits)
      << "Q-retrained generation must not detect fewer Q failures";
  EXPECT_GE(q_hits, q_holdout.size() / 2)
      << "adapted model misses most held-out Q failures";
}

}  // namespace
}  // namespace hdd::pipeline
