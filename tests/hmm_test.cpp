// Tests for src/baselines/hmm.{h,cpp}: Gaussian HMM training/likelihood
// and the likelihood-ratio failure detector of Zhao et al. [10].
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

#include "baselines/hmm.h"
#include "data/split.h"
#include "sim/generator.h"

namespace hdd::baselines {
namespace {

// Sequences from a two-state switching process: long runs near `lo`, long
// runs near `hi`.
std::vector<std::vector<double>> switching_sequences(std::uint64_t seed,
                                                     int n_seqs, int len,
                                                     double lo, double hi) {
  Rng rng(seed);
  std::vector<std::vector<double>> out;
  for (int s = 0; s < n_seqs; ++s) {
    std::vector<double> seq;
    double level = rng.chance(0.5) ? lo : hi;
    for (int t = 0; t < len; ++t) {
      if (rng.chance(0.05)) level = (level == lo ? hi : lo);
      seq.push_back(level + rng.normal(0.0, 1.0));
    }
    out.push_back(std::move(seq));
  }
  return out;
}

TEST(HmmConfig, Validation) {
  HmmConfig c;
  c.states = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = HmmConfig{};
  c.baum_welch_iters = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = HmmConfig{};
  c.min_variance = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(HmmConfig{}.validate());
}

TEST(GaussianHmm, RequiresUsableSequences) {
  GaussianHmm hmm;
  EXPECT_THROW(hmm.fit({}, HmmConfig{}), ConfigError);
  EXPECT_THROW(hmm.fit({{1.0}}, HmmConfig{}), ConfigError);  // too short
  EXPECT_FALSE(hmm.trained());
}

TEST(GaussianHmm, RecoversTwoStateMeans) {
  const auto seqs = switching_sequences(1, 30, 200, 10.0, 50.0);
  HmmConfig cfg;
  cfg.states = 2;
  GaussianHmm hmm;
  hmm.fit(seqs, cfg);
  ASSERT_TRUE(hmm.trained());
  const auto means = hmm.state_means();
  const double lo = std::min(means[0], means[1]);
  const double hi = std::max(means[0], means[1]);
  EXPECT_NEAR(lo, 10.0, 2.0);
  EXPECT_NEAR(hi, 50.0, 2.0);
}

TEST(GaussianHmm, LikelihoodPrefersInModelData) {
  const auto train = switching_sequences(2, 30, 150, 0.0, 20.0);
  HmmConfig cfg;
  cfg.states = 2;
  GaussianHmm hmm;
  hmm.fit(train, cfg);

  const auto in_model = switching_sequences(3, 1, 100, 0.0, 20.0)[0];
  // Out-of-model: a ramp through unvisited levels.
  std::vector<double> ramp;
  for (int t = 0; t < 100; ++t) ramp.push_back(100.0 + t);
  EXPECT_GT(hmm.mean_log_likelihood(in_model),
            hmm.mean_log_likelihood(ramp) + 1.0);
}

TEST(GaussianHmm, TrainingImprovesLikelihood) {
  const auto seqs = switching_sequences(4, 20, 100, 5.0, 25.0);
  HmmConfig one_iter;
  one_iter.states = 3;
  one_iter.baum_welch_iters = 1;
  one_iter.tol = 0.0;
  HmmConfig many_iters = one_iter;
  many_iters.baum_welch_iters = 30;
  GaussianHmm a, b;
  a.fit(seqs, one_iter);
  b.fit(seqs, many_iters);
  double ll_a = 0.0, ll_b = 0.0;
  for (const auto& s : seqs) {
    ll_a += a.log_likelihood(s);
    ll_b += b.log_likelihood(s);
  }
  EXPECT_GE(ll_b, ll_a - 1e-6);
}

TEST(GaussianHmm, SingleStateIsAPlainGaussian) {
  Rng rng(5);
  std::vector<std::vector<double>> seqs(5);
  for (auto& s : seqs) {
    for (int t = 0; t < 200; ++t) s.push_back(rng.normal(42.0, 3.0));
  }
  HmmConfig cfg;
  cfg.states = 1;
  GaussianHmm hmm;
  hmm.fit(seqs, cfg);
  EXPECT_NEAR(hmm.state_means()[0], 42.0, 0.5);
}

TEST(GaussianHmm, LikelihoodRejectsEmptySequence) {
  const auto seqs = switching_sequences(6, 5, 50, 0.0, 10.0);
  GaussianHmm hmm;
  hmm.fit(seqs, HmmConfig{});
  EXPECT_THROW(hmm.log_likelihood({}), ConfigError);
}

TEST(HmmDetectorConfig, Validation) {
  HmmDetectorConfig c;
  c.window_samples = 2;
  EXPECT_THROW(c.validate(), ConfigError);
  c = HmmDetectorConfig{};
  c.failed_window_hours = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(HmmDetectorConfig{}.validate());
}

TEST(HmmDetector, SeparatesClassesOnSyntheticFleet) {
  auto config = sim::paper_fleet_config(0.02, 9);
  config.families.resize(1);
  const auto fleet = sim::generate_fleet_window(config, 0, 1);
  const auto split = data::split_dataset(fleet, {});

  HmmDetectorConfig cfg;
  cfg.attribute = smart::Attr::kTemperatureCelsius;
  HmmDetector det;
  det.fit(fleet, split, cfg);
  ASSERT_TRUE(det.trained());

  const auto r = det.evaluate(fleet, split);
  EXPECT_GT(r.n_good, 0u);
  EXPECT_GT(r.n_failed, 0u);
  // The literature regime: meaningful single-attribute detection at a
  // bounded false-alarm rate — nowhere near the CT model.
  EXPECT_GT(r.fdr(), 0.25);
  EXPECT_LT(r.far(), 0.20);
}

TEST(HmmDetector, DetectRequiresTraining) {
  HmmDetector det;
  smart::DriveRecord d;
  EXPECT_THROW(det.detect(d), ConfigError);
}

}  // namespace
}  // namespace hdd::baselines
