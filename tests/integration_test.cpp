// End-to-end integration tests: the full pipeline from synthetic telemetry
// through feature selection, training, detection, persistence, and the
// reliability hand-off — the paths a deployment would exercise.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/health.h"
#include "core/model_io.h"
#include "core/predictor.h"
#include "data/csv_io.h"
#include "data/split.h"
#include "reliability/raid.h"
#include "sim/generator.h"
#include "stats/feature_select.h"

namespace hdd {
namespace {

class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = sim::paper_fleet_config(0.1, 2024);
    config.families.resize(1);
    fleet_ = new data::DriveDataset(sim::generate_fleet_window(config, 0, 1));
    split_ = new data::DatasetSplit(data::split_dataset(*fleet_, {}));
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete split_;
  }
  static data::DriveDataset* fleet_;
  static data::DatasetSplit* split_;
};

data::DriveDataset* Pipeline::fleet_ = nullptr;
data::DatasetSplit* Pipeline::split_ = nullptr;

TEST_F(Pipeline, EndToEndCtMeetsHeadlineShape) {
  // The paper's headline: high FDR at sub-percent FAR with ~2 weeks TIA.
  core::FailurePredictor p(core::paper_ct_config());
  p.fit(*fleet_, *split_);
  const auto r = p.evaluate(*fleet_, *split_);
  EXPECT_GT(r.fdr(), 0.8);
  EXPECT_LT(r.far(), 0.01);
  EXPECT_GT(r.mean_tia(), 24.0 * 7);  // more than a week of warning
}

TEST_F(Pipeline, CtBeatsAnnOnVotingRoc) {
  // Figure 2's qualitative claim at N = 11.
  core::FailurePredictor ct(core::paper_ct_config());
  ct.fit(*fleet_, *split_);
  core::FailurePredictor ann(core::paper_ann_config());
  ann.fit(*fleet_, *split_);
  const auto rc = ct.evaluate(*fleet_, *split_);
  const auto ra = ann.evaluate(*fleet_, *split_);
  EXPECT_GE(rc.fdr() + 1e-9, ra.fdr());
}

TEST_F(Pipeline, StatisticalSelectionFeedsTraining) {
  // Select features with the Section IV-B pipeline, then train on them.
  stats::FeatureSelectionConfig sel;
  sel.n_levels = 8;
  sel.n_rates = 2;
  const auto features = stats::select_features(*fleet_, sel);
  ASSERT_EQ(features.size(), 10);

  auto cfg = core::paper_ct_config();
  cfg.training.features = features;
  core::FailurePredictor p(cfg);
  p.fit(*fleet_, *split_);
  const auto r = p.evaluate(*fleet_, *split_);
  EXPECT_GE(r.fdr(), 0.75);
  EXPECT_LT(r.far(), 0.02);
}

TEST_F(Pipeline, CsvRoundTripPreservesEvaluation) {
  const std::string path = "/tmp/hddpred_integration_fleet.csv";
  data::save_csv_file(*fleet_, path);
  const auto loaded = data::load_csv_file(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.drives.size(), fleet_->drives.size());
  const auto split = data::split_dataset(loaded, {});
  core::FailurePredictor a(core::paper_ct_config());
  a.fit(*fleet_, *split_);
  core::FailurePredictor b(core::paper_ct_config());
  b.fit(loaded, split);
  const auto ra = a.evaluate(*fleet_, *split_);
  const auto rb = b.evaluate(loaded, split);
  EXPECT_EQ(ra.detections, rb.detections);
  EXPECT_EQ(ra.false_alarms, rb.false_alarms);
}

TEST_F(Pipeline, PersistedModelDeploysIdentically) {
  core::FailurePredictor p(core::paper_ct_config());
  p.fit(*fleet_, *split_);
  const std::string path = "/tmp/hddpred_integration_model.txt";
  core::save_tree_file(*p.tree(), path);
  const auto loaded = core::load_tree_file(path);
  std::remove(path.c_str());

  const auto& features = p.config().training.features;
  const auto model = [&loaded](std::span<const float> x) {
    return loaded.predict(x);
  };
  const auto r_live = p.evaluate(*fleet_, *split_);
  const auto r_loaded = eval::evaluate(*fleet_, *split_, features, model,
                                       p.config().vote);
  EXPECT_EQ(r_live.detections, r_loaded.detections);
  EXPECT_EQ(r_live.false_alarms, r_loaded.false_alarms);
}

TEST_F(Pipeline, HealthDegreeFeedsWarningQueue) {
  core::HealthDegreeModel model;
  model.fit(*fleet_, *split_);

  // Queue one warning per alarmed test drive; failed drives should cluster
  // at the front (worst health).
  core::WarningQueue queue;
  std::size_t failed_alarmed = 0;
  for (std::size_t di : split_->test_failed) {
    const auto& d = fleet_->drives[di];
    if (d.empty()) continue;
    const auto outcome = model.detect(d);
    if (!outcome.alarmed) continue;
    const auto idx = d.last_sample_at_or_before(outcome.alarm_hour);
    queue.push({d.serial, model.health(d, static_cast<std::size_t>(idx)),
                outcome.alarm_hour});
    ++failed_alarmed;
  }
  ASSERT_GT(failed_alarmed, 0u);
  // Pops come out sorted by health.
  double prev = -2.0;
  while (!queue.empty()) {
    const auto w = queue.pop();
    EXPECT_GE(w.health, prev);
    prev = w.health;
  }
}

TEST_F(Pipeline, MeasuredMetricsFeedReliabilityAnalysis) {
  // Section VI's workflow: measure (k, TIA), plug into Eq. 7 and the RAID
  // CTMC, and observe the order-of-magnitude reliability gains.
  core::FailurePredictor p(core::paper_ct_config());
  p.fit(*fleet_, *split_);
  const auto r = p.evaluate(*fleet_, *split_);
  ASSERT_GT(r.fdr(), 0.5);
  ASSERT_GT(r.mean_tia(), 1.0);

  const double single = reliability::mttdl_single_drive_with_prediction(
      1.39e6, 8.0, r.fdr(), r.mean_tia());
  EXPECT_GT(single, 3.0 * 1.39e6);  // several times the unpredicted MTTDL

  reliability::RaidPredictionParams raid;
  raid.n_drives = 100;
  raid.fdr = r.fdr();
  raid.tia_hours = r.mean_tia();
  const double with = reliability::mttdl_raid_with_prediction(raid);
  const double without =
      reliability::mttdl_raid6_no_prediction(1.39e6, 8.0, 100);
  EXPECT_GT(with, 20.0 * without);
}

TEST_F(Pipeline, DeterministicEndToEnd) {
  // Same seed -> byte-identical pipeline outcome.
  auto config = sim::paper_fleet_config(0.01, 77);
  config.families.resize(1);
  const auto fleet_a = sim::generate_fleet_window(config, 0, 1);
  const auto fleet_b = sim::generate_fleet_window(config, 0, 1);
  const auto split_a = data::split_dataset(fleet_a, {});
  const auto split_b = data::split_dataset(fleet_b, {});
  core::FailurePredictor a(core::paper_ct_config());
  core::FailurePredictor b(core::paper_ct_config());
  a.fit(fleet_a, split_a);
  b.fit(fleet_b, split_b);
  const auto ra = a.evaluate(fleet_a, split_a);
  const auto rb = b.evaluate(fleet_b, split_b);
  EXPECT_EQ(ra.detections, rb.detections);
  EXPECT_EQ(ra.false_alarms, rb.false_alarms);
  EXPECT_EQ(ra.tia_hours, rb.tia_hours);
}

}  // namespace
}  // namespace hdd
