// Tests for src/smart: the attribute catalogue, drive records, feature
// specifications, and feature extraction (levels + change rates, missing
// samples, history edges).
#include <gtest/gtest.h>

#include "common/error.h"

#include "smart/attributes.h"
#include "smart/drive.h"
#include "smart/features.h"

namespace hdd::smart {
namespace {

TEST(Attributes, TableHasTwelveEntriesInOrder) {
  const auto& table = attribute_table();
  ASSERT_EQ(table.size(), static_cast<std::size_t>(kNumAttributes));
  for (int i = 0; i < kNumAttributes; ++i) {
    EXPECT_EQ(index_of(table[static_cast<std::size_t>(i)].attr), i);
  }
}

TEST(Attributes, SmartIdsMatchTheStandard) {
  EXPECT_EQ(attribute_info(Attr::kRawReadErrorRate).smart_id, 1);
  EXPECT_EQ(attribute_info(Attr::kSpinUpTime).smart_id, 3);
  EXPECT_EQ(attribute_info(Attr::kReallocatedSectors).smart_id, 5);
  EXPECT_EQ(attribute_info(Attr::kSeekErrorRate).smart_id, 7);
  EXPECT_EQ(attribute_info(Attr::kPowerOnHours).smart_id, 9);
  EXPECT_EQ(attribute_info(Attr::kReportedUncorrectable).smart_id, 187);
  EXPECT_EQ(attribute_info(Attr::kHighFlyWrites).smart_id, 189);
  EXPECT_EQ(attribute_info(Attr::kTemperatureCelsius).smart_id, 194);
  EXPECT_EQ(attribute_info(Attr::kHardwareEccRecovered).smart_id, 195);
  EXPECT_EQ(attribute_info(Attr::kCurrentPendingSector).smart_id, 197);
}

TEST(Attributes, RawFlagsMarkOnlyTheTwoRawValues) {
  int raw_count = 0;
  for (const auto& info : attribute_table()) raw_count += info.raw;
  EXPECT_EQ(raw_count, 2);
  EXPECT_TRUE(attribute_info(Attr::kReallocatedSectorsRaw).raw);
  EXPECT_TRUE(attribute_info(Attr::kCurrentPendingSectorRaw).raw);
}

TEST(Attributes, ParseByNameAndAbbrev) {
  EXPECT_EQ(parse_attribute("Power On Hours"), Attr::kPowerOnHours);
  EXPECT_EQ(parse_attribute("POH"), Attr::kPowerOnHours);
  EXPECT_EQ(parse_attribute("TC"), Attr::kTemperatureCelsius);
  EXPECT_EQ(parse_attribute("definitely not an attribute"), std::nullopt);
}

TEST(Sample, SetAndGetRoundTrip) {
  Sample s;
  s.set(Attr::kSeekErrorRate, 42.5f);
  EXPECT_FLOAT_EQ(s.value(Attr::kSeekErrorRate), 42.5f);
  EXPECT_FLOAT_EQ(s.value(Attr::kPowerOnHours), 0.0f);
}

DriveRecord make_drive(std::vector<std::int64_t> hours) {
  DriveRecord d;
  d.serial = "t";
  for (std::int64_t h : hours) {
    Sample s;
    s.hour = h;
    s.set(Attr::kPowerOnHours, static_cast<float>(100 - h));
    d.samples.push_back(s);
  }
  return d;
}

TEST(DriveRecord, BinarySearchFindsLastSample) {
  const auto d = make_drive({0, 5, 10, 20});
  EXPECT_EQ(d.last_sample_at_or_before(-1), -1);
  EXPECT_EQ(d.last_sample_at_or_before(0), 0);
  EXPECT_EQ(d.last_sample_at_or_before(4), 0);
  EXPECT_EQ(d.last_sample_at_or_before(5), 1);
  EXPECT_EQ(d.last_sample_at_or_before(12), 2);
  EXPECT_EQ(d.last_sample_at_or_before(100), 3);
}

TEST(FeatureSpec, NamesEncodeIntervals) {
  EXPECT_EQ((FeatureSpec{Attr::kPowerOnHours, 0}).name(), "POH");
  EXPECT_EQ((FeatureSpec{Attr::kRawReadErrorRate, 6}).name(), "RRER_d6h");
}

TEST(FeatureSets, SizesMatchTheirNames) {
  EXPECT_EQ(basic12_features().size(), 12);
  EXPECT_EQ(expert19_features().size(), 19);
  EXPECT_EQ(stat13_features().size(), 13);
}

TEST(FeatureSets, Stat13ExcludesCurrentPendingSector) {
  // Section IV-B: CPS and its raw value are excluded by the statistical
  // selection.
  for (const auto& spec : stat13_features().specs) {
    EXPECT_NE(spec.attr, Attr::kCurrentPendingSector);
    EXPECT_NE(spec.attr, Attr::kCurrentPendingSectorRaw);
  }
}

TEST(FeatureSets, Stat13HasThreeSixHourChangeRates) {
  int rates = 0;
  for (const auto& spec : stat13_features().specs) {
    if (spec.is_change_rate()) {
      ++rates;
      EXPECT_EQ(spec.change_interval_hours, 6);
    }
  }
  EXPECT_EQ(rates, 3);
}

TEST(FeatureExtraction, LevelsComeFromTheSample) {
  const auto d = make_drive({0, 1, 2});
  const FeatureSet fs{"poh", {{Attr::kPowerOnHours, 0}}};
  const auto row = extract_features(d, 2, fs);
  ASSERT_TRUE(row.has_value());
  EXPECT_FLOAT_EQ((*row)[0], 98.0f);
}

TEST(FeatureExtraction, OutOfRangeIndexReturnsNullopt) {
  const auto d = make_drive({0, 1});
  const FeatureSet fs{"poh", {{Attr::kPowerOnHours, 0}}};
  EXPECT_FALSE(extract_features(d, 2, fs).has_value());
}

TEST(FeatureExtraction, ChangeRateUsesNearestOlderSample) {
  // POH decreases 1/hour in make_drive, so any rate must be ~ -1.
  const auto d = make_drive({0, 2, 4, 6, 8, 10});
  const FeatureSet fs{"d6", {{Attr::kPowerOnHours, 6}}};
  const auto row = extract_features(d, 5, fs);  // hour 10, past = hour 4
  ASSERT_TRUE(row.has_value());
  EXPECT_FLOAT_EQ((*row)[0], -1.0f);
}

TEST(FeatureExtraction, ChangeRateZeroWithoutHistory) {
  const auto d = make_drive({0, 2});
  const FeatureSet fs{"d6", {{Attr::kPowerOnHours, 6}}};
  const auto row = extract_features(d, 1, fs);  // only 2 h of history
  ASSERT_TRUE(row.has_value());
  EXPECT_FLOAT_EQ((*row)[0], 0.0f);
}

TEST(FeatureExtraction, ChangeRateHandlesIrregularGaps) {
  // Missing samples create gaps; the rate normalizes by the actual gap.
  DriveRecord d;
  for (std::int64_t h : {0, 10}) {
    Sample s;
    s.hour = h;
    s.set(Attr::kTemperatureCelsius, h == 0 ? 60.0f : 40.0f);
    d.samples.push_back(s);
  }
  const FeatureSet fs{"d6", {{Attr::kTemperatureCelsius, 6}}};
  const auto row = extract_features(d, 1, fs);
  ASSERT_TRUE(row.has_value());
  EXPECT_FLOAT_EQ((*row)[0], -2.0f);  // -20 over 10 hours
}

TEST(FeatureExtraction, RangeSelectsByHourInclusive) {
  const auto d = make_drive({0, 5, 10, 15, 20});
  const FeatureSet fs{"poh", {{Attr::kPowerOnHours, 0}}};
  std::vector<float> rows;
  std::vector<std::int64_t> hours;
  const auto n = extract_features_range(d, 5, 15, fs, rows, hours);
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(hours.size(), 3u);
  EXPECT_EQ(hours.front(), 5);
  EXPECT_EQ(hours.back(), 15);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(FeatureExtraction, RangeAppendsAcrossCalls) {
  const auto d = make_drive({0, 5, 10});
  const FeatureSet fs{"poh", {{Attr::kPowerOnHours, 0}}};
  std::vector<float> rows;
  std::vector<std::int64_t> hours;
  extract_features_range(d, 0, 0, fs, rows, hours);
  extract_features_range(d, 5, 10, fs, rows, hours);
  EXPECT_EQ(hours.size(), 3u);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(FeatureExtraction, EmptyFeatureSetRejected) {
  const auto d = make_drive({0});
  const FeatureSet fs{"empty", {}};
  std::vector<float> rows;
  std::vector<std::int64_t> hours;
  EXPECT_THROW(extract_features_range(d, 0, 10, fs, rows, hours),
               ConfigError);
}

TEST(FeatureExtraction, MultiFeatureRowOrderMatchesSpecs) {
  DriveRecord d;
  Sample s;
  s.hour = 0;
  s.set(Attr::kPowerOnHours, 90.0f);
  s.set(Attr::kTemperatureCelsius, 55.0f);
  d.samples.push_back(s);
  const FeatureSet fs{"two",
                      {{Attr::kTemperatureCelsius, 0},
                       {Attr::kPowerOnHours, 0}}};
  const auto row = extract_features(d, 0, fs);
  ASSERT_TRUE(row.has_value());
  EXPECT_FLOAT_EQ((*row)[0], 55.0f);
  EXPECT_FLOAT_EQ((*row)[1], 90.0f);
}

}  // namespace
}  // namespace hdd::smart
