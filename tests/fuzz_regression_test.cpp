// Corpus regression (ctest label: fuzz): every checked-in seed under
// tests/fuzz/corpus/<harness>/ replays through its harness entry point in
// every build configuration — plain gcc Release included, no clang or
// libFuzzer required. A seed that once crashed a parser keeps guarding it
// forever; tools/fuzz.sh --regress runs the same replay under
// ASan+UBSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"

namespace hdd::fuzz {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files(const std::string& harness) {
  const fs::path dir = fs::path(HDD_FUZZ_CORPUS_DIR) / harness;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void replay_all(const std::string& harness,
                int (*entry)(const std::uint8_t*, std::size_t)) {
  const auto files = corpus_files(harness);
  ASSERT_FALSE(files.empty())
      << "no seeds under tests/fuzz/corpus/" << harness
      << " — run build/fuzz/make_seeds";
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream is(file, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string bytes = buf.str();
    EXPECT_EQ(0, entry(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       bytes.size()));
  }
}

TEST(FuzzRegression, Frame) { replay_all("frame", fuzz_frame); }
TEST(FuzzRegression, Segment) { replay_all("segment", fuzz_segment); }
TEST(FuzzRegression, Model) { replay_all("model", fuzz_model); }
TEST(FuzzRegression, StoreOp) { replay_all("store_op", fuzz_store_op); }
TEST(FuzzRegression, Cli) { replay_all("cli", fuzz_cli); }

// The harnesses must also hold on inputs no seed covers: empty, a single
// byte, and a few KiB of fixed pseudo-random bytes. This pins down the
// size==0 / nullptr-adjacent edges that corpus files never exercise.
TEST(FuzzRegression, DegenerateInputs) {
  std::string noise(4096, '\0');
  std::uint32_t x = 0x9e3779b9u;
  for (char& c : noise) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    c = static_cast<char>(x);
  }
  const auto* p = reinterpret_cast<const std::uint8_t*>(noise.data());
  for (auto entry :
       {fuzz_frame, fuzz_segment, fuzz_model, fuzz_store_op, fuzz_cli}) {
    EXPECT_EQ(0, entry(p, 0));
    EXPECT_EQ(0, entry(p, 1));
    EXPECT_EQ(0, entry(p, noise.size()));
  }
}

}  // namespace
}  // namespace hdd::fuzz
