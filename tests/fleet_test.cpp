// Tests for core::FleetScorer and core::DriveVoteState: the incremental
// voting window must agree with eval::vote_drive bit for bit, replay and
// evaluate must agree with the scalar eval harness, and the streaming path
// must be safe under a real multi-threaded pool (this binary is the one the
// TSan configuration targets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "core/fleet.h"
#include "core/predictor.h"
#include "data/split.h"
#include "sim/generator.h"

namespace hdd::core {
namespace {

// A deterministic scorer for streaming tests: the "model" output is the
// first feature verbatim, so tests control outputs exactly.
class PassThroughScorer final : public SampleScorer {
 public:
  double predict(std::span<const float> x) const override {
    return static_cast<double>(x[0]);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = static_cast<double>(xs[r]);
    }
  }
  int num_features() const override { return 1; }
  std::string summary() const override { return "pass-through"; }
};

smart::FeatureSet one_feature() {
  return {"raw", {{smart::Attr::kPowerOnHours, 0}}};
}

// A tiny family-W fleet with a trained paper-CT predictor, shared across
// the end-to-end tests.
class FleetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto config = sim::paper_fleet_config(0.05, 12);
    config.families.resize(1);
    fleet_ = new data::DriveDataset(sim::generate_fleet_window(config, 0, 1));
    split_ = new data::DatasetSplit(data::split_dataset(*fleet_, {}));
    predictor_ = new FailurePredictor(preset("ct"));
    predictor_->fit(*fleet_, *split_);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete split_;
    delete fleet_;
    predictor_ = nullptr;
    split_ = nullptr;
    fleet_ = nullptr;
  }
  static data::DriveDataset* fleet_;
  static data::DatasetSplit* split_;
  static FailurePredictor* predictor_;
};

data::DriveDataset* FleetFixture::fleet_ = nullptr;
data::DatasetSplit* FleetFixture::split_ = nullptr;
FailurePredictor* FleetFixture::predictor_ = nullptr;

// --- DriveVoteState vs eval::vote_drive -------------------------------------

TEST(DriveVoteState, MatchesVoteDriveOnRandomSequences) {
  Rng rng(91);
  for (int trial = 0; trial < 300; ++trial) {
    eval::DriveScores s;
    const auto len = rng.uniform_int(40);
    for (std::size_t i = 0; i < len; ++i) {
      s.outputs.push_back(static_cast<float>(rng.uniform(-1.0, 1.0)));
      s.hours.push_back(static_cast<std::int64_t>(3 * i + 1));
    }
    eval::VoteConfig cfg;
    cfg.voters = 1 + static_cast<int>(rng.uniform_int(15));
    cfg.average_mode = rng.chance(0.5);
    cfg.threshold = rng.uniform(-0.5, 0.5);

    DriveVoteState st(cfg);
    int alarms_signalled = 0;
    for (std::size_t i = 0; i < len; ++i) {
      alarms_signalled += st.push(s.hours[i], s.outputs[i]) ? 1 : 0;
    }
    alarms_signalled += st.finish() ? 1 : 0;

    const auto expected = eval::vote_drive(s, cfg);
    ASSERT_EQ(st.alarmed(), expected.alarmed)
        << "trial " << trial << " len " << len << " N " << cfg.voters
        << " avg " << cfg.average_mode;
    if (expected.alarmed) {
      ASSERT_EQ(st.alarm_hour(), expected.alarm_hour) << "trial " << trial;
    }
    // push/finish return true exactly once, at the first alarm; pushes
    // after the alarm are no-ops, so samples_seen stops there.
    EXPECT_EQ(alarms_signalled, expected.alarmed ? 1 : 0) << "trial " << trial;
    if (!expected.alarmed) {
      EXPECT_EQ(st.samples_seen(), static_cast<std::int64_t>(len));
    } else {
      EXPECT_LE(st.samples_seen(), static_cast<std::int64_t>(len));
    }
  }
}

TEST(DriveVoteState, ShortRecordVotesOnceAtFinish) {
  eval::VoteConfig cfg;
  cfg.voters = 11;
  // 3 samples, 2 failed: the short-record rule alarms at the last sample.
  DriveVoteState st(cfg);
  EXPECT_FALSE(st.push(0, -1.0));
  EXPECT_FALSE(st.push(1, -1.0));
  EXPECT_FALSE(st.push(2, 1.0));
  EXPECT_FALSE(st.alarmed());
  EXPECT_TRUE(st.finish());
  EXPECT_TRUE(st.alarmed());
  EXPECT_EQ(st.alarm_hour(), 2);
  EXPECT_FALSE(st.finish());  // idempotent

  // Minority of failed samples: no alarm even at finish.
  DriveVoteState clean(cfg);
  clean.push(0, -1.0);
  clean.push(1, 1.0);
  clean.push(2, 1.0);
  EXPECT_FALSE(clean.finish());
  EXPECT_FALSE(clean.alarmed());

  // An empty record never alarms.
  DriveVoteState empty(cfg);
  EXPECT_FALSE(empty.finish());
}

TEST(DriveVoteState, PushIsNoopOnceAlarmed) {
  eval::VoteConfig cfg;
  cfg.voters = 1;
  DriveVoteState st(cfg);
  EXPECT_TRUE(st.push(7, -1.0));
  EXPECT_EQ(st.alarm_hour(), 7);
  EXPECT_FALSE(st.push(8, -1.0));
  EXPECT_EQ(st.alarm_hour(), 7);
  EXPECT_EQ(st.samples_seen(), 1);

  st.reset();
  EXPECT_FALSE(st.alarmed());
  EXPECT_EQ(st.samples_seen(), 0);
  EXPECT_TRUE(st.push(9, -1.0));
  EXPECT_EQ(st.alarm_hour(), 9);
}

TEST(DriveVoteState, RejectsZeroVoters) {
  eval::VoteConfig cfg;
  cfg.voters = 0;
  EXPECT_THROW(DriveVoteState{cfg}, ConfigError);
}

// --- Streaming mode ----------------------------------------------------------

TEST(FleetScorerStreaming, MatchesOfflineVotingUnderParallelism) {
  // 1000 drives, 40 intervals, small blocks, a real 4-thread pool: every
  // drive's streaming outcome must equal eval::vote_drive over its full
  // output sequence. Run under -DHDD_SANITIZE=thread this is the
  // data-race check for observe_interval's block partitioning.
  Rng rng(92);
  const std::size_t n_drives = 1000;
  const std::size_t n_intervals = 40;

  PassThroughScorer model;
  ThreadPool pool(4);
  FleetScorerConfig cfg;
  cfg.features = one_feature();
  cfg.vote.voters = 5;
  cfg.block_rows = 64;
  cfg.pool = &pool;
  FleetScorer scorer(model, cfg);

  for (std::size_t i = 0; i < n_drives; ++i) {
    EXPECT_EQ(scorer.add_drive("drive-" + std::to_string(i)), i);
  }
  ASSERT_EQ(scorer.size(), n_drives);

  // Column i of `snapshots` is drive i's model-output sequence.
  std::vector<std::vector<float>> snapshots(n_intervals);
  for (auto& snap : snapshots) {
    snap.resize(n_drives);
    for (auto& v : snap) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t t = 0; t < n_intervals; ++t) {
    scorer.observe_interval(snapshots[t], static_cast<std::int64_t>(t));
  }

  std::size_t expected_alarms = 0;
  for (std::size_t i = 0; i < n_drives; ++i) {
    eval::DriveScores s;
    for (std::size_t t = 0; t < n_intervals; ++t) {
      s.outputs.push_back(snapshots[t][i]);
      s.hours.push_back(static_cast<std::int64_t>(t));
    }
    const auto expected = eval::vote_drive(s, cfg.vote);
    const DriveVoteState& st = scorer.state(i);
    ASSERT_EQ(st.alarmed(), expected.alarmed) << "drive " << i;
    if (expected.alarmed) {
      ASSERT_EQ(st.alarm_hour(), expected.alarm_hour) << "drive " << i;
      ++expected_alarms;
    }
  }
  EXPECT_EQ(scorer.alarm_count(), expected_alarms);
  const auto alarmed = scorer.alarmed_drives();
  EXPECT_EQ(alarmed.size(), expected_alarms);
  EXPECT_TRUE(std::is_sorted(alarmed.begin(), alarmed.end()));

  scorer.reset();
  EXPECT_EQ(scorer.alarm_count(), 0u);
  EXPECT_EQ(scorer.size(), n_drives);  // registry survives reset
}

TEST(FleetScorerStreaming, ValidatesSnapshotShape) {
  PassThroughScorer model;
  FleetScorerConfig cfg;
  cfg.features = one_feature();
  FleetScorer scorer(model, cfg);
  scorer.add_drive("a");
  scorer.add_drive("b");
  EXPECT_EQ(scorer.serial(1), "b");

  const std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(scorer.observe_interval(wrong, 0), ConfigError);

  data::DataMatrix m(2);  // two columns, but the model has one feature
  const std::vector<float> row{0.5f, 0.5f};
  m.add_row(row, 0.0f);
  m.add_row(row, 0.0f);
  EXPECT_THROW(scorer.observe_interval(m, 0), ConfigError);
}

TEST(FleetScorer, RejectsMismatchedFeatureWidth) {
  PassThroughScorer model;  // one input
  FleetScorerConfig cfg;
  cfg.features = smart::stat13_features();  // thirteen columns
  EXPECT_THROW((FleetScorer{model, cfg}), ConfigError);

  cfg.features = one_feature();
  cfg.block_rows = 0;
  EXPECT_THROW((FleetScorer{model, cfg}), ConfigError);
}

// --- Replay / evaluation vs the scalar eval harness --------------------------

TEST_F(FleetFixture, ReplayMatchesScoreRecordPlusVoteDrive) {
  const auto& features = predictor_->config().training.features;
  const auto& vote = predictor_->config().vote;
  FleetScorerConfig cfg;
  cfg.features = features;
  cfg.vote = vote;
  cfg.block_rows = 32;  // force several blocks per drive
  FleetScorer scorer(predictor_->scorer(), cfg);

  const auto outcomes = scorer.replay(*fleet_);
  ASSERT_EQ(outcomes.size(), fleet_->drives.size());

  const auto model = predictor_->sample_model();
  for (std::size_t i = 0; i < fleet_->drives.size(); ++i) {
    const auto scores = eval::score_record(fleet_->drives[i], 0, features,
                                           model);
    const auto expected = eval::vote_drive(scores, vote);
    ASSERT_EQ(outcomes[i].alarmed, expected.alarmed) << "drive " << i;
    ASSERT_EQ(outcomes[i].alarm_hour, expected.alarm_hour) << "drive " << i;
  }
}

TEST_F(FleetFixture, EvaluateMatchesScalarEvalHarness) {
  const auto& features = predictor_->config().training.features;
  const auto& vote = predictor_->config().vote;
  FleetScorerConfig cfg;
  cfg.features = features;
  cfg.vote = vote;
  FleetScorer scorer(predictor_->scorer(), cfg);

  const auto batched = scorer.evaluate(*fleet_, *split_);
  const auto scalar = eval::evaluate(*fleet_, *split_, features,
                                     predictor_->sample_model(), vote);

  EXPECT_EQ(batched.n_good, scalar.n_good);
  EXPECT_EQ(batched.n_failed, scalar.n_failed);
  EXPECT_EQ(batched.false_alarms, scalar.false_alarms);
  EXPECT_EQ(batched.detections, scalar.detections);
  ASSERT_EQ(batched.tia_hours.size(), scalar.tia_hours.size());
  std::vector<double> a = batched.tia_hours, b = scalar.tia_hours;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "tia " << i;
  }

  // And the facade's own evaluate() routes through the same batched path.
  const auto facade = predictor_->evaluate(*fleet_, *split_);
  EXPECT_EQ(facade.detections, batched.detections);
  EXPECT_EQ(facade.false_alarms, batched.false_alarms);
}

TEST_F(FleetFixture, ScorerSummaryAndTreeExposed) {
  const SampleScorer& s = predictor_->scorer();
  EXPECT_EQ(s.num_features(),
            static_cast<int>(predictor_->config().training.features.size()));
  EXPECT_FALSE(s.summary().empty());
  EXPECT_NE(s.tree(), nullptr);  // CT backend exposes its tree
  EXPECT_EQ(s.tree(), predictor_->tree());

  // predict_batch(DataMatrix) validates the column count.
  data::DataMatrix wrong(2);
  const std::vector<float> row{0.0f, 0.0f};
  wrong.add_row(row, 0.0f);
  std::vector<double> out(1);
  EXPECT_THROW(s.predict_batch(wrong, out), ConfigError);
}

}  // namespace
}  // namespace hdd::core
