// Tests for src/data: the dataset container, DataMatrix, chronological
// splitting, training-matrix construction (sampling, windows, priors,
// loss), drive subsampling, and CSV round trips.
#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>
#include <set>
#include <sstream>

#include "data/csv_io.h"
#include "data/dataset.h"
#include "data/matrix.h"
#include "data/split.h"
#include "data/training.h"

namespace hdd::data {
namespace {

using smart::Attr;

smart::DriveRecord make_drive(const std::string& serial, bool failed,
                              int n_samples, std::int64_t start_hour = 0,
                              int family = 0) {
  smart::DriveRecord d;
  d.serial = serial;
  d.failed = failed;
  d.family = family;
  for (int i = 0; i < n_samples; ++i) {
    smart::Sample s;
    s.hour = start_hour + i;
    s.set(Attr::kPowerOnHours, static_cast<float>(90 - i));
    s.set(Attr::kTemperatureCelsius, failed ? 40.0f : 60.0f);
    d.samples.push_back(s);
  }
  if (failed) d.fail_hour = start_hour + n_samples - 1;
  return d;
}

DriveDataset make_dataset(int n_good, int n_failed, int samples_per_drive) {
  DriveDataset ds;
  ds.family_names = {"W"};
  for (int i = 0; i < n_good; ++i) {
    ds.drives.push_back(make_drive("G" + std::to_string(i), false,
                                   samples_per_drive));
  }
  for (int i = 0; i < n_failed; ++i) {
    ds.drives.push_back(make_drive("F" + std::to_string(i), true,
                                   samples_per_drive));
  }
  return ds;
}

TEST(Dataset, CountsByClassAndFamily) {
  auto ds = make_dataset(5, 3, 10);
  ds.family_names.push_back("Q");
  ds.drives.push_back(make_drive("Q0", false, 4, 0, 1));
  EXPECT_EQ(ds.count_good(), 6u);
  EXPECT_EQ(ds.count_failed(), 3u);
  EXPECT_EQ(ds.count_good(0), 5u);
  EXPECT_EQ(ds.count_good(1), 1u);
  EXPECT_EQ(ds.count_samples(false, 1), 4u);
  EXPECT_EQ(ds.count_samples(true), 30u);
}

TEST(Dataset, FamilySubsetRemapsIndices) {
  auto ds = make_dataset(2, 1, 5);
  ds.family_names.push_back("Q");
  ds.drives.push_back(make_drive("Q0", true, 5, 0, 1));
  const auto q = ds.family_subset(1);
  ASSERT_EQ(q.drives.size(), 1u);
  EXPECT_EQ(q.drives[0].family, 0);
  EXPECT_EQ(q.family_names[0], "Q");
  EXPECT_THROW(ds.family_subset(7), ConfigError);
}

TEST(Dataset, AppendMergesFamilies) {
  auto a = make_dataset(2, 0, 3);
  auto b = make_dataset(1, 1, 3);
  b.family_names = {"Q"};
  a.append(b);
  EXPECT_EQ(a.family_names.size(), 2u);
  EXPECT_EQ(a.count_good(1), 1u);
  EXPECT_EQ(a.count_failed(1), 1u);
}

TEST(Matrix, AddRowAndAccessors) {
  DataMatrix m(2);
  m.add_row(std::vector<float>{1, 2}, -1.0f, 2.0f);
  m.add_row(std::vector<float>{3, 4}, 1.0f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_FLOAT_EQ(m.row(1)[0], 3.0f);
  EXPECT_FLOAT_EQ(m.target(0), -1.0f);
  EXPECT_FLOAT_EQ(m.weight(0), 2.0f);
  EXPECT_FLOAT_EQ(m.weight(1), 1.0f);
}

TEST(Matrix, ClassWeightHelpers) {
  DataMatrix m(1);
  m.add_row(std::vector<float>{0}, -1.0f, 2.0f);
  m.add_row(std::vector<float>{0}, 1.0f, 3.0f);
  m.add_row(std::vector<float>{0}, 1.0f, 1.0f);
  EXPECT_DOUBLE_EQ(m.weight_of_class(true), 2.0);
  EXPECT_DOUBLE_EQ(m.weight_of_class(false), 4.0);
  m.scale_class_weight(false, 10.0);
  EXPECT_DOUBLE_EQ(m.weight_of_class(false), 40.0);
  EXPECT_DOUBLE_EQ(m.weight_of_class(true), 2.0);
}

TEST(Split, GoodDrivesSplitChronologically) {
  const auto ds = make_dataset(4, 2, 10);
  const auto split = split_dataset(ds, {});
  ASSERT_EQ(split.good_drives.size(), 4u);
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    EXPECT_EQ(split.good_test_begin[k], 7u);  // floor(10 * 0.7)
  }
}

TEST(Split, FailedDrivesPartitionedDisjointly) {
  const auto ds = make_dataset(2, 10, 5);
  const auto split = split_dataset(ds, {});
  EXPECT_EQ(split.train_failed.size(), 7u);
  EXPECT_EQ(split.test_failed.size(), 3u);
  std::set<std::size_t> all(split.train_failed.begin(),
                            split.train_failed.end());
  all.insert(split.test_failed.begin(), split.test_failed.end());
  EXPECT_EQ(all.size(), 10u);
  for (std::size_t i : all) EXPECT_TRUE(ds.drives[i].failed);
}

TEST(Split, SeedControlsFailedAssignment) {
  const auto ds = make_dataset(0, 20, 5);
  SplitConfig a{0.7, 1}, b{0.7, 2};
  const auto sa = split_dataset(ds, a);
  const auto sb = split_dataset(ds, b);
  EXPECT_EQ(split_dataset(ds, a).train_failed, sa.train_failed);
  EXPECT_NE(sa.train_failed, sb.train_failed);
}

TEST(Split, RejectsBadFraction) {
  const auto ds = make_dataset(1, 1, 5);
  EXPECT_THROW(split_dataset(ds, {0.0, 1}), ConfigError);
  EXPECT_THROW(split_dataset(ds, {1.0, 1}), ConfigError);
}

TEST(Subsample, KeepsRequestedFractionPerClass) {
  const auto ds = make_dataset(100, 40, 3);
  const auto sub = subsample_drives(ds, 0.25, 9);
  EXPECT_EQ(sub.count_good(), 25u);
  EXPECT_EQ(sub.count_failed(), 10u);
  EXPECT_THROW(subsample_drives(ds, 0.0, 9), ConfigError);
  EXPECT_THROW(subsample_drives(ds, 1.5, 9), ConfigError);
}

TEST(Subsample, FullFractionKeepsEverything) {
  const auto ds = make_dataset(10, 5, 3);
  const auto sub = subsample_drives(ds, 1.0, 9);
  EXPECT_EQ(sub.size(), ds.size());
}

smart::FeatureSet tiny_features() {
  return {"tiny",
          {{Attr::kPowerOnHours, 0}, {Attr::kTemperatureCelsius, 0}}};
}

TrainingConfig tiny_config() {
  TrainingConfig cfg;
  cfg.features = tiny_features();
  cfg.good_samples_per_drive = 2;
  cfg.failed_window_hours = 5;
  cfg.failed_prior = 0.0;
  cfg.loss_false_alarm = 1.0;
  return cfg;
}

TEST(TrainingMatrix, RowCountsMatchConfig) {
  const auto ds = make_dataset(10, 4, 20);
  const auto split = split_dataset(ds, {});
  const auto m = build_training_matrix(ds, split, tiny_config());
  // 10 good drives x 2 samples + ~3 train failed drives x 6 samples
  // (hours fail-5..fail inclusive).
  const std::size_t failed_rows = split.train_failed.size() * 6;
  EXPECT_EQ(m.rows(), 20u + failed_rows);
}

TEST(TrainingMatrix, GoodSamplesComeFromTrainPeriodOnly) {
  // Good POH decreases with sample index; train period = first 14 of 20
  // samples, so all good rows must have POH >= 90 - 13 = 77.
  const auto ds = make_dataset(6, 2, 20);
  const auto split = split_dataset(ds, {});
  const auto m = build_training_matrix(ds, split, tiny_config());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) > 0) {
      EXPECT_GE(m.row(r)[0], 77.0f);
    }
  }
}

TEST(TrainingMatrix, FailedWindowFiltersSamples) {
  const auto ds = make_dataset(2, 2, 30);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.failed_window_hours = 3;
  const auto m = build_training_matrix(ds, split, cfg);
  // Failed samples: hours fail-3..fail => POH in [61, 64].
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) < 0) {
      EXPECT_LE(m.row(r)[0], 64.0f);
      EXPECT_GE(m.row(r)[0], 61.0f);
    }
  }
}

TEST(TrainingMatrix, EvenSubsetSelectsEndpoints) {
  const auto ds = make_dataset(1, 2, 30);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.failed_window_hours = 20;
  cfg.failed_samples_per_drive = 3;
  const auto m = build_training_matrix(ds, split, cfg);
  std::vector<float> failed_poh;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) < 0) failed_poh.push_back(m.row(r)[0]);
  }
  // One train failed drive, 3 samples: first and last of the window.
  ASSERT_EQ(failed_poh.size(), 3u);
  EXPECT_FLOAT_EQ(failed_poh.front(), 81.0f);  // fail-20
  EXPECT_FLOAT_EQ(failed_poh.back(), 61.0f);   // fail hour
}

TEST(TrainingMatrix, PriorAdjustmentHitsTargetFraction) {
  const auto ds = make_dataset(50, 4, 20);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.failed_prior = 0.20;
  const auto m = build_training_matrix(ds, split, cfg);
  const double wf = m.weight_of_class(true);
  const double wg = m.weight_of_class(false);
  EXPECT_NEAR(wf / (wf + wg), 0.20, 1e-6);
}

TEST(TrainingMatrix, LossWeightScalesGoodClass) {
  const auto ds = make_dataset(10, 4, 20);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.loss_false_alarm = 10.0;
  const auto base = build_training_matrix(ds, split, tiny_config());
  const auto weighted = build_training_matrix(ds, split, cfg);
  EXPECT_NEAR(weighted.weight_of_class(false),
              10.0 * base.weight_of_class(false), 1e-3);
  EXPECT_NEAR(weighted.weight_of_class(true), base.weight_of_class(true),
              1e-6);
}

TEST(TrainingMatrix, TargetFnOverridesFailedTargets) {
  const auto ds = make_dataset(2, 2, 30);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.failed_window_hours = 10;
  const auto m = build_training_matrix(
      ds, split, cfg,
      [](const smart::DriveRecord&, std::int64_t hours_before) {
        return static_cast<float>(-1.0 + hours_before / 10.0);
      });
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.target(r) <= 0.0f) {
      EXPECT_GE(m.target(r), -1.0f);
      EXPECT_LE(m.target(r), 0.0f);
    }
  }
}

TEST(TrainingMatrix, WindowFnOverridesPerDrive) {
  const auto ds = make_dataset(1, 2, 30);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.failed_window_hours = 25;
  std::size_t calls = 0;
  const auto m = build_training_matrix(
      ds, split, cfg, {},
      [&calls](const smart::DriveRecord&) {
        ++calls;
        return 2;  // only 3 samples per failed drive
      });
  EXPECT_EQ(calls, split.train_failed.size());
  std::size_t failed_rows = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) failed_rows += m.target(r) < 0;
  EXPECT_EQ(failed_rows, split.train_failed.size() * 3);
}

TEST(TrainingMatrix, ValidatesConfig) {
  const auto ds = make_dataset(2, 2, 10);
  const auto split = split_dataset(ds, {});
  auto cfg = tiny_config();
  cfg.features.specs.clear();
  EXPECT_THROW(build_training_matrix(ds, split, cfg), ConfigError);
  cfg = tiny_config();
  cfg.good_samples_per_drive = 0;
  EXPECT_THROW(build_training_matrix(ds, split, cfg), ConfigError);
  cfg = tiny_config();
  cfg.failed_window_hours = 0;
  EXPECT_THROW(build_training_matrix(ds, split, cfg), ConfigError);
}

TEST(CsvIo, RoundTripsADataset) {
  auto ds = make_dataset(2, 1, 4);
  ds.family_names = {"W"};
  std::ostringstream os;
  save_csv(ds, os);
  std::istringstream is(os.str());
  const auto back = load_csv(is);
  ASSERT_EQ(back.drives.size(), ds.drives.size());
  for (std::size_t i = 0; i < ds.drives.size(); ++i) {
    EXPECT_EQ(back.drives[i].serial, ds.drives[i].serial);
    EXPECT_EQ(back.drives[i].failed, ds.drives[i].failed);
    EXPECT_EQ(back.drives[i].fail_hour, ds.drives[i].fail_hour);
    ASSERT_EQ(back.drives[i].samples.size(), ds.drives[i].samples.size());
    for (std::size_t s = 0; s < ds.drives[i].samples.size(); ++s) {
      EXPECT_EQ(back.drives[i].samples[s].hour, ds.drives[i].samples[s].hour);
      EXPECT_EQ(back.drives[i].samples[s].attrs,
                ds.drives[i].samples[s].attrs);
    }
  }
}

TEST(CsvIo, RejectsWrongHeader) {
  std::istringstream is("a,b,c\n1,2,3\n");
  EXPECT_THROW(load_csv(is), DataError);
}

TEST(CsvIo, RejectsOutOfOrderSamples) {
  auto ds = make_dataset(1, 0, 2);
  std::ostringstream os;
  save_csv(ds, os);
  std::string text = os.str();
  // Duplicate the last sample row to break chronology.
  const auto last_line_start = text.rfind('\n', text.size() - 2);
  text += text.substr(last_line_start + 1);
  std::istringstream is(text);
  EXPECT_THROW(load_csv(is), DataError);
}

TEST(CsvIo, RejectsMalformedNumbers) {
  auto ds = make_dataset(1, 0, 1);
  std::ostringstream os;
  save_csv(ds, os);
  std::string text = os.str();
  text.replace(text.rfind("90"), 2, "xx");
  std::istringstream is(text);
  EXPECT_THROW(load_csv(is), DataError);
}

TEST(CsvIo, MultipleFamiliesResolved) {
  auto ds = make_dataset(1, 0, 2);
  ds.family_names.push_back("Q");
  ds.drives.push_back(make_drive("Q0", false, 2, 0, 1));
  std::ostringstream os;
  save_csv(ds, os);
  std::istringstream is(os.str());
  const auto back = load_csv(is);
  ASSERT_EQ(back.family_names.size(), 2u);
  EXPECT_EQ(back.drives[1].family, 1);
}

}  // namespace
}  // namespace hdd::data
