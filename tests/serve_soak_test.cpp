// Bounded serve soak (ctest label: soak): a live Server over localhost,
// several client threads driving mixed ops (batched ingest, queries,
// stats, /healthz scrapes) for a wall-clock budget, with transient I/O
// faults injected under the journals the whole time. The run must end
// with: no fd leaked, every client op answered, and — after a graceful
// stop — a resumed engine whose per-drive alarm state is byte-identical
// to a reference engine fed the same telemetry directly.
//
// The budget comes from HDD_SOAK_MS (default 2000 ms, so the default
// ctest run stays fast); tools/check.sh runs the long version.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/scorer.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/shutdown.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "serve/wire.h"

namespace hdd::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kDrives = 12;
constexpr std::size_t kShards = 2;
constexpr std::size_t kThreads = 3;  // kDrives spread across client threads
constexpr std::int64_t kHoursPerBatch = 4;

int soak_budget_ms() {
  if (const char* ms = std::getenv("HDD_SOAK_MS")) {
    const int v = std::atoi(ms);
    if (v > 0) return v;
  }
  return 2000;
}

// Deterministic telemetry: every value a pure function of (drive, hour),
// so the reference engine can regenerate exactly what the clients sent.
float hval(std::uint32_t d, std::int64_t h, std::uint32_t salt) {
  std::uint32_t x = d * 2654435761u +
                    static_cast<std::uint32_t>(h) * 40503u + salt * 97u;
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 16;
  return static_cast<float>(x & 0xFFFF) / 32768.0f - 1.0f;
}

smart::Sample sample_for(std::uint32_t d, std::int64_t h) {
  smart::Sample s;
  s.hour = h;
  const float bias = 0.9f * (static_cast<float>(d % 3) - 1.0f);
  s.set(smart::Attr::kRawReadErrorRate, hval(d, h, 1) + bias);
  s.set(smart::Attr::kTemperatureCelsius, 10.0f * hval(d, h, 2));
  return s;
}

smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

class MixScorer final : public core::SampleScorer {
 public:
  double predict(std::span<const float> x) const override {
    return static_cast<double>(x[0]) + 0.03 * static_cast<double>(x[1]);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = predict(xs.subspan(2 * r, 2));
    }
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "mix"; }
};

std::string serial_of(std::uint32_t d) {
  return "soak-drive-" + std::to_string(d);
}

IngestBatch batch_for_drive(std::uint32_t d, std::int64_t from,
                            std::int64_t to) {
  IngestBatch b;
  for (std::int64_t h = from; h < to; ++h) {
    b.serials.push_back(serial_of(d));
    b.samples.push_back(sample_for(d, h));
  }
  return b;
}

ShardEngineConfig engine_config(const fs::path& dir,
                                const core::SampleScorer* scorer,
                                io::Env* env) {
  ShardEngineConfig ec;
  ec.dir = dir.string();
  ec.shards = kShards;
  ec.runtime.scorer = scorer;
  ec.runtime.features = two_features();
  ec.runtime.vote.voters = 5;
  ec.runtime.block_rows = 4;
  ec.runtime.store.env = env;
  // Transient faults must never surface as lost samples: give the store's
  // retryer enough attempts that the probabilistic faults below are
  // absorbed with certainty for the soak's op count.
  ec.runtime.store.retry.max_attempts = 8;
  ec.runtime.store.retry.sleep = false;
  return ec;
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator("/proc/self/fd")) {
    (void)e;
    ++n;
  }
  return n;
}

struct Outcome {
  bool known = false;
  bool alarmed = false;
  std::int64_t alarm_hour = -1;
  std::int64_t samples_seen = 0;
  bool operator==(const Outcome&) const = default;
};

std::vector<Outcome> outcomes(const ShardEngine& engine) {
  std::vector<Outcome> out(kDrives);
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const auto q = engine.query(serial_of(d));
    out[d] = {q.known, q.alarmed, q.alarm_hour, q.samples_seen};
  }
  return out;
}

TEST(ServeSoak, MixedOpsUnderFaultsThenByteIdenticalResume) {
  const fs::path base =
      fs::temp_directory_path() /
      ("hdd_serve_soak." + std::to_string(::getpid()));
  fs::remove_all(base);
  fs::create_directories(base);

  MixScorer scorer;
  io::FaultPlan plan;
  plan.seed = 20260809;
  plan.short_write_prob = 0.02;   // transient: a prefix lands, retry wins
  plan.write_error_prob = 0.02;   // transient: nothing lands, retry wins
  plan.fail_fsync_n = 5;          // one scheduled transient fsync failure
  plan.fsync_error = io::ErrorClass::kTransient;
  io::FaultEnv fault(io::Env::posix(), plan);

  // /proc/self/fd is sampled outside the engine/server lifetimes; the
  // whole serving stack must give every descriptor back. The process-wide
  // shutdown self-pipe (2 fds, installed once on the first Server::start)
  // is forced into existence first so it doesn't read as a leak.
  io::install_shutdown_handlers();
  const std::size_t fds_before = open_fd_count();

  std::vector<std::int64_t> reached(kDrives, 0);
  {
    ShardEngine engine(engine_config(base / "s", &scorer, &fault));
    Server server(engine, ServeOptions{});
    server.start();
    const int port = server.port();

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(soak_budget_ms());
    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        try {
          Client client;
          client.connect("127.0.0.1", port);
          std::uint64_t round = 0;
          while (std::chrono::steady_clock::now() < deadline) {
            for (std::uint32_t d = static_cast<std::uint32_t>(t);
                 d < kDrives; d += kThreads) {
              const std::int64_t from = reached[d];
              const auto batch =
                  batch_for_drive(d, from, from + kHoursPerBatch);
              // The journal never re-sends a torn append; it reports
              // journal_failed and relies on the producer re-sending the
              // batch (landed chunks are stale-skipped). Behave like that
              // producer.
              int attempts = 0;
              for (;;) {
                const auto r = client.ingest(batch);
                if (r.journal_failed == 0) break;
                if (++attempts > 50) {
                  failed = true;
                  break;
                }
              }
              reached[d] = from + kHoursPerBatch;  // only thread t writes d
            }
            // Interleave the read paths the daemon serves concurrently.
            const auto q =
                client.query(serial_of(static_cast<std::uint32_t>(t)));
            if (!q.known) failed = true;
            if (round % 8 == 0) (void)client.stats();
            if (round % 16 == 0) {
              const std::string health =
                  Client::http_get("127.0.0.1", port, "/healthz");
              if (health.find("ok") == std::string::npos) failed = true;
            }
            ++round;
          }
          client.close();
        } catch (const std::exception&) {
          failed = true;
        }
      });
    }
    for (auto& c : clients) c.join();
    EXPECT_FALSE(failed.load())
        << "a client saw a failed op during the soak";
    for (std::uint32_t d = 0; d < kDrives; ++d) {
      EXPECT_GT(reached[d], 0) << "drive " << d << " never ingested";
    }
    server.stop();
  }

  EXPECT_EQ(fds_before, open_fd_count()) << "fd leaked across the soak";

  // Byte-identical resume: a fresh engine over the soak's journals must
  // answer exactly like a reference engine fed the same telemetry
  // directly (no server, no faults).
  ShardEngine resumed(engine_config(base / "s", &scorer, nullptr));
  resumed.resume();
  ShardEngine reference(engine_config(base / "ref", &scorer, nullptr));
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const auto batch = batch_for_drive(d, 0, reached[d]);
    (void)reference.ingest(reference.shard_of(serial_of(d)), batch);
  }
  EXPECT_EQ(outcomes(reference), outcomes(resumed));

  const auto stats = resumed.stats();
  EXPECT_EQ(stats.drives, kDrives);

  fs::remove_all(base);
}

}  // namespace
}  // namespace hdd::serve
