// Tests for src/ann: the BP ANN baseline — configuration validation,
// learnability of simple concepts, determinism, weighting, and scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

#include "ann/mlp.h"

namespace hdd::ann {
namespace {

data::DataMatrix make_matrix(const std::vector<std::vector<float>>& xs,
                             const std::vector<float>& ys,
                             const std::vector<float>& ws = {}) {
  data::DataMatrix m(static_cast<int>(xs[0].size()));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    m.add_row(xs[i], ys[i], ws.empty() ? 1.0f : ws[i]);
  }
  return m;
}

double accuracy(const MlpModel& model,
                const std::vector<std::vector<float>>& xs,
                const std::vector<float>& ys) {
  int correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    correct += model.predict_label(xs[i]) == (ys[i] > 0 ? 1 : -1);
  }
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

TEST(MlpConfig, ValidateRejectsBadValues) {
  MlpConfig c;
  c.hidden = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = MlpConfig{};
  c.learning_rate = 0.0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = MlpConfig{};
  c.epochs = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = MlpConfig{};
  c.tol = -1.0;
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(MlpConfig{}.validate());
}

TEST(Mlp, RejectsEmptyMatrix) {
  data::DataMatrix m(2);
  MlpModel model;
  EXPECT_THROW(model.fit(m, MlpConfig{}), ConfigError);
  EXPECT_FALSE(model.trained());
}

TEST(Mlp, LearnsLinearBoundary) {
  Rng rng(1);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 400; ++i) {
    const float a = static_cast<float>(rng.uniform(0, 100));
    const float b = static_cast<float>(rng.uniform(0, 100));
    xs.push_back({a, b});
    ys.push_back(a + b > 100.0f ? 1.0f : -1.0f);
  }
  MlpConfig cfg;
  cfg.hidden = 4;
  cfg.epochs = 200;
  MlpModel model;
  model.fit(make_matrix(xs, ys), cfg);
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(model.num_features(), 2);
  EXPECT_EQ(model.hidden_units(), 4);
  EXPECT_GE(accuracy(model, xs, ys), 0.95);
}

TEST(Mlp, LearnsXorUnlikeGreedyTrees) {
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  Rng rng(2);
  for (int i = 0; i < 400; ++i) {
    const float a = rng.chance(0.5) ? 1.0f : 0.0f;
    const float b = rng.chance(0.5) ? 1.0f : 0.0f;
    xs.push_back({a, b});
    ys.push_back((a > 0.5f) != (b > 0.5f) ? 1.0f : -1.0f);
  }
  MlpConfig cfg;
  cfg.hidden = 8;
  cfg.epochs = 400;
  cfg.learning_rate = 0.5;
  cfg.tol = 0.0;
  MlpModel model;
  model.fit(make_matrix(xs, ys), cfg);
  EXPECT_GE(accuracy(model, xs, ys), 0.95);
}

TEST(Mlp, OutputIsBoundedMargin) {
  Rng rng(3);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back({static_cast<float>(rng.uniform())});
    ys.push_back(rng.chance(0.5) ? 1.0f : -1.0f);
  }
  MlpModel model;
  MlpConfig cfg;
  cfg.epochs = 20;
  model.fit(make_matrix(xs, ys), cfg);
  for (const auto& x : xs) {
    const double out = model.predict(x);
    EXPECT_GE(out, -1.0);
    EXPECT_LE(out, 1.0);
  }
}

TEST(Mlp, DeterministicGivenSeed) {
  Rng rng(4);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back({static_cast<float>(rng.uniform()),
                  static_cast<float>(rng.uniform())});
    ys.push_back(xs.back()[0] > 0.5f ? 1.0f : -1.0f);
  }
  MlpConfig cfg;
  cfg.epochs = 50;
  MlpModel a, b;
  a.fit(make_matrix(xs, ys), cfg);
  b.fit(make_matrix(xs, ys), cfg);
  for (const auto& x : xs) {
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
  }
  cfg.seed = 999;
  MlpModel c;
  c.fit(make_matrix(xs, ys), cfg);
  bool any_different = false;
  for (const auto& x : xs) {
    if (a.predict(x) != c.predict(x)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Mlp, SampleWeightsShiftTheBoundary) {
  // Overlapping blobs; upweighting the good class pushes predictions good.
  Rng rng(5);
  std::vector<std::vector<float>> xs;
  std::vector<float> ys, heavy_good;
  for (int i = 0; i < 600; ++i) {
    const bool failed = i % 2 == 0;
    xs.push_back({static_cast<float>(failed ? rng.normal(1.5, 1.0)
                                            : rng.normal(0.0, 1.0))});
    ys.push_back(failed ? -1.0f : 1.0f);
    heavy_good.push_back(failed ? 1.0f : 15.0f);
  }
  MlpConfig cfg;
  cfg.hidden = 4;
  cfg.epochs = 150;
  MlpModel plain, weighted;
  plain.fit(make_matrix(xs, ys), cfg);
  weighted.fit(make_matrix(xs, ys, heavy_good), cfg);
  int plain_failed = 0, weighted_failed = 0;
  for (double x = 0.0; x <= 1.5; x += 0.05) {
    const std::vector<float> row{static_cast<float>(x)};
    plain_failed += plain.predict_label(row) < 0;
    weighted_failed += weighted.predict_label(row) < 0;
  }
  EXPECT_LT(weighted_failed, plain_failed);
}

TEST(Mlp, HandlesConstantFeatures) {
  // A constant column must not produce NaNs (its scale is dropped).
  std::vector<std::vector<float>> xs;
  std::vector<float> ys;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const float x = static_cast<float>(rng.uniform());
    xs.push_back({7.0f, x});
    ys.push_back(x > 0.5f ? 1.0f : -1.0f);
  }
  MlpConfig cfg;
  cfg.epochs = 100;
  MlpModel model;
  model.fit(make_matrix(xs, ys), cfg);
  for (const auto& x : xs) {
    EXPECT_FALSE(std::isnan(model.predict(x)));
  }
  EXPECT_GE(accuracy(model, xs, ys), 0.9);
}

TEST(Mlp, EarlyStoppingTerminates) {
  // With a huge tol the fit must stop long before the epoch limit and the
  // model must still be usable.
  std::vector<std::vector<float>> xs{{0}, {1}};
  std::vector<float> ys{-1, 1};
  MlpConfig cfg;
  cfg.epochs = 100000;  // would take forever without early stop
  cfg.tol = 1.0;
  MlpModel model;
  model.fit(make_matrix(xs, ys), cfg);
  EXPECT_TRUE(model.trained());
}

}  // namespace
}  // namespace hdd::ann
