// Integration tests for the hddpredict CLI: each subcommand is spawned as a
// real process against a small generated fleet. The binary path is injected
// by CMake (HDDPREDICT_BINARY).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string cmd = std::string(HDDPREDICT_BINARY) + " " + args +
                          " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

const char* kCsv = "/tmp/hddpred_cli_fleet.csv";
const char* kModel = "/tmp/hddpred_cli_model.tree";

// One test for the whole generate->train->evaluate->predict->features flow:
// ctest runs each TEST in its own process, so steps that share files on
// disk must live in one test body.
TEST(CliFlow, EndToEnd) {
  std::remove(kCsv);
  std::remove(kModel);

  // generate
  auto r = run_cli(std::string("generate --out ") + kCsv +
                   " --scale 0.02 --family W --seed 11");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("good"), std::string::npos);

  // train
  r = run_cli(std::string("train --data ") + kCsv + " --model " + kModel);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FDR"), std::string::npos);

  // evaluate
  r = run_cli(std::string("evaluate --data ") + kCsv + " --model " +
              kModel + " --voters 5");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FAR (%)"), std::string::npos);
  EXPECT_NE(r.output.find("mean TIA"), std::string::npos);

  // predict
  r = run_cli(std::string("predict --data ") + kCsv + " --model " + kModel +
              " --top 3");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("most at risk"), std::string::npos);

  // tune (loose budget so the tiny fleet can satisfy it)
  r = run_cli(std::string("tune --data ") + kCsv + " --model " + kModel +
              " --budget 0.05");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("chosen voters"), std::string::npos);

  // features
  r = run_cli(std::string("features --data ") + kCsv +
              " --levels 6 --rates 2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("selected 8 features"), std::string::npos);

  std::remove(kCsv);
  std::remove(kModel);
}

TEST(Cli, ReliabilityNeedsNoData) {
  const auto r = run_cli("reliability --drives 100 --fdr 0.95 --tia 300");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("improvement"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

TEST(Cli, MissingRequiredFlagFails) {
  const auto r = run_cli("train --data /nonexistent.csv");
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, MissingFileReportsCleanError) {
  const auto r = run_cli("evaluate --data /nonexistent.csv --model /none");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, NoArgumentsPrintsUsage) {
  const auto r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

}  // namespace
