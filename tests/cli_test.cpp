// Integration tests for the hddpredict CLI: each subcommand is spawned as a
// real process against a small generated fleet. The binary path is injected
// by CMake (HDDPREDICT_BINARY).
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string cmd = std::string(HDDPREDICT_BINARY) + " " + args +
                          " 2>&1";
  std::array<char, 4096> buffer{};
  CommandResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

struct SplitResult {
  int exit_code = -1;
  std::string out;  // stdout only
  std::string err;  // stderr only
};

// Captures stdout and stderr separately, for the tests that pin down the
// contract that usage/error text never lands on stdout.
SplitResult run_cli_split(const std::string& args) {
  // A unique capture file per invocation: split-capture tests run
  // concurrently under `ctest -j`, and a shared path races.
  static std::atomic<int> counter{0};
  const std::string err_file = "/tmp/hddpred_cli_stderr." +
                               std::to_string(getpid()) + "." +
                               std::to_string(counter.fetch_add(1)) + ".txt";
  const char* kErrFile = err_file.c_str();
  std::remove(kErrFile);
  const std::string cmd = std::string(HDDPREDICT_BINARY) + " " + args +
                          " 2>" + kErrFile;
  std::array<char, 4096> buffer{};
  SplitResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.out += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  if (FILE* f = std::fopen(kErrFile, "r")) {
    while (fgets(buffer.data(), buffer.size(), f) != nullptr) {
      result.err += buffer.data();
    }
    std::fclose(f);
  }
  std::remove(kErrFile);
  return result;
}

const char* kCsv = "/tmp/hddpred_cli_fleet.csv";
const char* kModel = "/tmp/hddpred_cli_model.tree";

// One test for the whole generate->train->evaluate->predict->features flow:
// ctest runs each TEST in its own process, so steps that share files on
// disk must live in one test body.
TEST(CliFlow, EndToEnd) {
  std::remove(kCsv);
  std::remove(kModel);

  // generate
  auto r = run_cli(std::string("generate --out ") + kCsv +
                   " --scale 0.02 --family W --seed 11");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("good"), std::string::npos);

  // train
  r = run_cli(std::string("train --data ") + kCsv + " --model " + kModel);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FDR"), std::string::npos);

  // evaluate
  r = run_cli(std::string("evaluate --data ") + kCsv + " --model " +
              kModel + " --voters 5");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("FAR (%)"), std::string::npos);
  EXPECT_NE(r.output.find("mean TIA"), std::string::npos);

  // predict
  r = run_cli(std::string("predict --data ") + kCsv + " --model " + kModel +
              " --top 3");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("most at risk"), std::string::npos);

  // tune (loose budget so the tiny fleet can satisfy it)
  r = run_cli(std::string("tune --data ") + kCsv + " --model " + kModel +
              " --budget 0.05");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("chosen voters"), std::string::npos);

  // features
  r = run_cli(std::string("features --data ") + kCsv +
              " --levels 6 --rates 2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("selected 8 features"), std::string::npos);

  std::remove(kCsv);
  std::remove(kModel);
}

// Same single-test-body rule as CliFlow: ingest -> replay -> compact ->
// replay share the store directory on disk.
TEST(CliFlow, StoreEndToEnd) {
  const char* kStoreCsv = "/tmp/hddpred_cli_store_fleet.csv";
  const char* kStoreModel = "/tmp/hddpred_cli_store_model.tree";
  const char* kStoreDir = "/tmp/hddpred_cli_store";
  std::remove(kStoreCsv);
  std::remove(kStoreModel);
  [[maybe_unused]] const int rc =
      std::system((std::string("rm -rf ") + kStoreDir).c_str());

  auto r = run_cli(std::string("generate --out ") + kStoreCsv +
                   " --scale 0.02 --family W --seed 11 --interval 2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  r = run_cli(std::string("train --data ") + kStoreCsv + " --model " +
              kStoreModel);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  // ingest, twice: the second run must find everything already present.
  r = run_cli(std::string("ingest --store ") + kStoreDir + " --data " +
              kStoreCsv);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ingested"), std::string::npos);
  EXPECT_NE(r.output.find("(0 already present, 0 quarantined)"),
            std::string::npos);
  r = run_cli(std::string("ingest --store ") + kStoreDir + " --data " +
              kStoreCsv);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ingested 0 samples"), std::string::npos);

  // replay the log through a resumed fleet scorer
  r = run_cli(std::string("replay --store ") + kStoreDir + " --model " +
              kStoreModel + " --voters 5");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("replayed"), std::string::npos);

  // compact away everything before hour 100, then replay still works
  r = run_cli(std::string("compact --store ") + kStoreDir +
              " --min-hour 100");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("compacted"), std::string::npos);
  EXPECT_NE(r.output.find("dropped"), std::string::npos);
  r = run_cli(std::string("replay --store ") + kStoreDir + " --model " +
              kStoreModel + " --voters 5");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("replayed"), std::string::npos);

  std::remove(kStoreCsv);
  std::remove(kStoreModel);
  [[maybe_unused]] const int rc2 =
      std::system((std::string("rm -rf ") + kStoreDir).c_str());
}

// Ingest hygiene: raw telemetry rows with NaN or off-scale values are
// quarantined — counted and reported, never stored, never fatal.
TEST(CliFlow, IngestQuarantinesBadTelemetry) {
  const char* kQuarCsv = "/tmp/hddpred_cli_quar_fleet.csv";
  const char* kQuarDir = "/tmp/hddpred_cli_quar_store";
  std::remove(kQuarCsv);
  [[maybe_unused]] const int rc =
      std::system((std::string("rm -rf ") + kQuarDir).c_str());

  // Hand-written fleet: hours 1 and 2 of q0 carry a NaN RRER and a
  // Temperature of 500 (off the vendor 1-253 scale); the rest is healthy.
  if (FILE* f = std::fopen(kQuarCsv, "w")) {
    std::fputs(
        "serial,family,failed,fail_hour,hour,RRER,SUT,RSC,SER,POH,RUE,HFW,"
        "TC,HER,CPS,RSC_raw,CPS_raw\n"
        "q0,W,0,-1,0,100,100,100,100,100,100,100,30,100,100,0,0\n"
        "q0,W,0,-1,1,nan,100,100,100,100,100,100,30,100,100,0,0\n"
        "q0,W,0,-1,2,100,100,100,100,100,100,100,500,100,100,0,0\n"
        "q0,W,0,-1,3,100,100,100,100,100,100,100,30,100,100,0,0\n",
        f);
    std::fclose(f);
  }

  const auto r = run_cli(std::string("ingest --store ") + kQuarDir +
                         " --data " + kQuarCsv + " --metrics-out -");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("ingested 2 samples"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("2 quarantined"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("hdd_fleet_quarantined_samples_total 2"),
            std::string::npos)
      << r.output;

  std::remove(kQuarCsv);
  [[maybe_unused]] const int rc2 =
      std::system((std::string("rm -rf ") + kQuarDir).c_str());
}

// The global --metrics-out/--metrics-format flags: a registry snapshot is
// dumped at exit for any command, to a file or stdout, in text or JSON.
TEST(CliFlow, MetricsEndToEnd) {
  const char* kMetCsv = "/tmp/hddpred_cli_metrics_fleet.csv";
  const char* kMetModel = "/tmp/hddpred_cli_metrics_model.tree";
  const char* kMetDir = "/tmp/hddpred_cli_metrics_store";
  const char* kMetOut = "/tmp/hddpred_cli_metrics.json";
  std::remove(kMetCsv);
  std::remove(kMetModel);
  std::remove(kMetOut);
  [[maybe_unused]] const int rc =
      std::system((std::string("rm -rf ") + kMetDir).c_str());

  auto r = run_cli(std::string("generate --out ") + kMetCsv +
                   " --scale 0.02 --family W --seed 11 --interval 2");
  ASSERT_EQ(r.exit_code, 0) << r.output;

  // train dumps a JSON snapshot to a file; stdout stays the normal report.
  auto s = run_cli_split(std::string("train --data ") + kMetCsv +
                         " --model " + kMetModel + " --metrics-out " +
                         kMetOut + " --metrics-format json");
  ASSERT_EQ(s.exit_code, 0) << s.out << s.err;
  EXPECT_NE(s.out.find("trained"), std::string::npos);
  EXPECT_EQ(s.out.find("hdd_train_fit_ns"), std::string::npos);
  std::string dumped;
  if (FILE* f = std::fopen(kMetOut, "r")) {
    std::array<char, 4096> buf{};
    while (fgets(buf.data(), buf.size(), f) != nullptr) dumped += buf.data();
    std::fclose(f);
  }
  EXPECT_NE(dumped.find("\"name\": \"hdd_train_fit_ns\""), std::string::npos)
      << dumped;
  EXPECT_NE(dumped.find("\"name\": \"hdd_train_matrix_rows_total\""),
            std::string::npos);

  // replay dumps Prometheus text to stdout after the normal report.
  r = run_cli(std::string("ingest --store ") + kMetDir + " --data " + kMetCsv);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  r = run_cli(std::string("replay --store ") + kMetDir + " --model " +
              kMetModel + " --voters 5 --metrics-out -");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("replayed"), std::string::npos);
  EXPECT_NE(r.output.find("# TYPE hdd_fleet_samples_scored_total counter"),
            std::string::npos);
  EXPECT_NE(r.output.find("hdd_fleet_journal_resume_total 1"),
            std::string::npos);
  EXPECT_NE(r.output.find("hdd_store_recovery_outcomes_total{outcome="),
            std::string::npos);

  // --log-level is accepted everywhere; bogus values are usage errors.
  r = run_cli(std::string("reliability --log-level debug"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  r = run_cli(std::string("reliability --log-level loud"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--log-level"), std::string::npos);
  r = run_cli(std::string("reliability --metrics-format yaml"));
  EXPECT_EQ(r.exit_code, 2);
  r = run_cli(std::string("reliability --metrics-out"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value"), std::string::npos);

  // An unwritable dump path fails the run (exit 1) after the command ran.
  r = run_cli(std::string("reliability --metrics-out /nonexistent-dir/m.txt"));
  EXPECT_EQ(r.exit_code, 1) << r.output;

  std::remove(kMetCsv);
  std::remove(kMetModel);
  std::remove(kMetOut);
  [[maybe_unused]] const int rc2 =
      std::system((std::string("rm -rf ") + kMetDir).c_str());
}

// lint shares its model files with the train steps, so the whole
// train -> lint flow lives in one test body (same rule as CliFlow).
TEST(CliFlow, LintEndToEnd) {
  const char* kLintCsv = "/tmp/hddpred_cli_lint_fleet.csv";
  std::remove(kLintCsv);
  auto r = run_cli(std::string("generate --out ") + kLintCsv +
                   " --scale 0.02 --family W --seed 11");
  ASSERT_EQ(r.exit_code, 0) << r.output;

  // Every persistable preset trains and lints clean (exit 0) against the
  // auto-detected stat13 domains.
  for (const std::string preset : {"ct", "rt", "ann"}) {
    const std::string model = "/tmp/hddpred_cli_lint_" + preset + ".model";
    std::remove(model.c_str());
    r = run_cli(std::string("train --data ") + kLintCsv + " --model " +
                model + " --preset " + preset);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    const auto lint = run_cli_split("lint --model " + model);
    EXPECT_EQ(lint.exit_code, 0) << lint.out << lint.err;
    EXPECT_NE(lint.out.find("domains: stat13"), std::string::npos)
        << lint.out;
    EXPECT_TRUE(lint.err.empty()) << lint.err;
    std::remove(model.c_str());
  }
  std::remove(kLintCsv);
}

TEST(Cli, LintFlagsDegenerateTree) {
  // Hand-written model with a dead split, an unreachable leaf and an
  // out-of-range regression leaf: lint must exit 3 and name each class.
  const char* kBadTree = "/tmp/hddpred_cli_bad.tree";
  if (FILE* f = std::fopen(kBadTree, "w")) {
    std::fputs(
        "hddpred-tree v1\ntask regression\nfeatures 1\nnodes 5\n"
        "1 4 0 10 0 1 10 0\n"
        "2 3 0 20 0 1 5 0\n"
        "-1 -1 -1 0 0.5 1 3 0\n"
        "-1 -1 -1 0 -0.5 1 2 0\n"
        "-1 -1 -1 0 1.5 1 5 0\n",
        f);
    std::fclose(f);
  }
  const auto r = run_cli_split(std::string("lint --model ") + kBadTree);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("dead-split"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("unreachable-leaf"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("leaf-value-out-of-range"), std::string::npos)
      << r.out;

  // JSON output carries the same codes, machine-readable.
  const auto j = run_cli_split(std::string("lint --model ") + kBadTree +
                               " --format json");
  EXPECT_EQ(j.exit_code, 3);
  EXPECT_EQ(j.out.rfind("[", 0), 0u) << j.out;
  EXPECT_NE(j.out.find("\"code\": \"dead-split\""), std::string::npos)
      << j.out;
  std::remove(kBadTree);
}

TEST(Cli, LintFlagsNanMlpWeight) {
  const char* kBadMlp = "/tmp/hddpred_cli_bad.mlp";
  if (FILE* f = std::fopen(kBadMlp, "w")) {
    std::fputs(
        "hddpred-mlp v1\ninputs 1 hidden 1\nmin 0\nscale 1\n"
        "w1 nan\nb1 0\nw2 1\nb2 0\n",
        f);
    std::fclose(f);
  }
  const auto r = run_cli_split(std::string("lint --model ") + kBadMlp);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.out.find("non-finite-weight"), std::string::npos) << r.out;
  std::remove(kBadMlp);
}

TEST(Cli, LintUsageErrors) {
  // Missing --model and a bad --format are invocation errors (exit 2),
  // distinct from lint findings (exit 3).
  auto r = run_cli("lint");
  EXPECT_EQ(r.exit_code, 2);
  r = run_cli("lint --model /tmp/whatever --format yaml");
  EXPECT_EQ(r.exit_code, 2);
  r = run_cli("lint --model /tmp/whatever --features bogus13");
  EXPECT_EQ(r.exit_code, 2);
  // A missing model file is a runtime failure, not a usage error.
  r = run_cli("lint --model /nonexistent.model");
  EXPECT_EQ(r.exit_code, 1);
}

// The usage/error-routing contract: stdout is for results only.
TEST(Cli, UsageTextGoesToStderr) {
  const auto r = run_cli_split("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("usage"), std::string::npos) << r.err;
}

TEST(Cli, RuntimeErrorTextGoesToStderr) {
  const auto r = run_cli_split("evaluate --data /nonexistent.csv --model /x");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.out.empty()) << r.out;
  EXPECT_NE(r.err.find("error:"), std::string::npos) << r.err;
}

TEST(Cli, ReliabilityNeedsNoData) {
  const auto r = run_cli("reliability --drives 100 --fdr 0.95 --tia 300");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("improvement"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run_cli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

TEST(Cli, MissingRequiredFlagFails) {
  const auto r = run_cli("train --data /nonexistent.csv");
  EXPECT_NE(r.exit_code, 0);
}

TEST(Cli, MissingFileReportsCleanError) {
  const auto r = run_cli("evaluate --data /nonexistent.csv --model /none");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("error:"), std::string::npos);
}

TEST(Cli, NoArgumentsPrintsUsage) {
  const auto r = run_cli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

// Unknown flags are a usage error (exit 2), distinct from runtime I/O
// failures (exit 1) — a typo must not silently fall back to a default.
TEST(Cli, UnknownFlagFails) {
  const auto r = run_cli("reliability --drives 100 --bogus 7");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option --bogus"), std::string::npos);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

TEST(Cli, FlagMissingValueFails) {
  const auto r = run_cli("reliability --drives");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("missing value for --drives"), std::string::npos);
}

// A numeric flag that doesn't parse is a usage error at parse time — the
// command body never runs with a half-read value.
TEST(Cli, MalformedNumericFlagFails) {
  auto r = run_cli("reliability --drives 10x");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--drives"), std::string::npos) << r.output;
  r = run_cli("evaluate --data /x --model /y --voters 7x");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// The serve/client commands share the same registry contract: missing
// required flags and bad choices are exit 2 before any socket is touched.
TEST(Cli, ServeAndClientUsageErrors) {
  auto r = run_cli("serve");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
  r = run_cli("client --addr 127.0.0.1:1 --op bogus");
  EXPECT_EQ(r.exit_code, 2);
  r = run_cli("client --op stats");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  r = run_cli("client --addr 127.0.0.1:1 --op ingest");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--data"), std::string::npos) << r.output;
}

TEST(Cli, FlagValidFlagForOtherCommandFails) {
  // --voters belongs to evaluate/replay, not train.
  const auto r = run_cli("train --data /tmp/x.csv --model /tmp/y --voters 5");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option --voters"), std::string::npos);
}

}  // namespace
