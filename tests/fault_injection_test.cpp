// Randomized fault-schedule property harness (ctest label: fault).
//
// Hundreds of seeded FaultPlans drive a journaled fleet-scoring run
// through ingest -> kill -> recover -> replay and assert the durability
// contract under injected faults:
//
//  * Determinism: the same seed produces the same injected-fault
//    sequence, the same recovery-taxonomy counters and the same
//    post-resume alarm set, run after run.
//  * Invariant B (no silent loss): when no journal append was dropped
//    before the crash, the resumed run raises byte-identical alarms
//    (drive, hour) to an uninterrupted fault-free run.
//  * Invariant A (clean degradation): when appends were dropped (ENOSPC,
//    short writes, injected write errors), recovery still completes with
//    every event accounted for in the taxonomy counters, and the fleet
//    keeps scoring.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "core/fleet.h"
#include "core/scorer.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/retry.h"
#include "json_lite.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/shard_engine.h"
#include "store/telemetry_store.h"

namespace hdd::core {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kDrives = 6;
constexpr std::int64_t kHours = 48;
// Upper bound on the crash-op draw: an unfaulted scenario performs ~350
// mutating ops, so most plans crash mid-run and some run to completion.
constexpr std::uint64_t kMaxOps = 420;

// Deterministic pseudo-random telemetry (same construction as
// durable_fleet_test): every value is a pure function of (drive, hour).
float hval(std::uint32_t d, std::int64_t h, std::uint32_t salt) {
  std::uint32_t x = d * 2654435761u +
                    static_cast<std::uint32_t>(h) * 40503u + salt * 97u;
  x ^= x >> 13;
  x *= 2246822519u;
  x ^= x >> 16;
  return static_cast<float>(x & 0xFFFF) / 32768.0f - 1.0f;  // [-1, 1)
}

smart::Sample sample_for(std::uint32_t d, std::int64_t h) {
  smart::Sample s;
  s.hour = h;
  const float bias = 0.9f * (static_cast<float>(d % 3) - 1.0f);
  s.set(smart::Attr::kRawReadErrorRate, hval(d, h, 1) + bias);
  s.set(smart::Attr::kTemperatureCelsius, 10.0f * hval(d, h, 2));
  return s;
}

std::vector<smart::Sample> interval_at(std::int64_t h) {
  std::vector<smart::Sample> out(kDrives);
  for (std::uint32_t d = 0; d < kDrives; ++d) out[d] = sample_for(d, h);
  return out;
}

smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

class MixScorer final : public SampleScorer {
 public:
  double predict(std::span<const float> x) const override {
    return static_cast<double>(x[0]) + 0.03 * static_cast<double>(x[1]);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (std::size_t r = 0; r < out.size(); ++r) {
      out[r] = predict(xs.subspan(2 * r, 2));
    }
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "mix"; }
};

FleetScorerConfig test_config(obs::Registry* reg) {
  FleetScorerConfig cfg;
  cfg.features = two_features();
  cfg.vote.voters = 5;
  cfg.block_rows = 4;
  cfg.metrics = reg;
  return cfg;
}

struct Outcome {
  bool alarmed = false;
  std::int64_t alarm_hour = -1;
  bool operator==(const Outcome&) const = default;
};

std::vector<Outcome> outcomes(const FleetScorer& f) {
  std::vector<Outcome> out(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    out[i] = {f.state(i).alarmed(), f.state(i).alarm_hour()};
  }
  return out;
}

std::string serial_of(std::uint32_t d) {
  return "drive-" + std::to_string(d);
}

// One uninterrupted, fault-free run: the ground truth.
std::vector<Outcome> baseline_run() {
  const MixScorer scorer;
  FleetScorer f(scorer, test_config(nullptr));
  for (std::uint32_t d = 0; d < kDrives; ++d) f.add_drive(serial_of(d));
  for (std::int64_t h = 0; h < kHours; ++h) {
    f.observe_samples(interval_at(h), h);
  }
  return outcomes(f);
}

// The six recovery-taxonomy branches, in a fixed comparison order.
std::vector<std::uint64_t> taxonomy_of(obs::Registry& reg) {
  const char* name = "hdd_store_recovery_outcomes_total";
  std::vector<std::uint64_t> out;
  for (const char* outcome : {"torn_tail", "crc_drop", "record_dropped",
                              "header_skip", "empty_deleted", "tmp_deleted"}) {
    out.push_back(reg.counter(name, "", {{"outcome", outcome}}).value());
  }
  return out;
}

struct ScenarioResult {
  bool crashed = false;  // CrashPoint fired during ingest
  bool errored = false;  // a store error escaped the scorer (e.g. at open)
  std::uint64_t journal_failures = 0;
  std::uint64_t faults = 0;
  std::uint64_t ops = 0;
  std::vector<std::string> fault_log;
  std::vector<std::uint64_t> taxonomy;  // from the clean recovery
  std::size_t samples_replayed = 0;
  std::vector<Outcome> final_outcomes;

  bool operator==(const ScenarioResult&) const = default;
};

// ingest-under-faults -> kill -> clean recover -> resume -> finish the run.
ScenarioResult run_scenario(const fs::path& dir, std::uint64_t seed) {
  fs::remove_all(dir);
  const MixScorer scorer;
  ScenarioResult rr;

  // Phase 1: journaled ingest with every I/O routed through the fault env.
  obs::Registry ingest_reg;
  io::FaultEnv fenv(io::Env::posix(), io::FaultPlan::random(seed, kMaxOps),
                    &ingest_reg);
  try {
    store::StoreOptions so;
    so.env = &fenv;
    so.metrics = &ingest_reg;
    so.retry.sleep = false;  // attempt accounting without wall-clock waits
    store::TelemetryStore store(dir.string(), so);
    FleetScorer f(scorer, test_config(&ingest_reg));
    for (std::uint32_t d = 0; d < kDrives; ++d) f.add_drive(serial_of(d));
    f.attach_journal(&store);
    for (std::int64_t h = 0; h < kHours; ++h) {
      f.observe_samples(interval_at(h), h);
    }
  } catch (const io::CrashPoint&) {
    rr.crashed = true;  // the simulated kill -9: all in-memory state is gone
  } catch (const std::exception&) {
    rr.errored = true;  // store-level failure outside the scorer's catches
  }
  rr.journal_failures =
      ingest_reg.counter("hdd_fleet_journal_append_failures_total", "")
          .value();
  rr.faults = fenv.faults_injected();
  rr.ops = fenv.ops();
  rr.fault_log = fenv.fault_log();

  // Phase 2: a fresh "process" recovers on healthy hardware, resumes the
  // voting state from the journal, and finishes the monitoring run.
  obs::Registry rec_reg;
  store::StoreOptions so2;
  so2.metrics = &rec_reg;
  store::TelemetryStore store(dir.string(), so2);
  rr.taxonomy = taxonomy_of(rec_reg);
  FleetScorer f(scorer, test_config(&rec_reg));
  const auto r = f.resume_from(store);
  rr.samples_replayed = r.samples_replayed;
  f.attach_journal(&store);
  // A crash during registration can leave only a prefix of the fleet in
  // the store (possible only before any sample landed); top the registry
  // back up, then re-observe everything after the resume point.
  for (std::size_t d = f.size(); d < kDrives; ++d) {
    f.add_drive(serial_of(static_cast<std::uint32_t>(d)));
  }
  for (std::int64_t h = r.last_hour + 1; h < kHours; ++h) {
    f.observe_samples(interval_at(h), h);
  }
  rr.final_outcomes = outcomes(f);
  return rr;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Injected faults are logged at kWarn by design; hundreds of scheduled
    // faults per run would swamp the test output.
    set_log_level(LogLevel::kError);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_dir_ = fs::temp_directory_path() /
                (std::string("hdd_fault_") + info->name());
    fs::remove_all(base_dir_);
    fs::create_directories(base_dir_);
  }
  void TearDown() override { fs::remove_all(base_dir_); }

  fs::path base_dir_;
};

// Acceptance criterion: >= 200 randomized fault schedules pass
// kill-and-resume.
TEST_F(FaultInjectionTest, RandomizedFaultSchedulesKillAndResume) {
  const auto expected = baseline_run();
  std::size_t n_crashed = 0;
  std::size_t n_lossless = 0;
  std::size_t n_degraded = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto rr = run_scenario(base_dir_ / ("s" + std::to_string(seed)),
                                 seed);
    n_crashed += rr.crashed ? 1 : 0;
    ASSERT_EQ(rr.final_outcomes.size(), kDrives) << "seed " << seed;
    if (rr.journal_failures == 0 && !rr.errored) {
      // Invariant B: nothing was dropped before the kill, so the resumed
      // run must be indistinguishable from the uninterrupted one.
      ++n_lossless;
      EXPECT_EQ(rr.final_outcomes, expected)
          << "alarm divergence without data loss, seed " << seed;
    } else {
      // Invariant A: loss happened, but it was counted (scorer-side) and
      // recovery completed; the continued fleet still reached the end.
      ++n_degraded;
      EXPECT_GT(rr.faults + rr.journal_failures, 0u) << "seed " << seed;
    }
  }
  // The schedule distribution must actually exercise both regimes.
  EXPECT_GE(n_crashed, 100u);
  EXPECT_GE(n_lossless, 30u);
  EXPECT_GE(n_degraded, 30u);
}

// Acceptance criterion: same seed -> same injected-fault sequence, same
// recovery taxonomy counters, same post-resume alarm set, across two runs.
TEST_F(FaultInjectionTest, SameSeedIsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    // Same directory both times (the fault log records paths); run_scenario
    // wipes it first, so the second run starts from the same empty state.
    const auto first = run_scenario(base_dir_ / "x", seed);
    const auto second = run_scenario(base_dir_ / "x", seed);
    EXPECT_EQ(first.fault_log, second.fault_log) << "seed " << seed;
    EXPECT_EQ(first.taxonomy, second.taxonomy) << "seed " << seed;
    EXPECT_EQ(first.final_outcomes, second.final_outcomes) << "seed " << seed;
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

// Crash the compaction at EVERY op until it survives: after each crash the
// reopened store must hold either the old generation or the new one in
// full — the kSegCompacted supersede rule never yields a mix.
TEST_F(FaultInjectionTest, CompactionCrashSafeAtEveryOp) {
  constexpr std::uint32_t kCompactDrives = 4;
  constexpr std::int64_t kCompactHours = 60;
  constexpr std::int64_t kMinHour = 30;
  const fs::path golden = base_dir_ / "golden";
  {
    store::StoreOptions so;
    so.segment_bytes = 4096;  // several segments, so supersede has targets
    store::TelemetryStore store(golden.string(), so);
    for (std::uint32_t d = 0; d < kCompactDrives; ++d) {
      store.register_drive(serial_of(d));
    }
    for (std::int64_t h = 0; h < kCompactHours; ++h) {
      for (std::uint32_t d = 0; d < kCompactDrives; ++d) {
        store.append(d, sample_for(d, h));
      }
    }
    store.flush();
  }
  const std::size_t n_old = kCompactDrives * kCompactHours;
  const std::size_t n_new =
      kCompactDrives * static_cast<std::size_t>(kCompactHours - kMinHour);

  bool completed = false;
  std::uint64_t op = 0;
  while (!completed) {
    ++op;
    ASSERT_LT(op, 2000u) << "compaction never ran out of crash points";
    const fs::path dir = base_dir_ / ("op" + std::to_string(op));
    fs::remove_all(dir);
    fs::copy(golden, dir);

    io::FaultPlan plan;
    plan.seed = op;
    plan.crash_at_op = op;
    io::FaultEnv fenv(io::Env::posix(), plan);
    bool crashed = false;
    try {
      store::StoreOptions so;
      so.segment_bytes = 4096;
      so.env = &fenv;
      store::TelemetryStore store(dir.string(), so);
      store.compact(kMinHour);
    } catch (const io::CrashPoint&) {
      crashed = true;
    }
    completed = !crashed;

    // Clean reopen: one generation, whole.
    store::TelemetryStore after(dir.string());
    const std::size_t n = after.sample_count();
    ASSERT_TRUE(n == n_old || n == n_new)
        << "mixed generations after crash at op " << op << ": " << n;
    const std::int64_t expect_min = n == n_new ? kMinHour : 0;
    for (std::uint32_t d = 0; d < kCompactDrives; ++d) {
      const auto samples = after.read_drive(d);
      ASSERT_EQ(samples.size(), n / kCompactDrives);
      EXPECT_EQ(samples.front().hour, expect_min);
      EXPECT_EQ(samples.back().hour, kCompactHours - 1);
    }
    if (completed) {
      EXPECT_EQ(n, n_new) << "completed compaction must publish the new "
                             "generation";
    }
  }
  // The loop only terminates once a full compaction survived, and the op
  // index proves many distinct crash points were exercised on the way.
  EXPECT_GT(op, 50u);
}

// ENOSPC mid-compaction: the tmp file dies, the old generation survives
// untouched, and recovery counts the deleted tmp.
TEST_F(FaultInjectionTest, CompactionEnospcKeepsOldGeneration) {
  const fs::path dir = base_dir_ / "enospc";
  {
    store::TelemetryStore store(dir.string());
    store.register_drive("d0");
    for (std::int64_t h = 0; h < 40; ++h) store.append(0, sample_for(0, h));
    store.flush();
  }
  {
    io::FaultPlan plan;
    plan.enospc_after_bytes = 512;  // tmp write hits the wall mid-stream
    io::FaultEnv fenv(io::Env::posix(), plan);
    store::StoreOptions so;
    so.env = &fenv;
    store::TelemetryStore store(dir.string(), so);
    EXPECT_THROW(store.compact(10), DataError);
    EXPECT_GT(fenv.faults_injected(), 0u);
  }
  obs::Registry reg;
  store::StoreOptions so;
  so.metrics = &reg;
  store::TelemetryStore after(dir.string(), so);
  EXPECT_EQ(after.sample_count(), 40u);  // old generation, fully intact
  EXPECT_EQ(after.read_drive(0).front().hour, 0);
  EXPECT_EQ(reg.counter("hdd_store_recovery_outcomes_total", "",
                        {{"outcome", "tmp_deleted"}})
                .value(),
            1u);
}

// A transiently failing fsync is retried behind the store's back: the
// flush succeeds, and the retry + the injected fault are both metered.
TEST_F(FaultInjectionTest, TransientFsyncIsRetriedAndCounted) {
  obs::Registry reg;
  io::FaultPlan plan;
  plan.fail_fsync_n = 1;
  plan.fsync_error = io::ErrorClass::kTransient;
  io::FaultEnv fenv(io::Env::posix(), plan, &reg);
  store::StoreOptions so;
  so.env = &fenv;
  so.metrics = &reg;
  so.retry.sleep = false;
  store::TelemetryStore store((base_dir_ / "retry").string(), so);
  store.register_drive("d0");
  store.append(0, sample_for(0, 0));
  store.flush();  // first fsync injected-fails, the retry lands
  EXPECT_EQ(reg.counter("hdd_io_retries_total", "").value(), 1u);
  EXPECT_EQ(reg.counter("hdd_io_faults_injected_total", "").value(), 1u);
  EXPECT_EQ(store.read_drive(0).size(), 1u);
}

// An injected CrashPoint dumps the flight recorder before the exception
// unwinds: the spans recorded up to the crash land in
// <dir>/flight-<pid>.json as valid Chrome trace JSON for the post-mortem.
TEST_F(FaultInjectionTest, CrashPointDumpsFlightRecorder) {
  obs::Tracer::global().set_enabled(true);
  obs::Tracer::global().set_flight_dir(base_dir_.string());
  {
    // A completed span the dump must contain (in-flight spans are only
    // recorded when their scope closes, which is after the dump).
    const obs::ScopedSpan marker("fault_test_flight_marker");
  }
  io::FaultPlan plan;
  plan.crash_at_op = 5;
  io::FaultEnv fenv(io::Env::posix(), plan);
  store::StoreOptions so;
  so.env = &fenv;
  bool crashed = false;
  try {
    store::TelemetryStore store((base_dir_ / "flight").string(), so);
    store.register_drive("d0");
    for (std::int64_t h = 0; h < 40; ++h) store.append(0, sample_for(0, h));
    store.flush();
  } catch (const io::CrashPoint&) {
    crashed = true;
  }
  obs::Tracer::global().set_flight_dir("");
  obs::Tracer::global().set_enabled(false);
  ASSERT_TRUE(crashed);

  const fs::path file =
      base_dir_ / ("flight-" + std::to_string(::getpid()) + ".json");
  ASSERT_TRUE(fs::exists(file));
  std::ifstream is(file);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string json = buf.str();
  EXPECT_TRUE(testjson::json_valid(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"flightReason\":\"crash-point\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fault_test_flight_marker\""), std::string::npos);
}

// A transiently failing operation retried behind the store's back shows
// up in the request's trace as an io.retry child span.
TEST_F(FaultInjectionTest, TransientRetryAppearsAsChildSpan) {
  obs::Tracer::global().set_enabled(true);
  io::FaultPlan plan;
  plan.fail_fsync_n = 1;
  plan.fsync_error = io::ErrorClass::kTransient;
  io::FaultEnv fenv(io::Env::posix(), plan);
  store::StoreOptions so;
  so.env = &fenv;
  so.retry.sleep = false;
  std::uint64_t trace_id = 0;
  {
    const obs::ScopedSpan root("fault_test_retry_root");
    trace_id = root.trace_id();
    store::TelemetryStore store((base_dir_ / "span").string(), so);
    store.register_drive("d0");
    store.append(0, sample_for(0, 0));
    store.flush();  // injected fsync failure -> one retry
  }
  obs::Tracer::global().set_enabled(false);
  bool found = false;
  for (const auto& s : obs::Tracer::global().snapshot(0)) {
    if (s.name != nullptr && std::string_view(s.name) == "io.retry" &&
        s.trace_id == trace_id) {
      found = true;
      ASSERT_NE(s.arg_name, nullptr);
      EXPECT_EQ(std::string_view(s.arg_name), "attempt");
      EXPECT_NE(s.parent_id, 0u);
    }
  }
  EXPECT_TRUE(found);
}

// A permanently failing fsync exhausts no retries (non-transient errors
// fail fast) and surfaces as the store's DataError.
TEST_F(FaultInjectionTest, PermanentFsyncFailsFast) {
  obs::Registry reg;
  io::FaultPlan plan;
  plan.fail_fsync_n = 1;
  plan.fsync_error = io::ErrorClass::kPermanent;
  io::FaultEnv fenv(io::Env::posix(), plan, &reg);
  store::StoreOptions so;
  so.env = &fenv;
  so.metrics = &reg;
  so.retry.sleep = false;
  store::TelemetryStore store((base_dir_ / "perm").string(), so);
  store.register_drive("d0");
  store.append(0, sample_for(0, 0));
  EXPECT_THROW(store.flush(), DataError);
  EXPECT_EQ(reg.counter("hdd_io_retries_total", "").value(), 0u);
}

// Degraded-mode ingest under a filling disk: appends start failing, the
// scorer counts and skips them, keeps scoring, and latches degraded().
TEST_F(FaultInjectionTest, EnospcDegradesScoringWithoutStopping) {
  const MixScorer scorer;
  obs::Registry reg;
  io::FaultPlan plan;
  plan.enospc_after_bytes = 4096;  // a few intervals fit, then the wall
  io::FaultEnv fenv(io::Env::posix(), plan, &reg);
  store::StoreOptions so;
  so.env = &fenv;
  so.metrics = &reg;
  so.retry.sleep = false;
  store::TelemetryStore store((base_dir_ / "fill").string(), so);
  FleetScorer f(scorer, test_config(&reg));
  for (std::uint32_t d = 0; d < kDrives; ++d) f.add_drive(serial_of(d));
  f.attach_journal(&store);
  for (std::int64_t h = 0; h < kHours; ++h) {
    f.observe_samples(interval_at(h), h);  // must not throw
  }
  EXPECT_TRUE(f.degraded());
  EXPECT_GT(f.journal_failures(), 0u);
  EXPECT_EQ(reg.counter("hdd_fleet_journal_append_failures_total", "").value(),
            f.journal_failures());
  EXPECT_GT(reg.counter("hdd_io_faults_injected_total", "").value(), 0u);
  // Scoring continued past the wall: every healthy pre-wall sample plus
  // nothing after it would leave seen_ small; just require progress.
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    seen += f.state(i).samples_seen();
  }
  EXPECT_GT(seen, 0);
}

// Bit flips on the read path surface as taxonomy-counted recovery drops,
// never as crashes or silently wrong samples.
TEST_F(FaultInjectionTest, ReadBitFlipsAreCountedByRecovery) {
  const fs::path dir = base_dir_ / "flip";
  {
    store::TelemetryStore store(dir.string());
    store.register_drive("d0");
    for (std::int64_t h = 0; h < 20; ++h) store.append(0, sample_for(0, h));
    store.flush();
  }
  obs::Registry reg;
  io::FaultPlan plan;
  plan.read_flip_prob = 1.0;  // every read comes back with one bit wrong
  io::FaultEnv fenv(io::Env::posix(), plan, &reg);
  store::StoreOptions so;
  so.env = &fenv;
  so.metrics = &reg;
  store::TelemetryStore store(dir.string(), so);
  EXPECT_GT(fenv.faults_injected(), 0u);
  const auto& rec = store.recovery();
  // A flipped header skips the segment; a flipped body drops records at
  // the CRC. Either way the damage is visible in the recovery stats.
  EXPECT_GT(rec.segments_skipped + rec.records_dropped +
                (rec.tail_truncated ? 1u : 0u),
            0u);
}

// Quarantine: a non-finite sample is skipped everywhere — voting state,
// history, journal — and counted; healthy drives in the same interval
// score normally.
TEST_F(FaultInjectionTest, NonFiniteSamplesAreQuarantined) {
  const MixScorer scorer;
  obs::Registry reg;
  store::StoreOptions so;
  so.metrics = &reg;
  store::TelemetryStore store((base_dir_ / "quar").string(), so);
  FleetScorer f(scorer, test_config(&reg));
  for (std::uint32_t d = 0; d < kDrives; ++d) f.add_drive(serial_of(d));
  f.attach_journal(&store);
  for (std::int64_t h = 0; h < 4; ++h) {
    auto batch = interval_at(h);
    if (h == 2) {
      batch[3].set(smart::Attr::kRawReadErrorRate,
                   std::numeric_limits<float>::quiet_NaN());
    }
    f.observe_samples(batch, h);
  }
  EXPECT_EQ(f.quarantined_samples(), 1u);
  EXPECT_EQ(reg.counter("hdd_fleet_quarantined_samples_total", "").value(),
            1u);
  EXPECT_FALSE(f.degraded());  // quarantine is hygiene, not degradation
  EXPECT_EQ(f.state(3).samples_seen(), 3);  // skipped exactly one interval
  EXPECT_EQ(f.state(0).samples_seen(), 4);
  EXPECT_EQ(store.read_drive(3, 2, 2).size(), 0u);  // never journaled
  EXPECT_EQ(store.read_drive(0, 2, 2).size(), 1u);
}

// Out-of-domain values are quarantined only under kFullDomain.
TEST_F(FaultInjectionTest, DomainPolicyQuarantinesVendorRangeViolations) {
  smart::Sample s = sample_for(0, 0);
  EXPECT_EQ(smart::classify_sample(s, /*domain_check=*/false),
            smart::SampleFault::kNone);
  // The synthetic value is in [-1, 1): off the vendor 1-253 scale.
  EXPECT_EQ(smart::classify_sample(s, /*domain_check=*/true),
            smart::SampleFault::kOutOfDomain);
  s.set(smart::Attr::kSpinUpTime, std::numeric_limits<float>::infinity());
  EXPECT_EQ(smart::classify_sample(s, /*domain_check=*/false),
            smart::SampleFault::kNonFinite);
}

// --- serve-loop scenarios --------------------------------------------------
//
// The daemon's ingest path (ShardEngine -> FleetScorer::ingest_drive ->
// TelemetryStore::append_batch) under the same 200-seed fault schedules.
// Unlike the lockstep observe_samples harness above, drives here report on
// their own clocks in per-drive chunks, exactly as network clients send
// them.

constexpr std::uint64_t kServeMaxOps = 150;

serve::ShardEngineConfig serve_config(const fs::path& dir,
                                      const SampleScorer* scorer,
                                      io::Env* env, obs::Registry* reg) {
  serve::ShardEngineConfig ec;
  ec.dir = dir.string();
  ec.shards = 2;
  ec.runtime.scorer = scorer;
  ec.runtime.features = two_features();
  ec.runtime.vote.voters = 5;
  ec.runtime.block_rows = 4;
  ec.runtime.metrics = reg;
  ec.runtime.store.metrics = reg;
  ec.runtime.store.env = env;
  ec.runtime.store.retry.sleep = false;
  return ec;
}

serve::IngestBatch drive_chunk(std::uint32_t d, std::int64_t from,
                               std::int64_t to) {
  serve::IngestBatch b;
  for (std::int64_t h = from; h < to; ++h) {
    b.serials.push_back(serial_of(d));
    b.samples.push_back(sample_for(d, h));
  }
  return b;
}

void serve_ingest_all(serve::ShardEngine& engine, std::int64_t chunk_hours) {
  for (std::int64_t h = 0; h < kHours; h += chunk_hours) {
    for (std::uint32_t d = 0; d < kDrives; ++d) {
      engine.ingest(engine.shard_of(serial_of(d)),
                    drive_chunk(d, h, std::min(h + chunk_hours, kHours)));
    }
  }
}

std::vector<Outcome> serve_outcomes(const serve::ShardEngine& engine) {
  std::vector<Outcome> out(kDrives);
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const auto q = engine.query(serial_of(d));
    out[d] = {q.alarmed, q.alarm_hour};
  }
  return out;
}

// Acceptance criterion: 200 randomized fault schedules through the serve
// ingest loop, kill -> restart -> resume -> idempotent re-send.
// Journal-before-score makes lossless runs exactly convergent: a sample is
// scored only once journaled, so resume + re-send reproduces the
// fault-free alarm state byte for byte.
TEST_F(FaultInjectionTest, ServeLoopKillRestartResume) {
  const MixScorer scorer;
  std::vector<Outcome> expected;
  {
    serve::ShardEngine ref(
        serve_config(base_dir_ / "ref", &scorer, nullptr, nullptr));
    serve_ingest_all(ref, 6);
    expected = serve_outcomes(ref);
  }
  // The biased construction must actually produce alarms to compare.
  ASSERT_TRUE(std::any_of(expected.begin(), expected.end(),
                          [](const Outcome& o) { return o.alarmed; }));

  std::size_t n_crashed = 0;
  std::size_t n_lossless = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const fs::path dir = base_dir_ / ("s" + std::to_string(seed));
    fs::remove_all(dir);
    obs::Registry reg;
    io::FaultEnv fenv(io::Env::posix(),
                      io::FaultPlan::random(seed, kServeMaxOps), &reg);
    bool crashed = false;
    bool errored = false;
    try {
      serve::ShardEngine engine(serve_config(dir, &scorer, &fenv, &reg));
      serve_ingest_all(engine, 6);
    } catch (const io::CrashPoint&) {
      crashed = true;  // simulated kill -9 mid-ingest
    } catch (const std::exception&) {
      errored = true;  // store-level failure outside ingest_drive's catches
    }
    n_crashed += crashed ? 1 : 0;
    const std::uint64_t failures =
        reg.counter("hdd_fleet_journal_append_failures_total", "").value();

    // Restart on healthy hardware: recover, resume, re-send everything.
    obs::Registry rec_reg;
    serve::ShardEngine engine(
        serve_config(dir, &scorer, nullptr, &rec_reg));
    engine.resume();
    serve_ingest_all(engine, 6);

    if (failures == 0 && !errored) {
      // Invariant B: nothing was dropped pre-kill, so the resumed daemon
      // is indistinguishable from one that never died.
      ++n_lossless;
      EXPECT_EQ(serve_outcomes(engine), expected)
          << "alarm divergence without data loss, seed " << seed;
    } else {
      // Invariant A: loss happened but was counted, recovery completed,
      // and the restarted daemon still serves all drives.
      EXPECT_GT(fenv.faults_injected() + failures, 0u) << "seed " << seed;
      for (std::uint32_t d = 0; d < kDrives; ++d) {
        EXPECT_TRUE(engine.query(serial_of(d)).known) << "seed " << seed;
      }
    }
  }
  EXPECT_GE(n_crashed, 80u);
  EXPECT_GE(n_lossless, 30u);
}

// The retry policy's attempt accounting, without any filesystem.
TEST_F(FaultInjectionTest, RetryerBoundsAndClassifies) {
  obs::Registry reg;
  io::RetryPolicy pol;
  pol.max_attempts = 4;
  pol.sleep = false;
  const io::Retryer retry(pol, &reg);

  int calls = 0;
  auto s = retry.run("flaky", [&] {
    ++calls;
    return calls < 3 ? io::IoStatus::transient_error("busy", EBUSY)
                     : io::IoStatus::success();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(reg.counter("hdd_io_retries_total", "").value(), 2u);

  calls = 0;
  s = retry.run("dead", [&] {
    ++calls;
    return io::IoStatus::permanent_error("no space", ENOSPC);
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);  // permanent errors never retry
  EXPECT_EQ(reg.counter("hdd_io_retries_total", "").value(), 2u);

  calls = 0;
  s = retry.run("always-busy", [&] {
    ++calls;
    return io::IoStatus::transient_error("busy", EBUSY);
  });
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.transient());
  EXPECT_EQ(calls, 4);  // bounded by max_attempts
}

}  // namespace
}  // namespace hdd::core
