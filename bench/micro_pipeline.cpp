// Micro-benchmarks (google-benchmark): the continuous-update pipeline's
// two costs that sit on the serve hot path.
//
//  * BM_HotSwapPublish      — SwappableScorer::swap() latency: the atomic
//                             generation publish a promotion performs while
//                             scoring threads keep reading.
//  * BM_SwappablePredict    — predict() through the swappable indirection
//                             (acquire-load + shared_ptr-free fast path),
//                             vs BM_DirectPredict on the underlying model:
//                             the per-sample cost of hot-swappability.
//  * BM_FleetObserve        — FleetScorer::observe_samples with no shadow
//                             installed (the steady state).
//  * BM_FleetObserveShadow  — the same interval stream while a shadow
//                             candidate double-scores every sample. The
//                             delta over BM_FleetObserve is the per-sample
//                             shadow cost; the acceptance bar (DESIGN.md
//                             §10) is <= 10% of the daemon's journaled
//                             ingest path (BM_ServeLoopbackIngest in
//                             micro_serve). tools/bench.sh records all the
//                             rows in BENCH_obs.json so CI can diff the
//                             ratio.
//
// Hours advance monotonically across iterations so the stale rule never
// short-circuits scoring, and the scorers return constant healthy margins
// so no drive alarms (alarmed drives stop scoring, flattering the rate).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fleet.h"
#include "core/scorer.h"
#include "core/swappable.h"
#include "data/matrix.h"
#include "smart/drive.h"
#include "smart/features.h"
#include "tree/tree.h"

namespace {

using namespace hdd;

constexpr std::uint32_t kDrives = 256;

class HealthyScorer final : public core::SampleScorer {
 public:
  double predict(std::span<const float>) const override { return 0.5; }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (auto& o : out) o = 0.5;
    benchmark::DoNotOptimize(xs.data());
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "healthy"; }
};

// The production hot path scores the paper's 13-feature stat set through a
// trained CART; the shadow budget is judged against that path, not a toy
// scorer (a near-free primary path would make any fixed shadow cost look
// enormous in relative terms).
class BenchTreeScorer final : public core::SampleScorer {
 public:
  explicit BenchTreeScorer(std::uint64_t seed) {
    Rng rng(seed);
    data::DataMatrix m(13);
    m.reserve(20000);
    std::vector<float> row(13);
    for (std::size_t i = 0; i < 20000; ++i) {
      for (auto& v : row) v = static_cast<float>(rng.uniform(0, 100));
      const bool failed = row[0] + row[1] > 110.0f;
      m.add_row(row, failed ? -1.0f : 1.0f, 1.0f);
    }
    tree_.fit(m, tree::Task::kClassification, tree::TreeParams{});
  }
  double predict(std::span<const float> x) const override {
    return tree_.predict(x);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    tree_.predict_batch(xs, out);
  }
  int num_features() const override { return tree_.num_features(); }
  std::string summary() const override { return "bench tree"; }

 private:
  tree::DecisionTree tree_;
};

// Healthy telemetry (small attribute values land on the trained tree's +1
// side, so no drive ever alarms and scoring never early-exits).
std::vector<smart::Sample> make_interval(std::int64_t hour) {
  std::vector<smart::Sample> interval(kDrives);
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    smart::Sample s;
    s.hour = hour;
    for (smart::Attr a :
         {smart::Attr::kRawReadErrorRate, smart::Attr::kSpinUpTime,
          smart::Attr::kReallocatedSectors, smart::Attr::kSeekErrorRate,
          smart::Attr::kPowerOnHours, smart::Attr::kReportedUncorrectable,
          smart::Attr::kHighFlyWrites, smart::Attr::kTemperatureCelsius,
          smart::Attr::kHardwareEccRecovered,
          smart::Attr::kReallocatedSectorsRaw}) {
      s.set(a, 0.1f * static_cast<float>((d + static_cast<int>(a)) % 7));
    }
    interval[d] = s;
  }
  return interval;
}

core::FleetScorerConfig fleet_config() {
  core::FleetScorerConfig fc;
  fc.features = smart::stat13_features();
  fc.vote.voters = 11;
  return fc;
}

void register_drives(core::FleetScorer& fleet) {
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    fleet.add_drive("bench-" + std::to_string(d));
  }
}

void BM_HotSwapPublish(benchmark::State& state) {
  const auto a = std::make_shared<const HealthyScorer>();
  const auto b = std::make_shared<const HealthyScorer>();
  core::SwappableScorer slot(a, 0);
  std::uint64_t gen = 0;
  for (auto _ : state) {
    ++gen;
    slot.swap(gen % 2 == 0 ? a : b, gen);
    benchmark::DoNotOptimize(slot.generation());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotSwapPublish)->Unit(benchmark::kNanosecond);

void BM_DirectPredict(benchmark::State& state) {
  const HealthyScorer scorer;
  const float x[2] = {0.1f, 0.5f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectPredict)->Unit(benchmark::kNanosecond);

void BM_SwappablePredict(benchmark::State& state) {
  core::SwappableScorer slot(std::make_shared<const HealthyScorer>(), 0);
  const float x[2] = {0.1f, 0.5f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(slot.predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwappablePredict)->Unit(benchmark::kNanosecond);

void BM_FleetObserve(benchmark::State& state) {
  const BenchTreeScorer scorer(7);
  core::FleetScorer fleet(scorer, fleet_config());
  register_drives(fleet);
  std::int64_t hour = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto interval = make_interval(hour++);
    state.ResumeTiming();
    fleet.observe_samples(interval, interval.front().hour);
  }
  state.SetItemsProcessed(state.iterations() * kDrives);
}
BENCHMARK(BM_FleetObserve)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_FleetObserveShadow(benchmark::State& state) {
  const BenchTreeScorer scorer(7);
  core::FleetScorer fleet(scorer, fleet_config());
  register_drives(fleet);
  fleet.set_shadow(std::make_shared<const BenchTreeScorer>(11));
  std::int64_t hour = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto interval = make_interval(hour++);
    state.ResumeTiming();
    fleet.observe_samples(interval, interval.front().hour);
  }
  state.SetItemsProcessed(state.iterations() * kDrives);
}
BENCHMARK(BM_FleetObserveShadow)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
