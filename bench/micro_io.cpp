// Micro-benchmarks (google-benchmark): the io::Env seam.
//
// Every store write crosses the Env virtual interface (DESIGN.md §8). The
// acceptance bar for keeping that seam in the hot append path: PosixEnv
// (virtual dispatch + user-space buffering) stays within 3% of a direct
// stdio loop, and an empty-plan FaultEnv passthrough adds only the per-op
// bookkeeping on top. tools/bench.sh records these numbers in
// BENCH_obs.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "io/env.h"
#include "io/fault_env.h"

namespace {

using namespace hdd;
namespace fs = std::filesystem;

// One store-frame-sized record (header + sample payload ≈ 64 bytes).
std::string bench_record() { return std::string(64, 'x'); }

// Baseline: buffered stdio appends, the pre-Env write path.
void BM_DirectAppend(benchmark::State& state) {
  const auto path = fs::temp_directory_path() / "hdd_bench_io_direct.log";
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string rec = bench_record();
  for (auto _ : state) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(std::fwrite(rec.data(), 1, rec.size(), f));
    }
    std::fclose(f);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  fs::remove(path);
}
BENCHMARK(BM_DirectAppend)->Arg(100000)->Unit(benchmark::kMillisecond);

// The same appends through the Env seam (virtual File + 64 KiB buffer).
void BM_EnvAppend(benchmark::State& state) {
  const auto path = fs::temp_directory_path() / "hdd_bench_io_env.log";
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string rec = bench_record();
  io::Env& env = io::Env::posix();
  for (auto _ : state) {
    std::unique_ptr<io::File> f;
    benchmark::DoNotOptimize(
        env.new_append_file(path.string(), /*truncate=*/true, f));
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(f->append(rec));
    }
    benchmark::DoNotOptimize(f->close());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  fs::remove(path);
}
BENCHMARK(BM_EnvAppend)->Arg(100000)->Unit(benchmark::kMillisecond);

// An empty-plan FaultEnv in the stack: what test builds pay for keeping
// the injection decorator compiled in (per-append RNG draws + atomics).
void BM_FaultEnvPassthroughAppend(benchmark::State& state) {
  const auto path = fs::temp_directory_path() / "hdd_bench_io_fault.log";
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string rec = bench_record();
  obs::Registry* no_metrics = nullptr;
  io::FaultEnv env(io::Env::posix(), io::FaultPlan{}, no_metrics);
  for (auto _ : state) {
    std::unique_ptr<io::File> f;
    benchmark::DoNotOptimize(
        env.new_append_file(path.string(), /*truncate=*/true, f));
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(f->append(rec));
    }
    benchmark::DoNotOptimize(f->close());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  fs::remove(path);
}
BENCHMARK(BM_FaultEnvPassthroughAppend)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
