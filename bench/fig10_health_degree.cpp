// Figure 10 — ROC of the RT health-degree model (personalized deterioration
// windows, Eq. 6) versus the RT trained as a plain ±1 classifier, sweeping
// the detection threshold at N = 11. Expected shape: the health-degree
// curve sits closer to the upper-left corner and reaches FDR > 96%.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/health.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.5);
  bench::print_header("Figure 10: health-degree model ROC (family W)", args);

  std::cout << "Paper: health-degree model dominates the +/-1 RT classifier; "
               "max FDR > 96%.\nThresholds (health): -0.5..0.0; "
               "(classifier): -0.94..0.0\n\n";

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  // Health-degree model (Eq. 6, personalized windows).
  {
    core::HealthModelConfig cfg;
    cfg.personalized = true;
    core::HealthDegreeModel model(cfg);
    model.fit(exp.fleet, exp.split);

    const auto scores =
        eval::score_dataset(exp.fleet, exp.split,
                            cfg.ct_config.training.features,
                            model.sample_model());
    const double thresholds[] = {-0.5, -0.37, -0.3, -0.2, -0.1, -0.02, 0.0};
    const auto points = eval::roc_over_thresholds(scores, 11, thresholds);

    std::cout << "Health-degree RT (personalized windows):\n";
    Table t({"threshold", "FAR (%)", "FDR (%)", "TIA (hours)"});
    for (const auto& p : points) {
      t.row()
          .cell(p.param, 2)
          .cell(100.0 * p.x, 3)
          .cell(100.0 * p.y, 2)
          .cell(p.mean_tia, 1);
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // Control group: RT trained with plain +1/-1 targets.
  {
    auto cfg = core::paper_rt_classifier_config();
    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);
    const auto scores = eval::score_dataset(
        exp.fleet, exp.split, cfg.training.features, predictor.sample_model());
    const double thresholds[] = {-0.94, -0.86, -0.6, -0.4, -0.2, -0.05, 0.0};
    const auto points = eval::roc_over_thresholds(scores, 11, thresholds);

    std::cout << "RT classifier control (targets +1/-1):\n";
    Table t({"threshold", "FAR (%)", "FDR (%)", "TIA (hours)"});
    for (const auto& p : points) {
      t.row()
          .cell(p.param, 2)
          .cell(100.0 * p.x, 3)
          .cell(100.0 * p.y, 2)
          .cell(p.mean_tia, 1);
    }
    t.print(std::cout);
  }
  return 0;
}
