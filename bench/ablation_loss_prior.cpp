// Ablation (DESIGN.md §5.2): the two weighting devices of the CT training
// recipe — the 20/80 prior boost and the 10:1 false-alarm loss — swept
// independently. Expected: the prior boost buys detection, the loss weight
// buys back false alarms; the paper's (0.20, 10x) pair sits on the knee.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header("Ablation: failed prior x false-alarm loss (CT)",
                      args);

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  Table t({"failed prior", "FA loss", "FAR (%)", "FDR (%)", "tree nodes"});
  for (double prior : {0.0, 0.10, 0.20, 0.35}) {
    for (double loss : {1.0, 5.0, 10.0, 20.0}) {
      auto cfg = core::paper_ct_config();
      cfg.training.failed_prior = prior;
      cfg.training.loss_false_alarm = loss;
      core::FailurePredictor p(cfg);
      p.fit(exp.fleet, exp.split);
      const auto r = p.evaluate(exp.fleet, exp.split);
      t.row()
          .cell(prior, 2)
          .cell(loss, 0)
          .cell(100.0 * r.far(), 3)
          .cell(100.0 * r.fdr(), 2)
          .cell(static_cast<long long>(p.tree()->node_count()));
    }
  }
  t.print(std::cout);
  return 0;
}
