// Ablation (DESIGN.md §5.3): the Complexity Parameter — how Algorithm 1's
// prune-by-gain threshold trades tree size against accuracy and stability.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header("Ablation: Complexity Parameter (CP) sweep", args);

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  Table t({"cp", "nodes", "depth", "FAR (%)", "FDR (%)"});
  for (double cp : {0.0, 0.0005, 0.001, 0.005, 0.02, 0.08}) {
    auto cfg = core::paper_ct_config();
    cfg.tree_params.cp = cp;
    core::FailurePredictor p(cfg);
    p.fit(exp.fleet, exp.split);
    const auto r = p.evaluate(exp.fleet, exp.split);
    t.row()
        .cell(cp, 4)
        .cell(static_cast<long long>(p.tree()->node_count()))
        .cell(static_cast<long long>(p.tree()->depth()))
        .cell(100.0 * r.far(), 3)
        .cell(100.0 * r.fdr(), 2);
  }
  t.print(std::cout);
  std::cout << "\n(Expected: cp=0 overfits with a large tree; the paper's "
               "0.001 keeps the tree\nsmall with no FDR loss; very large cp "
               "prunes real structure away.)\n";
  return 0;
}
