// Figures 3 & 4 — distribution of detection time-in-advance for the BP ANN
// and CT models under voting detection. Both histograms should concentrate
// in the 337-450 h bucket with a small early tail, and almost all correct
// detections should be >= 24 h before failure.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.5);
  bench::print_header("Figures 3-4: time-in-advance distributions", args);

  std::cout << "Paper: BP ANN (84.21% det) buckets = 3/3/14/27/65;\n"
               "       CT     (93.23% det) buckets = 3/4/13/31/73\n\n";

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  for (const bool use_ct : {false, true}) {
    auto cfg = use_ct ? core::paper_ct_config() : core::paper_ann_config();
    // The paper plots Fig. 3 at N=27 for ANN and N=27 for CT (the low-FAR
    // ends of the Fig. 2 curves).
    cfg.vote.voters = 27;

    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);
    const auto r = predictor.evaluate(exp.fleet, exp.split);
    const auto buckets = eval::tia_histogram(r.tia_hours);

    std::cout << (use_ct ? "CT model" : "BP ANN model") << " (FDR "
              << hdd::format_double(100.0 * r.fdr(), 2) << "%, FAR "
              << hdd::format_double(100.0 * r.far(), 3) << "%, mean TIA "
              << hdd::format_double(r.mean_tia(), 1) << " h):\n";
    Table t({"TIA bucket (hours)", "drives"});
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      t.row()
          .cell(eval::kTiaBucketLabels[b])
          .cell(static_cast<long long>(buckets[b]));
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
