// Micro-benchmarks (google-benchmark): static-verifier throughput. The
// verifier runs on every model load in kWarn/kStrict mode and inside
// `hddpredict lint`, so its cost must stay negligible next to training —
// the iterative interval DFS is O(nodes) interval updates, and these
// benchmarks pin that down on deep trees and wide forests.
#include <benchmark/benchmark.h>

#include <cstddef>

#include "analysis/verifier.h"
#include "common/rng.h"
#include "data/matrix.h"
#include "forest/random_forest.h"
#include "smart/features.h"
#include "tree/tree.h"

namespace {

using namespace hdd;

data::DataMatrix make_training_matrix(std::size_t rows, int cols) {
  Rng rng(7);
  data::DataMatrix m(cols);
  std::vector<float> row(static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    double margin = 0.0;
    for (std::size_t f = 0; f < row.size(); ++f) {
      row[f] = static_cast<float>(rng.uniform(1.0, 253.0));
      margin += (f % 2 == 0 ? 1.0 : -1.0) * row[f];
    }
    m.add_row(row, margin + rng.normal(0.0, 40.0) > 0.0 ? 1.0f : -1.0f,
              1.0f);
  }
  return m;
}

tree::DecisionTree make_tree(std::size_t rows) {
  tree::TreeParams params;
  params.cp = 0.0;  // no pruning: the largest tree the data supports
  params.min_split = 4;
  params.min_bucket = 2;
  tree::DecisionTree t;
  t.fit(make_training_matrix(rows, 13), tree::Task::kClassification, params);
  return t;
}

void BM_VerifyTree(benchmark::State& state) {
  const auto t = make_tree(static_cast<std::size_t>(state.range(0)));
  analysis::VerifyOptions opt;
  opt.domains =
      analysis::FeatureDomains::for_feature_set(smart::stat13_features());
  for (auto _ : state) {
    const auto report = analysis::verify_tree(t, opt);
    benchmark::DoNotOptimize(report);
  }
  state.counters["nodes"] = static_cast<double>(t.node_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.node_count()));
}
BENCHMARK(BM_VerifyTree)->Arg(2000)->Arg(20000);

void BM_VerifyForest(benchmark::State& state) {
  forest::ForestConfig cfg;
  cfg.n_trees = static_cast<int>(state.range(0));
  cfg.tree_params.cp = 0.0;
  cfg.tree_params.min_split = 4;
  cfg.tree_params.min_bucket = 2;
  forest::RandomForest f;
  f.fit(make_training_matrix(4000, 13), tree::Task::kClassification, cfg);

  std::size_t nodes = 0;
  for (std::size_t i = 0; i < f.tree_count(); ++i) {
    nodes += f.member_tree(i).node_count();
  }
  analysis::VerifyOptions opt;
  opt.domains =
      analysis::FeatureDomains::for_feature_set(smart::stat13_features());
  for (auto _ : state) {
    const auto report = analysis::verify_forest(f, opt);
    benchmark::DoNotOptimize(report);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_VerifyForest)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
