// Micro-benchmarks (google-benchmark): the serve ingest path.
//
// Three nested scopes of the daemon's hot loop, each reporting
// items_per_second in samples:
//
//  * BM_WireIngestCodec    — encode + frame + reassemble + decode only.
//  * BM_EngineIngest       — ShardEngine::ingest (journal + score), no
//                            sockets.
//  * BM_ServeLoopbackIngest — the whole daemon: Client over TCP loopback
//                            through the acceptor, shard worker, journal
//                            and scorer. The acceptance bar (DESIGN.md §9)
//                            is >= 1M sustained samples/s on one core;
//                            tools/bench.sh records the numbers in
//                            BENCH_obs.json.
//
// Hours advance monotonically across iterations so every sample is fresh:
// re-sent hours would be dropped by the stale rule before the journal and
// the scorer, which would measure the skip path, not sustained ingest.
// The scorer returns a constant healthy margin so no drive ever alarms
// (alarmed drives stop scoring, which would also flatter the numbers).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/scorer.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/shard_engine.h"
#include "serve/wire.h"
#include "smart/drive.h"

namespace {

using namespace hdd;
namespace fs = std::filesystem;

constexpr std::uint32_t kDrives = 64;
constexpr std::int64_t kHoursPerBatch = 256;  // 16384 samples per request

class HealthyScorer final : public core::SampleScorer {
 public:
  double predict(std::span<const float>) const override { return 0.5; }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    for (auto& o : out) o = 0.5;
    benchmark::DoNotOptimize(xs.data());
  }
  int num_features() const override { return 2; }
  std::string summary() const override { return "healthy"; }
};

smart::FeatureSet two_features() {
  return {"t2",
          {{smart::Attr::kRawReadErrorRate, 0},
           {smart::Attr::kTemperatureCelsius, 6}}};
}

// Drive-major batch (consecutive same-serial runs become single
// ingest_drive calls). Hours are offsets; advance() shifts the whole
// batch forward so the next iteration's samples are all fresh.
serve::IngestBatch make_batch() {
  serve::IngestBatch b;
  b.serials.reserve(kDrives * kHoursPerBatch);
  b.samples.reserve(kDrives * kHoursPerBatch);
  for (std::uint32_t d = 0; d < kDrives; ++d) {
    const std::string serial = "bench-" + std::to_string(d);
    for (std::int64_t h = 0; h < kHoursPerBatch; ++h) {
      b.serials.push_back(serial);
      smart::Sample s;
      s.hour = h;
      s.set(smart::Attr::kRawReadErrorRate, 0.1f * static_cast<float>(d % 7));
      s.set(smart::Attr::kTemperatureCelsius, 0.5f);
      b.samples.push_back(s);
    }
  }
  return b;
}

void advance(serve::IngestBatch& b) {
  for (auto& s : b.samples) s.hour += kHoursPerBatch;
}

serve::ShardEngineConfig engine_config(const fs::path& dir,
                                       const core::SampleScorer* scorer,
                                       obs::Registry* reg) {
  serve::ShardEngineConfig ec;
  ec.dir = dir.string();
  ec.shards = 1;
  ec.runtime.scorer = scorer;
  ec.runtime.features = two_features();
  ec.runtime.vote.voters = 11;
  ec.runtime.metrics = reg;
  ec.runtime.store.metrics = reg;
  return ec;
}

void BM_WireIngestCodec(benchmark::State& state) {
  const auto batch = make_batch();
  const std::string framed =
      serve::frame_payload(serve::encode_ingest_request(batch));
  for (auto _ : state) {
    serve::FrameParser parser;
    parser.feed(framed);
    std::string payload;
    if (parser.next(payload) != serve::FrameParser::Result::kFrame) {
      state.SkipWithError("frame did not parse");
    }
    const auto req = serve::decode_request(payload);
    benchmark::DoNotOptimize(req->ingest.samples.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.samples.size()));
}
BENCHMARK(BM_WireIngestCodec)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EngineIngest(benchmark::State& state) {
  const auto dir = fs::temp_directory_path() / "hdd_bench_serve_engine";
  fs::remove_all(dir);
  const HealthyScorer scorer;
  obs::Registry reg;
  serve::ShardEngine engine(engine_config(dir, &scorer, &reg));
  auto batch = make_batch();
  for (auto _ : state) {
    const auto r = engine.ingest(0, batch);
    if (r.accepted != batch.samples.size()) {
      state.SkipWithError("samples were not accepted");
    }
    state.PauseTiming();
    advance(batch);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.samples.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_EngineIngest)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServeLoopbackIngest(benchmark::State& state) {
  const auto dir = fs::temp_directory_path() / "hdd_bench_serve_loop";
  fs::remove_all(dir);
  const HealthyScorer scorer;
  obs::Registry reg;
  serve::ShardEngine engine(engine_config(dir, &scorer, &reg));
  serve::ServeOptions so;
  so.metrics = &reg;
  serve::Server server(engine, so);
  server.start();
  serve::Client client;
  client.connect("127.0.0.1", server.port());
  auto batch = make_batch();
  for (auto _ : state) {
    const auto r = client.ingest(batch);
    if (r.accepted != batch.samples.size()) {
      state.SkipWithError("samples were not accepted");
    }
    state.PauseTiming();
    advance(batch);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.samples.size()));
  client.close();
  server.stop();
  fs::remove_all(dir);
}
BENCHMARK(BM_ServeLoopbackIngest)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
