// Micro-benchmarks (google-benchmark): the obs instrumentation hot paths.
// The acceptance bar for leaving instruments in the scoring and append
// loops (DESIGN.md §7): a disabled instrument costs a relaxed flag load
// (~<=2 ns), an enabled counter increment one extra thread-affine
// fetch_add (~<=20 ns). tools/bench.sh records these numbers in
// BENCH_obs.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>

#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace hdd;

void BM_CounterInc(benchmark::State& state) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("bench_total", "bench");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncDisabled(benchmark::State& state) {
  obs::Registry reg(/*enabled=*/false);
  obs::Counter& c = reg.counter("bench_total", "bench");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterIncDisabled);

void BM_GaugeAdd(benchmark::State& state) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("bench_depth", "bench");
  for (auto _ : state) {
    g.add(1.0);
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench_ns", "bench");
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v += 257.0;  // walk the buckets
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramRecordDisabled(benchmark::State& state) {
  obs::Registry reg(/*enabled=*/false);
  obs::Histogram& h = reg.histogram("bench_ns", "bench");
  for (auto _ : state) {
    h.record(1024.0);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_ScopedTimer(benchmark::State& state) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("bench_ns", "bench");
  for (auto _ : state) {
    const obs::ScopedTimer timer(&h);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ScopedTimer);

void BM_ScopedTimerDisabled(benchmark::State& state) {
  obs::Registry reg(/*enabled=*/false);
  obs::Histogram& h = reg.histogram("bench_ns", "bench");
  for (auto _ : state) {
    const obs::ScopedTimer timer(&h);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ScopedTimerDisabled);

// Span-tracing hot paths (obs/trace.h). The acceptance bar for tracing
// the full request path (DESIGN.md §12): an enabled span costs two clock
// reads (BM_SpanTimestampFloor — pure hardware, ~14 ns on desktop cores,
// ~30 ns where rdtsc is slow) plus <= ~10 ns of ring bookkeeping, i.e.
// BM_SpanEnabled - BM_SpanTimestampFloor <= ~10 ns and BM_SpanEnabled
// itself <= ~25 ns wherever the clock pair stays under ~15 ns; a
// disabled span is one relaxed flag load, <= ~2 ns.
void BM_SpanTimestampFloor(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += obs::trace_now_ticks();
    sink += obs::trace_now_ticks();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SpanTimestampFloor);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer::global().set_enabled(true);
  for (auto _ : state) {
    const obs::ScopedSpan span("bench_span");
    benchmark::ClobberMemory();
  }
  obs::Tracer::global().set_enabled(false);
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledArg(benchmark::State& state) {
  obs::Tracer::global().set_enabled(true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const obs::ScopedSpan span("bench_span", "i", ++i);
    benchmark::ClobberMemory();
  }
  obs::Tracer::global().set_enabled(false);
}
BENCHMARK(BM_SpanEnabledArg);

void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer::global().set_enabled(false);
  for (auto _ : state) {
    const obs::ScopedSpan span("bench_span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

// Snapshot + render cost for a realistically sized registry — the price of
// one --metrics-out dump at process exit.
void BM_SnapshotRender(benchmark::State& state) {
  obs::Registry reg;
  for (int i = 0; i < 32; ++i) {
    reg.counter("bench_c" + std::to_string(i) + "_total", "bench").inc(7);
    reg.histogram("bench_h" + std::to_string(i) + "_ns", "bench")
        .record(1 << (i % 20));
  }
  for (auto _ : state) {
    std::ostringstream os;
    obs::render_prometheus(reg.snapshot(), os);
    benchmark::DoNotOptimize(os.str());
  }
}
BENCHMARK(BM_SnapshotRender);

}  // namespace

BENCHMARK_MAIN();
