// Ablation (paper future work / prior work [11]): the plain CT against a
// random forest and AdaBoost, including training cost. The paper's own
// finding for AdaBoost was "no significant improvement and much more
// computationally expensive"; random forest is its suggested future work.
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header("Ablation: CT vs RandomForest vs AdaBoost", args);

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  struct Candidate {
    const char* name;
    core::ModelType type;
  };
  const Candidate candidates[] = {
      {"CT (paper)", core::ModelType::kClassificationTree},
      {"RandomForest (40 trees)", core::ModelType::kRandomForest},
      {"AdaBoost (30 rounds)", core::ModelType::kAdaBoost},
  };

  Table t({"model", "FAR (%)", "FDR (%)", "TIA (hours)", "train (ms)"});
  for (const auto& c : candidates) {
    auto cfg = core::paper_ct_config();
    cfg.model = c.type;
    core::FailurePredictor p(cfg);
    const auto start = std::chrono::steady_clock::now();
    p.fit(exp.fleet, exp.split);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    const auto r = p.evaluate(exp.fleet, exp.split);
    t.row()
        .cell(c.name)
        .cell(100.0 * r.far(), 3)
        .cell(100.0 * r.fdr(), 2)
        .cell(r.mean_tia(), 1)
        .cell(static_cast<long long>(elapsed.count()));
  }
  t.print(std::cout);
  std::cout << "\n(The paper's conclusion to check: ensembles cost much "
               "more to train for little\naccuracy gain over the plain CT "
               "at this operating point.)\n";
  return 0;
}
