// Table III — effectiveness of three feature sets (12 basic / 19 expert /
// 13 statistical) for both the BP ANN and CT models. Detection here is the
// pre-voting rule of Section V-A2: a drive alarms if *any* test sample is
// classified failed (voters = 1). Failed time window: 12 h, as in the paper.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.5);
  bench::print_header("Table III: effectiveness of three feature sets", args);

  std::cout << "Paper:\n"
            << "  BP ANN  12f: FAR 0.44  FDR 89.47  TIA 347.7\n"
            << "          19f: FAR 0.25  FDR 90.23  TIA 345.5\n"
            << "          13f: FAR 0.20  FDR 90.98  TIA 342.5\n"
            << "  CT      12f: FAR 0.57  FDR 95.49  TIA 352.4\n"
            << "          19f: FAR 0.63  FDR 94.74  TIA 351.4\n"
            << "          13f: FAR 0.56  FDR 95.49  TIA 351.4\n\n";

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  struct Row {
    const char* model;
    smart::FeatureSet features;
    int hidden;  // ANN hidden units (paper's topologies)
  };
  const Row rows[] = {
      {"BP ANN", smart::basic12_features(), 20},
      {"BP ANN", smart::expert19_features(), 30},
      {"BP ANN", smart::stat13_features(), 13},
      {"CT", smart::basic12_features(), 0},
      {"CT", smart::expert19_features(), 0},
      {"CT", smart::stat13_features(), 0},
  };

  Table t({"Model", "Features", "FAR (%)", "FDR (%)", "TIA (hours)"});
  for (const auto& row : rows) {
    core::PredictorConfig cfg;
    if (row.hidden > 0) {
      cfg = core::paper_ann_config();
      cfg.ann.hidden = row.hidden;
    } else {
      cfg = core::paper_ct_config();
      cfg.training.failed_window_hours = 12;  // Table III uses 12 h
    }
    cfg.training.features = row.features;
    cfg.vote.voters = 1;  // "any failed sample" detection

    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);
    const auto r = predictor.evaluate(exp.fleet, exp.split);
    t.row()
        .cell(row.model)
        .cell(row.features.name)
        .cell(100.0 * r.far(), 2)
        .cell(100.0 * r.fdr(), 2)
        .cell(r.mean_tia(), 1);
  }
  t.print(std::cout);
  return 0;
}
