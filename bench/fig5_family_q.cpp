// Figure 5 — prediction on drive family "Q" (the smaller, noisier fleet)
// with voting detection, CT vs BP ANN, N = 1,3,5,11,17. The expected shape:
// both models degrade relative to family W, but CT degrades gracefully
// (FDR 93-100% at FAR 0.16-0.82%) while the ANN's gap widens.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 1.0);
  bench::print_header("Figure 5: family Q ROC (CT vs BP ANN)", args);

  std::cout << "Paper: CT FDR 100->93.5% / FAR 0.82->0.16% over "
               "N=1,3,5,11,17; TIA ~290-300 h;\nBP ANN clearly dominated.\n\n";

  const auto exp = bench::make_family_experiment(args, /*family=*/1);
  const int voter_counts[] = {1, 3, 5, 11, 17};

  for (const bool use_ct : {true, false}) {
    auto cfg = use_ct ? core::paper_ct_config() : core::paper_ann_config();
    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);
    const auto scores = eval::score_dataset(
        exp.fleet, exp.split, cfg.training.features, predictor.sample_model());
    const auto points = eval::roc_over_voters(scores, voter_counts);

    std::cout << (use_ct ? "CT model" : "BP ANN model") << ":\n";
    Table t({"N", "FAR (%)", "FDR (%)", "TIA (hours)"});
    for (const auto& p : points) {
      t.row()
          .cell(static_cast<long long>(p.param))
          .cell(100.0 * p.x, 3)
          .cell(100.0 * p.y, 2)
          .cell(p.mean_tia, 1);
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  // Interpretability (Section V-B1): the dominant attributes per family.
  auto cfg = core::paper_ct_config();
  core::FailurePredictor predictor(cfg);
  predictor.fit(exp.fleet, exp.split);
  std::cout << "Learned CT for family Q (top of tree):\n";
  const auto text = predictor.tree()->to_text(&cfg.training.features);
  // Print only the first few lines.
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    const auto next = text.find('\n', pos);
    std::cout << text.substr(pos, next - pos) << '\n';
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
