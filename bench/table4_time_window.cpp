// Table IV — impact of the failed time window on the CT model
// (12/24/48/96/168/240 hours, any-sample detection).
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.5);
  bench::print_header("Table IV: impact of time window on CT model", args);

  std::cout << "Paper: FAR/FDR/TIA = 0.31/93.98/354.4 (12h), "
               "0.33/93.98/355.3 (24h), 0.39/95.49/350.6 (48h),\n"
               "       0.21/96.24/351.7 (96h), 0.09/95.49/354.6 (168h), "
               "0.11/93.23/361.4 (240h)\n\n";

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  Table t({"Time Window", "FAR (%)", "FDR (%)", "TIA (hours)"});
  for (int window : {12, 24, 48, 96, 168, 240}) {
    auto cfg = core::paper_ct_config();
    cfg.training.failed_window_hours = window;
    cfg.vote.voters = 1;

    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);
    const auto r = predictor.evaluate(exp.fleet, exp.split);
    t.row()
        .cell(std::to_string(window) + " hours")
        .cell(100.0 * r.far(), 2)
        .cell(100.0 * r.fdr(), 2)
        .cell(r.mean_tia(), 1);
  }
  t.print(std::cout);
  return 0;
}
