// Table V — prediction performance on small synthesized datasets A/B/C/D
// (10/25/50/75% of the family-W drives), CT and BP ANN, 11 voters.
// Expected shape: both models degrade as data shrinks, but CT keeps a
// reasonably low FAR and both keep a ~2-week TIA.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 1.0);
  bench::print_header("Table V: small-sized datasets (family W)", args);

  std::cout << "Paper: BP ANN A/B/C/D FAR 2.93/1.10/0.16/0.03, "
               "FDR 88.24/90.63/84.38/81.82;\n"
               "       CT     A/B/C/D FAR 0.22/0.07/0.11/0.09, "
               "FDR 82.35/90.63/90.63/91.82\n"
            << "(A/B/C/D = 10/25/50/75% of the base fleet at this bench's "
               "scale)\n\n";

  const auto base = bench::make_family_experiment(args, /*family=*/0);

  struct Slice {
    const char* name;
    double fraction;
  };
  const Slice slices[] = {{"A", 0.10}, {"B", 0.25}, {"C", 0.50}, {"D", 0.75}};

  for (const bool use_ct : {false, true}) {
    std::cout << (use_ct ? "CT model" : "BP ANN model") << ":\n";
    Table t({"Dataset", "FAR (%)", "FDR (%)", "TIA (hours)"});
    for (const auto& slice : slices) {
      const auto subset = data::subsample_drives(base.fleet, slice.fraction,
                                                 args.seed + 100);
      const auto split = data::split_dataset(subset, {});
      auto cfg = use_ct ? core::paper_ct_config() : core::paper_ann_config();
      cfg.vote.voters = 11;
      core::FailurePredictor predictor(cfg);
      predictor.fit(subset, split);
      const auto r = predictor.evaluate(subset, split);
      t.row()
          .cell(slice.name)
          .cell(100.0 * r.far(), 2)
          .cell(100.0 * r.fdr(), 2)
          .cell(r.mean_tia(), 1);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
