// Shared helpers for the experiment benches.
//
// Every bench accepts:  [--scale S] [--seed N] [--interval H]
// where S scales the paper's Table I fleet (drive counts), N seeds the
// deterministic generator, and H is the sampling interval in hours.
// Defaults keep each bench's wall-clock in the seconds-to-minutes range;
// the EXPERIMENTS.md entries record the scale each measurement used.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "data/split.h"
#include "sim/generator.h"

namespace hdd::bench {

struct BenchArgs {
  double scale = 0.2;
  std::uint64_t seed = 42;
  int interval_hours = 1;

  static BenchArgs parse(int argc, char** argv, double default_scale) {
    BenchArgs args;
    args.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
          return argv[++i];
        }
        return nullptr;
      };
      if (const char* v = next("--scale")) args.scale = std::atof(v);
      else if (const char* v = next("--seed")) {
        args.seed = std::strtoull(v, nullptr, 10);
      } else if (const char* v = next("--interval")) {
        args.interval_hours = std::atoi(v);
      } else {
        std::cerr << "usage: " << argv[0]
                  << " [--scale S] [--seed N] [--interval H]\n";
        std::exit(2);
      }
    }
    return args;
  }
};

// One family's single-week experiment (the Section V-A setup): good drives
// observed for week 1, failed drives with their 20-day records.
struct Experiment {
  data::DriveDataset fleet;
  data::DatasetSplit split;
};

inline Experiment make_family_experiment(const BenchArgs& args,
                                         int family /*0=W, 1=Q*/) {
  auto config = sim::paper_fleet_config(args.scale, args.seed,
                                        args.interval_hours);
  if (family == 0) {
    config.families.resize(1);
  } else {
    config.families.erase(config.families.begin());
  }
  Experiment e;
  e.fleet = sim::generate_fleet_window(config, 0, 1);
  e.split = data::split_dataset(e.fleet, {});
  return e;
}

inline void print_header(const std::string& title, const BenchArgs& args) {
  std::cout << "==== " << title << " ====\n"
            << "fleet scale " << args.scale << ", seed " << args.seed
            << ", sampling every " << args.interval_hours << "h\n\n";
}

}  // namespace hdd::bench
