// Related-work comparison (Section II reproduced as an experiment): the
// detectors the paper positions itself against, all run on the same
// family-W dataset and detection protocol as the CT model.
//
// Expected shape (mirroring the literature's published numbers):
//   firmware thresholds — very low FAR but very low FDR (3-10% regime);
//   naive Bayes         — mid FDR at higher FAR (Hamerly & Elkan);
//   rank-sum            — mid FDR at sub-percent FAR (Hughes et al.);
//   HMM                 — mid FDR from a single attribute (Zhao et al.);
//   Mahalanobis         — mid-to-high FDR near-zero FAR (Wang et al.);
//   linear SVM          — ~50% FDR at 0% FAR (Murray et al.);
//   CT (the paper)      — dominates all of them.
#include <iostream>

#include "baselines/hmm.h"
#include "baselines/mahalanobis.h"
#include "baselines/naive_bayes.h"
#include "baselines/ranksum_detector.h"
#include "baselines/svm.h"
#include "baselines/threshold.h"
#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header("Related work: prior detectors vs the CT model", args);

  const auto exp = bench::make_family_experiment(args, /*family=*/0);
  const auto features = smart::stat13_features();

  // A shared unweighted matrix for the simple baselines (they model the
  // data distribution; the CT-specific prior/loss reweighting would skew
  // them).
  auto plain = core::paper_ct_config().training;
  plain.failed_prior = 0.0;
  plain.loss_false_alarm = 1.0;
  const auto matrix = data::build_training_matrix(exp.fleet, exp.split, plain);

  Table t({"detector", "FAR (%)", "FDR (%)", "TIA (hours)"});

  {
    baselines::ThresholdConfig cfg;
    // Raw counters (features 9 = RSC_raw level in stat13) trip on growth.
    cfg.increasing_features = {};
    baselines::ThresholdDetector det;
    det.fit(matrix, cfg);
    eval::VoteConfig vote;
    vote.voters = 1;  // firmware warns on any tripped reading
    const auto r = eval::evaluate(
        exp.fleet, exp.split, features,
        [&det](std::span<const float> x) { return det.predict(x); }, vote);
    t.row().cell("firmware thresholds").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  {
    baselines::NaiveBayes nb;
    nb.fit(matrix);
    eval::VoteConfig vote;
    vote.voters = 11;
    const auto r = eval::evaluate(
        exp.fleet, exp.split, features,
        [&nb](std::span<const float> x) { return nb.predict(x); }, vote);
    t.row().cell("naive Bayes [7]").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  {
    baselines::RankSumConfig cfg;
    baselines::RankSumDetector det;
    det.fit(matrix, features, cfg);
    const auto r = det.evaluate(exp.fleet, exp.split);
    t.row().cell("rank-sum test [8]").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  {
    baselines::HmmDetectorConfig cfg;
    cfg.attribute = smart::Attr::kTemperatureCelsius;
    baselines::HmmDetector det;
    det.fit(exp.fleet, exp.split, cfg);
    const auto r = det.evaluate(exp.fleet, exp.split);
    t.row().cell("HMM, best attribute [10]").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  {
    baselines::MahalanobisDetector det;
    det.fit(matrix);
    eval::VoteConfig vote;
    vote.voters = 11;
    const auto r = eval::evaluate(
        exp.fleet, exp.split, features,
        [&det](std::span<const float> x) { return det.predict(x); }, vote);
    t.row().cell("Mahalanobis distance [12]").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  {
    // Murray et al. tuned their SVM's error costs asymmetrically to reach
    // 0% FAR; mirror that with a false-alarm-weighted training matrix.
    auto svm_cfg = plain;
    svm_cfg.failed_window_hours = 12;
    svm_cfg.loss_false_alarm = 8.0;
    const auto svm_matrix =
        data::build_training_matrix(exp.fleet, exp.split, svm_cfg);
    baselines::LinearSvm svm;
    svm.fit(svm_matrix);
    eval::VoteConfig vote;
    vote.voters = 11;
    const auto r = eval::evaluate(
        exp.fleet, exp.split, features,
        [&svm](std::span<const float> x) { return svm.predict(x); }, vote);
    t.row().cell("linear SVM [6]").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  {
    core::FailurePredictor ct(core::paper_ct_config());
    ct.fit(exp.fleet, exp.split);
    const auto r = ct.evaluate(exp.fleet, exp.split);
    t.row().cell("CT (this paper)").cell(100 * r.far(), 3)
        .cell(100 * r.fdr(), 2).cell(r.mean_tia(), 1);
  }
  t.print(std::cout);
  return 0;
}
