// Table I — dataset details: drives, observation periods, sample counts for
// families "W" and "Q". Counts are produced by streaming the deterministic
// generator drive-by-drive (nothing is stored), so this bench can run at
// full paper scale (--scale 1).
#include <atomic>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"

using namespace hdd;

namespace {

struct FamilyCounts {
  std::size_t good_drives = 0, failed_drives = 0;
  std::size_t good_samples = 0, failed_samples = 0;
};

FamilyCounts count_family(const sim::FamilySpec& fam,
                          const sim::FleetConfig& config, std::size_t salt) {
  const sim::TraceGenerator gen(fam.profile, config.seed, salt);
  const std::int64_t horizon =
      static_cast<std::int64_t>(config.observation_weeks) * 168;
  const std::int64_t failed_span =
      static_cast<std::int64_t>(config.failed_record_days) * 24;

  std::atomic<std::size_t> good_samples{0}, failed_samples{0};
  ThreadPool::global().parallel_for(
      0, fam.n_good + fam.n_failed, [&](std::size_t i) {
        const bool failed = i >= fam.n_good;
        const std::uint64_t index = failed ? i - fam.n_good : i;
        const auto latent = gen.make_latent(index, failed, horizon);
        std::size_t n = 0;
        std::int64_t from = 0, to = horizon - 1;
        if (failed) {
          from = std::max<std::int64_t>(0, latent.fail_hour - failed_span);
          to = latent.fail_hour;
        }
        for (std::int64_t t = from; t <= to;
             t += config.sample_interval_hours) {
          if (!gen.is_missing(latent, t)) ++n;
        }
        (failed ? failed_samples : good_samples) += n;
      });
  return {fam.n_good, fam.n_failed, good_samples.load(),
          failed_samples.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.2);
  bench::print_header("Table I: dataset details", args);

  const auto config =
      sim::paper_fleet_config(args.scale, args.seed, args.interval_hours);

  std::cout << "Paper (scale 1.00, hourly):\n"
            << "  W: 22,790 good / 30,631,028 samples; 434 failed / 158,190 "
               "samples\n"
            << "  Q:  2,441 good /  3,155,735 samples; 127 failed /  40,017 "
               "samples\n\n";

  Table t({"Family", "Class", "Disks", "Period", "Samples"});
  for (std::size_t f = 0; f < config.families.size(); ++f) {
    const auto& fam = config.families[f];
    const auto c = count_family(fam, config, f);
    t.row()
        .cell(fam.profile.name)
        .cell("Good")
        .cell(static_cast<long long>(c.good_drives))
        .cell(std::to_string(config.observation_weeks * 7) + " days")
        .cell(static_cast<long long>(c.good_samples));
    t.row()
        .cell(fam.profile.name)
        .cell("Failed")
        .cell(static_cast<long long>(c.failed_drives))
        .cell(std::to_string(config.failed_record_days) + " days")
        .cell(static_cast<long long>(c.failed_samples));
  }
  t.print(std::cout);
  return 0;
}
