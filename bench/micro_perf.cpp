// Micro-benchmarks (google-benchmark): throughput of the hot paths — trace
// generation, feature extraction, CART fit/predict, MLP fit/predict, the
// rank-sum test, and the Markov solver. These bound how large a fleet one
// monitoring node can score in real time.
#include <benchmark/benchmark.h>

#include "ann/mlp.h"
#include "common/rng.h"
#include "data/matrix.h"
#include "reliability/raid.h"
#include "sim/generator.h"
#include "smart/features.h"
#include "stats/nonparametric.h"
#include "tree/tree.h"

namespace {

using namespace hdd;

// Shared synthetic matrix: `rows` samples of 13 features, linearly
// separable with noise.
data::DataMatrix make_training_matrix(std::size_t rows) {
  Rng rng(7);
  data::DataMatrix m(13);
  m.reserve(rows);
  std::vector<float> row(13);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(0, 100));
    const bool failed = row[0] + row[1] > 110.0f;
    m.add_row(row, failed ? -1.0f : 1.0f, 1.0f);
  }
  return m;
}

void BM_GeneratorSampleAt(benchmark::State& state) {
  const sim::TraceGenerator gen(sim::family_w_profile(), 42, 0);
  const auto latent = gen.make_latent(3, true, 8 * 168);
  std::int64_t hour = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.sample_at(latent, hour));
    hour = (hour + 1) % 1344;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratorSampleAt);

void BM_FeatureExtraction(benchmark::State& state) {
  const sim::TraceGenerator gen(sim::family_w_profile(), 42, 0);
  const auto latent = gen.make_latent(3, false, 8 * 168);
  const auto record = gen.materialize(latent, 0, 1343, 1);
  const auto fs = smart::stat13_features();
  std::size_t i = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(smart::extract_features(record, i, fs));
    i = 100 + (i + 1) % (record.samples.size() - 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_TreeFit(benchmark::State& state) {
  const auto m = make_training_matrix(
      static_cast<std::size_t>(state.range(0)));
  tree::TreeParams params;
  for (auto _ : state) {
    tree::DecisionTree t;
    t.fit(m, tree::Task::kClassification, params);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeFit)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TreePredict(benchmark::State& state) {
  const auto m = make_training_matrix(20000);
  tree::DecisionTree t;
  t.fit(m, tree::Task::kClassification, tree::TreeParams{});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.predict(m.row(i)));
    i = (i + 1) % m.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePredict);

void BM_MlpFit(benchmark::State& state) {
  const auto m = make_training_matrix(
      static_cast<std::size_t>(state.range(0)));
  ann::MlpConfig cfg;
  cfg.epochs = 10;
  for (auto _ : state) {
    ann::MlpModel model;
    model.fit(m, cfg);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * cfg.epochs);
}
BENCHMARK(BM_MlpFit)->Arg(1000)->Arg(5000);

void BM_MlpPredict(benchmark::State& state) {
  const auto m = make_training_matrix(5000);
  ann::MlpConfig cfg;
  cfg.epochs = 5;
  ann::MlpModel model;
  model.fit(m, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(m.row(i)));
    i = (i + 1) % m.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpPredict);

void BM_RankSum(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < state.range(0); ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal(0.2, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::rank_sum_test(xs, ys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_RankSum)->Arg(1000)->Arg(10000);

void BM_RaidCtmcSolve(benchmark::State& state) {
  reliability::RaidPredictionParams p;
  p.n_drives = static_cast<int>(state.range(0));
  p.fdr = 0.9549;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reliability::mttdl_raid_with_prediction(p));
  }
}
BENCHMARK(BM_RaidCtmcSolve)->Arg(100)->Arg(1000)->Arg(2500);

}  // namespace

BENCHMARK_MAIN();
