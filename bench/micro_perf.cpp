// Micro-benchmarks (google-benchmark): throughput of the hot paths — trace
// generation, feature extraction, CART fit/predict, MLP fit/predict,
// batch-vs-scalar prediction, fleet scoring, the telemetry-store append and
// recovery paths, the rank-sum test, and the Markov solver. These bound how
// large a fleet one monitoring node can score (and journal) in real time.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "ann/mlp.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/fleet.h"
#include "core/scorer.h"
#include "data/matrix.h"
#include "eval/detection.h"
#include "reliability/raid.h"
#include "sim/generator.h"
#include "smart/features.h"
#include "stats/nonparametric.h"
#include "store/telemetry_store.h"
#include "tree/tree.h"

namespace {

using namespace hdd;

// Shared synthetic matrix: `rows` samples of 13 features, linearly
// separable with noise.
data::DataMatrix make_training_matrix(std::size_t rows) {
  Rng rng(7);
  data::DataMatrix m(13);
  m.reserve(rows);
  std::vector<float> row(13);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<float>(rng.uniform(0, 100));
    const bool failed = row[0] + row[1] > 110.0f;
    m.add_row(row, failed ? -1.0f : 1.0f, 1.0f);
  }
  return m;
}

void BM_GeneratorSampleAt(benchmark::State& state) {
  const sim::TraceGenerator gen(sim::family_w_profile(), 42, 0);
  const auto latent = gen.make_latent(3, true, 8 * 168);
  std::int64_t hour = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.sample_at(latent, hour));
    hour = (hour + 1) % 1344;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeneratorSampleAt);

void BM_FeatureExtraction(benchmark::State& state) {
  const sim::TraceGenerator gen(sim::family_w_profile(), 42, 0);
  const auto latent = gen.make_latent(3, false, 8 * 168);
  const auto record = gen.materialize(latent, 0, 1343, 1);
  const auto fs = smart::stat13_features();
  std::size_t i = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(smart::extract_features(record, i, fs));
    i = 100 + (i + 1) % (record.samples.size() - 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_TreeFit(benchmark::State& state) {
  const auto m = make_training_matrix(
      static_cast<std::size_t>(state.range(0)));
  tree::TreeParams params;
  for (auto _ : state) {
    tree::DecisionTree t;
    t.fit(m, tree::Task::kClassification, params);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeFit)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_TreePredict(benchmark::State& state) {
  const auto m = make_training_matrix(20000);
  tree::DecisionTree t;
  t.fit(m, tree::Task::kClassification, tree::TreeParams{});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.predict(m.row(i)));
    i = (i + 1) % m.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePredict);

void BM_MlpFit(benchmark::State& state) {
  const auto m = make_training_matrix(
      static_cast<std::size_t>(state.range(0)));
  ann::MlpConfig cfg;
  cfg.epochs = 10;
  for (auto _ : state) {
    ann::MlpModel model;
    model.fit(m, cfg);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * cfg.epochs);
}
BENCHMARK(BM_MlpFit)->Arg(1000)->Arg(5000);

void BM_MlpPredict(benchmark::State& state) {
  const auto m = make_training_matrix(5000);
  ann::MlpConfig cfg;
  cfg.epochs = 5;
  ann::MlpModel model;
  model.fit(m, cfg);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(m.row(i)));
    i = (i + 1) % m.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpPredict);

// --- Batch vs scalar prediction ---------------------------------------------

void BM_TreePredictBatch(benchmark::State& state) {
  const auto m = make_training_matrix(20000);
  tree::DecisionTree t;
  t.fit(m, tree::Task::kClassification, tree::TreeParams{});
  std::vector<double> out(m.rows());
  for (auto _ : state) {
    t.predict_batch(m, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.rows()));
}
BENCHMARK(BM_TreePredictBatch);

void BM_MlpPredictBatch(benchmark::State& state) {
  const auto m = make_training_matrix(5000);
  ann::MlpConfig cfg;
  cfg.epochs = 5;
  ann::MlpModel model;
  model.fit(m, cfg);
  std::vector<double> out(m.rows());
  for (auto _ : state) {
    model.predict_batch(m, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m.rows()));
}
BENCHMARK(BM_MlpPredictBatch);

// --- Fleet scoring ----------------------------------------------------------

// Bench-local scorer over a trained CART, so the fleet benchmarks measure
// the engine rather than FailurePredictor training.
class BenchTreeScorer final : public core::SampleScorer {
 public:
  explicit BenchTreeScorer(std::size_t train_rows) {
    tree_.fit(make_training_matrix(train_rows), tree::Task::kClassification,
              tree::TreeParams{});
  }
  double predict(std::span<const float> x) const override {
    return tree_.predict(x);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    tree_.predict_batch(xs, out);
  }
  int num_features() const override { return tree_.num_features(); }
  std::string summary() const override { return "bench tree"; }

 private:
  tree::DecisionTree tree_;
};

// A voting config that never alarms (outputs lie in [-1, 1]), so the fleet
// benchmarks measure steady-state scoring, not alarm early-exit.
eval::VoteConfig never_alarm_vote() {
  eval::VoteConfig vote;
  vote.voters = 11;
  vote.average_mode = true;
  vote.threshold = -2.0;
  return vote;
}

// Baseline: what fleet scoring costs through the scalar, one-row-at-a-time
// API — a std::function call plus per-drive state push per drive per
// interval — single-threaded.
void BM_FleetIntervalScalar(benchmark::State& state) {
  const auto n_drives = static_cast<std::size_t>(state.range(0));
  const BenchTreeScorer scorer(20000);
  const auto snapshot = make_training_matrix(n_drives);
  const eval::SampleModel model = [&scorer](std::span<const float> x) {
    return scorer.predict(x);
  };
  std::vector<core::DriveVoteState> states(
      n_drives, core::DriveVoteState(never_alarm_vote()));
  std::int64_t hour = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n_drives; ++i) {
      states[i].push(hour, model(snapshot.row(i)));
    }
    ++hour;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_drives));
}
BENCHMARK(BM_FleetIntervalScalar)->Arg(10000)->Unit(benchmark::kMicrosecond);

// The batched engine on the same workload: FleetScorer::observe_interval
// (blocked predict_batch spread over the thread pool).
void BM_FleetIntervalBatched(benchmark::State& state) {
  const auto n_drives = static_cast<std::size_t>(state.range(0));
  const BenchTreeScorer scorer(20000);
  const auto snapshot = make_training_matrix(n_drives);
  core::FleetScorerConfig cfg;
  cfg.features = smart::stat13_features();
  cfg.vote = never_alarm_vote();
  core::FleetScorer fleet(scorer, cfg);
  for (std::size_t i = 0; i < n_drives; ++i) {
    fleet.add_drive(std::to_string(i));
  }
  std::int64_t hour = 0;
  for (auto _ : state) {
    fleet.observe_interval(snapshot, hour);
    ++hour;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_drives));
}
BENCHMARK(BM_FleetIntervalBatched)->Arg(10000)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// End-to-end record replay (feature extraction + scoring + voting) through
// the scalar eval path vs the batched engine.
data::DriveDataset make_bench_fleet(std::size_t n_drives) {
  const sim::TraceGenerator gen(sim::family_w_profile(), 42, 0);
  data::DriveDataset ds;
  for (std::size_t i = 0; i < n_drives; ++i) {
    const auto latent =
        gen.make_latent(static_cast<std::int64_t>(i), false, 168);
    auto record = gen.materialize(latent, 0, 167, 1);
    record.serial = "bench-" + std::to_string(i);
    ds.drives.push_back(std::move(record));
  }
  return ds;
}

void BM_FleetReplayScalar(benchmark::State& state) {
  const auto n_drives = static_cast<std::size_t>(state.range(0));
  const BenchTreeScorer scorer(20000);
  const auto ds = make_bench_fleet(n_drives);
  const auto fs = smart::stat13_features();
  const auto vote = never_alarm_vote();
  const eval::SampleModel model = [&scorer](std::span<const float> x) {
    return scorer.predict(x);
  };
  for (auto _ : state) {
    std::size_t alarms = 0;
    for (const auto& d : ds.drives) {
      const auto scores = eval::score_record(d, 0, fs, model);
      alarms += eval::vote_drive(scores, vote).alarmed ? 1 : 0;
    }
    benchmark::DoNotOptimize(alarms);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_drives));
}
BENCHMARK(BM_FleetReplayScalar)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_FleetReplayBatched(benchmark::State& state) {
  const auto n_drives = static_cast<std::size_t>(state.range(0));
  const BenchTreeScorer scorer(20000);
  const auto ds = make_bench_fleet(n_drives);
  core::FleetScorerConfig cfg;
  cfg.features = smart::stat13_features();
  cfg.vote = never_alarm_vote();
  core::FleetScorer fleet(scorer, cfg);
  for (auto _ : state) {
    const auto outcomes = fleet.replay(ds);
    benchmark::DoNotOptimize(outcomes.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_drives));
}
BENCHMARK(BM_FleetReplayBatched)->Arg(500)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Telemetry store -------------------------------------------------------

smart::Sample bench_sample(std::int64_t hour) {
  smart::Sample s;
  s.hour = hour;
  for (std::size_t a = 0; a < s.attrs.size(); ++a) {
    s.attrs[a] = static_cast<float>(a) + 0.5f * static_cast<float>(hour % 97);
  }
  return s;
}

// Sustained append throughput (records/s) for a 64-drive fleet, including
// the frame/CRC encoding and buffered stdio writes.
void BM_StoreAppend(benchmark::State& state) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "hdd_bench_store_append";
  const std::size_t n_drives = 64;
  const auto samples_per_iter = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    fs::remove_all(dir);
    store::TelemetryStore store(dir.string());
    std::vector<std::uint32_t> ids;
    for (std::size_t d = 0; d < n_drives; ++d) {
      ids.push_back(store.register_drive("bench-" + std::to_string(d)));
    }
    state.ResumeTiming();
    std::int64_t hour = 0;
    for (std::size_t k = 0; k < samples_per_iter; k += n_drives, ++hour) {
      const auto s = bench_sample(hour);
      for (const auto id : ids) store.append(id, s);
    }
    store.flush();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples_per_iter));
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreAppend)->Arg(100000)->Unit(benchmark::kMillisecond);

// Recovery cost on open: the full index-rebuilding scan of a log holding
// range(0) samples (rotated segments included). This is the crash-restart
// latency a monitoring node pays before it can resume scoring.
void BM_StoreReopen(benchmark::State& state) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "hdd_bench_store_reopen";
  fs::remove_all(dir);
  const auto n_samples = static_cast<std::size_t>(state.range(0));
  const std::size_t n_drives = 64;
  {
    store::StoreOptions opt;
    opt.segment_bytes = 4ull << 20;  // several rotations at the larger size
    store::TelemetryStore store(dir.string(), opt);
    std::vector<std::uint32_t> ids;
    for (std::size_t d = 0; d < n_drives; ++d) {
      ids.push_back(store.register_drive("bench-" + std::to_string(d)));
    }
    std::int64_t hour = 0;
    for (std::size_t k = 0; k < n_samples; k += n_drives, ++hour) {
      const auto s = bench_sample(hour);
      for (const auto id : ids) store.append(id, s);
    }
    store.flush();
  }
  for (auto _ : state) {
    store::TelemetryStore store(dir.string());
    benchmark::DoNotOptimize(store.sample_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_samples));
  fs::remove_all(dir);
}
BENCHMARK(BM_StoreReopen)
    ->Arg(100000)
    ->Arg(500000)
    ->Unit(benchmark::kMillisecond);

void BM_RankSum(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < state.range(0); ++i) {
    xs.push_back(rng.normal());
    ys.push_back(rng.normal(0.2, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::rank_sum_test(xs, ys));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_RankSum)->Arg(1000)->Arg(10000);

void BM_RaidCtmcSolve(benchmark::State& state) {
  reliability::RaidPredictionParams p;
  p.n_drives = static_cast<int>(state.range(0));
  p.fdr = 0.9549;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reliability::mttdl_raid_with_prediction(p));
  }
}
BENCHMARK(BM_RaidCtmcSolve)->Arg(100)->Arg(1000)->Arg(2500);

}  // namespace

BENCHMARK_MAIN();
