// Table VI — impact of failure prediction on single-drive MTTDL (Eq. 7),
// using the paper's parameters (MTTF 1,390,000 h, MTTR 8 h) and each
// model's measured (k, TIA). The paper's values: no prediction 158.67 y;
// BP ANN 1430.33 y (+801%); CT 2398.92 y (+1412%); RT 2687.31 y (+1594%).
//
// We report two variants: (a) with the paper's published (k, TIA) to check
// the reliability math exactly, and (b) with (k, TIA) measured on our
// synthetic fleet by actually training the three models.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/health.h"
#include "core/predictor.h"
#include "reliability/raid.h"

using namespace hdd;

namespace {

void add_row(Table& t, const char* name, double k, double tia,
             double baseline_years) {
  const double mttdl =
      k <= 0.0 ? 1.39e6
               : reliability::mttdl_single_drive_with_prediction(1.39e6, 8.0,
                                                                 k, tia);
  const double years = mttdl / reliability::kHoursPerYear;
  t.row()
      .cell(name)
      .cell(k, 4)
      .cell(tia, 1)
      .cell(years, 2)
      .cell(100.0 * (years - baseline_years) / baseline_years, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header("Table VI: single-drive MTTDL with prediction", args);

  const double baseline_years = 1.39e6 / reliability::kHoursPerYear;

  std::cout << "(a) With the paper's published k and TIA:\n";
  Table paper({"Model", "k", "TIA (h)", "MTTDL (years)", "% increase"});
  paper.row().cell("No prediction").cell(0.0, 4).cell(0.0, 1)
      .cell(baseline_years, 2).cell(0.0, 2);
  add_row(paper, "BP ANN", 0.9098, 343.0, baseline_years);
  add_row(paper, "CT", 0.9549, 355.0, baseline_years);
  add_row(paper, "RT", 0.9624, 351.0, baseline_years);
  paper.print(std::cout);
  std::cout << "    (paper: 158.67 / 1430.33 / 2398.92 / 2687.31 years)\n\n";

  std::cout << "(b) With k and TIA measured on the synthetic fleet:\n";
  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  Table mine({"Model", "k", "TIA (h)", "MTTDL (years)", "% increase"});
  mine.row().cell("No prediction").cell(0.0, 4).cell(0.0, 1)
      .cell(baseline_years, 2).cell(0.0, 2);
  {
    core::FailurePredictor ann(core::paper_ann_config());
    ann.fit(exp.fleet, exp.split);
    const auto r = ann.evaluate(exp.fleet, exp.split);
    add_row(mine, "BP ANN", r.fdr(), r.mean_tia(), baseline_years);
  }
  {
    core::FailurePredictor ct(core::paper_ct_config());
    ct.fit(exp.fleet, exp.split);
    const auto r = ct.evaluate(exp.fleet, exp.split);
    add_row(mine, "CT", r.fdr(), r.mean_tia(), baseline_years);
  }
  {
    core::HealthDegreeModel rt;
    rt.fit(exp.fleet, exp.split);
    const auto r = rt.evaluate(exp.fleet, exp.split, -0.2);
    add_row(mine, "RT", r.fdr(), r.mean_tia(), baseline_years);
  }
  mine.print(std::cout);
  return 0;
}
