// Ablation (DESIGN.md §5.5): health-degree target construction — the global
// deterioration window of Eq. 5 (several widths) versus the personalized
// windows of Eq. 6 (bootstrapped from a CT pass). The paper claims the
// personalized variant "achieves better prediction performance".
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/health.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header(
      "Ablation: global (Eq.5) vs personalized (Eq.6) windows", args);

  const auto exp = bench::make_family_experiment(args, /*family=*/0);

  struct Mode {
    std::string label;
    bool personalized;
    int global_hours;
  };
  const Mode modes[] = {
      {"Eq.5 global w=48h", false, 48},
      {"Eq.5 global w=168h", false, 168},
      {"Eq.5 global w=336h", false, 336},
      {"Eq.6 personalized", true, 168},
  };

  Table t({"target mode", "FAR (%)", "FDR (%)", "TIA (hours)",
           "FDR @ FAR<=0.1%"});
  for (const auto& mode : modes) {
    core::HealthModelConfig cfg;
    cfg.personalized = mode.personalized;
    cfg.global_window_hours = mode.global_hours;
    core::HealthDegreeModel model(cfg);
    model.fit(exp.fleet, exp.split);

    const auto scores = eval::score_dataset(
        exp.fleet, exp.split, cfg.ct_config.training.features,
        model.sample_model());
    // Default operating point...
    const auto at_default = eval::evaluate_votes(
        scores, {11, true, cfg.threshold});
    // ...and the best FDR achievable under a 0.1% FAR budget.
    double best_fdr = 0.0;
    for (double thr = -0.9; thr <= 0.0; thr += 0.02) {
      const auto r = eval::evaluate_votes(scores, {11, true, thr});
      if (r.far() <= 0.001) best_fdr = std::max(best_fdr, r.fdr());
    }
    t.row()
        .cell(mode.label)
        .cell(100.0 * at_default.far(), 3)
        .cell(100.0 * at_default.fdr(), 2)
        .cell(at_default.mean_tia(), 1)
        .cell(100.0 * best_fdr, 2);
  }
  t.print(std::cout);
  return 0;
}
