// Figure 1 / Section V-B1 — interpretability: dump the learned
// classification trees for both families and their feature importances.
// Expected: family W keyed on Power On Hours / Temperature / Reported
// Uncorrectable Errors; family Q on Power On Hours / Temperature / Seek
// Error Rate.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.3);
  bench::print_header("Figure 1: tree interpretability per family", args);

  for (int family = 0; family < 2; ++family) {
    const auto exp = bench::make_family_experiment(args, family);
    const auto cfg = core::paper_ct_config();
    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);

    std::cout << "Family " << exp.fleet.family_names[0] << " — "
              << predictor.describe() << "\n\n";
    std::cout << predictor.tree()->to_text(&cfg.training.features) << '\n';

    const auto importance = predictor.tree()->feature_importance();
    Table t({"feature", "importance"});
    for (std::size_t f = 0; f < importance.size(); ++f) {
      if (importance[f] <= 0.0) continue;
      t.row().cell(cfg.training.features.specs[f].name())
             .cell(importance[f], 4);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
