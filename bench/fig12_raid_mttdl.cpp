// Figure 12 — MTTDL of RAID systems as fleet size grows (N up to 2500):
//   SAS  RAID-6 without prediction (Eq. 8, MTTF 1.99 Mh)
//   SATA RAID-6 without prediction (Eq. 8, MTTF 1.39 Mh)
//   SATA RAID-6 with the CT model  (Figure 11 CTMC)
//   SATA RAID-5 with the CT model  (CTMC, 1 tolerated failure)
// Expected shape: SATA RAID-6 + CT beats even SAS RAID-6 without prediction
// by orders of magnitude, and SATA RAID-5 + CT tracks close to the
// unpredicted RAID-6 curves at large N.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "reliability/raid.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 1.0);
  bench::print_header("Figure 12: MTTDL of RAID systems (million years)",
                      args);

  const double sas_mttf = 1.99e6, sata_mttf = 1.39e6, mttr = 8.0;
  const double k = 0.9549, tia = 355.0;  // the paper's CT model

  Table t({"N drives", "SAS R6 w/o pred", "SATA R6 w/o pred",
           "SATA R6 w/ CT", "SATA R5 w/ CT"});
  const double to_myears = 1.0 / (reliability::kHoursPerYear * 1e6);
  for (int n : {5, 10, 25, 50, 100, 250, 500, 1000, 1500, 2000, 2500}) {
    reliability::RaidPredictionParams p6;
    p6.n_drives = n;
    p6.tolerated_failures = 2;
    p6.mttf_hours = sata_mttf;
    p6.mttr_hours = mttr;
    p6.fdr = k;
    p6.tia_hours = tia;

    reliability::RaidPredictionParams p5 = p6;
    p5.tolerated_failures = 1;

    t.row()
        .cell(static_cast<long long>(n))
        .cell(reliability::mttdl_raid6_no_prediction(sas_mttf, mttr, n) *
                  to_myears, 6)
        .cell(reliability::mttdl_raid6_no_prediction(sata_mttf, mttr, n) *
                  to_myears, 6)
        .cell(reliability::mttdl_raid_with_prediction(p6) * to_myears, 6)
        .cell(reliability::mttdl_raid_with_prediction(p5) * to_myears, 6);
  }
  t.print(std::cout);

  std::cout << "\nShape checks: col4 >> col2 (cheap drives + prediction beat "
               "expensive drives),\ncol5 ~ col2/col3 at large N (RAID-5 + "
               "prediction keeps RAID-6-like reliability).\n";
  return 0;
}
