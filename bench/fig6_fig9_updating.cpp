// Figures 6-9 — model aging and updating strategies over eight weeks:
// FAR per test week (2..8) for fixed / accumulation / 1,2,3-week replacing,
// CT and BP ANN, families W and Q. Expected shape: the fixed strategy's FAR
// climbs steeply after week ~6 (population drift), accumulation climbs more
// slowly, and 1-week replacing stays lowest; CT additionally holds FDR>90%.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"
#include "update/strategies.h"

using namespace hdd;

namespace {

update::ModelTrainer make_trainer(bool use_ct,
                                  const core::PredictorConfig& cfg) {
  if (use_ct) {
    return [cfg](const data::DataMatrix& m) {
      auto tree = std::make_shared<tree::DecisionTree>();
      tree->fit(m, tree::Task::kClassification, cfg.tree_params);
      return eval::SampleModel(
          [tree](std::span<const float> x) { return tree->predict(x); });
    };
  }
  return [cfg](const data::DataMatrix& m) {
    auto mlp = std::make_shared<ann::MlpModel>();
    mlp->fit(m, cfg.ann);
    return eval::SampleModel(
        [mlp](std::span<const float> x) { return mlp->predict(x); });
  };
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.15);
  bench::print_header("Figures 6-9: model updating strategies", args);

  std::cout << "Paper shape: fixed FAR climbs to 10-20% by week 8; "
               "accumulation rises late;\n1-week replacing stays lowest; CT "
               "keeps FDR > 90% throughout.\n\n";

  struct StratSpec {
    update::Strategy strategy;
    int cycle;
    const char* label;
  };
  const StratSpec strategies[] = {
      {update::Strategy::kFixed, 0, "fixed"},
      {update::Strategy::kAccumulation, 0, "accumulation"},
      {update::Strategy::kReplacing, 1, "1-week replacing"},
      {update::Strategy::kReplacing, 2, "2-weeks replacing"},
      {update::Strategy::kReplacing, 3, "3-weeks replacing"},
  };

  for (int family = 0; family < 2; ++family) {
    auto fleet = sim::paper_fleet_config(args.scale, args.seed,
                                         args.interval_hours);
    if (family == 0) fleet.families.resize(1);
    else fleet.families.erase(fleet.families.begin());

    for (const bool use_ct : {true, false}) {
      const auto cfg =
          use_ct ? core::paper_ct_config() : core::paper_ann_config();
      std::cout << "Family " << fleet.families.front().profile.name << ", "
                << (use_ct ? "CT" : "BP ANN")
                << " — FAR (%) by test week (FDR in parentheses):\n";
      Table t({"strategy", "wk2", "wk3", "wk4", "wk5", "wk6", "wk7", "wk8",
               "min FDR (%)"});
      for (const auto& strat : strategies) {
        update::LongTermConfig lt;
        lt.strategy = strat.strategy;
        lt.replace_cycle_weeks = std::max(1, strat.cycle);
        lt.training = cfg.training;
        lt.vote = cfg.vote;
        lt.vote.voters = 11;
        const auto weekly =
            update::simulate_long_term(fleet, make_trainer(use_ct, cfg), lt);

        auto row = t.row();
        row.cell(strat.label);
        double min_fdr = 1.0;
        for (const auto& w : weekly) {
          row.cell(100.0 * w.far, 2);
          min_fdr = std::min(min_fdr, w.fdr);
        }
        row.cell(100.0 * min_fdr, 1);
      }
      t.print(std::cout);
      std::cout << '\n';
    }
  }
  return 0;
}
