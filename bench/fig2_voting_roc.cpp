// Figure 2 — impact of the voting-based detection method: ROC series
// (FAR, FDR) for CT (168 h window) and BP ANN (12 h window) as the number
// of voters N sweeps 1..27. The CT curve should dominate the ANN curve and
// its FAR should keep dropping as N grows.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"
#include "core/predictor.h"

using namespace hdd;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, 0.5);
  bench::print_header("Figure 2: voting-based detection ROC (family W)",
                      args);

  std::cout << "Paper anchors: CT reaches FDR>93% at FAR 0.009% with N=27; "
               "BP ANN is dominated,\nits FDR dropping sharply for N>5 "
               "(84.21% at 0.07% by N=27).\n\n";

  const auto exp = bench::make_family_experiment(args, /*family=*/0);
  const int voter_counts[] = {1, 3, 5, 7, 9, 11, 15, 17, 27};

  for (const bool use_ct : {true, false}) {
    auto cfg = use_ct ? core::paper_ct_config() : core::paper_ann_config();
    core::FailurePredictor predictor(cfg);
    predictor.fit(exp.fleet, exp.split);

    const auto scores = eval::score_dataset(
        exp.fleet, exp.split, cfg.training.features, predictor.sample_model());
    const auto points = eval::roc_over_voters(scores, voter_counts);

    std::cout << (use_ct ? "CT model" : "BP ANN model") << ":\n";
    Table t({"N", "FAR (%)", "FDR (%)", "TIA (hours)"});
    for (const auto& p : points) {
      t.row()
          .cell(static_cast<long long>(p.param))
          .cell(100.0 * p.x, 4)
          .cell(100.0 * p.y, 2)
          .cell(p.mean_tia, 1);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
