#include "sim/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace hdd::sim {

using smart::Attr;

namespace {

// Stream ids for the counter-based RNG: every independent random quantity
// gets its own stream so keys never collide.
enum Stream : std::uint64_t {
  kAttrNoiseBase = 0,    // + attribute index (0..11)
  kSpikeStart = 100,
  kSpikeLen = 101,
  kSpikeSeverity = 102,
  kSpikeShape = 103,
  kMissing = 104,
  kRampJitterBase = 200, // + attribute index
};

double counter_to_norm(Attr raw, double count) {
  // Mapping from raw event counts to the vendor-normalized 100..1 scale.
  switch (raw) {
    case Attr::kReallocatedSectorsRaw:
      return 100.0 - 0.08 * count;
    case Attr::kCurrentPendingSectorRaw:
      return 100.0 - 0.8 * count;
    default:
      HDD_ASSERT_MSG(false, "no normalized mirror for this counter");
  }
  return 100.0;
}


}  // namespace

TraceGenerator::TraceGenerator(FamilyProfile profile, std::uint64_t seed,
                               std::uint64_t family_salt)
    : profile_(std::move(profile)),
      root_(CounterRng(seed).child(hash_combine(0x66616d696c79ULL,
                                                family_salt))) {
  HDD_REQUIRE(!profile_.signatures.empty(),
              "family profile needs at least one failure signature");
}

DriveLatent TraceGenerator::make_latent(std::uint64_t index, bool failed,
                                        std::int64_t horizon_hours) const {
  DriveLatent d;
  d.failed = failed;
  d.key = root_.child(failed ? index * 2 + 1 : index * 2).seed();

  // Sequential draws in a fixed order keep the latent state deterministic.
  Rng rng(d.key);

  d.age_hours = failed ? rng.uniform(profile_.age_failed_min,
                                     profile_.age_failed_max)
                       : rng.uniform(profile_.age_good_min,
                                     profile_.age_good_max);
  d.diurnal_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);

  for (int a = 0; a < smart::kNumAttributes; ++a) {
    const AttrBehavior& b = profile_.behavior[static_cast<std::size_t>(a)];
    d.base[static_cast<std::size_t>(a)] =
        b.base_sd > 0 ? rng.normal(b.base_mean, b.base_sd) : b.base_mean;
  }

  // Static counter state: most good drives are pristine, a minority carry a
  // few historical reallocations, and a small borderline subpopulation has
  // visibly elevated counters.
  const double u = rng.uniform();
  if (u < profile_.borderline_frac) {
    d.rsc_raw_base = rng.uniform(10.0, profile_.borderline_rsc_max);
    d.cps_raw_base = rng.uniform(0.0, profile_.borderline_cps_max);
    d.rue_base = rng.uniform(0.0, profile_.borderline_rue_max);
    d.rsc_rate_per_hour = rng.uniform(0.03, 0.3);
    d.base[smart::index_of(Attr::kTemperatureCelsius)] -=
        rng.uniform(0.0, profile_.borderline_tc_shift);
    d.base[smart::index_of(Attr::kSeekErrorRate)] -=
        rng.uniform(0.0, profile_.borderline_ser_shift);
  } else if (u < profile_.borderline_frac + 0.13) {
    d.rsc_raw_base = rng.uniform(1.0, 8.0);
  }

  // Benign wear shared by the whole population: ~20% of drives reallocate
  // slowly all the time, ~10% log occasional high-fly writes, and any drive
  // can take a few step bursts of reallocations (a bad patch of media).
  if (rng.chance(0.20)) {
    d.rsc_rate_per_hour =
        std::max(d.rsc_rate_per_hour, rng.uniform(0.01, 0.15));
  }
  if (rng.chance(0.10)) d.hfw_base = rng.uniform(1.0, 15.0);
  for (int b = 0; b < DriveLatent::kMaxBursts; ++b) {
    if (!rng.chance(0.15)) continue;
    d.burst_hour[static_cast<std::size_t>(b)] = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, horizon_hours))));
    d.burst_amount[static_cast<std::size_t>(b)] = rng.uniform(2.0, 60.0);
  }

  if (failed) {
    HDD_REQUIRE(horizon_hours > 24, "failure horizon too short");
    d.fail_hour = 24 + static_cast<std::int64_t>(rng.uniform_int(
                           static_cast<std::uint64_t>(horizon_hours - 24)));
    if (rng.chance(profile_.sudden_death_frac)) {
      d.signature = -1;  // no SMART warning at all
      d.window_hours = 0.0;
    } else {
      d.window_hours =
          clamp(rng.lognormal(profile_.window_log_mu,
                              profile_.window_log_sigma),
                profile_.window_min_hours, profile_.window_max_hours);
      d.ramp_power =
          rng.uniform(profile_.ramp_power_min, profile_.ramp_power_max);
      d.severity = rng.uniform(profile_.severity_min, profile_.severity_max);
      // Mixture draw over signatures.
      double total = 0.0;
      for (const auto& s : profile_.signatures) total += s.weight;
      double pick = rng.uniform(0.0, total);
      d.signature = 0;
      for (std::size_t s = 0; s < profile_.signatures.size(); ++s) {
        pick -= profile_.signatures[s].weight;
        if (pick <= 0.0) {
          d.signature = static_cast<int>(s);
          break;
        }
      }
      // Failing drives run slightly hotter even before the ramp begins.
      d.base[smart::index_of(Attr::kTemperatureCelsius)] -=
          rng.uniform(0.0, 3.0);
    }
  }
  return d;
}

double TraceGenerator::ramp_at(const DriveLatent& d, std::int64_t hour) const {
  if (!d.failed || d.signature < 0 || d.window_hours <= 0.0) return 0.0;
  const double onset = static_cast<double>(d.fail_hour) - d.window_hours;
  const double t = static_cast<double>(hour);
  if (t <= onset) return 0.0;
  const double frac =
      clamp((t - onset) / d.window_hours, 0.0, 1.0);
  return std::pow(frac, d.ramp_power);
}

bool TraceGenerator::is_missing(const DriveLatent& d,
                                std::int64_t hour) const {
  const CounterRng rng(d.key);
  return rng.chance(profile_.missing_prob,
                    static_cast<std::uint64_t>(hour), kMissing);
}

smart::Sample TraceGenerator::sample_at(const DriveLatent& d,
                                        std::int64_t hour) const {
  const CounterRng rng(d.key);
  const std::uint64_t h = static_cast<std::uint64_t>(hour);
  const double week = static_cast<double>(hour) / 168.0;

  std::array<double, smart::kNumAttributes> v{};

  // Healthy behaviour of the noisy normalized attributes.
  for (int a = 0; a < smart::kNumAttributes; ++a) {
    const auto ai = static_cast<std::size_t>(a);
    const AttrBehavior& b = profile_.behavior[ai];
    double x = d.base[ai] + b.drift_per_week * week;
    if (b.diurnal_amp > 0.0) {
      x += b.diurnal_amp *
           std::sin(2.0 * std::numbers::pi *
                        static_cast<double>(hour % 24) / 24.0 +
                    d.diurnal_phase);
    }
    if (b.noise_sd > 0.0) {
      x += b.noise_sd * rng.normal(h, kAttrNoiseBase + static_cast<std::uint64_t>(a));
    }
    v[ai] = x;
  }

  // Power On Hours: purely age-driven (fleet aging is the drift here).
  v[smart::index_of(Attr::kPowerOnHours)] =
      100.0 - (d.age_hours + static_cast<double>(hour)) / 600.0;

  // Event counters: static base state plus benign wear...
  double rsc_raw = d.rsc_raw_base +
                   d.rsc_rate_per_hour * static_cast<double>(hour);
  for (int b = 0; b < DriveLatent::kMaxBursts; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    if (d.burst_hour[bi] >= 0 && hour >= d.burst_hour[bi]) {
      rsc_raw += d.burst_amount[bi];
    }
  }
  double cps_raw = d.cps_raw_base;
  double rue_norm = 100.0 - 1.5 * d.rue_base;
  double hfw_norm = 100.0 - d.hfw_base;

  // ...plus the failure ramp.
  const double s = ramp_at(d, hour);
  if (s > 0.0) {
    const FailureSignature& sig =
        profile_.signatures[static_cast<std::size_t>(d.signature)];
    for (const auto& e : sig.effects) {
      const auto ai = static_cast<std::size_t>(smart::index_of(e.attr));
      double delta = e.delta * d.severity * s;
      if (e.jitter > 0.0) {
        delta += e.jitter * s *
                 rng.normal(h, kRampJitterBase +
                                   static_cast<std::uint64_t>(
                                       smart::index_of(e.attr)));
      }
      if (e.attr == Attr::kReportedUncorrectable) {
        rue_norm += delta;
      } else if (e.attr == Attr::kHighFlyWrites) {
        hfw_norm += delta;
      } else {
        v[ai] += delta;
      }
    }
    // Counters accumulate super-linearly toward the failure hour.
    for (const auto& c : sig.counters) {
      const double grown = c.count_at_full_ramp * d.severity *
                           std::pow(s, 1.3);
      if (c.raw_attr == Attr::kReallocatedSectorsRaw) rsc_raw += grown;
      else cps_raw += grown;
    }
  }

  // Transient spike episodes: brief telemetry anomalies on any drive. An
  // episode starting at hour h0 covers [h0, h0 + len). Scan the recent past
  // for a covering start; the latest one wins.
  for (int back = 0; back < profile_.spike_max_len_hours; ++back) {
    const std::int64_t h0 = hour - back;
    if (h0 < 0) break;
    const std::uint64_t uh0 = static_cast<std::uint64_t>(h0);
    if (!rng.chance(profile_.spike_start_prob, uh0, kSpikeStart)) continue;
    const double ulen = rng.uniform(uh0, kSpikeLen);
    const int len = std::min<int>(
        profile_.spike_max_len_hours,
        1 + static_cast<int>(-profile_.spike_mean_len_hours *
                             std::log(std::max(ulen, 1e-12))));
    if (back >= len) continue;
    const double m = profile_.spike_magnitude *
                     (0.5 + rng.uniform(uh0, kSpikeSeverity));
    // A spike mimics a short burst of media trouble: error rates and
    // temperature move, and a few sectors go pending before being cleared.
    v[smart::index_of(Attr::kRawReadErrorRate)] -= 12.0 * m;
    v[smart::index_of(Attr::kHardwareEccRecovered)] -= 10.0 * m;
    v[smart::index_of(Attr::kTemperatureCelsius)] -= 4.0 * m;
    if (rng.uniform(uh0, kSpikeShape) < 0.3) {
      cps_raw += 4.0 * m;
      rue_norm -= 1.5 * m;
    }
    break;
  }

  // Fold counters into their normalized mirrors and clamp everything.
  v[smart::index_of(Attr::kReallocatedSectorsRaw)] = rsc_raw;
  v[smart::index_of(Attr::kCurrentPendingSectorRaw)] = cps_raw;
  v[smart::index_of(Attr::kReallocatedSectors)] =
      counter_to_norm(Attr::kReallocatedSectorsRaw, rsc_raw);
  v[smart::index_of(Attr::kCurrentPendingSector)] =
      counter_to_norm(Attr::kCurrentPendingSectorRaw, cps_raw);
  v[smart::index_of(Attr::kReportedUncorrectable)] = rue_norm;
  v[smart::index_of(Attr::kHighFlyWrites)] = hfw_norm;

  smart::Sample out;
  out.hour = hour;
  for (int a = 0; a < smart::kNumAttributes; ++a) {
    const auto ai = static_cast<std::size_t>(a);
    const AttrBehavior& b = profile_.behavior[ai];
    // Vendor firmware reports integers; round like it would.
    out.attrs[ai] =
        static_cast<float>(std::round(clamp(v[ai], b.lo, b.hi)));
  }
  return out;
}

smart::DriveRecord TraceGenerator::materialize(const DriveLatent& d,
                                               std::int64_t from_hour,
                                               std::int64_t to_hour,
                                               int interval_hours) const {
  HDD_REQUIRE(interval_hours > 0, "interval must be positive");
  smart::DriveRecord rec;
  rec.failed = d.failed;
  rec.fail_hour = d.fail_hour;

  std::int64_t begin = from_hour;
  std::int64_t end = to_hour;
  if (d.failed) end = std::min<std::int64_t>(end, d.fail_hour);
  // Align to the global sampling grid.
  if (begin % interval_hours != 0) {
    begin += interval_hours - begin % interval_hours;
  }
  if (begin < 0) begin = 0;
  rec.samples.reserve(static_cast<std::size_t>(
      std::max<std::int64_t>(0, (end - begin) / interval_hours + 1)));
  for (std::int64_t t = begin; t <= end; t += interval_hours) {
    if (is_missing(d, t)) continue;
    rec.samples.push_back(sample_at(d, t));
  }
  return rec;
}

FleetConfig paper_fleet_config(double scale, std::uint64_t seed,
                               int sample_interval_hours) {
  HDD_REQUIRE(scale > 0.0, "scale must be positive");
  auto scaled = [scale](double n) {
    return static_cast<std::size_t>(std::max(1.0, std::round(n * scale)));
  };
  FleetConfig cfg;
  cfg.seed = seed;
  cfg.sample_interval_hours = sample_interval_hours;
  cfg.observation_weeks = 8;
  cfg.failed_record_days = 20;
  cfg.families.push_back({family_w_profile(), scaled(22790), scaled(434)});
  cfg.families.push_back({family_q_profile(), scaled(2441), scaled(127)});
  return cfg;
}

namespace {

data::DriveDataset generate_impl(const FleetConfig& config, int good_from_week,
                                 int good_to_week) {
  HDD_REQUIRE(!config.families.empty(), "fleet has no families");
  HDD_REQUIRE(good_from_week >= 0 && good_to_week <= config.observation_weeks &&
                  good_from_week < good_to_week,
              "bad good-drive week range");
  const std::int64_t horizon = static_cast<std::int64_t>(
      config.observation_weeks) * 7 * 24;
  const std::int64_t good_begin = static_cast<std::int64_t>(good_from_week) * 168;
  const std::int64_t good_end = static_cast<std::int64_t>(good_to_week) * 168 - 1;
  const std::int64_t failed_span =
      static_cast<std::int64_t>(config.failed_record_days) * 24;

  data::DriveDataset ds;
  std::size_t total = 0;
  for (const auto& fam : config.families) total += fam.n_good + fam.n_failed;
  ds.drives.resize(total);

  std::size_t offset = 0;
  for (std::size_t f = 0; f < config.families.size(); ++f) {
    const FamilySpec& fam = config.families[f];
    ds.family_names.push_back(fam.profile.name);
    const TraceGenerator gen(fam.profile, config.seed, f);
    const std::size_t base = offset;
    const std::size_t n = fam.n_good + fam.n_failed;

    ThreadPool::global().parallel_for(0, n, [&](std::size_t i) {
      const bool failed = i >= fam.n_good;
      const std::uint64_t index =
          failed ? static_cast<std::uint64_t>(i - fam.n_good)
                 : static_cast<std::uint64_t>(i);
      const DriveLatent latent = gen.make_latent(index, failed, horizon);
      smart::DriveRecord rec;
      if (failed) {
        rec = gen.materialize(latent,
                              std::max<std::int64_t>(0, latent.fail_hour -
                                                            failed_span),
                              latent.fail_hour,
                              config.sample_interval_hours);
      } else {
        rec = gen.materialize(latent, good_begin, good_end,
                              config.sample_interval_hours);
      }
      rec.family = static_cast<int>(f);
      rec.serial = fam.profile.name + (failed ? "-F" : "-G") +
                   std::to_string(index);
      ds.drives[base + i] = std::move(rec);
    });
    offset += n;
  }
  return ds;
}

}  // namespace

data::DriveDataset generate_fleet(const FleetConfig& config) {
  return generate_impl(config, 0, config.observation_weeks);
}

data::DriveDataset generate_fleet_window(const FleetConfig& config,
                                         int good_from_week,
                                         int good_to_week) {
  return generate_impl(config, good_from_week, good_to_week);
}

}  // namespace hdd::sim
