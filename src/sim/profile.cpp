#include "sim/profile.h"

namespace hdd::sim {

using smart::Attr;

namespace {

// Baselines shared by both families; family-specific deviations are applied
// on top. Values imitate the normalized scales commonly reported by vendor
// firmware (most attributes idle near 100 and drop as health worsens;
// Seagate-style error-rate attributes hover lower and noisier).
std::array<AttrBehavior, smart::kNumAttributes> default_behavior() {
  std::array<AttrBehavior, smart::kNumAttributes> b{};
  // Raw Read Error Rate: noisy Seagate-style logarithmic rate.
  b[smart::index_of(Attr::kRawReadErrorRate)] = {108, 8, 7.0, 0.0, 0.0, 1, 253};
  // Spin Up Time: very stable.
  b[smart::index_of(Attr::kSpinUpTime)] = {97, 2.0, 0.8, 0.0, 0.0, 1, 253};
  // Reallocated Sectors (normalized): derived from the raw counter at
  // sample time; base here is the healthy ceiling.
  b[smart::index_of(Attr::kReallocatedSectors)] = {100, 0.0, 0.0, 0.0, 0.0, 1, 100};
  // Seek Error Rate: moderately noisy.
  b[smart::index_of(Attr::kSeekErrorRate)] = {78, 6, 3.0, 0.0, 0.0, 1, 253};
  // Power On Hours: derived from drive age; see generator.
  b[smart::index_of(Attr::kPowerOnHours)] = {100, 0.0, 0.0, 0.0, 0.0, 1, 100};
  // Reported Uncorrectable Errors: derived from an event counter.
  b[smart::index_of(Attr::kReportedUncorrectable)] = {100, 0.0, 0.0, 0.0, 0.0, 1, 100};
  // High Fly Writes: derived from an event counter.
  b[smart::index_of(Attr::kHighFlyWrites)] = {100, 0.0, 0.0, 0.0, 0.0, 1, 100};
  // Temperature (normalized = 100 - Celsius): diurnal cycle + ambient drift.
  b[smart::index_of(Attr::kTemperatureCelsius)] = {63, 4.0, 1.2, 1.5, 0.0, 1, 100};
  // Hardware ECC Recovered: the noisiest attribute.
  b[smart::index_of(Attr::kHardwareEccRecovered)] = {60, 10, 9.0, 0.0, 0.0, 1, 253};
  // Current Pending Sector (normalized): derived from the raw counter.
  b[smart::index_of(Attr::kCurrentPendingSector)] = {100, 0.0, 0.0, 0.0, 0.0, 1, 100};
  // Raw counters: behaviour handled by the counter model; clamp only.
  b[smart::index_of(Attr::kReallocatedSectorsRaw)] = {0, 0, 0, 0, 0, 0, 65535};
  b[smart::index_of(Attr::kCurrentPendingSectorRaw)] = {0, 0, 0, 0, 0, 0, 65535};
  return b;
}

}  // namespace

FamilyProfile family_w_profile() {
  FamilyProfile p;
  p.name = "W";
  p.behavior = default_behavior();

  // Population drift: fleet-wide ambient temperature creep, slow firmware
  // recalibration of the error-rate attributes, and fleet aging (Power On
  // Hours drifts inside the generator via age). These shifts are what make
  // a week-1 model stale by week 8 (Figures 6-9).
  p.behavior[smart::index_of(Attr::kTemperatureCelsius)].drift_per_week = -0.9;
  p.behavior[smart::index_of(Attr::kRawReadErrorRate)].drift_per_week = -2.2;
  p.behavior[smart::index_of(Attr::kHardwareEccRecovered)].drift_per_week = -2.6;

  // Failure mixture. Interpretability finding for "W" (Section V-B1): long
  // power-on hours, high temperature, or many reported uncorrectable errors.
  FailureSignature media;  // degrading media: RUE + pending/reallocated
  media.name = "media_errors";
  media.weight = 0.45;
  media.effects = {
      {Attr::kReportedUncorrectable, -55.0, 14.0},
      {Attr::kRawReadErrorRate, -30.0, 20.0},
      {Attr::kTemperatureCelsius, -14.0, 5.0},
  };
  media.counters = {
      {Attr::kCurrentPendingSectorRaw, 60.0},
      {Attr::kReallocatedSectorsRaw, 180.0},
  };

  FailureSignature surface;  // surface wear: reallocations dominate
  surface.name = "surface_wear";
  surface.weight = 0.35;
  surface.effects = {
      {Attr::kHardwareEccRecovered, -28.0, 22.0},
      {Attr::kTemperatureCelsius, -10.0, 4.0},
  };
  surface.counters = {
      {Attr::kReallocatedSectorsRaw, 650.0},
      {Attr::kCurrentPendingSectorRaw, 25.0},
  };

  FailureSignature mechanical;  // head/servo wear
  mechanical.name = "mechanical";
  mechanical.weight = 0.20;
  mechanical.effects = {
      {Attr::kSeekErrorRate, -22.0, 13.0},
      {Attr::kSpinUpTime, -12.0, 6.0},
      {Attr::kHighFlyWrites, -35.0, 12.0},
      {Attr::kTemperatureCelsius, -17.0, 5.0},
  };

  p.signatures = {media, surface, mechanical};
  return p;
}

FamilyProfile family_q_profile() {
  FamilyProfile p;
  p.name = "Q";
  p.behavior = default_behavior();

  // "Q" runs hotter and noisier (a smaller, cheaper family) — this is what
  // makes its ROC visibly worse (Figure 5: FAR 0.16-0.82%).
  p.behavior[smart::index_of(Attr::kTemperatureCelsius)].base_mean = 58;
  p.behavior[smart::index_of(Attr::kTemperatureCelsius)].base_sd = 3.0;
  p.behavior[smart::index_of(Attr::kSeekErrorRate)].base_sd = 5.0;
  p.behavior[smart::index_of(Attr::kSeekErrorRate)].noise_sd = 4.5;
  p.behavior[smart::index_of(Attr::kHardwareEccRecovered)].noise_sd = 11.0;

  p.behavior[smart::index_of(Attr::kTemperatureCelsius)].drift_per_week = -1.0;
  p.behavior[smart::index_of(Attr::kRawReadErrorRate)].drift_per_week = -1.8;
  p.behavior[smart::index_of(Attr::kHardwareEccRecovered)].drift_per_week = -2.2;

  p.spike_start_prob = 5e-4;    // noisier telemetry
  p.severity_min = 0.7;         // Q failures are blunter
  p.borderline_frac = 0.015;

  // Interpretability finding for "Q": long power-on hours, high temperature,
  // or high seek error rate.
  FailureSignature servo;
  servo.name = "servo_wear";
  servo.weight = 0.50;
  servo.effects = {
      {Attr::kSeekErrorRate, -40.0, 13.0},
      {Attr::kTemperatureCelsius, -20.0, 5.0},
  };

  FailureSignature media;
  media.name = "media_errors";
  media.weight = 0.30;
  media.effects = {
      {Attr::kReportedUncorrectable, -45.0, 13.0},
      {Attr::kRawReadErrorRate, -26.0, 18.0},
      {Attr::kTemperatureCelsius, -11.0, 4.0},
  };
  media.counters = {
      {Attr::kCurrentPendingSectorRaw, 45.0},
  };

  FailureSignature surface;
  surface.name = "surface_wear";
  surface.weight = 0.20;
  surface.effects = {
      {Attr::kHardwareEccRecovered, -24.0, 20.0},
      {Attr::kTemperatureCelsius, -10.0, 4.0},
  };
  surface.counters = {
      {Attr::kReallocatedSectorsRaw, 450.0},
  };

  p.signatures = {servo, media, surface};
  return p;
}

}  // namespace hdd::sim
