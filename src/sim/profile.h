// Family profiles for the synthetic SMART fleet.
//
// This module is the documented substitution for the paper's proprietary
// data-center dataset (DESIGN.md §2). A FamilyProfile captures everything
// that differs between drive families ("W" and "Q" in the paper):
//
//  * per-attribute healthy behaviour (baseline spread, measurement noise,
//    diurnal cycles, slow population drift — the cause of model aging in
//    Section V-B3);
//  * a mixture of failure signatures: which attributes deteriorate, how
//    strongly, and whether they act through raw event counters
//    (reallocations, pending sectors, reported uncorrectable errors) that
//    are mirrored into the corresponding normalized values;
//  * population structure: drive ages, a small "borderline" subpopulation
//    of good drives with elevated counters (the source of persistent false
//    alarms), transient spike episodes (the source of voting-suppressible
//    false alarms), and missing samples.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "smart/attributes.h"

namespace hdd::sim {

// Healthy-state behaviour of one normalized SMART attribute.
struct AttrBehavior {
  double base_mean = 100.0;  // mean of the per-drive baseline draw
  double base_sd = 0.0;      // spread of baselines across drives
  double noise_sd = 0.0;     // per-sample measurement noise
  double diurnal_amp = 0.0;  // amplitude of the 24h cycle (load/thermal)
  double drift_per_week = 0.0;  // population-level drift (model aging)
  double lo = 1.0;           // clamp range of the reported value
  double hi = 253.0;
};

// One attribute's deterioration under a failure signature.
struct SignatureEffect {
  smart::Attr attr = smart::Attr::kRawReadErrorRate;
  // Shift of the normalized value at full ramp (negative = value drops).
  double delta = 0.0;
  // Extra per-sample noise while deteriorating (failing drives get erratic).
  double jitter = 0.0;
};

// Event-counter deterioration (raw values that only ever accumulate).
struct CounterEffect {
  smart::Attr raw_attr = smart::Attr::kReallocatedSectorsRaw;
  double count_at_full_ramp = 0.0;  // expected raw count at the failure hour
};

struct FailureSignature {
  std::string name;
  double weight = 1.0;  // mixture weight within the family
  std::vector<SignatureEffect> effects;
  std::vector<CounterEffect> counters;
};

struct FamilyProfile {
  std::string name;

  std::array<AttrBehavior, smart::kNumAttributes> behavior{};

  // Failure mixture. A drive's signature is drawn once, at "manufacture".
  std::vector<FailureSignature> signatures;

  // Fraction of failed drives that die with no SMART warning at all
  // (electronics failures): their deterioration window is ~0.
  double sudden_death_frac = 0.04;

  // Deterioration window w_d (hours before failure when degradation starts):
  // lognormal(log_mu, log_sigma) clamped to [min, max]. Drives deteriorate
  // with severity s(t) = ((t - onset)/w_d)^ramp_power.
  double window_log_mu = 6.05;   // exp(6.05) ≈ 424 h
  double window_log_sigma = 0.35;
  double window_min_hours = 8.0;
  double window_max_hours = 470.0;
  double ramp_power_min = 0.3;   // sub-linear: symptoms appear early
  double ramp_power_max = 0.6;
  double severity_min = 0.5;     // per-drive amplitude multiplier; the low
  double severity_max = 1.5;     // end gives barely-symptomatic failures

  // Drive age at the observation epoch (hours), uniform in [min, max].
  // Failed drives are drawn from an older distribution — old age is part of
  // the paper's interpreted failure causes ("long power on hours").
  double age_good_min = 500.0, age_good_max = 28000.0;
  double age_failed_min = 4000.0, age_failed_max = 45000.0;

  // Borderline good drives: elevated counters and mildly degraded health
  // but not failing. These straddle the decision boundary and are the main
  // source of persistent false alarms.
  double borderline_frac = 0.012;
  double borderline_rsc_max = 100.0;  // raw reallocated sectors
  double borderline_rue_max = 1.5;    // reported uncorrectable errors
  double borderline_cps_max = 8.0;   // pending sectors
  double borderline_tc_shift = 3.5;   // runs hotter (normalized TC drop)
  double borderline_ser_shift = 5.0;  // elevated seek errors

  // Transient spike episodes on good drives (measurement noise bursts,
  // thermal events, scrub-triggered pending sectors). Episodes up to a day
  // long are what the voting detector (Figure 2) has to suppress.
  double spike_start_prob = 3.5e-4;  // per sampled hour
  double spike_mean_len_hours = 2.5;
  int spike_max_len_hours = 18;
  double spike_magnitude = 2.0;    // multiple of the failure-level deviation

  // Telemetry loss.
  double missing_prob = 0.02;
};

// The two families of the paper's Table I. "W" is the large fleet whose
// failures are driven by age/temperature/reported-uncorrectable-errors;
// "Q" is the smaller, noisier fleet whose failures are driven by
// age/temperature/seek errors (Section V-B1's interpretability findings).
FamilyProfile family_w_profile();
FamilyProfile family_q_profile();

}  // namespace hdd::sim
