// Deterministic SMART trace generator.
//
// Every sample is a pure function of (fleet seed, family, drive index,
// hour): the generator never stores traces, so an 8-week 25k-drive fleet
// can be re-materialized window-by-window (the model-updating experiments
// of Section V-B3 walk eight weeks of telemetry this way). Determinism also
// makes every experiment in the bench suite exactly reproducible.
//
// The per-drive latent state (age, baselines, failure signature, window) is
// drawn once from the drive's key; per-sample noise comes from a
// counter-based RNG keyed by (drive, hour, stream).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "sim/profile.h"
#include "smart/drive.h"

namespace hdd::sim {

// Latent (unobservable) state of one simulated drive.
struct DriveLatent {
  std::uint64_t key = 0;  // root key for this drive's random streams
  bool failed = false;

  double age_hours = 0.0;  // power-on age at the observation epoch
  double diurnal_phase = 0.0;

  // Per-drive healthy baselines for the noisy normalized attributes.
  std::array<double, smart::kNumAttributes> base{};

  // Static event-counter state (borderline good drives have nonzero ones).
  double rsc_raw_base = 0.0;
  double cps_raw_base = 0.0;
  double rue_base = 0.0;
  double hfw_base = 0.0;

  // Benign wear: healthy drives also reallocate sectors occasionally —
  // a slow linear rate plus a few step bursts. Without this, counter
  // *growth* would be a perfect failure separator, which real SMART data
  // does not offer.
  double rsc_rate_per_hour = 0.0;
  static constexpr int kMaxBursts = 3;
  std::array<std::int64_t, kMaxBursts> burst_hour{{-1, -1, -1}};
  std::array<double, kMaxBursts> burst_amount{{0.0, 0.0, 0.0}};

  // Failure process (meaningful only when failed).
  std::int64_t fail_hour = -1;
  double window_hours = 0.0;  // deterioration window w_d
  double ramp_power = 1.0;
  double severity = 1.0;
  int signature = -1;         // index into profile.signatures; -1 = sudden
};

class TraceGenerator {
 public:
  // `family_salt` decorrelates families that share a fleet seed.
  TraceGenerator(FamilyProfile profile, std::uint64_t seed,
                 std::uint64_t family_salt = 0);

  const FamilyProfile& profile() const { return profile_; }

  // Draws the latent state of drive `index`. For failed drives the failure
  // hour is uniform over [24, horizon_hours].
  DriveLatent make_latent(std::uint64_t index, bool failed,
                          std::int64_t horizon_hours) const;

  // The SMART reading of this drive at `hour`. Pure function of its inputs.
  smart::Sample sample_at(const DriveLatent& d, std::int64_t hour) const;

  // Whether the reading at `hour` was lost by the telemetry pipeline.
  bool is_missing(const DriveLatent& d, std::int64_t hour) const;

  // Materializes a record over [from_hour, to_hour] on the global
  // `interval_hours` grid, honouring missing samples. Failed drives are cut
  // at their failure hour.
  smart::DriveRecord materialize(const DriveLatent& d, std::int64_t from_hour,
                                 std::int64_t to_hour,
                                 int interval_hours) const;

  // Deterioration severity s(t) in [0,1]; 0 for good drives / pre-onset.
  double ramp_at(const DriveLatent& d, std::int64_t hour) const;

 private:
  FamilyProfile profile_;
  CounterRng root_;
};

// One family's slice of a synthetic fleet.
struct FamilySpec {
  FamilyProfile profile;
  std::size_t n_good = 0;
  std::size_t n_failed = 0;
};

struct FleetConfig {
  std::uint64_t seed = 42;
  int sample_interval_hours = 1;
  int observation_weeks = 8;   // good-drive observation period (Table I: 56d)
  int failed_record_days = 20; // recorded window before failure (Table I)
  std::vector<FamilySpec> families;
};

// Fleet configuration mirroring the paper's Table I, scaled by `scale`
// (scale = 1.0 reproduces 22,790/434 "W" and 2,441/127 "Q" drives).
FleetConfig paper_fleet_config(double scale, std::uint64_t seed = 42,
                               int sample_interval_hours = 1);

// Materializes a whole fleet. Good drives span the full observation period
// limited to [good_from_week, good_to_week) when given (defaults: whole
// period). Parallelized over drives.
data::DriveDataset generate_fleet(const FleetConfig& config);
data::DriveDataset generate_fleet_window(const FleetConfig& config,
                                         int good_from_week,
                                         int good_to_week);

}  // namespace hdd::sim
