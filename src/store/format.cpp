#include "store/format.h"

#include <array>
#include <bit>
#include <cstring>

namespace hdd::store {

namespace {

// Eight CRC tables: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, which is what lets the
// slice-by-8 loop fold 8 input bytes with 8 independent lookups.
struct CrcTables {
  std::uint32_t t[8][256];
};

CrcTables make_crc_tables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      c = tables.t[0][c & 0xFFu] ^ (c >> 8);
      tables.t[k][i] = c;
    }
  }
  return tables;
}

const CrcTables& crc_tables() {
  static const CrcTables tables = make_crc_tables();
  return tables;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  const CrcTables& tb = crc_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo = 0, hi = 0;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^
          tb.t[5][(lo >> 16) & 0xFFu] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
          tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void patch_u32(std::string& out, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

bool Reader::u8(std::uint8_t& v) {
  if (!remaining(1)) return false;
  v = static_cast<std::uint8_t>(bytes[pos++]);
  return true;
}

bool Reader::u16(std::uint16_t& v) {
  if (!remaining(2)) return false;
  v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(bytes[pos++]) << (8 * i));
  }
  return true;
}

bool Reader::u32(std::uint32_t& v) {
  if (!remaining(4)) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos++]))
         << (8 * i);
  }
  return true;
}

bool Reader::u64(std::uint64_t& v) {
  if (!remaining(8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[pos++]))
         << (8 * i);
  }
  return true;
}

std::string encode_segment_header(std::uint64_t sequence,
                                  std::uint32_t flags) {
  std::string out;
  out.reserve(kSegmentHeaderBytes);
  out.append(kSegmentMagic, sizeof kSegmentMagic);
  put_u32(out, kFormatVersion);
  put_u64(out, sequence);
  put_u32(out, flags);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<SegmentHeader> decode_segment_header(std::string_view bytes) {
  if (bytes.size() < kSegmentHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof kSegmentMagic) != 0) {
    return std::nullopt;
  }
  Reader r{bytes, sizeof kSegmentMagic};
  std::uint32_t version = 0, flags = 0, crc = 0;
  std::uint64_t sequence = 0;
  if (!r.u32(version) || !r.u64(sequence) || !r.u32(flags) || !r.u32(crc)) {
    return std::nullopt;
  }
  if (version != kFormatVersion) return std::nullopt;
  if (crc != crc32(bytes.data(), kSegmentHeaderBytes - 4)) return std::nullopt;
  return SegmentHeader{sequence, flags};
}

std::string encode_drive_record(std::uint32_t id, std::string_view serial) {
  std::string out;
  out.reserve(1 + 4 + 2 + serial.size());
  put_u8(out, static_cast<std::uint8_t>(RecordType::kDrive));
  put_u32(out, id);
  put_u16(out, static_cast<std::uint16_t>(serial.size()));
  out.append(serial);
  return out;
}

std::string encode_sample_record(std::uint32_t drive,
                                 const smart::Sample& sample) {
  std::string out;
  out.reserve(1 + 4 + 8 + 4 * smart::kNumAttributes);
  put_u8(out, static_cast<std::uint8_t>(RecordType::kSample));
  put_u32(out, drive);
  put_u64(out, static_cast<std::uint64_t>(sample.hour));
  for (float v : sample.attrs) put_u32(out, std::bit_cast<std::uint32_t>(v));
  return out;
}

std::string encode_generation_record(std::uint64_t generation,
                                     std::string_view model_text) {
  std::string out;
  out.reserve(1 + 8 + 4 + model_text.size());
  put_u8(out, static_cast<std::uint8_t>(RecordType::kGeneration));
  put_u64(out, generation);
  put_u32(out, static_cast<std::uint32_t>(model_text.size()));
  out.append(model_text);
  return out;
}

std::string frame_record(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

void append_sample_frame(std::string& out, std::uint32_t drive,
                         const smart::Sample& sample) {
  constexpr std::uint32_t kPayload =
      static_cast<std::uint32_t>(kSampleFrameBytes - kFrameHeaderBytes);
  const std::size_t frame_start = out.size();
  put_u32(out, kPayload);
  put_u32(out, 0);  // CRC patched in below, once the payload bytes exist
  put_u8(out, static_cast<std::uint8_t>(RecordType::kSample));
  put_u32(out, drive);
  put_u64(out, static_cast<std::uint64_t>(sample.hour));
  for (float v : sample.attrs) put_u32(out, std::bit_cast<std::uint32_t>(v));
  patch_u32(out, frame_start + 4,
            crc32(out.data() + frame_start + kFrameHeaderBytes, kPayload));
}

std::optional<DecodedRecord> decode_record(std::string_view payload) {
  Reader r{payload};
  std::uint8_t type = 0;
  if (!r.u8(type)) return std::nullopt;
  DecodedRecord rec;
  if (type == static_cast<std::uint8_t>(RecordType::kDrive)) {
    rec.type = RecordType::kDrive;
    std::uint16_t len = 0;
    if (!r.u32(rec.drive) || !r.u16(len) || !r.remaining(len)) {
      return std::nullopt;
    }
    rec.serial.assign(payload.substr(r.pos, len));
    return rec;
  }
  if (type == static_cast<std::uint8_t>(RecordType::kSample)) {
    rec.type = RecordType::kSample;
    std::uint64_t hour = 0;
    if (!r.u32(rec.drive) || !r.u64(hour)) return std::nullopt;
    rec.sample.hour = static_cast<std::int64_t>(hour);
    for (float& v : rec.sample.attrs) {
      std::uint32_t bits = 0;
      if (!r.u32(bits)) return std::nullopt;
      v = std::bit_cast<float>(bits);
    }
    return rec;
  }
  if (type == static_cast<std::uint8_t>(RecordType::kGeneration)) {
    rec.type = RecordType::kGeneration;
    std::uint32_t len = 0;
    if (!r.u64(rec.generation) || !r.u32(len) || !r.remaining(len) ||
        r.pos + len != payload.size()) {
      return std::nullopt;
    }
    rec.model_text.assign(payload.substr(r.pos, len));
    return rec;
  }
  return std::nullopt;
}

}  // namespace hdd::store
