#include "store/format.h"

#include <array>
#include <bit>
#include <cstring>

namespace hdd::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// Bounds-checked little-endian cursor over a payload.
struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;

  bool remaining(std::size_t n) const { return bytes.size() - pos >= n; }

  bool u8(std::uint8_t& v) {
    if (!remaining(1)) return false;
    v = static_cast<std::uint8_t>(bytes[pos++]);
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (!remaining(2)) return false;
    v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(bytes[pos++]) << (8 * i));
    }
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (!remaining(4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[pos++]))
           << (8 * i);
    }
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (!remaining(8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[pos++]))
           << (8 * i);
    }
    return true;
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string encode_segment_header(std::uint64_t sequence,
                                  std::uint32_t flags) {
  std::string out;
  out.reserve(kSegmentHeaderBytes);
  out.append(kSegmentMagic, sizeof kSegmentMagic);
  put_u32(out, kFormatVersion);
  put_u64(out, sequence);
  put_u32(out, flags);
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::optional<SegmentHeader> decode_segment_header(std::string_view bytes) {
  if (bytes.size() < kSegmentHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kSegmentMagic, sizeof kSegmentMagic) != 0) {
    return std::nullopt;
  }
  Reader r{bytes, sizeof kSegmentMagic};
  std::uint32_t version = 0, flags = 0, crc = 0;
  std::uint64_t sequence = 0;
  if (!r.u32(version) || !r.u64(sequence) || !r.u32(flags) || !r.u32(crc)) {
    return std::nullopt;
  }
  if (version != kFormatVersion) return std::nullopt;
  if (crc != crc32(bytes.data(), kSegmentHeaderBytes - 4)) return std::nullopt;
  return SegmentHeader{sequence, flags};
}

std::string encode_drive_record(std::uint32_t id, std::string_view serial) {
  std::string out;
  out.reserve(1 + 4 + 2 + serial.size());
  put_u8(out, static_cast<std::uint8_t>(RecordType::kDrive));
  put_u32(out, id);
  put_u16(out, static_cast<std::uint16_t>(serial.size()));
  out.append(serial);
  return out;
}

std::string encode_sample_record(std::uint32_t drive,
                                 const smart::Sample& sample) {
  std::string out;
  out.reserve(1 + 4 + 8 + 4 * smart::kNumAttributes);
  put_u8(out, static_cast<std::uint8_t>(RecordType::kSample));
  put_u32(out, drive);
  put_u64(out, static_cast<std::uint64_t>(sample.hour));
  for (float v : sample.attrs) put_u32(out, std::bit_cast<std::uint32_t>(v));
  return out;
}

std::string frame_record(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

std::optional<DecodedRecord> decode_record(std::string_view payload) {
  Reader r{payload};
  std::uint8_t type = 0;
  if (!r.u8(type)) return std::nullopt;
  DecodedRecord rec;
  if (type == static_cast<std::uint8_t>(RecordType::kDrive)) {
    rec.type = RecordType::kDrive;
    std::uint16_t len = 0;
    if (!r.u32(rec.drive) || !r.u16(len) || !r.remaining(len)) {
      return std::nullopt;
    }
    rec.serial.assign(payload.substr(r.pos, len));
    return rec;
  }
  if (type == static_cast<std::uint8_t>(RecordType::kSample)) {
    rec.type = RecordType::kSample;
    std::uint64_t hour = 0;
    if (!r.u32(rec.drive) || !r.u64(hour)) return std::nullopt;
    rec.sample.hour = static_cast<std::int64_t>(hour);
    for (float& v : rec.sample.attrs) {
      std::uint32_t bits = 0;
      if (!r.u32(bits)) return std::nullopt;
      v = std::bit_cast<float>(bits);
    }
    return rec;
  }
  return std::nullopt;
}

}  // namespace hdd::store
