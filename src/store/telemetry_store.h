// TelemetryStore — embedded crash-safe store for SMART telemetry.
//
// The paper's deployment loop (Section V-E) is a monitoring node that
// scores every drive on each SMART interval and periodically retrains from
// accumulated history. This store is the durable substrate for both: an
// append-only log of sample records in CRC-framed segments (format.h),
// with a per-drive in-memory index rebuilt on open.
//
// Guarantees:
//  * Appends are sequential writes to the highest segment; segments rotate
//    at StoreOptions::segment_bytes. flush() pushes buffered appends to the
//    OS (fsync_appends trades throughput for power-loss durability).
//  * Opening recovers deterministically from a crash: a torn tail record is
//    truncated away (the log ends at the last complete record); a record
//    whose CRC fails is skipped and scanning of that segment stops — later
//    segments still load. Recovery never throws for corrupt record data;
//    RecoveryStats reports what was salvaged.
//  * compact(min_hour) takes a point-in-time snapshot of the samples at or
//    after the retention horizon into one fresh segment flagged
//    kSegCompacted, which supersedes all lower-numbered segments; old files
//    are unlinked afterwards, so a crash at any point leaves either the old
//    or the new generation fully intact, never a mix.
//  * Drive ids are dense, assigned in registration order, and stable across
//    reopen and compaction.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/retry.h"
#include "smart/drive.h"

namespace hdd::obs {
class Counter;
class Registry;
}  // namespace hdd::obs

namespace hdd::store {

struct StoreOptions {
  // Rotation threshold: an append that would grow the current segment past
  // this opens a new one.
  std::uint64_t segment_bytes = 8ull << 20;
  // fsync after every append (otherwise durability is at flush()/OS pace).
  bool fsync_appends = false;
  // Registry for the hdd_store_* metrics (appends, bytes, fsyncs,
  // rotations, recovery-taxonomy outcomes); nullptr =
  // obs::Registry::global(). A non-global registry must outlive the store.
  obs::Registry* metrics = nullptr;
  // All filesystem access goes through this Env; nullptr = io::Env::posix().
  // A FaultEnv here puts the whole store under deterministic fault
  // injection. The env must outlive the store.
  io::Env* env = nullptr;
  // Backoff policy for transiently failing opens and fsyncs. Appends are
  // never blindly retried: a short write may have landed a prefix, and
  // re-sending the frame would duplicate it — the segment is sealed and the
  // next append rotates to a fresh one instead.
  io::RetryPolicy retry{};
};

struct RecoveryStats {
  std::size_t segments_scanned = 0;
  std::size_t segments_skipped = 0;    // unreadable header — excluded wholesale
  std::size_t records_recovered = 0;   // applied to the index
  std::size_t records_dropped = 0;     // CRC mismatch, bad reference, unknown type
  std::uint64_t torn_bytes_truncated = 0;
  bool tail_truncated = false;
};

struct DriveInfo {
  std::string serial;
  std::size_t n_samples = 0;
  std::int64_t first_hour = -1;
  std::int64_t last_hour = -1;
};

// The promoted model the log knows about: generation number + serialized
// model text (core/model_io format). Highest generation wins on recovery.
struct GenerationRecord {
  std::uint64_t generation = 0;
  std::string model_text;
};

// Concurrency contract: externally synchronized, single caller at a time —
// no internal locking, deliberately. Serve pins each store to one shard
// worker thread (ShardEngine), and the retrain loop reaches it only via
// Server::run_on_shard, so every access is already serialized; a mutex here
// would only hide violations of that design. The annotated-capability
// subsystems (common/mutex.h) cover the genuinely shared state around it.
class TelemetryStore {
 public:
  // Opens (creating the directory if needed) and recovers the log.
  // Throws DataError only for environment-level failures (unreadable
  // directory, I/O errors) — never for corrupt record data.
  explicit TelemetryStore(std::string dir, StoreOptions options = {});
  ~TelemetryStore();

  TelemetryStore(const TelemetryStore&) = delete;
  TelemetryStore& operator=(const TelemetryStore&) = delete;

  const std::string& directory() const { return dir_; }
  const StoreOptions& options() const { return options_; }
  // Stats from the most recent recovery scan (open or post-compaction).
  const RecoveryStats& recovery() const { return recovery_; }

  // --- Drive registry -------------------------------------------------------

  // Returns the existing id for a known serial, else appends a registration
  // record and returns the new dense id.
  std::uint32_t register_drive(const std::string& serial);
  std::optional<std::uint32_t> find_drive(const std::string& serial) const;
  std::size_t drive_count() const { return drives_.size(); }
  const DriveInfo& drive(std::uint32_t id) const;

  // --- Append path ----------------------------------------------------------

  // Appends one sample for a registered drive. Samples for one drive should
  // arrive in chronological order (replay preserves append order).
  void append(std::uint32_t drive, const smart::Sample& sample);

  // Appends a block of samples for one drive, encoding all frames into one
  // reused buffer per write syscall (the serve ingest hot path; see
  // BENCH_obs.json BM_StoreAppendBatch vs BM_StoreAppend). Semantics match
  // n append() calls: rotation still happens on frame boundaries, and an
  // I/O failure seals the segment with none of this batch's samples
  // indexed (recovery truncates whatever prefix tore).
  void append_batch(std::uint32_t drive, const smart::Sample* samples,
                    std::size_t n);

  // Journals a promoted model generation durably (frame + fsync): the
  // update pipeline writes this record *before* hot-swapping the scorer, so
  // a crash at any promotion step resumes to a well-defined generation.
  // Throws DataError when the serialized model exceeds kMaxPayloadBytes.
  void append_generation(std::uint64_t generation,
                         std::string_view model_text);

  // Highest-generation record recovered or appended; nullopt when the log
  // holds none.
  const std::optional<GenerationRecord>& latest_generation() const {
    return generation_;
  }

  // Durable flush: fsyncs buffered appends to stable storage.
  void flush();

  // Cheap flush: pushes buffered appends to the OS page cache without the
  // fsync, so readers (and recovery after a process crash) see them.
  // Power-loss durability still requires flush().
  void flush_to_os();

  std::size_t sample_count() const;
  std::size_t segment_count() const { return segments_.size(); }
  // Latest hour across all drives; -1 when the store holds no samples.
  std::int64_t last_hour() const;

  // --- Read path ------------------------------------------------------------

  using SampleFn =
      std::function<void(std::uint32_t drive, const smart::Sample&)>;

  // Streams every sample in append order (the replay order resume_from and
  // the update strategies consume).
  void scan(const SampleFn& fn) const;

  // One drive's samples with hour in [from_hour, to_hour], in append order.
  std::vector<smart::Sample> read_drive(
      std::uint32_t drive,
      std::int64_t from_hour = std::numeric_limits<std::int64_t>::min(),
      std::int64_t to_hour = std::numeric_limits<std::int64_t>::max()) const;

  // --- Retention ------------------------------------------------------------

  struct CompactionResult {
    std::size_t kept = 0;
    std::size_t dropped = 0;
  };

  // Drops every sample with hour < min_hour and rewrites the log as a
  // single compacted segment (see class comment for the crash protocol).
  CompactionResult compact(std::int64_t min_hour);

  // Point-in-time snapshot into another directory (which must not already
  // contain segments): a one-segment store holding the live records.
  CompactionResult snapshot_to(
      const std::string& dest_dir,
      std::int64_t min_hour = std::numeric_limits<std::int64_t>::min()) const;

 private:
  struct Segment {
    std::uint64_t seq = 0;
    std::string path;
    std::uint64_t data_end = 0;  // bytes of validated data (scan stops here)
    bool clean = true;           // false after a CRC-stop: never append here
    std::size_t n_samples = 0;
  };

  void recover();
  // Closes the current writer, surfacing buffered-write/close failures as
  // DataError when `strict`; quiet (log-only) otherwise.
  void close_writer(bool strict);
  // Scans one segment file, applying records to the index. Returns false
  // when the header was unreadable.
  [[nodiscard]] bool scan_segment(Segment& seg);
  void apply_record(std::string_view payload, Segment& seg);
  void ensure_writer();
  void write_frame(std::string_view payload);
  std::string segment_path(std::uint64_t seq) const;
  CompactionResult write_compacted(const std::string& path_tmp,
                                   const std::string& path_final,
                                   std::uint64_t seq,
                                   std::int64_t min_hour) const;
  void scan_range(const Segment& seg,
                  const std::function<void(std::string_view)>& fn) const;

  std::string dir_;
  StoreOptions options_;
  io::Env* env_;  // resolved from options_.env (never null after construction)
  io::Retryer retryer_;
  // hdd_store_* instruments (resolved from options_.metrics before
  // recover(), so the open-time scan is counted; see DESIGN.md §7). The
  // hdd_store_recovery_outcomes_total counters carry an {outcome=...}
  // label per recovery-taxonomy branch.
  obs::Counter* m_appends_;
  obs::Counter* m_bytes_;
  obs::Counter* m_fsyncs_;
  obs::Counter* m_rotations_;
  obs::Counter* m_sealed_;
  obs::Counter* m_rec_torn_tail_;
  obs::Counter* m_rec_crc_drop_;
  obs::Counter* m_rec_record_dropped_;
  obs::Counter* m_rec_header_skip_;
  obs::Counter* m_rec_empty_deleted_;
  obs::Counter* m_rec_tmp_deleted_;
  RecoveryStats recovery_;
  std::vector<Segment> segments_;
  std::vector<DriveInfo> drives_;
  // Segment seqs holding at least one sample of each drive (ascending).
  std::vector<std::vector<std::uint64_t>> drive_segments_;
  std::unordered_map<std::string, std::uint32_t> by_serial_;
  std::optional<GenerationRecord> generation_;
  std::uint64_t next_seq_ = 1;
  mutable std::unique_ptr<io::File> out_;  // current segment writer (lazy)
  std::string batch_buf_;  // reused frame buffer for append_batch
};

}  // namespace hdd::store
