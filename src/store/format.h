// On-disk format of the durable telemetry store (README "Durable telemetry
// store" has the diagram).
//
// A store is a directory of segment files "seg-<seq>.log":
//
//   segment  = header | frame*
//   header   = magic "HDDTLG1\n" (8B) | version u32 | sequence u64 |
//              flags u32 | crc u32           -- CRC-32 of the first 24 bytes
//   frame    = length u32 | crc u32 | payload  -- CRC-32 of the payload
//   payload  = type u8 | body
//     type 1 (drive registration): id u32 | serial_len u16 | serial bytes
//     type 2 (SMART sample):       drive u32 | hour i64 | 12 x f32 attrs
//     type 3 (model generation):   generation u64 | model_len u32 | model
//                                  bytes (core/model_io text serialization)
//
// All integers are little-endian; floats are IEEE-754 bit patterns. The
// codec lives in its own header so tests can craft corrupt segments
// byte-for-byte and the recovery rules stay pinned by the format, not by
// store internals.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "smart/drive.h"

namespace hdd::store {

inline constexpr char kSegmentMagic[8] = {'H', 'D', 'D', 'T', 'L', 'G',
                                          '1', '\n'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 28;
inline constexpr std::size_t kFrameHeaderBytes = 8;
// A frame whose declared payload length exceeds this is treated as
// corruption, not as a huge record.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

// Segment header flag: this segment is a compaction output and supersedes
// every segment with a lower sequence number (crash-safe replacement — old
// segments may still be on disk if the process died before unlinking them).
inline constexpr std::uint32_t kSegCompacted = 1u << 0;

enum class RecordType : std::uint8_t {
  kDrive = 1,
  kSample = 2,
  kGeneration = 3,
};

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the checksum of zlib/gzip.
// Computed slice-by-8 (eight table lookups per 8 input bytes); the values
// are identical to the classic byte-at-a-time loop, so every on-disk CRC
// and every test-crafted corrupt segment keeps meaning the same thing.
std::uint32_t crc32(const void* data, std::size_t n);

// --- Little-endian primitives ----------------------------------------------
// Shared by the segment codec and the serve wire codec (serve/wire.h), which
// reuses this framing idiom over TCP.

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
// Overwrites 4 bytes at `pos` (for length/CRC patched in after the fact).
void patch_u32(std::string& out, std::size_t pos, std::uint32_t v);

// Bounds-checked little-endian cursor over a payload. Every accessor's
// return value is the bounds check — ignoring one reads garbage, hence
// [[nodiscard]] throughout.
struct Reader {
  std::string_view bytes;
  std::size_t pos = 0;

  [[nodiscard]] bool remaining(std::size_t n) const {
    return bytes.size() - pos >= n;
  }

  [[nodiscard]] bool u8(std::uint8_t& v);
  [[nodiscard]] bool u16(std::uint16_t& v);
  [[nodiscard]] bool u32(std::uint32_t& v);
  [[nodiscard]] bool u64(std::uint64_t& v);
};

struct SegmentHeader {
  std::uint64_t sequence = 0;
  std::uint32_t flags = 0;
};

std::string encode_segment_header(std::uint64_t sequence, std::uint32_t flags);
// nullopt when the bytes are short, the magic/version is wrong, or the
// header checksum fails.
std::optional<SegmentHeader> decode_segment_header(std::string_view bytes);

// Record payloads (unframed).
std::string encode_drive_record(std::uint32_t id, std::string_view serial);
std::string encode_sample_record(std::uint32_t drive,
                                 const smart::Sample& sample);
// A promoted model: its generation number plus its full serialized text.
// The update pipeline journals one of these atomically with each hot-swap
// so kill -> resume restores the promoted model byte-identically.
std::string encode_generation_record(std::uint64_t generation,
                                     std::string_view model_text);

// Wraps a payload in a length + CRC frame.
std::string frame_record(std::string_view payload);

// Appends a complete frame (header + sample payload) to `out` in place —
// no intermediate strings. The batched append path encodes thousands of
// these into one reused buffer per write syscall.
void append_sample_frame(std::string& out, std::uint32_t drive,
                         const smart::Sample& sample);

// Bytes one sample occupies on disk: frame header + type/drive/hour/attrs.
inline constexpr std::size_t kSampleFrameBytes =
    kFrameHeaderBytes + 1 + 4 + 8 + 4 * smart::kNumAttributes;

struct DecodedRecord {
  RecordType type = RecordType::kSample;
  std::uint32_t drive = 0;
  std::string serial;       // kDrive only
  smart::Sample sample;     // kSample only
  std::uint64_t generation = 0;  // kGeneration only
  std::string model_text;        // kGeneration only
};

// nullopt on an unknown type or a body that does not match its type's
// layout (the payload is assumed to have passed its CRC already).
std::optional<DecodedRecord> decode_record(std::string_view payload);

}  // namespace hdd::store
