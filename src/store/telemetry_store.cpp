#include "store/telemetry_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/format.h"

namespace fs = std::filesystem;

namespace hdd::store {

namespace {

constexpr const char* kSegmentPrefix = "seg-";
constexpr const char* kSegmentSuffix = ".log";

// seg-<digits>.log -> sequence number; nullopt for foreign files.
std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

}  // namespace

TelemetryStore::TelemetryStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options_.env != nullptr ? options_.env : &io::Env::posix()),
      retryer_(options_.retry, options_.metrics) {
  HDD_REQUIRE(options_.segment_bytes >= kSegmentHeaderBytes + 64,
              "segment_bytes too small to hold any record");
  obs::Registry& reg = options_.metrics != nullptr ? *options_.metrics
                                                   : obs::Registry::global();
  m_appends_ = &reg.counter("hdd_store_appends_total",
                            "Records appended (samples + registrations).");
  m_bytes_ = &reg.counter("hdd_store_bytes_written_total",
                          "Framed bytes written to segment files.");
  m_fsyncs_ = &reg.counter("hdd_store_fsyncs_total",
                           "fsync calls issued on segment files.");
  m_rotations_ = &reg.counter("hdd_store_rotations_total",
                              "Segment rotations at the size threshold.");
  m_sealed_ = &reg.counter("hdd_store_sealed_segments_total",
                           "Segments sealed against further appends.");
  const char* rec_name = "hdd_store_recovery_outcomes_total";
  const char* rec_help = "Recovery scan events by taxonomy outcome.";
  m_rec_torn_tail_ =
      &reg.counter(rec_name, rec_help, {{"outcome", "torn_tail"}});
  m_rec_crc_drop_ = &reg.counter(rec_name, rec_help, {{"outcome", "crc_drop"}});
  m_rec_record_dropped_ =
      &reg.counter(rec_name, rec_help, {{"outcome", "record_dropped"}});
  m_rec_header_skip_ =
      &reg.counter(rec_name, rec_help, {{"outcome", "header_skip"}});
  m_rec_empty_deleted_ =
      &reg.counter(rec_name, rec_help, {{"outcome", "empty_deleted"}});
  m_rec_tmp_deleted_ =
      &reg.counter(rec_name, rec_help, {{"outcome", "tmp_deleted"}});
  recover();
}

TelemetryStore::~TelemetryStore() {
  try {
    close_writer(/*strict=*/false);
  } catch (...) {
    // A simulated crash (CrashPoint) during teardown: nothing to do, the
    // harness owns the aftermath.
  }
}

void TelemetryStore::close_writer(bool strict) {
  if (out_ == nullptr) return;
  const auto s = out_->close();
  out_.reset();
  if (!s.ok()) {
    if (strict) throw DataError("telemetry store: close failed: " + s.message);
    log_message(LogLevel::kWarn,
                "telemetry store: close failed (ignored): " + s.message);
  }
}

std::string TelemetryStore::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof name, "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return (fs::path(dir_) / name).string();
}

void TelemetryStore::recover() {
  const obs::ScopedSpan span("store.recover");
  close_writer(/*strict=*/false);
  segments_.clear();
  drives_.clear();
  drive_segments_.clear();
  by_serial_.clear();
  generation_.reset();
  recovery_ = {};
  next_seq_ = 1;

  if (auto s = env_->create_dirs(dir_); !s.ok()) {
    throw DataError("telemetry store: cannot create " + dir_ + ": " +
                    s.message);
  }

  struct Candidate {
    std::uint64_t seq;
    std::string path;
    std::optional<SegmentHeader> header;
  };
  std::vector<Candidate> candidates;
  std::vector<std::string> names;
  if (auto s = env_->list_dir(dir_, names); !s.ok()) {
    throw DataError("telemetry store: cannot list " + dir_ + ": " + s.message);
  }
  for (const std::string& name : names) {
    const std::string path = (fs::path(dir_) / name).string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      (void)env_->remove_file(path);  // interrupted compaction output
      m_rec_tmp_deleted_->inc();
      continue;
    }
    const auto seq = parse_segment_name(name);
    if (!seq) continue;
    std::uint64_t size = 0;
    if (env_->file_size(path, size).ok() && size == 0) {
      (void)env_->remove_file(path);  // crash before the header: nothing durable
      m_rec_empty_deleted_->inc();
      continue;
    }
    next_seq_ = std::max(next_seq_, *seq + 1);
    Candidate c{*seq, path, std::nullopt};
    std::string head;
    if (env_->read_prefix(path, kSegmentHeaderBytes, head).ok() &&
        head.size() == kSegmentHeaderBytes) {
      c.header = decode_segment_header({head.data(), head.size()});
      // The filename is authoritative for ordering; a header naming a
      // different sequence is corruption.
      if (c.header && c.header->sequence != *seq) c.header = std::nullopt;
    }
    candidates.push_back(std::move(c));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.seq < b.seq;
            });

  // A compacted segment supersedes everything before it (crash-safe
  // replacement: the old generation may still be on disk).
  std::uint64_t start_seq = 0;
  for (const Candidate& c : candidates) {
    if (c.header && (c.header->flags & kSegCompacted) != 0) {
      start_seq = c.seq;
    }
  }
  for (const Candidate& c : candidates) {
    if (c.seq < start_seq) {
      // Superseded by the compacted segment; a failed unlink is retried
      // by the next recovery pass.
      (void)env_->remove_file(c.path);
      continue;
    }
    Segment seg;
    seg.seq = c.seq;
    seg.path = c.path;
    ++recovery_.segments_scanned;
    if (!c.header || !scan_segment(seg)) {
      ++recovery_.segments_skipped;
      m_rec_header_skip_->inc();
      continue;  // unreadable header: excluded (file left in place)
    }
    segments_.push_back(std::move(seg));
  }
  // After a skipped segment the safe append point is a brand-new segment
  // numbered above everything on disk, so replay order stays append order.
  if (recovery_.segments_skipped > 0 && !segments_.empty()) {
    segments_.back().clean = false;
    m_sealed_->inc();
  }
}

bool TelemetryStore::scan_segment(Segment& seg) {
  std::string buf;
  if (auto s = env_->read_file(seg.path, buf); !s.ok()) {
    throw DataError("telemetry store: cannot open " + seg.path + ": " +
                    s.message);
  }
  if (buf.size() < kSegmentHeaderBytes ||
      !decode_segment_header({buf.data(), kSegmentHeaderBytes})) {
    return false;
  }
  std::size_t pos = kSegmentHeaderBytes;
  seg.data_end = pos;
  while (pos < buf.size()) {
    const std::size_t remaining = buf.size() - pos;
    auto read_u32 = [&buf](std::size_t at) {
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(buf[at + i]))
             << (8 * i);
      }
      return v;
    };
    if (remaining < kFrameHeaderBytes) break;  // torn frame header
    const std::uint32_t len = read_u32(pos);
    const std::uint32_t crc = read_u32(pos + 4);
    if (len == 0 || len > kMaxPayloadBytes ||
        len > remaining - kFrameHeaderBytes) {
      break;  // torn tail (or garbage length — indistinguishable)
    }
    const std::string_view payload(buf.data() + pos + kFrameHeaderBytes, len);
    if (crc32(payload.data(), payload.size()) != crc) {
      // A flipped bit mid-log: skip the record and stop trusting this
      // segment — framing beyond it may be off. Later segments still load.
      ++recovery_.records_dropped;
      m_rec_crc_drop_->inc();
      seg.clean = false;
      m_sealed_->inc();
      return true;
    }
    apply_record(payload, seg);
    pos += kFrameHeaderBytes + len;
    seg.data_end = pos;
  }
  if (seg.data_end < buf.size()) {
    // Torn tail record: cut the file back to the last complete record so
    // the segment stays appendable.
    recovery_.torn_bytes_truncated += buf.size() - seg.data_end;
    recovery_.tail_truncated = true;
    m_rec_torn_tail_->inc();
    if (!env_->resize_file(seg.path, seg.data_end).ok()) {
      seg.clean = false;  // cannot repair in place: stop appending here
      m_sealed_->inc();
    }
  }
  return true;
}

void TelemetryStore::apply_record(std::string_view payload, Segment& seg) {
  auto rec = decode_record(payload);
  if (!rec) {
    ++recovery_.records_dropped;  // unknown type / malformed body
    m_rec_record_dropped_->inc();
    return;
  }
  if (rec->type == RecordType::kDrive) {
    const auto it = by_serial_.find(rec->serial);
    if (it == by_serial_.end() && rec->drive == drives_.size()) {
      by_serial_.emplace(rec->serial, rec->drive);
      drives_.push_back(DriveInfo{rec->serial, 0, -1, -1});
      drive_segments_.emplace_back();
      ++recovery_.records_recovered;
    } else if (it != by_serial_.end() && it->second == rec->drive) {
      ++recovery_.records_recovered;  // idempotent re-registration
    } else {
      ++recovery_.records_dropped;  // id/serial mismatch
      m_rec_record_dropped_->inc();
    }
    return;
  }
  if (rec->type == RecordType::kGeneration) {
    // Highest generation wins: promotions are journaled in order, but a
    // compacted segment replays its (single, latest) record first.
    if (!generation_ || rec->generation >= generation_->generation) {
      generation_ = GenerationRecord{rec->generation,
                                     std::move(rec->model_text)};
    }
    ++recovery_.records_recovered;
    return;
  }
  if (rec->drive >= drives_.size()) {
    ++recovery_.records_dropped;  // sample for an unregistered drive
    m_rec_record_dropped_->inc();
    return;
  }
  DriveInfo& info = drives_[rec->drive];
  if (info.n_samples == 0) info.first_hour = rec->sample.hour;
  info.last_hour = rec->sample.hour;
  ++info.n_samples;
  ++seg.n_samples;
  auto& segs = drive_segments_[rec->drive];
  if (segs.empty() || segs.back() != seg.seq) segs.push_back(seg.seq);
  ++recovery_.records_recovered;
}

const DriveInfo& TelemetryStore::drive(std::uint32_t id) const {
  HDD_REQUIRE(id < drives_.size(), "drive id out of range");
  return drives_[id];
}

std::optional<std::uint32_t> TelemetryStore::find_drive(
    const std::string& serial) const {
  const auto it = by_serial_.find(serial);
  if (it == by_serial_.end()) return std::nullopt;
  return it->second;
}

std::size_t TelemetryStore::sample_count() const {
  std::size_t n = 0;
  for (const DriveInfo& d : drives_) n += d.n_samples;
  return n;
}

std::int64_t TelemetryStore::last_hour() const {
  std::int64_t h = -1;
  for (const DriveInfo& d : drives_) h = std::max(h, d.last_hour);
  return h;
}

void TelemetryStore::ensure_writer() {
  if (out_ != nullptr) return;
  if (!segments_.empty()) {
    Segment& last = segments_.back();
    if (last.clean && last.data_end >= kSegmentHeaderBytes &&
        last.data_end < options_.segment_bytes) {
      const auto s = retryer_.run("open segment", [&] {
        return env_->new_append_file(last.path, /*truncate=*/false, out_);
      });
      if (!s.ok()) {
        throw DataError("telemetry store: cannot append to " + last.path +
                        ": " + s.message);
      }
      return;
    }
  }
  Segment seg;
  seg.seq = next_seq_++;
  seg.path = segment_path(seg.seq);
  const auto opened = retryer_.run("create segment", [&] {
    return env_->new_append_file(seg.path, /*truncate=*/true, out_);
  });
  if (!opened.ok()) {
    throw DataError("telemetry store: cannot create " + seg.path + ": " +
                    opened.message);
  }
  const std::string header = encode_segment_header(seg.seq, 0);
  if (auto s = out_->append(header); !s.ok()) {
    out_->abandon();
    out_.reset();
    throw DataError("telemetry store: cannot write header to " + seg.path +
                    ": " + s.message);
  }
  seg.data_end = header.size();
  segments_.push_back(std::move(seg));
}

void TelemetryStore::write_frame(std::string_view payload) {
  // Rotate before the write so a record is never split across segments.
  if (out_ != nullptr &&
      segments_.back().data_end + kFrameHeaderBytes + payload.size() >
          options_.segment_bytes &&
      segments_.back().data_end > kSegmentHeaderBytes) {
    close_writer(/*strict=*/true);
    segments_.back().clean = false;  // sealed: rotation point
    m_rotations_->inc();
    m_sealed_->inc();
  }
  ensure_writer();
  const std::string frame = frame_record(payload);
  if (auto s = out_->append(frame); !s.ok()) {
    // The frame may have partially landed (short write / ENOSPC tear):
    // never re-send it — a retried prefix would duplicate bytes. Seal the
    // segment so the next append rotates to a fresh file; recovery will
    // truncate any torn tail this append left behind.
    segments_.back().clean = false;
    m_sealed_->inc();
    (void)out_->flush();  // best effort: earlier complete frames reach the OS
    close_writer(/*strict=*/false);
    throw DataError("telemetry store: append to " + segments_.back().path +
                    " failed: " + s.message);
  }
  segments_.back().data_end += frame.size();
  m_appends_->inc();
  m_bytes_->inc(static_cast<std::uint64_t>(frame.size()));
  if (options_.fsync_appends) {
    const obs::ScopedSpan fsync_span("store.fsync");
    const auto s = retryer_.run("fsync segment", [&] { return out_->sync(); });
    m_fsyncs_->inc();
    if (!s.ok()) {
      throw DataError("telemetry store: fsync of " + segments_.back().path +
                      " failed: " + s.message);
    }
  }
}

std::uint32_t TelemetryStore::register_drive(const std::string& serial) {
  HDD_REQUIRE(!serial.empty(), "drive serial must not be empty");
  HDD_REQUIRE(serial.size() <= 0xFFFF, "drive serial too long");
  const auto it = by_serial_.find(serial);
  if (it != by_serial_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(drives_.size());
  write_frame(encode_drive_record(id, serial));
  by_serial_.emplace(serial, id);
  drives_.push_back(DriveInfo{serial, 0, -1, -1});
  drive_segments_.emplace_back();
  return id;
}

void TelemetryStore::append(std::uint32_t drive, const smart::Sample& sample) {
  HDD_REQUIRE(drive < drives_.size(), "append to an unregistered drive");
  write_frame(encode_sample_record(drive, sample));
  DriveInfo& info = drives_[drive];
  if (info.n_samples == 0) info.first_hour = sample.hour;
  info.last_hour = sample.hour;
  ++info.n_samples;
  Segment& seg = segments_.back();
  ++seg.n_samples;
  auto& segs = drive_segments_[drive];
  if (segs.empty() || segs.back() != seg.seq) segs.push_back(seg.seq);
}

void TelemetryStore::append_batch(std::uint32_t drive,
                                  const smart::Sample* samples,
                                  std::size_t n) {
  HDD_REQUIRE(drive < drives_.size(), "append to an unregistered drive");
  const obs::ScopedSpan span("store.append", "samples",
                             static_cast<std::uint64_t>(n));
  std::size_t done = 0;
  while (done < n) {
    ensure_writer();
    Segment* seg = &segments_.back();
    // How many whole frames fit before the rotation threshold. Always at
    // least one: a fresh segment holds just its header and segment_bytes
    // is validated to fit a record past it.
    std::size_t fit = 0;
    if (seg->data_end + kSampleFrameBytes <= options_.segment_bytes ||
        seg->data_end <= kSegmentHeaderBytes) {
      fit = (options_.segment_bytes - seg->data_end) / kSampleFrameBytes;
      if (fit == 0) fit = 1;
    }
    if (fit == 0) {
      // Rotate exactly as write_frame would: seal, then loop to a fresh
      // segment.
      close_writer(/*strict=*/true);
      seg->clean = false;
      m_rotations_->inc();
      m_sealed_->inc();
      continue;
    }
    const std::size_t k = std::min(fit, n - done);
    batch_buf_.clear();
    batch_buf_.reserve(k * kSampleFrameBytes);
    for (std::size_t i = 0; i < k; ++i) {
      append_sample_frame(batch_buf_, drive, samples[done + i]);
    }
    if (auto s = out_->append(batch_buf_); !s.ok()) {
      // Same contract as write_frame: a prefix may have landed, so never
      // re-send — seal and let recovery truncate the torn tail. None of
      // this batch is indexed.
      seg->clean = false;
      m_sealed_->inc();
      (void)out_->flush();  // best effort: earlier complete frames reach the OS
      close_writer(/*strict=*/false);
      // Unlike write_frame's single record, a torn multi-frame buffer can
      // leave *complete* frames of this failed batch on disk. The live
      // store does not index them, so recovery must not either — a
      // re-sent batch would otherwise replay those samples twice. Cut the
      // file back to the last indexed frame; when even that fails
      // (permanent env failure), the segment is sealed and degraded
      // already, and the duplicate-on-resend hazard is the smaller of the
      // node's problems.
      std::uint64_t on_disk = 0;
      if (env_->file_size(seg->path, on_disk).ok() &&
          on_disk > seg->data_end) {
        (void)retryer_.run("truncate torn append", [&] {
          return env_->resize_file(seg->path, seg->data_end);
        });
      }
      throw DataError("telemetry store: append to " + seg->path +
                      " failed: " + s.message);
    }
    seg->data_end += batch_buf_.size();
    seg->n_samples += k;
    m_appends_->inc(static_cast<std::uint64_t>(k));
    m_bytes_->inc(static_cast<std::uint64_t>(batch_buf_.size()));
    DriveInfo& info = drives_[drive];
    if (info.n_samples == 0) info.first_hour = samples[done].hour;
    info.last_hour = samples[done + k - 1].hour;
    info.n_samples += k;
    auto& segs = drive_segments_[drive];
    if (segs.empty() || segs.back() != seg->seq) segs.push_back(seg->seq);
    done += k;
  }
  if (options_.fsync_appends && out_ != nullptr) {
    const obs::ScopedSpan fsync_span("store.fsync");
    const auto s = retryer_.run("fsync segment", [&] { return out_->sync(); });
    m_fsyncs_->inc();
    if (!s.ok()) {
      throw DataError("telemetry store: fsync of " + segments_.back().path +
                      " failed: " + s.message);
    }
  }
}

void TelemetryStore::append_generation(std::uint64_t generation,
                                       std::string_view model_text) {
  const std::size_t payload_bytes = 1 + 8 + 4 + model_text.size();
  if (payload_bytes > kMaxPayloadBytes) {
    throw DataError("telemetry store: serialized model too large for a "
                    "generation record (" +
                    std::to_string(model_text.size()) + " bytes)");
  }
  write_frame(encode_generation_record(generation, model_text));
  flush();  // a promotion must be durable before the in-memory swap
  generation_ = GenerationRecord{generation, std::string(model_text)};
}

void TelemetryStore::flush() {
  if (out_ == nullptr) return;
  const obs::ScopedSpan span("store.fsync");
  const auto s = retryer_.run("fsync segment", [&] { return out_->sync(); });
  m_fsyncs_->inc();
  if (!s.ok()) {
    throw DataError("telemetry store: fsync of " + segments_.back().path +
                    " failed: " + s.message);
  }
}

void TelemetryStore::flush_to_os() {
  if (out_ == nullptr) return;
  const obs::ScopedSpan span("store.flush_os");
  if (auto s = out_->flush(); !s.ok()) {
    // Buffered bytes may have partially landed: same poisoned state as a
    // failed append, so seal the segment rather than risk duplicates.
    segments_.back().clean = false;
    m_sealed_->inc();
    close_writer(/*strict=*/false);
    throw DataError("telemetry store: flush of " + segments_.back().path +
                    " failed: " + s.message);
  }
}

void TelemetryStore::scan_range(
    const Segment& seg,
    const std::function<void(std::string_view)>& fn) const {
  std::string buf;
  if (auto s = env_->read_file(seg.path, buf); !s.ok()) {
    throw DataError("telemetry store: cannot open " + seg.path + ": " +
                    s.message);
  }
  const std::size_t end =
      std::min<std::size_t>(buf.size(), static_cast<std::size_t>(seg.data_end));
  std::size_t pos = kSegmentHeaderBytes;
  while (pos + kFrameHeaderBytes <= end) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[pos + i]))
             << (8 * i);
    }
    if (len == 0 || pos + kFrameHeaderBytes + len > end) break;
    fn(std::string_view(buf.data() + pos + kFrameHeaderBytes, len));
    pos += kFrameHeaderBytes + len;
  }
}

void TelemetryStore::scan(const SampleFn& fn) const {
  // Best effort: a failed flush means readers see a shorter (still
  // well-formed) log; append paths surface the error.
  if (out_ != nullptr) (void)out_->flush();
  for (const Segment& seg : segments_) {
    scan_range(seg, [&fn](std::string_view payload) {
      const auto rec = decode_record(payload);
      if (rec && rec->type == RecordType::kSample) {
        fn(rec->drive, rec->sample);
      }
    });
  }
}

std::vector<smart::Sample> TelemetryStore::read_drive(
    std::uint32_t drive, std::int64_t from_hour, std::int64_t to_hour) const {
  HDD_REQUIRE(drive < drives_.size(), "drive id out of range");
  if (out_ != nullptr) (void)out_->flush();  // best effort, as in scan()
  std::vector<smart::Sample> out;
  const auto& segs = drive_segments_[drive];
  for (const Segment& seg : segments_) {
    if (!std::binary_search(segs.begin(), segs.end(), seg.seq)) continue;
    scan_range(seg, [&](std::string_view payload) {
      const auto rec = decode_record(payload);
      if (rec && rec->type == RecordType::kSample && rec->drive == drive &&
          rec->sample.hour >= from_hour && rec->sample.hour <= to_hour) {
        out.push_back(rec->sample);
      }
    });
  }
  return out;
}

TelemetryStore::CompactionResult TelemetryStore::write_compacted(
    const std::string& path_tmp, const std::string& path_final,
    std::uint64_t seq, std::int64_t min_hour) const {
  std::unique_ptr<io::File> f;
  const auto opened = retryer_.run("create compaction tmp", [&] {
    return env_->new_append_file(path_tmp, /*truncate=*/true, f);
  });
  if (!opened.ok()) {
    throw DataError("telemetry store: cannot create " + path_tmp + ": " +
                    opened.message);
  }
  auto put = [&f, &path_tmp](std::string_view bytes) {
    if (auto s = f->append(bytes); !s.ok()) {
      f->abandon();
      throw DataError("telemetry store: write to " + path_tmp +
                      " failed: " + s.message);
    }
  };
  put(encode_segment_header(seq, kSegCompacted));
  for (std::uint32_t id = 0; id < drives_.size(); ++id) {
    put(frame_record(encode_drive_record(id, drives_[id].serial)));
  }
  if (generation_) {
    put(frame_record(encode_generation_record(generation_->generation,
                                              generation_->model_text)));
  }
  CompactionResult res;
  scan([&](std::uint32_t drive, const smart::Sample& s) {
    if (s.hour >= min_hour) {
      put(frame_record(encode_sample_record(drive, s)));
      ++res.kept;
    } else {
      ++res.dropped;
    }
  });
  const auto synced = retryer_.run("fsync compaction tmp",
                                   [&] { return f->sync(); });
  m_fsyncs_->inc();
  if (!synced.ok()) {
    f->abandon();
    throw DataError("telemetry store: fsync of " + path_tmp +
                    " failed: " + synced.message);
  }
  if (auto s = f->close(); !s.ok()) {
    throw DataError("telemetry store: close of " + path_tmp +
                    " failed: " + s.message);
  }
  if (auto s = env_->rename_file(path_tmp, path_final); !s.ok()) {
    throw DataError("telemetry store: cannot publish " + path_final + ": " +
                    s.message);
  }
  // Best effort: until the directory entry is durable a crash falls back
  // to the old generation, which stays fully intact — never a mix.
  (void)env_->sync_dir(fs::path(path_final).parent_path().string());
  return res;
}

TelemetryStore::CompactionResult TelemetryStore::compact(
    std::int64_t min_hour) {
  const obs::ScopedSpan span("store.compact");
  flush();
  close_writer(/*strict=*/true);
  const std::uint64_t seq = next_seq_++;
  const std::string path = segment_path(seq);
  const auto res = write_compacted(path + ".tmp", path, seq, min_hour);
  // The flagged segment is durable; unlinking the old generation can now
  // fail/crash at any point without losing the supersede guarantee.
  for (const Segment& seg : segments_) {
    if (seg.seq < seq) (void)env_->remove_file(seg.path);
  }
  recover();  // rebuild the index through the same path open uses
  return res;
}

TelemetryStore::CompactionResult TelemetryStore::snapshot_to(
    const std::string& dest_dir, std::int64_t min_hour) const {
  if (auto s = env_->create_dirs(dest_dir); !s.ok()) {
    throw DataError("telemetry store: cannot create " + dest_dir + ": " +
                    s.message);
  }
  std::vector<std::string> names;
  if (auto s = env_->list_dir(dest_dir, names); !s.ok()) {
    throw DataError("telemetry store: cannot list " + dest_dir + ": " +
                    s.message);
  }
  for (const std::string& name : names) {
    HDD_REQUIRE(!parse_segment_name(name).has_value(),
                "snapshot destination already holds segments");
  }
  if (out_ != nullptr) (void)out_->flush();  // best effort, as in scan()
  const fs::path final = fs::path(dest_dir) / (std::string(kSegmentPrefix) +
                                               "00000001" + kSegmentSuffix);
  return write_compacted(final.string() + ".tmp", final.string(), 1, min_hour);
}

}  // namespace hdd::store
