// Runtime metrics — low-overhead counters, gauges and latency histograms.
//
// The paper's deployment story (Section V-E) is an always-on monitoring
// loop: a node that scores every drive each SMART interval, journals the
// telemetry, and periodically retrains. Operating such a loop requires
// observing it — alarm rates drifting is how model staleness is caught
// before FAR degrades. This registry is the substrate: named instruments,
// cheap enough to leave in the hot scoring/append paths.
//
// Design constraints (and how they are met):
//  * Hot-path cost: an enabled counter increment is one relaxed flag load
//    plus one relaxed fetch_add on a thread-affine shard (~a few ns); a
//    disabled instrument is the flag load alone. No locks, no allocation
//    after registration.
//  * TSan-clean: every mutable word is a std::atomic; shards are
//    cache-line aligned so concurrent increments never false-share.
//  * Stable identity: Registry::counter()/gauge()/histogram() return the
//    same instrument for the same (name, labels) pair, so independently
//    constructed subsystems (two stores over one directory, a scorer per
//    thread) aggregate naturally. Instruments live as long as their
//    Registry; holders keep raw pointers.
//
// Metric naming follows hdd_<subsystem>_<name>_<unit> (DESIGN.md §7), with
// Prometheus-compatible names validated at registration time. Snapshots
// are rendered by obs/exposition.h.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace hdd::obs {

// Label set of one instrument: ordered (key, value) pairs. Keys must be
// valid Prometheus label names; values are arbitrary UTF-8 (escaped at
// exposition time).
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

// "counter" / "gauge" / "histogram".
const char* metric_type_name(MetricType t);

namespace detail {

inline constexpr std::size_t kShards = 8;  // power of two

struct alignas(64) Shard {
  std::atomic<std::uint64_t> v{0};
};

// Thread-affine shard index in [0, kShards): threads are numbered in
// first-use order, so a fixed worker pool spreads evenly.
std::size_t shard_index();

}  // namespace detail

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  detail::Shard shards_[detail::kShards];
};

// Instantaneous level (queue depth, open segments). set() is a plain
// store; add()/sub() are atomic, so concurrent deltas never lose updates.
class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void sub(double d) { add(-d); }

  double value() const { return v_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<double> v_{0.0};
};

// Fixed log2-bucket histogram for latencies (nanoseconds by convention;
// any nonnegative quantity works).
//
// Bucket layout (documented contract, pinned by obs_test):
//   bucket 0              holds v <= 1 — including 0, negatives and NaN;
//   bucket b (0 < b < 47) holds 2^(b-1) < v <= 2^b, so an exact power of
//                         two 2^k lands in bucket k;
//   bucket 47             holds v > 2^46 (~20 h in ns), including +inf.
// Exposition renders bucket b's inclusive upper bound as le="2^b".
// sum() accumulates finite recorded values only, so one +inf (or NaN)
// sample cannot poison the mean.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  // Bucket index for a value, per the layout above.
  static int bucket_of(double v);
  // Inclusive upper bound of bucket b (+inf for the last bucket).
  static double bucket_le(int b);

  void record(double v);

  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }
  std::uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<double> sum_{0.0};
};

// RAII latency span: records the enclosed scope's wall time in nanoseconds
// into a histogram. When the registry is disabled (or the histogram is
// nullptr) the constructor is a single relaxed load and the destructor a
// branch — no clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h != nullptr && h->enabled() ? h : nullptr) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (h_ != nullptr) h_->record(elapsed_ns());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double elapsed_ns() const {
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

// One timing primitive for "histogram + per-request span + debug line":
// records the elapsed time into the histogram, emits a span named `name`
// into the trace rings (obs/trace.h) when tracing is enabled, and still
// prints the legacy "<name>: <µs>us" line under --log-level debug /
// HDD_LOG_LEVEL=debug. Histogram and span share one clock source (the
// span's tick pair), so the aggregate and the trace always agree.
class ScopedTrace {
 public:
  ScopedTrace(Histogram* h, const char* name);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Histogram* h_;
  const char* name_;
  std::uint64_t start_;
  ScopedSpan span_;
};

// Point-in-time copy of one instrument, decoupled from the live atomics.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;                   // counter / gauge
  std::uint64_t count = 0;              // histogram: total observations
  double sum = 0.0;                     // histogram: sum of finite values
  std::vector<std::uint64_t> buckets;   // histogram: per-bucket (not cum.)
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by (name, labels)
};

// Instrument registry. Registration takes a mutex (do it once, at
// subsystem construction); reads and increments are lock-free.
class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}

  // The process-wide registry every subsystem defaults to. Enabled at
  // startup; the CLI disables it unless --metrics-out asks for a dump.
  static Registry& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Returns the instrument registered under (name, labels), creating it on
  // first use. `name` must match [a-zA-Z_:][a-zA-Z0-9_:]* and label keys
  // [a-zA-Z_][a-zA-Z0-9_]*; re-registering a name as a different type
  // throws ConfigError. The returned reference stays valid for the
  // registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels = {});

  std::size_t size() const;

  // Deterministically ordered copy of every instrument's current state.
  Snapshot snapshot() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& find_or_create(MetricType type, const std::string& name,
                        const std::string& help, Labels labels);

  std::atomic<bool> enabled_;
  mutable Mutex mutex_{lock_order::Rank::kObsRegistry, "obs-registry"};
  // Entry pointers are stable: instruments hand out raw references that
  // outlive the lock, so entries_ only ever grows.
  std::vector<std::unique_ptr<Entry>> entries_ HDD_GUARDED_BY(mutex_);
};

}  // namespace hdd::obs
