#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/log.h"

namespace hdd::obs {

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine & (kShards - 1);
}

}  // namespace detail

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool valid_label_key(const std::string& key) {
  return valid_metric_name(key) && key.find(':') == std::string::npos;
}

}  // namespace

const char* metric_type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

int Histogram::bucket_of(double v) {
  if (!(v > 1.0)) return 0;  // <= 1, zero, negative and NaN
  if (v > bucket_le(kBuckets - 2)) return kBuckets - 1;  // incl. +inf
  const int e = std::ilogb(v);  // floor(log2 v); v > 1 => e >= 0
  return v == std::ldexp(1.0, e) ? e : e + 1;
}

double Histogram::bucket_le(int b) {
  if (b >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, b);
}

void Histogram::record(double v) {
  if (!enabled()) return;
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(v)) sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

ScopedTrace::ScopedTrace(Histogram* h, const char* name)
    : h_(h != nullptr && h->enabled() ? h : nullptr),
      name_(name),
      start_(h_ != nullptr ? trace_now_ticks() : 0),
      span_(name) {}

ScopedTrace::~ScopedTrace() {
  if (h_ == nullptr) return;
  const double ns = trace_ticks_to_ns(trace_now_ticks() - start_);
  h_->record(ns);
  log_debug() << name_ << ": " << ns / 1e3 << "us";
}

Registry& Registry::global() {
  static Registry registry(true);
  return registry;
}

Registry::Entry& Registry::find_or_create(MetricType type,
                                          const std::string& name,
                                          const std::string& help,
                                          Labels labels) {
  HDD_REQUIRE(valid_metric_name(name),
              "metric name '" + name + "' is not Prometheus-compatible");
  for (const auto& [key, value] : labels) {
    (void)value;
    HDD_REQUIRE(valid_label_key(key),
                "label key '" + key + "' of metric '" + name +
                    "' is not Prometheus-compatible");
  }
  MutexLock lock(&mutex_);
  for (const auto& e : entries_) {
    if (e->name != name || e->labels != labels) continue;
    HDD_REQUIRE(e->type == type,
                "metric '" + name + "' already registered as " +
                    metric_type_name(e->type));
    return *e;
  }
  auto e = std::make_unique<Entry>();
  e->type = type;
  e->name = name;
  e->help = help;
  e->labels = std::move(labels);
  switch (type) {
    case MetricType::kCounter:
      e->c = std::unique_ptr<Counter>(new Counter(&enabled_));
      break;
    case MetricType::kGauge:
      e->g = std::unique_ptr<Gauge>(new Gauge(&enabled_));
      break;
    case MetricType::kHistogram:
      e->h = std::unique_ptr<Histogram>(new Histogram(&enabled_));
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  return *find_or_create(MetricType::kCounter, name, help, std::move(labels))
              .c;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  return *find_or_create(MetricType::kGauge, name, help, std::move(labels)).g;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, Labels labels) {
  return *find_or_create(MetricType::kHistogram, name, help,
                         std::move(labels))
              .h;
}

std::size_t Registry::size() const {
  MutexLock lock(&mutex_);
  return entries_.size();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    MutexLock lock(&mutex_);
    snap.metrics.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSnapshot m;
      m.name = e->name;
      m.help = e->help;
      m.type = e->type;
      m.labels = e->labels;
      switch (e->type) {
        case MetricType::kCounter:
          m.value = static_cast<double>(e->c->value());
          break;
        case MetricType::kGauge:
          m.value = e->g->value();
          break;
        case MetricType::kHistogram: {
          m.sum = e->h->sum();
          m.buckets.resize(Histogram::kBuckets);
          for (int b = 0; b < Histogram::kBuckets; ++b) {
            m.buckets[b] = e->h->bucket_count(b);
            m.count += m.buckets[b];
          }
          break;
        }
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

}  // namespace hdd::obs
