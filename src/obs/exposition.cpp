#include "obs/exposition.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>

#include "common/log.h"

namespace hdd::obs {

namespace {

// Shortest round-trip decimal for a double (123 rather than 123.000000),
// matching the integer-when-integral style of the analysis renderers.
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// {k="v",...} with escaped values; empty string for no labels. `extra`
// appends one pre-escaped pair (the histogram le bound).
std::string label_block(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

// JSON number for a le bound: finite bounds numeric, +Inf as a string.
std::string json_le(double le) {
  return std::isinf(le) ? "\"+Inf\"" : format_value(le);
}

// Index one past the last occupied finite bucket (so empty histograms
// render only le="+Inf").
std::size_t finite_buckets_to_render(const MetricSnapshot& m) {
  std::size_t last = 0;
  for (std::size_t b = 0; b + 1 < m.buckets.size(); ++b) {
    if (m.buckets[b] != 0) last = b + 1;
  }
  return last;
}

}  // namespace

std::optional<Format> parse_format(std::string_view name) {
  if (name == "text" || name == "prometheus") return Format::kPrometheus;
  if (name == "json") return Format::kJson;
  return std::nullopt;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void render_prometheus(const Snapshot& snapshot, std::ostream& os) {
  std::string prev_name;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != prev_name) {  // HELP/TYPE once per name, label sets share
      prev_name = m.name;
      if (!m.help.empty()) {
        std::string help;
        for (const char c : m.help) {
          if (c == '\\') help += "\\\\";
          else if (c == '\n') help += "\\n";
          else help += c;
        }
        os << "# HELP " << m.name << ' ' << help << '\n';
      }
      os << "# TYPE " << m.name << ' ' << metric_type_name(m.type) << '\n';
    }
    if (m.type != MetricType::kHistogram) {
      os << m.name << label_block(m.labels) << ' ' << format_value(m.value)
         << '\n';
      continue;
    }
    std::uint64_t cum = 0;
    const std::size_t n_finite = finite_buckets_to_render(m);
    for (std::size_t b = 0; b < n_finite; ++b) {
      cum += m.buckets[b];
      os << m.name << "_bucket"
         << label_block(m.labels, "le=\"" +
                                      format_value(Histogram::bucket_le(
                                          static_cast<int>(b))) +
                                      "\"")
         << ' ' << cum << '\n';
    }
    os << m.name << "_bucket" << label_block(m.labels, "le=\"+Inf\"") << ' '
       << m.count << '\n';
    os << m.name << "_sum" << label_block(m.labels) << ' '
       << format_value(m.sum) << '\n';
    os << m.name << "_count" << label_block(m.labels) << ' ' << m.count
       << '\n';
  }
}

void render_json(const Snapshot& snapshot, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
    const MetricSnapshot& m = snapshot.metrics[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "  {\"name\": \"" << json_escape(m.name) << "\", \"type\": \""
       << metric_type_name(m.type) << "\"";
    if (!m.help.empty()) {
      os << ", \"help\": \"" << json_escape(m.help) << "\"";
    }
    if (!m.labels.empty()) {
      os << ", \"labels\": {";
      for (std::size_t k = 0; k < m.labels.size(); ++k) {
        os << (k == 0 ? "" : ", ") << '"' << json_escape(m.labels[k].first)
           << "\": \"" << json_escape(m.labels[k].second) << '"';
      }
      os << "}";
    }
    if (m.type != MetricType::kHistogram) {
      os << ", \"value\": " << format_value(m.value) << "}";
      continue;
    }
    os << ", \"count\": " << m.count << ", \"sum\": ";
    // JSON has no Inf/NaN literals; quote them like the le bounds.
    if (std::isfinite(m.sum)) os << format_value(m.sum);
    else os << '"' << format_value(m.sum) << '"';
    os << ", \"buckets\": [";
    std::uint64_t cum = 0;
    const std::size_t n_finite = finite_buckets_to_render(m);
    for (std::size_t b = 0; b < n_finite; ++b) {
      cum += m.buckets[b];
      os << "{\"le\": " << json_le(Histogram::bucket_le(static_cast<int>(b)))
         << ", \"count\": " << cum << "}, ";
    }
    os << "{\"le\": \"+Inf\", \"count\": " << m.count << "}]}";
  }
  os << (snapshot.metrics.empty() ? "]\n" : "\n]\n");
}

void render(const Snapshot& snapshot, Format format, std::ostream& os) {
  if (format == Format::kJson) render_json(snapshot, os);
  else render_prometheus(snapshot, os);
}

bool write_snapshot(const Snapshot& snapshot, const std::string& path,
                    Format format) {
  if (path == "-") {
    render(snapshot, format, std::cout);
    return static_cast<bool>(std::cout.flush());
  }
  std::ofstream os(path);
  if (!os) {
    log_error() << "metrics: cannot open " << path << " for writing";
    return false;
  }
  render(snapshot, format, os);
  os.flush();
  if (!os) {
    log_error() << "metrics: failed writing snapshot to " << path;
    return false;
  }
  return true;
}

}  // namespace hdd::obs
