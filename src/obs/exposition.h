// Snapshot exposition — Prometheus text format and JSON.
//
// Rendering conventions follow the src/analysis diagnostic renderers: the
// text form is line-oriented and grep-able, the JSON form is an array of
// flat objects, one per line, with a stable key order. Both render a
// Snapshot (obs/metrics.h), so a dump never observes an instrument
// mid-update.
//
// Prometheus text (one HELP/TYPE pair per metric name, label values
// escaped with \\, \" and \n):
//   # HELP hdd_store_appends_total Samples appended to the log.
//   # TYPE hdd_store_appends_total counter
//   hdd_store_appends_total 8832
// Histograms render cumulative le="..." buckets (finite bounds up to the
// last occupied bucket, then le="+Inf"), plus _sum and _count series.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace hdd::obs {

enum class Format { kPrometheus, kJson };

// "text"/"prometheus" -> kPrometheus, "json" -> kJson, else nullopt.
std::optional<Format> parse_format(std::string_view name);

void render_prometheus(const Snapshot& snapshot, std::ostream& os);
void render_json(const Snapshot& snapshot, std::ostream& os);
void render(const Snapshot& snapshot, Format format, std::ostream& os);

// Renders to a file ("-" = stdout). Returns false after logging the
// failure through common/log.h (log_error) — callers on exit paths can
// treat the dump as best-effort without a try/catch.
bool write_snapshot(const Snapshot& snapshot, const std::string& path,
                    Format format);

// Escapes a Prometheus label value (backslash, double quote, newline).
std::string escape_label_value(std::string_view value);

}  // namespace hdd::obs
