#include "obs/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_set>

namespace hdd::obs {
namespace trace_detail {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_slow_ticks{~0ull};

namespace {

// Tick <-> nanosecond calibration. On x86 the rings store raw TSC values;
// a one-time ~200 us spin against steady_clock measures the tick rate so
// snapshots can convert. Elsewhere now_ticks() already returns
// steady_clock nanoseconds and the rate is exactly 1.
struct Calibration {
  std::atomic<bool> ready{false};
  std::uint64_t base_ticks = 0;
  std::uint64_t base_ns = 0;
  double ns_per_tick = 1.0;
};
Calibration g_calib;
std::once_flag g_calib_once;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ensure_calibrated() {
  std::call_once(g_calib_once, [] {
#ifdef HDD_TRACE_TSC
    const std::uint64_t ns0 = steady_ns();
    const std::uint64_t t0 = __rdtsc();
    std::uint64_t ns1 = ns0;
    while (ns1 - ns0 < 200'000) ns1 = steady_ns();
    const std::uint64_t t1 = __rdtsc();
    g_calib.base_ticks = t0;
    g_calib.base_ns = ns0;
    g_calib.ns_per_tick =
        t1 > t0 ? static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0)
                : 1.0;
#else
    g_calib.base_ticks = steady_ns();
    g_calib.base_ns = g_calib.base_ticks;
    g_calib.ns_per_tick = 1.0;
#endif
    g_calib.ready.store(true, std::memory_order_release);
  });
}

// Nanoseconds the requested slow threshold was set with (for read-back).
std::atomic<std::uint64_t> g_slow_ns{0};

// Global ring table: slot i owned by the i-th thread that ever recorded.
// Registered once, never freed, so the signal-handler dump can walk it.
std::atomic<ThreadRing*> g_rings[kMaxThreads] = {};
std::atomic<std::uint32_t> g_ring_count{0};
std::atomic<std::uint64_t> g_dropped{0};
thread_local bool t_overflowed = false;

// Shared multi-writer tail-sampling ring. Writers claim an index with
// fetch_add, fill the slot, then publish the claim into `seq` (release);
// readers accept a slot only when `seq` reads the same claimed value
// before and after copying the fields.
struct SlowSlot {
  std::atomic<std::uint64_t> seq{0};
  SpanSlot span;
  std::atomic<std::uint32_t> tid{0};
};
struct SlowRing {
  std::atomic<std::uint64_t> head{0};
  SlowSlot slots[kSlowSlots];
};
SlowRing g_slow;

void copy_span_fields(const SpanSlot& from, SpanSlot& to) {
  to.trace_id.store(from.trace_id.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  to.span_id.store(from.span_id.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  to.parent_id.store(from.parent_id.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  to.start_ticks.store(from.start_ticks.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  to.end_ticks.store(from.end_ticks.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  to.arg.store(from.arg.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  to.name.store(from.name.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  to.arg_name.store(from.arg_name.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

}  // namespace

ThreadRing* register_ring() {
  if (t_overflowed) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  ensure_calibrated();
  const std::uint32_t i = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (i >= kMaxThreads) {
    t_overflowed = true;
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto* r = new ThreadRing();  // intentionally leaked: flight recorder
  r->index = i;
  t_ring = r;
  g_rings[i].store(r, std::memory_order_release);
  return r;
}

std::uint64_t overflow_id() {
  static std::atomic<std::uint64_t> counter{0};
  return (static_cast<std::uint64_t>(kMaxThreads) + 1) << 40 |
         (counter.fetch_add(1, std::memory_order_relaxed) + 1);
}

void slow_copy(const ThreadRing& r, const SpanSlot& s) {
  const std::uint64_t h = g_slow.head.fetch_add(1, std::memory_order_relaxed);
  SlowSlot& slot = g_slow.slots[h % kSlowSlots];
  copy_span_fields(s, slot.span);
  slot.tid.store(r.index, std::memory_order_relaxed);
  slot.seq.store(h + 1, std::memory_order_release);
}

}  // namespace trace_detail

namespace {

using trace_detail::g_calib;
using trace_detail::kRingSlots;
using trace_detail::kSlowSlots;
using trace_detail::SpanSlot;
using trace_detail::ThreadRing;

double ns_per_tick() {
  return g_calib.ready.load(std::memory_order_acquire) ? g_calib.ns_per_tick
                                                       : 1.0;
}

std::uint64_t ticks_to_abs_ns(std::uint64_t t) {
  if (!g_calib.ready.load(std::memory_order_acquire)) return t;
  if (t <= g_calib.base_ticks) return g_calib.base_ns;
  return g_calib.base_ns +
         static_cast<std::uint64_t>(
             static_cast<double>(t - g_calib.base_ticks) *
             g_calib.ns_per_tick);
}

}  // namespace

double trace_ticks_to_ns(std::uint64_t dticks) {
  trace_detail::ensure_calibrated();
  return static_cast<double>(dticks) * g_calib.ns_per_tick;
}

namespace trace_detail {

void record_span_on(ThreadRing* r, const char* name, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_id,
                    std::uint64_t start_ticks, std::uint64_t end_ticks,
                    const char* arg_name, std::uint64_t arg) {
  if (r == nullptr) return;  // > kMaxThreads threads; counted as dropped
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  SpanSlot& s = r->slots[h & (kRingSlots - 1)];
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.span_id.store(span_id, std::memory_order_relaxed);
  s.parent_id.store(parent_id, std::memory_order_relaxed);
  s.start_ticks.store(start_ticks, std::memory_order_relaxed);
  s.end_ticks.store(end_ticks, std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.arg_name.store(arg_name, std::memory_order_relaxed);
  r->head.store(h + 1, std::memory_order_release);

  const std::uint64_t slow = g_slow_ticks.load(std::memory_order_relaxed);
  if (slow == ~0ull) return;  // slow log off
  if (end_ticks - start_ticks >= slow) {
    slow_copy(*r, s);
  } else if (++r->sample_clock >= Tracer::global().slow_sample_every()) {
    r->sample_clock = 0;
    slow_copy(*r, s);
  }
}

}  // namespace trace_detail

void record_span(const char* name, std::uint64_t trace_id,
                 std::uint64_t span_id, std::uint64_t parent_id,
                 std::uint64_t start_ticks, std::uint64_t end_ticks,
                 const char* arg_name, std::uint64_t arg) {
  trace_detail::record_span_on(trace_detail::ring(), name, trace_id,
                               span_id, parent_id, start_ticks, end_ticks,
                               arg_name, arg);
}

void record_child_span(const char* name, std::uint64_t start_ticks,
                       std::uint64_t end_ticks, const char* arg_name,
                       std::uint64_t arg) {
  if (!trace_enabled()) return;
  const TraceContext ctx = trace_detail::t_context;
  if (ctx.trace_id == 0) return;  // outside any trace: stay silent
  record_span(name, ctx.trace_id, trace_detail::next_id(), ctx.span_id,
              start_ticks, end_ticks, arg_name, arg);
}

void ScopedSpan::begin(const char* name, std::uint64_t start_ticks,
                       const char* arg_name, std::uint64_t arg) {
  name_ = name;
  arg_name_ = arg_name;
  arg_ = arg;
  start_ = start_ticks;
  saved_ = trace_detail::t_context;
  parent_id_ = saved_.span_id;
  // One thread-local ring lookup serves both id draws here and the slot
  // write in end().
  ring_ = trace_detail::ring();
  if (ring_ != nullptr) {
    const std::uint64_t base =
        (static_cast<std::uint64_t>(ring_->index) + 1) << 40;
    span_id_ = base | ++ring_->next_span;
    trace_id_ = saved_.trace_id != 0 ? saved_.trace_id
                                     : (base | ++ring_->next_span);
  } else {
    span_id_ = trace_detail::overflow_id();
    trace_id_ =
        saved_.trace_id != 0 ? saved_.trace_id : trace_detail::overflow_id();
  }
  trace_detail::t_context = TraceContext{trace_id_, span_id_};
}

void ScopedSpan::end() {
  trace_detail::t_context = saved_;
  // Record even if tracing was flipped off mid-span: the begin already
  // claimed ids, and a half-open scope would otherwise vanish.
  trace_detail::record_span_on(ring_, name_, trace_id_, span_id_,
                               parent_id_, start_,
                               trace_detail::now_ticks(), arg_name_, arg_);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_slow_threshold_ns(std::uint64_t ns) {
  trace_detail::ensure_calibrated();
  trace_detail::g_slow_ns.store(ns, std::memory_order_relaxed);
  if (ns == 0) {
    trace_detail::g_slow_ticks.store(~0ull, std::memory_order_relaxed);
    return;
  }
  const double ticks = static_cast<double>(ns) / g_calib.ns_per_tick;
  trace_detail::g_slow_ticks.store(
      ticks < 1.0 ? 1 : static_cast<std::uint64_t>(ticks),
      std::memory_order_relaxed);
}

std::uint64_t Tracer::slow_threshold_ns() const {
  return trace_detail::g_slow_ns.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::dropped() const {
  return trace_detail::g_dropped.load(std::memory_order_relaxed);
}

std::vector<SpanView> Tracer::snapshot(std::uint64_t window_ms) const {
  trace_detail::ensure_calibrated();
  const std::uint64_t now = trace_detail::now_ticks();
  std::uint64_t window_ticks = ~0ull;
  if (window_ms != 0) {
    window_ticks = static_cast<std::uint64_t>(
        static_cast<double>(window_ms) * 1e6 / g_calib.ns_per_tick);
  }
  const std::uint64_t oldest_end =
      window_ticks == ~0ull || window_ticks > now ? 0 : now - window_ticks;

  std::vector<SpanView> out;
  std::unordered_set<std::uint64_t> seen;
  auto emit = [&](const SpanSlot& s, std::uint32_t tid, bool slow) {
    const char* name = s.name.load(std::memory_order_relaxed);
    if (name == nullptr) return;
    const std::uint64_t end = s.end_ticks.load(std::memory_order_relaxed);
    if (end < oldest_end) return;
    const std::uint64_t id = s.span_id.load(std::memory_order_relaxed);
    if (!seen.insert(id).second) return;
    SpanView v;
    v.trace_id = s.trace_id.load(std::memory_order_relaxed);
    v.span_id = id;
    v.parent_id = s.parent_id.load(std::memory_order_relaxed);
    const std::uint64_t start = s.start_ticks.load(std::memory_order_relaxed);
    v.start_ns = ticks_to_abs_ns(start);
    v.dur_ns = end > start
                   ? static_cast<std::uint64_t>(
                         static_cast<double>(end - start) * ns_per_tick())
                   : 0;
    v.arg = s.arg.load(std::memory_order_relaxed);
    v.name = name;
    v.arg_name = s.arg_name.load(std::memory_order_relaxed);
    v.tid = tid;
    v.slow = slow;
    out.push_back(v);
  };

  const std::uint32_t count = std::min<std::uint32_t>(
      trace_detail::g_ring_count.load(std::memory_order_acquire),
      trace_detail::kMaxThreads);
  for (std::uint32_t i = 0; i < count; ++i) {
    const ThreadRing* r =
        trace_detail::g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h1 = r->head.load(std::memory_order_acquire);
    const std::uint64_t lo = h1 > kRingSlots ? h1 - kRingSlots : 0;
    // Copy candidates, then re-read the head: any index the writer could
    // have been re-filling during the copy (at or below h2 - kRingSlots)
    // is discarded as torn.
    std::vector<std::pair<std::uint64_t, SpanSlot*>> copies;
    copies.reserve(static_cast<std::size_t>(h1 - lo));
    std::vector<SpanSlot> stash(static_cast<std::size_t>(h1 - lo));
    for (std::uint64_t idx = lo; idx < h1; ++idx) {
      SpanSlot& dst = stash[static_cast<std::size_t>(idx - lo)];
      trace_detail::copy_span_fields(r->slots[idx & (kRingSlots - 1)], dst);
      copies.emplace_back(idx, &dst);
    }
    const std::uint64_t h2 = r->head.load(std::memory_order_acquire);
    for (auto& [idx, slot] : copies) {
      if (h2 >= kRingSlots && idx <= h2 - kRingSlots) continue;
      emit(*slot, r->index, false);
    }
  }

  // Slow ring: seq must read the same claimed value before and after the
  // field copy, otherwise a concurrent writer was re-filling the slot.
  const std::uint64_t slow_head =
      trace_detail::g_slow.head.load(std::memory_order_acquire);
  const std::uint64_t slow_lo =
      slow_head > kSlowSlots ? slow_head - kSlowSlots : 0;
  for (std::uint64_t idx = slow_lo; idx < slow_head; ++idx) {
    const trace_detail::SlowSlot& s = trace_detail::g_slow.slots[idx % kSlowSlots];
    const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 != idx + 1) continue;
    SpanSlot copy;
    trace_detail::copy_span_fields(s.span, copy);
    const std::uint32_t tid = s.tid.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != seq1) continue;
    emit(copy, tid, true);
  }

  std::sort(out.begin(), out.end(), [](const SpanView& a, const SpanView& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

namespace {

// ---- flight recorder ------------------------------------------------------
// Everything below the dump entry point is async-signal-safe: fixed
// buffers, snprintf of integers/strings only, write(2). No locks, no
// allocation, no floating-point formatting.

char g_flight_dir[256] = {};
std::atomic<bool> g_flight_set{false};
std::atomic<bool> g_dumping{false};

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, buf + off, n - off);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

// One trace_event line for a slot; returns bytes formatted (0 = skip).
int format_event(char* buf, std::size_t cap, const SpanSlot& s,
                 std::uint32_t tid, int pid, bool first) {
  const char* name = s.name.load(std::memory_order_relaxed);
  if (name == nullptr) return 0;
  const std::uint64_t start = s.start_ticks.load(std::memory_order_relaxed);
  const std::uint64_t end = s.end_ticks.load(std::memory_order_relaxed);
  const std::uint64_t start_ns = ticks_to_abs_ns(start);
  const std::uint64_t dur_ns =
      end > start ? static_cast<std::uint64_t>(
                        static_cast<double>(end - start) * ns_per_tick())
                  : 0;
  const char* arg_name = s.arg_name.load(std::memory_order_relaxed);
  char arg_field[96] = {};
  if (arg_name != nullptr) {
    std::snprintf(arg_field, sizeof arg_field, ",\"%s\":%" PRIu64, arg_name,
                  s.arg.load(std::memory_order_relaxed));
  }
  return std::snprintf(
      buf, cap,
      "%s{\"name\":\"%s\",\"cat\":\"hdd\",\"ph\":\"X\","
      "\"ts\":%" PRIu64 ".%03" PRIu64 ",\"dur\":%" PRIu64 ".%03" PRIu64 ","
      "\"pid\":%d,\"tid\":%u,\"args\":{"
      "\"trace_id\":\"0x%" PRIx64 "\",\"span_id\":\"0x%" PRIx64 "\","
      "\"parent_id\":\"0x%" PRIx64 "\"%s}}",
      first ? "" : ",\n", name, start_ns / 1000, start_ns % 1000,
      dur_ns / 1000, dur_ns % 1000, pid, tid,
      s.trace_id.load(std::memory_order_relaxed),
      s.span_id.load(std::memory_order_relaxed),
      s.parent_id.load(std::memory_order_relaxed), arg_field);
}

}  // namespace

void dump_flight_recorder(const char* reason) {
  if (!g_flight_set.load(std::memory_order_acquire)) return;
  if (g_dumping.exchange(true)) return;

  char path[320];
  const int pid = static_cast<int>(::getpid());
  std::snprintf(path, sizeof path, "%s/flight-%d.json", g_flight_dir, pid);
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    g_dumping.store(false);
    return;
  }

  char buf[768];
  int n = std::snprintf(buf, sizeof buf,
                        "{\"flightReason\":\"%s\",\"traceEvents\":[\n",
                        reason != nullptr ? reason : "unknown");
  write_all(fd, buf, static_cast<std::size_t>(n));

  bool first = true;
  const std::uint32_t count = std::min<std::uint32_t>(
      trace_detail::g_ring_count.load(std::memory_order_acquire),
      trace_detail::kMaxThreads);
  for (std::uint32_t i = 0; i < count; ++i) {
    const ThreadRing* r =
        trace_detail::g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t lo = h > kRingSlots ? h - kRingSlots : 0;
    for (std::uint64_t idx = lo; idx < h; ++idx) {
      n = format_event(buf, sizeof buf, r->slots[idx & (kRingSlots - 1)],
                       r->index, pid, first);
      if (n <= 0) continue;
      write_all(fd, buf, static_cast<std::size_t>(n));
      first = false;
    }
  }
  const std::uint64_t slow_head =
      trace_detail::g_slow.head.load(std::memory_order_acquire);
  const std::uint64_t slow_lo =
      slow_head > kSlowSlots ? slow_head - kSlowSlots : 0;
  for (std::uint64_t idx = slow_lo; idx < slow_head; ++idx) {
    const trace_detail::SlowSlot& s =
        trace_detail::g_slow.slots[idx % kSlowSlots];
    if (s.seq.load(std::memory_order_acquire) != idx + 1) continue;
    n = format_event(buf, sizeof buf, s.span,
                     s.tid.load(std::memory_order_relaxed), pid, first);
    if (n <= 0) continue;
    write_all(fd, buf, static_cast<std::size_t>(n));
    first = false;
  }

  write_all(fd, "\n]}\n", 4);
  ::close(fd);
  g_dumping.store(false);
}

void Tracer::set_flight_dir(const std::string& dir) {
  if (dir.empty()) {
    g_flight_set.store(false, std::memory_order_release);
    return;
  }
  std::snprintf(g_flight_dir, sizeof g_flight_dir, "%s", dir.c_str());
  g_flight_set.store(true, std::memory_order_release);
}

std::string Tracer::render_chrome_json(std::uint64_t window_ms) const {
  const std::vector<SpanView> spans = snapshot(window_ms);
  const int pid = static_cast<int>(::getpid());
  std::string out = "{\"traceEvents\":[\n";
  char buf[768];
  bool first = true;
  for (const SpanView& v : spans) {
    char arg_field[96] = {};
    if (v.arg_name != nullptr) {
      std::snprintf(arg_field, sizeof arg_field, ",\"%s\":%" PRIu64,
                    v.arg_name, v.arg);
    }
    const int n = std::snprintf(
        buf, sizeof buf,
        "%s{\"name\":\"%s\",\"cat\":\"hdd\",\"ph\":\"X\","
        "\"ts\":%" PRIu64 ".%03" PRIu64 ",\"dur\":%" PRIu64 ".%03" PRIu64 ","
        "\"pid\":%d,\"tid\":%u,\"args\":{"
        "\"trace_id\":\"0x%" PRIx64 "\",\"span_id\":\"0x%" PRIx64 "\","
        "\"parent_id\":\"0x%" PRIx64 "\"%s%s}}",
        first ? "" : ",\n", v.name, v.start_ns / 1000, v.start_ns % 1000,
        v.dur_ns / 1000, v.dur_ns % 1000, pid, v.tid, v.trace_id, v.span_id,
        v.parent_id, v.slow ? ",\"slow\":1" : "", arg_field);
    if (n <= 0) continue;
    out.append(buf, static_cast<std::size_t>(n));
    first = false;
  }
  out += "\n]}\n";
  return out;
}

namespace {

void flight_signal_handler(int sig) {
  const char* reason = "signal";
  switch (sig) {
    case SIGSEGV: reason = "SIGSEGV"; break;
    case SIGBUS: reason = "SIGBUS"; break;
    case SIGILL: reason = "SIGILL"; break;
    case SIGFPE: reason = "SIGFPE"; break;
    case SIGABRT: reason = "SIGABRT"; break;
    default: break;
  }
  dump_flight_recorder(reason);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void install_flight_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = flight_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_NODEFER;
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace hdd::obs
