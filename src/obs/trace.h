// Span tracing — the per-request complement to the aggregate metrics in
// obs/metrics.h, and an always-on flight recorder.
//
// The registry's counters and histograms say *that* p99 ingest latency
// spiked; spans say *where one request spent it* — queue wait vs. journal
// fsync vs. scoring. Every span carries {trace_id, span_id, parent_id,
// name, start, duration, thread, one optional integer arg}; a request's
// spans share a trace_id that survives the wire protocol (serve/wire.h
// appends it as an optional trailing frame field), so the tree
// accept → parse → queue → score → append → fsync → respond reconstructs
// from the daemon's rings alone.
//
// Design constraints (and how they are met):
//  * Hot-path cost: recording a span is a bump-pointer write of one slot
//    in a lock-free per-thread ring — no locks, no allocation, no
//    syscalls. Timestamps are raw TSC ticks on x86 (converted to
//    nanoseconds only at snapshot time); the budget is <= ~25 ns per
//    enabled span and <= ~2 ns (one relaxed flag load) disabled, measured
//    by BM_Span* in bench/micro_obs.cpp exactly like the PR 4 instrument
//    budget.
//  * TSan-clean: every slot field is a relaxed std::atomic; the single
//    writer publishes a slot with a release store of the ring head, and
//    readers discard any slot the writer may have been re-filling during
//    the copy (the index window below the re-read head). Torn slots are
//    therefore logically discarded, never undefined behavior.
//  * Always on: the rings are a flight recorder. dump_flight_recorder()
//    writes them as Chrome trace_event JSON using only async-signal-safe
//    calls (no malloc, no locks), so a fatal signal, a lock-rank abort or
//    an io::CrashPoint leaves <dir>/flight-<pid>.json behind for
//    post-mortem timelines.
//  * Bounded retention: each thread keeps the newest kRingSlots spans.
//    Spans slower than the Tracer's slow threshold are additionally
//    copied to a shared tail-sampling ring (plus a 1-in-N sample of fast
//    spans), so a slow request survives long after steady-state traffic
//    has lapped its thread ring.
//
// Span context is a thread_local {trace_id, span_id}: ScopedSpan makes
// its span the current parent for its scope, WithTraceContext carries a
// captured context onto another thread (shard workers), and
// current_trace_context() is what the wire client sends. Span names and
// arg names MUST be string literals (the rings store the pointers).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#define HDD_TRACE_TSC 1
#endif

namespace hdd::obs {

// The ambient trace position of the current thread: which trace we are
// in (0 = none) and which span is the parent of anything recorded next.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

namespace trace_detail {

// Per-thread ring capacity (power of two). 4096 slots x 64 B = 256 KiB
// per recording thread, ~0.4 s of history at 10k spans/s.
inline constexpr std::size_t kRingSlots = 4096;
// Threads that can ever record (rings are registered once and never
// freed, so the flight dump can walk them from a signal handler).
inline constexpr std::size_t kMaxThreads = 256;
// Shared tail-sampling ring for slow (and 1-in-N sampled) spans.
inline constexpr std::size_t kSlowSlots = 1024;

// One recorded span. Every field is a relaxed atomic so a snapshot racing
// the writer reads stale-or-new values, never UB; the index window check
// in the reader discards logically torn slots.
struct SpanSlot {
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_id{0};
  std::atomic<std::uint64_t> start_ticks{0};
  std::atomic<std::uint64_t> end_ticks{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> arg_name{nullptr};
};

struct ThreadRing {
  // Next slot index to write; slots [head - kRingSlots, head) hold the
  // newest spans. Only the owning thread writes it (release publishes the
  // slot fields); any thread may read it (acquire).
  std::atomic<std::uint64_t> head{0};
  std::uint32_t index = 0;       // position in the global ring table
  std::uint64_t next_span = 0;   // per-thread span/trace id counter
  std::uint32_t sample_clock = 0;  // 1-in-N fast-span sampling state
  SpanSlot slots[kRingSlots];
};

extern std::atomic<bool> g_enabled;
// Slow-span threshold in ticks; ~0 (all bits set) = slow log off.
extern std::atomic<std::uint64_t> g_slow_ticks;
// Inline definitions (not extern): constant-initialized in every TU, so
// access is a direct TLS load with no TLS-init wrapper call on the hot
// path (gcc's wrapper for extern thread_local also trips UBSan's null
// check on fresh threads).
inline thread_local TraceContext t_context;
inline thread_local ThreadRing* t_ring = nullptr;

// Registers (once per thread) and returns this thread's ring; nullptr
// when more than kMaxThreads threads ever recorded (spans then drop).
ThreadRing* register_ring();

inline ThreadRing* ring() {
  ThreadRing* r = t_ring;
  return r != nullptr ? r : register_ring();
}

inline std::uint64_t now_ticks() {
#ifdef HDD_TRACE_TSC
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Copies a just-written slot into the shared slow ring (slow span or
// sampled fast span). Out of line: not on the common path.
void slow_copy(const ThreadRing& r, const SpanSlot& s);

// Slot write against an already-resolved ring (nullptr = drop). The
// ScopedSpan fast path resolves its thread's ring once in begin() and
// reuses it in end(), saving repeated thread-local lookups.
void record_span_on(ThreadRing* r, const char* name, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_id,
                    std::uint64_t start_ticks, std::uint64_t end_ticks,
                    const char* arg_name, std::uint64_t arg);

// Process-unique, never-zero span/trace id: ring index in the high bits,
// a per-thread counter below. Threads past kMaxThreads fall back to a
// global counter.
std::uint64_t overflow_id();

inline std::uint64_t next_id() {
  ThreadRing* r = ring();
  if (r == nullptr) return overflow_id();
  return (static_cast<std::uint64_t>(r->index) + 1) << 40 | ++r->next_span;
}

}  // namespace trace_detail

// Whether spans record at all. One relaxed load — this is the entire
// disabled-path cost.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

inline TraceContext current_trace_context() { return trace_detail::t_context; }
inline void set_current_trace_context(TraceContext ctx) {
  trace_detail::t_context = ctx;
}
// The current trace id, 0 outside any span — what common/log.h stamps
// onto JSON log lines so logs correlate with traces.
inline std::uint64_t current_trace_id() {
  return trace_detail::t_context.trace_id;
}

// A fresh trace id (for roots created explicitly, e.g. a retrain cycle).
inline std::uint64_t new_trace_id() { return trace_detail::next_id(); }

// Raw timestamp for explicit-interval spans (queue-wait: captured at
// enqueue on one thread, recorded at dequeue on another). Ticks are
// process-wide comparable (TSC on x86, steady_clock ns elsewhere).
inline std::uint64_t trace_now_ticks() { return trace_detail::now_ticks(); }

// Tick interval -> nanoseconds (lazily calibrated against steady_clock).
double trace_ticks_to_ns(std::uint64_t dticks);

// Records one complete span with every field explicit. `name`/`arg_name`
// must be string literals.
void record_span(const char* name, std::uint64_t trace_id,
                 std::uint64_t span_id, std::uint64_t parent_id,
                 std::uint64_t start_ticks, std::uint64_t end_ticks,
                 const char* arg_name = nullptr, std::uint64_t arg = 0);

// Records [start_ticks, end_ticks) as a child of the current context.
// No-op when tracing is disabled or the thread is outside any trace —
// unlike ScopedSpan it never starts a new trace, so it is safe on paths
// that run with and without an ambient request (queue waits, retries).
void record_child_span(const char* name, std::uint64_t start_ticks,
                       std::uint64_t end_ticks,
                       const char* arg_name = nullptr, std::uint64_t arg = 0);

// RAII span: child of the current context, or the root of a new trace
// when there is none (trace_id taken from the context's trace_id slot if
// pre-seeded via WithTraceContext). Makes itself the current parent for
// its scope and restores the previous context on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* arg_name = nullptr,
                      std::uint64_t arg = 0) {
    if (!trace_enabled()) return;
    begin(name, trace_detail::now_ticks(), arg_name, arg);
  }
  // Explicit start for intervals that began before the span object could
  // be constructed (e.g. the request root starting at first frame byte).
  ScopedSpan(const char* name, std::uint64_t start_ticks,
             const char* arg_name, std::uint64_t arg) {
    if (!trace_enabled()) return;
    begin(name, start_ticks, arg_name, arg);
  }
  ~ScopedSpan() {
    if (name_ != nullptr) end();
  }

  // Attaches/overwrites the span's single integer argument mid-scope.
  void set_arg(const char* arg_name, std::uint64_t arg) {
    arg_name_ = arg_name;
    arg_ = arg;
  }

  bool active() const { return name_ != nullptr; }
  std::uint64_t span_id() const { return span_id_; }
  std::uint64_t trace_id() const { return trace_id_; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name, std::uint64_t start_ticks,
             const char* arg_name, std::uint64_t arg);
  void end();

  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  std::uint64_t start_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  trace_detail::ThreadRing* ring_ = nullptr;  // resolved once in begin()
  TraceContext saved_;
};

// Installs a captured context as current for a scope — how a trace
// crosses threads (connection thread -> shard worker) or is reset to
// "none" ({} starts spans as fresh roots).
class WithTraceContext {
 public:
  explicit WithTraceContext(TraceContext ctx)
      : saved_(current_trace_context()) {
    set_current_trace_context(ctx);
  }
  ~WithTraceContext() { set_current_trace_context(saved_); }

  WithTraceContext(const WithTraceContext&) = delete;
  WithTraceContext& operator=(const WithTraceContext&) = delete;

 private:
  TraceContext saved_;
};

// Decoupled copy of one span, timestamps already in nanoseconds (epoch:
// process calibration base — only differences are meaningful).
struct SpanView {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;
  const char* name = nullptr;
  const char* arg_name = nullptr;
  std::uint32_t tid = 0;
  bool slow = false;  // came from the tail-sampling slow ring
};

// Process-wide tracer control + snapshot/rendering. Recording itself goes
// through the free functions above; this object owns the knobs.
class Tracer {
 public:
  static Tracer& global();

  bool enabled() const { return trace_enabled(); }
  void set_enabled(bool on) {
    trace_detail::g_enabled.store(on, std::memory_order_relaxed);
  }

  // Spans with duration >= ns always also land in the shared slow ring;
  // other spans land there 1 in slow_sample_every() times. 0 disables the
  // slow log entirely (the default).
  void set_slow_threshold_ns(std::uint64_t ns);
  std::uint64_t slow_threshold_ns() const;
  void set_slow_sample_every(std::uint32_t n) {
    sample_every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  std::uint32_t slow_sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  // Directory for crash dumps; "" (the default) disables them. The path
  // is copied into a fixed buffer so the signal-handler path needs no
  // allocation.
  void set_flight_dir(const std::string& dir);

  // Spans ending within the last window_ms (0 = everything recorded),
  // thread rings and slow ring merged and de-duplicated by span id.
  std::vector<SpanView> snapshot(std::uint64_t window_ms) const;

  // The same window rendered as Chrome/Perfetto trace_event JSON
  // ({"traceEvents":[{"ph":"X",...}]}) — what GET /debug/trace serves.
  std::string render_chrome_json(std::uint64_t window_ms) const;

  // Spans dropped because more than kMaxThreads threads recorded.
  std::uint64_t dropped() const;

 private:
  Tracer() = default;
  std::atomic<std::uint32_t> sample_every_{1024};
};

// Writes every ring to <flight_dir>/flight-<pid>.json as trace_event
// JSON. Async-signal-safe (snprintf of integers + write(2) only); no-op
// when no flight dir is set. `reason` lands in the JSON ("crash-point",
// "lock-rank", a signal name).
void dump_flight_recorder(const char* reason);

// Installs SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT handlers that dump the
// flight recorder, restore the default disposition and re-raise.
void install_flight_signal_handlers();

}  // namespace hdd::obs
