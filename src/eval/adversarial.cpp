#include "eval/adversarial.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "common/error.h"
#include "common/thread_pool.h"

namespace hdd::eval {

namespace {

struct Budget {
  double step = 0.0;  // epsilon * span, in feature units
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

struct ScoreJob {
  std::size_t drive = 0;
  std::size_t begin = 0;
};

std::vector<ScoreJob> collect_jobs(const data::DriveDataset& dataset,
                                   const data::DatasetSplit& split) {
  std::vector<ScoreJob> jobs;
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    const auto& d = dataset.drives[split.good_drives[k]];
    const std::size_t begin = split.good_test_begin[k];
    if (begin >= d.samples.size()) continue;
    jobs.push_back({split.good_drives[k], begin});
  }
  for (std::size_t di : split.test_failed) {
    if (dataset.drives[di].empty()) continue;
    jobs.push_back({di, 0});
  }
  return jobs;
}

// Feature spans: declared domain when finite, observed span otherwise.
// The observed fallback keeps raw-counter features attackable at all —
// their declared domain is [0, +inf).
std::vector<Budget> make_budgets(const smart::FeatureSet& features,
                                 double epsilon,
                                 const std::vector<float>& observed_lo,
                                 const std::vector<float>& observed_hi) {
  const auto domains = analysis::FeatureDomains::for_feature_set(features);
  std::vector<Budget> budgets(features.specs.size());
  for (std::size_t f = 0; f < budgets.size(); ++f) {
    const analysis::Interval& d = domains.bounds[f];
    Budget& b = budgets[f];
    b.lo = d.lo;
    b.hi = d.hi;
    double span;
    if (std::isfinite(d.lo) && std::isfinite(d.hi)) {
      span = d.hi - d.lo;
    } else {
      span = static_cast<double>(observed_hi[f]) -
             static_cast<double>(observed_lo[f]);
    }
    b.step = epsilon * std::max(span, 0.0);
  }
  return budgets;
}

// Greedy coordinate descent on one feature row. `dir` is +1 to push the
// output healthy (evade detection), -1 to push it failing (trigger an
// alarm). Returns the best output reached; `row` holds the adversarial
// point on return. Sets `moved` when any coordinate changed.
double descend(std::vector<float>& row, const SampleModel& model,
               const std::vector<Budget>& budgets, double dir, int passes,
               bool* moved) {
  double best = model(row);
  *moved = false;
  // The L-inf ball is centered on the sample as observed; later passes
  // re-probe the same ball (for cross-feature interactions), they do not
  // widen it.
  const std::vector<float> center = row;
  for (int pass = 0; pass < passes; ++pass) {
    if (dir * best > 0.0) break;  // sign already flipped: attack done
    bool improved = false;
    for (std::size_t f = 0; f < row.size(); ++f) {
      const Budget& b = budgets[f];
      if (b.step <= 0.0) continue;
      const double ball_lo =
          std::max(b.lo, static_cast<double>(center[f]) - b.step);
      const double ball_hi =
          std::min(b.hi, static_cast<double>(center[f]) + b.step);
      const float orig = row[f];
      float pick = orig;
      for (const double cand_raw : {ball_lo, ball_hi}) {
        const float cand = static_cast<float>(cand_raw);
        if (cand == orig) continue;
        row[f] = cand;
        const double v = model(row);
        if (dir * (v - best) > 0.0) {
          best = v;
          pick = cand;
        }
      }
      row[f] = pick;
      if (pick != orig) {
        improved = true;
        *moved = true;
      }
    }
    if (!improved) break;
  }
  return best;
}

// score_record with the adversary in the loop: every sample of the drive
// is descended before its output is recorded.
DriveScores score_record_adversarial(const smart::DriveRecord& drive,
                                     std::size_t begin,
                                     const smart::FeatureSet& features,
                                     const SampleModel& model,
                                     const std::vector<Budget>& budgets,
                                     double dir, int passes,
                                     std::size_t* samples_moved) {
  DriveScores s;
  s.failed = drive.failed;
  s.fail_hour = drive.fail_hour;
  const std::size_t n = drive.samples.size();
  if (begin >= n) return s;
  s.hours.reserve(n - begin);
  s.outputs.reserve(n - begin);
  for (std::size_t i = begin; i < n; ++i) {
    auto row = smart::extract_features(drive, i, features);
    bool moved = false;
    const double v =
        descend(*row, model, budgets, dir, passes, &moved);
    if (moved) ++*samples_moved;
    s.hours.push_back(drive.samples[i].hour);
    s.outputs.push_back(static_cast<float>(v));
  }
  return s;
}

}  // namespace

AdversarialResult adversarial_evaluate(const data::DriveDataset& dataset,
                                       const data::DatasetSplit& split,
                                       const smart::FeatureSet& features,
                                       const SampleModel& model,
                                       const AdversarialConfig& config) {
  HDD_REQUIRE(static_cast<bool>(model), "null model");
  HDD_REQUIRE(config.passes >= 1, "adversarial passes must be >= 1");
  for (const double eps : config.epsilons) {
    HDD_REQUIRE(eps > 0.0 && eps <= 1.0,
                "adversarial epsilon must be in (0, 1]");
  }
  const auto jobs = collect_jobs(dataset, split);
  const auto nf = features.specs.size();

  // Baseline pass; observed per-feature ranges ride along as the span
  // fallback for unbounded domains.
  std::vector<DriveScores> baseline(jobs.size());
  std::vector<std::vector<float>> job_lo(jobs.size()),
      job_hi(jobs.size());
  ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
    const auto& drive = dataset.drives[jobs[j].drive];
    baseline[j] = score_record(drive, jobs[j].begin, features, model);
    auto& lo = job_lo[j];
    auto& hi = job_hi[j];
    lo.assign(nf, std::numeric_limits<float>::max());
    hi.assign(nf, std::numeric_limits<float>::lowest());
    for (std::size_t i = jobs[j].begin; i < drive.samples.size(); ++i) {
      const auto row = smart::extract_features(drive, i, features);
      for (std::size_t f = 0; f < nf; ++f) {
        lo[f] = std::min(lo[f], (*row)[f]);
        hi[f] = std::max(hi[f], (*row)[f]);
      }
    }
  });
  std::vector<float> observed_lo(nf, 0.0f), observed_hi(nf, 0.0f);
  bool any = false;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (job_lo[j].empty() || job_lo[j][0] > job_hi[j][0]) continue;
    for (std::size_t f = 0; f < nf; ++f) {
      observed_lo[f] = any ? std::min(observed_lo[f], job_lo[j][f])
                           : job_lo[j][f];
      observed_hi[f] = any ? std::max(observed_hi[f], job_hi[j][f])
                           : job_hi[j][f];
    }
    any = true;
  }

  AdversarialResult result;
  result.baseline = evaluate_votes(baseline, config.vote);

  for (const double eps : config.epsilons) {
    const auto budgets =
        make_budgets(features, eps, observed_lo, observed_hi);
    AdversarialPoint point;
    point.epsilon = eps;

    // Each attack perturbs only its target population; the other side
    // keeps its baseline scores, so FDR/FAR shifts are attributable.
    for (const bool attack_failed : {true, false}) {
      std::vector<DriveScores> scores = baseline;
      std::vector<std::size_t> moved(jobs.size(), 0);
      const double dir = attack_failed ? +1.0 : -1.0;
      ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
        const auto& drive = dataset.drives[jobs[j].drive];
        if (drive.failed != attack_failed) return;
        scores[j] = score_record_adversarial(drive, jobs[j].begin, features,
                                             model, budgets, dir,
                                             config.passes, &moved[j]);
      });
      std::size_t total_moved = 0;
      for (const std::size_t m : moved) total_moved += m;
      if (attack_failed) {
        point.evade = evaluate_votes(scores, config.vote);
        point.evade_samples_moved = total_moved;
      } else {
        point.alarm = evaluate_votes(scores, config.vote);
        point.alarm_samples_moved = total_moved;
      }
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

analysis::Report robustness_findings(const AdversarialResult& result,
                                     const AdversarialConfig& config,
                                     const std::string& model_name) {
  analysis::Report report;
  auto format = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  const double base_fdr = result.baseline.fdr();
  const double base_far = result.baseline.far();
  bool detection_flagged = false;
  bool alarm_flagged = false;
  for (const AdversarialPoint& p : result.points) {
    const double fdr_drop = base_fdr - p.evade.fdr();
    if (!detection_flagged && fdr_drop >= config.fdr_drop_warn) {
      detection_flagged = true;
      report.diagnostics.push_back(
          {analysis::Severity::kWarning, model_name,
           "epsilon=" + format(p.epsilon), "fragile-detection",
           "a per-feature perturbation of " + format(p.epsilon * 100.0) +
               "% of the feature domain drops FDR from " +
               format(base_fdr) + " to " + format(p.evade.fdr()) +
               " — detection rests on feature excursions smaller than "
               "the budget"});
    }
    const double far_rise = p.alarm.far() - base_far;
    if (!alarm_flagged && far_rise >= config.far_rise_warn) {
      alarm_flagged = true;
      report.diagnostics.push_back(
          {analysis::Severity::kWarning, model_name,
           "epsilon=" + format(p.epsilon), "fragile-alarm",
           "a per-feature perturbation of " + format(p.epsilon * 100.0) +
               "% of the feature domain raises FAR from " +
               format(base_far) + " to " + format(p.alarm.far()) +
               " — healthy telemetry sits close to the alarm surface"});
    }
  }
  return report;
}

void print_text(const AdversarialResult& result, std::ostream& os) {
  os << "adversarial robustness (per-feature L-inf budgets)\n";
  os << "  baseline: FDR " << result.baseline.fdr() << "  FAR "
     << result.baseline.far() << '\n';
  os << "  epsilon   evade-FDR   dFDR     alarm-FAR   dFAR     moved\n";
  for (const AdversarialPoint& p : result.points) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-9.3g %-11.3f %-+8.3f %-11.3f %-+8.3f %zu/%zu\n",
                  p.epsilon, p.evade.fdr(),
                  p.evade.fdr() - result.baseline.fdr(), p.alarm.far(),
                  p.alarm.far() - result.baseline.far(),
                  p.evade_samples_moved, p.alarm_samples_moved);
    os << line;
  }
}

void print_json(const AdversarialResult& result, std::ostream& os) {
  os << "{\"baseline\":{\"fdr\":" << result.baseline.fdr()
     << ",\"far\":" << result.baseline.far() << "},\"points\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const AdversarialPoint& p = result.points[i];
    if (i > 0) os << ',';
    os << "{\"epsilon\":" << p.epsilon << ",\"evade_fdr\":" << p.evade.fdr()
       << ",\"alarm_far\":" << p.alarm.far()
       << ",\"evade_samples_moved\":" << p.evade_samples_moved
       << ",\"alarm_samples_moved\":" << p.alarm_samples_moved << '}';
  }
  os << "]}";
}

}  // namespace hdd::eval
