// Drive-level failure detection and evaluation (Section V-A).
//
// Models classify individual samples; a *drive* is predicted to fail via the
// paper's voting scheme: at each time point, look at the last N samples
// (voters) — for binary models alarm when more than N/2 are classified
// failed; for the health-degree model alarm when the mean output drops
// below a threshold. The first alarming time point fixes the time in
// advance (TIA = failure hour - alarm hour).
//
// Metrics (per drive, matching the paper):
//   FDR — fraction of failed test drives alarmed during their record;
//   FAR — fraction of good test drives alarmed during their test period;
//   TIA — hours between alarm and actual failure, for correct detections.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "data/split.h"
#include "smart/features.h"

namespace hdd::eval {

// A sample-level model: margin/health output, negative = failing.
using SampleModel = std::function<double(std::span<const float>)>;

// Batch sample-level model: scores `out.size()` row-major feature rows in
// one call (the fast path of core::SampleScorer::predict_batch).
using BatchSampleModel =
    std::function<void(std::span<const float> xs, std::span<double> out)>;

// Precomputed model outputs over one drive's evaluation range. Scoring is
// separated from voting so that ROC sweeps over N / thresholds do not
// re-extract features or re-run the model.
struct DriveScores {
  bool failed = false;
  std::int64_t fail_hour = -1;
  std::vector<std::int64_t> hours;
  std::vector<float> outputs;
};

// Scores one drive record from sample index `begin` to the end.
DriveScores score_record(const smart::DriveRecord& drive, std::size_t begin,
                         const smart::FeatureSet& features,
                         const SampleModel& model);

// Batched variant of score_record: block feature extraction (no per-sample
// allocation) + one model call per block of `block_rows` rows. Outputs are
// identical to score_record when the batch model matches the scalar model.
DriveScores score_record_batch(const smart::DriveRecord& drive,
                               std::size_t begin,
                               const smart::FeatureSet& features,
                               const BatchSampleModel& model,
                               std::size_t block_rows = 256);

// Scores every test drive: good drives over their chronological test
// portion, failed drives over their whole record. Parallelized.
std::vector<DriveScores> score_dataset(const data::DriveDataset& dataset,
                                       const data::DatasetSplit& split,
                                       const smart::FeatureSet& features,
                                       const SampleModel& model);

// Batched + parallel variant of score_dataset.
std::vector<DriveScores> score_dataset_batch(
    const data::DriveDataset& dataset, const data::DatasetSplit& split,
    const smart::FeatureSet& features, const BatchSampleModel& model,
    std::size_t block_rows = 256);

struct VoteConfig {
  int voters = 11;           // N
  bool average_mode = false; // true: mean-output threshold (RT health model)
  double threshold = 0.0;    // alarm when mean output < threshold
};

struct DriveOutcome {
  bool alarmed = false;
  std::int64_t alarm_hour = -1;
};

// Applies the voting rule to one drive's scores. Drives with fewer samples
// than N vote over what they have.
DriveOutcome vote_drive(const DriveScores& scores, const VoteConfig& config);

struct EvalResult {
  std::size_t n_good = 0;
  std::size_t n_failed = 0;
  std::size_t false_alarms = 0;
  std::size_t detections = 0;
  std::vector<double> tia_hours;  // one entry per correct detection

  double far() const {
    return n_good ? static_cast<double>(false_alarms) /
                        static_cast<double>(n_good)
                  : 0.0;
  }
  double fdr() const {
    return n_failed ? static_cast<double>(detections) /
                          static_cast<double>(n_failed)
                    : 0.0;
  }
  double mean_tia() const;
};

EvalResult evaluate_votes(const std::vector<DriveScores>& scores,
                          const VoteConfig& config);

// One-call convenience: score + vote.
EvalResult evaluate(const data::DriveDataset& dataset,
                    const data::DatasetSplit& split,
                    const smart::FeatureSet& features,
                    const SampleModel& model, const VoteConfig& config);

// Batched one-call convenience (what FailurePredictor::evaluate uses).
EvalResult evaluate_batch(const data::DriveDataset& dataset,
                          const data::DatasetSplit& split,
                          const smart::FeatureSet& features,
                          const BatchSampleModel& model,
                          const VoteConfig& config);

// The paper's TIA histogram buckets (Figures 3-4): 0-24, 25-72, 73-168,
// 169-336, 337-450+ hours. Returns counts per bucket.
std::vector<std::size_t> tia_histogram(std::span<const double> tia_hours);
extern const char* const kTiaBucketLabels[5];

// ROC sweep over voter counts (binary models, Figure 2/5).
struct RocPoint {
  double x = 0.0;  // FAR
  double y = 0.0;  // FDR
  double param = 0.0;  // N or threshold
  double mean_tia = 0.0;
};
std::vector<RocPoint> roc_over_voters(const std::vector<DriveScores>& scores,
                                      std::span<const int> voter_counts);

// ROC sweep over detection thresholds at fixed N (health model, Figure 10).
std::vector<RocPoint> roc_over_thresholds(
    const std::vector<DriveScores>& scores, int voters,
    std::span<const double> thresholds);

}  // namespace hdd::eval
