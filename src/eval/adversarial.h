// Adversarial SMART perturbation evaluation (DESIGN.md §13.4).
//
// How much deliberate, bounded measurement distortion does it take to
// change what the fleet-level detector says? Two attacks, mirroring the
// two ways a deployment fails:
//
//   * evade-detection — every sample of each failed test drive is
//     perturbed toward a healthy model output, within a per-feature L∞
//     budget. The resulting FDR drop says how much of the detection rests
//     on feature excursions smaller than the budget.
//   * trigger-alarm — every sample of each good test drive is perturbed
//     toward a failing output. The FAR rise says how close healthy
//     telemetry sits to the alarm surface.
//
// The budget for feature f at strength ε is ε * span(f), where span comes
// from the feature's declared domain (analysis::FeatureDomains — the
// Table II vendor scale for normalized levels, scale/h for change rates);
// features with unbounded declared domains (raw counters) fall back to
// the span observed across the evaluated samples. Perturbed values stay
// clamped inside the declared domain, so every adversarial sample is one
// a real collector could have reported.
//
// The optimizer is greedy coordinate descent: per sample, sweep the
// features, move each to whichever budget endpoint improves the attack
// objective most, repeat for a few passes or until the output sign flips.
// Tree models are piecewise constant, so endpoint probing per coordinate
// is exact for a single split boundary and cheap everywhere else.
//
// Degradations beyond the configured tolerances become analysis::
// diagnostics with the stable codes "fragile-detection" / "fragile-alarm"
// so `hddpredict adversary` findings land in the same lint taxonomy as
// the static verifier's.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/detection.h"
#include "smart/features.h"

namespace hdd::eval {

struct AdversarialConfig {
  // Perturbation strengths as fractions of each feature's domain span.
  std::vector<double> epsilons = {0.01, 0.02, 0.05};
  VoteConfig vote;
  // Greedy coordinate descent sweeps per sample (descent stops early once
  // the sample's output sign matches the attack goal).
  int passes = 2;
  // Tolerances that turn a measurement into a lint finding: an absolute
  // FDR drop / FAR rise at-or-beyond these flags the model as fragile.
  double fdr_drop_warn = 0.10;
  double far_rise_warn = 0.05;
};

struct AdversarialPoint {
  double epsilon = 0.0;
  EvalResult evade;  // failed drives perturbed, good drives untouched
  EvalResult alarm;  // good drives perturbed, failed drives untouched
  // Samples the descent actually moved (an attack that needed no moves
  // found the model already mis-scoring).
  std::size_t evade_samples_moved = 0;
  std::size_t alarm_samples_moved = 0;
};

struct AdversarialResult {
  EvalResult baseline;
  std::vector<AdversarialPoint> points;  // one per configured epsilon
};

// Runs baseline + both attacks at every epsilon. The model is called
// O(passes * features * samples) times per attack; parallelized per
// drive.
AdversarialResult adversarial_evaluate(const data::DriveDataset& dataset,
                                       const data::DatasetSplit& split,
                                       const smart::FeatureSet& features,
                                       const SampleModel& model,
                                       const AdversarialConfig& config);

// Lint findings for degradations beyond the config tolerances, one per
// attack direction at the smallest epsilon that crossed the line:
//   warning [fragile-detection] <model>:epsilon=0.02  FDR 0.86 -> 0.61 ...
//   warning [fragile-alarm]     <model>:epsilon=0.05  FAR 0.02 -> 0.11 ...
analysis::Report robustness_findings(const AdversarialResult& result,
                                     const AdversarialConfig& config,
                                     const std::string& model_name);

// One table row per epsilon / one JSON object mirroring the structs.
void print_text(const AdversarialResult& result, std::ostream& os);
void print_json(const AdversarialResult& result, std::ostream& os);

}  // namespace hdd::eval
