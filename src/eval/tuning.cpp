#include "eval/tuning.h"

#include <algorithm>

#include "common/error.h"

namespace hdd::eval {

std::optional<OperatingPoint> tune_voters(
    const std::vector<DriveScores>& validation_scores,
    std::span<const int> voter_counts, double far_budget) {
  HDD_REQUIRE(!voter_counts.empty(), "no voter counts to try");
  HDD_REQUIRE(far_budget >= 0.0, "far_budget must be non-negative");
  std::optional<OperatingPoint> best;
  for (int n : voter_counts) {
    VoteConfig cfg;
    cfg.voters = n;
    EvalResult r = evaluate_votes(validation_scores, cfg);
    if (r.far() > far_budget) continue;
    if (!best || r.fdr() > best->result.fdr() ||
        (r.fdr() == best->result.fdr() && n < best->vote.voters)) {
      best = OperatingPoint{cfg, std::move(r)};
    }
  }
  return best;
}

std::optional<OperatingPoint> tune_threshold(
    const std::vector<DriveScores>& validation_scores, int voters,
    std::span<const double> thresholds, double far_budget) {
  HDD_REQUIRE(!thresholds.empty(), "no thresholds to try");
  HDD_REQUIRE(voters >= 1, "voters must be >= 1");
  HDD_REQUIRE(far_budget >= 0.0, "far_budget must be non-negative");

  // Sort loose (high threshold = most alarms) to strict so the first
  // candidate inside the budget is the highest-FDR one.
  std::vector<double> sorted(thresholds.begin(), thresholds.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  for (double t : sorted) {
    VoteConfig cfg;
    cfg.voters = voters;
    cfg.average_mode = true;
    cfg.threshold = t;
    EvalResult r = evaluate_votes(validation_scores, cfg);
    if (r.far() <= far_budget) {
      return OperatingPoint{cfg, std::move(r)};
    }
  }
  return std::nullopt;
}

}  // namespace hdd::eval
