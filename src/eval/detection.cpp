#include "eval/detection.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace hdd::eval {

namespace {

// One drive to score: dataset index + first sample index of its test range
// (good drives score their chronological test portion, failed drives their
// whole record).
struct ScoreJob {
  std::size_t drive;
  std::size_t begin;
};

std::vector<ScoreJob> collect_score_jobs(const data::DriveDataset& dataset,
                                         const data::DatasetSplit& split) {
  std::vector<ScoreJob> jobs;
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    const auto& d = dataset.drives[split.good_drives[k]];
    const std::size_t begin = split.good_test_begin[k];
    if (begin >= d.samples.size()) continue;  // no test samples
    jobs.push_back({split.good_drives[k], begin});
  }
  for (std::size_t di : split.test_failed) {
    if (dataset.drives[di].empty()) continue;
    jobs.push_back({di, 0});
  }
  return jobs;
}

}  // namespace

std::vector<DriveScores> score_dataset(const data::DriveDataset& dataset,
                                       const data::DatasetSplit& split,
                                       const smart::FeatureSet& features,
                                       const SampleModel& model) {
  HDD_REQUIRE(static_cast<bool>(model), "null model");
  const auto jobs = collect_score_jobs(dataset, split);
  std::vector<DriveScores> out(jobs.size());
  ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
    out[j] = score_record(dataset.drives[jobs[j].drive], jobs[j].begin,
                          features, model);
  });
  return out;
}

std::vector<DriveScores> score_dataset_batch(
    const data::DriveDataset& dataset, const data::DatasetSplit& split,
    const smart::FeatureSet& features, const BatchSampleModel& model,
    std::size_t block_rows) {
  HDD_REQUIRE(static_cast<bool>(model), "null model");
  const auto jobs = collect_score_jobs(dataset, split);
  std::vector<DriveScores> out(jobs.size());
  ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
    out[j] = score_record_batch(dataset.drives[jobs[j].drive], jobs[j].begin,
                                features, model, block_rows);
  });
  return out;
}

DriveScores score_record(const smart::DriveRecord& drive, std::size_t begin,
                         const smart::FeatureSet& features,
                         const SampleModel& model) {
  DriveScores s;
  s.failed = drive.failed;
  s.fail_hour = drive.fail_hour;
  const std::size_t n = drive.samples.size();
  if (begin >= n) return s;
  s.hours.reserve(n - begin);
  s.outputs.reserve(n - begin);
  for (std::size_t i = begin; i < n; ++i) {
    const auto row = smart::extract_features(drive, i, features);
    s.hours.push_back(drive.samples[i].hour);
    s.outputs.push_back(static_cast<float>(model(*row)));
  }
  return s;
}

DriveScores score_record_batch(const smart::DriveRecord& drive,
                               std::size_t begin,
                               const smart::FeatureSet& features,
                               const BatchSampleModel& model,
                               std::size_t block_rows) {
  HDD_REQUIRE(block_rows >= 1, "block_rows must be >= 1");
  DriveScores s;
  s.failed = drive.failed;
  s.fail_hour = drive.fail_hour;
  const std::size_t n = drive.samples.size();
  if (begin >= n) return s;
  s.hours.reserve(n - begin);
  s.outputs.reserve(n - begin);
  std::vector<float> xbuf;
  std::vector<double> obuf;
  for (std::size_t base = begin; base < n; base += block_rows) {
    const std::size_t hi = std::min(base + block_rows, n);
    xbuf.clear();
    smart::extract_features_block(drive, base, hi, features, xbuf);
    obuf.resize(hi - base);
    model(xbuf, obuf);
    for (std::size_t i = base; i < hi; ++i) {
      s.hours.push_back(drive.samples[i].hour);
      s.outputs.push_back(static_cast<float>(obuf[i - base]));
    }
  }
  return s;
}

DriveOutcome vote_drive(const DriveScores& scores, const VoteConfig& config) {
  HDD_REQUIRE(config.voters >= 1, "voters must be >= 1");
  DriveOutcome outcome;
  const std::size_t n = scores.outputs.size();
  if (n == 0) return outcome;
  const std::size_t want = static_cast<std::size_t>(config.voters);

  // Maintain a running window: count of failed votes / sum of outputs.
  std::size_t failed_votes = 0;
  double output_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = scores.outputs[i];
    if (v < 0.0) ++failed_votes;
    output_sum += v;
    if (i >= want) {
      const double old = scores.outputs[i - want];
      if (old < 0.0) --failed_votes;
      output_sum -= old;
    }
    const std::size_t w = std::min(i + 1, want);
    // Drives shorter than N vote over what they have, but only once the
    // full (possibly short) record is visible.
    if (w < want && i + 1 < n) continue;
    bool alarm;
    if (config.average_mode) {
      alarm = output_sum / static_cast<double>(w) < config.threshold;
    } else {
      alarm = static_cast<double>(failed_votes) >
              static_cast<double>(w) / 2.0;
    }
    if (alarm) {
      outcome.alarmed = true;
      outcome.alarm_hour = scores.hours[i];
      return outcome;
    }
  }
  return outcome;
}

double EvalResult::mean_tia() const {
  if (tia_hours.empty()) return 0.0;
  double s = 0.0;
  for (double t : tia_hours) s += t;
  return s / static_cast<double>(tia_hours.size());
}

EvalResult evaluate_votes(const std::vector<DriveScores>& scores,
                          const VoteConfig& config) {
  EvalResult r;
  for (const auto& s : scores) {
    const DriveOutcome o = vote_drive(s, config);
    if (s.failed) {
      ++r.n_failed;
      if (o.alarmed) {
        ++r.detections;
        r.tia_hours.push_back(
            static_cast<double>(s.fail_hour - o.alarm_hour));
      }
    } else {
      ++r.n_good;
      if (o.alarmed) ++r.false_alarms;
    }
  }
  return r;
}

EvalResult evaluate(const data::DriveDataset& dataset,
                    const data::DatasetSplit& split,
                    const smart::FeatureSet& features,
                    const SampleModel& model, const VoteConfig& config) {
  return evaluate_votes(score_dataset(dataset, split, features, model),
                        config);
}

EvalResult evaluate_batch(const data::DriveDataset& dataset,
                          const data::DatasetSplit& split,
                          const smart::FeatureSet& features,
                          const BatchSampleModel& model,
                          const VoteConfig& config) {
  return evaluate_votes(score_dataset_batch(dataset, split, features, model),
                        config);
}

const char* const kTiaBucketLabels[5] = {"0-24", "25-72", "73-168", "169-336",
                                         "337-450+"};

std::vector<std::size_t> tia_histogram(std::span<const double> tia_hours) {
  std::vector<std::size_t> buckets(5, 0);
  for (double t : tia_hours) {
    if (t <= 24.0) ++buckets[0];
    else if (t <= 72.0) ++buckets[1];
    else if (t <= 168.0) ++buckets[2];
    else if (t <= 336.0) ++buckets[3];
    else ++buckets[4];
  }
  return buckets;
}

std::vector<RocPoint> roc_over_voters(const std::vector<DriveScores>& scores,
                                      std::span<const int> voter_counts) {
  std::vector<RocPoint> points;
  points.reserve(voter_counts.size());
  for (int n : voter_counts) {
    VoteConfig cfg;
    cfg.voters = n;
    const EvalResult r = evaluate_votes(scores, cfg);
    points.push_back({r.far(), r.fdr(), static_cast<double>(n),
                      r.mean_tia()});
  }
  return points;
}

std::vector<RocPoint> roc_over_thresholds(
    const std::vector<DriveScores>& scores, int voters,
    std::span<const double> thresholds) {
  std::vector<RocPoint> points;
  points.reserve(thresholds.size());
  for (double t : thresholds) {
    VoteConfig cfg;
    cfg.voters = voters;
    cfg.average_mode = true;
    cfg.threshold = t;
    const EvalResult r = evaluate_votes(scores, cfg);
    points.push_back({r.far(), r.fdr(), t, r.mean_tia()});
  }
  return points;
}

}  // namespace hdd::eval
