// Operating-point selection: pick detection parameters against a target
// false-alarm budget on held-out data.
//
// The paper adjusts N (voters) and the RT threshold by hand; a deployment
// wants this automated: "give me the most detection I can have while
// staying under X false alarms per thousand drives per week".
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "eval/detection.h"

namespace hdd::eval {

struct OperatingPoint {
  VoteConfig vote;
  EvalResult result;
};

// Over the given voter counts, returns the configuration with the highest
// FDR whose FAR is <= far_budget; ties break toward fewer voters (earlier
// alarms). nullopt when no candidate meets the budget.
std::optional<OperatingPoint> tune_voters(
    const std::vector<DriveScores>& validation_scores,
    std::span<const int> voter_counts, double far_budget);

// For average-mode detection at fixed N: scans thresholds from loose to
// strict and returns the loosest threshold (highest FDR) meeting the FAR
// budget. nullopt when even the strictest candidate violates it.
std::optional<OperatingPoint> tune_threshold(
    const std::vector<DriveScores>& validation_scores, int voters,
    std::span<const double> thresholds, double far_budget);

}  // namespace hdd::eval
