// Public facade: one object that goes dataset -> trained failure predictor
// -> drive-level detection, with the paper's configurations as ready-made
// named presets.
//
// Quickstart:
//   auto fleet  = hdd::sim::generate_fleet(hdd::sim::paper_fleet_config(0.05));
//   auto split  = hdd::data::split_dataset(fleet, {});
//   auto pred   = hdd::core::FailurePredictor(hdd::core::preset("ct"));
//   pred.fit(fleet, split);
//   auto result = pred.evaluate(fleet, split);
//   // result.fdr(), result.far(), result.mean_tia()
//
// All model dispatch goes through the SampleScorer interface (scorer.h):
// the facade trains whichever backend the config selects and keeps it
// behind one polymorphic pointer, so new model types plug in without
// touching this class. For scoring whole data centers per SMART interval —
// batched, multi-threaded, with incremental per-drive voting — see
// core::FleetScorer (fleet.h).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "ann/mlp.h"
#include "core/scorer.h"
#include "data/training.h"
#include "eval/detection.h"
#include "forest/adaboost.h"
#include "forest/random_forest.h"
#include "tree/tree.h"

namespace hdd::core {

enum class ModelType {
  kClassificationTree,  // the paper's CT model
  kRegressionTree,      // RT trained as a +1/-1 "classifier" (Fig. 10 control)
  kBpAnn,               // the BP ANN baseline
  kRandomForest,        // future-work extension
  kAdaBoost,            // ablation from [11]
};

// Display name of a model type; throws ConfigError for out-of-range values.
const char* model_type_name(ModelType t);

struct PredictorConfig {
  ModelType model = ModelType::kClassificationTree;
  data::TrainingConfig training;
  tree::TreeParams tree_params;
  ann::MlpConfig ann;
  forest::ForestConfig forest;
  forest::AdaBoostConfig adaboost;
  eval::VoteConfig vote;

  // Checks the voting/training parameters plus the parameters of the
  // selected model; throws ConfigError with a specific message. Called by
  // the FailurePredictor constructor.
  void validate() const;
};

// The paper's published settings: CT with the stat13 features, 168 h failed
// window, 20% failed prior, 10:1 false-alarm loss, Minsplit 20, Minbucket 7,
// CP 0.001, 11 voters.
PredictorConfig paper_ct_config();
// BP ANN per [11]: 12 h window, no reweighting, hidden layer sized per the
// feature set (13-13-1), learning rate 0.1, <= 400 epochs.
PredictorConfig paper_ann_config();
// RT control group for Figure 10 (binary +1/-1 targets, average-mode vote).
PredictorConfig paper_rt_classifier_config();
// Random-forest ensemble over the CT settings (the Section VI ensemble
// direction): 40 bootstrap trees on random feature subspaces, majority
// margin, same stat13 features / windows / voting as the CT preset.
PredictorConfig forest_config();

// Named preset registry over the paper configurations above.
struct PresetInfo {
  std::string_view name;
  std::string_view description;
  PredictorConfig (*make)();
};

// All registered presets ("ct", "ann", "rt").
std::span<const PresetInfo> presets();

// Looks up a preset by name; throws ConfigError listing the known names.
PredictorConfig preset(std::string_view name);

class FailurePredictor {
 public:
  explicit FailurePredictor(PredictorConfig config);

  const PredictorConfig& config() const { return config_; }

  // Trains on the train side of the split.
  void fit(const data::DriveDataset& dataset, const data::DatasetSplit& split);

  bool trained() const { return scorer_ != nullptr; }

  // The trained model behind the polymorphic scorer interface — the hook
  // for FleetScorer and batched evaluation. Throws if untrained.
  const SampleScorer& scorer() const;

  // Sample-level model (margin in [-1,1], negative = failing).
  eval::SampleModel sample_model() const;

  // Health of one observed sample of a drive record.
  double score_sample(const smart::DriveRecord& drive,
                      std::size_t sample_index) const;

  // Drive-level detection with the configured voting parameters.
  eval::DriveOutcome detect(const smart::DriveRecord& drive,
                            std::size_t begin_index = 0) const;

  // Full test-side evaluation (batched scoring, parallel across drives).
  eval::EvalResult evaluate(const data::DriveDataset& dataset,
                            const data::DatasetSplit& split) const;

  // The underlying tree, when the model is tree-based (interpretability:
  // Figure 1 / Section V-B1). Null otherwise.
  const tree::DecisionTree* tree() const;

  std::string describe() const;

 private:
  PredictorConfig config_;
  // The trained backend; model dispatch happens only inside fit_scorer().
  std::unique_ptr<SampleScorer> scorer_;
};

}  // namespace hdd::core
