// Health-degree model (Section III-B / V-C).
//
// A Regression Tree whose failed-sample targets encode closeness to failure:
//   global window (Eq. 5):        h(i)  = -1 + i / w
//   personalized window (Eq. 6):  hd(i) = -1 + i / w_d
// where i is hours before failure and w_d is the drive's own deterioration
// window, estimated by first training a CT model and measuring its time in
// advance on each failed training drive (drives the CT misses fall back to
// a 24 h global window, as in the paper).
//
// The trained model outputs a real health degree in [-1, 1]; detection uses
// the average-of-last-N-outputs rule against a tunable threshold, which is
// what gives the fine FDR/FAR trade-off of Figure 10, and warnings can be
// processed in order of health (WarningQueue).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "tree/tree.h"

namespace hdd::core {

struct HealthModelConfig {
  // Windowing mode.
  bool personalized = true;       // Eq. 6 (true) vs Eq. 5 (false)
  int global_window_hours = 168;  // w for Eq. 5
  int fallback_window_hours = 24; // for drives the CT misses (Eq. 6 path)

  // Failed samples per drive used to train the RT (12 evenly spaced).
  int failed_samples_per_drive = 12;

  // The CT used to estimate per-drive windows (Eq. 6) — defaults to the
  // paper's CT configuration.
  PredictorConfig ct_config = paper_ct_config();

  // RT split/pruning parameters (the paper reuses the CT values).
  tree::TreeParams rt_params;

  // Detection: average of the last N outputs vs threshold.
  int voters = 11;
  double threshold = -0.2;
};

class HealthDegreeModel {
 public:
  explicit HealthDegreeModel(HealthModelConfig config = {});

  const HealthModelConfig& config() const { return config_; }

  // Trains CT (when personalized) then RT on the train side of the split.
  void fit(const data::DriveDataset& dataset, const data::DatasetSplit& split);

  bool trained() const { return rt_.trained(); }

  // Real-valued health degree of one sample (-1 failing .. +1 healthy).
  double health(const smart::DriveRecord& drive,
                std::size_t sample_index) const;

  // Sample-level model for the evaluation harness.
  eval::SampleModel sample_model() const;

  // Drive-level detection using average-mode voting at the configured
  // threshold.
  eval::DriveOutcome detect(const smart::DriveRecord& drive,
                            std::size_t begin_index = 0) const;

  eval::EvalResult evaluate(const data::DriveDataset& dataset,
                            const data::DatasetSplit& split,
                            double threshold) const;

  const tree::DecisionTree& regression_tree() const { return rt_; }

  // Per-drive personalized windows chosen during fit (serial -> hours);
  // empty in global mode. Exposed for tests and EXPERIMENTS.md.
  const std::vector<std::pair<std::string, int>>& windows() const {
    return windows_;
  }

 private:
  HealthModelConfig config_;
  tree::DecisionTree rt_;
  std::vector<std::pair<std::string, int>> windows_;
};

// Priority queue of drive warnings ordered by health degree (worst first) —
// "deal with warnings in order of their health degrees" (Section I).
struct Warning {
  std::string serial;
  double health = 0.0;
  std::int64_t hour = 0;
};

class WarningQueue {
 public:
  void push(Warning w);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  // Removes and returns the most at-risk warning (lowest health).
  Warning pop();

 private:
  std::vector<Warning> heap_;  // min-heap on health
};

}  // namespace hdd::core
