#include "core/health.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "common/math_util.h"

namespace hdd::core {

HealthDegreeModel::HealthDegreeModel(HealthModelConfig config)
    : config_(std::move(config)) {
  HDD_REQUIRE(config_.global_window_hours > 0 &&
                  config_.fallback_window_hours > 0,
              "windows must be positive");
  HDD_REQUIRE(config_.failed_samples_per_drive > 0,
              "failed_samples_per_drive must be positive");
}

void HealthDegreeModel::fit(const data::DriveDataset& dataset,
                            const data::DatasetSplit& split) {
  windows_.clear();

  // Per-drive deterioration windows (Eq. 6): the CT model's time in advance
  // on each failed training drive.
  std::unordered_map<const smart::DriveRecord*, int> window_of;
  if (config_.personalized) {
    FailurePredictor ct(config_.ct_config);
    ct.fit(dataset, split);
    for (std::size_t di : split.train_failed) {
      const auto& d = dataset.drives[di];
      if (d.empty()) continue;
      const auto outcome = ct.detect(d);
      int w = config_.fallback_window_hours;
      if (outcome.alarmed) {
        const auto tia = static_cast<int>(d.fail_hour - outcome.alarm_hour);
        if (tia > 0) w = tia;
      }
      window_of[&d] = w;
      windows_.emplace_back(d.serial, w);
    }
  }

  // RT training matrix: targets from Eq. 5/6, 12 evenly spaced failed
  // samples per drive inside its window.
  data::TrainingConfig tc = config_.ct_config.training;
  tc.failed_samples_per_drive = config_.failed_samples_per_drive;
  tc.failed_window_hours = config_.global_window_hours;

  data::FailedWindowFn window_fn;
  data::FailedTargetFn target_fn;
  if (config_.personalized) {
    window_fn = [&window_of, this](const smart::DriveRecord& d) {
      const auto it = window_of.find(&d);
      return it != window_of.end() ? it->second
                                   : config_.fallback_window_hours;
    };
    target_fn = [&window_of, this](const smart::DriveRecord& d,
                                   std::int64_t hours_before) {
      const auto it = window_of.find(&d);
      const double w = static_cast<double>(
          it != window_of.end() ? it->second : config_.fallback_window_hours);
      return static_cast<float>(
          clamp(-1.0 + static_cast<double>(hours_before) / w, -1.0, 0.0));
    };
  } else {
    const double w = config_.global_window_hours;
    target_fn = [w](const smart::DriveRecord&, std::int64_t hours_before) {
      return static_cast<float>(
          clamp(-1.0 + static_cast<double>(hours_before) / w, -1.0, 0.0));
    };
  }

  const auto matrix =
      data::build_training_matrix(dataset, split, tc, target_fn, window_fn);
  rt_.fit(matrix, tree::Task::kRegression, config_.rt_params);
}

double HealthDegreeModel::health(const smart::DriveRecord& drive,
                                 std::size_t sample_index) const {
  HDD_REQUIRE(trained(), "health model is not trained");
  const auto row = smart::extract_features(
      drive, sample_index, config_.ct_config.training.features);
  HDD_REQUIRE(row.has_value(), "sample index out of range");
  return rt_.predict(*row);
}

eval::SampleModel HealthDegreeModel::sample_model() const {
  HDD_REQUIRE(trained(), "health model is not trained");
  const tree::DecisionTree* t = &rt_;
  return [t](std::span<const float> x) { return t->predict(x); };
}

eval::DriveOutcome HealthDegreeModel::detect(const smart::DriveRecord& drive,
                                             std::size_t begin_index) const {
  const auto scores =
      eval::score_record(drive, begin_index,
                         config_.ct_config.training.features, sample_model());
  eval::VoteConfig vote;
  vote.voters = config_.voters;
  vote.average_mode = true;
  vote.threshold = config_.threshold;
  return eval::vote_drive(scores, vote);
}

eval::EvalResult HealthDegreeModel::evaluate(const data::DriveDataset& dataset,
                                             const data::DatasetSplit& split,
                                             double threshold) const {
  eval::VoteConfig vote;
  vote.voters = config_.voters;
  vote.average_mode = true;
  vote.threshold = threshold;
  return eval::evaluate(dataset, split, config_.ct_config.training.features,
                        sample_model(), vote);
}

namespace {
// Min-heap comparator: lowest health = highest priority.
bool healthier(const Warning& a, const Warning& b) {
  return a.health > b.health;
}
}  // namespace

void WarningQueue::push(Warning w) {
  heap_.push_back(std::move(w));
  std::push_heap(heap_.begin(), heap_.end(), healthier);
}

Warning WarningQueue::pop() {
  HDD_REQUIRE(!heap_.empty(), "pop from an empty WarningQueue");
  std::pop_heap(heap_.begin(), heap_.end(), healthier);
  Warning w = std::move(heap_.back());
  heap_.pop_back();
  return w;
}

}  // namespace hdd::core
