// FleetScorer — batched, multi-threaded scoring of a whole drive fleet.
//
// The paper's deployment story (Section V-E) is a monitoring node that
// scores every drive in a data center on each SMART sample interval. This
// engine serves that workload in two modes:
//
//  * Streaming: register the fleet once (add_drive), then feed one feature
//    row per drive per interval (observe_interval). The engine scores the
//    snapshot through SampleScorer::predict_batch in row blocks spread over
//    the thread pool, and advances a per-drive incremental voting window
//    (DriveVoteState) — detection never rescans a drive's history.
//  * Replay/evaluation: score whole DriveRecords (replay, evaluate) with
//    block feature extraction, batch model calls, early exit at the first
//    alarm, and parallelism across drives. Decisions are identical to
//    eval::vote_drive over eval::score_record.
//  * Journaled streaming: attach a store::TelemetryStore and feed raw SMART
//    samples (observe_samples). Each interval is observed -> appended to the
//    durable log -> scored; after a crash, resume_from() replays the log
//    through the same bounded-history feature path, restoring every
//    DriveVoteState so the continued run raises byte-identical alarms.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/rcu_slot.h"
#include "core/scorer.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/detection.h"
#include "smart/drive.h"

namespace hdd::store {
class TelemetryStore;
}
namespace hdd::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace hdd::obs

namespace hdd::core {

// What observe_samples quarantines instead of scoring. Quarantined samples
// are skipped symmetrically everywhere — not journaled, not pushed into
// history, not voted on — so a resumed run replays exactly the stream the
// live run scored.
enum class QuarantinePolicy {
  kOff,        // score everything (caller vouches for the data)
  kNonFinite,  // quarantine NaN/Inf attribute values
  kFullDomain, // also quarantine values outside smart::attribute_range()
};

struct FleetScorerConfig {
  smart::FeatureSet features;
  eval::VoteConfig vote;
  // Rows per predict_batch call (and per parallel work item in streaming
  // mode).
  std::size_t block_rows = 256;
  // Hours of raw-sample history kept per drive for change-rate features in
  // journaled streaming mode; 0 = auto (4x the largest change interval of
  // the feature set, at least 24 h). Live scoring and resume_from() trim
  // with the same rule, which is what makes resumed decisions identical.
  int history_hours = 0;
  // Ingest hygiene for observe_samples. The default only rejects values no
  // finite arithmetic can use; kFullDomain is for raw vendor telemetry
  // (CLI ingest uses it). Synthetic/pre-normalized pipelines that score
  // values outside the vendor scale keep the domain check off.
  QuarantinePolicy quarantine = QuarantinePolicy::kNonFinite;
  // nullptr = ThreadPool::global().
  ThreadPool* pool = nullptr;
  // Registry for the hdd_fleet_* metrics (samples scored, batch latency,
  // alarms, vote transitions, journal resumes); nullptr =
  // obs::Registry::global(). A non-global registry must outlive the
  // scorer.
  obs::Registry* metrics = nullptr;
};

// Incremental sliding-window voting state for one drive: the decision rule
// of eval::vote_drive maintained sample by sample over a ring buffer of the
// last N model outputs.
class DriveVoteState {
 public:
  explicit DriveVoteState(const eval::VoteConfig& vote);

  // Feeds one model output; returns true exactly when this sample raises
  // the drive's (first) alarm. No-op once alarmed. Decisions start once the
  // window holds N samples.
  bool push(std::int64_t hour, double output);

  // Closes a record shorter than the voting window: such drives vote once
  // over what they have (eval::vote_drive's short-record rule). Returns
  // true if this raises the alarm.
  bool finish();

  bool alarmed() const { return alarmed_; }
  std::int64_t alarm_hour() const { return alarm_hour_; }
  std::int64_t samples_seen() const { return seen_; }
  eval::DriveOutcome outcome() const { return {alarmed_, alarm_hour_}; }

  // The rolling vote verdict over the window's current contents (the rule
  // push() checks at a full window; short windows vote over what they
  // have), independent of the alarm latch. Shadow scoring compares the
  // incumbent's and candidate's verdicts sample by sample with this.
  bool current_decision() const {
    return filled_ > 0 && decide(std::min(filled_, ring_.size()));
  }

  // Forgets all observations (keeps the configuration).
  void reset();

  // Optional instrumentation (FleetScorer wires these): `transitions`
  // counts sample-level vote flips — consecutive model outputs of this
  // drive crossing the failure threshold in either direction — and
  // `alarms` counts the terminal healthy->alarmed transition. Counters
  // are sharded atomics, so concurrent pushes from scoring blocks are
  // safe.
  void set_metrics(obs::Counter* transitions, obs::Counter* alarms) {
    transitions_counter_ = transitions;
    alarms_counter_ = alarms;
  }

 private:
  bool decide(std::size_t window) const;
  void raise_alarm(std::int64_t hour);

  eval::VoteConfig vote_;
  std::vector<float> ring_;  // last N outputs, circular
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  std::size_t failed_votes_ = 0;
  double output_sum_ = 0.0;
  std::int64_t seen_ = 0;
  std::int64_t last_hour_ = -1;
  bool alarmed_ = false;
  std::int64_t alarm_hour_ = -1;
  bool last_vote_failed_ = false;
  obs::Counter* transitions_counter_ = nullptr;
  obs::Counter* alarms_counter_ = nullptr;
};

class FleetScorer {
 public:
  // The scorer must outlive the FleetScorer.
  FleetScorer(const SampleScorer& scorer, FleetScorerConfig config);

  const FleetScorerConfig& config() const { return config_; }

  // --- Streaming mode -------------------------------------------------------

  // Registers a drive; returns its fleet index.
  std::size_t add_drive(std::string serial);
  std::size_t size() const { return states_.size(); }
  const std::string& serial(std::size_t i) const { return serials_[i]; }
  const DriveVoteState& state(std::size_t i) const { return states_[i]; }

  // Scores one interval snapshot: row i of the row-major block (or matrix)
  // is drive i's current feature row. Batched + parallel; per-drive voting
  // state advances incrementally. Already-alarmed drives keep their alarm.
  void observe_interval(std::span<const float> xs, std::int64_t hour);
  void observe_interval(const data::DataMatrix& m, std::int64_t hour);

  std::size_t alarm_count() const;
  std::vector<std::size_t> alarmed_drives() const;

  // Clears every drive's voting state (the registry stays).
  void reset();

  // --- Journaled streaming mode ---------------------------------------------

  // Attaches a durable journal (nullptr detaches): every registered drive is
  // registered in the store, and observe_samples appends each sample before
  // scoring it. The store must outlive the attachment.
  void attach_journal(store::TelemetryStore* store);
  store::TelemetryStore* journal() const { return journal_; }

  // Scores one interval of raw SMART telemetry: samples[i] is drive i's
  // reading, all stamped `hour`. Order of operations per drive: append to
  // the journal (if attached; skipped when the store already holds this
  // hour, which makes re-observing an interval after a resume idempotent),
  // push into the bounded history window, extract features, score, vote.
  //
  // Graceful degradation: samples failing the quarantine policy, and
  // samples whose journal append fails, are counted
  // (hdd_fleet_quarantined_samples_total /
  // hdd_fleet_journal_append_failures_total), logged, and skipped for this
  // interval — the rest of the fleet still scores. Journal failures also
  // latch degraded(). A skipped sample is skipped everywhere (journal,
  // history, voting), so in-memory state always matches what a resume
  // would replay.
  void observe_samples(std::span<const smart::Sample> samples,
                       std::int64_t hour);

  struct IngestResult {
    std::size_t accepted = 0;     // journaled (if attached) and scored
    std::size_t quarantined = 0;  // failed the quarantine policy
    std::size_t stale = 0;        // at or before the drive's newest hour
    bool journal_failed = false;  // batch skipped; degraded() is latched
  };

  // Per-drive batched ingest — the serve path, where drives report on
  // their own clocks instead of fleet-lockstep intervals. Samples must be
  // hour-ascending; anything at or before the drive's newest journaled
  // (or, without a journal, in-memory) hour is dropped as stale, which
  // makes re-sending a batch after a crash/resume idempotent. Accepted
  // samples are appended to the journal as one batched write
  // (flush_to_os, not fsync — the daemon fsyncs on seal/shutdown), then
  // pushed through the same history/extraction/voting path
  // observe_samples and resume_from share, so a resumed daemon raises
  // byte-identical alarms. Not thread-safe: callers serialize per scorer
  // (serve gives each shard its own scorer + store).
  IngestResult ingest_drive(std::size_t i,
                            std::span<const smart::Sample> samples);

  // True once any journal append/flush has failed; alarms raised since are
  // based on partial telemetry.
  bool degraded() const { return degraded_; }
  std::uint64_t quarantined_samples() const { return quarantined_; }
  std::uint64_t journal_failures() const { return journal_failures_; }

  // --- Shadow scoring -------------------------------------------------------

  // Divergence between the incumbent and a shadow candidate, accumulated
  // over live traffic since the shadow was installed (also exported as
  // hdd_pipeline_shadow_* counters). Shadow vote windows start empty, so
  // flip/alarm comparisons warm up over the first window.
  struct ShadowStats {
    std::uint64_t samples = 0;      // rows the shadow scored
    std::uint64_t divergence = 0;   // sign(shadow) != sign(incumbent)
    std::uint64_t vote_flips = 0;   // rolling window verdicts disagree
    std::uint64_t alarm_delta = 0;  // exactly one side raised its alarm
  };

  // Installs a candidate to score the same live feature rows as the
  // incumbent, on separate voting state that never raises real alarms
  // (nullptr uninstalls). Safe to call from a controller thread while a
  // scoring thread is mid-call: the running call finishes on the shadow it
  // pinned at entry. Each install resets the shadow voting states and
  // leaves the accumulated stats monotonic. Replay/resume paths never
  // shadow-score — only live traffic does.
  void set_shadow(std::shared_ptr<const SampleScorer> candidate);
  bool has_shadow() const;
  ShadowStats shadow_stats() const;

  struct ResumeResult {
    std::size_t drives = 0;
    std::size_t samples_replayed = 0;
    // Trailing samples dropped because their interval was torn mid-write
    // (only with drop_partial_tail).
    std::size_t partial_dropped = 0;
    std::int64_t last_hour = -1;  // latest hour applied to voting state
  };

  // Restores every drive's voting state by replaying the store through the
  // same history/extraction/scoring path observe_samples uses. With an
  // empty registry the store's drives are adopted in id order; otherwise
  // the registry must match the store drive for drive. drop_partial_tail
  // discards a trailing interval that only some drives reached (a crash
  // mid-append); re-observing that hour then completes it for everyone.
  ResumeResult resume_from(store::TelemetryStore& store,
                           bool drop_partial_tail = true);

  // --- Replay / evaluation mode ---------------------------------------------

  // Scores every drive's record from its first sample; returns one outcome
  // per dataset drive. Parallel across drives, batch within a drive, early
  // exit at the first alarm.
  std::vector<eval::DriveOutcome> replay(
      const data::DriveDataset& dataset) const;

  // Split-aware evaluation: identical results to eval::evaluate with the
  // same features/vote, via the batched engine.
  eval::EvalResult evaluate(const data::DriveDataset& dataset,
                            const data::DatasetSplit& split) const;

 private:
  // One generation of installed shadow model; readers pin the whole slot.
  struct ShadowSlot {
    std::shared_ptr<const SampleScorer> model;
    std::uint64_t epoch = 0;
  };
  // Everything one scoring call needs pinned for its whole duration: the
  // incumbent (possibly a hot-swap pin) and the shadow generation. Built
  // once per public call so a batch never mixes model generations.
  struct ScoreCtx {
    std::shared_ptr<const SampleScorer> pinned;  // keepalive for `model`
    const SampleScorer* model = nullptr;
    const SampleScorer* shadow = nullptr;  // nullptr = no shadow scoring
    std::shared_ptr<const ShadowSlot> shadow_pin;
  };
  // Per-block shadow tallies, flushed once per block to the atomics +
  // counters (keeps the hot loop free of per-sample atomic traffic).
  struct ShadowTally {
    std::uint64_t samples = 0;
    std::uint64_t divergence = 0;
    std::uint64_t vote_flips = 0;
    std::uint64_t alarm_delta = 0;
  };

  // `live` additionally pins the shadow and (single-threaded) refreshes
  // shadow voting state for a newly installed candidate.
  ScoreCtx make_ctx(bool live);
  void flush_shadow(const ShadowTally& t);
  // Scores one shadow output against the incumbent's state for drive i.
  // `primary_raised` is the incumbent push() result for the same sample.
  void shadow_push(const ScoreCtx& ctx, std::size_t i, std::int64_t hour,
                   double shadow_output, double primary_output,
                   bool primary_raised, ShadowTally& tally);

  eval::DriveOutcome replay_drive(const SampleScorer& model,
                                  const smart::DriveRecord& drive,
                                  std::size_t begin) const;
  ThreadPool& pool() const;
  void push_history(std::size_t i, const smart::Sample& sample);
  void replay_drive_samples(const ScoreCtx& ctx, std::size_t i,
                            std::span<const smart::Sample> samples);

  const SampleScorer* scorer_;
  FleetScorerConfig config_;
  int history_hours_ = 0;  // resolved from config (auto when 0)

  // hdd_fleet_* instruments (resolved from config_.metrics, see DESIGN.md
  // §7). Owned by the registry; shared across scorers on that registry.
  obs::Counter* m_samples_scored_;
  obs::Counter* m_alarms_;
  obs::Counter* m_vote_transitions_;
  obs::Counter* m_journal_resumes_;
  obs::Counter* m_resume_samples_;
  obs::Counter* m_quarantined_;
  obs::Counter* m_journal_failures_;
  obs::Histogram* m_batch_latency_;
  bool degraded_ = false;
  std::uint64_t quarantined_ = 0;
  std::uint64_t journal_failures_ = 0;
  std::vector<std::string> serials_;
  std::vector<DriveVoteState> states_;
  std::vector<double> scratch_;  // interval model outputs, reused per call

  // Shadow scoring state. The slot is the only cross-thread member
  // (controller installs, scoring calls pin); the voting states and
  // scratch follow the scorer's single-caller contract.
  RcuSlot<const ShadowSlot> shadow_slot_;
  std::uint64_t shadow_installs_ = 0;  // controller-side epoch source
  std::uint64_t shadow_epoch_seen_ = 0;
  std::vector<DriveVoteState> shadow_states_;
  std::vector<double> shadow_scratch_;
  std::atomic<std::uint64_t> sh_samples_{0};
  std::atomic<std::uint64_t> sh_divergence_{0};
  std::atomic<std::uint64_t> sh_vote_flips_{0};
  std::atomic<std::uint64_t> sh_alarm_delta_{0};
  obs::Counter* m_shadow_samples_;
  obs::Counter* m_shadow_divergence_;
  obs::Counter* m_shadow_vote_flips_;
  obs::Counter* m_shadow_alarm_delta_;

  // Journaled streaming state.
  store::TelemetryStore* journal_ = nullptr;
  std::vector<std::uint32_t> journal_ids_;   // fleet index -> store drive id
  std::vector<smart::DriveRecord> history_;  // bounded raw-sample windows
  std::vector<smart::Sample> ingest_buf_;    // ingest_drive scratch
};

}  // namespace hdd::core
