#include "core/predictor.h"

#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace hdd::core {

const char* model_type_name(ModelType t) {
  switch (t) {
    case ModelType::kClassificationTree: return "CT";
    case ModelType::kRegressionTree: return "RT";
    case ModelType::kBpAnn: return "BP ANN";
    case ModelType::kRandomForest: return "RandomForest";
    case ModelType::kAdaBoost: return "AdaBoost";
  }
  throw ConfigError("model_type_name: out-of-range ModelType value " +
                    std::to_string(static_cast<int>(t)));
}

void PredictorConfig::validate() const {
  model_type_name(model);  // rejects out-of-range enum values
  HDD_REQUIRE(!training.features.specs.empty(),
              "predictor needs a non-empty feature set");
  HDD_REQUIRE(training.good_samples_per_drive >= 1,
              "training.good_samples_per_drive must be >= 1");
  HDD_REQUIRE(training.failed_window_hours >= 1,
              "training.failed_window_hours must be >= 1");
  HDD_REQUIRE(training.failed_samples_per_drive >= 0,
              "training.failed_samples_per_drive must be >= 0");
  HDD_REQUIRE(training.failed_prior < 1.0,
              "training.failed_prior must be < 1 (1 would erase good drives)");
  HDD_REQUIRE(training.loss_false_alarm > 0.0,
              "training.loss_false_alarm must be positive");
  HDD_REQUIRE(training.loss_missed_detection > 0.0,
              "training.loss_missed_detection must be positive");
  HDD_REQUIRE(vote.voters >= 1, "vote.voters must be >= 1");
  switch (model) {
    case ModelType::kClassificationTree:
    case ModelType::kRegressionTree:
      tree_params.validate();
      break;
    case ModelType::kBpAnn:
      ann.validate();
      break;
    case ModelType::kRandomForest:
      forest.validate();
      break;
    case ModelType::kAdaBoost:
      adaboost.validate();
      break;
  }
}

PredictorConfig paper_ct_config() {
  PredictorConfig c;
  c.model = ModelType::kClassificationTree;
  c.training.features = smart::stat13_features();
  c.training.good_samples_per_drive = 3;
  c.training.failed_window_hours = 168;
  c.training.failed_prior = 0.20;
  c.training.loss_false_alarm = 10.0;
  c.tree_params.min_split = 20;
  c.tree_params.min_bucket = 7;
  c.tree_params.cp = 0.001;
  c.vote.voters = 11;
  return c;
}

PredictorConfig paper_ann_config() {
  PredictorConfig c;
  c.model = ModelType::kBpAnn;
  c.training.features = smart::stat13_features();
  c.training.good_samples_per_drive = 3;
  c.training.failed_window_hours = 12;  // [11]'s window
  c.training.failed_prior = 0.0;        // the ANN paper did not reweight
  c.training.loss_false_alarm = 1.0;
  c.ann.hidden = c.training.features.size();  // 13-13-1
  c.ann.learning_rate = 0.1;
  c.ann.epochs = 400;
  c.vote.voters = 11;
  return c;
}

PredictorConfig paper_rt_classifier_config() {
  PredictorConfig c = paper_ct_config();
  c.model = ModelType::kRegressionTree;
  c.vote.average_mode = true;
  c.vote.threshold = 0.0;
  return c;
}

PredictorConfig forest_config() {
  PredictorConfig c = paper_ct_config();
  c.model = ModelType::kRandomForest;
  c.forest.n_trees = 40;
  c.forest.feature_fraction = 0.6;
  c.forest.tree_params = c.tree_params;
  return c;
}

namespace {
constexpr PresetInfo kPresets[] = {
    {"ct", "paper CT: stat13, 168 h window, 10:1 loss, 11 voters",
     &paper_ct_config},
    {"ann", "BP ANN baseline per [11]: 13-13-1, 12 h window",
     &paper_ann_config},
    {"rt", "RT classifier control (Figure 10, average-mode vote)",
     &paper_rt_classifier_config},
    {"forest", "random forest over the CT settings (40 trees, 0.6 subspace)",
     &forest_config},
};
}  // namespace

std::span<const PresetInfo> presets() { return kPresets; }

PredictorConfig preset(std::string_view name) {
  for (const PresetInfo& p : kPresets) {
    if (p.name == name) return p.make();
  }
  std::ostringstream os;
  os << "unknown preset \"" << name << "\" (known:";
  for (const PresetInfo& p : kPresets) os << ' ' << p.name;
  os << ')';
  throw ConfigError(os.str());
}

FailurePredictor::FailurePredictor(PredictorConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

void FailurePredictor::fit(const data::DriveDataset& dataset,
                           const data::DatasetSplit& split) {
  const obs::ScopedTimer timer(
      &obs::Registry::global().histogram("hdd_train_fit_ns",
                                         "Predictor fit wall time (ns)."));
  const auto matrix =
      data::build_training_matrix(dataset, split, config_.training);
  scorer_.reset();
  scorer_ = fit_scorer(config_, matrix);
}

const SampleScorer& FailurePredictor::scorer() const {
  HDD_REQUIRE(trained(), "predictor is not trained");
  return *scorer_;
}

eval::SampleModel FailurePredictor::sample_model() const {
  const SampleScorer* s = &scorer();
  return [s](std::span<const float> x) { return s->predict(x); };
}

double FailurePredictor::score_sample(const smart::DriveRecord& drive,
                                      std::size_t sample_index) const {
  const auto row = smart::extract_features(drive, sample_index,
                                           config_.training.features);
  HDD_REQUIRE(row.has_value(), "sample index out of range");
  return scorer().predict(*row);
}

eval::DriveOutcome FailurePredictor::detect(const smart::DriveRecord& drive,
                                            std::size_t begin_index) const {
  const auto scores = eval::score_record(drive, begin_index,
                                         config_.training.features,
                                         sample_model());
  return eval::vote_drive(scores, config_.vote);
}

eval::EvalResult FailurePredictor::evaluate(
    const data::DriveDataset& dataset,
    const data::DatasetSplit& split) const {
  const SampleScorer* s = &scorer();
  return eval::evaluate_batch(
      dataset, split, config_.training.features,
      [s](std::span<const float> xs, std::span<double> out) {
        s->predict_batch(xs, out);
      },
      config_.vote);
}

const tree::DecisionTree* FailurePredictor::tree() const {
  return scorer_ ? scorer_->tree() : nullptr;
}

std::string FailurePredictor::describe() const {
  std::ostringstream os;
  os << model_type_name(config_.model) << " on "
     << config_.training.features.name << " ("
     << config_.training.features.size() << " features), failed window "
     << config_.training.failed_window_hours << "h, voters "
     << config_.vote.voters;
  if (scorer_) os << "; " << scorer_->summary();
  return os.str();
}

}  // namespace hdd::core
