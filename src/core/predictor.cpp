#include "core/predictor.h"

#include <sstream>

#include "common/error.h"

namespace hdd::core {

const char* model_type_name(ModelType t) {
  switch (t) {
    case ModelType::kClassificationTree: return "CT";
    case ModelType::kRegressionTree: return "RT";
    case ModelType::kBpAnn: return "BP ANN";
    case ModelType::kRandomForest: return "RandomForest";
    case ModelType::kAdaBoost: return "AdaBoost";
  }
  return "?";
}

PredictorConfig paper_ct_config() {
  PredictorConfig c;
  c.model = ModelType::kClassificationTree;
  c.training.features = smart::stat13_features();
  c.training.good_samples_per_drive = 3;
  c.training.failed_window_hours = 168;
  c.training.failed_prior = 0.20;
  c.training.loss_false_alarm = 10.0;
  c.tree_params.min_split = 20;
  c.tree_params.min_bucket = 7;
  c.tree_params.cp = 0.001;
  c.vote.voters = 11;
  return c;
}

PredictorConfig paper_ann_config() {
  PredictorConfig c;
  c.model = ModelType::kBpAnn;
  c.training.features = smart::stat13_features();
  c.training.good_samples_per_drive = 3;
  c.training.failed_window_hours = 12;  // [11]'s window
  c.training.failed_prior = 0.0;        // the ANN paper did not reweight
  c.training.loss_false_alarm = 1.0;
  c.ann.hidden = c.training.features.size();  // 13-13-1
  c.ann.learning_rate = 0.1;
  c.ann.epochs = 400;
  c.vote.voters = 11;
  return c;
}

PredictorConfig paper_rt_classifier_config() {
  PredictorConfig c = paper_ct_config();
  c.model = ModelType::kRegressionTree;
  c.vote.average_mode = true;
  c.vote.threshold = 0.0;
  return c;
}

FailurePredictor::FailurePredictor(PredictorConfig config)
    : config_(std::move(config)) {
  HDD_REQUIRE(!config_.training.features.specs.empty(),
              "predictor needs a non-empty feature set");
}

void FailurePredictor::fit(const data::DriveDataset& dataset,
                           const data::DatasetSplit& split) {
  const auto matrix =
      data::build_training_matrix(dataset, split, config_.training);
  tree_.reset();
  ann_.reset();
  forest_.reset();
  adaboost_.reset();
  switch (config_.model) {
    case ModelType::kClassificationTree:
      tree_.emplace();
      tree_->fit(matrix, tree::Task::kClassification, config_.tree_params);
      break;
    case ModelType::kRegressionTree:
      tree_.emplace();
      tree_->fit(matrix, tree::Task::kRegression, config_.tree_params);
      break;
    case ModelType::kBpAnn:
      ann_.emplace();
      ann_->fit(matrix, config_.ann);
      break;
    case ModelType::kRandomForest:
      forest_.emplace();
      forest_->fit(matrix, tree::Task::kClassification, config_.forest);
      break;
    case ModelType::kAdaBoost:
      adaboost_.emplace();
      adaboost_->fit(matrix, config_.adaboost);
      break;
  }
}

bool FailurePredictor::trained() const {
  return tree_.has_value() || ann_.has_value() || forest_.has_value() ||
         adaboost_.has_value();
}

eval::SampleModel FailurePredictor::sample_model() const {
  HDD_REQUIRE(trained(), "predictor is not trained");
  if (tree_) {
    const tree::DecisionTree* t = &*tree_;
    return [t](std::span<const float> x) { return t->predict(x); };
  }
  if (ann_) {
    const ann::MlpModel* m = &*ann_;
    return [m](std::span<const float> x) { return m->predict(x); };
  }
  if (forest_) {
    const forest::RandomForest* f = &*forest_;
    return [f](std::span<const float> x) { return f->predict(x); };
  }
  const forest::AdaBoost* a = &*adaboost_;
  return [a](std::span<const float> x) { return a->predict(x); };
}

double FailurePredictor::score_sample(const smart::DriveRecord& drive,
                                      std::size_t sample_index) const {
  const auto row = smart::extract_features(drive, sample_index,
                                           config_.training.features);
  HDD_REQUIRE(row.has_value(), "sample index out of range");
  return sample_model()(*row);
}

eval::DriveOutcome FailurePredictor::detect(const smart::DriveRecord& drive,
                                            std::size_t begin_index) const {
  const auto scores = eval::score_record(drive, begin_index,
                                         config_.training.features,
                                         sample_model());
  return eval::vote_drive(scores, config_.vote);
}

eval::EvalResult FailurePredictor::evaluate(
    const data::DriveDataset& dataset,
    const data::DatasetSplit& split) const {
  return eval::evaluate(dataset, split, config_.training.features,
                        sample_model(), config_.vote);
}

const tree::DecisionTree* FailurePredictor::tree() const {
  return tree_ ? &*tree_ : nullptr;
}

std::string FailurePredictor::describe() const {
  std::ostringstream os;
  os << model_type_name(config_.model) << " on "
     << config_.training.features.name << " ("
     << config_.training.features.size() << " features), failed window "
     << config_.training.failed_window_hours << "h, voters "
     << config_.vote.voters;
  if (tree_ && tree_->trained()) {
    os << "; tree: " << tree_->node_count() << " nodes, depth "
       << tree_->depth();
  }
  return os.str();
}

}  // namespace hdd::core
