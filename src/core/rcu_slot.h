// RcuSlot — a shared_ptr slot that readers snapshot and a writer replaces
// while reads are in flight. This is the publication primitive under both
// hot-swap surfaces: SwappableScorer's generation slot and FleetScorer's
// shadow-candidate slot.
//
// Why not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic guards its
// raw pointer with a spinlock embedded in the refcount word, but the load
// path releases that lock with a *relaxed* RMW. Under the formal memory
// model that leaves no happens-before edge from a reader's critical
// section to the next writer's, and ThreadSanitizer reports the plain
// _M_ptr accesses as a data race (it fires for real once a test drives
// load and store concurrently). This slot runs the same protocol — tiny
// spinlock, plain shared_ptr inside — but every unlock is a release
// store, so the lock provably orders the critical sections and the whole
// swap path stays TSan-clean without suppressions.
//
// Costs match _Sp_atomic: a load is one acquire RMW, a refcount bump and
// a release store (~20 ns uncontended); writers are rare (one promotion
// or shadow install per retrain cycle). The outgoing value always drops
// outside the critical section so a model destructor can never stall
// readers spinning on the lock.
//
// The spinlock is a declared capability: clang's -Wthread-safety proves
// ptr_ is only touched under it, and it carries the terminal lock rank
// (lock_order::Rank::kRcuSpin) — acquiring ANY lock while holding it is a
// rank-checker abort, which is exactly the discipline a spin section
// needs (nothing blocking may ever run inside it).
#pragma once

#include <atomic>
#include <memory>
#include <utility>

#include "common/cpu_relax.h"
#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace hdd::core {

// Test-and-test-and-set spinlock with release-store unlock (see above).
class HDD_CAPABILITY("spinlock") RcuSpinLock {
 public:
  void lock() HDD_ACQUIRE() {
    lock_order::note_acquire(lock_order::Rank::kRcuSpin, this, "rcu-spin");
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Inner read-only spin: stay off the cache line's exclusive state,
      // and tell the core it is waiting (PAUSE/YIELD) so the owner's
      // release store lands without a mis-speculation flush.
      while (locked_.load(std::memory_order_relaxed)) {
        cpu_relax();
      }
    }
  }

  void unlock() HDD_RELEASE() {
    lock_order::note_release(lock_order::Rank::kRcuSpin, this, "rcu-spin");
    locked_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> locked_{false};
};

template <typename T>
class RcuSlot {
 public:
  RcuSlot() = default;
  explicit RcuSlot(std::shared_ptr<T> initial) : ptr_(std::move(initial)) {}

  RcuSlot(const RcuSlot&) = delete;
  RcuSlot& operator=(const RcuSlot&) = delete;

  // Owning snapshot of the current value; safe to use across a
  // concurrent store().
  std::shared_ptr<T> load() const {
    lock_.lock();
    std::shared_ptr<T> snap = ptr_;
    lock_.unlock();
    return snap;
  }

  // Publishes `next`; in-flight snapshots keep the old value alive.
  void store(std::shared_ptr<T> next) {
    lock_.lock();
    ptr_.swap(next);
    lock_.unlock();
    // `next` now holds the outgoing value and destroys it here, after
    // the lock is released.
  }

 private:
  mutable RcuSpinLock lock_;
  std::shared_ptr<T> ptr_ HDD_GUARDED_BY(lock_);
};

}  // namespace hdd::core
