// RcuSlot — a shared_ptr slot that readers snapshot and a writer replaces
// while reads are in flight. This is the publication primitive under both
// hot-swap surfaces: SwappableScorer's generation slot and FleetScorer's
// shadow-candidate slot.
//
// Why not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic guards its
// raw pointer with a spinlock embedded in the refcount word, but the load
// path releases that lock with a *relaxed* RMW. Under the formal memory
// model that leaves no happens-before edge from a reader's critical
// section to the next writer's, and ThreadSanitizer reports the plain
// _M_ptr accesses as a data race (it fires for real once a test drives
// load and store concurrently). This slot runs the same protocol — tiny
// spinlock, plain shared_ptr inside — but every unlock is a release
// store, so the lock provably orders the critical sections and the whole
// swap path stays TSan-clean without suppressions.
//
// Costs match _Sp_atomic: a load is one acquire RMW, a refcount bump and
// a release store (~20 ns uncontended); writers are rare (one promotion
// or shadow install per retrain cycle). The outgoing value always drops
// outside the critical section so a model destructor can never stall
// readers spinning on the lock.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace hdd::core {

template <typename T>
class RcuSlot {
 public:
  RcuSlot() = default;
  explicit RcuSlot(std::shared_ptr<T> initial) : ptr_(std::move(initial)) {}

  RcuSlot(const RcuSlot&) = delete;
  RcuSlot& operator=(const RcuSlot&) = delete;

  // Owning snapshot of the current value; safe to use across a
  // concurrent store().
  std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> snap = ptr_;
    unlock();
    return snap;
  }

  // Publishes `next`; in-flight snapshots keep the old value alive.
  void store(std::shared_ptr<T> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the outgoing value and destroys it here, after
    // the lock is released.
  }

 private:
  void lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> ptr_;
};

}  // namespace hdd::core
