#include "core/swappable.h"

#include "common/error.h"

namespace hdd::core {

SwappableScorer::SwappableScorer(std::shared_ptr<const SampleScorer> initial,
                                 std::uint64_t generation) {
  HDD_REQUIRE(initial != nullptr, "swappable scorer needs an initial model");
  num_features_ = initial->num_features();
  slot_.store(std::make_shared<const Generation>(
      Generation{std::move(initial), generation}));
}

std::shared_ptr<const SampleScorer> SwappableScorer::current() const {
  auto gen = load();
  // Aliasing: the returned pointer targets the model but keeps the whole
  // generation alive, so model and number can never be torn apart.
  const SampleScorer* model = gen->model.get();
  return {std::move(gen), model};
}

std::uint64_t SwappableScorer::generation() const { return load()->number; }

void SwappableScorer::swap(std::shared_ptr<const SampleScorer> next,
                           std::uint64_t generation) {
  HDD_REQUIRE(next != nullptr, "cannot swap in a null model");
  HDD_REQUIRE(next->num_features() == num_features_,
              "hot-swap candidate has a different feature width");
  slot_.store(std::make_shared<const Generation>(
      Generation{std::move(next), generation}));
}

double SwappableScorer::predict(std::span<const float> x) const {
  return load()->model->predict(x);
}

void SwappableScorer::predict_batch(std::span<const float> xs,
                                    std::span<double> out) const {
  load()->model->predict_batch(xs, out);
}

std::string SwappableScorer::summary() const {
  const auto gen = load();
  return "gen " + std::to_string(gen->number) + ": " + gen->model->summary();
}

std::shared_ptr<const SampleScorer> SwappableScorer::pin() const {
  return current();
}

void SwappableScorer::save(std::ostream& os) const { load()->model->save(os); }

std::shared_ptr<const SampleScorer> unowned_scorer(
    const SampleScorer* scorer) {
  HDD_REQUIRE(scorer != nullptr, "null scorer");
  return {std::shared_ptr<const SampleScorer>{}, scorer};
}

}  // namespace hdd::core
