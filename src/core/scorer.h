// SampleScorer — the internal polymorphic seam between the FailurePredictor
// facade and the concrete model backends (CART, random forest, AdaBoost,
// BP ANN).
//
// Every backend scores a feature row to a margin in [-1, 1] (negative =
// failing) and exposes a native batch path over row-major blocks, which is
// what the fleet-scoring engine and the evaluation harness drive. Adding a
// new model type means implementing this interface and registering it in
// fit_scorer() — the facade and everything above it stay untouched.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "data/matrix.h"

namespace hdd::tree {
class DecisionTree;
}

namespace hdd::forest {
class RandomForest;
}

namespace hdd::ann {
class MlpModel;
}

namespace hdd::core {

struct PredictorConfig;

class SampleScorer {
 public:
  virtual ~SampleScorer() = default;

  // Margin/health of one feature row (negative = failing).
  virtual double predict(std::span<const float> x) const = 0;

  // Scores `out.size()` row-major rows (`xs.size()` must equal
  // `out.size() * num_features()`). Implementations are bit-identical to
  // calling predict() per row, just without the per-call overhead.
  virtual void predict_batch(std::span<const float> xs,
                             std::span<double> out) const = 0;

  void predict_batch(const data::DataMatrix& m, std::span<double> out) const;

  virtual int num_features() const = 0;

  // One-line model description ("tree: 41 nodes, depth 7").
  virtual std::string summary() const = 0;

  // The underlying decision tree for tree-backed scorers (interpretability,
  // persistence); null for every other backend.
  virtual const tree::DecisionTree* tree() const { return nullptr; }

  // Hot-swap support: a scorer whose backing model can change while calls
  // are in flight (pipeline::SwappableScorer) returns an owning pin of the
  // current model here, so one scoring pass stays on one generation even if
  // a promotion lands mid-batch. Fixed scorers return null — callers fall
  // back to `this` and pay nothing.
  virtual std::shared_ptr<const SampleScorer> pin() const { return nullptr; }

  // Persists the model in its native text format (loadable with
  // core::load_model). Backends without a serialization format (AdaBoost)
  // throw ConfigError.
  virtual void save(std::ostream& os) const;
};

// Trains the model selected by `config.model` on the weighted matrix and
// returns it behind the scorer interface. Throws ConfigError on invalid
// model-specific parameters.
std::unique_ptr<SampleScorer> fit_scorer(const PredictorConfig& config,
                                         const data::DataMatrix& matrix);

// Wraps an already-trained decision tree (e.g. one loaded with
// core::load_tree) behind the scorer interface. Throws ConfigError if the
// tree is untrained.
std::unique_ptr<SampleScorer> make_tree_scorer(tree::DecisionTree tree);

// Same for the other persisted backends (generation-record reload paths).
std::unique_ptr<SampleScorer> make_forest_scorer(forest::RandomForest forest);
std::unique_ptr<SampleScorer> make_mlp_scorer(ann::MlpModel mlp);

}  // namespace hdd::core
