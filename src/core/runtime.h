// FleetRuntime — one-stop wiring for the journaled fleet-scoring stack.
//
// Every consumer of FleetScorer used to assemble the same four config
// structs by hand: LoadOptions for the model file, StoreOptions for the
// telemetry journal, FleetScorerConfig for the scoring engine, and a
// QuarantinePolicy choice — duplicated across the CLI commands, the serve
// daemon's shards and the examples, each with its own subtle defaults.
// FleetRuntime collapses that into one config consumed everywhere: give it
// a model (a persisted tree file or an already-built SampleScorer) and
// optionally a store directory, and it owns the loaded model, the store
// and the scorer, attached and ready to resume.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fleet.h"
#include "core/model_io.h"
#include "core/swappable.h"
#include "store/telemetry_store.h"

namespace hdd::core {

struct FleetRuntimeConfig {
  // The model: exactly one of these. `model_path` is a persisted decision
  // tree loaded under `load` (verify-on-load); `scorer` is any external
  // SampleScorer, not owned, which must outlive the runtime.
  std::string model_path;
  const SampleScorer* scorer = nullptr;
  LoadOptions load;

  // The journal: empty = in-memory scoring only (no store, no resume).
  std::string store_dir;
  store::StoreOptions store;

  // Scoring. An empty feature set means the paper's stat13 layout; the
  // model's width must match whichever set is in force.
  smart::FeatureSet features;
  eval::VoteConfig vote;
  QuarantinePolicy quarantine = QuarantinePolicy::kNonFinite;
  int history_hours = 0;     // 0 = auto (FleetScorerConfig rule)
  std::size_t block_rows = 256;
  ThreadPool* pool = nullptr;         // nullptr = ThreadPool::global()
  obs::Registry* metrics = nullptr;   // nullptr = obs::Registry::global()

  // Wrap the model in a SwappableScorer so the update pipeline can hot-swap
  // promoted generations while scoring runs. With a store, the newest
  // journaled generation record (if any) supersedes the configured model at
  // construction, restoring what a crashed daemon had promoted.
  bool hot_swappable = false;
};

class FleetRuntime {
 public:
  // Throws ConfigError on an inconsistent config (no model, both model
  // sources, feature-width mismatch) and DataError on a model or store
  // that cannot be loaded.
  explicit FleetRuntime(FleetRuntimeConfig config);

  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  const SampleScorer& scorer() const { return *scorer_; }
  FleetScorer& fleet() { return *fleet_; }
  const FleetScorer& fleet() const { return *fleet_; }

  bool has_store() const { return store_ != nullptr; }
  store::TelemetryStore& store();
  const store::TelemetryStore& store() const;

  // Replays the store through the scorer (FleetScorer::resume_from); only
  // valid with a store.
  FleetScorer::ResumeResult resume(bool drop_partial_tail = true);

  // Durably flushes the journal (fsync). Safe without a store (no-op);
  // the shared shutdown handler calls this on SIGTERM/SIGINT.
  void seal();

  // Non-null exactly when configured hot_swappable: the slot the update
  // pipeline promotes candidates into.
  SwappableScorer* swappable() { return swappable_.get(); }
  std::uint64_t model_generation() const {
    return swappable_ != nullptr ? swappable_->generation() : generation_;
  }

 private:
  std::unique_ptr<SampleScorer> owned_scorer_;
  std::unique_ptr<SwappableScorer> swappable_;
  const SampleScorer* scorer_ = nullptr;
  std::uint64_t generation_ = 0;
  std::unique_ptr<store::TelemetryStore> store_;
  std::unique_ptr<FleetScorer> fleet_;
};

}  // namespace hdd::core
