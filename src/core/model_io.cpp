#include "core/model_io.h"

#include <fstream>

#include "common/error.h"

namespace hdd::core {

void save_tree(const tree::DecisionTree& tree, std::ostream& os) {
  tree.save(os);
}

void save_tree_file(const tree::DecisionTree& tree, const std::string& path) {
  std::ofstream os(path);
  HDD_REQUIRE(os.good(), "cannot open for writing: " + path);
  save_tree(tree, os);
}

tree::DecisionTree load_tree(std::istream& is) {
  return tree::DecisionTree::load(is);
}

tree::DecisionTree load_tree_file(const std::string& path) {
  std::ifstream is(path);
  HDD_REQUIRE(is.good(), "cannot open for reading: " + path);
  return load_tree(is);
}

}  // namespace hdd::core
