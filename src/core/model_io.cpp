#include "core/model_io.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "core/scorer.h"
#include "io/env.h"

namespace hdd::core {

namespace {

io::Env& resolve(io::Env* env) {
  return env != nullptr ? *env : io::Env::posix();
}

// Whole-file read/write through the Env: models are small (KBs), so the
// streaming formats parse from / serialize into memory and the Env only
// ever sees one read or one write per file.
std::string read_all(const std::string& path, io::Env* env) {
  std::string data;
  const auto s = resolve(env).read_file(path, data);
  HDD_REQUIRE(s.ok(), "cannot open for reading: " + path);
  return data;
}

void write_all(const std::string& path, const std::string& data,
               io::Env* env) {
  const auto s = resolve(env).write_file(path, data, /*sync=*/false);
  HDD_REQUIRE(s.ok(), "cannot open for writing: " + path);
}

// Applies the configured verify mode to a freshly loaded model. kWarn
// logs every diagnostic; kStrict additionally rejects on errors, so a
// semantically broken model never reaches scoring.
void verify_loaded(const AnyModel& m, const LoadOptions& options,
                   const std::string& model_path) {
  if (options.verify == VerifyMode::kOff) return;
  analysis::VerifyOptions vo;
  vo.domains = options.domains;
  const auto report = verify_model(m, vo, model_path);
  for (const auto& d : report.diagnostics) {
    const auto level = d.severity == analysis::Severity::kError
                           ? LogLevel::kError
                           : (d.severity == analysis::Severity::kWarning
                                  ? LogLevel::kWarn
                                  : LogLevel::kInfo);
    log_message(level, std::string("model verifier: [") + d.code + "] " +
                           d.model_path + ": " + d.location + ": " +
                           d.message);
  }
  if (options.verify == VerifyMode::kStrict && report.has_errors()) {
    const auto errors = report.count(analysis::Severity::kError);
    std::string first;
    for (const auto& d : report.diagnostics) {
      if (d.severity == analysis::Severity::kError) {
        first = "[" + d.code + "] " + d.location + ": " + d.message;
        break;
      }
    }
    throw DataError("model rejected by strict verification (" +
                    std::to_string(errors) + " error(s); first: " + first +
                    ")");
  }
}

}  // namespace

void save_tree(const tree::DecisionTree& tree, std::ostream& os) {
  tree.save(os);
}

void save_tree_file(const tree::DecisionTree& tree, const std::string& path,
                    io::Env* env) {
  std::ostringstream os;
  save_tree(tree, os);
  write_all(path, std::move(os).str(), env);
}

tree::DecisionTree load_tree(std::istream& is, const LoadOptions& options) {
  auto tree = tree::DecisionTree::load(is);
  if (options.verify != VerifyMode::kOff) {
    AnyModel m = std::move(tree);
    verify_loaded(m, options, "tree");
    return std::get<tree::DecisionTree>(std::move(m));
  }
  return tree;
}

tree::DecisionTree load_tree_file(const std::string& path,
                                  const LoadOptions& options, io::Env* env) {
  std::istringstream is(read_all(path, env));
  auto tree = tree::DecisionTree::load(is);
  if (options.verify != VerifyMode::kOff) {
    AnyModel m = std::move(tree);
    verify_loaded(m, options, path);
    return std::get<tree::DecisionTree>(std::move(m));
  }
  return tree;
}

const char* model_kind_name(const AnyModel& m) {
  if (std::holds_alternative<tree::DecisionTree>(m)) return "tree";
  if (std::holds_alternative<forest::RandomForest>(m)) return "forest";
  return "mlp";
}

int model_num_features(const AnyModel& m) {
  return std::visit([](const auto& model) { return model.num_features(); },
                    m);
}

AnyModel load_model(std::istream& is, const LoadOptions& options) {
  // Sniff the header line, then hand the stream back to the format's own
  // loader (each re-reads its header). Requires a seekable stream, which
  // files and string streams are.
  const auto start = is.tellg();
  HDD_REQUIRE(start != std::istream::pos_type(-1),
              "load_model needs a seekable stream");
  std::string header;
  if (!std::getline(is, header)) throw DataError("empty model stream");
  is.clear();
  is.seekg(start);

  AnyModel m = [&]() -> AnyModel {
    if (header == "hddpred-tree v1") return tree::DecisionTree::load(is);
    if (header == "hddpred-forest v1") return forest::RandomForest::load(is);
    if (header == "hddpred-mlp v1") return ann::MlpModel::load(is);
    throw DataError("unknown model header: " + header);
  }();
  verify_loaded(m, options, std::string(model_kind_name(m)));
  return m;
}

AnyModel load_model_file(const std::string& path, const LoadOptions& options,
                         io::Env* env) {
  std::istringstream is(read_all(path, env));
  // Sniff + dispatch here (not via load_model) so diagnostics carry the
  // file path instead of a generic kind name.
  LoadOptions off = options;
  off.verify = VerifyMode::kOff;
  AnyModel m = load_model(is, off);
  verify_loaded(m, options, path);
  return m;
}

analysis::Report verify_model(const AnyModel& m,
                              const analysis::VerifyOptions& options,
                              const std::string& model_path) {
  if (const auto* tree = std::get_if<tree::DecisionTree>(&m)) {
    return analysis::verify_tree(*tree, options, model_path);
  }
  if (const auto* forest = std::get_if<forest::RandomForest>(&m)) {
    return analysis::verify_forest(*forest, options, model_path);
  }
  return analysis::verify_mlp(std::get<ann::MlpModel>(m), options,
                              model_path);
}

std::unique_ptr<SampleScorer> make_model_scorer(AnyModel m) {
  if (auto* tree = std::get_if<tree::DecisionTree>(&m)) {
    return make_tree_scorer(std::move(*tree));
  }
  if (auto* forest = std::get_if<forest::RandomForest>(&m)) {
    return make_forest_scorer(std::move(*forest));
  }
  return make_mlp_scorer(std::move(std::get<ann::MlpModel>(m)));
}

void save_scorer_file(const SampleScorer& scorer, const std::string& path,
                      io::Env* env) {
  std::ostringstream os;
  scorer.save(os);
  write_all(path, std::move(os).str(), env);
}

}  // namespace hdd::core
