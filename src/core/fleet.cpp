#include "core/fleet.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "smart/features.h"
#include "store/telemetry_store.h"

namespace hdd::core {

DriveVoteState::DriveVoteState(const eval::VoteConfig& vote) : vote_(vote) {
  HDD_REQUIRE(vote_.voters >= 1, "voters must be >= 1");
  ring_.assign(static_cast<std::size_t>(vote_.voters), 0.0f);
}

bool DriveVoteState::decide(std::size_t window) const {
  if (vote_.average_mode) {
    return output_sum_ / static_cast<double>(window) < vote_.threshold;
  }
  return static_cast<double>(failed_votes_) >
         static_cast<double>(window) / 2.0;
}

void DriveVoteState::raise_alarm(std::int64_t hour) {
  alarmed_ = true;
  alarm_hour_ = hour;
  if (alarms_counter_ != nullptr) alarms_counter_->inc();
}

bool DriveVoteState::push(std::int64_t hour, double output) {
  if (alarmed_) return false;
  ++seen_;
  last_hour_ = hour;
  // Outputs round through float exactly as eval::score_record stores them,
  // so streaming decisions match the offline path bit for bit.
  const float v = static_cast<float>(output);
  const bool failed_vote = v < 0.0f;
  if (seen_ > 1 && failed_vote != last_vote_failed_ &&
      transitions_counter_ != nullptr) {
    transitions_counter_->inc();
  }
  last_vote_failed_ = failed_vote;
  const std::size_t want = ring_.size();
  if (filled_ == want) {
    const double old = ring_[head_];
    if (old < 0.0) --failed_votes_;
    output_sum_ -= old;
  } else {
    ++filled_;
  }
  ring_[head_] = v;
  head_ = (head_ + 1) % want;
  if (v < 0.0f) ++failed_votes_;
  output_sum_ += v;
  if (filled_ < want) return false;  // decisions start at a full window
  if (decide(want)) {
    raise_alarm(hour);
    return true;
  }
  return false;
}

bool DriveVoteState::finish() {
  if (alarmed_ || filled_ == 0 || filled_ >= ring_.size()) return false;
  if (decide(filled_)) {
    raise_alarm(last_hour_);
    return true;
  }
  return false;
}

void DriveVoteState::reset() {
  head_ = filled_ = failed_votes_ = 0;
  output_sum_ = 0.0;
  seen_ = 0;
  last_hour_ = alarm_hour_ = -1;
  alarmed_ = false;
  last_vote_failed_ = false;
}

FleetScorer::FleetScorer(const SampleScorer& scorer, FleetScorerConfig config)
    : scorer_(&scorer), config_(std::move(config)) {
  HDD_REQUIRE(config_.features.size() == scorer_->num_features(),
              "fleet feature set width must match the model");
  HDD_REQUIRE(config_.block_rows >= 1, "block_rows must be >= 1");
  HDD_REQUIRE(config_.vote.voters >= 1, "voters must be >= 1");
  HDD_REQUIRE(config_.history_hours >= 0, "history_hours must be >= 0");
  if (config_.history_hours > 0) {
    history_hours_ = config_.history_hours;
  } else {
    int max_interval = 0;
    for (const auto& spec : config_.features.specs) {
      max_interval = std::max(max_interval, spec.change_interval_hours);
    }
    history_hours_ = std::max(24, 4 * max_interval);
  }
  obs::Registry& reg =
      config_.metrics != nullptr ? *config_.metrics : obs::Registry::global();
  m_samples_scored_ = &reg.counter("hdd_fleet_samples_scored_total",
                                   "Feature rows scored through the model.");
  m_alarms_ = &reg.counter("hdd_fleet_alarms_total",
                           "Drives transitioned to the alarmed state.");
  m_vote_transitions_ =
      &reg.counter("hdd_fleet_vote_transitions_total",
                   "Sample-level vote flips (healthy<->failing) across "
                   "consecutive outputs of a drive.");
  m_journal_resumes_ = &reg.counter(
      "hdd_fleet_journal_resume_total",
      "resume_from() recoveries replayed out of a telemetry store.");
  m_resume_samples_ = &reg.counter(
      "hdd_fleet_resume_samples_total",
      "Samples replayed from the journal while resuming voting state.");
  m_quarantined_ = &reg.counter(
      "hdd_fleet_quarantined_samples_total",
      "Samples quarantined at ingest (non-finite or out-of-domain values).");
  m_journal_failures_ = &reg.counter(
      "hdd_fleet_journal_append_failures_total",
      "Journal append/flush failures tolerated in degraded mode.");
  m_batch_latency_ = &reg.histogram(
      "hdd_fleet_batch_latency_ns",
      "Wall time of one observe_interval/observe_samples call (ns).");
  m_shadow_samples_ = &reg.counter(
      "hdd_pipeline_shadow_samples_total",
      "Live feature rows scored by a shadow candidate model.");
  m_shadow_divergence_ = &reg.counter(
      "hdd_pipeline_shadow_divergence_total",
      "Shadow rows whose failure vote disagreed with the incumbent's.");
  m_shadow_vote_flips_ = &reg.counter(
      "hdd_pipeline_shadow_vote_flips_total",
      "Shadow pushes after which the rolling window verdict disagreed "
      "with the incumbent's.");
  m_shadow_alarm_delta_ = &reg.counter(
      "hdd_pipeline_shadow_alarm_delta_total",
      "Pushes where exactly one of incumbent/shadow raised its alarm.");
}

FleetScorer::ScoreCtx FleetScorer::make_ctx(bool live) {
  ScoreCtx ctx;
  // Pin the incumbent once per public call: a concurrent hot swap
  // (SwappableScorer) retires the old generation only after every pin
  // drops, and no batch ever mixes generations.
  ctx.pinned = scorer_->pin();
  ctx.model = ctx.pinned != nullptr ? ctx.pinned.get() : scorer_;
  if (!live) return ctx;
  ctx.shadow_pin = shadow_slot_.load();
  if (ctx.shadow_pin == nullptr || ctx.shadow_pin->model == nullptr) {
    return ctx;
  }
  // Single-threaded preamble (callers serialize per scorer): a freshly
  // installed candidate starts from cold voting windows.
  if (ctx.shadow_pin->epoch != shadow_epoch_seen_) {
    shadow_epoch_seen_ = ctx.shadow_pin->epoch;
    shadow_states_.assign(states_.size(), DriveVoteState(config_.vote));
  } else if (shadow_states_.size() < states_.size()) {
    shadow_states_.resize(states_.size(), DriveVoteState(config_.vote));
  }
  ctx.shadow = ctx.shadow_pin->model.get();
  return ctx;
}

void FleetScorer::flush_shadow(const ShadowTally& t) {
  if (t.samples == 0) return;
  sh_samples_.fetch_add(t.samples, std::memory_order_relaxed);
  m_shadow_samples_->inc(t.samples);
  if (t.divergence > 0) {
    sh_divergence_.fetch_add(t.divergence, std::memory_order_relaxed);
    m_shadow_divergence_->inc(t.divergence);
  }
  if (t.vote_flips > 0) {
    sh_vote_flips_.fetch_add(t.vote_flips, std::memory_order_relaxed);
    m_shadow_vote_flips_->inc(t.vote_flips);
  }
  if (t.alarm_delta > 0) {
    sh_alarm_delta_.fetch_add(t.alarm_delta, std::memory_order_relaxed);
    m_shadow_alarm_delta_->inc(t.alarm_delta);
  }
}

void FleetScorer::shadow_push(const ScoreCtx& /*ctx*/, std::size_t i,
                              std::int64_t hour, double shadow_output,
                              double primary_output, bool primary_raised,
                              ShadowTally& tally) {
  ++tally.samples;
  // Sample-level vote comparison through the same float rounding push()
  // applies, so "divergence" means exactly "this row would vote
  // differently".
  const bool p_fail = static_cast<float>(primary_output) < 0.0f;
  const bool s_fail = static_cast<float>(shadow_output) < 0.0f;
  if (p_fail != s_fail) ++tally.divergence;
  const bool shadow_raised = shadow_states_[i].push(hour, shadow_output);
  if (shadow_states_[i].current_decision() !=
      states_[i].current_decision()) {
    ++tally.vote_flips;
  }
  if (shadow_raised != primary_raised) ++tally.alarm_delta;
}

void FleetScorer::set_shadow(std::shared_ptr<const SampleScorer> candidate) {
  if (candidate == nullptr) {
    shadow_slot_.store(nullptr);
    return;
  }
  HDD_REQUIRE(candidate->num_features() == config_.features.size(),
              "shadow model width must match the fleet feature set");
  // One controller installs shadows (the retrain loop); the epoch bump is
  // what tells the next scoring call to reset shadow voting state.
  auto slot = std::make_shared<const ShadowSlot>(
      ShadowSlot{std::move(candidate), ++shadow_installs_});
  shadow_slot_.store(std::move(slot));
}

bool FleetScorer::has_shadow() const {
  return shadow_slot_.load() != nullptr;
}

FleetScorer::ShadowStats FleetScorer::shadow_stats() const {
  ShadowStats s;
  s.samples = sh_samples_.load(std::memory_order_relaxed);
  s.divergence = sh_divergence_.load(std::memory_order_relaxed);
  s.vote_flips = sh_vote_flips_.load(std::memory_order_relaxed);
  s.alarm_delta = sh_alarm_delta_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& FleetScorer::pool() const {
  return config_.pool ? *config_.pool : ThreadPool::global();
}

std::size_t FleetScorer::add_drive(std::string serial) {
  smart::DriveRecord rec;
  rec.serial = serial;
  history_.push_back(std::move(rec));
  if (journal_ != nullptr) {
    journal_ids_.push_back(journal_->register_drive(serial));
  }
  serials_.push_back(std::move(serial));
  states_.emplace_back(config_.vote);
  states_.back().set_metrics(m_vote_transitions_, m_alarms_);
  return states_.size() - 1;
}

void FleetScorer::observe_interval(std::span<const float> xs,
                                   std::int64_t hour) {
  const auto nf = static_cast<std::size_t>(scorer_->num_features());
  HDD_REQUIRE(xs.size() == states_.size() * nf,
              "snapshot must hold one feature row per registered drive");
  const std::size_t n = states_.size();
  if (n == 0) return;
  const obs::ScopedTimer timer(m_batch_latency_);
  m_samples_scored_->inc(n);
  const std::size_t block = config_.block_rows;
  const std::size_t n_blocks = (n + block - 1) / block;
  const ScoreCtx ctx = make_ctx(/*live=*/true);
  scratch_.resize(n);  // reused across intervals; no steady-state allocation
  if (ctx.shadow != nullptr) shadow_scratch_.resize(n);
  pool().parallel_for(0, n_blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(lo + block, n);
    // Blocks own disjoint slices of the scratch buffers and disjoint
    // states, so no cross-thread writes.
    ctx.model->predict_batch(
        xs.subspan(lo * nf, (hi - lo) * nf),
        std::span<double>(scratch_.data() + lo, hi - lo));
    if (ctx.shadow != nullptr) {
      ctx.shadow->predict_batch(
          xs.subspan(lo * nf, (hi - lo) * nf),
          std::span<double>(shadow_scratch_.data() + lo, hi - lo));
    }
    ShadowTally tally;
    for (std::size_t i = lo; i < hi; ++i) {
      const bool raised = states_[i].push(hour, scratch_[i]);
      if (ctx.shadow != nullptr) {
        shadow_push(ctx, i, hour, shadow_scratch_[i], scratch_[i], raised,
                    tally);
      }
    }
    flush_shadow(tally);
  });
}

void FleetScorer::observe_interval(const data::DataMatrix& m,
                                   std::int64_t hour) {
  HDD_REQUIRE(m.rows() == states_.size(),
              "snapshot must hold one row per registered drive");
  HDD_REQUIRE(m.cols() == scorer_->num_features(),
              "snapshot width must match the model");
  observe_interval(m.features(), hour);
}

void FleetScorer::attach_journal(store::TelemetryStore* store) {
  journal_ = store;
  journal_ids_.clear();
  if (journal_ == nullptr) return;
  journal_ids_.reserve(serials_.size());
  for (const std::string& s : serials_) {
    journal_ids_.push_back(journal_->register_drive(s));
  }
}

void FleetScorer::push_history(std::size_t i, const smart::Sample& sample) {
  auto& hist = history_[i].samples;
  hist.push_back(sample);
  // One deterministic trim rule shared by live scoring and resume_from():
  // keep samples within history_hours_ of the newest. Identical windows ->
  // identical feature rows -> identical alarms.
  const std::int64_t min_hour = sample.hour - history_hours_;
  std::size_t drop = 0;
  while (drop + 1 < hist.size() && hist[drop].hour < min_hour) ++drop;
  if (drop > 0) hist.erase(hist.begin(), hist.begin() + drop);
}

void FleetScorer::observe_samples(std::span<const smart::Sample> samples,
                                  std::int64_t hour) {
  HDD_REQUIRE(samples.size() == states_.size(),
              "interval must hold one sample per registered drive");
  const std::size_t n = states_.size();
  if (n == 0) return;
  for (std::size_t i = 0; i < n; ++i) {
    HDD_REQUIRE(samples[i].hour == hour,
                "every sample must carry the interval hour");
  }
  // skip[i]: drop drive i's sample this interval — everywhere (journal,
  // history, voting), so in-memory state never diverges from what a
  // resume_from() over the journal would rebuild.
  std::vector<char> skip(n, 0);
  if (config_.quarantine != QuarantinePolicy::kOff) {
    const bool domain = config_.quarantine == QuarantinePolicy::kFullDomain;
    std::size_t nq = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto fault = smart::classify_sample(samples[i], domain);
      if (fault == smart::SampleFault::kNone) continue;
      skip[i] = 1;
      ++nq;
      log_message(LogLevel::kWarn,
                  "fleet: quarantined sample for drive " + serials_[i] +
                      " at hour " + std::to_string(hour) + " (" +
                      smart::sample_fault_name(fault) + ")");
    }
    if (nq > 0) {
      m_quarantined_->inc(nq);
      quarantined_ += nq;
    }
  }
  if (journal_ != nullptr) {
    // Durability before scoring: the sample is on disk before it can raise
    // an alarm. Skipping hours the store already holds makes re-observing
    // an interval after resume_from() idempotent. An append failure
    // (sealed/full segment, I/O error) downgrades to a skip: the drive
    // misses this interval, the fleet keeps scoring. A simulated crash
    // (io::CrashPoint, deliberately not a std::exception) still propagates.
    for (std::size_t i = 0; i < n; ++i) {
      if (skip[i] || journal_->drive(journal_ids_[i]).last_hour >= hour) {
        continue;
      }
      try {
        journal_->append(journal_ids_[i], samples[i]);
      } catch (const std::exception& e) {
        skip[i] = 1;
        degraded_ = true;
        ++journal_failures_;
        m_journal_failures_->inc();
        log_message(LogLevel::kWarn,
                    "fleet: journal append failed for drive " + serials_[i] +
                        " at hour " + std::to_string(hour) +
                        ", skipping sample (degraded): " + e.what());
      }
    }
    try {
      journal_->flush();
    } catch (const std::exception& e) {
      // Appended but not durable: scoring proceeds; a crash before the next
      // successful flush loses at most this tail, which resume_from()'s
      // partial-interval rule already handles.
      degraded_ = true;
      ++journal_failures_;
      m_journal_failures_->inc();
      log_message(LogLevel::kWarn,
                  std::string("fleet: journal flush failed (degraded): ") +
                      e.what());
    }
  }
  const obs::ScopedTimer timer(m_batch_latency_);
  const auto nf = static_cast<std::size_t>(config_.features.size());
  const std::size_t block = config_.block_rows;
  const std::size_t n_blocks = (n + block - 1) / block;
  const ScoreCtx ctx = make_ctx(/*live=*/true);
  scratch_.resize(n);
  if (ctx.shadow != nullptr) shadow_scratch_.resize(n);
  std::atomic<std::size_t> scored{0};
  pool().parallel_for(0, n_blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(lo + block, n);
    // Blocks own disjoint index ranges, history slots and scratch slices;
    // skipped rows are compacted out of the batch but keep their states
    // untouched.
    std::vector<std::size_t> rows;
    rows.reserve(hi - lo);
    std::vector<float> xbuf;
    xbuf.reserve((hi - lo) * nf);
    for (std::size_t i = lo; i < hi; ++i) {
      if (skip[i]) continue;
      rows.push_back(i);
      push_history(i, samples[i]);
      const std::size_t last = history_[i].samples.size() - 1;
      smart::extract_features_block(history_[i], last, last + 1,
                                    config_.features, xbuf);
    }
    if (rows.empty()) return;
    ctx.model->predict_batch(
        xbuf, std::span<double>(scratch_.data() + lo, rows.size()));
    if (ctx.shadow != nullptr) {
      ctx.shadow->predict_batch(
          xbuf, std::span<double>(shadow_scratch_.data() + lo, rows.size()));
    }
    ShadowTally tally;
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const bool raised = states_[rows[k]].push(hour, scratch_[lo + k]);
      if (ctx.shadow != nullptr) {
        shadow_push(ctx, rows[k], hour, shadow_scratch_[lo + k],
                    scratch_[lo + k], raised, tally);
      }
    }
    flush_shadow(tally);
    scored.fetch_add(rows.size(), std::memory_order_relaxed);
  });
  m_samples_scored_->inc(scored.load());
}

FleetScorer::IngestResult FleetScorer::ingest_drive(
    std::size_t i, std::span<const smart::Sample> samples) {
  HDD_REQUIRE(i < states_.size(), "ingest for an unregistered drive");
  IngestResult res;
  if (samples.empty()) return res;
  const obs::ScopedSpan span("fleet.ingest", "samples",
                             static_cast<std::uint64_t>(samples.size()));
  const obs::ScopedTimer timer(m_batch_latency_);
  std::vector<smart::Sample>& kept = ingest_buf_;
  kept.clear();
  kept.reserve(samples.size());
  std::int64_t last = -1;
  if (journal_ != nullptr) {
    last = journal_->drive(journal_ids_[i]).last_hour;
  } else if (!history_[i].samples.empty()) {
    last = history_[i].samples.back().hour;
  }
  const bool domain = config_.quarantine == QuarantinePolicy::kFullDomain;
  for (const smart::Sample& s : samples) {
    if (s.hour <= last) {
      ++res.stale;  // re-sent after a resume, or out of order: drop
      continue;
    }
    if (config_.quarantine != QuarantinePolicy::kOff &&
        smart::classify_sample(s, domain) != smart::SampleFault::kNone) {
      ++res.quarantined;
      continue;
    }
    kept.push_back(s);
    last = s.hour;
  }
  if (res.quarantined > 0) {
    m_quarantined_->inc(res.quarantined);
    quarantined_ += res.quarantined;
  }
  if (kept.empty()) return res;
  if (journal_ != nullptr) {
    // Durability (to the OS, not the platter) before scoring. A failure
    // skips the whole batch in memory; chunks that landed before the
    // failure are stale-skipped on the next send, and degraded() records
    // that alarms since may rest on partial telemetry. A simulated crash
    // (io::CrashPoint, not a std::exception) still propagates.
    try {
      journal_->append_batch(journal_ids_[i], kept.data(), kept.size());
      journal_->flush_to_os();
    } catch (const std::exception& e) {
      degraded_ = true;
      ++journal_failures_;
      m_journal_failures_->inc();
      res.journal_failed = true;
      log_message(LogLevel::kWarn,
                  "fleet: journal batch append failed for drive " +
                      serials_[i] + ", dropping batch (degraded): " +
                      e.what());
      return res;
    }
  }
  {
    const obs::ScopedSpan score_span("fleet.score", "samples",
                                     static_cast<std::uint64_t>(kept.size()));
    replay_drive_samples(make_ctx(/*live=*/true), i, kept);
  }
  res.accepted = kept.size();
  return res;
}

void FleetScorer::replay_drive_samples(
    const ScoreCtx& ctx, std::size_t i,
    std::span<const smart::Sample> samples) {
  // No early exit at the first alarm: history must stay current through the
  // whole log so post-resume feature rows match the uninterrupted run
  // (push() is a no-op once alarmed, exactly as in live streaming).
  const std::size_t block = config_.block_rows;
  std::vector<float> xbuf;
  std::vector<double> obuf;
  std::vector<double> sbuf;
  ShadowTally tally;
  for (std::size_t base = 0; base < samples.size(); base += block) {
    const std::size_t hi = std::min(base + block, samples.size());
    xbuf.clear();
    for (std::size_t k = base; k < hi; ++k) {
      push_history(i, samples[k]);
      const std::size_t last = history_[i].samples.size() - 1;
      smart::extract_features_block(history_[i], last, last + 1,
                                    config_.features, xbuf);
    }
    obuf.resize(hi - base);
    ctx.model->predict_batch(xbuf, obuf);
    if (ctx.shadow != nullptr) {
      sbuf.resize(hi - base);
      ctx.shadow->predict_batch(xbuf, sbuf);
    }
    m_samples_scored_->inc(hi - base);
    for (std::size_t k = base; k < hi; ++k) {
      const bool raised = states_[i].push(samples[k].hour, obuf[k - base]);
      if (ctx.shadow != nullptr) {
        shadow_push(ctx, i, samples[k].hour, sbuf[k - base], obuf[k - base],
                    raised, tally);
      }
    }
  }
  flush_shadow(tally);
}

FleetScorer::ResumeResult FleetScorer::resume_from(store::TelemetryStore& store,
                                                   bool drop_partial_tail) {
  const std::size_t n_store = store.drive_count();
  if (states_.empty()) {
    for (std::uint32_t id = 0; id < n_store; ++id) {
      add_drive(store.drive(id).serial);
    }
  } else {
    HDD_REQUIRE(states_.size() == n_store,
                "registry size must match the store");
    for (std::uint32_t id = 0; id < n_store; ++id) {
      HDD_REQUIRE(serials_[id] == store.drive(id).serial,
                  "registry must match the store drive for drive");
    }
  }
  reset();

  std::vector<std::vector<smart::Sample>> per(states_.size());
  for (std::uint32_t id = 0; id < n_store; ++id) {
    per[id].reserve(store.drive(id).n_samples);
  }
  store.scan([&](std::uint32_t drive, const smart::Sample& s) {
    per[drive].push_back(s);
  });

  std::int64_t hmax = -1;
  for (const auto& v : per) {
    if (!v.empty()) hmax = std::max(hmax, v.back().hour);
  }
  std::size_t partial_dropped = 0;
  if (drop_partial_tail && hmax >= 0) {
    bool all_reached = true;
    for (const auto& v : per) {
      if (v.empty() || v.back().hour != hmax) {
        all_reached = false;
        break;
      }
    }
    if (!all_reached) {
      // A crash mid-append left hour hmax on disk for only some drives.
      // Drop the torn interval everywhere; re-observing hmax completes it.
      for (auto& v : per) {
        while (!v.empty() && v.back().hour == hmax) {
          v.pop_back();
          ++partial_dropped;
        }
      }
    }
  }

  // Replayed telemetry was already scored live once; shadows never see it
  // (live=false), so the parallel replay touches no shadow state.
  const ScoreCtx ctx = make_ctx(/*live=*/false);
  pool().parallel_for(0, per.size(), [&](std::size_t i) {
    replay_drive_samples(ctx, i, per[i]);
  });

  ResumeResult r;
  r.drives = per.size();
  r.partial_dropped = partial_dropped;
  for (const auto& v : per) {
    r.samples_replayed += v.size();
    if (!v.empty()) r.last_hour = std::max(r.last_hour, v.back().hour);
  }
  m_journal_resumes_->inc();
  m_resume_samples_->inc(r.samples_replayed);
  return r;
}

std::size_t FleetScorer::alarm_count() const {
  std::size_t n = 0;
  for (const DriveVoteState& s : states_) n += s.alarmed() ? 1 : 0;
  return n;
}

std::vector<std::size_t> FleetScorer::alarmed_drives() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].alarmed()) out.push_back(i);
  }
  return out;
}

void FleetScorer::reset() {
  for (DriveVoteState& s : states_) s.reset();
  for (smart::DriveRecord& h : history_) h.samples.clear();
}

eval::DriveOutcome FleetScorer::replay_drive(const SampleScorer& model,
                                             const smart::DriveRecord& drive,
                                             std::size_t begin) const {
  DriveVoteState st(config_.vote);
  st.set_metrics(m_vote_transitions_, m_alarms_);
  const std::size_t n = drive.samples.size();
  if (begin >= n) return st.outcome();
  const std::size_t block = config_.block_rows;
  std::vector<float> xbuf;
  std::vector<double> obuf;
  for (std::size_t base = begin; base < n && !st.alarmed(); base += block) {
    const std::size_t hi = std::min(base + block, n);
    xbuf.clear();
    smart::extract_features_block(drive, base, hi, config_.features, xbuf);
    obuf.resize(hi - base);
    model.predict_batch(xbuf, obuf);
    m_samples_scored_->inc(hi - base);
    for (std::size_t i = base; i < hi; ++i) {
      if (st.push(drive.samples[i].hour, obuf[i - base])) break;  // alarm
    }
  }
  st.finish();
  return st.outcome();
}

std::vector<eval::DriveOutcome> FleetScorer::replay(
    const data::DriveDataset& dataset) const {
  // Pin once per call: the whole replay scores through one generation.
  const auto pin = scorer_->pin();
  const SampleScorer& model = pin != nullptr ? *pin : *scorer_;
  std::vector<eval::DriveOutcome> out(dataset.drives.size());
  pool().parallel_for(0, dataset.drives.size(), [&](std::size_t i) {
    out[i] = replay_drive(model, dataset.drives[i], 0);
  });
  return out;
}

eval::EvalResult FleetScorer::evaluate(const data::DriveDataset& dataset,
                                       const data::DatasetSplit& split) const {
  // The same jobs eval::score_dataset scores: good drives over their
  // chronological test portion, failed drives over their whole record.
  struct Job {
    std::size_t drive;
    std::size_t begin;
  };
  std::vector<Job> jobs;
  for (std::size_t k = 0; k < split.good_drives.size(); ++k) {
    const auto& d = dataset.drives[split.good_drives[k]];
    const std::size_t begin = split.good_test_begin[k];
    if (begin >= d.samples.size()) continue;
    jobs.push_back({split.good_drives[k], begin});
  }
  for (std::size_t di : split.test_failed) {
    if (dataset.drives[di].empty()) continue;
    jobs.push_back({di, 0});
  }

  const auto pin = scorer_->pin();
  const SampleScorer& model = pin != nullptr ? *pin : *scorer_;
  std::vector<eval::DriveOutcome> outcomes(jobs.size());
  pool().parallel_for(0, jobs.size(), [&](std::size_t j) {
    outcomes[j] =
        replay_drive(model, dataset.drives[jobs[j].drive], jobs[j].begin);
  });

  eval::EvalResult r;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& d = dataset.drives[jobs[j].drive];
    const auto& o = outcomes[j];
    if (d.failed) {
      ++r.n_failed;
      if (o.alarmed) {
        ++r.detections;
        r.tia_hours.push_back(static_cast<double>(d.fail_hour - o.alarm_hour));
      }
    } else {
      ++r.n_good;
      if (o.alarmed) ++r.false_alarms;
    }
  }
  return r;
}

}  // namespace hdd::core
