// Model persistence: line-oriented text formats so a trained predictor can
// be shipped to the monitoring hosts, plus verify-on-load.
//
// Formats (discriminated by their first line):
//   hddpred-tree v1    — decision trees (format detailed below)
//   hddpred-forest v1  — random forests (forest/random_forest.h)
//   hddpred-mlp v1     — BP ANN (ann/mlp.h)
//
// Tree format:
//   hddpred-tree v1
//   task <classification|regression>
//   features <n>
//   nodes <count>
//   <left> <right> <feature> <threshold> <value> <weight> <count> <gain>
//   ... one line per node, preorder, root first ...
//
// Every load runs the static verifier (analysis/verifier.h) over the
// deserialized model by default: kWarn logs the diagnostics and returns
// the model anyway, kStrict throws DataError when the verifier finds an
// error-severity defect (unreachable leaf, dead split, out-of-range leaf
// value, non-finite weight), kOff skips verification — for callers that
// lint explicitly, like `hddpredict lint`.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <variant>

#include "analysis/verifier.h"
#include "ann/mlp.h"
#include "forest/random_forest.h"
#include "tree/tree.h"

namespace hdd::io {
class Env;
}  // namespace hdd::io

namespace hdd::core {

class SampleScorer;

enum class VerifyMode { kOff, kWarn, kStrict };

struct LoadOptions {
  VerifyMode verify = VerifyMode::kWarn;
  // Starting box for the verifier's interval analysis; unbounded when
  // empty (see analysis::FeatureDomains::for_feature_set for the SMART
  // attribute domains).
  analysis::FeatureDomains domains;
};

// The *_file functions route all filesystem access through `env`
// (nullptr = io::Env::posix()), so model persistence participates in the
// same fault-injection and retry discipline as the telemetry store.
void save_tree(const tree::DecisionTree& tree, std::ostream& os);
void save_tree_file(const tree::DecisionTree& tree, const std::string& path,
                    io::Env* env = nullptr);

// Throws DataError on malformed input, and in strict mode on a model the
// verifier flags with an error.
tree::DecisionTree load_tree(std::istream& is, const LoadOptions& options = {});
tree::DecisionTree load_tree_file(const std::string& path,
                                  const LoadOptions& options = {},
                                  io::Env* env = nullptr);

// Any persisted model, discriminated by its header line.
using AnyModel =
    std::variant<tree::DecisionTree, forest::RandomForest, ann::MlpModel>;

// "tree" / "forest" / "mlp".
const char* model_kind_name(const AnyModel& m);
int model_num_features(const AnyModel& m);

// Sniffs the header line and loads whichever model the stream holds.
// Throws DataError on unknown headers or malformed bodies, and in strict
// mode on verifier errors.
AnyModel load_model(std::istream& is, const LoadOptions& options = {});
AnyModel load_model_file(const std::string& path,
                         const LoadOptions& options = {},
                         io::Env* env = nullptr);

// Runs the static verifier appropriate to the model kind.
analysis::Report verify_model(const AnyModel& m,
                              const analysis::VerifyOptions& options = {},
                              const std::string& model_path = "model");

// Wraps any loaded model behind the scorer interface (the hot-swap restore
// path: generation records round-trip through save()/load_model()).
std::unique_ptr<SampleScorer> make_model_scorer(AnyModel m);

// Persists a trained scorer in its native format (SampleScorer::save);
// throws ConfigError for backends without one (AdaBoost).
void save_scorer_file(const SampleScorer& scorer, const std::string& path,
                      io::Env* env = nullptr);

}  // namespace hdd::core
