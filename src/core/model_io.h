// Model persistence: a line-oriented text format for decision trees so a
// trained predictor can be shipped to the monitoring hosts.
//
// Format:
//   hddpred-tree v1
//   task <classification|regression>
//   features <n>
//   nodes <count>
//   <left> <right> <feature> <threshold> <value> <weight> <count> <gain>
//   ... one line per node, preorder, root first ...
#pragma once

#include <iosfwd>
#include <string>

#include "tree/tree.h"

namespace hdd::core {

void save_tree(const tree::DecisionTree& tree, std::ostream& os);
void save_tree_file(const tree::DecisionTree& tree, const std::string& path);

// Throws DataError on malformed input.
tree::DecisionTree load_tree(std::istream& is);
tree::DecisionTree load_tree_file(const std::string& path);

}  // namespace hdd::core
