// SwappableScorer — an RCU-style indirection that lets a running
// FleetScorer's model be replaced atomically while scoring calls are in
// flight.
//
// The update pipeline promotes a freshly trained candidate by swapping the
// generation slot: readers snapshot one `RcuSlot` (a spinlocked shared_ptr
// — see rcu_slot.h for why not std::atomic<std::shared_ptr>) and the
// snapshot keeps the outgoing model alive until the last in-flight call
// drops it. A
// scoring pass pins the generation once up front (SampleScorer::pin()), so
// a promotion landing mid-batch never mixes two models' votes within one
// call — alarms stay deterministic per generation.
#pragma once

#include <cstdint>
#include <memory>

#include "core/rcu_slot.h"
#include "core/scorer.h"

namespace hdd::core {

class SwappableScorer final : public SampleScorer {
 public:
  // Starts at `generation` (0 = the seed model, before any promotion).
  explicit SwappableScorer(std::shared_ptr<const SampleScorer> initial,
                           std::uint64_t generation = 0);

  // The live model (owning snapshot; safe to use across a concurrent swap).
  std::shared_ptr<const SampleScorer> current() const;
  // The live generation number.
  std::uint64_t generation() const;

  // Atomically publishes `next` as generation `generation`. The feature
  // width must match the initial model's — every consumer sized its
  // buffers against num_features() at attach time. Any thread may call
  // this; readers never observe a half-installed generation.
  void swap(std::shared_ptr<const SampleScorer> next, std::uint64_t generation);

  double predict(std::span<const float> x) const override;
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override;
  int num_features() const override { return num_features_; }
  std::string summary() const override;
  // Null by design: a raw tree pointer could dangle across a swap. Callers
  // needing the tree must hold a pin() and ask that snapshot.
  const tree::DecisionTree* tree() const override { return nullptr; }
  std::shared_ptr<const SampleScorer> pin() const override;
  void save(std::ostream& os) const override;

 private:
  struct Generation {
    std::shared_ptr<const SampleScorer> model;
    std::uint64_t number = 0;
  };

  std::shared_ptr<const Generation> load() const { return slot_.load(); }

  RcuSlot<const Generation> slot_;
  int num_features_;
};

// Adapts a scorer owned elsewhere (e.g. a FleetRuntimeConfig::scorer raw
// pointer) to the shared_ptr the swap slot needs, without taking ownership.
// The caller guarantees `scorer` outlives every generation that aliases it.
std::shared_ptr<const SampleScorer> unowned_scorer(const SampleScorer* scorer);

}  // namespace hdd::core
