#include "core/scorer.h"

#include <sstream>
#include <utility>

#include "ann/mlp.h"
#include "common/error.h"
#include "core/predictor.h"
#include "forest/adaboost.h"
#include "forest/random_forest.h"
#include "tree/tree.h"

namespace hdd::core {

void SampleScorer::save(std::ostream&) const {
  throw ConfigError(summary() + ": this model type has no persistence "
                    "format");
}

void SampleScorer::predict_batch(const data::DataMatrix& m,
                                 std::span<double> out) const {
  HDD_REQUIRE(m.rows() == out.size(),
              "predict_batch output size must match the matrix rows");
  HDD_REQUIRE(m.cols() == num_features(),
              "predict_batch matrix width must match the model");
  predict_batch(m.features(), out);
}

namespace {

class TreeScorer final : public SampleScorer {
 public:
  TreeScorer(const data::DataMatrix& m, tree::Task task,
             const tree::TreeParams& params) {
    tree_.fit(m, task, params);
  }

  explicit TreeScorer(tree::DecisionTree tree) : tree_(std::move(tree)) {}

  double predict(std::span<const float> x) const override {
    return tree_.predict(x);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    tree_.predict_batch(xs, out);
  }
  int num_features() const override { return tree_.num_features(); }
  const tree::DecisionTree* tree() const override { return &tree_; }
  void save(std::ostream& os) const override { tree_.save(os); }
  std::string summary() const override {
    std::ostringstream os;
    os << "tree: " << tree_.node_count() << " nodes, depth " << tree_.depth();
    return os.str();
  }

 private:
  tree::DecisionTree tree_;
};

class ForestScorer final : public SampleScorer {
 public:
  ForestScorer(const data::DataMatrix& m, const forest::ForestConfig& config)
      : num_features_(m.cols()) {
    forest_.fit(m, tree::Task::kClassification, config);
  }

  explicit ForestScorer(forest::RandomForest forest)
      : forest_(std::move(forest)), num_features_(forest_.num_features()) {}

  double predict(std::span<const float> x) const override {
    return forest_.predict(x);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    forest_.predict_batch(xs, out);
  }
  int num_features() const override { return num_features_; }
  void save(std::ostream& os) const override { forest_.save(os); }
  std::string summary() const override {
    std::ostringstream os;
    os << "forest: " << forest_.tree_count() << " trees";
    return os.str();
  }

 private:
  forest::RandomForest forest_;
  int num_features_;
};

class AdaBoostScorer final : public SampleScorer {
 public:
  AdaBoostScorer(const data::DataMatrix& m,
                 const forest::AdaBoostConfig& config)
      : num_features_(m.cols()) {
    boost_.fit(m, config);
  }

  double predict(std::span<const float> x) const override {
    return boost_.predict(x);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    boost_.predict_batch(xs, out);
  }
  int num_features() const override { return num_features_; }
  std::string summary() const override {
    std::ostringstream os;
    os << "adaboost: " << boost_.round_count() << " rounds";
    return os.str();
  }

 private:
  forest::AdaBoost boost_;
  int num_features_;
};

class MlpScorer final : public SampleScorer {
 public:
  MlpScorer(const data::DataMatrix& m, const ann::MlpConfig& config) {
    mlp_.fit(m, config);
  }

  explicit MlpScorer(ann::MlpModel mlp) : mlp_(std::move(mlp)) {}

  double predict(std::span<const float> x) const override {
    return mlp_.predict(x);
  }
  void predict_batch(std::span<const float> xs,
                     std::span<double> out) const override {
    mlp_.predict_batch(xs, out);
  }
  int num_features() const override { return mlp_.num_features(); }
  void save(std::ostream& os) const override { mlp_.save(os); }
  std::string summary() const override {
    std::ostringstream os;
    os << "mlp: " << mlp_.num_features() << '-' << mlp_.hidden_units()
       << "-1";
    return os.str();
  }

 private:
  ann::MlpModel mlp_;
};

}  // namespace

std::unique_ptr<SampleScorer> fit_scorer(const PredictorConfig& config,
                                         const data::DataMatrix& matrix) {
  switch (config.model) {
    case ModelType::kClassificationTree:
      return std::make_unique<TreeScorer>(matrix, tree::Task::kClassification,
                                          config.tree_params);
    case ModelType::kRegressionTree:
      return std::make_unique<TreeScorer>(matrix, tree::Task::kRegression,
                                          config.tree_params);
    case ModelType::kBpAnn:
      return std::make_unique<MlpScorer>(matrix, config.ann);
    case ModelType::kRandomForest:
      return std::make_unique<ForestScorer>(matrix, config.forest);
    case ModelType::kAdaBoost:
      return std::make_unique<AdaBoostScorer>(matrix, config.adaboost);
  }
  throw ConfigError("fit_scorer: unknown ModelType");
}

std::unique_ptr<SampleScorer> make_tree_scorer(tree::DecisionTree tree) {
  HDD_REQUIRE(tree.trained(), "make_tree_scorer needs a trained tree");
  return std::make_unique<TreeScorer>(std::move(tree));
}

std::unique_ptr<SampleScorer> make_forest_scorer(forest::RandomForest forest) {
  HDD_REQUIRE(forest.trained(), "make_forest_scorer needs a trained forest");
  return std::make_unique<ForestScorer>(std::move(forest));
}

std::unique_ptr<SampleScorer> make_mlp_scorer(ann::MlpModel mlp) {
  HDD_REQUIRE(mlp.trained(), "make_mlp_scorer needs a trained network");
  return std::make_unique<MlpScorer>(std::move(mlp));
}

}  // namespace hdd::core
