#include "core/runtime.h"

#include <sstream>
#include <utility>

#include "common/error.h"
#include "obs/trace.h"
#include "smart/features.h"

namespace hdd::core {

FleetRuntime::FleetRuntime(FleetRuntimeConfig config) {
  HDD_REQUIRE(config.model_path.empty() != (config.scorer == nullptr),
              "exactly one of model_path and scorer must be set");
  if (!config.model_path.empty()) {
    owned_scorer_ =
        make_tree_scorer(load_tree_file(config.model_path, config.load));
    scorer_ = owned_scorer_.get();
  } else {
    scorer_ = config.scorer;
  }

  if (config.features.size() == 0) config.features = smart::stat13_features();
  HDD_REQUIRE(scorer_->num_features() == config.features.size(),
              "model feature count does not match the feature layout");

  if (!config.store_dir.empty()) {
    store_ = std::make_unique<store::TelemetryStore>(config.store_dir,
                                                     config.store);
  }

  if (store_ != nullptr && store_->latest_generation().has_value()) {
    // A promoted generation in the journal supersedes the configured model
    // even when this runtime is not itself hot-swappable — this is what
    // makes any restart after a promotion resume to the promoted model,
    // not the stale seed.
    const store::GenerationRecord& rec = *store_->latest_generation();
    std::istringstream is(rec.model_text);
    LoadOptions off;  // linted at promotion time; load as-is
    off.verify = VerifyMode::kOff;
    owned_scorer_ = make_model_scorer(load_model(is, off));
    HDD_REQUIRE(owned_scorer_->num_features() == config.features.size(),
                "journaled generation model does not match the feature "
                "layout");
    scorer_ = owned_scorer_.get();
    generation_ = rec.generation;
  }

  if (config.hot_swappable) {
    std::shared_ptr<const SampleScorer> base =
        owned_scorer_ != nullptr
            ? std::shared_ptr<const SampleScorer>(std::move(owned_scorer_))
            : unowned_scorer(scorer_);
    swappable_ = std::make_unique<SwappableScorer>(std::move(base),
                                                   generation_);
    scorer_ = swappable_.get();
  }

  FleetScorerConfig fc;
  fc.features = std::move(config.features);
  fc.vote = config.vote;
  fc.block_rows = config.block_rows;
  fc.history_hours = config.history_hours;
  fc.quarantine = config.quarantine;
  fc.pool = config.pool;
  fc.metrics = config.metrics;
  fleet_ = std::make_unique<FleetScorer>(*scorer_, std::move(fc));
  if (store_ != nullptr) fleet_->attach_journal(store_.get());
}

store::TelemetryStore& FleetRuntime::store() {
  HDD_REQUIRE(store_ != nullptr, "runtime was built without a store");
  return *store_;
}

const store::TelemetryStore& FleetRuntime::store() const {
  HDD_REQUIRE(store_ != nullptr, "runtime was built without a store");
  return *store_;
}

FleetScorer::ResumeResult FleetRuntime::resume(bool drop_partial_tail) {
  const obs::ScopedSpan span("runtime.resume");
  return fleet_->resume_from(store(), drop_partial_tail);
}

void FleetRuntime::seal() {
  if (store_ != nullptr) store_->flush();
}

}  // namespace hdd::core
