// Backpropagation artificial neural network — the paper's control model
// (their previous state of the art, MSST'13 [11]).
//
// A single-hidden-layer sigmoid MLP trained with plain stochastic gradient
// descent on squared error, matching the paper's setup: topology
// input-hidden-1 (e.g. 13-13-1 for the statistical feature set, 12-20-1 and
// 19-30-1 for the others), learning rate 0.1, at most 400 iterations.
//
// Inputs are standardized internally (the scaler is learned on the training
// matrix); predict() returns a margin in [-1, 1] with the same sign
// convention as the trees: negative = failed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace hdd::ann {

struct MlpConfig {
  int hidden = 13;
  double learning_rate = 0.1;
  int epochs = 400;
  // Early-stop when the epoch's mean weighted squared error improves by
  // less than `tol` (0 disables).
  double tol = 1e-6;
  std::uint64_t seed = 2024;

  void validate() const;
};

class MlpModel {
 public:
  MlpModel() = default;

  // Trains on the weighted matrix; targets are the +1/-1 convention and are
  // internally mapped to sigmoid range.
  void fit(const data::DataMatrix& m, const MlpConfig& config);

  bool trained() const { return !w1_.empty(); }
  int num_features() const { return inputs_; }
  int hidden_units() const { return hidden_; }

  // Margin in [-1, 1]; negative = failed.
  double predict(std::span<const float> x) const;

  // Batch prediction over row-major rows (`xs.size()` must equal
  // `out.size() * num_features()`). Evaluates the layers row by row against
  // a reused activation buffer — no per-call allocation — with the same
  // accumulation order as predict(), so outputs are bit-identical.
  void predict_batch(std::span<const float> xs, std::span<double> out) const;
  void predict_batch(const data::DataMatrix& m, std::span<double> out) const;

  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  // Line-oriented text persistence ("hddpred-mlp v1").
  void save(std::ostream& os) const;
  static MlpModel load(std::istream& is);  // throws DataError on bad input

 private:
  double forward(std::span<const float> x, std::vector<double>& hidden_act)
      const;

  int inputs_ = 0;
  int hidden_ = 0;
  // Layer 1: hidden x inputs weights + hidden biases; layer 2: hidden
  // weights + 1 bias.
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
  // Standardization learned from the training matrix.
  std::vector<double> feat_mean_, feat_scale_;
};

}  // namespace hdd::ann
