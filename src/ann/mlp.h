// Backpropagation artificial neural network — the paper's control model
// (their previous state of the art, MSST'13 [11]).
//
// A single-hidden-layer sigmoid MLP trained with plain stochastic gradient
// descent on squared error, matching the paper's setup: topology
// input-hidden-1 (e.g. 13-13-1 for the statistical feature set, 12-20-1 and
// 19-30-1 for the others), learning rate 0.1, at most 400 iterations.
//
// Inputs are standardized internally (the scaler is learned on the training
// matrix); predict() returns a margin in [-1, 1] with the same sign
// convention as the trees: negative = failed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace hdd::ann {

// Hard ceilings a persisted MLP file may declare before load() rejects it
// with hdd::ParseError: per-layer width, and the w1 element count
// (hidden * inputs), checked *before* any weight vector is allocated so a
// hostile "inputs 60000 hidden 60000" header cannot drive a multi-GiB
// allocation.
inline constexpr int kMaxLoadWidth = 65536;
inline constexpr std::uint64_t kMaxLoadWeights = 1u << 24;

struct MlpConfig {
  int hidden = 13;
  double learning_rate = 0.1;
  int epochs = 400;
  // Early-stop when the epoch's mean weighted squared error improves by
  // less than `tol` (0 disables).
  double tol = 1e-6;
  std::uint64_t seed = 2024;

  void validate() const;
};

class MlpModel {
 public:
  MlpModel() = default;

  // Trains on the weighted matrix; targets are the +1/-1 convention and are
  // internally mapped to sigmoid range.
  void fit(const data::DataMatrix& m, const MlpConfig& config);

  bool trained() const { return !w1_.empty(); }
  int num_features() const { return inputs_; }
  int hidden_units() const { return hidden_; }

  // Margin in [-1, 1]; negative = failed.
  double predict(std::span<const float> x) const;

  // Batch prediction over row-major rows (`xs.size()` must equal
  // `out.size() * num_features()`). Evaluates the layers row by row against
  // a reused activation buffer — no per-call allocation — with the same
  // accumulation order as predict(), so outputs are bit-identical.
  void predict_batch(std::span<const float> xs, std::span<double> out) const;
  void predict_batch(const data::DataMatrix& m, std::span<double> out) const;

  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  // Line-oriented text persistence ("hddpred-mlp v1").
  void save(std::ostream& os) const;
  static MlpModel load(std::istream& is);  // throws DataError on bad input

  // Read-only parameter views for the static verifier (analysis/) and
  // tests. Layer 1 weights are row-major hidden x inputs.
  std::span<const double> layer1_weights() const { return w1_; }
  std::span<const double> layer1_biases() const { return b1_; }
  std::span<const double> layer2_weights() const { return w2_; }
  double layer2_bias() const { return b2_; }
  // Input scaler: standardized = (x - input_offset) * input_scale.
  std::span<const double> input_offset() const { return feat_mean_; }
  std::span<const double> input_scale() const { return feat_scale_; }

  // Assembles a model directly from its parameters (tests, model surgery).
  // Validates shapes only — semantic soundness (finite weights, live
  // units) is analysis::verify_mlp's job, so degenerate models can be
  // constructed on purpose. Throws ConfigError on shape mismatch.
  static MlpModel from_weights(int inputs, int hidden,
                               std::vector<double> w1, std::vector<double> b1,
                               std::vector<double> w2, double b2,
                               std::vector<double> offset,
                               std::vector<double> scale);

 private:
  double forward(std::span<const float> x, std::vector<double>& hidden_act)
      const;

  int inputs_ = 0;
  int hidden_ = 0;
  // Layer 1: hidden x inputs weights + hidden biases; layer 2: hidden
  // weights + 1 bias.
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
  // Standardization learned from the training matrix.
  std::vector<double> feat_mean_, feat_scale_;
};

}  // namespace hdd::ann
