#include "ann/mlp.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace hdd::ann {

void MlpConfig::validate() const {
  HDD_REQUIRE(hidden >= 1, "hidden must be >= 1");
  HDD_REQUIRE(learning_rate > 0.0, "learning_rate must be positive");
  HDD_REQUIRE(epochs >= 1, "epochs must be >= 1");
  HDD_REQUIRE(tol >= 0.0, "tol must be non-negative");
}

namespace {
inline double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void MlpModel::fit(const data::DataMatrix& m, const MlpConfig& config) {
  config.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit an MLP on an empty matrix");
  inputs_ = m.cols();
  hidden_ = config.hidden;

  // Min-max scale features to [0, 1] over the observed training range,
  // matching the original BP ANN implementation [11]. (This compresses
  // heavy-tailed counters much more than z-scoring would — a real
  // characteristic, and weakness, of the historical baseline.)
  const auto ni = static_cast<std::size_t>(inputs_);
  feat_mean_.assign(ni, 0.0);   // reused as the per-feature minimum
  feat_scale_.assign(ni, 1.0);  // reused as 1 / (max - min)
  std::vector<double> lo(ni, 1e300), hi(ni, -1e300);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t f = 0; f < ni; ++f) {
      lo[f] = std::min(lo[f], static_cast<double>(row[f]));
      hi[f] = std::max(hi[f], static_cast<double>(row[f]));
    }
  }
  for (std::size_t f = 0; f < ni; ++f) {
    feat_mean_[f] = lo[f];
    const double range = hi[f] - lo[f];
    feat_scale_[f] = range > 1e-9 ? 1.0 / range : 0.0;  // constant: drop
  }

  const auto nh = static_cast<std::size_t>(hidden_);
  Rng rng(config.seed);
  auto init = [&](std::size_t fan_in) {
    return rng.uniform(-1.0, 1.0) / std::sqrt(static_cast<double>(fan_in));
  };
  w1_.resize(nh * ni);
  b1_.assign(nh, 0.0);
  w2_.resize(nh);
  b2_ = 0.0;
  for (double& w : w1_) w = init(ni);
  for (double& w : w2_) w = init(nh);

  // Normalize sample weights to mean 1 so the learning rate keeps its
  // usual meaning regardless of the prior/loss reweighting.
  double mean_w = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) mean_w += m.weight(r);
  mean_w /= static_cast<double>(m.rows());
  const double inv_mean_w = mean_w > 0.0 ? 1.0 / mean_w : 1.0;

  std::vector<double> xbuf(ni), hact(nh);
  double prev_mse = 1e300;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(m.rows());
    double se = 0.0, wsum = 0.0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t r = order[k];
      const auto row = m.row(r);
      for (std::size_t f = 0; f < ni; ++f) {
        xbuf[f] = (row[f] - feat_mean_[f]) * feat_scale_[f];
      }
      // Forward.
      for (std::size_t h = 0; h < nh; ++h) {
        double z = b1_[h];
        const double* wrow = w1_.data() + h * ni;
        for (std::size_t f = 0; f < ni; ++f) z += wrow[f] * xbuf[f];
        hact[h] = sigmoid(z);
      }
      double zo = b2_;
      for (std::size_t h = 0; h < nh; ++h) zo += w2_[h] * hact[h];
      const double out = sigmoid(zo);

      // Squared-error backprop; target mapped (+1 -> 1, -1 -> 0).
      const double target = m.target(r) > 0.0f ? 1.0 : 0.0;
      const double sw = m.weight(r) * inv_mean_w;
      const double err = out - target;
      se += sw * err * err;
      wsum += sw;
      const double delta_o = err * out * (1.0 - out) * sw;

      const double lr = config.learning_rate;
      for (std::size_t h = 0; h < nh; ++h) {
        const double delta_h =
            delta_o * w2_[h] * hact[h] * (1.0 - hact[h]);
        w2_[h] -= lr * delta_o * hact[h];
        double* wrow = w1_.data() + h * ni;
        for (std::size_t f = 0; f < ni; ++f) {
          wrow[f] -= lr * delta_h * xbuf[f];
        }
        b1_[h] -= lr * delta_h;
      }
      b2_ -= lr * delta_o;
    }
    const double mse = wsum > 0.0 ? se / wsum : 0.0;
    if (config.tol > 0.0 && prev_mse - mse < config.tol && epoch > 10) break;
    prev_mse = mse;
  }
}

double MlpModel::forward(std::span<const float> x,
                         std::vector<double>& hact) const {
  const auto ni = static_cast<std::size_t>(inputs_);
  const auto nh = static_cast<std::size_t>(hidden_);
  hact.resize(nh);
  for (std::size_t h = 0; h < nh; ++h) {
    double z = b1_[h];
    const double* wrow = w1_.data() + h * ni;
    for (std::size_t f = 0; f < ni; ++f) {
      z += wrow[f] * (x[f] - feat_mean_[f]) * feat_scale_[f];
    }
    hact[h] = sigmoid(z);
  }
  double zo = b2_;
  for (std::size_t h = 0; h < nh; ++h) zo += w2_[h] * hact[h];
  return sigmoid(zo);
}

namespace {
void write_vector(std::ostream& os, const char* name,
                  const std::vector<double>& v) {
  os << name;
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> read_vector(std::istream& is, const char* name,
                                std::size_t expected) {
  std::string line;
  if (!std::getline(is, line)) throw DataError("mlp file truncated");
  std::istringstream ls(line);
  std::string label;
  ls >> label;
  if (label != name) throw DataError(std::string("expected ") + name);
  std::vector<double> v(expected);
  std::string token;
  for (double& x : v) {
    if (!(ls >> token)) throw DataError(std::string("bad vector: ") + name);
    // parse_double accepts nan/inf, so a poisoned weight loads and gets a
    // specific diagnostic from the verifier rather than a parse failure.
    const auto parsed = parse_double(token);
    if (!parsed) throw DataError(std::string("bad vector: ") + name);
    x = *parsed;
  }
  return v;
}
}  // namespace

void MlpModel::save(std::ostream& os) const {
  HDD_REQUIRE(trained(), "cannot save an untrained MLP");
  os << "hddpred-mlp v1\n";
  os << "inputs " << inputs_ << " hidden " << hidden_ << '\n';
  os << std::setprecision(17);
  write_vector(os, "min", feat_mean_);
  write_vector(os, "scale", feat_scale_);
  write_vector(os, "w1", w1_);
  write_vector(os, "b1", b1_);
  write_vector(os, "w2", w2_);
  os << "b2 " << b2_ << '\n';
}

MlpModel MlpModel::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "hddpred-mlp v1") {
    throw DataError("not a hddpred-mlp v1 file");
  }
  MlpModel m;
  {
    if (!std::getline(is, line)) throw DataError("mlp file truncated");
    std::istringstream ls(line);
    std::string a, b;
    ls >> a >> m.inputs_ >> b >> m.hidden_;
    if (ls.fail() || a != "inputs" || b != "hidden" || m.inputs_ <= 0 ||
        m.hidden_ <= 0) {
      throw DataError("bad mlp header");
    }
    if (m.inputs_ > kMaxLoadWidth) {
      throw ParseError("mlp inputs", static_cast<std::uint64_t>(m.inputs_),
                       static_cast<std::uint64_t>(kMaxLoadWidth));
    }
    if (m.hidden_ > kMaxLoadWidth) {
      throw ParseError("mlp hidden", static_cast<std::uint64_t>(m.hidden_),
                       static_cast<std::uint64_t>(kMaxLoadWidth));
    }
    const auto weights = static_cast<std::uint64_t>(m.inputs_) *
                         static_cast<std::uint64_t>(m.hidden_);
    if (weights > kMaxLoadWeights) {
      throw ParseError("mlp weights", weights, kMaxLoadWeights);
    }
  }
  const auto ni = static_cast<std::size_t>(m.inputs_);
  const auto nh = static_cast<std::size_t>(m.hidden_);
  m.feat_mean_ = read_vector(is, "min", ni);
  m.feat_scale_ = read_vector(is, "scale", ni);
  m.w1_ = read_vector(is, "w1", nh * ni);
  m.b1_ = read_vector(is, "b1", nh);
  m.w2_ = read_vector(is, "w2", nh);
  {
    if (!std::getline(is, line)) throw DataError("mlp file truncated");
    std::istringstream ls(line);
    std::string label, token;
    ls >> label >> token;
    const auto parsed = parse_double(token);
    if (ls.fail() || label != "b2" || !parsed) throw DataError("bad b2 line");
    m.b2_ = *parsed;
  }
  return m;
}

MlpModel MlpModel::from_weights(int inputs, int hidden,
                                std::vector<double> w1, std::vector<double> b1,
                                std::vector<double> w2, double b2,
                                std::vector<double> offset,
                                std::vector<double> scale) {
  HDD_REQUIRE(inputs >= 1 && hidden >= 1,
              "from_weights: inputs and hidden must be >= 1");
  const auto ni = static_cast<std::size_t>(inputs);
  const auto nh = static_cast<std::size_t>(hidden);
  HDD_REQUIRE(w1.size() == nh * ni, "from_weights: w1 must be hidden*inputs");
  HDD_REQUIRE(b1.size() == nh, "from_weights: b1 must be hidden-sized");
  HDD_REQUIRE(w2.size() == nh, "from_weights: w2 must be hidden-sized");
  HDD_REQUIRE(offset.size() == ni && scale.size() == ni,
              "from_weights: scaler must be inputs-sized");
  MlpModel m;
  m.inputs_ = inputs;
  m.hidden_ = hidden;
  m.w1_ = std::move(w1);
  m.b1_ = std::move(b1);
  m.w2_ = std::move(w2);
  m.b2_ = b2;
  m.feat_mean_ = std::move(offset);
  m.feat_scale_ = std::move(scale);
  return m;
}

double MlpModel::predict(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "predict on an untrained MLP");
  HDD_ASSERT(static_cast<int>(x.size()) == inputs_);
  std::vector<double> hact;
  return 2.0 * forward(x, hact) - 1.0;
}

void MlpModel::predict_batch(std::span<const float> xs,
                             std::span<double> out) const {
  HDD_ASSERT_MSG(trained(), "predict_batch on an untrained MLP");
  const auto ni = static_cast<std::size_t>(inputs_);
  HDD_ASSERT(xs.size() == out.size() * ni);
  std::vector<double> hact(static_cast<std::size_t>(hidden_));
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r] = 2.0 * forward({xs.data() + r * ni, ni}, hact) - 1.0;
  }
}

void MlpModel::predict_batch(const data::DataMatrix& m,
                             std::span<double> out) const {
  HDD_ASSERT(m.rows() == out.size());
  HDD_ASSERT(m.cols() == inputs_);
  predict_batch(m.features(), out);
}

}  // namespace hdd::ann
