#include "smart/attributes.h"

#include <limits>

#include "common/error.h"

namespace hdd::smart {

namespace {
constexpr std::array<AttributeInfo, kNumAttributes> kTable = {{
    {Attr::kRawReadErrorRate, 1, "Raw Read Error Rate", "RRER", false},
    {Attr::kSpinUpTime, 3, "Spin Up Time", "SUT", false},
    {Attr::kReallocatedSectors, 5, "Reallocated Sectors Count", "RSC", false},
    {Attr::kSeekErrorRate, 7, "Seek Error Rate", "SER", false},
    {Attr::kPowerOnHours, 9, "Power On Hours", "POH", false},
    {Attr::kReportedUncorrectable, 187, "Reported Uncorrectable Errors",
     "RUE", false},
    {Attr::kHighFlyWrites, 189, "High Fly Writes", "HFW", false},
    {Attr::kTemperatureCelsius, 194, "Temperature Celsius", "TC", false},
    {Attr::kHardwareEccRecovered, 195, "Hardware ECC Recovered", "HER",
     false},
    {Attr::kCurrentPendingSector, 197, "Current Pending Sector Count", "CPS",
     false},
    {Attr::kReallocatedSectorsRaw, 5, "Reallocated Sectors Count (raw value)",
     "RSC_raw", true},
    {Attr::kCurrentPendingSectorRaw, 197,
     "Current Pending Sector Count (raw value)", "CPS_raw", true},
}};
}  // namespace

const std::array<AttributeInfo, kNumAttributes>& attribute_table() {
  return kTable;
}

const AttributeInfo& attribute_info(Attr a) {
  const int i = index_of(a);
  HDD_ASSERT(i >= 0 && i < kNumAttributes);
  return kTable[static_cast<std::size_t>(i)];
}

std::string attribute_name(Attr a) { return attribute_info(a).name; }

ValueRange attribute_range(Attr a) {
  if (attribute_info(a).raw) {
    return {0.0, std::numeric_limits<double>::infinity()};
  }
  return {1.0, 253.0};
}

std::optional<Attr> parse_attribute(const std::string& name_or_abbrev) {
  for (const auto& info : kTable) {
    if (name_or_abbrev == info.name || name_or_abbrev == info.abbrev) {
      return info.attr;
    }
  }
  return std::nullopt;
}

}  // namespace hdd::smart
