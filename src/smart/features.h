// Feature specifications and extraction.
//
// A feature is either the current level of a SMART attribute or its change
// rate over an interval ("the 6-hour change rate of Raw Read Error Rate").
// The paper evaluates three feature sets (Table III):
//   * basic12  — the twelve Table II attributes, levels only;
//   * expert19 — the nineteen features chosen by expertise in the authors'
//                previous work [11] (12 levels + 7 change rates);
//   * stat13   — the thirteen features chosen by the non-parametric
//                statistical pipeline of Section IV-B (9 normalized levels +
//                1 raw level + 3 six-hour change rates).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "smart/drive.h"

namespace hdd::smart {

struct FeatureSpec {
  Attr attr = Attr::kRawReadErrorRate;
  // 0 => current level; >0 => change rate over this many hours:
  // (x[t] - x[t - interval]) / interval, using the nearest sample at or
  // before t - interval.
  int change_interval_hours = 0;

  bool is_change_rate() const { return change_interval_hours > 0; }
  std::string name() const;

  friend bool operator==(const FeatureSpec&, const FeatureSpec&) = default;
};

struct FeatureSet {
  std::string name;
  std::vector<FeatureSpec> specs;

  int size() const { return static_cast<int>(specs.size()); }
};

// The three feature sets of Table III.
FeatureSet basic12_features();
FeatureSet expert19_features();
FeatureSet stat13_features();

// Extracts the feature vector for sample `index` of `drive`.
//
// Change rates need a past sample at least `interval` hours older; when the
// history is too short the rate is taken as 0 (the drive looked stable for
// as long as we could see), matching how a production collector would have
// to behave at the start of monitoring. Returns nullopt only if `index` is
// out of range.
std::optional<std::vector<float>> extract_features(const DriveRecord& drive,
                                                   std::size_t index,
                                                   const FeatureSet& fs);

// Extracts features for samples [begin, end) row-major into `out` (appended;
// no per-row allocation) — the block-extraction path of the fleet-scoring
// engine. `end` must not exceed the record length.
void extract_features_block(const DriveRecord& drive, std::size_t begin,
                            std::size_t end, const FeatureSet& fs,
                            std::vector<float>& out);

// Extracts features for every sample whose hour lies in [from_hour, to_hour]
// (inclusive); appends row-major into `out` and the matching sample hours
// into `hours`. Returns the number of rows appended.
std::size_t extract_features_range(const DriveRecord& drive,
                                   std::int64_t from_hour,
                                   std::int64_t to_hour, const FeatureSet& fs,
                                   std::vector<float>& out,
                                   std::vector<std::int64_t>& hours);

}  // namespace hdd::smart
