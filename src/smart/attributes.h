// SMART attribute catalogue.
//
// The paper's Table II lists twelve "basic features": ten normalized SMART
// values (1–253 scale, larger = healthier for most attributes) plus the raw
// values of Reallocated Sectors Count and Current Pending Sector Count.
// Every dataset sample in this library carries exactly these twelve values;
// features (levels and change rates) are derived views over them.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace hdd::smart {

// Order matches Table II of the paper.
enum class Attr : std::uint8_t {
  kRawReadErrorRate = 0,        // SMART 1, normalized
  kSpinUpTime = 1,              // SMART 3, normalized
  kReallocatedSectors = 2,      // SMART 5, normalized
  kSeekErrorRate = 3,           // SMART 7, normalized
  kPowerOnHours = 4,            // SMART 9, normalized
  kReportedUncorrectable = 5,   // SMART 187, normalized
  kHighFlyWrites = 6,           // SMART 189, normalized
  kTemperatureCelsius = 7,      // SMART 194, normalized
  kHardwareEccRecovered = 8,    // SMART 195, normalized
  kCurrentPendingSector = 9,    // SMART 197, normalized
  kReallocatedSectorsRaw = 10,  // SMART 5, raw
  kCurrentPendingSectorRaw = 11 // SMART 197, raw
};

inline constexpr int kNumAttributes = 12;

struct AttributeInfo {
  Attr attr;
  int smart_id;          // vendor SMART register id
  const char* name;      // human-readable name (as in Table II)
  const char* abbrev;    // short code used in tree dumps (Fig. 1 style)
  bool raw;              // raw value (unbounded counter) vs normalized
};

// The full Table II catalogue, indexed by static_cast<int>(Attr).
const std::array<AttributeInfo, kNumAttributes>& attribute_table();

// Info for one attribute.
const AttributeInfo& attribute_info(Attr a);

// Name/abbrev lookups; parse returns nullopt for unknown names.
std::string attribute_name(Attr a);
std::optional<Attr> parse_attribute(const std::string& name_or_abbrev);

// Declared value domain of one attribute: normalized attributes live on the
// vendor 1–253 scale, raw counters are non-negative and unbounded above
// (hi = +infinity). This is the a-priori range a verifier may assume for
// any real sample — per-fleet observed ranges are always subsets.
struct ValueRange {
  double lo = 0.0;
  double hi = 0.0;
};
ValueRange attribute_range(Attr a);

constexpr int index_of(Attr a) { return static_cast<int>(a); }

}  // namespace hdd::smart
