// Core telemetry records: one SMART sample, one drive's observation history.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "smart/attributes.h"

namespace hdd::smart {

// One SMART reading. `hour` is hours since the observation epoch (the start
// of data collection); samples are stored in chronological order.
struct Sample {
  std::int64_t hour = 0;
  std::array<float, kNumAttributes> attrs{};

  float value(Attr a) const { return attrs[static_cast<std::size_t>(index_of(a))]; }
  void set(Attr a, float v) { attrs[static_cast<std::size_t>(index_of(a))] = v; }
};

// A drive's full observation record, as collected by the telemetry system.
//
// Good drives carry samples over the whole observation period; failed drives
// carry samples from a window before the actual failure (20 days in the
// paper, truncated if the drive failed early in the collection period).
struct DriveRecord {
  std::string serial;
  int family = 0;               // index into DriveDataset::family_names
  bool failed = false;
  std::int64_t fail_hour = -1;  // hour of actual failure; -1 for good drives
  std::vector<Sample> samples;  // chronological, possibly with gaps

  bool empty() const { return samples.empty(); }
  std::int64_t first_hour() const { return samples.front().hour; }
  std::int64_t last_hour() const { return samples.back().hour; }

  // Index of the last sample with hour <= h, or -1 if none.
  // O(log n) binary search over the chronological samples.
  std::int64_t last_sample_at_or_before(std::int64_t h) const;
};

// Ingest-time validity of one sample. kNonFinite means some attribute is
// NaN/Inf (always garbage — no finite arithmetic downstream can use it);
// kOutOfDomain means every value is finite but at least one falls outside
// its declared attribute_range() (vendor 1–253 scale for normalized
// attributes, non-negative for raw counters).
enum class SampleFault { kNone, kNonFinite, kOutOfDomain };

const char* sample_fault_name(SampleFault f);

// Classifies a sample for quarantine decisions. `domain_check` additionally
// applies the attribute_range() bounds — callers scoring synthetic or
// pre-normalized values keep it off and quarantine only non-finite input.
SampleFault classify_sample(const Sample& s, bool domain_check = true);

}  // namespace hdd::smart
