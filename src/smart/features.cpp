#include "smart/features.h"

#include <algorithm>

#include "common/error.h"

namespace hdd::smart {

std::string FeatureSpec::name() const {
  const auto& info = attribute_info(attr);
  if (!is_change_rate()) return info.abbrev;
  return std::string(info.abbrev) + "_d" +
         std::to_string(change_interval_hours) + "h";
}

FeatureSet basic12_features() {
  FeatureSet fs;
  fs.name = "basic12";
  for (const auto& info : attribute_table()) {
    fs.specs.push_back({info.attr, 0});
  }
  return fs;
}

FeatureSet expert19_features() {
  // The 19 expertise-selected features of [11]: all twelve Table II levels
  // plus 24-hour change rates of the seven attributes an operator would
  // watch (error counters and mechanical health).
  FeatureSet fs;
  fs.name = "expert19";
  for (const auto& info : attribute_table()) {
    fs.specs.push_back({info.attr, 0});
  }
  for (Attr a : {Attr::kRawReadErrorRate, Attr::kReallocatedSectors,
                 Attr::kSeekErrorRate, Attr::kReportedUncorrectable,
                 Attr::kHardwareEccRecovered, Attr::kReallocatedSectorsRaw,
                 Attr::kCurrentPendingSectorRaw}) {
    fs.specs.push_back({a, 24});
  }
  return fs;
}

FeatureSet stat13_features() {
  // Section IV-B: 9 normalized levels + 1 raw level (Current Pending Sector
  // and its raw value excluded) + 6-hour change rates of Raw Read Error
  // Rate, Hardware ECC Recovered and Reallocated Sectors Count (raw value).
  FeatureSet fs;
  fs.name = "stat13";
  for (Attr a : {Attr::kRawReadErrorRate, Attr::kSpinUpTime,
                 Attr::kReallocatedSectors, Attr::kSeekErrorRate,
                 Attr::kPowerOnHours, Attr::kReportedUncorrectable,
                 Attr::kHighFlyWrites, Attr::kTemperatureCelsius,
                 Attr::kHardwareEccRecovered}) {
    fs.specs.push_back({a, 0});
  }
  fs.specs.push_back({Attr::kReallocatedSectorsRaw, 0});
  fs.specs.push_back({Attr::kRawReadErrorRate, 6});
  fs.specs.push_back({Attr::kHardwareEccRecovered, 6});
  fs.specs.push_back({Attr::kReallocatedSectorsRaw, 6});
  return fs;
}

namespace {

// Change rate of `attr` at sample `index`: difference to the nearest sample
// at or before (t - interval), normalized per hour. 0 when history is short.
float change_rate_at(const DriveRecord& drive, std::size_t index, Attr attr,
                     int interval_hours) {
  const Sample& now = drive.samples[index];
  const std::int64_t want = now.hour - interval_hours;
  const std::int64_t past_idx = drive.last_sample_at_or_before(want);
  if (past_idx < 0) return 0.0f;
  const Sample& past = drive.samples[static_cast<std::size_t>(past_idx)];
  const std::int64_t dt = now.hour - past.hour;
  if (dt <= 0) return 0.0f;
  return (now.value(attr) - past.value(attr)) / static_cast<float>(dt);
}

void fill_row(const DriveRecord& drive, std::size_t index,
              const FeatureSet& fs, float* row) {
  for (std::size_t f = 0; f < fs.specs.size(); ++f) {
    const FeatureSpec& spec = fs.specs[f];
    if (spec.is_change_rate()) {
      row[f] = change_rate_at(drive, index, spec.attr,
                              spec.change_interval_hours);
    } else {
      row[f] = drive.samples[index].value(spec.attr);
    }
  }
}

}  // namespace

std::optional<std::vector<float>> extract_features(const DriveRecord& drive,
                                                   std::size_t index,
                                                   const FeatureSet& fs) {
  if (index >= drive.samples.size()) return std::nullopt;
  std::vector<float> row(fs.specs.size());
  fill_row(drive, index, fs, row.data());
  return row;
}

void extract_features_block(const DriveRecord& drive, std::size_t begin,
                            std::size_t end, const FeatureSet& fs,
                            std::vector<float>& out) {
  HDD_REQUIRE(!fs.specs.empty(), "empty feature set");
  HDD_REQUIRE(end <= drive.samples.size(),
              "feature block end past the record");
  if (begin >= end) return;
  const std::size_t base = out.size();
  out.resize(base + (end - begin) * fs.specs.size());
  float* row = out.data() + base;
  for (std::size_t i = begin; i < end; ++i, row += fs.specs.size()) {
    fill_row(drive, i, fs, row);
  }
}

std::size_t extract_features_range(const DriveRecord& drive,
                                   std::int64_t from_hour,
                                   std::int64_t to_hour, const FeatureSet& fs,
                                   std::vector<float>& out,
                                   std::vector<std::int64_t>& hours) {
  HDD_REQUIRE(!fs.specs.empty(), "empty feature set");
  std::size_t rows = 0;
  for (std::size_t i = 0; i < drive.samples.size(); ++i) {
    const std::int64_t h = drive.samples[i].hour;
    if (h < from_hour) continue;
    if (h > to_hour) break;
    const std::size_t base = out.size();
    out.resize(base + fs.specs.size());
    fill_row(drive, i, fs, out.data() + base);
    hours.push_back(h);
    ++rows;
  }
  return rows;
}

}  // namespace hdd::smart
