#include "smart/drive.h"

#include <algorithm>

namespace hdd::smart {

std::int64_t DriveRecord::last_sample_at_or_before(std::int64_t h) const {
  auto it = std::upper_bound(
      samples.begin(), samples.end(), h,
      [](std::int64_t hour, const Sample& s) { return hour < s.hour; });
  if (it == samples.begin()) return -1;
  return static_cast<std::int64_t>(std::distance(samples.begin(), it)) - 1;
}

}  // namespace hdd::smart
