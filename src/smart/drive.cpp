#include "smart/drive.h"

#include <algorithm>
#include <cmath>

namespace hdd::smart {

const char* sample_fault_name(SampleFault f) {
  switch (f) {
    case SampleFault::kNone: return "none";
    case SampleFault::kNonFinite: return "non_finite";
    case SampleFault::kOutOfDomain: return "out_of_domain";
  }
  return "unknown";
}

SampleFault classify_sample(const Sample& s, bool domain_check) {
  for (int i = 0; i < kNumAttributes; ++i) {
    if (!std::isfinite(s.attrs[static_cast<std::size_t>(i)])) {
      return SampleFault::kNonFinite;
    }
  }
  if (domain_check) {
    for (int i = 0; i < kNumAttributes; ++i) {
      const auto r = attribute_range(static_cast<Attr>(i));
      const double v = s.attrs[static_cast<std::size_t>(i)];
      if (v < r.lo || v > r.hi) return SampleFault::kOutOfDomain;
    }
  }
  return SampleFault::kNone;
}

std::int64_t DriveRecord::last_sample_at_or_before(std::int64_t h) const {
  auto it = std::upper_bound(
      samples.begin(), samples.end(), h,
      [](std::int64_t hour, const Sample& s) { return hour < s.hour; });
  if (it == samples.begin()) return -1;
  return static_cast<std::int64_t>(std::distance(samples.begin(), it)) - 1;
}

}  // namespace hdd::smart
