// CART — classification and regression trees, implemented exactly as the
// paper's Algorithm 1 (classification, information-gain splits) and
// Algorithm 2 (regression, within-node sum-of-squares splits), with
// Minsplit / Minbucket stopping and Complexity-Parameter pruning.
//
// Conventions:
//  * binary targets use +1 (good) / -1 (failed); regression targets are the
//    health degrees of Eq. 5/6 (good = +1, failed in [-1, 0));
//  * predict() returns the leaf value: for classification the *signed
//    weighted margin* p_good - p_failed in [-1, 1] (so sign() is the label
//    under the loss-adjusted weights), for regression the weighted mean
//    target. predict_label() thresholds at 0;
//  * sample weights carry both the prior adjustment and the loss matrix
//    (data::build_training_matrix), so weighted-majority leaf labels are
//    exactly the paper's minimum-expected-loss labels.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "data/matrix.h"
#include "smart/features.h"

namespace hdd::tree {

enum class Task { kClassification, kRegression };

// Hard ceilings a persisted tree file may declare before load() rejects it
// with hdd::ParseError — checked *before* any reservation, so a hostile
// header cannot drive a giant allocation. Both are far above anything
// training can produce (TreeParams::max_nodes defaults to 32768).
inline constexpr std::size_t kMaxLoadNodes = 1u << 20;
inline constexpr int kMaxLoadFeatures = 4096;

struct TreeParams {
  // Minimum samples (by count) a node needs before a split is attempted.
  int min_split = 20;
  // Minimum samples (by count) in any leaf.
  int min_bucket = 7;
  // Complexity parameter: an internal node whose split gain is below
  // cp * root_scale is pruned back (Algorithm 1 line 19 / Algorithm 2
  // line 20). For classification the gain is information gain in bits and
  // root_scale = 1; for regression the gain is the within-node
  // sum-of-squares reduction and root_scale is the root's sum of squares,
  // making cp scale-free in both tasks.
  double cp = 0.001;
  // Safety rails beyond the paper (the paper relies on min_split/cp only).
  int max_depth = 30;
  int max_nodes = 32768;

  void validate() const;
};

struct Node {
  // Internal node: feature/threshold with children; leaf: children = -1.
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t feature = -1;
  float threshold = 0.0f;  // goes left when x[feature] < threshold

  double value = 0.0;       // leaf output (margin or mean target)
  double weight = 0.0;      // total sample weight at the node
  std::int64_t count = 0;   // raw sample count at the node
  double gain = 0.0;        // split gain (0 for leaves)

  bool is_leaf() const { return left < 0; }
};

class DecisionTree {
 public:
  DecisionTree() = default;

  // Grows and prunes a tree on the weighted matrix. Throws ConfigError on
  // invalid parameters or an empty matrix.
  void fit(const data::DataMatrix& m, Task task, const TreeParams& params);

  bool trained() const { return !nodes_.empty(); }
  Task task() const { return task_; }
  int num_features() const { return num_features_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  int depth() const;

  // Leaf value for one feature row (see header comment for semantics).
  double predict(std::span<const float> x) const;

  // Batch prediction over row-major feature rows (`xs.size()` must equal
  // `out.size() * num_features()`). Row-blocked traversal of the flat node
  // array; outputs are bit-identical to calling predict() per row.
  void predict_batch(std::span<const float> xs, std::span<double> out) const;
  void predict_batch(const data::DataMatrix& m, std::span<double> out) const;

  // +1 (good) / -1 (failed).
  int predict_label(std::span<const float> x) const {
    return predict(x) < 0.0 ? -1 : 1;
  }

  // Total split gain attributed to each feature, normalized to sum to 1
  // (all-zero if the tree is a stump).
  std::vector<double> feature_importance() const;

  // Figure-1-style rule dump. Feature names come from `features` when
  // given, else "f<i>".
  std::string to_text(const smart::FeatureSet* features = nullptr) const;

  // Flat node access (serialization, tests).
  const std::vector<Node>& nodes() const { return nodes_; }

  // Rebuilds a tree from serialized nodes (validated).
  static DecisionTree from_nodes(std::vector<Node> nodes, Task task,
                                 int num_features);

  // Line-oriented text persistence ("hddpred-tree v1"): header lines
  // (task/features/nodes) followed by one line per node in preorder.
  // Implemented in tree_io.cpp; load() throws DataError on bad input.
  void save(std::ostream& os) const;
  static DecisionTree load(std::istream& is);

 private:
  struct Builder;

  // Drops nodes orphaned by pruning and renumbers children.
  void compact();

  std::vector<Node> nodes_;
  Task task_ = Task::kClassification;
  int num_features_ = 0;
};

}  // namespace hdd::tree
