// Text persistence for decision trees (format documented in tree.h).
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "tree/tree.h"

namespace hdd::tree {

void DecisionTree::save(std::ostream& os) const {
  HDD_REQUIRE(trained(), "cannot save an untrained tree");
  os << "hddpred-tree v1\n";
  os << "task "
     << (task_ == Task::kClassification ? "classification" : "regression")
     << '\n';
  os << "features " << num_features_ << '\n';
  os << "nodes " << nodes_.size() << '\n';
  os << std::setprecision(17);
  for (const auto& n : nodes_) {
    os << n.left << ' ' << n.right << ' ' << n.feature << ' ' << n.threshold
       << ' ' << n.value << ' ' << n.weight << ' ' << n.count << ' '
       << n.gain << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& is) {
  std::string line;
  auto next_line = [&]() -> std::string& {
    if (!std::getline(is, line)) throw DataError("tree file truncated");
    return line;
  };
  if (next_line() != "hddpred-tree v1") {
    throw DataError("not a hddpred-tree v1 file");
  }
  std::string word, task_name;
  {
    std::istringstream ls(next_line());
    ls >> word >> task_name;
    if (word != "task" ||
        (task_name != "classification" && task_name != "regression")) {
      throw DataError("bad task line");
    }
  }
  int features = 0;
  {
    std::istringstream ls(next_line());
    ls >> word >> features;
    if (word != "features" || features <= 0) {
      throw DataError("bad features line");
    }
    if (features > kMaxLoadFeatures) {
      throw ParseError("tree features", static_cast<std::uint64_t>(features),
                       kMaxLoadFeatures);
    }
  }
  std::size_t count = 0;
  {
    std::istringstream ls(next_line());
    ls >> word >> count;
    if (word != "nodes" || count == 0) throw DataError("bad nodes line");
    if (count > kMaxLoadNodes) {
      throw ParseError("tree nodes", count, kMaxLoadNodes);
    }
  }
  std::vector<Node> nodes;
  nodes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::istringstream ls(next_line());
    Node n;
    // The double fields go through parse_double (strtod grammar) so that a
    // file carrying nan/inf still loads into a Node the static verifier
    // can diagnose; operator>> would fail the whole line instead.
    std::string threshold_tok, value_tok, weight_tok, gain_tok;
    ls >> n.left >> n.right >> n.feature >> threshold_tok >> value_tok >>
        weight_tok >> n.count >> gain_tok;
    const auto threshold = parse_double(threshold_tok);
    const auto value = parse_double(value_tok);
    const auto weight = parse_double(weight_tok);
    const auto gain = parse_double(gain_tok);
    if (ls.fail() || !threshold || !value || !weight || !gain) {
      throw DataError("bad node line " + std::to_string(i));
    }
    n.threshold = static_cast<float>(*threshold);
    n.value = *value;
    n.weight = *weight;
    n.gain = *gain;
    nodes.push_back(n);
  }
  try {
    return from_nodes(std::move(nodes),
                      task_name == "classification" ? Task::kClassification
                                                    : Task::kRegression,
                      features);
  } catch (const ConfigError& e) {
    throw DataError(std::string("inconsistent tree: ") + e.what());
  }
}

}  // namespace hdd::tree
