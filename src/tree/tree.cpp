#include "tree/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.h"
#include "common/math_util.h"
#include "common/table.h"

namespace hdd::tree {

void TreeParams::validate() const {
  HDD_REQUIRE(min_split >= 2, "min_split must be >= 2");
  HDD_REQUIRE(min_bucket >= 1, "min_bucket must be >= 1");
  HDD_REQUIRE(min_bucket <= min_split,
              "min_bucket must not exceed min_split");
  HDD_REQUIRE(cp >= 0.0, "cp must be non-negative");
  HDD_REQUIRE(max_depth >= 1, "max_depth must be >= 1");
  HDD_REQUIRE(max_nodes >= 1, "max_nodes must be >= 1");
}

namespace {

// Weighted class masses / moments of a set of rows.
struct ClassStats {
  double w_good = 0.0;
  double w_failed = 0.0;
  double total() const { return w_good + w_failed; }
  double entropy() const {
    const double t = total();
    if (t <= 0.0) return 0.0;
    return binary_entropy(w_failed / t);
  }
  // Signed margin p_good - p_failed.
  double margin() const {
    const double t = total();
    if (t <= 0.0) return 0.0;
    return (w_good - w_failed) / t;
  }
};

struct RegStats {
  double w = 0.0;
  double wy = 0.0;
  double wyy = 0.0;
  double mean() const { return w > 0.0 ? wy / w : 0.0; }
  // Within-node weighted sum of squares about the mean (Eq. 4, weighted).
  double sq() const {
    if (w <= 0.0) return 0.0;
    return std::max(0.0, wyy - wy * wy / w);
  }
};

struct SplitResult {
  bool found = false;
  int feature = -1;
  float threshold = 0.0f;
  double gain = 0.0;
  std::size_t left_count = 0;  // after partition by threshold
};

}  // namespace

struct DecisionTree::Builder {
  const data::DataMatrix& m;
  Task task;
  const TreeParams& params;
  std::vector<Node>& nodes;
  double root_scale = 1.0;  // normalizer for regression cp

  // Scratch: per-feature (value, row) pairs for the node being split.
  std::vector<std::pair<float, std::uint32_t>> sorted;

  Builder(const data::DataMatrix& matrix, Task t, const TreeParams& p,
          std::vector<Node>& out)
      : m(matrix), task(t), params(p), nodes(out) {}

  ClassStats class_stats(std::span<const std::uint32_t> rows) const {
    ClassStats s;
    for (std::uint32_t r : rows) {
      if (m.target(r) < 0.0f) s.w_failed += m.weight(r);
      else s.w_good += m.weight(r);
    }
    return s;
  }

  RegStats reg_stats(std::span<const std::uint32_t> rows) const {
    RegStats s;
    for (std::uint32_t r : rows) {
      const double w = m.weight(r), y = m.target(r);
      s.w += w;
      s.wy += w * y;
      s.wyy += w * y * y;
    }
    return s;
  }

  // Exhaustive split search over all features and thresholds (the paper's
  // "searches through all values of the input SMART attributes").
  SplitResult best_split(std::span<const std::uint32_t> rows) {
    SplitResult best;
    const std::size_t n = rows.size();
    const auto min_bucket = static_cast<std::size_t>(params.min_bucket);

    for (int f = 0; f < m.cols(); ++f) {
      sorted.clear();
      sorted.reserve(n);
      for (std::uint32_t r : rows) {
        sorted.emplace_back(m.row(r)[static_cast<std::size_t>(f)], r);
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (sorted.front().first == sorted.back().first) continue;

      if (task == Task::kClassification) {
        scan_classification(f, best);
      } else {
        scan_regression(f, best);
      }
      (void)min_bucket;
    }
    return best;
  }

  void scan_classification(int feature, SplitResult& best) {
    ClassStats total;
    for (const auto& [v, r] : sorted) {
      if (m.target(r) < 0.0f) total.w_failed += m.weight(r);
      else total.w_good += m.weight(r);
    }
    const double parent_info = total.entropy();
    const double tw = total.total();
    if (tw <= 0.0) return;

    ClassStats left;
    const std::size_t n = sorted.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto r = sorted[i].second;
      if (m.target(r) < 0.0f) left.w_failed += m.weight(r);
      else left.w_good += m.weight(r);
      if (sorted[i].first == sorted[i + 1].first) continue;
      const std::size_t left_n = i + 1, right_n = n - left_n;
      if (left_n < static_cast<std::size_t>(params.min_bucket) ||
          right_n < static_cast<std::size_t>(params.min_bucket)) {
        continue;
      }
      ClassStats right{total.w_good - left.w_good,
                       total.w_failed - left.w_failed};
      // Formula (1)-(3): gain = info(D) - weighted child entropies.
      const double gain = parent_info -
                          (left.total() / tw) * left.entropy() -
                          (right.total() / tw) * right.entropy();
      if (gain > best.gain + 1e-12 || !best.found) {
        if (gain <= 0.0) continue;
        best.found = true;
        best.feature = feature;
        best.threshold = midpoint(sorted[i].first, sorted[i + 1].first);
        best.gain = gain;
        best.left_count = left_n;
      }
    }
  }

  void scan_regression(int feature, SplitResult& best) {
    RegStats total;
    for (const auto& [v, r] : sorted) {
      const double w = m.weight(r), y = m.target(r);
      total.w += w;
      total.wy += w * y;
      total.wyy += w * y * y;
    }
    const double parent_sq = total.sq();
    if (total.w <= 0.0) return;

    RegStats left;
    const std::size_t n = sorted.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto r = sorted[i].second;
      const double w = m.weight(r), y = m.target(r);
      left.w += w;
      left.wy += w * y;
      left.wyy += w * y * y;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const std::size_t left_n = i + 1, right_n = n - left_n;
      if (left_n < static_cast<std::size_t>(params.min_bucket) ||
          right_n < static_cast<std::size_t>(params.min_bucket)) {
        continue;
      }
      RegStats right{total.w - left.w, total.wy - left.wy,
                     total.wyy - left.wyy};
      // Algorithm 2: minimize sq1 + sq2, i.e. maximize the reduction.
      const double gain = parent_sq - left.sq() - right.sq();
      if (gain > best.gain + 1e-12 || !best.found) {
        if (gain <= 0.0) continue;
        best.found = true;
        best.feature = feature;
        best.threshold = midpoint(sorted[i].first, sorted[i + 1].first);
        best.gain = gain;
        best.left_count = left_n;
      }
    }
  }

  static float midpoint(float lo, float hi) {
    const float mid = lo + (hi - lo) * 0.5f;
    // Guard against rounding collapsing the threshold onto `lo`, which
    // would send equal values to the wrong side.
    return mid > lo ? mid : hi;
  }

  // Recursively grows the subtree over `rows`; returns the node index.
  std::int32_t grow(std::vector<std::uint32_t>& rows, int depth) {
    const auto node_index = static_cast<std::int32_t>(nodes.size());
    nodes.emplace_back();
    {
      Node& node = nodes.back();
      node.count = static_cast<std::int64_t>(rows.size());
      if (task == Task::kClassification) {
        const ClassStats s = class_stats(rows);
        node.weight = s.total();
        node.value = s.margin();
      } else {
        const RegStats s = reg_stats(rows);
        node.weight = s.w;
        node.value = s.mean();
      }
    }

    // `depth` is 0-based here; depth() reports levels (root = 1), so a
    // node may only split while its children would stay within max_depth.
    const bool splittable =
        static_cast<int>(rows.size()) >= params.min_split &&
        depth + 1 < params.max_depth &&
        static_cast<int>(nodes.size()) + 2 <= params.max_nodes &&
        !node_is_pure(rows);
    if (!splittable) return node_index;

    const SplitResult split = best_split(rows);
    if (!split.found) return node_index;

    // Partition rows in place around the threshold.
    std::vector<std::uint32_t> left_rows, right_rows;
    left_rows.reserve(split.left_count);
    right_rows.reserve(rows.size() - split.left_count);
    for (std::uint32_t r : rows) {
      const float v = m.row(r)[static_cast<std::size_t>(split.feature)];
      (v < split.threshold ? left_rows : right_rows).push_back(r);
    }
    HDD_ASSERT(!left_rows.empty() && !right_rows.empty());
    rows.clear();
    rows.shrink_to_fit();

    const std::int32_t left = grow(left_rows, depth + 1);
    const std::int32_t right = grow(right_rows, depth + 1);
    Node& node = nodes[static_cast<std::size_t>(node_index)];
    node.left = left;
    node.right = right;
    node.feature = split.feature;
    node.threshold = split.threshold;
    node.gain = split.gain;
    return node_index;
  }

  bool node_is_pure(std::span<const std::uint32_t> rows) const {
    const float first = m.target(rows.front());
    for (std::uint32_t r : rows) {
      if (m.target(r) != first) return false;
    }
    return true;
  }

  // Algorithm 1/2 pruning: collapse any internal node whose own split gain
  // is below the threshold. Children are visited first so that gains are
  // evaluated on the fully grown tree, exactly as the paper writes it.
  void prune(std::int32_t index, double threshold) {
    Node& node = nodes[static_cast<std::size_t>(index)];
    if (node.is_leaf()) return;
    prune(node.left, threshold);
    prune(node.right, threshold);
    if (node.gain < threshold) {
      node.left = node.right = -1;
      node.feature = -1;
      node.gain = 0.0;
    }
  }
};

void DecisionTree::fit(const data::DataMatrix& m, Task task,
                       const TreeParams& params) {
  params.validate();
  HDD_REQUIRE(!m.empty(), "cannot fit a tree on an empty matrix");
  nodes_.clear();
  task_ = task;
  num_features_ = m.cols();

  Builder builder(m, task, params, nodes_);
  std::vector<std::uint32_t> rows(m.rows());
  std::iota(rows.begin(), rows.end(), 0);
  builder.grow(rows, 0);

  double threshold = params.cp;
  if (task == Task::kRegression) {
    // Scale-free cp: relative to the root's sum of squares.
    Builder scale_builder(m, task, params, nodes_);
    std::vector<std::uint32_t> all(m.rows());
    std::iota(all.begin(), all.end(), 0);
    threshold = params.cp * scale_builder.reg_stats(all).sq();
  }
  builder.prune(0, threshold);
  compact();
}

// Removes nodes orphaned by pruning and reindexes children.
void DecisionTree::compact() {
  std::vector<Node> compacted;
  compacted.reserve(nodes_.size());
  // Iterative preorder copy.
  std::vector<std::pair<std::int32_t, std::int32_t>> stack;  // old, parent slot
  std::vector<std::int32_t> remap(nodes_.size(), -1);
  std::vector<std::int32_t> order;
  order.reserve(nodes_.size());
  std::vector<std::int32_t> walk{0};
  while (!walk.empty()) {
    const std::int32_t old = walk.back();
    walk.pop_back();
    remap[static_cast<std::size_t>(old)] =
        static_cast<std::int32_t>(order.size());
    order.push_back(old);
    const Node& n = nodes_[static_cast<std::size_t>(old)];
    if (!n.is_leaf()) {
      walk.push_back(n.right);
      walk.push_back(n.left);
    }
  }
  for (std::int32_t old : order) {
    Node n = nodes_[static_cast<std::size_t>(old)];
    if (!n.is_leaf()) {
      n.left = remap[static_cast<std::size_t>(n.left)];
      n.right = remap[static_cast<std::size_t>(n.right)];
    }
    compacted.push_back(n);
  }
  nodes_ = std::move(compacted);
  (void)stack;
}

std::size_t DecisionTree::leaf_count() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) n += node.is_leaf() ? 1 : 0;
  return n;
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (!n.is_leaf()) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

double DecisionTree::predict(std::span<const float> x) const {
  HDD_ASSERT_MSG(trained(), "predict on an untrained tree");
  HDD_ASSERT(static_cast<int>(x.size()) == num_features_);
  std::int32_t idx = 0;
  for (;;) {
    const Node& n = nodes_[static_cast<std::size_t>(idx)];
    if (n.is_leaf()) return n.value;
    idx = x[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left
                                                               : n.right;
  }
}

void DecisionTree::predict_batch(std::span<const float> xs,
                                 std::span<double> out) const {
  HDD_ASSERT_MSG(trained(), "predict_batch on an untrained tree");
  const auto nf = static_cast<std::size_t>(num_features_);
  HDD_ASSERT(xs.size() == out.size() * nf);
  const Node* const nodes = nodes_.data();
  // Row blocks keep the node array and a small stripe of input rows hot in
  // cache while amortizing loop overhead over the block. Each row descends
  // exactly as predict() does, so outputs are bit-identical.
  constexpr std::size_t kBlock = 128;
  const std::size_t n = out.size();
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t hi = std::min(base + kBlock, n);
    for (std::size_t r = base; r < hi; ++r) {
      const float* x = xs.data() + r * nf;
      std::int32_t idx = 0;
      for (;;) {
        const Node& node = nodes[idx];
        if (node.is_leaf()) {
          out[r] = node.value;
          break;
        }
        idx = x[node.feature] < node.threshold ? node.left : node.right;
      }
    }
  }
}

void DecisionTree::predict_batch(const data::DataMatrix& m,
                                 std::span<double> out) const {
  HDD_ASSERT(m.rows() == out.size());
  HDD_ASSERT(m.cols() == num_features_);
  predict_batch(m.features(), out);
}

std::vector<double> DecisionTree::feature_importance() const {
  std::vector<double> imp(static_cast<std::size_t>(num_features_), 0.0);
  if (nodes_.empty()) return imp;
  const double root_weight = nodes_[0].weight;
  if (root_weight <= 0.0) return imp;
  double total = 0.0;
  for (const Node& n : nodes_) {
    if (n.is_leaf()) continue;
    const double contrib = n.gain * (n.weight / root_weight);
    imp[static_cast<std::size_t>(n.feature)] += contrib;
    total += contrib;
  }
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}

namespace {

void dump_node(const std::vector<Node>& nodes, std::int32_t idx, int depth,
               const smart::FeatureSet* features, double root_weight,
               Task task, std::ostringstream& os) {
  const Node& n = nodes[static_cast<std::size_t>(idx)];
  for (int i = 0; i < depth; ++i) os << "  ";
  if (task == Task::kClassification) {
    const double p_failed = (1.0 - n.value) / 2.0;
    os << (n.value < 0 ? "[FAILED] " : "[good]   ");
    os << "p_failed=" << hdd::format_double(p_failed, 3);
  } else {
    os << "health=" << hdd::format_double(n.value, 3);
  }
  os << " weight=" << hdd::format_double(100.0 * n.weight / root_weight, 1)
     << "% n=" << n.count;
  if (!n.is_leaf()) {
    std::string fname;
    if (features != nullptr &&
        n.feature < static_cast<int>(features->specs.size())) {
      fname = features->specs[static_cast<std::size_t>(n.feature)].name();
    } else {
      fname = "f" + std::to_string(n.feature);
    }
    os << " | split: " << fname << " < "
       << hdd::format_double(n.threshold, 2) << " (gain "
       << hdd::format_double(n.gain, 4) << ")";
  }
  os << '\n';
  if (!n.is_leaf()) {
    dump_node(nodes, n.left, depth + 1, features, root_weight, task, os);
    dump_node(nodes, n.right, depth + 1, features, root_weight, task, os);
  }
}

}  // namespace

std::string DecisionTree::to_text(const smart::FeatureSet* features) const {
  if (nodes_.empty()) return "(untrained)\n";
  std::ostringstream os;
  dump_node(nodes_, 0, 0, features, nodes_[0].weight, task_, os);
  return os.str();
}

DecisionTree DecisionTree::from_nodes(std::vector<Node> nodes, Task task,
                                      int num_features) {
  HDD_REQUIRE(!nodes.empty(), "node list is empty");
  const auto n_nodes = static_cast<std::int32_t>(nodes.size());
  for (std::int32_t i = 0; i < n_nodes; ++i) {
    const Node& n = nodes[static_cast<std::size_t>(i)];
    if (n.is_leaf()) {
      // A leaf is left < 0; a node that looks half-leaf (left < 0 but
      // right >= 0) would silently drop a subtree during prediction.
      HDD_REQUIRE(n.right < 0, "leaf node with a right child");
      continue;
    }
    // compact() stores nodes in preorder, so children always follow their
    // parent. Requiring strictly increasing child indices also rules out
    // self-references and cycles, which would hang predict().
    HDD_REQUIRE(n.left > i && n.left < n_nodes && n.right > i &&
                    n.right < n_nodes,
                "node child index out of range (children must follow their "
                "parent)");
    HDD_REQUIRE(n.feature >= 0 && n.feature < num_features,
                "node feature index out of range");
    HDD_REQUIRE(std::isfinite(n.threshold),
                "node threshold must be finite");
  }
  DecisionTree t;
  t.nodes_ = std::move(nodes);
  t.task_ = task;
  t.num_features_ = num_features;
  return t;
}

}  // namespace hdd::tree
